(** TCB accounting (Figure 5 / E6): per-component LoC counted from this
    repository's own sources, composed into per-configuration core TCBs. *)

val set_repo_root : string -> unit
(** Directory containing [lib/]; defaults to ["."]. *)

val loc : string -> int
(** Lines of OCaml in a named component; raises on unknown names. *)

val component_names : string list
(** Every component that can appear in a profile's [core]/[quarantined]. *)

val component_dirs : string -> string list
(** Source directories (relative to the repo root) a component is counted
    from; raises on unknown names. Used by [cio_lint] to derive the
    trusted-component file set from the same profiles Figure 5 uses. *)

type profile = { config : string; core : string list; quarantined : string list }

val profiles : profile list
val profile : string -> profile

val core_loc : string -> int
(** LoC whose compromise exposes application data. *)

val quarantined_loc : string -> int
(** LoC isolated behind the intra-TEE L5 boundary (dual design only). *)

val pp_profile : Format.formatter -> string -> unit
