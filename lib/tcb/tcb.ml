(* TCB accounting — the "TCB" axis of Figure 5.

   Each architectural component is measured in lines of OCaml from this
   repository itself (the simulator's components *are* the system being
   compared), counted live from the source tree when available and
   falling back to recorded values for installed/stripped deployments.
   What matters for Figure 5 is which components sit inside each
   configuration's *core* TCB — the code whose compromise exposes
   application data:

   - in a single-boundary L2 design, the whole I/O stack is core TCB;
   - in the dual-boundary design, the I/O stack moves to a quarantined
     compartment: its compromise yields only observability (§3.1), so the
     core TCB shrinks to the driver rim + compartment runtime + TLS. *)

type component = {
  comp_name : string;
  dirs : string list;     (* source dirs counted, relative to repo root *)
  fallback_loc : int;     (* used when the tree is not available *)
}

let components =
  [
    { comp_name = "tcpip-stack"; dirs = [ "lib/tcpip"; "lib/frame" ]; fallback_loc = 1400 };
    { comp_name = "virtio-driver"; dirs = [ "lib/virtio" ]; fallback_loc = 900 };
    { comp_name = "cionet-driver"; dirs = [ "lib/cionet" ]; fallback_loc = 800 };
    { comp_name = "tls"; dirs = [ "lib/tls" ]; fallback_loc = 700 };
    { comp_name = "crypto"; dirs = [ "lib/crypto" ]; fallback_loc = 700 };
    { comp_name = "compartment-runtime"; dirs = [ "lib/compartment" ]; fallback_loc = 250 };
    { comp_name = "mem-protection"; dirs = [ "lib/mem" ]; fallback_loc = 500 };
  ]

let count_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n

let count_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun acc f ->
          if Filename.check_suffix f ".ml" then acc + count_file (Filename.concat dir f) else acc)
        0 entries

let repo_root = ref "."

let set_repo_root p = repo_root := p

let loc_of_component c =
  let counted =
    List.fold_left (fun acc d -> acc + count_dir (Filename.concat !repo_root d)) 0 c.dirs
  in
  if counted > 0 then counted else c.fallback_loc

let loc name =
  match List.find_opt (fun c -> c.comp_name = name) components with
  | Some c -> loc_of_component c
  | None -> invalid_arg ("Tcb.loc: unknown component " ^ name)

let component_names = List.map (fun c -> c.comp_name) components

let component_dirs name =
  match List.find_opt (fun c -> c.comp_name = name) components with
  | Some c -> c.dirs
  | None -> invalid_arg ("Tcb.component_dirs: unknown component " ^ name)

(* Core-TCB composition per configuration (Figure 5 / E6). The component
   lists encode the architectural argument, not implementation details. *)

type profile = { config : string; core : string list; quarantined : string list }

let profiles =
  [
    {
      config = "syscall-l5";
      (* Graphene/CCF-class: the stack lives on the host (outside the TEE
         entirely), the TEE keeps TLS + crypto. *)
      core = [ "tls"; "crypto" ];
      quarantined = [];
    };
    {
      config = "passthrough-l2";
      (* rkt-io/ShieldBox-class: full stack and driver in the core TCB. *)
      core = [ "tcpip-stack"; "virtio-driver"; "tls"; "crypto" ];
      quarantined = [];
    };
    {
      config = "hardened-virtio";
      core = [ "tcpip-stack"; "virtio-driver"; "tls"; "crypto" ];
      quarantined = [];
    };
    {
      config = "tunneled";
      (* LightBox-class: stack + tunnel endpoint in the TEE. *)
      core = [ "tcpip-stack"; "virtio-driver"; "tls"; "crypto" ];
      quarantined = [];
    };
    {
      config = "dual-boundary";
      (* This work: the stack and driver are quarantined behind the L5
         compartment boundary; their compromise yields observability
         only. *)
      core = [ "tls"; "crypto"; "compartment-runtime" ];
      quarantined = [ "tcpip-stack"; "cionet-driver" ];
    };
  ]

let profile config =
  match List.find_opt (fun p -> p.config = config) profiles with
  | Some p -> p
  | None -> invalid_arg ("Tcb.profile: unknown configuration " ^ config)

let core_loc config = List.fold_left (fun acc c -> acc + loc c) 0 (profile config).core

let quarantined_loc config =
  List.fold_left (fun acc c -> acc + loc c) 0 (profile config).quarantined

let pp_profile ppf config =
  let p = profile config in
  Fmt.pf ppf "%-16s core=%5d LoC (%s)" p.config (core_loc config) (String.concat "+" p.core);
  if p.quarantined <> [] then
    Fmt.pf ppf " | quarantined=%d LoC (%s)" (quarantined_loc config) (String.concat "+" p.quarantined)
