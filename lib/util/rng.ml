(* SplitMix64: deterministic, splittable pseudo-random generator.

   Every stochastic component of the simulator (workload generators, the
   network adversary, attack scheduling) draws from an explicitly threaded
   [Rng.t] so that experiments are reproducible bit-for-bit from a seed. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value always fits OCaml's tagged native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let byte t = int t 256

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (byte t))
  done;
  b

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
