(* Simulated cycle-cost model.

   The reproduction cannot measure a real TEE datapath, so "performance"
   throughout the simulator is counted work under this model: every copy,
   validation check, ring operation, domain crossing, notification and
   crypto pass is charged to a meter. The constants are order-of-magnitude
   figures from the literature the paper builds on (MPK-style intra-TEE
   gates vs enclave transitions vs VM exits), and every experiment that
   depends on a constant also sweeps it, so the *shapes* reported in
   EXPERIMENTS.md do not hinge on any single value. *)

type model = {
  cycles_per_ghz : float;  (** cycles per nanosecond, for time conversion *)
  copy_base : int;         (** fixed cost of initiating a memcpy *)
  copy_per_byte_q2 : int;  (** quarter-cycles per byte copied (fixed point) *)
  check : int;             (** one validation branch on an untrusted value *)
  ring_op : int;           (** one descriptor/ring slot read or write *)
  ring_burst_op : int;
      (** each additional slot touched in a batched ring crossing: the
          first slot pays [ring_op] (cache miss + cursor bookkeeping),
          the rest only adjacent-line word work *)
  mmio : int;              (** one MMIO register access *)
  notification : int;      (** doorbell + VM exit / event injection *)
  gate_crossing : int;     (** intra-TEE compartment switch (MPK-like) *)
  tee_switch : int;        (** full enclave/TEE protection-domain switch *)
  page_share : int;        (** mark one page host-visible *)
  page_share_extra : int;  (** each additional page in a batched share *)
  page_unshare : int;      (** revoke one page (incl. TLB shootdown) *)
  page_unshare_extra : int;
      (** each additional page in a batched revocation: one shootdown IPI
          covers the whole range, so extra pages cost only PTE work *)
  aead_base : int;         (** AEAD setup per record *)
  aead_per_byte_q2 : int;  (** quarter-cycles per byte of AEAD *)
  dma_base : int;          (** device DMA setup *)
  dma_per_byte_q2 : int;   (** quarter-cycles per byte of device DMA *)
  alloc : int;             (** allocator fast path *)
}

let default =
  {
    cycles_per_ghz = 3.0;
    copy_base = 40;
    copy_per_byte_q2 = 1;  (* 0.25 cycles/B: warm streaming copy *)
    check = 3;
    ring_op = 12;
    ring_burst_op = 3;     (* adjacent-line slot access in a batch *)
    mmio = 120;
    notification = 2400;   (* doorbell + exit path *)
    gate_crossing = 110;   (* wrpkru-style switch + spill *)
    tee_switch = 9000;     (* SGX-class world switch *)
    page_share = 900;
    page_share_extra = 90;
    page_unshare = 2600;   (* unmap + remote TLB shootdown *)
    page_unshare_extra = 160;
    aead_base = 250;
    aead_per_byte_q2 = 5;  (* 1.25 cycles/B software ChaCha20-Poly1305 *)
    dma_base = 300;
    dma_per_byte_q2 = 1;
    alloc = 30;
  }

let copy_cost m nbytes = m.copy_base + ((nbytes * m.copy_per_byte_q2) / 4)
let aead_cost m nbytes = m.aead_base + ((nbytes * m.aead_per_byte_q2) / 4)
let dma_cost m nbytes = m.dma_base + ((nbytes * m.dma_per_byte_q2) / 4)

let nanoseconds m cycles = float_of_int cycles /. m.cycles_per_ghz

(* Categories let experiments report *where* a configuration spends its
   cycles, not just how many. *)
type category =
  | Copy
  | Check
  | Ring
  | Mmio
  | Notification
  | Gate
  | Tee_switch
  | Share
  | Unshare
  | Crypto
  | Dma
  | Alloc
  | Stack  (** protocol processing in the I/O stack *)

let all_categories =
  [ Copy; Check; Ring; Mmio; Notification; Gate; Tee_switch; Share; Unshare; Crypto; Dma; Alloc; Stack ]

let category_name = function
  | Copy -> "copy"
  | Check -> "check"
  | Ring -> "ring"
  | Mmio -> "mmio"
  | Notification -> "notify"
  | Gate -> "gate"
  | Tee_switch -> "tee-switch"
  | Share -> "share"
  | Unshare -> "unshare"
  | Crypto -> "crypto"
  | Dma -> "dma"
  | Alloc -> "alloc"
  | Stack -> "stack"

let category_index = function
  | Copy -> 0
  | Check -> 1
  | Ring -> 2
  | Mmio -> 3
  | Notification -> 4
  | Gate -> 5
  | Tee_switch -> 6
  | Share -> 7
  | Unshare -> 8
  | Crypto -> 9
  | Dma -> 10
  | Alloc -> 11
  | Stack -> 12

type meter = {
  cycles : int array;  (* per category *)
  counts : int array;
}

let meter () = { cycles = Array.make 13 0; counts = Array.make 13 0 }

let charge meter cat cycles =
  let i = category_index cat in
  meter.cycles.(i) <- meter.cycles.(i) + cycles;
  meter.counts.(i) <- meter.counts.(i) + 1

let total meter = Array.fold_left ( + ) 0 meter.cycles
let cycles_of meter cat = meter.cycles.(category_index cat)
let count_of meter cat = meter.counts.(category_index cat)

let reset meter =
  Array.fill meter.cycles 0 13 0;
  Array.fill meter.counts 0 13 0

let snapshot meter = { cycles = Array.copy meter.cycles; counts = Array.copy meter.counts }

let diff ~before ~after =
  {
    cycles = Array.init 13 (fun i -> after.cycles.(i) - before.cycles.(i));
    counts = Array.init 13 (fun i -> after.counts.(i) - before.counts.(i));
  }

let pp_meter ppf m =
  let any = ref false in
  List.iter
    (fun cat ->
      let i = category_index cat in
      if m.cycles.(i) > 0 || m.counts.(i) > 0 then begin
        if !any then Fmt.pf ppf " ";
        any := true;
        Fmt.pf ppf "%s=%d(%dx)" (category_name cat) m.cycles.(i) m.counts.(i)
      end)
    all_categories;
  if not !any then Fmt.pf ppf "(idle)"
