(** Simulated cycle-cost model and per-category work meter.

    "Performance" in this reproduction is counted work: copies, checks,
    ring operations, domain crossings, notifications and crypto all charge
    cycles to a {!meter} under a {!model}. See DESIGN.md §1 for why this
    substitution preserves the paper's performance *shapes*. *)

type model = {
  cycles_per_ghz : float;
  copy_base : int;
  copy_per_byte_q2 : int;
  check : int;
  ring_op : int;
  ring_burst_op : int;
  mmio : int;
  notification : int;
  gate_crossing : int;
  tee_switch : int;
  page_share : int;
  page_share_extra : int;
  page_unshare : int;
  page_unshare_extra : int;
  aead_base : int;
  aead_per_byte_q2 : int;
  dma_base : int;
  dma_per_byte_q2 : int;
  alloc : int;
}

val default : model

val copy_cost : model -> int -> int
(** Cycles to copy [n] bytes. *)

val aead_cost : model -> int -> int
val dma_cost : model -> int -> int

val nanoseconds : model -> int -> float
(** Convert a cycle count to simulated nanoseconds. *)

type category =
  | Copy
  | Check
  | Ring
  | Mmio
  | Notification
  | Gate
  | Tee_switch
  | Share
  | Unshare
  | Crypto
  | Dma
  | Alloc
  | Stack

val all_categories : category list
val category_name : category -> string

type meter

val meter : unit -> meter
val charge : meter -> category -> int -> unit
val total : meter -> int
val cycles_of : meter -> category -> int
val count_of : meter -> category -> int
val reset : meter -> unit

val snapshot : meter -> meter
(** Immutable copy of the current tallies. *)

val diff : before:meter -> after:meter -> meter
(** Per-category difference of two snapshots. *)

val pp_meter : Format.formatter -> meter -> unit
