(* Minimal JSON reader/writer for the lint baseline file.

   The repository deliberately has no JSON dependency (DESIGN.md §5);
   telemetry writes JSON by hand and this module adds the read side the
   baseline gate needs. It parses the full JSON grammar (objects, arrays,
   strings with escapes, numbers, booleans, null) but is tuned for small
   trusted inputs: the committed LINT_baseline.json, not network data. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- reading --------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> error cur (Printf.sprintf "expected %c, found %c" c c')
  | None -> error cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur ("expected " ^ word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
        | Some ('"' | '\\' | '/') as c ->
            advance cur;
            Buffer.add_char buf (Option.get c);
            go ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then error cur "truncated \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> error cur "bad \\u escape"
            in
            (* Encode the code point as UTF-8 (enough for baseline text). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c when is_num_char c -> true | _ -> false) do
    advance cur
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error cur ("bad number: " ^ text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          fields := (k, v) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; members ()
          | Some '}' -> advance cur
          | _ -> error cur "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; elements ()
          | Some ']' -> advance cur
          | _ -> error cur "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> Num (parse_number cur)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then error cur "trailing garbage after value";
  v

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(* --- accessors ------------------------------------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_int_opt = function Num f -> Some (int_of_float f) | _ -> None

(* --- writing --------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
