(** cio_lint: interface-safety analyzer over this repository's own OCaml
    sources, encoding the Figure 3/4 hardening-commit taxonomy as
    checkable rules. See DESIGN.md §9 for the rule-to-category mapping
    and worked examples. *)

type rule =
  | DF  (** double fetch of shared memory -> "add copies" *)
  | UV  (** unvalidated device-controlled value -> "add checks" *)
  | UW  (** unbounded work over device-written state -> "design changes" *)
  | UC  (** unsafe code in a trusted component -> "add checks" *)
  | SI  (** stateless-interface drift -> "design changes" *)

val all_rules : rule list
val rule_name : rule -> string
val rule_title : rule -> string
val rule_of_name : string -> rule option

val rule_category : rule -> Cio_data.Hardening.category
(** The Figure 3/4 hardening-commit category a finding of this rule would
    eventually be fixed by. *)

type role =
  | Trusted  (** core-TCB dirs (from [Tcb.profiles]) + cionet ring + util *)
  | Corpus  (** intentionally-vulnerable living test corpus *)
  | Host_model  (** plays the adversary; guest-side rules do not apply *)
  | Other

val role_name : role -> string
val classify : string -> role
(** Classify a repo-relative [.ml] path. *)

type finding = {
  f_rule : rule;
  f_file : string;
  f_func : string;
  f_line : int;
  f_detail : string;
  f_role : role;
}

val key : finding -> string
(** Line-number-free identity used for baseline comparison. *)

val scan_file : root:string -> string -> finding list
(** Analyze one repo-relative [.ml] file. Host-model files yield []. *)

val scan : root:string -> finding list
(** Analyze every [.ml] under [root]/lib, in path order. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_findings : Format.formatter -> finding list -> unit
val to_json : finding list -> Json_lite.t

(** {2 Baseline and the two-sided CI gate} *)

type baseline_entry = { b_key : string; b_file : string; b_rule : string }

val load_baseline : string -> baseline_entry list
(** Raises [Failure] on a malformed or wrong-schema baseline. *)

val corpus_min_findings : int
val corpus_min_categories : int

type gate_result = {
  g_new_trusted : finding list;
  g_corpus_missing : baseline_entry list;
  g_corpus_count : int;
  g_corpus_categories : int;
  g_ok : bool;
}

val gate : baseline:baseline_entry list -> finding list -> gate_result
(** Two-sided: fails on any new trusted-component finding (hardening must
    not regress) and on any vanished corpus finding (the rules must not
    regress — [driver_unhardened.ml] is the living test corpus). *)

val pp_gate : Format.formatter -> gate_result -> unit
