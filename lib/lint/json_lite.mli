(** Minimal JSON reader/writer for the lint baseline. Parses the full
    grammar; intended for small trusted inputs (the committed baseline),
    not untrusted network data. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
val of_file : string -> t

val member : string -> t -> t option
val to_list : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option

val write : Buffer.t -> t -> unit
val to_string : t -> string
