(* cio_lint: an interface-safety analyzer over this repository's own
   OCaml sources.

   The paper's Figures 3/4 taxonomize years of NetVSC/VirtIO hardening
   commits — double fetches, missing validation of device-controlled
   values, unbounded loops over device-written state — and argue these
   bugs recur because interface safety is retrofitted instead of checked
   by construction. This module encodes those hardening-commit categories
   as syntactic rules over the untyped AST ([compiler-libs.common]'s
   [Parsetree], walked directly), so the discipline the hardened driver
   and the cionet ring implement by hand is machine-checked on every
   build:

     DF  double fetch            -> Fig. 3/4 "add copies"
     UV  unvalidated value       -> Fig. 3/4 "add checks"
     UW  unbounded work          -> Fig. 3/4 "design changes"
     UC  unsafe code in the TCB  -> Fig. 3/4 "add checks"
     SI  stateless-interface drift -> Fig. 3/4 "design changes"

   The analysis is deliberately heuristic and intra-procedural: it tracks
   a per-function taint set seeded by *guest fetches of host-writable
   memory* (module-qualified [Region]/[Vring] reads performed as the
   [Guest] actor), propagates through local bindings in source order, and
   is discharged by recognized validation forms (clamps, masks, bounds
   checks, relational guards). Wrapper functions that centralize fetching
   (e.g. the cionet ring's [read_header]) are each analyzed on their own
   body; values returned from them are treated as already-confined, which
   is exactly the paper's argument for funnelling every fetch through one
   audited single-fetch helper. [driver_unhardened.ml] is the analyzer's
   living test corpus: the gate fails if it ever stops producing its
   expected findings, because that means the rules regressed, not the
   driver improved. *)

open Parsetree

(* --- rules and findings ---------------------------------------------- *)

type rule = DF | UV | UW | UC | SI

let all_rules = [ DF; UV; UW; UC; SI ]

let rule_name = function DF -> "DF" | UV -> "UV" | UW -> "UW" | UC -> "UC" | SI -> "SI"

let rule_title = function
  | DF -> "double fetch of shared memory"
  | UV -> "unvalidated device-controlled value"
  | UW -> "unbounded work over device-written state"
  | UC -> "unsafe code in a trusted component"
  | SI -> "stateless-interface drift"

(* Each rule's primary Figure 3/4 hardening-commit category (the class of
   retrofit commit that fixes what the rule detects). *)
let rule_category = function
  | DF -> Cio_data.Hardening.Add_copies
  | UV -> Cio_data.Hardening.Add_checks
  | UW -> Cio_data.Hardening.Design_change
  | UC -> Cio_data.Hardening.Add_checks
  | SI -> Cio_data.Hardening.Design_change

let rule_of_name = function
  | "DF" -> Some DF
  | "UV" -> Some UV
  | "UW" -> Some UW
  | "UC" -> Some UC
  | "SI" -> Some SI
  | _ -> None

type role = Trusted | Corpus | Host_model | Other

let role_name = function
  | Trusted -> "trusted"
  | Corpus -> "corpus"
  | Host_model -> "host-model"
  | Other -> "unclassified"

type finding = {
  f_rule : rule;
  f_file : string;  (* repo-relative path *)
  f_func : string;  (* enclosing top-level binding *)
  f_line : int;
  f_detail : string;
  f_role : role;
}

(* Stable identity for baseline comparison: everything except the line
   number, which drifts with unrelated edits. *)
let key f =
  Printf.sprintf "%s|%s|%s|%s" (rule_name f.f_rule) f.f_file f.f_func f.f_detail

(* --- file classification --------------------------------------------- *)

(* The analyzer's living test corpus: intentionally-trusting drivers kept
   as the proof that the rules still fire. Exempt from the trusted gate;
   protected by the regression side of the gate instead. *)
let corpus_files = [ "lib/virtio/driver_unhardened.ml" ]

(* Host-side simulators: they *play the untrusted host*, so the guest
   interface-safety rules do not apply to them (they are the adversary
   the rules defend against). Skipped entirely. *)
let host_model_files =
  [ "lib/virtio/device.ml"; "lib/cionet/host_model.ml"; "lib/netsim/adversary.ml" ]

let host_model_dirs = [ "lib/attack" ]

(* Trusted = every directory that appears in some Figure-5 core TCB
   (derived live from [Tcb.profiles], so the lint gate and the TCB
   accounting can never disagree about what is core), plus the
   quarantined-but-safety-critical cionet ring modules, the shared-memory
   protection layer in lib/mem (it *is* the boundary every rule reasons
   about), and the shared substrate in lib/util. *)
let trusted_dirs () =
  let profile_dirs =
    List.concat_map
      (fun p -> List.concat_map Cio_tcb.Tcb.component_dirs p.Cio_tcb.Tcb.core)
      Cio_tcb.Tcb.profiles
  in
  List.sort_uniq compare (profile_dirs @ [ "lib/cionet"; "lib/mem"; "lib/util" ])

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let classify rel =
  if List.mem rel corpus_files then Corpus
  else if
    List.mem rel host_model_files
    || List.exists (fun d -> starts_with (d ^ "/") rel) host_model_dirs
  then Host_model
  else if List.exists (fun d -> starts_with (d ^ "/") rel) (trusted_dirs ()) then Trusted
  else Other

(* --- name tables ------------------------------------------------------ *)

(* Fetches that taint unconditionally: guest-only read entry points. *)
let fetch_always = [ "Region.guest_read"; "Region.guest_read_into"; "guest_read"; "guest_read_into" ]

(* Fetches that taint only when performed as the [Guest] actor (the
   literal [Guest] constructor appears among the arguments): a host-actor
   read is the device's own access, not a guest fetch of shared state.
   [Region.copy_in] is deliberately absent — it is the sanctioned
   snapshot primitive, the *fix* for a double fetch. *)
let fetch_with_guest_actor =
  [
    "Region.read"; "Region.read_into"; "Region.read_u8"; "Region.read_u16"; "Region.read_u32";
    "Region.read_u64"; "Vring.used_idx"; "Vring.used_entry"; "Vring.read_desc"; "Vring.avail_idx";
    "Vring.avail_entry";
  ]

let unsafe_idents =
  [
    "Bytes.unsafe_get"; "Bytes.unsafe_set"; "Bytes.unsafe_blit"; "Bytes.unsafe_fill";
    "Bytes.unsafe_of_string"; "Bytes.unsafe_to_string"; "Array.unsafe_get"; "Array.unsafe_set";
    "String.unsafe_get"; "String.unsafe_blit"; "Obj.magic";
  ]

(* Recognized validation forms. A tainted variable mentioned as an
   argument of one of these is considered confined from that point on
   (matching the hardened driver's [valid_id]/clamp discipline and the
   ring's masking). *)
let sanitizer_exact = [ "min"; "max"; "land"; "lor"; "lxor"; "lsr"; "asr"; "mod"; "abs" ]

let sanitizer_substrings = [ "valid"; "check"; "mask"; "clamp"; "bound"; "confine"; "align"; "sanit" ]

let comparison_heads = [ "<"; "<="; ">"; ">=" ]

(* Sinks: index/length/offset positions where a still-tainted value is a
   spatial-safety bug. [positions] are 0-based over *positional* args. *)
type sink_spec = { positions : int list; labels : string list }

let sinks =
  [
    ("Bytes.create", { positions = [ 0 ]; labels = [] });
    ("Bytes.make", { positions = [ 0 ]; labels = [] });
    ("Bytes.sub", { positions = [ 1; 2 ]; labels = [] });
    ("Bytes.sub_string", { positions = [ 1; 2 ]; labels = [] });
    ("Bytes.blit", { positions = [ 1; 3; 4 ]; labels = [] });
    ("Bytes.blit_string", { positions = [ 1; 3; 4 ]; labels = [] });
    ("Bytes.fill", { positions = [ 1; 2 ]; labels = [] });
    ("Bytes.get", { positions = [ 1 ]; labels = [] });
    ("Bytes.set", { positions = [ 1 ]; labels = [] });
    ("Bytes.unsafe_get", { positions = [ 1 ]; labels = [] });
    ("Bytes.unsafe_set", { positions = [ 1 ]; labels = [] });
    ("String.get", { positions = [ 1 ]; labels = [] });
    ("String.sub", { positions = [ 1; 2 ]; labels = [] });
    ("Array.get", { positions = [ 1 ]; labels = [] });
    ("Array.set", { positions = [ 1 ]; labels = [] });
    ("Array.make", { positions = [ 0 ]; labels = [] });
    ("Array.sub", { positions = [ 1; 2 ]; labels = [] });
    ("Array.unsafe_get", { positions = [ 1 ]; labels = [] });
    ("Array.unsafe_set", { positions = [ 1 ]; labels = [] });
    ("Region.guest_read", { positions = []; labels = [ "off"; "len" ] });
    ("Region.host_read", { positions = []; labels = [ "off"; "len" ] });
    ("Region.read", { positions = []; labels = [ "off"; "len" ] });
    ("Region.guest_read_into", { positions = []; labels = [ "off" ] });
    ("Region.host_read_into", { positions = []; labels = [ "off" ] });
    ("Region.read_into", { positions = []; labels = [ "off" ] });
    ("Region.copy_in", { positions = []; labels = [ "off"; "len" ] });
    ("Region.copy_in_into", { positions = []; labels = [ "off" ] });
    ("Region.copy_out", { positions = []; labels = [ "off" ] });
    ("Region.guest_write", { positions = []; labels = [ "off" ] });
    ("Region.host_write", { positions = []; labels = [ "off" ] });
    ("Region.read_u8", { positions = []; labels = [ "off" ] });
    ("Region.read_u16", { positions = []; labels = [ "off" ] });
    ("Region.read_u32", { positions = []; labels = [ "off" ] });
    ("Region.read_u64", { positions = []; labels = [ "off" ] });
    ("Region.write_u8", { positions = []; labels = [ "off" ] });
    ("Region.write_u16", { positions = []; labels = [ "off" ] });
    ("Region.write_u32", { positions = []; labels = [ "off" ] });
    ("Region.write_u64", { positions = []; labels = [ "off" ] });
    ("Region.share_range", { positions = []; labels = [ "off"; "len" ] });
    ("Region.unshare_range", { positions = []; labels = [ "off"; "len" ] });
    ("Region.share_page", { positions = [ 1 ]; labels = [] });
    ("Region.unshare_page", { positions = [ 1 ]; labels = [] });
    ("Vring.read_desc", { positions = [ 2 ]; labels = [] });
    ("Vring.used_entry", { positions = [ 2 ]; labels = [] });
    ("Vring.avail_entry", { positions = [ 2 ]; labels = [] });
    ("Vring.write_desc", { positions = [ 2 ]; labels = [] });
    ("Vring.set_avail_entry", { positions = [ 2 ]; labels = [] });
    ("Vring.set_used_entry", { positions = [ 2 ]; labels = [] });
  ]

(* --- AST helpers ------------------------------------------------------ *)

let flatten_lid lid = String.concat "." (Longident.flatten lid)

(* Candidate lookup names for an identifier: fully qualified, the last
   two components (strips library prefixes like [Cio_mem.]), and the bare
   name. *)
let name_candidates name =
  let parts = String.split_on_char '.' name in
  let n = List.length parts in
  let last k =
    if n <= k then None
    else Some (String.concat "." (List.filteri (fun i _ -> i >= n - k) parts))
  in
  List.filter_map Fun.id [ Some name; last 2; last 1 ]

let head_name e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (flatten_lid txt) | _ -> None

let lookup_in table name =
  match name with
  | None -> None
  | Some n ->
      List.fold_left
        (fun acc cand -> match acc with Some _ -> acc | None -> List.assoc_opt cand table)
        None (name_candidates n)

let name_in list name =
  match name with
  | None -> false
  | Some n -> List.exists (fun cand -> List.mem cand list) (name_candidates n)

let last_component name =
  match List.rev (String.split_on_char '.' name) with [] -> name | last :: _ -> last

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let is_sanitizer_head name =
  match name with
  | None -> false
  | Some n ->
      let l = last_component n in
      List.mem l sanitizer_exact
      || List.exists (fun sub -> contains_substring ~sub l) sanitizer_substrings

let is_comparison_head name =
  match name with None -> false | Some n -> List.mem (last_component n) comparison_heads

(* All simple (unqualified) identifiers mentioned in an expression. *)
let iter_idents fn e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt = Longident.Lident v; _ } -> fn v
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e

let pattern_vars pat =
  let vars = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> vars := txt :: !vars
          | Ppat_alias (_, { txt; _ }) -> vars := txt :: !vars
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it pat;
  List.rev !vars

(* Does the application carry the literal [Guest] actor? *)
let has_guest_actor args =
  List.exists
    (fun (_, a) ->
      match a.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "Guest"; _ }, None) -> true
      | Pexp_ident { txt = Longident.Lident "Guest"; _ } -> true
      | _ -> false)
    args

let is_fetch_app e =
  match e.pexp_desc with
  | Pexp_apply (f, args) ->
      let name = head_name f in
      name_in fetch_always name || (name_in fetch_with_guest_actor name && has_guest_actor args)
  | _ -> false

let collapse_ws s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' | '\r' -> if Buffer.length buf > 0 then pending := true
      | c ->
          if !pending then Buffer.add_char buf ' ';
          pending := false;
          Buffer.add_char buf c)
    s;
  Buffer.contents buf

let truncate n s = if String.length s <= n then s else String.sub s 0 n ^ "..."

let normalize_expr e = truncate 160 (collapse_ws (Pprintast.string_of_expression e))

let line_of e = e.pexp_loc.Location.loc_start.Lexing.pos_lnum

(* --- per-function analysis -------------------------------------------- *)

type ctx = {
  c_file : string;
  c_role : role;
  c_func : string;
  c_in_cionet_ring : bool;
  tainted : (string, unit) Hashtbl.t;
  mutable fetches : (string * int) list;  (* normalized fetch app, line *)
  mutable has_txn : bool;
  mutable out : finding list;
}

let emit ctx rule line detail =
  ctx.out <-
    { f_rule = rule; f_file = ctx.c_file; f_func = ctx.c_func; f_line = line; f_detail = detail; f_role = ctx.c_role }
    :: ctx.out

let mark_tainted ctx v = Hashtbl.replace ctx.tainted v ()
let mark_clean ctx v = Hashtbl.remove ctx.tainted v
let is_tainted ctx v = Hashtbl.mem ctx.tainted v

let tainted_vars_in ctx e =
  let acc = ref [] in
  iter_idents (fun v -> if is_tainted ctx v && not (List.mem v !acc) then acc := v :: !acc) e;
  List.sort compare !acc

let mentions_tainted ctx e = tainted_vars_in ctx e <> []

(* An expression carries taint if it is itself a guest fetch, or mentions
   a currently-tainted variable — unless its head is a recognized
   validation form (the value has just been confined). *)
let expr_tainted ctx e =
  if is_fetch_app e then true
  else
    let head = match e.pexp_desc with Pexp_apply (f, _) -> head_name f | _ -> None in
    if is_sanitizer_head head then false else mentions_tainted ctx e

(* Discharge: a tainted variable passed through a validation form or a
   relational guard is considered confined from here on. *)
let apply_sanitizer_mentions ctx f args =
  let name = head_name f in
  if is_sanitizer_head name || is_comparison_head name then
    List.iter (fun (_, a) -> iter_idents (fun v -> mark_clean ctx v) a) args

let positional args =
  List.filter_map (fun (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> None) args

let labelled args lbl =
  List.find_map
    (fun (l, a) -> match l with Asttypes.Labelled l' when l' = lbl -> Some a | _ -> None)
    args

let check_sink ctx app_line f args =
  match lookup_in sinks (head_name f) with
  | None -> ()
  | Some spec ->
      let name = match head_name f with Some n -> n | None -> "?" in
      let short =
        match String.split_on_char '.' name with
        | _ :: _ :: _ :: _ as parts ->
            (* strip library prefixes like [Cio_mem.] down to Module.fn *)
            String.concat "." (List.filteri (fun i _ -> i >= List.length parts - 2) parts)
        | _ -> name
      in
      let pos_args = positional args in
      let flag where a =
        if expr_tainted ctx a then begin
          let vars = tainted_vars_in ctx a in
          let via = if vars = [] then "" else " via " ^ String.concat ", " vars in
          emit ctx UV app_line
            (Printf.sprintf "untrusted value reaches %s %s%s" short where via)
        end
      in
      List.iter
        (fun p -> match List.nth_opt pos_args p with Some a -> flag (Printf.sprintf "argument %d" p) a | None -> ())
        spec.positions;
      List.iter
        (fun l -> match labelled args l with Some a -> flag (Printf.sprintf "~%s" l) a | None -> ())
        spec.labels

let check_unsafe ctx e lid =
  let name = flatten_lid lid.Location.txt in
  if List.exists (fun u -> List.mem u (name_candidates name)) unsafe_idents then
    emit ctx UC (line_of e) (Printf.sprintf "unsafe primitive %s" name)

(* UW: a recursive function whose next step is steered by a value fetched
   from shared memory inside its own body — the descriptor-chain walk.
   A raise-based fuse is not a bound: it converts unbounded work into a
   crash, which is still the Fig. 3/4 bug class. *)
let check_rec_chain_walk ctx fname body =
  let fetch_bound = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb -> if is_fetch_app vb.pvb_expr then fetch_bound := pattern_vars vb.pvb_pat @ !fetch_bound)
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it body;
  if !fetch_bound <> [] then begin
    let hit = ref None in
    let it2 =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match ex.pexp_desc with
            | Pexp_apply (f, args) when head_name f = Some fname ->
                List.iter
                  (fun (_, a) ->
                    iter_idents
                      (fun v -> if List.mem v !fetch_bound && !hit = None then hit := Some (line_of ex, v))
                      a)
                  args
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it2.expr it2 body;
    match !hit with
    | Some (line, v) ->
        emit ctx UW line
          (Printf.sprintf "recursion in %s is steered by device-fetched value %s (no structural bound)"
             fname v)
    | None -> ()
  end

(* UW (loop form): a while loop whose condition depends on a variable
   that the body re-fetches from shared memory — the bound moves under
   the loop. *)
let check_while ctx cond body =
  let cond_vars = tainted_vars_in ctx cond in
  if cond_vars <> [] then begin
    let refetched = ref None in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match ex.pexp_desc with
            | Pexp_let (_, vbs, _) ->
                List.iter
                  (fun vb ->
                    if is_fetch_app vb.pvb_expr then
                      List.iter
                        (fun v -> if List.mem v cond_vars && !refetched = None then refetched := Some (line_of ex, v))
                        (pattern_vars vb.pvb_pat))
                  vbs
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it body;
    match !refetched with
    | Some (line, v) ->
        emit ctx UW line
          (Printf.sprintf "while-loop bound %s is re-fetched from shared memory inside the loop" v)
    | None -> ()
  end

let check_setfield ctx line lid rhs =
  if ctx.c_in_cionet_ring && expr_tainted ctx rhs then
    let field = flatten_lid lid.Location.txt in
    let vars = tainted_vars_in ctx rhs in
    emit ctx SI line
      (Printf.sprintf "ring-module mutable field %s derives from untrusted input%s" field
         (if vars = [] then "" else " via " ^ String.concat ", " vars))

(* The walker: source-order traversal maintaining the taint set. *)
let rec walk ctx e =
  match e.pexp_desc with
  | Pexp_ident lid ->
      check_unsafe ctx e lid;
      let n = flatten_lid lid.Location.txt in
      if List.mem (last_component n) [ "with_txn"; "begin_txn" ] then ctx.has_txn <- true
  | Pexp_let (rf, vbs, body) ->
      if rf = Asttypes.Recursive then
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = fname; _ } -> check_rec_chain_walk ctx fname vb.pvb_expr
            | _ -> ())
          vbs;
      List.iter
        (fun vb ->
          walk ctx vb.pvb_expr;
          let vars = pattern_vars vb.pvb_pat in
          if expr_tainted ctx vb.pvb_expr then List.iter (mark_tainted ctx) vars
          else List.iter (mark_clean ctx) vars)
        vbs;
      walk ctx body
  | Pexp_apply (f, args) ->
      if is_fetch_app e then ctx.fetches <- (normalize_expr e, line_of e) :: ctx.fetches;
      check_sink ctx (line_of e) f args;
      (* Assignment through a ref cell counts as mutable state too. *)
      (match (head_name f, args) with
      | Some ":=", [ (_, lhs); (_, rhs) ] -> (
          match lhs.pexp_desc with
          | Pexp_ident lid -> check_setfield ctx (line_of e) lid rhs
          | _ -> ())
      | _ -> ());
      walk ctx f;
      List.iter (fun (_, a) -> walk ctx a) args;
      (* Discharge after walking the arguments so the sink check above saw
         the pre-validation state of this same node's arguments. *)
      apply_sanitizer_mentions ctx f args
  | Pexp_while (cond, body) ->
      walk ctx cond;
      check_while ctx cond body;
      walk ctx body
  | Pexp_setfield (lhs, lid, rhs) ->
      walk ctx lhs;
      walk ctx rhs;
      check_setfield ctx (line_of e) lid rhs
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk ctx scrut;
      let scrut_tainted = expr_tainted ctx scrut in
      List.iter
        (fun c ->
          if scrut_tainted then List.iter (mark_tainted ctx) (pattern_vars c.pc_lhs);
          Option.iter (walk ctx) c.pc_guard;
          walk ctx c.pc_rhs)
        cases
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (walk ctx) c.pc_guard;
          walk ctx c.pc_rhs)
        cases
  | Pexp_fun (_, default, _, body) ->
      Option.iter (walk ctx) default;
      walk ctx body
  | Pexp_sequence (a, b) ->
      walk ctx a;
      walk ctx b
  | Pexp_ifthenelse (c, t, e') ->
      walk ctx c;
      walk ctx t;
      Option.iter (walk ctx) e'
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> walk ctx e'
  | Pexp_tuple l | Pexp_array l -> List.iter (walk ctx) l
  | Pexp_construct (_, eo) | Pexp_variant (_, eo) -> Option.iter (walk ctx) eo
  | Pexp_record (fields, base) ->
      Option.iter (walk ctx) base;
      List.iter (fun (_, v) -> walk ctx v) fields
  | Pexp_field (e', _) -> walk ctx e'
  | Pexp_for (_, lo, hi, _, body) ->
      walk ctx lo;
      walk ctx hi;
      walk ctx body
  | Pexp_lazy e' | Pexp_assert e' | Pexp_newtype (_, e') | Pexp_letexception (_, e') -> walk ctx e'
  | Pexp_open (_, e') -> walk ctx e'
  | Pexp_letmodule (_, me, e') ->
      walk_module ctx me;
      walk ctx e'
  | Pexp_send (e', _) -> walk ctx e'
  | _ -> ()

and walk_module ctx me =
  match me.pmod_desc with
  | Pmod_structure str ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter (fun vb -> walk ctx vb.pvb_expr) vbs
          | _ -> ())
        str
  | _ -> ()

let finish_df ctx =
  (* Group identical fetch expressions: the same shared offset pulled
     twice in one function without an intervening snapshot is the
     textbook double fetch — unless the function brackets its parse in a
     [Region] transaction, the dynamic equivalent. *)
  if not ctx.has_txn then begin
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (norm, line) ->
        let prev = try Hashtbl.find tbl norm with Not_found -> [] in
        Hashtbl.replace tbl norm (line :: prev))
      ctx.fetches;
    Hashtbl.iter
      (fun norm lines ->
        if List.length lines >= 2 then
          let line = List.fold_left max 0 lines in
          emit ctx DF line (Printf.sprintf "fetched twice from shared memory: %s" norm))
      tbl
  end

let analyze_binding ~file ~role ~in_ring ~recursive vb =
  let fname =
    match pattern_vars vb.pvb_pat with name :: _ -> name | [] -> "(toplevel)"
  in
  let ctx =
    {
      c_file = file;
      c_role = role;
      c_func = fname;
      c_in_cionet_ring = in_ring;
      tainted = Hashtbl.create 16;
      fetches = [];
      has_txn = false;
      out = [];
    }
  in
  if recursive then begin
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> check_rec_chain_walk ctx txt vb.pvb_expr
    | _ -> ()
  end;
  walk ctx vb.pvb_expr;
  finish_df ctx;
  List.rev ctx.out

(* --- file and tree scanning ------------------------------------------- *)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

(* SI applies to the guest-side cionet ring modules: the paper's
   stateless-interface principle says their mutable state must never
   derive from anything the host wrote. *)
let in_cionet_ring rel =
  starts_with "lib/cionet/" rel && not (List.mem rel host_model_files)

let rec analyze_structure ~file ~role ~in_ring str =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (rf, vbs) ->
          List.concat_map
            (fun vb ->
              analyze_binding ~file ~role ~in_ring ~recursive:(rf = Asttypes.Recursive) vb)
            vbs
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          analyze_structure ~file ~role ~in_ring sub
      | Pstr_eval (e, _) ->
          let vb =
            {
              pvb_pat = Ast_helper.Pat.any ();
              pvb_expr = e;
              pvb_constraint = None;
              pvb_attributes = [];
              pvb_loc = item.pstr_loc;
            }
          in
          analyze_binding ~file ~role ~in_ring ~recursive:false vb
      | _ -> [])
    str

let scan_file ~root rel =
  let role = classify rel in
  if role = Host_model then []
  else begin
    let str = parse_file (Filename.concat root rel) in
    analyze_structure ~file:rel ~role ~in_ring:(in_cionet_ring rel) str
  end

let ml_files ~root =
  let out = ref [] in
  let rec go rel_dir =
    let abs = Filename.concat root rel_dir in
    match Sys.readdir abs with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            let rel = Filename.concat rel_dir entry in
            let abs_entry = Filename.concat root rel in
            if Sys.is_directory abs_entry then go rel
            else if Filename.check_suffix entry ".ml" then out := rel :: !out)
          entries
  in
  go "lib";
  List.rev !out

let scan ~root =
  List.concat_map (fun rel -> scan_file ~root rel) (ml_files ~root)

(* --- reporting -------------------------------------------------------- *)

let category_name f = Cio_data.Hardening.category_name (rule_category f.f_rule)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s/%s] (%s) %s: %s" f.f_file f.f_line (rule_name f.f_rule)
    (category_name f) (role_name f.f_role) f.f_func f.f_detail

let pp_findings ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) findings;
  let by_rule r = List.length (List.filter (fun f -> f.f_rule = r) findings) in
  Format.fprintf ppf "%d finding(s):" (List.length findings);
  List.iter (fun r -> Format.fprintf ppf " %s=%d" (rule_name r) (by_rule r)) all_rules;
  Format.fprintf ppf "@."

let finding_to_json f =
  Json_lite.Obj
    [
      ("rule", Json_lite.Str (rule_name f.f_rule));
      ("category", Json_lite.Str (category_name f));
      ("file", Json_lite.Str f.f_file);
      ("function", Json_lite.Str f.f_func);
      ("line", Json_lite.Num (float_of_int f.f_line));
      ("detail", Json_lite.Str f.f_detail);
      ("role", Json_lite.Str (role_name f.f_role));
      ("key", Json_lite.Str (key f));
    ]

let to_json findings =
  let by_rule r = List.length (List.filter (fun f -> f.f_rule = r) findings) in
  Json_lite.Obj
    [
      ("schema", Json_lite.Str "cio-lint-v1");
      ("findings", Json_lite.List (List.map finding_to_json findings));
      ( "summary",
        Json_lite.Obj
          (("total", Json_lite.Num (float_of_int (List.length findings)))
          :: List.map (fun r -> (rule_name r, Json_lite.Num (float_of_int (by_rule r)))) all_rules)
      );
    ]

(* --- baseline and the two-sided gate ---------------------------------- *)

type baseline_entry = { b_key : string; b_file : string; b_rule : string }

let load_baseline path =
  let doc = Json_lite.of_file path in
  (match Json_lite.member "schema" doc with
  | Some (Json_lite.Str "cio-lint-v1") -> ()
  | _ -> failwith (path ^ ": not a cio-lint-v1 baseline"));
  match Option.bind (Json_lite.member "findings" doc) Json_lite.to_list with
  | None -> failwith (path ^ ": missing findings array")
  | Some items ->
      List.filter_map
        (fun item ->
          let str name = Option.bind (Json_lite.member name item) Json_lite.to_string_opt in
          match (str "key", str "file", str "rule") with
          | Some k, Some f, Some r -> Some { b_key = k; b_file = f; b_rule = r }
          | _ -> None)
        items

type gate_result = {
  g_new_trusted : finding list;  (* trusted-path findings not in the baseline *)
  g_corpus_missing : baseline_entry list;  (* expected corpus findings that vanished *)
  g_corpus_count : int;
  g_corpus_categories : int;
  g_ok : bool;
}

(* The corpus must keep demonstrating the rules work: at least this many
   findings across at least this many distinct rule categories. *)
let corpus_min_findings = 5
let corpus_min_categories = 3

let gate ~baseline findings =
  let current_keys = List.map key findings in
  let baseline_keys = List.map (fun b -> b.b_key) baseline in
  let new_trusted =
    List.filter
      (fun f -> f.f_role = Trusted && not (List.mem (key f) baseline_keys))
      findings
  in
  let corpus_missing =
    List.filter
      (fun b -> List.mem b.b_file corpus_files && not (List.mem b.b_key current_keys))
      baseline
  in
  let corpus_now = List.filter (fun f -> f.f_role = Corpus) findings in
  let corpus_rules = List.sort_uniq compare (List.map (fun f -> f.f_rule) corpus_now) in
  let ok =
    new_trusted = [] && corpus_missing = []
    && List.length corpus_now >= corpus_min_findings
    && List.length corpus_rules >= corpus_min_categories
  in
  {
    g_new_trusted = new_trusted;
    g_corpus_missing = corpus_missing;
    g_corpus_count = List.length corpus_now;
    g_corpus_categories = List.length corpus_rules;
    g_ok = ok;
  }

let pp_gate ppf g =
  if g.g_new_trusted <> [] then begin
    Format.fprintf ppf "FAIL: %d new finding(s) in trusted components:@."
      (List.length g.g_new_trusted);
    List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) g.g_new_trusted
  end;
  if g.g_corpus_missing <> [] then begin
    Format.fprintf ppf
      "FAIL: %d expected corpus finding(s) vanished (the rules regressed, not the driver):@."
      (List.length g.g_corpus_missing);
    List.iter (fun b -> Format.fprintf ppf "  %s@." b.b_key) g.g_corpus_missing
  end;
  if g.g_corpus_count < corpus_min_findings || g.g_corpus_categories < corpus_min_categories then
    Format.fprintf ppf
      "FAIL: corpus coverage too thin: %d finding(s) in %d categories (need >= %d in >= %d)@."
      g.g_corpus_count g.g_corpus_categories corpus_min_findings corpus_min_categories;
  if g.g_ok then
    Format.fprintf ppf
      "gate ok: no new trusted-path findings; corpus still yields %d finding(s) in %d categories@."
      g.g_corpus_count g.g_corpus_categories
