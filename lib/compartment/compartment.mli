(** Intra-TEE compartments: domain-owned buffers with explicit grants and
    cost-metered boundary crossings (MPK-class gate or full TEE switch —
    the E8 comparison). *)

open Cio_util

exception Access_violation of string

type domain

val domain_name : domain -> string
val domain_id : domain -> int

val domain_alive : domain -> bool

val domain_incarnation : domain -> int
(** 0 at creation; bumped by every {!restart_domain}. *)

type crossing = Gate | Tee_switch

type buf

type counters = {
  mutable crossings : int;
  mutable allocs : int;
  mutable denied : int;
  mutable crashes : int;
  mutable restarts : int;
}

type t

val create : ?model:Cost.model -> ?meter:Cost.meter -> crossing:crossing -> unit -> t
val meter : t -> Cost.meter
val counters : t -> counters

val add_domain : t -> name:string -> domain

val crash_domain : t -> domain -> unit
(** Kill a domain: every call into or out of it, and every memory access
    it attempts, raises {!Access_violation} until {!restart_domain}. *)

val restart_domain : t -> domain -> unit
(** Revive a crashed domain as a fresh incarnation. State the old
    incarnation held (e.g. TCP connections) is gone; the caller rebuilds
    it — see [Dual.restart_io]. *)

val call : t -> caller:domain -> callee:domain -> (unit -> 'a) -> 'a
(** Cross-domain call: entry and exit each pay the boundary cost.
    Same-domain calls are free. *)

val charge_crossing : t -> unit
(** Charge one boundary round trip without running anything (mailbox-style
    data handoff between asynchronously scheduled domains). *)

val alloc : t -> owner:domain -> int -> buf

val alloc_granted : t -> owner:domain -> reader:domain -> ?write:bool -> int -> buf
(** "Trusted component allocates": allocate in [owner] and grant [reader]
    access to exactly this buffer. *)

val grant : t -> buf -> to_:domain -> ?write:bool -> unit -> unit
val revoke : t -> buf -> from:domain -> unit
val free : t -> buf -> unit
val buf_size : buf -> int

val read : t -> as_:domain -> buf -> pos:int -> len:int -> bytes
(** Raises {!Access_violation} without ownership or a grant. *)

val write : t -> as_:domain -> buf -> pos:int -> bytes -> unit

val copy_between :
  t -> as_:domain -> src:buf -> dst:buf -> src_pos:int -> dst_pos:int -> len:int -> unit
