(* Intra-TEE compartmentalisation — the §3.1 lightweight L5 boundary.

   The dual-boundary design runs the I/O stack in its own compartment
   inside the TEE, so that compromising the stack (through the host
   boundary or a protocol bug) does not expose the confidential
   application. The paper argues a compartment boundary (MPK/CHERI-class,
   ~100 cycles) is the right tool because the relationship is *single*
   distrust — the stack trusts the app, the app does not trust the stack —
   whereas two separate TEEs would pay a full world switch (~10k cycles)
   for a dual-distrust boundary nobody needs. E8 reproduces exactly that
   comparison by flipping [crossing].

   Memory is modelled as domain-owned buffers with explicit grants; any
   access without ownership or a grant raises, which is how the attack
   harness shows that a compromised I/O stack cannot reach application
   memory. *)

open Cio_util
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind = Cio_telemetry.Kind

let m_crossings = Metrics.counter Metrics.default "l5.crossings"
let m_denied = Metrics.counter Metrics.default "l5.denied"
let m_crashes = Metrics.counter Metrics.default "l5.crashes"
let m_restarts = Metrics.counter Metrics.default "l5.restarts"

exception Access_violation of string

type domain = {
  id : int;
  dname : string;
  mutable alive : bool;
  mutable incarnation : int;  (* bumped on every restart *)
}

let domain_name d = d.dname
let domain_id d = d.id
let domain_alive d = d.alive
let domain_incarnation d = d.incarnation

type crossing = Gate | Tee_switch

type grant = { g_domain : int; g_write : bool }

type buf = {
  b_id : int;
  owner : int;
  data : bytes;
  mutable grants : grant list;
  mutable freed : bool;
}

type counters = {
  mutable crossings : int;
  mutable allocs : int;
  mutable denied : int;
  mutable crashes : int;
  mutable restarts : int;
}

type t = {
  model : Cost.model;
  meter : Cost.meter;
  crossing : crossing;
  mutable domains : domain list;
  mutable next_domain : int;
  mutable next_buf : int;
  counters : counters;
}

let create ?(model = Cost.default) ?meter ~crossing () =
  {
    model;
    meter = (match meter with Some m -> m | None -> Cost.meter ());
    crossing;
    domains = [];
    next_domain = 0;
    next_buf = 0;
    counters = { crossings = 0; allocs = 0; denied = 0; crashes = 0; restarts = 0 };
  }

let meter t = t.meter
let counters t = t.counters

let add_domain t ~name =
  let d = { id = t.next_domain; dname = name; alive = true; incarnation = 0 } in
  t.next_domain <- t.next_domain + 1;
  t.domains <- d :: t.domains;
  d

(* Crash containment (§3.1's quarantine made operational): a crashed
   domain can neither be entered nor touch any buffer — its grants are
   dead capabilities until a restart stands up a fresh incarnation. The
   crash is contained by construction: nothing the dead domain owned is
   reachable *from* it, and peers merely observe refused calls. *)
let crash_domain t d =
  if d.alive then begin
    d.alive <- false;
    t.counters.crashes <- t.counters.crashes + 1;
    Metrics.inc m_crashes;
    if Trace.on () then Trace.instant ~cat:Kind.l5 ("crash:" ^ d.dname)
  end

let restart_domain t d =
  if not d.alive then begin
    d.alive <- true;
    d.incarnation <- d.incarnation + 1;
    t.counters.restarts <- t.counters.restarts + 1;
    Metrics.inc m_restarts;
    if Trace.on () then
      Trace.instant ~arg:d.incarnation ~cat:Kind.l5 ("restart:" ^ d.dname)
  end

let crossing_cost t =
  match t.crossing with
  | Gate -> t.model.Cost.gate_crossing
  | Tee_switch -> t.model.Cost.tee_switch

(* Charge one boundary round trip without running anything: used when the
   domains interact through a shared mailbox rather than a synchronous
   call (the data-handoff pattern of the dual-boundary design). *)
let charge_crossing t =
  t.counters.crossings <- t.counters.crossings + 1;
  Metrics.inc m_crossings;
  if Trace.on () then Trace.instant ~cat:Kind.l5 "handoff";
  Cost.charge t.meter Cost.Gate (2 * crossing_cost t)

let require_alive t d ~doing =
  if not d.alive then begin
    t.counters.denied <- t.counters.denied + 1;
    Metrics.inc m_denied;
    raise (Access_violation (Printf.sprintf "%s: %s refused, domain crashed" d.dname doing))
  end

(* A cross-domain call: entry and exit each pay the boundary cost. *)
let call t ~caller ~callee f =
  require_alive t caller ~doing:"call";
  require_alive t callee ~doing:"entry";
  if caller.id = callee.id then f ()
  else begin
    t.counters.crossings <- t.counters.crossings + 1;
    Metrics.inc m_crossings;
    let traced = Trace.on () in
    if traced then Trace.span_begin ~cat:Kind.l5 ("call:" ^ callee.dname);
    Cost.charge t.meter Cost.Gate (crossing_cost t);
    let finish () =
      Cost.charge t.meter Cost.Gate (crossing_cost t);
      if traced then Trace.span_end ~cat:Kind.l5 ("call:" ^ callee.dname)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let alloc t ~owner size =
  t.counters.allocs <- t.counters.allocs + 1;
  Cost.charge t.meter Cost.Alloc t.model.Cost.alloc;
  let b = { b_id = t.next_buf; owner = owner.id; data = Bytes.make size '\000'; grants = []; freed = false } in
  t.next_buf <- t.next_buf + 1;
  b

(* "Trusted component allocates" [34]: the trusted side allocates in its
   own domain and grants the less-trusted side access to exactly this
   buffer — the untrusted side never gets to name arbitrary memory. *)
let alloc_granted t ~owner ~reader ?(write = false) size =
  let b = alloc t ~owner size in
  b.grants <- { g_domain = reader.id; g_write = write } :: b.grants;
  b

let grant _t b ~to_ ?(write = false) () =
  b.grants <- { g_domain = to_.id; g_write = write } :: b.grants

let revoke _t b ~from =
  b.grants <- List.filter (fun g -> g.g_domain <> from.id) b.grants

let free _t b = b.freed <- true

let buf_size b = Bytes.length b.data

let check_access t ~as_ b ~write =
  require_alive t as_ ~doing:"memory access";
  if b.freed then begin
    t.counters.denied <- t.counters.denied + 1;
    Metrics.inc m_denied;
    raise (Access_violation (Printf.sprintf "%s: use after free of buffer %d" as_.dname b.b_id))
  end;
  if as_.id <> b.owner then begin
    Cost.charge t.meter Cost.Check t.model.Cost.check;
    match List.find_opt (fun g -> g.g_domain = as_.id && ((not write) || g.g_write)) b.grants with
    | Some _ -> ()
    | None ->
        t.counters.denied <- t.counters.denied + 1;
        Metrics.inc m_denied;
        raise
          (Access_violation
             (Printf.sprintf "%s: %s access to buffer %d owned by domain %d denied" as_.dname
                (if write then "write" else "read")
                b.b_id b.owner))
  end

let read t ~as_ b ~pos ~len =
  check_access t ~as_ b ~write:false;
  if pos < 0 || len < 0 || pos + len > Bytes.length b.data then
    raise (Access_violation (Printf.sprintf "%s: out-of-bounds read of buffer %d" as_.dname b.b_id));
  Bytes.sub b.data pos len

let write t ~as_ b ~pos src =
  check_access t ~as_ b ~write:true;
  if pos < 0 || pos + Bytes.length src > Bytes.length b.data then
    raise (Access_violation (Printf.sprintf "%s: out-of-bounds write of buffer %d" as_.dname b.b_id));
  Bytes.blit src 0 b.data pos (Bytes.length src)

let copy_between t ~as_ ~src ~dst ~src_pos ~dst_pos ~len =
  let chunk = read t ~as_ src ~pos:src_pos ~len in
  write t ~as_ dst ~pos:dst_pos chunk;
  Cost.charge t.meter Cost.Copy (Cost.copy_cost t.model len)
