(* Circuit breaker over host health.

   The guest cannot make a dead host serve the rings; what it *can* do
   is stop paying for resets, retransmits and queue growth while the
   host is provably unhealthy. The breaker is the standard three-state
   machine, driven by the watchdog's observations:

     Closed    -- normal operation; consecutive failures count up.
     Open      -- after [threshold] consecutive failures: recovery work
                  is suppressed, non-control admissions shed. Cooldown
                  is counted in [allow] consultations (deterministic
                  observation windows, not wall time).
     Half_open -- cooldown elapsed: one probe window is allowed through.
                  Success re-closes; failure re-opens.

   A success in *any* state closes the breaker: health evidence beats
   the state machine (e.g. a stalled host resuming on its own, observed
   as ring progress, must not wait out a cooldown).

   The state is exported as the [overload.breaker.state] gauge
   (0 closed / 1 open / 2 half-open) and every edge increments
   [overload.breaker.transitions]. *)

module Metrics = Cio_telemetry.Metrics

type state = Closed | Open | Half_open

let state_code = function Closed -> 0 | Open -> 1 | Half_open -> 2
let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

let m_state = Metrics.gauge Metrics.default "overload.breaker.state"
let m_transitions = Metrics.counter Metrics.default "overload.breaker.transitions"

type t = {
  threshold : int;  (* consecutive failures before opening *)
  cooldown : int;   (* Open-state allow consultations before a probe *)
  mutable state : state;
  mutable consecutive : int;
  mutable cooldown_left : int;
  mutable transitions : int;
}

let create ?(threshold = 3) ?(cooldown = 4) () =
  if threshold <= 0 then invalid_arg "Breaker.create: threshold must be positive";
  if cooldown <= 0 then invalid_arg "Breaker.create: cooldown must be positive";
  Metrics.set m_state (state_code Closed);
  { threshold; cooldown; state = Closed; consecutive = 0; cooldown_left = 0; transitions = 0 }

let state t = t.state
let transitions t = t.transitions
let consecutive_failures t = t.consecutive

let transition t s =
  if s <> t.state then begin
    t.state <- s;
    t.transitions <- t.transitions + 1;
    Metrics.inc m_transitions;
    Metrics.set m_state (state_code s);
    if Cio_telemetry.Trace.on () then
      Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.l2
        ("breaker-" ^ state_name s)
  end

let failure t =
  match t.state with
  | Closed ->
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.threshold then begin
        transition t Open;
        t.cooldown_left <- t.cooldown
      end
  | Half_open ->
      (* The probe failed: back to Open for another full cooldown. *)
      transition t Open;
      t.cooldown_left <- t.cooldown
  | Open -> ()

let success t =
  t.consecutive <- 0;
  match t.state with Closed -> () | Open | Half_open -> transition t Closed

let allow t =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      t.cooldown_left <- t.cooldown_left - 1;
      if t.cooldown_left <= 0 then begin
        transition t Half_open;
        true
      end
      else false
