(** Circuit breaker over host health: Closed -> Open after [threshold]
    consecutive failures, Half_open probe after [cooldown] {!allow}
    consultations, re-closed by any success. State is exported as the
    [overload.breaker.state] gauge (0/1/2); every edge counts into
    [overload.breaker.transitions]. *)

type state = Closed | Open | Half_open

val state_code : state -> int
val state_name : state -> string

type t

val create : ?threshold:int -> ?cooldown:int -> unit -> t
(** [threshold] consecutive failures to open (default 3); [cooldown]
    Open-state {!allow} calls before a Half_open probe (default 4). *)

val failure : t -> unit
(** Record one failed observation window (e.g. a watchdog trip or a
    ring-full window with no consumption). *)

val success : t -> unit
(** Record health evidence. Re-closes the breaker from any state and
    zeroes the consecutive-failure count. *)

val allow : t -> bool
(** May recovery work proceed? Closed and Half_open: yes. Open: counts
    down the cooldown; the call that exhausts it transitions to
    Half_open and grants the probe. *)

val state : t -> state
val transitions : t -> int
val consecutive_failures : t -> int
