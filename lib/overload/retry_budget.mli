(** Shared retry budget with decorrelated-jitter backoff. Retries spend
    tokens; successes earn them back at a fixed percentage, so recovery
    cannot amplify overload (TCP retransmit pacing and watchdog resets
    both draw from the same budget). *)

type t

val create :
  ?capacity:int ->
  ?refill_percent:int ->
  ?base_ns:int64 ->
  ?cap_ns:int64 ->
  rng:Cio_util.Rng.t ->
  unit ->
  t
(** [capacity] whole retry tokens (default 16, starts full);
    [refill_percent] of a token earned per {!on_success} (default 20);
    backoff jitter ranges over [[base_ns, cap_ns]] (defaults 1 ms /
    200 ms of simulated time). *)

val try_retry : t -> bool
(** Spend one token. [false] means the budget is exhausted: do not
    retry now; wait for successes to refill it. *)

val on_success : t -> unit
(** Credit a fraction of a token for a completed unit of useful work. *)

val backoff_ns : t -> int64
(** Next decorrelated-jitter delay: uniform in [[base, min (cap, 3 *
    previous)]]; never below base, never above cap. Advances the
    internal anchor. *)

val reset_backoff : t -> unit
(** Collapse the jitter anchor back to [base_ns] (call on recovery). *)

val tokens : t -> int
val granted : t -> int
val denied : t -> int
