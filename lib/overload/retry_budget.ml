(* Retry budget with decorrelated-jitter backoff.

   Naive retry loops amplify overload: every layer that retries on its
   own schedule multiplies the offered load exactly when the system can
   least afford it (TCP retransmits a stalled host, the watchdog resets
   the rings, the app retries the request...). The budget makes retries
   a shared, bounded resource: spending requires a token, and tokens are
   earned back by *successes* (a fixed percentage per success, the
   classic retry-ratio scheme), so a dead host drains the budget once
   and then the retriers go quiet instead of storming.

   The pacing side is decorrelated jitter (sleep = random between base
   and 3x the previous sleep, capped): it spreads retries in time so
   synchronized retriers de-correlate, while the cap keeps the worst
   wait bounded. The jitter draws from an owned deterministic Rng, so
   identical seeds give identical schedules. *)

open Cio_util
module Metrics = Cio_telemetry.Metrics

let m_granted = Metrics.counter Metrics.default "overload.retry.granted"
let m_denied = Metrics.counter Metrics.default "overload.retry.denied"

type t = {
  capacity_c : int;       (* centi-tokens: capacity * 100 *)
  refill_c : int;         (* centi-tokens earned per success *)
  base_ns : int;
  cap_ns : int;
  rng : Rng.t;
  mutable tokens_c : int;
  mutable prev_ns : int;  (* previous backoff, the jitter's anchor *)
  mutable granted : int;
  mutable denied : int;
}

let create ?(capacity = 16) ?(refill_percent = 20) ?(base_ns = 1_000_000L)
    ?(cap_ns = 200_000_000L) ~rng () =
  if capacity <= 0 then invalid_arg "Retry_budget.create: capacity must be positive";
  let base_ns = Int64.to_int base_ns and cap_ns = Int64.to_int cap_ns in
  if base_ns <= 0 || cap_ns < base_ns then
    invalid_arg "Retry_budget.create: need 0 < base_ns <= cap_ns";
  {
    capacity_c = capacity * 100;
    refill_c = max 1 refill_percent;
    base_ns;
    cap_ns;
    rng;
    tokens_c = capacity * 100;
    prev_ns = base_ns;
    granted = 0;
    denied = 0;
  }

let try_retry t =
  if t.tokens_c >= 100 then begin
    t.tokens_c <- t.tokens_c - 100;
    t.granted <- t.granted + 1;
    Metrics.inc m_granted;
    true
  end
  else begin
    t.denied <- t.denied + 1;
    Metrics.inc m_denied;
    false
  end

let on_success t = t.tokens_c <- min t.capacity_c (t.tokens_c + t.refill_c)

(* Decorrelated jitter: v ~ U[base, min(cap, 3 * prev)]. Monotone in
   expectation while climbing, hard-capped always, and collapses back to
   [base] on [reset_backoff]. *)
let backoff_ns t =
  let hi = max t.base_ns (min t.cap_ns (t.prev_ns * 3)) in
  let v = t.base_ns + Rng.int t.rng (hi - t.base_ns + 1) in
  t.prev_ns <- v;
  Int64.of_int v

let reset_backoff t = t.prev_ns <- t.base_ns

let tokens t = t.tokens_c / 100
let granted t = t.granted
let denied t = t.denied
