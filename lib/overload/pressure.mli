(** Typed backpressure signals: the vocabulary shared by every layer of
    the overload-control plane. A producer that cannot make progress
    returns [Backpressure reason] instead of silently queueing. *)

type level = Nominal | Soft | Hard
(** Occupancy pressure of a bounded resource: [Soft] from half full,
    [Hard] from 7/8 full. *)

type reason =
  | Ring_full        (** L2 TX ring had no EMPTY slot *)
  | Queue_full       (** a bounded software queue refused the item *)
  | Admission        (** token bucket had no token for this class *)
  | Deadline         (** the request outlived its latency budget *)
  | Breaker_open     (** host circuit breaker is not closed *)
  | Retry_exhausted  (** retry budget refused to amplify load *)

type outcome = Accepted | Backpressure of reason

val reason_name : reason -> string
val level_name : level -> string

val worst : level -> level -> level
(** Pointwise maximum, for aggregating per-queue levels. *)

val level_of_occupancy : used:int -> capacity:int -> level

val note_ring_full : unit -> unit
(** Count one ring-full backpressure event ([overload.bp.ring_full]). *)

val note_queue_full : unit -> unit
(** Count one bounded-queue refusal ([overload.bp.queue_full]). *)
