(** Absolute-time latency budgets, carried with a request and checked at
    every crossing so blown requests are shed, not serviced. *)

type t

val none : t
(** No deadline: never expires. *)

val is_none : t -> bool

val after : now:int64 -> budget_ns:int64 -> t
(** [after ~now ~budget_ns] is the absolute deadline [now + budget_ns];
    a non-positive budget means {!none}. *)

val expired : t -> now:int64 -> bool

val remaining_ns : t -> now:int64 -> int64
(** Budget left (clamped to 0); [Int64.max_int] for {!none}. *)
