(* Typed backpressure signals.

   Above the L2 rings, the pre-overload datapath queued silently: the
   stack's TX coalescing queue, the channel outbox and the host's pending
   RX list were all unbounded, so a slow consumer turned into memory
   growth rather than a visible signal. The overload plane replaces the
   silent paths with explicit, typed outcomes at each crossing: every
   producer learns *why* it was refused (ring full, bounded queue full,
   admission, deadline blown, breaker open), and every refusal is
   counted.

   [level] is the continuous companion to the binary outcome: a queue's
   occupancy mapped to Nominal / Soft / Hard so upper layers can react
   before the hard edge (coalesce more, shed bulk traffic first). *)

module Metrics = Cio_telemetry.Metrics

type level = Nominal | Soft | Hard

type reason =
  | Ring_full        (* L2 TX ring had no EMPTY slot *)
  | Queue_full       (* a bounded software queue refused the item *)
  | Admission        (* token bucket had no token for this class *)
  | Deadline         (* the request outlived its latency budget *)
  | Breaker_open     (* host circuit breaker is not closed *)
  | Retry_exhausted  (* retry budget refused to amplify load *)

type outcome = Accepted | Backpressure of reason

let reason_name = function
  | Ring_full -> "ring-full"
  | Queue_full -> "queue-full"
  | Admission -> "admission"
  | Deadline -> "deadline"
  | Breaker_open -> "breaker-open"
  | Retry_exhausted -> "retry-exhausted"

let level_name = function Nominal -> "nominal" | Soft -> "soft" | Hard -> "hard"

let worst a b =
  match (a, b) with
  | Hard, _ | _, Hard -> Hard
  | Soft, _ | _, Soft -> Soft
  | Nominal, Nominal -> Nominal

(* Soft at half occupancy, hard at 7/8 — the same shape real NIC drivers
   use for ring-occupancy thresholds (start coalescing early, refuse
   late). Integer arithmetic only: called on the datapath. *)
let level_of_occupancy ~used ~capacity =
  if capacity <= 0 || used <= 0 then Nominal
  else if used * 8 >= capacity * 7 then Hard
  else if used * 2 >= capacity then Soft
  else Nominal

(* Backpressure *events* (a producer bounced off a full ring or bounded
   queue) are module-level metrics: they can fire in layers that hold no
   plane handle (driver, stack). *)
let m_bp_ring = Metrics.counter Metrics.default "overload.bp.ring_full"
let m_bp_queue = Metrics.counter Metrics.default "overload.bp.queue_full"

let note_ring_full () = Metrics.inc m_bp_ring
let note_queue_full () = Metrics.inc m_bp_queue
