(** Token-bucket admission controller with per-class priority: control
    traffic is always admitted, bulk is shed first (it must leave the
    bucket's reserve untouched), interactive sits between. Deterministic
    from the supplied clock. *)

type klass = Control | Interactive | Bulk

val klass_name : klass -> string

type t

val create :
  ?rate_per_sec:int ->
  ?burst:int ->
  ?bulk_reserve_percent:int ->
  now:(unit -> int64) ->
  unit ->
  t
(** [rate_per_sec] tokens per simulated second (default 100k), capped at
    [burst] (default 64); [bulk_reserve_percent] of the burst (default
    25) is headroom bulk traffic may not consume. The bucket starts
    full. *)

val admit : t -> klass -> Pressure.outcome
(** Spend one token for this class, or [Backpressure Admission]. *)

val tokens : t -> int
(** Whole tokens currently available (after refill). *)

val admitted_of : t -> klass -> int
val shed_of : t -> klass -> int
val admitted_total : t -> int
val shed_total : t -> int
