(* The overload-control plane: one object tying the mechanisms together.

   A plane is created per confidential unit (Dual) and threaded through
   the layers that need it: the admission controller guards the
   app-facing send boundary, the retry budget paces TCP retransmits and
   watchdog resets, the breaker tracks host health, and the deadline
   budget stamps each admitted request so later crossings can shed blown
   work.

   Admission order at the boundary (cheapest rejection first):

     1. deadline already blown          -> Shed Deadline
     2. breaker not closed (non-control)-> Shed Breaker_open
     3. token bucket by class           -> Shed Admission / Accepted

   Every decision is counted: [overload.admitted], [overload.shed] and
   its per-reason splits. All state is deterministic from the simulated
   clock and the plane's Rng split, so campaigns and experiments report
   byte-identical numbers per seed. *)

open Cio_util
module Metrics = Cio_telemetry.Metrics

let m_admitted = Metrics.counter Metrics.default "overload.admitted"
let m_shed = Metrics.counter Metrics.default "overload.shed"
let m_shed_admission = Metrics.counter Metrics.default "overload.shed.admission"
let m_shed_deadline = Metrics.counter Metrics.default "overload.shed.deadline"
let m_shed_breaker = Metrics.counter Metrics.default "overload.shed.breaker"

type config = {
  admit_rate_per_sec : int;   (* token-bucket refill rate *)
  admit_burst : int;          (* bucket depth, whole tokens *)
  bulk_reserve_percent : int; (* headroom bulk may not consume *)
  queue_limit : int;          (* bound for the stack's TX coalescing queue *)
  deadline_budget_ns : int64; (* per-request latency budget; 0 = none *)
  retry_capacity : int;
  retry_refill_percent : int;
  retry_base_ns : int64;
  retry_cap_ns : int64;
  breaker_threshold : int;
  breaker_cooldown : int;
}

let default_config =
  {
    admit_rate_per_sec = 100_000;
    admit_burst = 64;
    bulk_reserve_percent = 25;
    queue_limit = 256;
    deadline_budget_ns = 50_000_000L;  (* 50 ms *)
    retry_capacity = 16;
    retry_refill_percent = 20;
    retry_base_ns = 1_000_000L;
    retry_cap_ns = 200_000_000L;
    breaker_threshold = 3;
    breaker_cooldown = 4;
  }

type t = {
  config : config;
  admission : Admission.t;
  retry : Retry_budget.t;
  breaker : Breaker.t;
  now : unit -> int64;
  mutable deadline_shed : int;
  mutable breaker_shed : int;
}

let create ?(config = default_config) ~rng ~now () =
  {
    config;
    admission =
      Admission.create ~rate_per_sec:config.admit_rate_per_sec
        ~burst:config.admit_burst ~bulk_reserve_percent:config.bulk_reserve_percent
        ~now ();
    retry =
      Retry_budget.create ~capacity:config.retry_capacity
        ~refill_percent:config.retry_refill_percent ~base_ns:config.retry_base_ns
        ~cap_ns:config.retry_cap_ns ~rng:(Rng.split rng) ();
    breaker =
      Breaker.create ~threshold:config.breaker_threshold
        ~cooldown:config.breaker_cooldown ();
    now;
    deadline_shed = 0;
    breaker_shed = 0;
  }

let config t = t.config
let admission t = t.admission
let retry_budget t = t.retry
let breaker t = t.breaker

let deadline t = Deadline.after ~now:(t.now ()) ~budget_ns:t.config.deadline_budget_ns

let admit ?(deadline = Deadline.none) t klass =
  if Deadline.expired deadline ~now:(t.now ()) then begin
    t.deadline_shed <- t.deadline_shed + 1;
    Metrics.inc m_shed;
    Metrics.inc m_shed_deadline;
    Pressure.Backpressure Pressure.Deadline
  end
  else if Breaker.state t.breaker <> Breaker.Closed && klass <> Admission.Control
  then begin
    t.breaker_shed <- t.breaker_shed + 1;
    Metrics.inc m_shed;
    Metrics.inc m_shed_breaker;
    Pressure.Backpressure Pressure.Breaker_open
  end
  else
    match Admission.admit t.admission klass with
    | Pressure.Accepted ->
        Metrics.inc m_admitted;
        Pressure.Accepted
    | Pressure.Backpressure _ as bp ->
        Metrics.inc m_shed;
        Metrics.inc m_shed_admission;
        bp

let admitted t = Admission.admitted_total t.admission
let shed t = Admission.shed_total t.admission + t.deadline_shed + t.breaker_shed
let deadline_shed t = t.deadline_shed
let breaker_shed t = t.breaker_shed
