(* Deadline propagation.

   A request that has already blown its latency budget is pure waste
   downstream: sealing, transmitting and echoing it burns cycles on an
   answer the caller will discard. Deadlines are absolute simulated
   times carried alongside the request; every crossing checks [expired]
   and sheds instead of doing dead work. [none] (no deadline) compares
   as never-expired, so deadline-free callers pay one comparison. *)

type t = int64

let none = Int64.max_int
let is_none d = Int64.equal d Int64.max_int

let after ~now ~budget_ns =
  if Int64.compare budget_ns 0L <= 0 then none else Int64.add now budget_ns

let expired d ~now = (not (is_none d)) && Int64.compare d now < 0

let remaining_ns d ~now =
  if is_none d then Int64.max_int else Int64.max 0L (Int64.sub d now)
