(** The overload-control plane of one confidential unit: admission
    controller + retry budget + circuit breaker + deadline budget, with
    every decision counted under [overload.*] metrics. Deterministic
    from the simulated clock and the plane's Rng split. *)

type config = {
  admit_rate_per_sec : int;   (** token-bucket refill rate *)
  admit_burst : int;          (** bucket depth, whole tokens *)
  bulk_reserve_percent : int; (** headroom bulk may not consume *)
  queue_limit : int;          (** bound for the stack's TX coalescing queue *)
  deadline_budget_ns : int64; (** per-request latency budget; 0 = none *)
  retry_capacity : int;
  retry_refill_percent : int;
  retry_base_ns : int64;
  retry_cap_ns : int64;
  breaker_threshold : int;
  breaker_cooldown : int;
}

val default_config : config

type t

val create : ?config:config -> rng:Cio_util.Rng.t -> now:(unit -> int64) -> unit -> t

val admit : ?deadline:Deadline.t -> t -> Admission.klass -> Pressure.outcome
(** The boundary decision: blown deadline, open breaker (control is
    exempt), then the token bucket — cheapest rejection first. *)

val deadline : t -> Deadline.t
(** A fresh deadline for a request admitted now. *)

val config : t -> config
val admission : t -> Admission.t
val retry_budget : t -> Retry_budget.t
val breaker : t -> Breaker.t

val admitted : t -> int
val shed : t -> int
(** Total sheds across admission, deadline and breaker reasons. *)

val deadline_shed : t -> int
val breaker_shed : t -> int
