(* Admission control at the compartment boundary: a deterministic token
   bucket with per-class priority.

   The bucket refills continuously from the simulated clock (rate tokens
   per simulated second, capped at [burst]) and every admission spends
   one token. Classes express what is sheddable:

   - [Control]  — handshakes, probes, health checks: always admitted.
     Shedding control traffic under load is how systems wedge themselves
     open; control spends a token when one is available but is never
     refused.
   - [Interactive] — ordinary request traffic: needs a whole token.
   - [Bulk]     — background transfers: needs a token *and* must leave
     the reserve untouched, so bulk is shed first as the bucket drains
     and interactive traffic keeps the headroom.

   Token arithmetic is fixed-point ([unit_] = one token) in int64, so
   refill is exact and the controller is bit-deterministic from the
   simulated clock — same seed, same admissions. *)

type klass = Control | Interactive | Bulk

let klass_name = function
  | Control -> "control"
  | Interactive -> "interactive"
  | Bulk -> "bulk"

let klass_index = function Control -> 0 | Interactive -> 1 | Bulk -> 2

type t = {
  rate_per_sec : int;
  burst_units : int64;
  reserve_units : int64;  (* bulk must leave this many units behind *)
  now : unit -> int64;
  mutable tokens : int64;
  mutable last : int64;
  admitted : int array;  (* per class *)
  shed : int array;      (* per class *)
}

let unit_ = 1_000_000_000L

let create ?(rate_per_sec = 100_000) ?(burst = 64) ?(bulk_reserve_percent = 25)
    ~now () =
  if rate_per_sec < 0 then invalid_arg "Admission.create: negative rate";
  if burst <= 0 then invalid_arg "Admission.create: burst must be positive";
  let burst_units = Int64.mul (Int64.of_int burst) unit_ in
  let reserve_units =
    Int64.div
      (Int64.mul burst_units (Int64.of_int (max 0 (min 100 bulk_reserve_percent))))
      100L
  in
  {
    rate_per_sec;
    burst_units;
    reserve_units;
    now;
    tokens = burst_units;  (* start full: no artificial cold-start sheds *)
    last = now ();
    admitted = Array.make 3 0;
    shed = Array.make 3 0;
  }

(* tokens += dt_ns * rate / 1e9, exactly, capped at burst. The product
   [dt * rate] fits int64 for any dt below ~92 s of simulated time at
   10^8 tokens/s; longer gaps saturate to a full bucket first. *)
let refill t =
  let now = t.now () in
  let dt = Int64.max 0L (Int64.sub now t.last) in
  t.last <- now;
  if t.rate_per_sec > 0 && Int64.compare dt 0L > 0 then begin
    let rate = Int64.of_int t.rate_per_sec in
    let add =
      if Int64.compare dt (Int64.div t.burst_units rate) >= 0 then t.burst_units
      else Int64.mul dt rate
    in
    t.tokens <- Int64.min t.burst_units (Int64.add t.tokens add)
  end

let admit t klass =
  refill t;
  let ok =
    match klass with
    | Control -> true
    | Interactive -> Int64.compare t.tokens unit_ >= 0
    | Bulk -> Int64.compare (Int64.sub t.tokens unit_) t.reserve_units >= 0
  in
  if ok then begin
    (* Control never goes below empty: it is exempt, not a debtor. *)
    t.tokens <- Int64.max 0L (Int64.sub t.tokens unit_);
    t.admitted.(klass_index klass) <- t.admitted.(klass_index klass) + 1;
    Pressure.Accepted
  end
  else begin
    t.shed.(klass_index klass) <- t.shed.(klass_index klass) + 1;
    Pressure.Backpressure Pressure.Admission
  end

let tokens t =
  refill t;
  Int64.to_int (Int64.div t.tokens unit_)

let admitted_of t klass = t.admitted.(klass_index klass)
let shed_of t klass = t.shed.(klass_index klass)
let admitted_total t = Array.fold_left ( + ) 0 t.admitted
let shed_total t = Array.fold_left ( + ) 0 t.shed
