(** Simulated TEE memory: byte regions with per-page protection, access
    logging, page sharing/revocation, and double-fetch transactions.

    Stands in for SEV/TDX/SGX memory protection (DESIGN.md §1): [Private]
    pages fault on host access; [Shared] pages model bounce/ring memory. *)

open Cio_util

type actor = Guest | Host

val actor_name : actor -> string

type prot = Private | Shared

type fault =
  | Host_access_private of { off : int; len : int; write : bool }
  | Out_of_bounds of { actor : actor; off : int; len : int; write : bool }

val pp_fault : Format.formatter -> fault -> unit

exception Fault of fault

type event =
  | Read of { actor : actor; off : int; len : int }
  | Write of { actor : actor; off : int; len : int }
  | Share_page of int
  | Unshare_page of int

type t

val create :
  ?page_size:int ->
  ?prot:prot ->
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  name:string ->
  int ->
  t
(** [create ~name size] makes a zeroed region. [prot] is the initial
    protection of every page (default [Shared]). An optional [meter]
    shares cycle accounting with the caller. *)

val name : t -> string
val size : t -> int
val page_size : t -> int
val page_count : t -> int
val meter : t -> Cost.meter
val model : t -> Cost.model

val set_logging : t -> bool -> unit
val clear_log : t -> unit

val events : t -> event list
(** Oldest first. *)

val page_of : t -> int -> int
val prot_of_page : t -> int -> prot

val range_shared : t -> int -> int -> bool
(** True iff every page the range touches is shared. *)

(** {1 Access} — each raises {!Fault} on a protection or bounds violation. *)

val guest_read : t -> off:int -> len:int -> bytes
val guest_write : t -> off:int -> bytes -> unit
val host_read : t -> off:int -> len:int -> bytes
val host_write : t -> off:int -> bytes -> unit

val guest_read_into : t -> off:int -> bytes -> unit
(** [guest_read_into t ~off dst] reads [Bytes.length dst] bytes at [off]
    into [dst] — same checks, logging, transaction capture and read-hook
    ordering as {!guest_read}, without allocating. *)

val host_read_into : t -> off:int -> bytes -> unit

val read_u8 : t -> actor -> off:int -> int
val read_u16 : t -> actor -> off:int -> int
val read_u32 : t -> actor -> off:int -> int
val read_u64 : t -> actor -> off:int -> int64
val write_u8 : t -> actor -> off:int -> int -> unit
val write_u16 : t -> actor -> off:int -> int -> unit
val write_u32 : t -> actor -> off:int -> int -> unit
val write_u64 : t -> actor -> off:int -> int64 -> unit

(** {1 Sharing and revocation} *)

val share_page : t -> int -> unit
val unshare_page : t -> int -> unit
val share_range : t -> off:int -> len:int -> unit
val unshare_range : t -> off:int -> len:int -> unit

(** {1 Metered copies} *)

val copy_in : t -> off:int -> len:int -> bytes
(** Guest pull of shared bytes into private memory; charges [Copy]. *)

val copy_in_into : t -> off:int -> bytes -> unit
(** {!copy_in} into a caller-provided buffer (length = [Bytes.length dst]);
    charges [Copy] without allocating. *)

val copy_out : t -> off:int -> bytes -> unit
(** Guest publish of private bytes; charges [Copy]. *)

(** {1 Double-fetch transactions} *)

type hazard = { off : int; len : int; mutated : bool }

val begin_txn : t -> unit

val end_txn : t -> hazard list
(** Shared ranges the guest read more than once inside the bracket;
    [mutated] marks reads whose bytes changed in between (a host race). *)

val with_txn : t -> (unit -> 'a) -> 'a * hazard list

val set_host_write_hook : t -> (off:int -> len:int -> unit) option -> unit
(** Install an adversary callback fired after every host write (used by
    the attack harness to interleave mutations deterministically). *)

val set_guest_read_hook : t -> (off:int -> len:int -> unit) option -> unit
(** Install an adversary callback fired after every guest read of shared
    memory: models a host core racing the guest between two fetches. *)

(** {1 Runtime double-fetch sanitizer}

    The dynamic counterpart of cio_lint's DF rule. Unlike a transaction
    (opened by the code under test), the sanitizer is armed from the
    outside — by a test or fault campaign — and watches code that never
    asked to be watched: every guest fetch of a shared range is compared
    against the current epoch's earlier fetches, and overlaps bump the
    [mem.sanitizer.double_fetch] (and, when the bytes changed in between,
    [mem.sanitizer.double_fetch_mutated]) counters in
    {!Cio_telemetry.Metrics.default}. When disabled the cost is a single
    [None] branch per access. *)

type sanitizer_stats = { double_fetches : int; mutated_fetches : int; epochs : int }

val sanitizer_enable : t -> unit
(** Idempotent: re-enabling keeps existing counts. *)

val sanitizer_disable : t -> unit
val sanitizer_on : t -> bool

val sanitizer_epoch : t -> unit
(** Start a new epoch (one logical parse, e.g. one poll): forgets the
    recorded fetches but keeps the totals. Re-reading an index across
    epochs is legitimate; re-reading inside one is a double fetch. *)

val sanitizer_stats : t -> sanitizer_stats
