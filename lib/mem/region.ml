(* Simulated TEE memory: a byte region with per-page protection.

   This module is the root substitution of the reproduction (DESIGN.md §1):
   it stands in for SEV/TDX/SGX memory protection. Pages are either
   [Private] (guest-only; host access faults, modelling memory encryption +
   RMP/EPT protection) or [Shared] (host-visible bounce/ring memory). Every
   access is logged so experiments can (a) detect double fetches from
   shared memory, (b) measure what the host could observe, and (c) verify
   that a driver never dereferences unvalidated host-controlled state. *)

open Cio_util
module Metrics = Cio_telemetry.Metrics

type actor = Guest | Host

let actor_name = function Guest -> "guest" | Host -> "host"

type prot = Private | Shared

type fault =
  | Host_access_private of { off : int; len : int; write : bool }
  | Out_of_bounds of { actor : actor; off : int; len : int; write : bool }

let pp_fault ppf = function
  | Host_access_private { off; len; write } ->
      Fmt.pf ppf "host %s of private memory [%d..%d)"
        (if write then "write" else "read")
        off (off + len)
  | Out_of_bounds { actor; off; len; write } ->
      Fmt.pf ppf "%s out-of-bounds %s [%d..%d)" (actor_name actor)
        (if write then "write" else "read")
        off (off + len)

exception Fault of fault

type event =
  | Read of { actor : actor; off : int; len : int }
  | Write of { actor : actor; off : int; len : int }
  | Share_page of int
  | Unshare_page of int

type t = {
  name : string;
  data : bytes;
  page_size : int;
  prot : prot array;
  meter : Cost.meter;
  model : Cost.model;
  mutable log : event list;  (* newest first *)
  mutable log_enabled : bool;
  mutable txn : (int * int * string) list option;
      (* open double-fetch transaction: guest reads of shared memory as
         (off, len, content-at-read-time) *)
  mutable host_write_hook : (off:int -> len:int -> unit) option;
  mutable guest_read_hook : (off:int -> len:int -> unit) option;
      (* fired after each guest read of shared memory: lets the attack
         harness model a host racing the guest between two fetches *)
  mutable san : san option;
      (* opt-in double-fetch sanitizer: when on, every guest fetch of
         shared memory is checked against the epoch's earlier fetches *)
}

(* Runtime double-fetch sanitizer state. Unlike a [txn] (opened by the
   *code under test* around one logical parse), the sanitizer is armed
   from the outside — by a test or fault campaign — and watches code that
   never asked to be watched. An epoch is one logical parse (one poll);
   re-reading an index across epochs is legitimate, re-reading inside one
   is the Fig. 3/4 double fetch. *)
and san = {
  mutable s_fetches : (int * int * string) list;  (* off, len, snapshot *)
  mutable s_double : int;
  mutable s_mutated : int;
  mutable s_epochs : int;
}

let create ?(page_size = 4096) ?(prot = Shared) ?(model = Cost.default) ?meter ~name size =
  if size <= 0 then invalid_arg "Region.create: size must be positive";
  if not (Bitops.is_power_of_two page_size) then
    invalid_arg "Region.create: page size must be a power of two";
  let pages = (size + page_size - 1) / page_size in
  {
    name;
    data = Bytes.make size '\000';
    page_size;
    prot = Array.make pages prot;
    meter = (match meter with Some m -> m | None -> Cost.meter ());
    model;
    log = [];
    log_enabled = true;
    txn = None;
    host_write_hook = None;
    guest_read_hook = None;
    san = None;
  }

let name t = t.name
let size t = Bytes.length t.data
let page_size t = t.page_size
let page_count t = Array.length t.prot
let meter t = t.meter
let model t = t.model

let set_logging t flag = t.log_enabled <- flag
let clear_log t = t.log <- []
let events t = List.rev t.log

let log t e = if t.log_enabled then t.log <- e :: t.log

let page_of t off = off / t.page_size

let prot_of_page t page =
  if page < 0 || page >= Array.length t.prot then
    invalid_arg "Region.prot_of_page: bad page";
  t.prot.(page)

let range_ok t off len = off >= 0 && len >= 0 && off + len <= Bytes.length t.data

(* A range is host-accessible only if every page it touches is shared. *)
let range_shared t off len =
  let first = page_of t off and last = page_of t (off + len - 1) in
  let rec go p = p > last || (t.prot.(p) = Shared && go (p + 1)) in
  len = 0 || go first

let check_access t actor off len ~write =
  if not (range_ok t off len) then
    raise (Fault (Out_of_bounds { actor; off; len; write }));
  match actor with
  | Guest -> ()
  | Host ->
      if len > 0 && not (range_shared t off len) then
        raise (Fault (Host_access_private { off; len; write }))

let ranges_overlap (o1, l1) (o2, l2) = o1 < o2 + l2 && o2 < o1 + l1

(* Sanitizer capture: compare this fetch against every earlier fetch of
   an overlapping shared range in the current epoch, then record it. Runs
   *before* [guest_read_hook] fires, so a hook-modelled host race is seen
   by the second fetch's comparison, mirroring real time order. Costs a
   single [None] branch when the sanitizer is off. *)
let san_note t ~off ~len =
  match t.san with
  | None -> ()
  | Some s ->
      let snap = Bytes.sub_string t.data off len in
      List.iter
        (fun (off2, len2, snap2) ->
          if ranges_overlap (off, len) (off2, len2) then begin
            s.s_double <- s.s_double + 1;
            Metrics.inc (Metrics.counter Metrics.default "mem.sanitizer.double_fetch");
            let lo = max off off2 and hi = min (off + len) (off2 + len2) in
            let w1 = String.sub snap (lo - off) (hi - lo) in
            let w2 = String.sub snap2 (lo - off2) (hi - lo) in
            if not (String.equal w1 w2) then begin
              s.s_mutated <- s.s_mutated + 1;
              Metrics.inc
                (Metrics.counter Metrics.default "mem.sanitizer.double_fetch_mutated")
            end
          end)
        s.s_fetches;
      s.s_fetches <- (off, len, snap) :: s.s_fetches

let read t actor ~off ~len =
  check_access t actor off len ~write:false;
  log t (Read { actor; off; len });
  (match (actor, t.txn) with
  | Guest, Some reads when len > 0 && range_shared t off len ->
      t.txn <- Some ((off, len, Bytes.sub_string t.data off len) :: reads)
  | _ -> ());
  (match actor with
  | Guest when len > 0 && range_shared t off len -> san_note t ~off ~len
  | _ -> ());
  let result = Bytes.sub t.data off len in
  (match (actor, t.guest_read_hook) with
  | Guest, Some hook when len > 0 && range_shared t off len ->
      (* Fire after the value is captured so the *next* fetch observes any
         mutation the hook performs. *)
      hook ~off ~len
  | _ -> ());
  result

let write t actor ~off src =
  let len = Bytes.length src in
  check_access t actor off len ~write:true;
  log t (Write { actor; off; len });
  Bytes.blit src 0 t.data off len;
  match (actor, t.host_write_hook) with
  | Host, Some hook -> hook ~off ~len
  | _ -> ()

(* Blit-into variant of [read]: identical checks, logging, transaction
   capture and hook ordering, but fills a caller-provided buffer instead
   of allocating — the allocation-free consume path. *)
let read_into t actor ~off dst =
  let len = Bytes.length dst in
  check_access t actor off len ~write:false;
  log t (Read { actor; off; len });
  (match (actor, t.txn) with
  | Guest, Some reads when len > 0 && range_shared t off len ->
      t.txn <- Some ((off, len, Bytes.sub_string t.data off len) :: reads)
  | _ -> ());
  (match actor with
  | Guest when len > 0 && range_shared t off len -> san_note t ~off ~len
  | _ -> ());
  Bytes.blit t.data off dst 0 len;
  match (actor, t.guest_read_hook) with
  | Guest, Some hook when len > 0 && range_shared t off len ->
      (* Fire after the value is captured so the *next* fetch observes any
         mutation the hook performs. *)
      hook ~off ~len
  | _ -> ()

let guest_read t ~off ~len = read t Guest ~off ~len
let guest_write t ~off src = write t Guest ~off src
let host_read t ~off ~len = read t Host ~off ~len
let host_write t ~off src = write t Host ~off src
let guest_read_into t ~off dst = read_into t Guest ~off dst
let host_read_into t ~off dst = read_into t Host ~off dst

(* Integer accessors used by the ring/descriptor layers. All are
   little-endian, matching the virtio wire format. *)

let read_u8 t actor ~off = Char.code (Bytes.get (read t actor ~off ~len:1) 0)

let read_u16 t actor ~off =
  let b = read t actor ~off ~len:2 in
  Bytes.get_uint16_le b 0

let read_u32 t actor ~off =
  let b = read t actor ~off ~len:4 in
  Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF

let read_u64 t actor ~off =
  let b = read t actor ~off ~len:8 in
  Bytes.get_int64_le b 0

let write_u8 t actor ~off v =
  let b = Bytes.create 1 in
  Bytes.set b 0 (Char.chr (v land 0xFF));
  write t actor ~off b

let write_u16 t actor ~off v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 (v land 0xFFFF);
  write t actor ~off b

let write_u32 t actor ~off v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (v land 0xFFFFFFFF));
  write t actor ~off b

let write_u64 t actor ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t actor ~off b

(* Page sharing / revocation. Unsharing is the paper's §3.2 "revocation"
   primitive: the guest reclaims a page from the host on the fly instead of
   copying out of it. *)

let share_page t page =
  if page < 0 || page >= Array.length t.prot then
    invalid_arg "Region.share_page: bad page";
  if t.prot.(page) <> Shared then begin
    t.prot.(page) <- Shared;
    Cost.charge t.meter Cost.Share t.model.Cost.page_share;
    log t (Share_page page)
  end

let unshare_page t page =
  if page < 0 || page >= Array.length t.prot then
    invalid_arg "Region.unshare_page: bad page";
  if t.prot.(page) <> Private then begin
    t.prot.(page) <- Private;
    Cost.charge t.meter Cost.Unshare t.model.Cost.page_unshare;
    log t (Unshare_page page)
  end

(* Range variants are batched: one shootdown/hypercall covers the whole
   range, so the first page pays full cost and the rest pay only PTE
   work. The transition itself is identical to the per-page calls. *)

let share_range t ~off ~len =
  if len > 0 then begin
    let first = page_of t off and last = page_of t (off + len - 1) in
    let changed = ref 0 in
    for p = first to last do
      if t.prot.(p) <> Shared then begin
        t.prot.(p) <- Shared;
        incr changed;
        log t (Share_page p)
      end
    done;
    if !changed > 0 then
      Cost.charge t.meter Cost.Share
        (t.model.Cost.page_share + ((!changed - 1) * t.model.Cost.page_share_extra))
  end

let unshare_range t ~off ~len =
  if len > 0 then begin
    let first = page_of t off and last = page_of t (off + len - 1) in
    let changed = ref 0 in
    for p = first to last do
      if t.prot.(p) <> Private then begin
        t.prot.(p) <- Private;
        incr changed;
        log t (Unshare_page p)
      end
    done;
    if !changed > 0 then
      Cost.charge t.meter Cost.Unshare
        (t.model.Cost.page_unshare + ((!changed - 1) * t.model.Cost.page_unshare_extra))
  end

(* Metered copies: the canonical "copy as a first-class citizen" operation.
   [copy_in] pulls shared bytes into a private buffer (and is the safe
   answer to double fetches); [copy_out] publishes private bytes. *)

let copy_in t ~off ~len =
  let b = guest_read t ~off ~len in
  Cost.charge t.meter Cost.Copy (Cost.copy_cost t.model len);
  b

let copy_in_into t ~off dst =
  guest_read_into t ~off dst;
  Cost.charge t.meter Cost.Copy (Cost.copy_cost t.model (Bytes.length dst))

let copy_out t ~off src =
  guest_write t ~off src;
  Cost.charge t.meter Cost.Copy (Cost.copy_cost t.model (Bytes.length src))

(* Double-fetch transactions. The guest brackets one logical parse of
   host-writable data with [begin_txn]/[end_txn]; any shared range read
   twice inside the bracket is a double-fetch hazard, and it is *exploited*
   if the bytes changed between the two reads (i.e. the host raced the
   parser). *)

type hazard = { off : int; len : int; mutated : bool }

let begin_txn t =
  if t.txn <> None then invalid_arg "Region.begin_txn: transaction already open";
  t.txn <- Some []

let end_txn t =
  match t.txn with
  | None -> invalid_arg "Region.end_txn: no open transaction"
  | Some reads ->
      t.txn <- None;
      let reads = List.rev reads in
      let hazards = ref [] in
      let rec scan = function
        | [] -> ()
        | (off, len, content) :: rest ->
            List.iter
              (fun (off2, len2, content2) ->
                if ranges_overlap (off, len) (off2, len2) then begin
                  let mutated =
                    (* compare the overlapping window of the two reads *)
                    let lo = max off off2 and hi = min (off + len) (off2 + len2) in
                    let w1 = String.sub content (lo - off) (hi - lo) in
                    let w2 = String.sub content2 (lo - off2) (hi - lo) in
                    not (String.equal w1 w2)
                  in
                  hazards := { off = off2; len = len2; mutated } :: !hazards
                end)
              rest;
            scan rest
      in
      scan reads;
      List.rev !hazards

let with_txn t f =
  begin_txn t;
  match f () with
  | v ->
      let hazards = end_txn t in
      (v, hazards)
  | exception e ->
      ignore (end_txn t);
      raise e

let set_host_write_hook t hook = t.host_write_hook <- hook
let set_guest_read_hook t hook = t.guest_read_hook <- hook

(* Sanitizer control surface. Enabling is idempotent (a campaign may
   re-enable after an I/O restart without losing totals for the same
   region); epochs delimit one logical parse each. *)

type sanitizer_stats = { double_fetches : int; mutated_fetches : int; epochs : int }

let sanitizer_enable t =
  match t.san with
  | Some _ -> ()
  | None -> t.san <- Some { s_fetches = []; s_double = 0; s_mutated = 0; s_epochs = 0 }

let sanitizer_disable t = t.san <- None

let sanitizer_on t = t.san <> None

let sanitizer_epoch t =
  match t.san with
  | None -> ()
  | Some s ->
      s.s_fetches <- [];
      s.s_epochs <- s.s_epochs + 1

let sanitizer_stats t =
  match t.san with
  | None -> { double_fetches = 0; mutated_fetches = 0; epochs = 0 }
  | Some s -> { double_fetches = s.s_double; mutated_fetches = s.s_mutated; epochs = s.s_epochs }
