(* Reusable buffer pool for the allocation-free datapath.

   OCaml [bytes] cannot be sub-viewed, and the netif contract hands out
   exact-length frames, so "reuse" here means recycling buffers keyed by
   their exact length. Steady-state traffic repeats a small set of frame
   sizes (data segments, ACKs, padded frames), so after warm-up every
   acquire is served from a free list and the pool performs zero
   allocations per frame — the property the zero-alloc echo test pins.

   Retention is capped per power-of-two size class (the shape a real
   implementation would use for its slab sizes), so a burst of unusual
   lengths cannot pin unbounded memory: beyond the cap a recycled buffer
   is simply dropped for the GC. *)

open Cio_util

let m_dropped = Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "bufpool.dropped"
let m_retained_high =
  Cio_telemetry.Metrics.gauge Cio_telemetry.Metrics.default "bufpool.retained_high"

(* Process-wide high watermark of retained buffers in any single pool:
   the number that says how much memory the recycling scheme can pin at
   worst, which is what capacity planning wants from the gauge. *)
let global_high = ref 0

type stats = {
  mutable fresh : int;     (* acquires that had to allocate *)
  mutable reused : int;    (* acquires served from a free list *)
  mutable recycled : int;  (* buffers accepted back *)
  mutable dropped : int;   (* returns rejected by the class cap *)
}

type t = {
  buckets : (int, bytes Queue.t) Hashtbl.t;      (* exact length -> free buffers *)
  class_retained : (int, int ref) Hashtbl.t;     (* pow2 class -> retained count *)
  cap : int;                                     (* max retained per size class *)
  mutable retained_count : int;                  (* free buffers held right now *)
  mutable high_watermark : int;                  (* most ever held at once *)
  stats : stats;
}

let create ?(cap = 256) () =
  if cap < 0 then invalid_arg "Bufpool.create: cap must be non-negative";
  {
    buckets = Hashtbl.create 16;
    class_retained = Hashtbl.create 16;
    cap;
    retained_count = 0;
    high_watermark = 0;
    stats = { fresh = 0; reused = 0; recycled = 0; dropped = 0 };
  }

let stats t = t.stats
let cap t = t.cap
let high_watermark t = t.high_watermark

let class_of len = Bitops.next_power_of_two (max 1 len)

let class_counter t cls =
  match Hashtbl.find_opt t.class_retained cls with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.class_retained cls r;
      r

let retained t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.class_retained 0

let acquire t len =
  if len <= 0 then invalid_arg "Bufpool.acquire: length must be positive";
  match Hashtbl.find_opt t.buckets len with
  | Some q when not (Queue.is_empty q) ->
      t.stats.reused <- t.stats.reused + 1;
      decr (class_counter t (class_of len));
      t.retained_count <- t.retained_count - 1;
      Queue.take q
  | _ ->
      t.stats.fresh <- t.stats.fresh + 1;
      Bytes.create len

let recycle t b =
  let len = Bytes.length b in
  if len > 0 then begin
    let counter = class_counter t (class_of len) in
    if !counter >= t.cap then begin
      t.stats.dropped <- t.stats.dropped + 1;
      Cio_telemetry.Metrics.inc m_dropped
    end
    else begin
      incr counter;
      t.stats.recycled <- t.stats.recycled + 1;
      t.retained_count <- t.retained_count + 1;
      if t.retained_count > t.high_watermark then begin
        t.high_watermark <- t.retained_count;
        if t.retained_count > !global_high then begin
          global_high := t.retained_count;
          Cio_telemetry.Metrics.set m_retained_high t.retained_count
        end
      end;
      let q =
        match Hashtbl.find_opt t.buckets len with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add t.buckets len q;
            q
      in
      Queue.add b q
    end
  end
