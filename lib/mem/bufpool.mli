(** Reusable buffer pool for the allocation-free datapath.

    Buffers are recycled by exact length (OCaml [bytes] cannot be
    sub-viewed, and frame consumers require exact-length buffers);
    retention is capped per power-of-two size class. In steady state —
    traffic repeating a bounded set of frame sizes — every acquire is a
    reuse and the pool allocates nothing per frame. *)

type stats = {
  mutable fresh : int;     (** acquires that had to allocate *)
  mutable reused : int;    (** acquires served from a free list *)
  mutable recycled : int;  (** buffers accepted back *)
  mutable dropped : int;   (** returns rejected by the class cap *)
}

type t

val create : ?cap:int -> unit -> t
(** [cap] bounds the number of free buffers retained per power-of-two
    size class (default 256). *)

val acquire : t -> int -> bytes
(** [acquire t len] returns a buffer of exactly [len] bytes with
    unspecified contents — from the free list when one of that length is
    available, freshly allocated otherwise. Raises [Invalid_argument]
    for non-positive lengths. *)

val recycle : t -> bytes -> unit
(** Return a buffer for reuse. The caller must not touch it afterwards.
    Zero-length buffers and returns beyond the class cap are dropped. *)

val stats : t -> stats
val cap : t -> int

val retained : t -> int
(** Free buffers currently held across all buckets. *)

val high_watermark : t -> int
(** Most free buffers this pool ever held at once. The process-wide
    maximum across pools is exported as the [bufpool.retained_high]
    gauge; cap-rejected returns count under [bufpool.dropped]. *)
