(* Fault/recovery counters for the self-healing datapath.

   One live record shared by the driver watchdog (stall detection, ring
   resets), the dual-boundary unit (I/O-domain crash/restart, channel
   reconnects) and the fault-campaign engine (injections). Consumers
   only ever see immutable [counts] snapshots; the old API returned the
   mutable record itself and merely promised not to touch it.

   Mutators additionally bump process-wide telemetry counters. Several
   [t]s can be live at once (each Dual unit owns one), so the metrics
   are the aggregate across all of them. *)

module Metrics = Cio_telemetry.Metrics

type t = {
  mutable live_faults : int;
  mutable live_stalls : int;
  mutable live_resets : int;
  mutable live_reconnects : int;
}

type counts = {
  faults_injected : int;
  stalls_detected : int;
  resets : int;
  reconnects : int;
}

let m_faults = Metrics.counter Metrics.default "recovery.faults_injected"
let m_stalls = Metrics.counter Metrics.default "recovery.stalls_detected"
let m_resets = Metrics.counter Metrics.default "recovery.resets"
let m_reconnects = Metrics.counter Metrics.default "recovery.reconnects"

let create () =
  { live_faults = 0; live_stalls = 0; live_resets = 0; live_reconnects = 0 }

let fault_injected t =
  t.live_faults <- t.live_faults + 1;
  Metrics.inc m_faults

let stall_detected t =
  t.live_stalls <- t.live_stalls + 1;
  Metrics.inc m_stalls

let reset t =
  t.live_resets <- t.live_resets + 1;
  Metrics.inc m_resets

let reconnect t =
  t.live_reconnects <- t.live_reconnects + 1;
  Metrics.inc m_reconnects

let snapshot t =
  {
    faults_injected = t.live_faults;
    stalls_detected = t.live_stalls;
    resets = t.live_resets;
    reconnects = t.live_reconnects;
  }

let diff ~before ~after =
  {
    faults_injected = after.faults_injected - before.faults_injected;
    stalls_detected = after.stalls_detected - before.stalls_detected;
    resets = after.resets - before.resets;
    reconnects = after.reconnects - before.reconnects;
  }

let pp ppf c =
  Format.fprintf ppf "faults injected %d, stalls detected %d, resets %d, reconnects %d"
    c.faults_injected c.stalls_detected c.resets c.reconnects
