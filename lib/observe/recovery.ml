(* Fault/recovery counters for the self-healing datapath.

   One record shared by the driver watchdog (stall detection, ring
   resets), the dual-boundary unit (I/O-domain crash/restart, channel
   reconnects) and the fault-campaign engine (injections). Deliberately
   plain mutable counters: campaign reports embed a snapshot, and the
   quickstart prints them next to the cost meter. *)

type t = {
  mutable faults_injected : int;
  mutable stalls_detected : int;
  mutable resets : int;
  mutable reconnects : int;
}

let create () = { faults_injected = 0; stalls_detected = 0; resets = 0; reconnects = 0 }

let fault_injected t = t.faults_injected <- t.faults_injected + 1
let stall_detected t = t.stalls_detected <- t.stalls_detected + 1
let reset t = t.resets <- t.resets + 1
let reconnect t = t.reconnects <- t.reconnects + 1

let snapshot t =
  { faults_injected = t.faults_injected; stalls_detected = t.stalls_detected;
    resets = t.resets; reconnects = t.reconnects }

let diff ~before ~after =
  {
    faults_injected = after.faults_injected - before.faults_injected;
    stalls_detected = after.stalls_detected - before.stalls_detected;
    resets = after.resets - before.resets;
    reconnects = after.reconnects - before.reconnects;
  }

let pp ppf t =
  Format.fprintf ppf "faults injected %d, stalls detected %d, resets %d, reconnects %d"
    t.faults_injected t.stalls_detected t.resets t.reconnects
