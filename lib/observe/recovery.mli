(** Fault/recovery counters shared by the driver watchdog, the
    dual-boundary unit and the fault-campaign engine. *)

type t = {
  mutable faults_injected : int;
  mutable stalls_detected : int;
  mutable resets : int;
  mutable reconnects : int;
}

val create : unit -> t

val fault_injected : t -> unit
val stall_detected : t -> unit
val reset : t -> unit
val reconnect : t -> unit

val snapshot : t -> t
(** Immutable copy (the result is never mutated by this module). *)

val diff : before:t -> after:t -> t

val pp : Format.formatter -> t -> unit
