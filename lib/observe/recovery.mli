(** Fault/recovery counters shared by the driver watchdog, the
    dual-boundary unit and the fault-campaign engine.

    A live [t] is mutable and private to this module; consumers read it
    through {!snapshot}, which returns a plain immutable {!counts}
    record. Every mutation is mirrored into the process-wide
    [Cio_telemetry.Metrics.default] registry under [recovery.*], so the
    self-healing story shows up in metric snapshots and [--json] bench
    output without extra plumbing. *)

type t
(** Live, mutable counter set. *)

type counts = {
  faults_injected : int;
  stalls_detected : int;
  resets : int;
  reconnects : int;
}
(** Immutable snapshot / delta. *)

val create : unit -> t

val fault_injected : t -> unit
val stall_detected : t -> unit
val reset : t -> unit
val reconnect : t -> unit

val snapshot : t -> counts

val diff : before:counts -> after:counts -> counts

val pp : Format.formatter -> counts -> unit
