(* The single home of boundary and event-kind names. driver.ml,
   host_model.ml, dual.ml, configurations.ml and the experiments all
   used to spell these as scattered literals; a mistyped kind silently
   split or merged observability buckets. *)

let l2 = "l2"
let l5 = "l5"
let tcp = "tcp"
let fault = "fault"
let experiment = "experiment"

let dir_out = "out"
let dir_in = "in"

let frame = "frame"
let tunnel = "tunnel"

let tap ~base ~dir = base ^ "-" ^ dir

let frame_out = tap ~base:frame ~dir:dir_out
let frame_in = tap ~base:frame ~dir:dir_in

let kick = "kick"
let irq = "irq"
let sys_send = "sys-send"
let sys_recv = "sys-recv"
let sys_recv_data = "sys-recv-data"
