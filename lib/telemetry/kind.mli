(** One shared vocabulary for boundary and event names.

    Every tap, trace category and metric prefix that names a boundary or
    a host-visible event kind takes its string from here. A typo in a
    free-floating literal silently miscounts (two taps that should share
    a bucket stop sharing it); a typo against this module is a compile
    error. *)

(** {1 Boundary / trace categories} *)

val l2 : string
(** The host<->TEE device boundary (cionet rings, doorbells). *)

val l5 : string
(** The intra-TEE compartment boundary (gate crossings, TLS handoffs). *)

val tcp : string
(** The quarantined transport layer. *)

val fault : string
(** Fault injection / detection / recovery. *)

val experiment : string
(** Per-experiment scopes in the harness. *)

(** {1 Tap event kinds (the host-observability vocabulary)} *)

val dir_out : string
val dir_in : string

val frame : string
val tunnel : string

val tap : base:string -> dir:string -> string
(** [tap ~base ~dir] is ["<base>-<dir>"], e.g. ["frame-out"]. *)

val frame_out : string
val frame_in : string

val kick : string
val irq : string
val sys_send : string
val sys_recv : string
val sys_recv_data : string
