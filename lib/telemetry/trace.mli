(** Ring-buffered trace recorder with deterministic timestamps.

    Disabled by default; when disabled, the only cost a guarded
    call-site pays is one load + branch on [on ()]. When enabled,
    events land in a preallocated ring of mutable slots — no
    allocation per event beyond the strings the caller already holds.
    When the ring wraps, the oldest events are dropped and counted.

    Timestamps come from a pluggable clock ([set_clock]), normally the
    simulator's virtual nanosecond clock, so traces are deterministic
    across runs with the same seed. The default clock is a logical
    counter that advances by 1 per event. *)

(** {1 Lifecycle} *)

val on : unit -> bool
(** True when tracing is enabled. Hot call-sites must guard on this. *)

val enable : ?capacity:int -> unit -> unit
(** Start recording into a fresh ring of [capacity] slots
    (default 65536, rounded up to a power of two). *)

val disable : unit -> unit
val clear : unit -> unit

val set_clock : (unit -> int64) -> unit
(** Timestamp source in nanoseconds. Survives [enable]/[disable]. *)

val reset_clock : unit -> unit
(** Back to the built-in logical counter. *)

(** {1 Recording} *)

val span_begin : cat:string -> string -> unit
val span_end : cat:string -> string -> unit

val instant : ?arg:int -> cat:string -> string -> unit
(** A point event; [arg] is an optional integer payload (size, index). *)

val with_span : cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] wraps [f] in a begin/end pair; the end is
    emitted even if [f] raises. Cheap no-op when disabled. *)

(** {1 Inspection / export} *)

type phase = B | E | I

type event = {
  ts : int64; (* ns *)
  seq : int;
  phase : phase;
  cat : string;
  name : string;
  arg : int; (* min_int means "no arg" *)
}

val no_arg : int

val events : unit -> event list
(** Oldest-first contents of the ring. *)

val recorded : unit -> int
(** Total events recorded since [enable]/[clear], including dropped. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around. *)

val to_chrome_json : Buffer.t -> unit
(** Append a Chrome [trace_event]-format JSON array ([about://tracing],
    Perfetto). Timestamps are emitted in microseconds. *)

val pp_timeline : Format.formatter -> unit -> unit
(** Compact human-readable timeline, one event per line. *)
