(** Named counters, gauges and log₂-bucketed latency histograms.

    A registry maps names to instruments. Creation is idempotent:
    [counter reg "x"] returns the same instrument every time, so
    call-sites can hold a top-level handle and pay only a plain integer
    increment per event — no hash lookup, no allocation. Re-using a name
    with a different instrument type raises [Invalid_argument].

    Histograms bucket observations by [log2 (next_power_of_two v)]:
    bucket [i] covers [(2^(i-1), 2^i]] (bucket 0 covers values [<= 1]).
    Quantiles are answered from the cumulative bucket counts and clamped
    to the observed [[min, max]] range, which makes them monotone in the
    requested rank and exact at the extremes. *)

type t
(** A metrics registry. *)

val create : unit -> t

val default : t
(** The process-wide registry used by the instrumented stack. *)

val reset : t -> unit
(** Drop every instrument. Fresh handles must be re-created; handles
    obtained before [reset] keep counting into detached instruments. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
val add : counter -> int -> unit
val inc : counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit
(** Record one observation. Negative values clamp to 0. *)

val count : histogram -> int
val quantile : histogram -> float -> int
(** [quantile h q] for [q] in [[0, 1]]; [0] when empty. Returns the
    upper bound of the bucket containing rank [q], clamped to the
    observed [[min, max]]. *)

val hmax : histogram -> int
val hmin : histogram -> int

(** {1 Snapshots} *)

type instrument =
  | Counter of int
  | Gauge of int
  | Histogram of {
      n : int;
      p50 : int;
      p90 : int;
      p99 : int;
      min : int;
      max : int;
    }

val snapshot : t -> (string * instrument) list
(** Name-sorted view of every instrument. *)

val pp : Format.formatter -> t -> unit

val to_json : Buffer.t -> t -> unit
(** Append a JSON object [{"name": ...}] describing [snapshot]. *)
