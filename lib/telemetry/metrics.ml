(* Instruments are mutable records reached once through the registry
   and then held as handles at the call-site, so the hot path is a bare
   field update. 63 log2 buckets cover the whole positive int range on
   64-bit; we never resize. *)

module Bitops = Cio_util.Bitops

let buckets = 63

type counter = { mutable c : int }
type gauge = { mutable g : int }

type histogram = {
  counts : int array; (* length [buckets] *)
  mutable n : int;
  mutable lo : int;
  mutable hi : int;
}

type instr = C of counter | G of gauge | H of histogram

type t = { tbl : (string, instr) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()
let reset t = Hashtbl.reset t.tbl

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { c = 0 } in
      Hashtbl.add t.tbl name (C c);
      c

let add c n = c.c <- c.c + n
let inc c = c.c <- c.c + 1
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (G g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { g = 0 } in
      Hashtbl.add t.tbl name (G g);
      g

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      let h = { counts = Array.make buckets 0; n = 0; lo = max_int; hi = 0 } in
      Hashtbl.add t.tbl name (H h);
      h

(* Bucket i holds values in (2^(i-1), 2^i]; bucket 0 holds v <= 1.
   Bitops.log2 demands an exact power of two, hence the round-up. *)
let bucket_of v =
  if v <= 1 then 0 else min (buckets - 1) (Bitops.log2 (Bitops.next_power_of_two v))

let observe h v =
  let v = if v < 0 then 0 else v in
  h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
  h.n <- h.n + 1;
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v

let count h = h.n
let hmax h = if h.n = 0 then 0 else h.hi
let hmin h = if h.n = 0 then 0 else h.lo

let bucket_upper i = if i >= 62 then max_int else (1 lsl i)

let quantile h q =
  if h.n = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.n)) in
      if r < 1 then 1 else r
    in
    (* Rank 1 is the smallest observation itself, which we track
       exactly; buckets are only needed for interior ranks. *)
    if rank = 1 then h.lo
    else
    let rec walk i cum =
      if i >= buckets then h.hi
      else
        let cum = cum + h.counts.(i) in
        if cum >= rank then bucket_upper i else walk (i + 1) cum
    in
    let v = walk 0 0 in
    (* Clamp to the observed range: keeps quantiles exact at the
       extremes and monotone across q despite bucket granularity. *)
    if v < h.lo then h.lo else if v > h.hi then h.hi else v
  end

type instrument =
  | Counter of int
  | Gauge of int
  | Histogram of {
      n : int;
      p50 : int;
      p90 : int;
      p99 : int;
      min : int;
      max : int;
    }

let snapshot t =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h ->
            Histogram
              {
                n = h.n;
                p50 = quantile h 0.5;
                p90 = quantile h 0.9;
                p99 = quantile h 0.99;
                min = hmin h;
                max = hmax h;
              }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  let items = snapshot t in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, instr) ->
      if i > 0 then Format.fprintf ppf "@,";
      match instr with
      | Counter v -> Format.fprintf ppf "%-40s %d" name v
      | Gauge v -> Format.fprintf ppf "%-40s %d (gauge)" name v
      | Histogram { n; p50; p90; p99; min; max } ->
          Format.fprintf ppf "%-40s n=%d p50=%d p90=%d p99=%d min=%d max=%d"
            name n p50 p90 p99 min max)
    items;
  Format.fprintf ppf "@]"

(* Hand-rolled JSON: the toolchain has no JSON library and metric names
   are ASCII identifiers, but escape defensively anyway. *)
let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json buf t =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, instr) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      json_escape buf name;
      Buffer.add_string buf "\":";
      match instr with
      | Counter v -> Buffer.add_string buf (string_of_int v)
      | Gauge v -> Buffer.add_string buf (string_of_int v)
      | Histogram { n; p50; p90; p99; min; max } ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"n\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"min\":%d,\"max\":%d}"
               n p50 p90 p99 min max))
    (snapshot t);
  Buffer.add_char buf '}'
