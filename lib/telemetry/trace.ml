(* A global singleton recorder. The ring is an array of mutable slots
   written in place; [enabled] is the only word the disabled path
   touches. Not thread-safe — the whole simulator is single-domain. *)

type phase = B | E | I

type event = {
  ts : int64;
  seq : int;
  phase : phase;
  cat : string;
  name : string;
  arg : int;
}

let no_arg = min_int

type slot = {
  mutable s_ts : int64;
  mutable s_seq : int;
  mutable s_phase : phase;
  mutable s_cat : string;
  mutable s_name : string;
  mutable s_arg : int;
}

let enabled = ref false
let ring : slot array ref = ref [||]
let mask = ref 0
let next = ref 0 (* total events ever written = next sequence number *)

let logical = ref 0L

let default_clock () =
  logical := Int64.add !logical 1L;
  !logical

let clock = ref default_clock
let set_clock f = clock := f
let reset_clock () = clock := default_clock

let on () = !enabled

let clear () =
  next := 0;
  logical := 0L;
  Array.iter
    (fun s ->
      s.s_ts <- 0L;
      s.s_seq <- 0;
      s.s_phase <- I;
      s.s_cat <- "";
      s.s_name <- "";
      s.s_arg <- no_arg)
    !ring

let enable ?(capacity = 65536) () =
  let cap = Cio_util.Bitops.next_power_of_two (max 2 capacity) in
  ring :=
    Array.init cap (fun _ ->
        { s_ts = 0L; s_seq = 0; s_phase = I; s_cat = ""; s_name = ""; s_arg = no_arg });
  mask := cap - 1;
  next := 0;
  logical := 0L;
  enabled := true

let disable () = enabled := false

let record phase cat name arg =
  let s = !ring.((!next) land !mask) in
  s.s_ts <- !clock ();
  s.s_seq <- !next;
  s.s_phase <- phase;
  s.s_cat <- cat;
  s.s_name <- name;
  s.s_arg <- arg;
  incr next

let span_begin ~cat name = if !enabled then record B cat name no_arg
let span_end ~cat name = if !enabled then record E cat name no_arg

let instant ?(arg = no_arg) ~cat name = if !enabled then record I cat name arg

let with_span ~cat name f =
  if not !enabled then f ()
  else begin
    record B cat name no_arg;
    match f () with
    | v ->
        record E cat name no_arg;
        v
    | exception e ->
        record E cat name no_arg;
        raise e
  end

let recorded () = !next

let dropped () =
  let cap = Array.length !ring in
  if cap = 0 then 0 else max 0 (!next - cap)

let events () =
  let cap = Array.length !ring in
  if cap = 0 || !next = 0 then []
  else begin
    let n = min !next cap in
    let first = !next - n in
    List.init n (fun i ->
        let s = !ring.((first + i) land !mask) in
        {
          ts = s.s_ts;
          seq = s.s_seq;
          phase = s.s_phase;
          cat = s.s_cat;
          name = s.s_name;
          arg = s.s_arg;
        })
  end

(* --- export --- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Chrome's trace viewer lays events out per (pid, tid); mapping each
   category to its own tid puts L2, L5, TCP and fault activity on
   separate rows. *)
let to_chrome_json buf =
  let tids = Hashtbl.create 8 in
  let tid_of cat =
    match Hashtbl.find_opt tids cat with
    | Some t -> t
    | None ->
        let t = Hashtbl.length tids + 1 in
        Hashtbl.add tids cat t;
        t
  in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      let ph = match e.phase with B -> "B" | E -> "E" | I -> "i" in
      let ts_us = Int64.to_float e.ts /. 1000.0 in
      Buffer.add_string buf "{\"name\":\"";
      json_escape buf e.name;
      Buffer.add_string buf "\",\"cat\":\"";
      json_escape buf e.cat;
      Buffer.add_string buf (Printf.sprintf "\",\"ph\":\"%s\",\"ts\":%.3f" ph ts_us);
      Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" (tid_of e.cat));
      if e.phase = I then Buffer.add_string buf ",\"s\":\"t\"";
      if e.arg <> no_arg then
        Buffer.add_string buf (Printf.sprintf ",\"args\":{\"v\":%d}" e.arg);
      Buffer.add_string buf "}")
    (events ());
  Buffer.add_string buf "]\n"

let pp_timeline ppf () =
  let evs = events () in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@,";
      let ph = match e.phase with B -> "B" | E -> "E" | I -> "." in
      Format.fprintf ppf "%12Ldns %s [%s] %s" e.ts ph e.cat e.name;
      if e.arg <> no_arg then Format.fprintf ppf " (%d)" e.arg)
    evs;
  Format.fprintf ppf "@]"
