(** The five confidential-I/O architectures of Figure 5, built end-to-end
    on the same simulated substrate, plus the echo-workload runner that
    measures them on the figure's three axes (performance, TCB,
    observability). *)

open Cio_util

type kind = Syscall_l5 | Passthrough_l2 | Hardened_virtio | Tunneled | Dual_boundary

val kind_name : kind -> string
val all_kinds : kind list

type metrics = {
  kind : kind;
  completed : bool;
  messages : int;
  app_bytes : int;
  guest : Cost.meter;
  host : Cost.meter;
  sim_ns : int64;
  tap : Cio_observe.Observe.t;
  link_frames : int;
  link_bytes : int;
  tcb_core_loc : int;
  tcb_quarantined_loc : int;
  crossings : int;
}

val cycles_per_byte : metrics -> float
(** The performance axis: TEE cycles per application byte (lower is
    faster). *)

val run_echo :
  ?seed:int64 ->
  ?msg_size:int ->
  ?messages:int ->
  ?window:int ->
  ?latency_ns:int64 ->
  ?gbps:float ->
  ?quantum_ns:int64 ->
  ?max_steps:int ->
  ?model:Cost.model ->
  ?cionet_config:Cio_cionet.Config.t ->
  kind ->
  metrics
(** Run the echo workload against one configuration. [cionet_config]
    overrides the dual-boundary unit's device config (rx strategy,
    positioning, notifications); other kinds ignore it. Per-echo round
    trips are recorded into the ["echo.rtt_us.<kind>"] histogram of
    [Cio_telemetry.Metrics.default]. *)

(** {1 E16 decomposition ablation} *)

type transport_choice = T_virtio_hardened | T_cionet

val transport_name : transport_choice -> string

val run_echo_custom :
  ?seed:int64 ->
  ?msg_size:int ->
  ?messages:int ->
  ?window:int ->
  ?quantum_ns:int64 ->
  ?max_steps:int ->
  ?model:Cost.model ->
  transport:transport_choice ->
  quarantined:bool ->
  unit ->
  bool * float * int
(** (completed, cycles per app byte, L5 crossings) for a transport ×
    boundary-placement cell. *)
