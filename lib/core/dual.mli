(** The dual-boundary confidential unit (the paper's proposed design):
    safe L2 host boundary (cionet) + quarantined TCP/IP compartment +
    mandatory TLS at the lightweight L5 boundary. *)

open Cio_util
open Cio_frame
open Cio_tcpip
open Cio_compartment

type t
type listener

val create :
  ?cionet_config:Cio_cionet.Config.t ->
  ?mac:Addr.mac ->
  ?model:Cost.model ->
  ?crossing:Compartment.crossing ->
  ?zero_copy_send:bool ->
  ?copy_on_recv:bool ->
  ?overload:Cio_overload.Plane.config ->
  name:string ->
  ip:Addr.ipv4 ->
  neighbors:(Addr.ipv4 * Addr.mac) list ->
  psk:bytes ->
  psk_id:string ->
  rng:Rng.t ->
  now:(unit -> int64) ->
  unit ->
  t
(** [crossing] selects the L5 boundary mechanism (compartment gate by
    default; [Tee_switch] models the two-enclave alternative for E8).
    [overload] stands up the unit's overload-control plane: bounded TX
    coalescing, admission control on channel sends, a shared retry
    budget wired into TCP, and a circuit breaker the caller can attach
    to a {!Cio_cionet.Watchdog.t}. Omitted = classic unguarded unit. *)

val meter : t -> Cost.meter
val driver : t -> Cio_cionet.Driver.t
val stack : t -> Stack.t
val world : t -> Compartment.t
val app_domain : t -> Compartment.domain
val io_domain : t -> Compartment.domain
val crossings : t -> int

val recovery : t -> Cio_observe.Recovery.t
(** Fault/recovery counters (resets, reconnects) for this unit. *)

val overload : t -> Cio_overload.Plane.t option
(** The unit's overload plane (present iff [?overload] was given). It
    survives {!restart_io}: breaker and retry budget describe the host,
    which a stack rebirth does not change. *)

val io_alive : t -> bool

val crash_io : t -> unit
(** Kill the quarantined I/O-stack domain. {!poll} becomes a no-op below
    L5; the app domain and its sealed data are untouched. *)

val restart_io : t -> unit
(** Stand the I/O stack back up: fresh device instance (generation bump,
    old region revoked — the host must re-attach), fresh TCP stack, and
    an empty channel list. Existing channels are dead; use {!reconnect}. *)

val connect : t -> dst:Addr.ipv4 -> dst_port:int -> Channel.t

val reconnect : t -> Channel.t -> Channel.t
(** Replace a failed channel: same destination, new TCP connection, new
    PSK session (TLS is fail-closed; there is no renegotiation). *)

val listen : t -> port:int -> listener
val accept : listener -> Channel.t option

val poll : t -> unit
(** One quantum: cross into the I/O domain once, poll driver + stack,
    then pump every channel's record layer on the app side. *)
