(** Secure L5 channel: a {!Cio_tls.Session.t} over a TCP connection in the
    (possibly untrusted) I/O stack, with the L5 boundary expressed as the
    [enter_io] wrapper and the §3.2 copy knobs. *)

open Cio_util
open Cio_tcpip
open Cio_tls

type t

val create :
  ?zero_copy_send:bool ->
  ?copy_on_recv:bool ->
  ?enter_io:((unit -> unit) -> unit) ->
  ?model:Cost.model ->
  ?overload:Cio_overload.Plane.t ->
  meter:Cost.meter ->
  session:Session.t ->
  stack:Stack.t ->
  conn:Tcp.conn ->
  unit ->
  t

val session : t -> Session.t
val conn : t -> Tcp.conn
val error : t -> Session.error option
val sent_messages : t -> int
val received_messages : t -> int

val start_handshake : t -> (unit, Session.error) result
(** Client side: emit the opening flight. *)

val send : t -> bytes -> (unit, Session.error) result
(** Seal and queue one message (app side; no boundary crossing). *)

type send_outcome =
  | Sent
  | Shed of Cio_overload.Pressure.reason
  | Send_error of Cio_tls.Session.error

val send_admitted :
  ?klass:Cio_overload.Admission.klass -> ?deadline:Cio_overload.Deadline.t -> t -> bytes ->
  send_outcome
(** {!send} behind the overload plane's admission decision (when the
    channel has one): blown deadline, open breaker (control exempt),
    then the token bucket — the shed happens before any sealing work is
    spent. Without a plane this is plain {!send}. *)

val outbox_bytes : t -> int
(** Sealed bytes queued for TCP (app-side backlog). *)

val io_pump : t -> bool
(** I/O-domain half: flush the outbox into TCP and harvest stream bytes.
    The caller must already be inside the I/O domain. Returns whether any
    bytes crossed the L5 boundary (for handoff-crossing accounting). *)

val app_pump : t -> unit
(** App-side half: run harvested bytes through the record layer. *)

val pump : t -> unit
(** Standalone convenience: one boundary crossing around {!io_pump}, then
    {!app_pump}. *)

val recv : t -> bytes option
val pending : t -> int
val is_established : t -> bool
