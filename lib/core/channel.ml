(* Secure L5 channel: a TLS session running over a TCP connection in the
   (possibly untrusted) I/O stack.

   The channel is split into two halves around the L5 boundary:

   - [io_pump] runs *inside* the I/O domain: it flushes the app's sealed
     outbox into TCP and harvests raw stream bytes. In the dual-boundary
     design the confidential unit batches the io_pump of every channel
     under a single compartment crossing per quantum.
   - [app_pump] runs on the app side: it copies harvested bytes out of
     the stack's reach (when [copy_on_recv]), feeds the record layer and
     surfaces decrypted messages.

   [zero_copy_send] models §3.2's "trusted component allocates": with it,
   the app seals directly into I/O-domain buffers and saves the crossing
   copy; without it each outbound record pays one extra copy. *)

open Cio_util
open Cio_tcpip
open Cio_tls

type t = {
  session : Session.t;
  stack : Stack.t;
  conn : Tcp.conn;
  enter_io : (unit -> unit) -> unit;
  (* The overload plane guarding this channel's compartment boundary;
     [None] means every send is admitted unconditionally (classic). *)
  overload : Cio_overload.Plane.t option;
  zero_copy_send : bool;
  copy_on_recv : bool;
  meter : Cost.meter;
  model : Cost.model;
  outbox : Buffer.t;     (* sealed wire bytes awaiting TCP *)
  mutable raw_in : bytes list;  (* harvested stream bytes, oldest first *)
  inbox : bytes Queue.t;
  mutable failed : Session.error option;
  mutable sent_messages : int;
  mutable received_messages : int;
}

let create ?(zero_copy_send = false) ?(copy_on_recv = false) ?(enter_io = fun f -> f ())
    ?(model = Cost.default) ?overload ~meter ~session ~stack ~conn () =
  {
    session;
    stack;
    conn;
    enter_io;
    overload;
    zero_copy_send;
    copy_on_recv;
    meter;
    model;
    outbox = Buffer.create 4096;
    raw_in = [];
    inbox = Queue.create ();
    failed = None;
    sent_messages = 0;
    received_messages = 0;
  }

let session t = t.session
let conn t = t.conn
let error t = t.failed
let sent_messages t = t.sent_messages
let received_messages t = t.received_messages

let fail t e = if t.failed = None then t.failed <- Some e

(* App side: queue sealed bytes for the I/O domain. The non-zero-copy
   path pays the L5 crossing copy here. *)
let queue_wire t wire =
  if not t.zero_copy_send then
    Cost.charge t.meter Cost.Copy (Cost.copy_cost t.model (Bytes.length wire));
  Buffer.add_bytes t.outbox wire

(* I/O-domain half: must be called within the I/O domain (the caller
   decides how the boundary is crossed). Returns whether any bytes moved
   across the L5 boundary, so the caller can charge handoff crossings. *)
let io_pump t =
  let moved = ref false in
  (* Flush as much of the outbox as TCP will take. *)
  let pending = Buffer.length t.outbox in
  if pending > 0 then begin
    let data = Buffer.to_bytes t.outbox in
    let accepted = Tcp.send (Stack.tcp t.stack) t.conn data in
    if accepted > 0 then begin
      moved := true;
      Buffer.clear t.outbox;
      if accepted < pending then Buffer.add_subbytes t.outbox data accepted (pending - accepted);
      Tcp.flush (Stack.tcp t.stack) t.conn
    end
  end;
  (* Harvest inbound stream bytes. *)
  let b = Tcp.recv (Stack.tcp t.stack) t.conn ~max:65536 in
  if Bytes.length b > 0 then begin
    moved := true;
    t.raw_in <- t.raw_in @ [ b ]
  end;
  !moved

(* App-side half: move harvested bytes through the record layer. *)
let app_pump t =
  let chunks = t.raw_in in
  t.raw_in <- [];
  List.iter
    (fun b ->
      if t.copy_on_recv then
        (* Copy out of the I/O domain's reach before parsing. *)
        Cost.charge t.meter Cost.Copy (Cost.copy_cost t.model (Bytes.length b));
      if t.failed = None then begin
        let result = Session.feed t.session b in
        List.iter (fun w -> queue_wire t w) result.Session.outputs;
        List.iter
          (fun msg ->
            t.received_messages <- t.received_messages + 1;
            Queue.add msg t.inbox)
          result.Session.app_data;
        match result.Session.err with Some e -> fail t e | None -> ()
      end)
    chunks

(* Standalone pump for single-boundary users. *)
let pump t =
  t.enter_io (fun () -> ignore (io_pump t));
  app_pump t

let send t payload =
  match t.failed with
  | Some e -> Error e
  | None -> (
      match Session.send_data t.session payload with
      | Error e ->
          fail t e;
          Error e
      | Ok wire ->
          queue_wire t wire;
          t.sent_messages <- t.sent_messages + 1;
          Ok ())

type send_outcome =
  | Sent
  | Shed of Cio_overload.Pressure.reason
  | Send_error of Session.error

(* Admission-controlled send: the overload plane's decision point sits
   exactly at the L5 boundary, before any sealing work is spent — a shed
   request costs the app nothing but the call. *)
let send_admitted ?(klass = Cio_overload.Admission.Interactive) ?deadline t payload =
  match t.overload with
  | None -> (
      match send t payload with Ok () -> Sent | Error e -> Send_error e)
  | Some plane -> (
      match Cio_overload.Plane.admit ?deadline plane klass with
      | Cio_overload.Pressure.Backpressure reason -> Shed reason
      | Cio_overload.Pressure.Accepted -> (
          match send t payload with Ok () -> Sent | Error e -> Send_error e))

let outbox_bytes t = Buffer.length t.outbox
let recv t = if Queue.is_empty t.inbox then None else Some (Queue.take t.inbox)
let pending t = Queue.length t.inbox
let is_established t = Session.is_established t.session

let start_handshake t =
  match Session.initiate t.session with
  | Ok flights ->
      List.iter (fun w -> queue_wire t w) flights;
      Ok ()
  | Error e ->
      fail t e;
      Error e
