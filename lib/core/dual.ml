(* The dual-boundary confidential unit — the paper's proposed design,
   assembled: a strong, safe-by-construction host boundary at L2
   (cionet), the whole TCP/IP stack quarantined in an intra-TEE
   compartment, and a lightweight single-distrust boundary at L5 where
   the mandatory TLS layer authenticates everything the stack delivers.

   Ternary trust model (§3.1):
     app domain   — trusts nothing below it; its data never leaves
                    unsealed;
     I/O stack    — trusted by nobody, trusts the app; compromise yields
                    observability only;
     host         — trusted by nobody; sees exactly what it could see on
                    the wire. *)

open Cio_util
open Cio_tcpip
open Cio_tls
open Cio_compartment

type t = {
  world : Compartment.t;
  app : Compartment.domain;
  io : Compartment.domain;
  driver : Cio_cionet.Driver.t;
  mutable stack : Stack.t;
  meter : Cost.meter;
  model : Cost.model;
  ip : Cio_frame.Addr.ipv4;
  neighbors : (Cio_frame.Addr.ipv4 * Cio_frame.Addr.mac) list;
  now : unit -> int64;
  psk : bytes;
  psk_id : string;
  rng : Rng.t;
  zero_copy_send : bool;
  copy_on_recv : bool;
  recovery : Cio_observe.Recovery.t;
  (* The unit's overload-control plane; [None] = classic unguarded unit.
     The plane survives I/O-stack restarts (it guards the app-side
     boundary and its breaker/budget describe the *host*, which a stack
     rebirth does not change). *)
  plane : Cio_overload.Plane.t option;
  mutable channels : Channel.t list;
}

type listener = { tcp_listener : Tcp.listener; unit_ : t }

let enter_io t f = Compartment.call t.world ~caller:t.app ~callee:t.io f

let create ?(cionet_config = Cio_cionet.Config.default) ?mac ?(model = Cost.default)
    ?(crossing = Compartment.Gate) ?(zero_copy_send = true) ?(copy_on_recv = true) ?overload
    ~name ~ip ~neighbors ~psk ~psk_id ~rng ~now () =
  let cionet_config =
    match mac with
    | Some mac -> { cionet_config with Cio_cionet.Config.mac }
    | None -> cionet_config
  in
  let meter = Cost.meter () in
  let world = Compartment.create ~model ~meter ~crossing () in
  let app = Compartment.add_domain world ~name:"app" in
  let io = Compartment.add_domain world ~name:"iostack" in
  let driver = Cio_cionet.Driver.create ~model ~meter ~name cionet_config in
  let netif = Cio_cionet.Driver.to_netif driver in
  let plane =
    Option.map
      (fun config -> Cio_overload.Plane.create ~config ~rng:(Rng.split rng) ~now ())
      overload
  in
  (* The closures capture [driver] (whose instance is swapped in place on
     hot swap), so burst TX and buffer recycling survive restarts. *)
  let stack =
    Stack.create ~model ~meter
      ~tx_burst:(fun frames -> Cio_cionet.Driver.transmit_burst driver frames)
      ~recycle:(fun f -> Cio_cionet.Driver.recycle driver f)
      ?tx_queue_limit:
        (Option.map (fun p -> (Cio_overload.Plane.config p).Cio_overload.Plane.queue_limit) plane)
      ?retry_budget:(Option.map Cio_overload.Plane.retry_budget plane)
      ~netif ~ip ~neighbors ~now ~rng ()
  in
  {
    world;
    app;
    io;
    driver;
    stack;
    meter;
    model;
    ip;
    neighbors;
    now;
    psk;
    psk_id;
    rng;
    zero_copy_send;
    copy_on_recv;
    recovery = Cio_observe.Recovery.create ();
    plane;
    channels = [];
  }

let meter t = t.meter
let driver t = t.driver
let stack t = t.stack
let world t = t.world
let app_domain t = t.app
let io_domain t = t.io
let crossings t = (Compartment.counters t.world).Compartment.crossings
let recovery t = t.recovery
let overload t = t.plane
let io_alive t = Compartment.domain_alive t.io

(* I/O-stack death and rebirth — the ternary trust model's recovery
   story. The quarantined stack crashing (or being killed because the
   host drove it somewhere untrustworthy) loses only I/O state: TCP
   connections, reassembly buffers, ring cursors. The app's secrets sit
   behind the L5 TLS boundary in a different domain, so nothing leaks —
   and because the L2 interface is stateless and the TLS resumption is a
   fresh PSK handshake (zero renegotiation: no session state to migrate),
   recovery is mechanical: new rings, new stack, new TCP connection, new
   session. *)
let crash_io t =
  if Cio_telemetry.Trace.on () then
    Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.l5 "crash-io";
  Compartment.crash_domain t.world t.io

let restart_io t =
  if Cio_telemetry.Trace.on () then
    Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.l5 "restart-io";
  if not (Compartment.domain_alive t.io) then Compartment.restart_domain t.world t.io;
  (* The old instance's shared region is revoked wholesale; the dead
     stack's connections are unreachable garbage. *)
  Cio_cionet.Driver.hot_swap t.driver;
  Cio_observe.Recovery.reset t.recovery;
  t.channels <- [];
  t.stack <-
    Stack.create ~model:t.model ~meter:t.meter
      ~tx_burst:(fun frames -> Cio_cionet.Driver.transmit_burst t.driver frames)
      ~recycle:(fun f -> Cio_cionet.Driver.recycle t.driver f)
      ?tx_queue_limit:
        (Option.map
           (fun p -> (Cio_overload.Plane.config p).Cio_overload.Plane.queue_limit)
           t.plane)
      ?retry_budget:(Option.map Cio_overload.Plane.retry_budget t.plane)
      ~netif:(Cio_cionet.Driver.to_netif t.driver)
      ~ip:t.ip ~neighbors:t.neighbors ~now:t.now ~rng:t.rng ()

let make_channel t ~role ~conn =
  let session =
    Session.create ~model:t.model ~meter:t.meter ~role ~psk:t.psk ~psk_id:t.psk_id ~rng:t.rng ()
  in
  let ch =
    Channel.create ~zero_copy_send:t.zero_copy_send ~copy_on_recv:t.copy_on_recv
      ~enter_io:(fun f -> enter_io t f) ~model:t.model ?overload:t.plane ~meter:t.meter
      ~session ~stack:t.stack ~conn ()
  in
  t.channels <- ch :: t.channels;
  ch

let connect t ~dst ~dst_port =
  let conn = enter_io t (fun () -> Tcp.connect (Stack.tcp t.stack) ~dst ~dst_port ()) in
  let ch = make_channel t ~role:Session.Client ~conn in
  match Channel.start_handshake ch with Ok () -> ch | Error _ -> ch

(* Replace a dead channel: same destination, fresh TCP connection, fresh
   PSK session. TLS failures are fail-closed and poison the session, so
   this is the *only* way forward after tampering or a stack restart —
   exactly the paper's zero-renegotiation stance. *)
let reconnect t ch =
  let dst, dst_port = Tcp.conn_remote (Channel.conn ch) in
  t.channels <- List.filter (fun c -> c != ch) t.channels;
  Cio_observe.Recovery.reconnect t.recovery;
  if Cio_telemetry.Trace.on () then
    Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.l5 "reconnect";
  connect t ~dst ~dst_port

let listen t ~port =
  { tcp_listener = enter_io t (fun () -> Tcp.listen (Stack.tcp t.stack) ~port ()); unit_ = t }

let accept l =
  let t = l.unit_ in
  match enter_io t (fun () -> Tcp.accept l.tcp_listener) with
  | None -> None
  | Some conn -> Some (make_channel t ~role:Session.Server ~conn)

(* One scheduling quantum of the confidential unit. The I/O compartment
   is modelled as asynchronously scheduled (its polling loop runs on its
   own logical core, like a kernel io-thread), so its continuous polling
   does not cross the L5 boundary; what costs a gate round trip is each
   *data handoff* between the app and the I/O domain, which is what the
   paper's latency argument is about. *)
let poll t =
  (* Crash containment: with the I/O domain dead, its polling loop simply
     does not run. The app side keeps scheduling (and its data stays
     sealed); there is nothing below L5 to talk to until restart_io. *)
  if Compartment.domain_alive t.io then begin
    Stack.poll t.stack;
    List.iter
      (fun ch -> if Channel.io_pump ch then Compartment.charge_crossing t.world)
      t.channels;
    List.iter Channel.app_pump t.channels
  end
