(* The five confidential-I/O architectures of Figure 5, built end-to-end
   on the same simulated substrate and driven by the same workload:

   - syscall-l5      Graphene/CCF-class: host runs the stack, the TEE
                     keeps only TLS; every socket op is an enclave exit.
   - passthrough-l2  rkt-io/ShieldBox-class: full stack + *unhardened*
                     legacy transport inside the TEE.
   - hardened-virtio lift-and-shift CVM: stack + retrofitted-checks
                     driver inside the TEE.
   - tunneled        LightBox-class: stack in the TEE, every L2 frame
                     sealed and padded into a tunnel.
   - dual-boundary   this work: cionet + quarantined stack + mandatory
                     TLS at a compartment-gated L5.

   Each run reports the TEE's counted work (cycles, by category), the
   host-observability tap, and the configuration's TCB profile — the
   three axes of Figure 5. *)

open Cio_util
open Cio_frame
open Cio_netsim
open Cio_tcpip
open Cio_tls
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind_ = Cio_telemetry.Kind

type kind = Syscall_l5 | Passthrough_l2 | Hardened_virtio | Tunneled | Dual_boundary

let kind_name = function
  | Syscall_l5 -> "syscall-l5"
  | Passthrough_l2 -> "passthrough-l2"
  | Hardened_virtio -> "hardened-virtio"
  | Tunneled -> "tunneled"
  | Dual_boundary -> "dual-boundary"

let all_kinds = [ Syscall_l5; Passthrough_l2; Hardened_virtio; Tunneled; Dual_boundary ]

type metrics = {
  kind : kind;
  completed : bool;
  messages : int;
  app_bytes : int;       (* application payload bytes echoed, both ways *)
  guest : Cost.meter;    (* the TEE's counted work *)
  host : Cost.meter;     (* host-side work (for reference) *)
  sim_ns : int64;
  tap : Cio_observe.Observe.t;
  link_frames : int;
  link_bytes : int;
  tcb_core_loc : int;
  tcb_quarantined_loc : int;
  crossings : int;       (* L5 boundary crossings (dual only) *)
}

let cycles_per_byte m =
  if m.app_bytes = 0 then infinity else float_of_int (Cost.total m.guest) /. float_of_int m.app_bytes

(* A configuration instance: how the harness drives the confidential side. *)
type endpoint = {
  pump : unit -> unit;          (* one confidential-side scheduling quantum *)
  host_pump : unit -> unit;     (* one host-side quantum *)
  send : bytes -> bool;         (* queue one application message *)
  recv : unit -> bytes option;  (* next echoed message *)
  established : unit -> bool;
  failed : unit -> bool;
  guest_meter : Cost.meter;
  host_meter : Cost.meter;
  crossings : unit -> int;
}

let ip_tee = Addr.ipv4_of_octets 10 0 0 1
let ip_peer = Addr.ipv4_of_octets 10 0 0 2
let mac_tee = Addr.mac_of_octets 0x02 0 0 0 0 0x01
let mac_peer = Addr.mac_of_octets 0x02 0 0 0 0 0x02
let echo_port = 443

let psk = Bytes.of_string "attestation-provisioned-psk-32b!"
let psk_id = "tenant-0001"
let tunnel_key = Bytes.of_string "tunnel-key-tunnel-key-tunnel-32b"
let tunnel_pad = 1600

(* Shared per-run scaffolding. *)
type env = {
  engine : Engine.t;
  link : Link.t;
  tap : Cio_observe.Observe.t;
  peer : Peer.t;
  rng : Rng.t;
  model : Cost.model;
}

let make_env ?(model = Cost.default) ?peer_codec ~seed ~latency_ns ~gbps ~tap_name () =
  let engine = Engine.create () in
  (* Trace timestamps follow the run's virtual clock: same seed, same
     trace, byte for byte. *)
  if Trace.on () then Trace.set_clock (fun () -> Engine.now engine);
  let link = Link.create ~latency_ns ~gbps engine in
  let tap = Cio_observe.Observe.create tap_name in
  let rng = Rng.create seed in
  let now () = Engine.now engine in
  let peer =
    Peer.create ~model ?frame_codec:peer_codec ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer
      ~neighbors:[ (ip_tee, mac_tee) ] ~psk ~psk_id ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:echo_port;
  { engine; link; tap; peer; rng; model }

(* Record link-level metadata into the tap: what a host watching its NIC
   (or the wire) sees in every configuration. *)
let tap_link env ~frame_kind =
  Link.set_transit_tap env.link
    (Some
       (fun ~time ~src frame ->
         let dir = match src with Link.A -> Kind_.dir_out | Link.B -> Kind_.dir_in in
         Cio_observe.Observe.record env.tap ~time
           ~kind:(Kind_.tap ~base:frame_kind ~dir)
           ~size:(Bytes.length frame)))

let neighbors_tee = [ (ip_peer, mac_peer) ]

(* Channel-based confidential endpoints (every kind except syscall-l5). *)
let channel_endpoint ~channel ~pump ~host_pump ~guest_meter ~host_meter ~crossings =
  {
    pump;
    host_pump;
    send = (fun msg -> match Channel.send channel msg with Ok () -> true | Error _ -> false);
    recv = (fun () -> Channel.recv channel);
    established = (fun () -> Channel.is_established channel);
    failed = (fun () -> Channel.error channel <> None);
    guest_meter;
    host_meter;
    crossings;
  }

let make_dual ?cionet_config env =
  let now () = Engine.now env.engine in
  let unit_ =
    Dual.create ?cionet_config ~model:env.model ~mac:mac_tee ~name:"dual-tee" ~ip:ip_tee
      ~neighbors:neighbors_tee ~psk ~psk_id ~rng:(Rng.split env.rng) ~now ()
  in
  let host_meter = Cio_cionet.Driver.host_meter (Dual.driver unit_) in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun frame -> Link.send env.link ~src:Link.A frame)
  in
  Link.attach env.link Link.A (fun frame -> Cio_cionet.Host_model.deliver_rx host frame);
  tap_link env ~frame_kind:Kind_.frame;
  let channel = Dual.connect unit_ ~dst:ip_peer ~dst_port:echo_port in
  channel_endpoint ~channel
    ~pump:(fun () -> Dual.poll unit_)
    ~host_pump:(fun () -> Cio_cionet.Host_model.poll host)
    ~guest_meter:(Dual.meter unit_) ~host_meter
    ~crossings:(fun () -> Dual.crossings unit_)

(* Single-boundary TEE over a virtio transport (passthrough / hardened).
   The whole stack lives in the core TCB: no compartment, no L5 distrust
   copies. *)
let make_virtio env ~hardened =
  let now () = Engine.now env.engine in
  let guest_meter = Cost.meter () in
  let host_meter = Cost.meter () in
  let transport =
    Cio_virtio.Transport.create ~model:env.model ~meter:guest_meter ~name:"virtio-tee" ()
  in
  let device =
    Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx transport)
      ~tx:(Cio_virtio.Transport.tx transport)
      ~transmit:(fun frame -> Link.send env.link ~src:Link.A frame)
  in
  Link.attach env.link Link.A (fun frame -> Cio_virtio.Device.deliver_rx device frame);
  let base_netif, get_kicks, get_irqs =
    if hardened then begin
      let d = Cio_virtio.Driver_hardened.create transport in
      ( Cio_virtio.Driver_hardened.to_netif d ~mac:mac_tee,
        (fun () -> Cio_virtio.Driver_hardened.kicks d),
        fun () -> Cio_virtio.Driver_hardened.irqs d )
    end
    else begin
      let d = Cio_virtio.Driver_unhardened.create transport in
      ( Cio_virtio.Driver_unhardened.to_netif d ~mac:mac_tee,
        (fun () -> Cio_virtio.Driver_unhardened.kicks d),
        fun () -> Cio_virtio.Driver_unhardened.irqs d )
    end
  in
  let netif = base_netif in
  let stack =
    Stack.create ~model:env.model ~meter:guest_meter ~netif ~ip:ip_tee ~neighbors:neighbors_tee ~now
      ~rng:(Rng.split env.rng) ()
  in
  tap_link env ~frame_kind:Kind_.frame;
  let session =
    Session.create ~model:env.model ~meter:guest_meter ~role:Session.Client ~psk ~psk_id
      ~rng:(Rng.split env.rng) ()
  in
  let conn = Tcp.connect (Stack.tcp stack) ~dst:ip_peer ~dst_port:echo_port () in
  let channel =
    (* Single distrust boundary: the stack is part of the trusted unit,
       so no L5 copies are charged. *)
    Channel.create ~zero_copy_send:true ~copy_on_recv:false ~model:env.model ~meter:guest_meter
      ~session ~stack ~conn ()
  in
  ignore (Channel.start_handshake channel);
  (* Doorbell/interrupt traffic is host-visible: surface it in the tap. *)
  let last_kicks = ref 0 and last_irqs = ref 0 in
  let record_notifications kicks irqs =
    for _ = 1 to kicks - !last_kicks do
      Cio_observe.Observe.record env.tap ~time:(Engine.now env.engine) ~kind:Kind_.kick ~size:0
    done;
    for _ = 1 to irqs - !last_irqs do
      Cio_observe.Observe.record env.tap ~time:(Engine.now env.engine) ~kind:Kind_.irq ~size:0
    done;
    last_kicks := kicks;
    last_irqs := irqs
  in
  let pump () =
    Stack.poll stack;
    Channel.pump channel
  in
  let host_pump () =
    Cio_virtio.Device.poll device;
    record_notifications (get_kicks ()) (get_irqs ())
  in
  channel_endpoint ~channel ~pump ~host_pump ~guest_meter ~host_meter ~crossings:(fun () -> 0)

(* LightBox-class tunneled design: the stack and a DPDK-style polled
   transport live in the TEE (single boundary, XL core TCB), and every
   L2 frame is sealed into a fixed-size tunnel blob with cadence padding
   (dummy blobs when idle). The host observes only uniform ciphertext. *)
let make_tunneled env =
  let now () = Engine.now env.engine in
  let guest_meter = Cost.meter () in
  let host_meter = Cost.meter () in
  let driver =
    Cio_cionet.Driver.create ~model:env.model ~meter:guest_meter ~host_meter ~name:"tunnel-tee"
      { Cio_cionet.Config.default with Cio_cionet.Config.mac = mac_tee }
  in
  let host =
    Cio_cionet.Host_model.create ~driver ~transmit:(fun frame -> Link.send env.link ~src:Link.A frame)
  in
  Link.attach env.link Link.A (fun frame -> Cio_cionet.Host_model.deliver_rx host frame);
  tap_link env ~frame_kind:Kind_.tunnel;
  let base_netif = Cio_cionet.Driver.to_netif driver in
  let dummy_interval_ns = 20_000L in
  let last_tx = ref 0L in
  let tx_sealed frame =
    last_tx := Engine.now env.engine;
    (* Encapsulation pays full-pad crypto plus the assembly copy. *)
    Cost.charge guest_meter Cost.Crypto (Cost.aead_cost env.model tunnel_pad);
    Cost.charge guest_meter Cost.Copy (Cost.copy_cost env.model tunnel_pad);
    base_netif.Netif.transmit (Tunnel.seal ~key:tunnel_key ~pad_to:tunnel_pad frame)
  in
  let netif =
    {
      base_netif with
      Netif.mtu = base_netif.Netif.mtu - 64;
      transmit = tx_sealed;
      poll =
        (fun () ->
          if Int64.sub (Engine.now env.engine) !last_tx >= dummy_interval_ns then
            tx_sealed Bytes.empty;
          match base_netif.Netif.poll () with
          | None -> None
          | Some blob -> (
              Cost.charge guest_meter Cost.Crypto (Cost.aead_cost env.model (Bytes.length blob));
              Cost.charge guest_meter Cost.Copy (Cost.copy_cost env.model (Bytes.length blob));
              match Tunnel.open_ ~key:tunnel_key blob with
              | Some frame -> if Bytes.length frame = 0 then None else Some frame
              | None -> None));
    }
  in
  let stack =
    Stack.create ~model:env.model ~meter:guest_meter ~netif ~ip:ip_tee ~neighbors:neighbors_tee ~now
      ~rng:(Rng.split env.rng) ()
  in
  let session =
    Session.create ~model:env.model ~meter:guest_meter ~role:Session.Client ~psk ~psk_id
      ~rng:(Rng.split env.rng) ()
  in
  let conn = Tcp.connect (Stack.tcp stack) ~dst:ip_peer ~dst_port:echo_port () in
  let channel =
    Channel.create ~zero_copy_send:true ~copy_on_recv:false ~model:env.model ~meter:guest_meter
      ~session ~stack ~conn ()
  in
  ignore (Channel.start_handshake channel);
  let pump () =
    Stack.poll stack;
    Channel.pump channel
  in
  channel_endpoint ~channel ~pump
    ~host_pump:(fun () -> Cio_cionet.Host_model.poll host)
    ~guest_meter ~host_meter
    ~crossings:(fun () -> 0)

(* Graphene/CCF-class syscall-level design: the host owns the stack; the
   TEE holds only the TLS endpoint. Every socket call is a world switch
   the host both serves and observes. *)
let make_syscall env =
  let now () = Engine.now env.engine in
  let guest_meter = Cost.meter () in
  let host_meter = Cost.meter () in
  let rxq = Queue.create () in
  Link.attach env.link Link.A (fun frame -> Queue.add frame rxq);
  let netif =
    {
      Netif.mac = mac_tee;
      mtu = 1500;
      transmit = (fun frame -> Link.send env.link ~src:Link.A frame);
      poll = (fun () -> if Queue.is_empty rxq then None else Some (Queue.take rxq));
    }
  in
  (* The host stack: charged to the host meter — it is not TEE work. *)
  let stack =
    Stack.create ~model:env.model ~meter:host_meter ~netif ~ip:ip_tee ~neighbors:neighbors_tee ~now
      ~rng:(Rng.split env.rng) ()
  in
  tap_link env ~frame_kind:Kind_.frame;
  let session =
    Session.create ~model:env.model ~meter:guest_meter ~role:Session.Client ~psk ~psk_id
      ~rng:(Rng.split env.rng) ()
  in
  let conn = Tcp.connect (Stack.tcp stack) ~dst:ip_peer ~dst_port:echo_port () in
  let syscall kind size =
    Cost.charge guest_meter Cost.Tee_switch env.model.Cost.tee_switch;
    (* Enclave-boundary marshalling: buffers are copied across the exit. *)
    if size > 0 then Cost.charge guest_meter Cost.Copy (Cost.copy_cost env.model size);
    Cio_observe.Observe.record env.tap ~time:(Engine.now env.engine) ~kind ~size
  in
  let inbox = Queue.create () in
  let outbox = Buffer.create 4096 in
  let failed = ref false in
  let push_wire wire =
    (* One send syscall per record: the host sees the call and its size. *)
    syscall Kind_.sys_send (Bytes.length wire);
    Buffer.add_bytes outbox wire
  in
  let flush_outbox () =
    let pending = Buffer.length outbox in
    if pending > 0 then begin
      let data = Buffer.to_bytes outbox in
      let accepted = Tcp.send (Stack.tcp stack) conn data in
      if accepted > 0 then begin
        Buffer.clear outbox;
        if accepted < pending then Buffer.add_subbytes outbox data accepted (pending - accepted);
        Tcp.flush (Stack.tcp stack) conn
      end
    end
  in
  (match Session.initiate session with
  | Ok flights -> List.iter push_wire flights
  | Error _ -> failed := true);
  let pump () =
    flush_outbox ();
    (* A recv syscall only when the host has data to deliver (an
       event-driven ocall, not a busy spin). *)
    if Tcp.recv_available conn > 0 then begin
      syscall Kind_.sys_recv 0;
      let b = Tcp.recv (Stack.tcp stack) conn ~max:65536 in
      if Bytes.length b > 0 then begin
        Cost.charge guest_meter Cost.Copy (Cost.copy_cost env.model (Bytes.length b));
        Cio_observe.Observe.record env.tap ~time:(Engine.now env.engine) ~kind:Kind_.sys_recv_data
          ~size:(Bytes.length b);
        let result = Session.feed session b in
        List.iter push_wire result.Session.outputs;
        List.iter (fun m -> Queue.add m inbox) result.Session.app_data;
        (match result.Session.err with Some _ -> failed := true | None -> ());
        flush_outbox ()
      end
    end
  in
  let host_pump () = Stack.poll stack in
  {
    pump;
    host_pump;
    send =
      (fun msg ->
        match Session.send_data session msg with
        | Ok wire ->
            push_wire wire;
            true
        | Error _ ->
            failed := true;
            false);
    recv = (fun () -> if Queue.is_empty inbox then None else Some (Queue.take inbox));
    established = (fun () -> Session.is_established session);
    failed = (fun () -> !failed);
    guest_meter;
    host_meter;
    crossings = (fun () -> 0);
  }

let make_endpoint ?cionet_config env = function
  | Dual_boundary -> make_dual ?cionet_config env
  | Passthrough_l2 -> make_virtio env ~hardened:false
  | Hardened_virtio -> make_virtio env ~hardened:true
  | Tunneled -> make_tunneled env
  | Syscall_l5 -> make_syscall env

(* Custom wirings for the E16 decomposition ablation: transport choice
   (legacy hardened virtio vs cionet) crossed with boundary placement
   (stack in the core TCB vs quarantined behind a compartment gate). The
   four cells isolate how much of the dual design's win comes from the
   safe transport and how much from the boundary split. *)

type transport_choice = T_virtio_hardened | T_cionet

let transport_name = function T_virtio_hardened -> "virtio-hardened" | T_cionet -> "cionet"

let make_custom env ~transport ~quarantined =
  let now () = Engine.now env.engine in
  let guest_meter = Cost.meter () in
  let host_meter = Cost.meter () in
  let netif, host_pump =
    match transport with
    | T_cionet ->
        let driver =
          Cio_cionet.Driver.create ~model:env.model ~meter:guest_meter ~host_meter
            ~name:"custom-cionet"
            { Cio_cionet.Config.default with Cio_cionet.Config.mac = mac_tee }
        in
        let host =
          Cio_cionet.Host_model.create ~driver
            ~transmit:(fun f -> Link.send env.link ~src:Link.A f)
        in
        Link.attach env.link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
        (Cio_cionet.Driver.to_netif driver, fun () -> Cio_cionet.Host_model.poll host)
    | T_virtio_hardened ->
        let tr = Cio_virtio.Transport.create ~model:env.model ~meter:guest_meter ~name:"custom-virtio" () in
        let dev =
          Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx tr) ~tx:(Cio_virtio.Transport.tx tr)
            ~transmit:(fun f -> Link.send env.link ~src:Link.A f)
        in
        Link.attach env.link Link.A (fun f -> Cio_virtio.Device.deliver_rx dev f);
        let d = Cio_virtio.Driver_hardened.create tr in
        (Cio_virtio.Driver_hardened.to_netif d ~mac:mac_tee, fun () -> Cio_virtio.Device.poll dev)
  in
  let stack =
    Stack.create ~model:env.model ~meter:guest_meter ~netif ~ip:ip_tee ~neighbors:neighbors_tee ~now
      ~rng:(Rng.split env.rng) ()
  in
  tap_link env ~frame_kind:Kind_.frame;
  let session =
    Session.create ~model:env.model ~meter:guest_meter ~role:Session.Client ~psk ~psk_id
      ~rng:(Rng.split env.rng) ()
  in
  let conn = Tcp.connect (Stack.tcp stack) ~dst:ip_peer ~dst_port:echo_port () in
  let world = Cio_compartment.Compartment.create ~model:env.model ~meter:guest_meter ~crossing:Cio_compartment.Compartment.Gate () in
  let channel =
    (* Quarantined: distrust copies at L5 plus a gate per data handoff.
       In-core: the stack is trusted, no copies, no gates. *)
    Channel.create ~zero_copy_send:true ~copy_on_recv:quarantined ~model:env.model
      ~meter:guest_meter ~session ~stack ~conn ()
  in
  ignore (Channel.start_handshake channel);
  let pump () =
    Stack.poll stack;
    if quarantined then begin
      if Channel.io_pump channel then Cio_compartment.Compartment.charge_crossing world
    end
    else ignore (Channel.io_pump channel);
    Channel.app_pump channel
  in
  channel_endpoint ~channel ~pump ~host_pump ~guest_meter ~host_meter ~crossings:(fun () ->
      (Cio_compartment.Compartment.counters world).Cio_compartment.Compartment.crossings)

let run_echo_custom ?(seed = 1L) ?(msg_size = 1024) ?(messages = 30) ?(window = 4)
    ?(quantum_ns = 2_000L) ?(max_steps = 400_000) ?(model = Cost.default) ~transport ~quarantined
    () =
  let env = make_env ~model ~seed ~latency_ns:10_000L ~gbps:10.0 ~tap_name:"custom" () in
  let ep = make_custom env ~transport ~quarantined in
  let payload = Bytes.make msg_size 'm' in
  let sent = ref 0 and echoes = ref 0 and steps = ref 0 in
  while !echoes < messages && !steps < max_steps && not (ep.failed ()) do
    incr steps;
    ep.pump ();
    ep.host_pump ();
    Peer.poll env.peer;
    Engine.advance env.engine ~by:quantum_ns;
    if ep.established () then
      while !sent < messages && !sent - !echoes < window && ep.send payload do
        incr sent
      done;
    let rec drain () =
      match ep.recv () with
      | Some _ ->
          incr echoes;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  ( !echoes >= messages,
    float_of_int (Cost.total ep.guest_meter) /. float_of_int (max 1 (2 * msg_size * !echoes)),
    ep.crossings () )

(* Echo workload: [messages] application messages of [msg_size] bytes,
   each echoed back by the peer, with a small pipelining window. *)
let run_echo ?(seed = 1L) ?(msg_size = 1024) ?(messages = 50) ?(window = 4)
    ?(latency_ns = 10_000L) ?(gbps = 10.0) ?(quantum_ns = 2_000L) ?(max_steps = 400_000)
    ?(model = Cost.default) ?cionet_config kind =
  let peer_codec =
    match kind with
    | Tunneled ->
        Some
          ( (fun frame -> Tunnel.seal ~key:tunnel_key ~pad_to:tunnel_pad frame),
            fun blob -> Tunnel.open_ ~key:tunnel_key blob )
    | _ -> None
  in
  let env = make_env ~model ?peer_codec ~seed ~latency_ns ~gbps ~tap_name:(kind_name kind) () in
  let ep = make_endpoint ?cionet_config env kind in
  let payload = Bytes.make msg_size 'm' in
  let sent = ref 0 and echoes = ref 0 and steps = ref 0 in
  (* Echoes come back in order, so a FIFO of send timestamps gives each
     round trip's virtual-time latency. *)
  let rtt = Metrics.histogram Metrics.default ("echo.rtt_us." ^ kind_name kind) in
  let in_flight_at : int64 Queue.t = Queue.create () in
  let traced = Trace.on () in
  while !echoes < messages && !steps < max_steps && not (ep.failed ()) do
    incr steps;
    ep.pump ();
    ep.host_pump ();
    Peer.poll env.peer;
    Engine.advance env.engine ~by:quantum_ns;
    if ep.established () then begin
      while !sent < messages && !sent - !echoes < window && ep.send payload do
        incr sent;
        Queue.add (Engine.now env.engine) in_flight_at;
        if traced then Trace.instant ~arg:msg_size ~cat:Kind_.experiment "echo-send"
      done
    end;
    let rec drain () =
      match ep.recv () with
      | Some _ ->
          incr echoes;
          (match Queue.take_opt in_flight_at with
          | Some t0 ->
              let us = Int64.to_int (Int64.div (Int64.sub (Engine.now env.engine) t0) 1_000L) in
              Metrics.observe rtt us;
              if traced then Trace.instant ~arg:us ~cat:Kind_.experiment "echo-recv"
          | None -> ());
          drain ()
      | None -> ()
    in
    drain ()
  done;
  let tcb_name = kind_name kind in
  {
    kind;
    completed = !echoes >= messages;
    messages = !echoes;
    app_bytes = 2 * msg_size * !echoes;
    guest = Cost.snapshot ep.guest_meter;
    host = Cost.snapshot ep.host_meter;
    sim_ns = Engine.now env.engine;
    tap = env.tap;
    link_frames = Link.frames_sent env.link ~src:Link.A + Link.frames_sent env.link ~src:Link.B;
    link_bytes = Link.bytes_sent env.link ~src:Link.A + Link.bytes_sent env.link ~src:Link.B;
    tcb_core_loc = Cio_tcb.Tcb.core_loc tcb_name;
    tcb_quarantined_loc = Cio_tcb.Tcb.quarantined_loc tcb_name;
    crossings = ep.crossings ();
  }
