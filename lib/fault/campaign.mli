(** Deterministic fault-injection campaigns over the dual-boundary
    datapath, with self-healing verification and a leak verdict.

    A campaign runs a confidential echo session while a {!Plan.t} is
    injected through the discrete-event engine, then reports per fault
    how the datapath detected (or tolerated by construction) the fault
    and how much counted work recovery took. Same seed, byte-identical
    report. *)

type config = {
  quantum_ns : int64;
  watchdog_budget : int;
  target_echoes : int;
  max_steps : int;
  payload_pad : int;
  sanitize : bool;
      (** arm {!Cio_mem.Region}'s runtime double-fetch sanitizer on the
          driver region, one epoch per pump step (default [false]) *)
  overload : Cio_overload.Plane.config option;
      (** stand up the unit's overload-control plane: admission control
          on sends, bounded TX coalescing, shared retry budget, circuit
          breaker on the watchdog (default [None] = classic campaign) *)
}

val default_config : config

type fault_report = {
  kind : Plan.kind;
  injected_at : int;
  classification : string;
  detected : bool;
  recovered_in_steps : int option;
  recovered_in_cycles : int option;
}

type t = {
  seed : int64;
  steps : int;
  sent : int;
  echoes : int;
  lost : int;
  integrity_failures : int;
  leaks : int;
  confined : int;
  sanitizer_double_fetches : int;
      (** same-epoch overlapping guest fetches seen by the runtime
          sanitizer (0 unless [config.sanitize]; the safe cionet datapath
          is expected to keep it 0 — single fetch by construction) *)
  sanitizer_mutated_fetches : int;
  stalls_detected : int;
  resets : int;
  reconnects : int;
  crashes : int;
  restarts : int;
  admitted : int;  (** sends admitted by the overload plane (0 when off) *)
  shed : int;      (** sends shed by the plane, all reasons (0 when off) *)
  breaker_transitions : int;  (** breaker state changes (0 when off) *)
  breaker_state : string;     (** final breaker state ("closed" when off) *)
  faults : fault_report list;
  survived : bool;
}

val all_recovered : t -> bool

val tamper_tls_record : bytes -> bytes option
(** Flip one bit inside a TCP payload (a TLS record in flight), fixing
    L3/L4 checksums so only the L5 AEAD can catch it. [None] if the frame
    carries no TCP payload. *)

val run : ?config:config -> Plan.t -> t

val pp : Format.formatter -> t -> unit

val to_json : Buffer.t -> t -> unit
(** Append the report as one flat JSON object (the [cio-campaign-v1]
    payload): counted quantities only, deterministic per seed. *)
