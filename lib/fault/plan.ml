(* Deterministic fault plans: what to inject, where, when, for how long.

   A plan is pure data derived from a single seed, so a campaign is
   replayable bit-for-bit: same seed, same injections, same schedule,
   same report. The generator covers every layer of the dual-boundary
   datapath — the host device model (modal stalls and header sabotage),
   the link (adversary bursts), the L5 record layer (targeted record
   tampering) and the quarantined I/O-stack compartment (crash). *)

open Cio_util

type kind =
  | Host_stall of int        (* host stops servicing the device for n polls *)
  | Host_ring_freeze of int  (* host drains TX but withholds RX for n polls *)
  | Host_silent_drop of int  (* host discards the next n inbound frames *)
  | Host_lie_len of int      (* header sabotage: lying length word *)
  | Host_bad_index of int    (* header sabotage: wild pool index *)
  | Host_garbage_state of int
  | Host_race_header of int  (* rewrite len on the guest's header fetch *)
  | Host_corrupt_payload
  | Host_replay_slot
  | Link_burst of int        (* hostile link adversary for n pump steps *)
  | Record_tamper            (* flip one bit inside the next TLS record *)
  | Stack_crash of int       (* crash the I/O domain; restart after n steps *)

type injection = { at_step : int; kind : kind }

type t = { seed : int64; injections : injection list }

let kind_name = function
  | Host_stall _ -> "host-stall"
  | Host_ring_freeze _ -> "ring-freeze"
  | Host_silent_drop _ -> "silent-drop"
  | Host_lie_len _ -> "lie-len"
  | Host_bad_index _ -> "bad-index"
  | Host_garbage_state _ -> "garbage-state"
  | Host_race_header _ -> "race-header"
  | Host_corrupt_payload -> "corrupt-payload"
  | Host_replay_slot -> "replay-slot"
  | Link_burst _ -> "link-burst"
  | Record_tamper -> "record-tamper"
  | Stack_crash _ -> "stack-crash"

let pp_kind ppf = function
  | Host_stall n -> Format.fprintf ppf "host-stall(%d polls)" n
  | Host_ring_freeze n -> Format.fprintf ppf "ring-freeze(%d polls)" n
  | Host_silent_drop n -> Format.fprintf ppf "silent-drop(%d frames)" n
  | Host_lie_len v -> Format.fprintf ppf "lie-len(%d)" v
  | Host_bad_index v -> Format.fprintf ppf "bad-index(%d)" v
  | Host_garbage_state v -> Format.fprintf ppf "garbage-state(%#x)" v
  | Host_race_header v -> Format.fprintf ppf "race-header(%d)" v
  | Host_corrupt_payload -> Format.fprintf ppf "corrupt-payload"
  | Host_replay_slot -> Format.fprintf ppf "replay-slot"
  | Link_burst n -> Format.fprintf ppf "link-burst(%d steps)" n
  | Record_tamper -> Format.fprintf ppf "record-tamper"
  | Stack_crash n -> Format.fprintf ppf "stack-crash(restart after %d steps)" n

(* One fault per layer class, parameters drawn from the plan RNG. *)
let coverage rng =
  [|
    Host_stall (3_000 + Rng.int rng 3_000);
    (if Rng.bool rng then Host_ring_freeze (3_000 + Rng.int rng 3_000)
     else Host_silent_drop (1 + Rng.int rng 3));
    (match Rng.int rng 6 with
    | 0 -> Host_lie_len (64 + Rng.int rng 1_000_000)
    | 1 -> Host_bad_index (Rng.int rng 100_000)
    | 2 -> Host_garbage_state (2 + Rng.int rng 0xFFFE)
    | 3 -> Host_race_header (64 + Rng.int rng 1_000_000)
    | 4 -> Host_corrupt_payload
    | _ -> Host_replay_slot);
    Link_burst (400 + Rng.int rng 1_200);
    Record_tamper;
    Stack_crash (200 + Rng.int rng 400);
  |]

let random_kind rng =
  let c = coverage rng in
  c.(Rng.int rng (Array.length c))

let generate ?(count = 6) ?(first_at = 6_000) ?(spacing = 26_000) ~seed () =
  let rng = Rng.create seed in
  let base = coverage rng in
  let kinds =
    Array.init count (fun i -> if i < Array.length base then base.(i) else random_kind rng)
  in
  (* Shuffle so different seeds exercise the layers in different orders
     (the schedule itself stays evenly spaced: each fault must resolve
     before the next lands for crisp attribution). *)
  Rng.shuffle rng kinds;
  let injections =
    Array.to_list
      (Array.mapi
         (fun i kind -> { at_step = first_at + (i * spacing) + Rng.int rng 2_000; kind })
         kinds)
  in
  { seed; injections }

let pp ppf t =
  Format.fprintf ppf "plan seed=%Ld: %d faults@." t.seed (List.length t.injections);
  List.iter
    (fun { at_step; kind } -> Format.fprintf ppf "    step %6d  %a@." at_step pp_kind kind)
    t.injections
