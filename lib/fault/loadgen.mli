(** Open-loop offered-load generator over the dual-boundary echo datapath
    with a rate-limited (slow-but-honest) host — the E22 engine.

    Measures goodput (replies within the deadline), shed rate and RTT
    percentiles at a configured offered rate, with the overload plane on
    or off. Same seed + config, byte-identical report. *)

type config = {
  quantum_ns : int64;
  steps : int;
  msg_size : int;
  offered_per_mille : int;  (** offered messages per 1000 steps *)
  deadline_steps : int;     (** replies later than this are not goodput *)
  host_quota : int;         (** {!Cio_cionet.Host_model} frames serviced per poll *)
  gen_queue_limit : int;
      (** plane-on only: arrivals beyond this queue depth are shed at the
          source, keeping queue wait below the deadline for admitted load *)
  overload : Cio_overload.Plane.config option;
}

val default_config : config

type report = {
  offered : int;
  sent : int;
  shed : int;
  echoes : int;
  timely : int;
  p50_rtt_steps : int;
  p99_rtt_steps : int;
  queued : int;
  backlog_bytes : int;
  tx_backlog : int;
  breaker_transitions : int;
}

val run : ?config:config -> seed:int64 -> unit -> report

val pp : Format.formatter -> report -> unit
