(** Deterministic, seed-derived fault plans covering every layer of the
    dual-boundary datapath: host device model (modal stalls + header
    sabotage), link adversary, TLS record tampering, and I/O-stack
    compartment crash. *)

type kind =
  | Host_stall of int
  | Host_ring_freeze of int
  | Host_silent_drop of int
  | Host_lie_len of int
  | Host_bad_index of int
  | Host_garbage_state of int
  | Host_race_header of int
  | Host_corrupt_payload
  | Host_replay_slot
  | Link_burst of int
  | Record_tamper
  | Stack_crash of int

type injection = { at_step : int; kind : kind }

type t = { seed : int64; injections : injection list }

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val generate : ?count:int -> ?first_at:int -> ?spacing:int -> seed:int64 -> unit -> t
(** Derive a plan from [seed] alone. The first [6] faults cover one of
    each layer class (order shuffled by the seed); extras are drawn at
    random. Injection steps are spaced [spacing] pump steps apart so each
    fault resolves before the next lands. *)

val pp : Format.formatter -> t -> unit
