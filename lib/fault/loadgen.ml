(* Offered-load generator for the overload experiments (E22).

   The topology is the fault campaign's — a dual-boundary echo session
   over the discrete-event engine — but the host is merely *slow*, not
   hostile: a finite per-poll service quota makes it the bottleneck, and
   the open-loop generator offers messages at a configured rate whether
   or not the datapath is keeping up. That is the textbook overload
   setup: an open-loop arrival process over a finite-service system.

   With the overload plane OFF every offered message is pushed into the
   channel immediately; the sealed outbox and the stack's TX queue absorb
   the excess and latency grows without bound — goodput (replies within
   the deadline) collapses even though raw throughput stays at the
   service rate. With the plane ON, the admission controller sheds the
   excess at the app boundary before any sealing work is spent, blown
   deadlines are shed at the next crossing instead of being carried
   through, and goodput holds near the saturation level.

   Determinism: same seed + same config, byte-identical report. *)

open Cio_util
open Cio_core
open Cio_netsim
open Cio_cionet

type config = {
  quantum_ns : int64;        (* engine advance per pump step *)
  steps : int;               (* load steps (after channel establishment) *)
  msg_size : int;            (* app payload bytes (>= 24) *)
  offered_per_mille : int;   (* offered messages per 1000 steps *)
  deadline_steps : int;      (* a reply later than this is not goodput *)
  host_quota : int;          (* Host_model frames serviced per poll *)
  gen_queue_limit : int;     (* plane-on only: arrivals beyond this shed
                                at the source instead of aging in queue *)
  overload : Cio_overload.Plane.config option;
}

let default_config =
  {
    quantum_ns = 10_000L;
    steps = 2_000;
    (* Big enough that one message is one TCP segment: the host's
       per-frame quota then really is a per-message service rate. *)
    msg_size = 1_024;
    offered_per_mille = 500;
    deadline_steps = 64;
    host_quota = 1;
    gen_queue_limit = 16;
    overload = None;
  }

type report = {
  offered : int;    (* messages the generator produced *)
  sent : int;       (* accepted into the channel *)
  shed : int;       (* rejected by the plane (admission/deadline/breaker) *)
  echoes : int;     (* full round trips completed *)
  timely : int;     (* goodput: echoes within deadline_steps *)
  p50_rtt_steps : int;   (* over completed echoes; 0 if none *)
  p99_rtt_steps : int;
  queued : int;          (* generator-side messages still waiting at the end *)
  backlog_bytes : int;   (* sealed bytes stuck in the channel outbox *)
  tx_backlog : int;      (* frames stuck in the stack's TX queue *)
  breaker_transitions : int;
}

let ip_tee = Cio_frame.Addr.ipv4_of_octets 10 0 0 1
let ip_peer = Cio_frame.Addr.ipv4_of_octets 10 0 0 2
let mac_tee = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 1
let mac_peer = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 2
let echo_port = 443
let psk = Bytes.of_string "attestation-provisioned-psk-32b!"
let psk_id = "overload-loadgen"

(* Payload: "<seq:%06d> <birth:%08d> ...padding". The reply carries its
   own birth step, so RTT needs no side table. *)
let payload ~msg_size ~seq ~birth =
  let hdr = Printf.sprintf "%06d %08d " seq birth in
  let b = Bytes.make (max msg_size (String.length hdr)) '.' in
  Bytes.blit_string hdr 0 b 0 (String.length hdr);
  b

let parse_birth m =
  if Bytes.length m >= 16 then int_of_string_opt (Bytes.sub_string m 7 8) else None

let run ?(config = default_config) ~seed () =
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
  let rng = Rng.create seed in
  let now () = Engine.now engine in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer
      ~neighbors:[ (ip_tee, mac_tee) ] ~psk ~psk_id ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:echo_port;
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"overload-loadgen" ~ip:ip_tee
      ~neighbors:[ (ip_peer, mac_peer) ] ?overload:config.overload ~psk ~psk_id
      ~rng:(Rng.split rng) ~now ()
  in
  let plane = Dual.overload unit_ in
  let host =
    Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Host_model.set_service_quota host (Some config.host_quota);
  Link.attach link Link.A (fun f -> Host_model.deliver_rx host f);
  let ch = Dual.connect unit_ ~dst:ip_peer ~dst_port:echo_port in
  let pump () =
    Dual.poll unit_;
    Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:config.quantum_ns
  in
  (* Handshake warm-up, outside the measured window (unmetered host). *)
  Host_model.set_service_quota host None;
  let warm = ref 0 in
  while (not (Channel.is_established ch)) && !warm < 10_000 do
    incr warm;
    pump ()
  done;
  Host_model.set_service_quota host (Some config.host_quota);
  (* The measured open-loop window. *)
  let offered = ref 0 in
  let sent = ref 0 in
  let shed = ref 0 in
  let echoes = ref 0 in
  let timely = ref 0 in
  let rtts = ref [] in
  (* Generator queue: offered messages waiting for admission. Each entry
     remembers its birth step and, with the plane on, the deadline the
     plane stamped at generation time. *)
  let genq : (int * Cio_overload.Deadline.t) Queue.t = Queue.create () in
  let acc = ref 0 in
  for step = 1 to config.steps do
    (* Open-loop arrivals. With the plane on, the generator queue is
       bounded: beyond the limit an arrival is shed at the source (the
       backpressure signal has propagated all the way to the producer),
       which keeps queue wait well under the deadline for the messages
       that are admitted. Plane off: everything queues, everything goes. *)
    acc := !acc + config.offered_per_mille;
    while !acc >= 1000 do
      acc := !acc - 1000;
      incr offered;
      match plane with
      | Some p ->
          if Queue.length genq >= config.gen_queue_limit then begin
            incr shed;
            Cio_overload.Pressure.note_queue_full ()
          end
          else Queue.add (step, Cio_overload.Plane.deadline p) genq
      | None -> Queue.add (step, Cio_overload.Deadline.none) genq
    done;
    (* Drain towards the channel. Plane off: everything goes in now
       (that *is* the failure mode under study). Plane on: the admission
       decision gates each message; a blown deadline sheds it at this
       crossing, a dry token bucket or open breaker leaves the rest
       queued for a later step. *)
    let continue_ = ref true in
    while !continue_ && not (Queue.is_empty genq) do
      let birth, deadline = Queue.peek genq in
      match
        Channel.send_admitted ~klass:Cio_overload.Admission.Interactive ~deadline ch
          (payload ~msg_size:config.msg_size ~seq:!sent ~birth)
      with
      | Channel.Sent ->
          ignore (Queue.pop genq);
          incr sent
      | Channel.Shed Cio_overload.Pressure.Deadline ->
          ignore (Queue.pop genq);
          incr shed
      | Channel.Shed _ ->
          (* Not admitted this quantum; the message waits (and ages
             toward its deadline). *)
          continue_ := false
      | Channel.Send_error _ -> continue_ := false
    done;
    pump ();
    let rec harvest () =
      match Channel.recv ch with
      | None -> ()
      | Some m ->
          incr echoes;
          (match parse_birth m with
          | Some birth ->
              let rtt = step - birth in
              rtts := rtt :: !rtts;
              if rtt <= config.deadline_steps then incr timely
          | None -> ());
          harvest ()
    in
    harvest ()
  done;
  let sorted = List.sort compare !rtts in
  let n = List.length sorted in
  let pct p = if n = 0 then 0 else List.nth sorted (min (n - 1) (p * n / 100)) in
  {
    offered = !offered;
    sent = !sent;
    shed = !shed;
    echoes = !echoes;
    timely = !timely;
    p50_rtt_steps = pct 50;
    p99_rtt_steps = pct 99;
    queued = Queue.length genq;
    backlog_bytes = Channel.outbox_bytes ch;
    tx_backlog = Cio_tcpip.Stack.tx_backlog (Dual.stack unit_);
    breaker_transitions =
      (match plane with
      | Some p -> Cio_overload.Breaker.transitions (Cio_overload.Plane.breaker p)
      | None -> 0);
  }

let pp ppf r =
  Format.fprintf ppf
    "offered %5d  sent %5d  shed %5d  echoes %5d  timely %5d  p50 %3d  p99 %4d  queued %4d  outbox %6dB  txq %4d"
    r.offered r.sent r.shed r.echoes r.timely r.p50_rtt_steps r.p99_rtt_steps r.queued
    r.backlog_bytes r.tx_backlog
