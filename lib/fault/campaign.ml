(* The campaign engine: run a full dual-boundary echo session while a
   seeded fault plan is injected through the discrete-event engine, and
   report what was detected, how the datapath healed, and whether a
   single plaintext byte ever reached the host.

   Self-healing under test, layer by layer:

   - host stall / ring freeze   -> driver watchdog deadline, exponential
                                   backoff, generation-bumping ring reset
                                   (statelessness: nothing to re-negotiate);
   - silent frame drop          -> TCP retransmission, no L2 involvement;
   - ring header sabotage       -> confined by construction at L2
                                   (masked indices, clamped lengths,
                                   skipped malformed slots);
   - link adversary burst       -> TCP integrity + L5 AEAD;
   - TLS record tampering       -> fail-closed session death, then a
                                   fresh TCP connection + PSK handshake
                                   (zero renegotiation by design);
   - I/O-stack compartment crash-> crash containment behind L5, domain
                                   restart, reconnect; the app's secrets
                                   never existed below the TLS boundary.

   Determinism: every random choice flows from the plan seed, injections
   are Engine-scheduled at absolute simulated times, and the report
   contains only counted quantities — same seed, byte-identical report. *)

open Cio_util
open Cio_core
open Cio_netsim
open Cio_cionet
module Trace = Cio_telemetry.Trace
module Kind = Cio_telemetry.Kind
module Region = Cio_mem.Region

(* One span per fault, from injection to the first post-injection round
   trip: the span's extent *is* the recovery time in virtual time. *)
let fault_span_name kind = Format.asprintf "%a" Plan.pp_kind kind

type config = {
  quantum_ns : int64;      (* engine advance per pump step *)
  watchdog_budget : int;   (* watchdog deadline in poll ticks *)
  target_echoes : int;     (* minimum successful echoes overall *)
  max_steps : int;
  payload_pad : int;       (* pad canary payloads up to this size *)
  sanitize : bool;         (* arm Region's double-fetch sanitizer on the
                              driver region, one epoch per pump step *)
  overload : Cio_overload.Plane.config option;
      (* stand up the overload-control plane on the unit (admission at
         the channel, bounded TX queue, shared retry budget, breaker on
         the watchdog); None = classic unguarded campaign *)
}

let default_config =
  { quantum_ns = 10_000L; watchdog_budget = 1_500; target_echoes = 24;
    max_steps = 400_000; payload_pad = 256; sanitize = false; overload = None }

type fault_report = {
  kind : Plan.kind;
  injected_at : int;
  classification : string;
  detected : bool;  (* false = tolerated silently (by construction/transport) *)
  recovered_in_steps : int option;
  recovered_in_cycles : int option;
}

type t = {
  seed : int64;
  steps : int;
  sent : int;
  echoes : int;
  lost : int;     (* in-flight messages abandoned by fail-closed recovery *)
  integrity_failures : int;
  leaks : int;
  confined : int; (* L2 constructions that fired: clamps + masks + skips *)
  sanitizer_double_fetches : int;
      (* overlapping same-epoch guest fetches seen by the runtime
         sanitizer; 0 unless [config.sanitize], and expected to stay 0
         over the safe cionet datapath (single fetch by construction) *)
  sanitizer_mutated_fetches : int;
  stalls_detected : int;
  resets : int;
  reconnects : int;
  crashes : int;
  restarts : int;
  (* Overload plane accounting; all zero / "closed" when the plane is
     disabled, so classic reports stay byte-identical. *)
  admitted : int;
  shed : int;
  breaker_transitions : int;
  breaker_state : string;
  faults : fault_report list;
  survived : bool;
}

let all_recovered t =
  t.faults <> []
  && List.for_all (fun f -> f.recovered_in_steps <> None) t.faults

(* Topology constants (same shape as the hand-wired experiments). *)
let ip_tee = Cio_frame.Addr.ipv4_of_octets 10 0 0 1
let ip_peer = Cio_frame.Addr.ipv4_of_octets 10 0 0 2
let mac_tee = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 1
let mac_peer = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 2
let echo_port = 443
let psk = Bytes.of_string "attestation-provisioned-psk-32b!"
let psk_id = "fault-campaign"

(* Flip one bit inside a TCP payload (a TLS record in flight), fixing the
   checksums up so the tamper survives L2–L4 and must be caught — and is,
   fail-closed — by the L5 AEAD. *)
let tamper_tls_record frame =
  let open Cio_frame in
  match Ethernet.parse frame with
  | Error _ -> None
  | Ok eth -> (
      match eth.Ethernet.ethertype with
      | Ethernet.Ipv4 -> (
          match Ipv4.parse eth.Ethernet.payload with
          | Ok ip when ip.Ipv4.protocol = Ipv4.Tcp -> (
              match Tcp_wire.parse ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ip.Ipv4.payload with
              | Ok seg when Bytes.length seg.Tcp_wire.payload > 5 ->
                  let p = Bytes.copy seg.Tcp_wire.payload in
                  let i = Bytes.length p - 1 in
                  Bytes.set p i (Char.chr (Char.code (Bytes.get p i) lxor 0x01));
                  let tcp' = Tcp_wire.build ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
                      { seg with Tcp_wire.payload = p } in
                  let ip' = Ipv4.build { ip with Ipv4.payload = tcp' } in
                  Some (Ethernet.build { eth with Ethernet.payload = ip' })
              | _ -> None)
          | _ -> None)
      | _ -> None)

type snap = {
  s_recovery : Cio_observe.Recovery.counts;
  s_confined : int;
  s_crashes : int;
  s_cycles : int;
}

type frec = {
  f_kind : Plan.kind;
  f_at : int;
  mutable f_applied : bool;
  mutable f_sent0 : int;  (* send counter when injected *)
  mutable f_snap : snap option;
  mutable f_resolved : (int * snap) option;
}

let classify kind ~d_recovery ~d_confined ~d_crashes =
  let open Cio_observe in
  ignore kind;
  if d_crashes > 0 then ("crash contained; I/O domain restarted behind L5", true)
  else if d_recovery.Recovery.reconnects > 0 then
    ("fail-closed at L5; fresh TCP + PSK session", true)
  else if d_recovery.Recovery.stalls_detected > 0 then
    ("stall detected; watchdog generation-bump reset", true)
  else if d_confined > 0 then ("confined at L2 by construction", true)
  else ("tolerated silently (transport absorbed it)", false)

let run ?(config = default_config) (plan : Plan.t) =
  let engine = Engine.create () in
  if Trace.on () then begin
    Trace.set_clock (fun () -> Engine.now engine);
    Trace.span_begin ~cat:Kind.fault "campaign"
  end;
  let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
  let rng = Rng.create plan.Plan.seed in
  let now () = Engine.now engine in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer
      ~neighbors:[ (ip_tee, mac_tee) ] ~psk ~psk_id ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:echo_port;
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"fault-campaign" ~ip:ip_tee
      ~neighbors:[ (ip_peer, mac_peer) ] ?overload:config.overload ~psk ~psk_id
      ~rng:(Rng.split rng) ~now ()
  in
  let plane = Dual.overload unit_ in
  let host =
    Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Host_model.deliver_rx host f);
  let recovery = Dual.recovery unit_ in
  let wd =
    Watchdog.create ~poll_budget:config.watchdog_budget ~recovery
      ~on_reset:(fun () -> Host_model.reattach host ~driver:(Dual.driver unit_))
      ?breaker:(Option.map Cio_overload.Plane.breaker plane)
      ?retry_budget:(Option.map Cio_overload.Plane.retry_budget plane)
      (Dual.driver unit_)
  in
  (* Leak detection: every frame entering the link — both directions, the
     complete host-visible surface — is scanned for the canary that every
     app payload embeds. *)
  let leaks = ref 0 in
  Link.set_transit_tap link
    (Some (fun ~time:_ ~src:_ frame -> if Cio_attack.Attack.contains_canary frame then incr leaks));
  (* L2 confinement accounting, accumulated across ring generations. *)
  let conf_of () =
    let d = Dual.driver unit_ in
    let c r =
      let k = Ring.counters r in
      k.Ring.len_clamped + k.Ring.index_masked + k.Ring.state_skipped
    in
    c (Driver.tx_ring d) + c (Driver.rx_ring d)
  in
  let confined_acc = ref 0 in
  let last_conf = ref 0 in
  let last_gen = ref (Driver.generation (Dual.driver unit_)) in
  let sample_confinement () =
    let g = Driver.generation (Dual.driver unit_) in
    let c = conf_of () in
    if g = !last_gen then confined_acc := !confined_acc + (c - !last_conf)
    else confined_acc := !confined_acc + c;
    last_conf := c;
    last_gen := g
  in
  (* Runtime double-fetch sanitizer: armed on the driver's region, one
     epoch per pump step (a poll is one logical parse). A compartment
     restart replaces driver and region, so bank the dead region's totals
     and re-arm the new one. *)
  let san_double = ref 0 in
  let san_mutated = ref 0 in
  let san_region = ref None in
  let bank_sanitizer r =
    let s = Region.sanitizer_stats r in
    san_double := !san_double + s.Region.double_fetches;
    san_mutated := !san_mutated + s.Region.mutated_fetches
  in
  let sample_sanitizer () =
    if config.sanitize then begin
      let r = Driver.region (Dual.driver unit_) in
      (match !san_region with
      | Some r0 when r0 == r -> ()
      | prev ->
          (match prev with Some r0 -> bank_sanitizer r0 | None -> ());
          Region.sanitizer_enable r;
          san_region := Some r);
      Region.sanitizer_epoch r
    end
  in
  let comp () = Cio_compartment.Compartment.counters (Dual.world unit_) in
  let snap () =
    {
      s_recovery = Cio_observe.Recovery.snapshot recovery;
      s_confined = !confined_acc;
      s_crashes = (comp ()).Cio_compartment.Compartment.crashes;
      s_cycles = Cost.total (Dual.meter unit_);
    }
  in
  (* Campaign state. *)
  let steps = ref 0 in
  let sent = ref 0 in
  let echoes = ref 0 in
  let lost = ref 0 in
  let integrity = ref 0 in
  let outstanding : bytes Queue.t = Queue.create () in
  let ch = ref (Dual.connect unit_ ~dst:ip_peer ~dst_port:echo_port) in
  let drop_outstanding () =
    lost := !lost + Queue.length outstanding;
    Queue.clear outstanding
  in
  (* Link adversary for burst windows. *)
  let adversary = Adversary.create ~rng:(Rng.split rng) Adversary.hostile in
  let burst_until = ref (-1) in
  (* One-shot TLS record tamper, armed by injection, fired on the next
     payload-bearing frame toward the guest. *)
  let tamper_armed = ref false in
  Link.set_tamper link ~src:Link.B
    (Some
       (fun frame ->
         if !tamper_armed then
           match tamper_tls_record frame with
           | Some frame' ->
               tamper_armed := false;
               [ { Link.extra_delay_ns = 0L; frame = frame' } ]
           | None -> [ { Link.extra_delay_ns = 0L; frame } ]
         else [ { Link.extra_delay_ns = 0L; frame } ]));
  (* Schedule the plan through the event engine. *)
  let records =
    List.map
      (fun { Plan.at_step; kind } ->
        { f_kind = kind; f_at = at_step; f_applied = false; f_sent0 = 0; f_snap = None;
          f_resolved = None })
      plan.Plan.injections
  in
  let inject r =
    r.f_applied <- true;
    r.f_sent0 <- !sent;
    r.f_snap <- Some (snap ());
    Cio_observe.Recovery.fault_injected recovery;
    if Trace.on () then Trace.span_begin ~cat:Kind.fault (fault_span_name r.f_kind);
    match r.f_kind with
    | Plan.Host_stall n -> Host_model.inject host (Host_model.Stall n)
    | Plan.Host_ring_freeze n -> Host_model.inject host (Host_model.Ring_freeze n)
    | Plan.Host_silent_drop n -> Host_model.inject host (Host_model.Silent_drop n)
    | Plan.Host_lie_len v -> Host_model.inject host (Host_model.Lie_len v)
    | Plan.Host_bad_index v -> Host_model.inject host (Host_model.Bad_index v)
    | Plan.Host_garbage_state v -> Host_model.inject host (Host_model.Garbage_state v)
    | Plan.Host_race_header v -> Host_model.inject host (Host_model.Race_header v)
    | Plan.Host_corrupt_payload -> Host_model.inject host Host_model.Corrupt_payload
    | Plan.Host_replay_slot -> Host_model.inject host Host_model.Replay_slot
    | Plan.Link_burst n ->
        Link.set_tamper link ~src:Link.A (Some (Adversary.tamper adversary));
        burst_until := r.f_at + n
    | Plan.Record_tamper -> tamper_armed := true
    | Plan.Stack_crash n ->
        Dual.crash_io unit_;
        Engine.schedule engine
          ~after:(Int64.mul (Int64.of_int n) config.quantum_ns)
          (fun () ->
            Dual.restart_io unit_;
            Host_model.reattach host ~driver:(Dual.driver unit_);
            drop_outstanding ();
            ch := Dual.reconnect unit_ !ch)
  in
  List.iter
    (fun r ->
      Engine.schedule_at engine
        ~time:(Int64.mul (Int64.of_int r.f_at) config.quantum_ns)
        (fun () -> inject r))
    records;
  (* The pump. *)
  let payload seq =
    let base = Printf.sprintf "%s #%06d" Cio_attack.Attack.canary seq in
    let b = Bytes.make (max config.payload_pad (String.length base)) '.' in
    Bytes.blit_string base 0 b 0 (String.length base);
    b
  in
  let done_ () =
    List.for_all (fun r -> r.f_applied && r.f_resolved <> None) records
    && !echoes >= config.target_echoes
  in
  while (not (done_ ())) && !steps < config.max_steps do
    incr steps;
    sample_sanitizer ();
    Dual.poll unit_;
    Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:config.quantum_ns;
    sample_confinement ();
    if Dual.io_alive unit_ then begin
      Watchdog.tick wd ~expecting_rx:(not (Queue.is_empty outstanding));
      (* Fail-closed recovery: a poisoned session can only be replaced. *)
      match Channel.error !ch with
      | Some _ ->
          drop_outstanding ();
          ch := Dual.reconnect unit_ !ch
      | None -> ()
    end;
    if !burst_until >= 0 && !steps >= !burst_until then begin
      Link.set_tamper link ~src:Link.A None;
      burst_until := -1
    end;
    if Channel.is_established !ch && Queue.length outstanding < 2 then begin
      let p = payload !sent in
      (* Priority-class mix: a trickle of control traffic (always
         admitted, even breaker-open), alternating bulk/interactive for
         the rest — so a shedding plane demonstrably sheds bulk first. *)
      let klass =
        if !sent mod 5 = 0 then Cio_overload.Admission.Control
        else if !sent mod 2 = 1 then Cio_overload.Admission.Bulk
        else Cio_overload.Admission.Interactive
      in
      match
        Channel.send_admitted ~klass
          ?deadline:(Option.map Cio_overload.Plane.deadline plane)
          !ch p
      with
      | Channel.Sent ->
          incr sent;
          Queue.add p outstanding
      | Channel.Shed _ | Channel.Send_error _ -> ()
    end;
    match Channel.recv !ch with
    | Some m ->
        incr echoes;
        (match Queue.take_opt outstanding with
        | Some expect when Bytes.equal m expect -> ()
        | Some _ | None -> incr integrity);
        (* A fault counts as resolved only once a message *sent after the
           injection* completes a full round trip — an in-flight pre-fault
           echo proves nothing about recovery. *)
        let seq =
          let off = String.length Cio_attack.Attack.canary + 2 in
          if Bytes.length m >= off + 6 then
            int_of_string_opt (Bytes.sub_string m off 6)
          else None
        in
        let s = snap () in
        List.iter
          (fun r ->
            if r.f_applied && r.f_resolved = None
               && (match seq with Some q -> q >= r.f_sent0 | None -> false)
            then begin
              r.f_resolved <- Some (!steps, s);
              if Trace.on () then
                Trace.span_end ~cat:Kind.fault (fault_span_name r.f_kind)
            end)
          records
    | None -> ()
  done;
  Link.set_transit_tap link None;
  if Trace.on () then begin
    (* Close spans for faults that never resolved, then the campaign. *)
    List.iter
      (fun r ->
        if r.f_applied && r.f_resolved = None then
          Trace.span_end ~cat:Kind.fault (fault_span_name r.f_kind))
      records;
    Trace.span_end ~cat:Kind.fault "campaign"
  end;
  let end_snap = snap () in
  let faults =
    List.map
      (fun r ->
        let s0 = match r.f_snap with Some s -> s | None -> end_snap in
        let s1, rec_steps =
          match r.f_resolved with
          | Some (step, s1) -> (s1, Some (step - r.f_at))
          | None -> (end_snap, None)
        in
        let d_recovery =
          Cio_observe.Recovery.diff ~before:s0.s_recovery ~after:s1.s_recovery
        in
        let classification, detected =
          if not r.f_applied then ("never injected (campaign ended first)", false)
          else
            classify r.f_kind ~d_recovery
              ~d_confined:(s1.s_confined - s0.s_confined)
              ~d_crashes:(s1.s_crashes - s0.s_crashes)
        in
        {
          kind = r.f_kind;
          injected_at = r.f_at;
          classification;
          detected;
          recovered_in_steps = rec_steps;
          recovered_in_cycles =
            (match r.f_resolved with Some (_, s1) -> Some (s1.s_cycles - s0.s_cycles) | None -> None);
        })
      records
  in
  (match !san_region with Some r -> bank_sanitizer r | None -> ());
  let rec_ = Cio_observe.Recovery.snapshot recovery in
  let c = comp () in
  {
    seed = plan.Plan.seed;
    steps = !steps;
    sent = !sent;
    echoes = !echoes;
    lost = !lost;
    integrity_failures = !integrity;
    leaks = !leaks;
    confined = !confined_acc;
    sanitizer_double_fetches = !san_double;
    sanitizer_mutated_fetches = !san_mutated;
    stalls_detected = rec_.Cio_observe.Recovery.stalls_detected;
    resets = rec_.Cio_observe.Recovery.resets;
    reconnects = rec_.Cio_observe.Recovery.reconnects;
    crashes = c.Cio_compartment.Compartment.crashes;
    restarts = c.Cio_compartment.Compartment.restarts;
    admitted = (match plane with Some p -> Cio_overload.Plane.admitted p | None -> 0);
    shed = (match plane with Some p -> Cio_overload.Plane.shed p | None -> 0);
    breaker_transitions =
      (match plane with
      | Some p -> Cio_overload.Breaker.transitions (Cio_overload.Plane.breaker p)
      | None -> 0);
    breaker_state =
      (match plane with
      | Some p ->
          Cio_overload.Breaker.state_name
            (Cio_overload.Breaker.state (Cio_overload.Plane.breaker p))
      | None -> "closed");
    faults;
    survived =
      !echoes >= config.target_echoes && !integrity = 0 && !leaks = 0
      && List.for_all (fun r -> r.f_applied && r.f_resolved <> None) records;
  }

let pp ppf t =
  Format.fprintf ppf "  campaign seed=%Ld: %d faults over %d steps@." t.seed
    (List.length t.faults) t.steps;
  List.iter
    (fun f ->
      Format.fprintf ppf "    step %6d  %-28s -> %s%s@." f.injected_at
        (Format.asprintf "%a" Plan.pp_kind f.kind)
        f.classification
        (match (f.recovered_in_steps, f.recovered_in_cycles) with
        | Some s, Some c -> Format.asprintf "; recovered in %d steps / %d cycles" s c
        | _ -> "; NOT RECOVERED"))
    t.faults;
  Format.fprintf ppf
    "    echoes %d/%d sent (%d lost in-flight to fail-closed recovery), integrity failures %d@."
    t.echoes t.sent t.lost t.integrity_failures;
  Format.fprintf ppf
    "    L2 confinements %d; stalls detected %d; ring resets %d; reconnects %d; domain crashes %d (restarts %d)@."
    t.confined t.stalls_detected t.resets t.reconnects t.crashes t.restarts;
  if t.sanitizer_double_fetches > 0 || t.sanitizer_mutated_fetches > 0 then
    Format.fprintf ppf "    sanitizer: %d double fetch(es), %d mutated between reads@."
      t.sanitizer_double_fetches t.sanitizer_mutated_fetches;
  if t.admitted + t.shed + t.breaker_transitions > 0 then
    Format.fprintf ppf
      "    overload plane: %d admitted, %d shed; breaker %s after %d transition(s)@."
      t.admitted t.shed t.breaker_state t.breaker_transitions;
  Format.fprintf ppf "    canary leaks to host: %d; survived: %s@." t.leaks
    (if t.survived then "yes" else "NO")

(* Machine-readable report (cio-campaign-v1 payload): every counted
   quantity, flat, for CI artifacts and offline diffing. *)
let to_json buf t =
  let field name value = Printf.bprintf buf "\"%s\":%s" name value in
  let int_field name v = field name (string_of_int v) in
  Buffer.add_char buf '{';
  field "seed" (Printf.sprintf "%Ld" t.seed);
  Buffer.add_char buf ',';
  int_field "steps" t.steps; Buffer.add_char buf ',';
  int_field "sent" t.sent; Buffer.add_char buf ',';
  int_field "echoes" t.echoes; Buffer.add_char buf ',';
  int_field "lost" t.lost; Buffer.add_char buf ',';
  int_field "integrity_failures" t.integrity_failures; Buffer.add_char buf ',';
  int_field "leaks" t.leaks; Buffer.add_char buf ',';
  int_field "confined" t.confined; Buffer.add_char buf ',';
  int_field "stalls_detected" t.stalls_detected; Buffer.add_char buf ',';
  int_field "resets" t.resets; Buffer.add_char buf ',';
  int_field "reconnects" t.reconnects; Buffer.add_char buf ',';
  int_field "crashes" t.crashes; Buffer.add_char buf ',';
  int_field "restarts" t.restarts; Buffer.add_char buf ',';
  int_field "admitted" t.admitted; Buffer.add_char buf ',';
  int_field "shed" t.shed; Buffer.add_char buf ',';
  int_field "breaker_transitions" t.breaker_transitions; Buffer.add_char buf ',';
  field "breaker_state" (Printf.sprintf "%S" t.breaker_state); Buffer.add_char buf ',';
  Printf.bprintf buf "\"faults\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '{';
      field "kind" (Printf.sprintf "%S" (Format.asprintf "%a" Plan.pp_kind f.kind));
      Buffer.add_char buf ',';
      int_field "injected_at" f.injected_at; Buffer.add_char buf ',';
      field "detected" (if f.detected then "true" else "false"); Buffer.add_char buf ',';
      field "recovered_in_steps"
        (match f.recovered_in_steps with Some s -> string_of_int s | None -> "null");
      Buffer.add_char buf '}')
    t.faults;
  Buffer.add_string buf "],";
  field "survived" (if t.survived then "true" else "false");
  Buffer.add_char buf '}'
