(* The safe ring — §3.2's host↔TEE data path, safe by construction.

   Design principles implemented here, mapped to the paper's bullets:

   - *Stateless interface*: a slot is a self-contained transaction
     { state, len, info, tag }. There are no cross-slot or cross-operation
     dependencies, no sequence numbers to resynchronise, and no error
     path: a malformed slot is skipped and counted, never "handled".
   - *Copy as a first-class citizen*: the consumer performs exactly one
     early copy (or one revocation) per message; nothing else ever touches
     shared bytes twice.
   - *No notifications*: both sides poll. (A stateless, idempotent
     doorbell can be layered on top for E11; nothing in the ring needs it.)
   - *Zero (re-)negotiation*: geometry and positioning are fixed at
     construction; there is no control plane in the ring at all.
   - *Safe ring buffer & shared data area*: every size is a power of two.
     Slot cursors, pool indices and indirect buffer offsets taken from
     shared memory are confined by masking — a wild value aliases a valid
     slot instead of escaping the arena. Untrusted lengths are clamped to
     the slot capacity. The header is fetched exactly once per operation
     (double fetches are impossible by construction, so no copy is needed
     to defend against them).

   One ring carries one direction: the producer side is fixed at creation
   (guest for TX, host for RX). Each side's cursor and allocator state is
   private to that side; the only shared control word is [state]. *)

open Cio_util
open Cio_mem
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind = Cio_telemetry.Kind

(* Aggregate slot-lifecycle metrics across every ring in the process.
   Handles are resolved once at module init, so the per-event cost is a
   single unboxed increment — cheap enough to leave always on. *)
let m_produced = Metrics.counter Metrics.default "ring.produced"
let m_consumed = Metrics.counter Metrics.default "ring.consumed"
let m_full_misses = Metrics.counter Metrics.default "ring.full_misses"
let m_empty_polls = Metrics.counter Metrics.default "ring.empty_polls"
let m_len_clamped = Metrics.counter Metrics.default "ring.len_clamped"
let m_index_masked = Metrics.counter Metrics.default "ring.index_masked"
let m_state_skipped = Metrics.counter Metrics.default "ring.state_skipped"

let state_empty = 0
let state_full = 1

let header_bytes = 16

type layout = {
  total : int;          (* bytes needed from base *)
  hdr_off : int;        (* headers, slots * 16 *)
  desc_off : int;       (* indirect descriptors (0 width otherwise) *)
  desc_count : int;
  data_off : int;       (* payload arena, power-of-two sized and aligned *)
  data_size : int;
  unit_size : int;      (* payload bytes per slot / pool slot *)
  units : int;          (* number of payload units in the arena *)
}

let layout ~page_size ~slots (positioning : Config.positioning) =
  if not (Bitops.is_power_of_two slots) then invalid_arg "Ring.layout: slots must be a power of two";
  let unit_size, units, desc_count =
    match positioning with
    | Config.Inline { data_capacity } -> (data_capacity, slots, 0)
    | Config.Pool { pool_slots; pool_slot_size } -> (pool_slot_size, pool_slots, 0)
    | Config.Indirect { desc_count; pool_slots; pool_slot_size } ->
        (pool_slot_size, pool_slots, desc_count)
  in
  if not (Bitops.is_power_of_two unit_size) then
    invalid_arg "Ring.layout: payload unit size must be a power of two";
  if not (Bitops.is_power_of_two units) then
    invalid_arg "Ring.layout: payload unit count must be a power of two";
  if desc_count <> 0 && not (Bitops.is_power_of_two desc_count) then
    invalid_arg "Ring.layout: descriptor count must be a power of two";
  let hdr_off = 0 in
  let desc_off = hdr_off + (slots * header_bytes) in
  let data_size = units * unit_size in
  (* The arena is aligned to its own (power-of-two) size so that offset
     confinement is a single AND, and to the page size so revocation can
     operate on whole payload pages. *)
  let align = max page_size data_size in
  let data_off = Bitops.align_up (desc_off + (desc_count * 8)) ~align in
  { total = data_off + data_size; hdr_off; desc_off; desc_count; data_off; data_size; unit_size; units }

type counters = {
  mutable produced : int;
  mutable consumed : int;
  mutable full_misses : int;   (* produce found no EMPTY slot *)
  mutable empty_polls : int;   (* consume found no FULL slot *)
  mutable len_clamped : int;   (* untrusted length confined *)
  mutable index_masked : int;  (* untrusted index/offset confined *)
  mutable state_skipped : int; (* malformed state word skipped *)
}

type t = {
  region : Region.t;
  base : int;
  slots : int;
  lay : layout;
  positioning : Config.positioning;
  producer : Region.actor;
  guest_meter : Cost.meter;
  host_meter : Cost.meter;
  model : Cost.model;
  mutable prod_next : int;  (* producer-private cursor *)
  mutable cons_next : int;  (* consumer-private cursor *)
  (* Producer-private payload allocator (pool / indirect modes): unit
     bindings per ring slot, reclaimed lazily when the slot is reused. *)
  free_units : int Queue.t;
  bindings : int option array;
  mutable next_desc : int;
  mutable next_tag : int;
  counters : counters;
}

let create ~region ~base ~slots ~positioning ~producer ~host_meter =
  let lay = layout ~page_size:(Region.page_size region) ~slots positioning in
  if base + lay.total > Region.size region then invalid_arg "Ring.create: does not fit in region";
  if base mod max (Region.page_size region) 1 <> 0 then
    invalid_arg "Ring.create: base must be page-aligned";
  let t =
    {
      region;
      base;
      slots;
      lay;
      positioning;
      producer;
      guest_meter = Region.meter region;
      host_meter;
      model = Region.model region;
      prod_next = 0;
      cons_next = 0;
      free_units = Queue.create ();
      bindings = Array.make slots None;
      next_desc = 0;
      next_tag = 0;
      counters =
        {
          produced = 0;
          consumed = 0;
          full_misses = 0;
          empty_polls = 0;
          len_clamped = 0;
          index_masked = 0;
          state_skipped = 0;
        };
    }
  in
  (match positioning with
  | Config.Inline _ -> ()
  | Config.Pool _ | Config.Indirect _ ->
      for u = 0 to lay.units - 1 do
        Queue.add u t.free_units
      done);
  t

let counters t = t.counters
let slots t = t.slots

(* Occupancy from the private cursors: both live in guest-private memory
   (the producer's and consumer's own bookkeeping, never the shared
   region), so the reading costs nothing and cannot be lied to by the
   host. This is the root backpressure signal the overload plane
   propagates upward. *)
let occupancy t = t.prod_next - t.cons_next
let region t = t.region
let header_offset t slot = t.base + t.lay.hdr_off + (header_bytes * (slot land (t.slots - 1)))
let capacity t = t.lay.unit_size
let consumer t = match t.producer with Region.Guest -> Region.Host | Region.Host -> Region.Guest
let data_arena t = (t.base + t.lay.data_off, t.lay.data_size)

let meter_of t (actor : Region.actor) =
  match actor with Region.Guest -> t.guest_meter | Region.Host -> t.host_meter

let charge t actor cat cycles = Cost.charge (meter_of t actor) cat cycles

let hdr_off t slot = t.base + t.lay.hdr_off + (header_bytes * (slot land (t.slots - 1)))
let unit_off t u = t.base + t.lay.data_off + (t.lay.unit_size * (u land (t.lay.units - 1)))
let desc_off t d = t.base + t.lay.desc_off + (8 * (d land (max t.lay.desc_count 1 - 1)))

(* Cost of one ring word/header access. The first access of a crossing
   pays [ring_op] in full (cache miss + cursor bookkeeping); subsequent
   slots of the same burst touch adjacent lines and pay [ring_burst_op].
   Only ring words amortize — validation checks and payload copies are
   per-message work and always charge in full. *)
let ring_word_cost t ~amortized =
  if amortized then t.model.Cost.ring_burst_op else t.model.Cost.ring_op

(* Single-fetch header read: one 16-byte pull, decoded privately. *)
let read_header ?(amortized = false) t actor slot =
  charge t actor Cost.Ring (ring_word_cost t ~amortized);
  let b =
    match actor with
    | Region.Guest -> Region.guest_read t.region ~off:(hdr_off t slot) ~len:header_bytes
    | Region.Host -> Region.host_read t.region ~off:(hdr_off t slot) ~len:header_bytes
  in
  let state = Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF in
  let len = Int32.to_int (Bytes.get_int32_le b 4) land 0xFFFFFFFF in
  let info = Int32.to_int (Bytes.get_int32_le b 8) land 0xFFFFFFFF in
  let tag = Int32.to_int (Bytes.get_int32_le b 12) land 0xFFFFFFFF in
  (state, len, info, tag)

let write_word ?(amortized = false) t actor ~off v =
  charge t actor Cost.Ring (ring_word_cost t ~amortized);
  Region.write_u32 t.region actor ~off v

let write_payload t actor ~off payload =
  match actor with
  | Region.Guest -> Region.copy_out t.region ~off payload
  | Region.Host ->
      Region.host_write t.region ~off payload;
      charge t actor Cost.Dma (Cost.dma_cost t.model (Bytes.length payload))

(* The consumer's one early copy. With a [pool] the destination buffer is
   recycled instead of freshly allocated — same charges either way. *)
let read_payload ?pool t actor ~off ~len =
  let b =
    match pool with Some p -> Bufpool.acquire p len | None -> Bytes.create len
  in
  (match actor with
  | Region.Guest -> Region.copy_in_into t.region ~off b
  | Region.Host ->
      Region.host_read_into t.region ~off b;
      charge t actor Cost.Dma (Cost.dma_cost t.model len));
  b

(* Reclaim the payload unit a ring slot was last bound to (producer
   private bookkeeping; the "free" control message is the slot's return
   to EMPTY, which the producer observes on reuse). *)
let reclaim_binding t slot =
  match t.bindings.(slot land (t.slots - 1)) with
  | None -> ()
  | Some u ->
      t.bindings.(slot land (t.slots - 1)) <- None;
      Queue.add u t.free_units

let produce_one t ~amortized payload =
  let actor = t.producer in
  let len = Bytes.length payload in
  if len > t.lay.unit_size then invalid_arg "Ring.try_produce: payload larger than slot capacity";
  if len = 0 then invalid_arg "Ring.try_produce: messages carry at least one byte";
  let slot = t.prod_next land (t.slots - 1) in
  let state, _, _, _ = read_header t ~amortized actor slot in
  if state <> state_empty then begin
    t.counters.full_misses <- t.counters.full_misses + 1;
    Metrics.inc m_full_misses;
    false
  end
  else begin
    reclaim_binding t slot;
    let info =
      match t.positioning with
      | Config.Inline _ ->
          write_payload t actor ~off:(unit_off t slot) payload;
          0
      | Config.Pool _ -> (
          match Queue.take_opt t.free_units with
          | None ->
              t.counters.full_misses <- t.counters.full_misses + 1;
              Metrics.inc m_full_misses;
              -1
          | Some u ->
              t.bindings.(slot) <- Some u;
              write_payload t actor ~off:(unit_off t u) payload;
              u)
      | Config.Indirect _ -> (
          match Queue.take_opt t.free_units with
          | None ->
              t.counters.full_misses <- t.counters.full_misses + 1;
              Metrics.inc m_full_misses;
              -1
          | Some u ->
              t.bindings.(slot) <- Some u;
              write_payload t actor ~off:(unit_off t u) payload;
              let d = t.next_desc land (t.lay.desc_count - 1) in
              t.next_desc <- t.next_desc + 1;
              write_word t ~amortized actor ~off:(desc_off t d) (unit_off t u - (t.base + t.lay.data_off));
              write_word t ~amortized actor ~off:(desc_off t d + 4) len;
              d)
    in
    if info < 0 then false
    else begin
      (* Publish: len and info first, state FULL last. *)
      write_word t ~amortized actor ~off:(hdr_off t slot + 4) len;
      write_word t ~amortized actor ~off:(hdr_off t slot + 8) info;
      write_word t ~amortized actor ~off:(hdr_off t slot + 12) (t.next_tag land 0xFFFFFFFF);
      t.next_tag <- t.next_tag + 1;
      write_word t ~amortized actor ~off:(hdr_off t slot) state_full;
      t.prod_next <- t.prod_next + 1;
      t.counters.produced <- t.counters.produced + 1;
      Metrics.inc m_produced;
      if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-produce";
      true
    end
  end

let try_produce t payload = produce_one t ~amortized:false payload

(* Burst produce: up to [Array.length frames] messages in one crossing.
   The first slot pays full ring cost; the rest amortize. Stops at the
   first full slot (or exhausted pool) and returns how many went in —
   per-slot publish order is unchanged, so the safety argument is exactly
   the single-slot one, N times over. *)
let try_produce_burst t frames =
  let n = Array.length frames in
  let rec go i =
    if i >= n then i
    else if produce_one t ~amortized:(i > 0) frames.(i) then go (i + 1)
    else i
  in
  go 0

(* Resolve the payload location for a consumed slot, confining every
   untrusted value by masking/clamping. *)
let locate ?(amortized = false) t actor slot ~len ~info =
  let clamp len cap =
    charge t actor Cost.Check t.model.Cost.check;
    if len > cap then begin
      t.counters.len_clamped <- t.counters.len_clamped + 1;
      Metrics.inc m_len_clamped;
      if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-clamp";
      cap
    end
    else len
  in
  match t.positioning with
  | Config.Inline _ ->
      let len = clamp len t.lay.unit_size in
      (unit_off t slot, len)
  | Config.Pool _ ->
      charge t actor Cost.Check t.model.Cost.check;
      let u = info land (t.lay.units - 1) in
      if u <> info then begin
        t.counters.index_masked <- t.counters.index_masked + 1;
        Metrics.inc m_index_masked;
        if Trace.on () then Trace.instant ~arg:info ~cat:Kind.l2 "slot-mask"
      end;
      let len = clamp len t.lay.unit_size in
      (unit_off t u, len)
  | Config.Indirect _ ->
      charge t actor Cost.Check t.model.Cost.check;
      let d = info land (t.lay.desc_count - 1) in
      if d <> info then begin
        t.counters.index_masked <- t.counters.index_masked + 1;
        Metrics.inc m_index_masked;
        if Trace.on () then Trace.instant ~arg:info ~cat:Kind.l2 "slot-mask"
      end;
      (* Single fetch of the descriptor. *)
      charge t actor Cost.Ring (ring_word_cost t ~amortized);
      let db =
        match actor with
        | Region.Guest -> Region.guest_read t.region ~off:(desc_off t d) ~len:8
        | Region.Host -> Region.host_read t.region ~off:(desc_off t d) ~len:8
      in
      let raw_off = Int32.to_int (Bytes.get_int32_le db 0) land 0xFFFFFFFF in
      let dlen = Int32.to_int (Bytes.get_int32_le db 4) land 0xFFFFFFFF in
      (* Confine the buffer offset: wrap into the arena, align down to a
         unit boundary. A hostile offset aliases a valid unit. *)
      charge t actor Cost.Check t.model.Cost.check;
      let confined = Bitops.align_down (raw_off land (t.lay.data_size - 1)) ~align:t.lay.unit_size in
      if confined <> raw_off then begin
        t.counters.index_masked <- t.counters.index_masked + 1;
        Metrics.inc m_index_masked;
        if Trace.on () then Trace.instant ~arg:raw_off ~cat:Kind.l2 "slot-mask"
      end;
      let len = clamp (min len dlen) t.lay.unit_size in
      (t.base + t.lay.data_off + confined, len)

(* One consume step. [Cr_skip] means a malformed slot was skipped and the
   cursor advanced — progress was made but no message came out. *)
type consume_result = Cr_empty | Cr_skip | Cr_frame of bytes

let consume_one ?pool t ~amortized =
  let actor = consumer t in
  let slot = t.cons_next land (t.slots - 1) in
  let state, len, info, _tag = read_header t ~amortized actor slot in
  if state = state_empty then begin
    t.counters.empty_polls <- t.counters.empty_polls + 1;
    Metrics.inc m_empty_polls;
    Cr_empty
  end
  else if state <> state_full then begin
    (* Malformed state word: skip the slot entirely (no error path). *)
    t.counters.state_skipped <- t.counters.state_skipped + 1;
    Metrics.inc m_state_skipped;
    if Trace.on () then Trace.instant ~arg:state ~cat:Kind.l2 "slot-skip";
    write_word t ~amortized actor ~off:(hdr_off t slot) state_empty;
    t.cons_next <- t.cons_next + 1;
    Cr_skip
  end
  else begin
    let off, len = locate ~amortized t actor slot ~len ~info in
    if len = 0 then begin
      (* A message carries at least one byte by contract: a zero-length
         claim is malformed, so the slot is skipped like any other
         malformed slot (no error path). *)
      t.counters.state_skipped <- t.counters.state_skipped + 1;
      Metrics.inc m_state_skipped;
      if Trace.on () then Trace.instant ~cat:Kind.l2 "slot-skip";
      write_word t ~amortized actor ~off:(hdr_off t slot) state_empty;
      t.cons_next <- t.cons_next + 1;
      Cr_skip
    end
    else begin
      let payload = read_payload ?pool t actor ~off ~len in
      write_word t ~amortized actor ~off:(hdr_off t slot) state_empty;
      t.cons_next <- t.cons_next + 1;
      t.counters.consumed <- t.counters.consumed + 1;
      Metrics.inc m_consumed;
      if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-consume";
      Cr_frame payload
    end
  end

let try_consume ?pool t =
  match consume_one ?pool t ~amortized:false with
  | Cr_frame b -> Some b
  | Cr_empty | Cr_skip -> None

(* Burst consume: drain up to [max] messages in one crossing. Malformed
   slots inside the batch are skipped-and-counted exactly as in the
   single-slot path — each skip writes EMPTY and advances, so the loop
   terminates — without poisoning the rest of the batch. Only the first
   header access of the crossing pays full ring cost. *)
let try_consume_burst ?pool ?(max = 64) t =
  let ops = ref 0 in
  let rec go n acc =
    if n >= max then List.rev acc
    else begin
      let amortized = !ops > 0 in
      incr ops;
      match consume_one ?pool t ~amortized with
      | Cr_empty -> List.rev acc
      | Cr_skip -> go n acc
      | Cr_frame b -> go (n + 1) (b :: acc)
    end
  in
  if max <= 0 then [] else go 0 []

(* Zero-copy consume by revocation (guest consumer, Inline positioning):
   unshare the payload pages, return a view of now-private memory, and
   release by re-sharing + marking EMPTY. *)
type zero_copy = { data : bytes; release : unit -> unit }

let rec try_consume_revoke ?pool t =
  let actor = consumer t in
  if actor <> Region.Guest then invalid_arg "Ring.try_consume_revoke: guest-consumer rings only";
  (match t.positioning with
  | Config.Inline _ -> ()
  | _ -> invalid_arg "Ring.try_consume_revoke: inline positioning only");
  let slot = t.cons_next land (t.slots - 1) in
  let state, len, _info, _tag = read_header t actor slot in
  if state = state_empty then begin
    t.counters.empty_polls <- t.counters.empty_polls + 1;
    Metrics.inc m_empty_polls;
    None
  end
  else if state <> state_full then begin
    t.counters.state_skipped <- t.counters.state_skipped + 1;
    Metrics.inc m_state_skipped;
    if Trace.on () then Trace.instant ~arg:state ~cat:Kind.l2 "slot-skip";
    write_word t actor ~off:(hdr_off t slot) state_empty;
    t.cons_next <- t.cons_next + 1;
    None
  end
  else begin
    charge t actor Cost.Check t.model.Cost.check;
    let len = min len t.lay.unit_size in
    if len = 0 then begin
      t.counters.state_skipped <- t.counters.state_skipped + 1;
      Metrics.inc m_state_skipped;
      if Trace.on () then Trace.instant ~cat:Kind.l2 "slot-skip";
      write_word t actor ~off:(hdr_off t slot) state_empty;
      t.cons_next <- t.cons_next + 1;
      None
    end
    else revoke_consume ?pool t actor slot ~len
  end

and revoke_consume ?pool t actor slot ~len =
  begin
    let off = unit_off t slot in
    (* Revoke the slot's pages: the host can no longer race the data. *)
    Region.unshare_range t.region ~off ~len:t.lay.unit_size;
    let data =
      match pool with
      | Some p ->
          let b = Bufpool.acquire p len in
          Region.guest_read_into t.region ~off b;
          b
      | None -> Region.guest_read t.region ~off ~len
    in
    let released = ref false in
    let release () =
      if not !released then begin
        released := true;
        Region.share_range t.region ~off ~len:t.lay.unit_size;
        write_word t actor ~off:(hdr_off t slot) state_empty
      end
    in
    t.cons_next <- t.cons_next + 1;
    t.counters.consumed <- t.counters.consumed + 1;
    Metrics.inc m_consumed;
    if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-revoke";
    Some { data; release }
  end

(* Burst revocation: one unshare/share pair (one shootdown each way)
   covers a contiguous run of FULL slots. The run never wraps the ring —
   a wrap would split the span — and never consumes past a non-FULL or
   malformed slot: that slot is left in place for the next call, so the
   single-slot skip machinery handles it with its usual accounting. *)
type zero_copy_burst = { frames : bytes list; release : unit -> unit }

let try_consume_revoke_burst ?pool ?(max = 64) t =
  let actor = consumer t in
  if actor <> Region.Guest then
    invalid_arg "Ring.try_consume_revoke_burst: guest-consumer rings only";
  (match t.positioning with
  | Config.Inline _ -> ()
  | _ -> invalid_arg "Ring.try_consume_revoke_burst: inline positioning only");
  if max <= 0 then None
  else begin
    let mask = t.slots - 1 in
    let start = t.cons_next land mask in
    let limit = min max (t.slots - start) in
    let state, len, _info, _tag = read_header t actor start in
    if state = state_empty then begin
      t.counters.empty_polls <- t.counters.empty_polls + 1;
      Metrics.inc m_empty_polls;
      None
    end
    else if state <> state_full then begin
      t.counters.state_skipped <- t.counters.state_skipped + 1;
      Metrics.inc m_state_skipped;
      if Trace.on () then Trace.instant ~arg:state ~cat:Kind.l2 "slot-skip";
      write_word t actor ~off:(hdr_off t start) state_empty;
      t.cons_next <- t.cons_next + 1;
      None
    end
    else begin
      charge t actor Cost.Check t.model.Cost.check;
      let first_len = min len t.lay.unit_size in
      if first_len = 0 then begin
        t.counters.state_skipped <- t.counters.state_skipped + 1;
        Metrics.inc m_state_skipped;
        if Trace.on () then Trace.instant ~cat:Kind.l2 "slot-skip";
        write_word t actor ~off:(hdr_off t start) state_empty;
        t.cons_next <- t.cons_next + 1;
        None
      end
      else begin
        (* Scan ahead for the run of valid FULL slots (amortized header
           reads); stop at the first slot that doesn't qualify. *)
        let lens = Array.make limit 0 in
        lens.(0) <- first_len;
        let k = ref 1 in
        let scanning = ref true in
        while !scanning && !k < limit do
          let state, len, _info, _tag = read_header t ~amortized:true actor (start + !k) in
          charge t actor Cost.Check t.model.Cost.check;
          let len = min len t.lay.unit_size in
          if state = state_full && len > 0 then begin
            lens.(!k) <- len;
            incr k
          end
          else scanning := false
        done;
        let k = !k in
        let span_off = unit_off t start in
        let span_len = k * t.lay.unit_size in
        Region.unshare_range t.region ~off:span_off ~len:span_len;
        let frames =
          List.init k (fun i ->
              let off = unit_off t (start + i) in
              match pool with
              | Some p ->
                  let b = Bufpool.acquire p lens.(i) in
                  Region.guest_read_into t.region ~off b;
                  b
              | None -> Region.guest_read t.region ~off ~len:lens.(i))
        in
        let released = ref false in
        let release () =
          if not !released then begin
            released := true;
            Region.share_range t.region ~off:span_off ~len:span_len;
            for i = 0 to k - 1 do
              write_word t ~amortized:(i > 0) actor
                ~off:(hdr_off t (start + i))
                state_empty
            done
          end
        in
        t.cons_next <- t.cons_next + k;
        t.counters.consumed <- t.counters.consumed + k;
        Metrics.add m_consumed k;
        if Trace.on () then Trace.instant ~arg:k ~cat:Kind.l2 "slot-revoke-burst";
        Some { frames; release }
      end
    end
  end
