(* The safe ring — §3.2's host↔TEE data path, safe by construction.

   Design principles implemented here, mapped to the paper's bullets:

   - *Stateless interface*: a slot is a self-contained transaction
     { state, len, info, tag }. There are no cross-slot or cross-operation
     dependencies, no sequence numbers to resynchronise, and no error
     path: a malformed slot is skipped and counted, never "handled".
   - *Copy as a first-class citizen*: the consumer performs exactly one
     early copy (or one revocation) per message; nothing else ever touches
     shared bytes twice.
   - *No notifications*: both sides poll. (A stateless, idempotent
     doorbell can be layered on top for E11; nothing in the ring needs it.)
   - *Zero (re-)negotiation*: geometry and positioning are fixed at
     construction; there is no control plane in the ring at all.
   - *Safe ring buffer & shared data area*: every size is a power of two.
     Slot cursors, pool indices and indirect buffer offsets taken from
     shared memory are confined by masking — a wild value aliases a valid
     slot instead of escaping the arena. Untrusted lengths are clamped to
     the slot capacity. The header is fetched exactly once per operation
     (double fetches are impossible by construction, so no copy is needed
     to defend against them).

   One ring carries one direction: the producer side is fixed at creation
   (guest for TX, host for RX). Each side's cursor and allocator state is
   private to that side; the only shared control word is [state]. *)

open Cio_util
open Cio_mem
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind = Cio_telemetry.Kind

(* Aggregate slot-lifecycle metrics across every ring in the process.
   Handles are resolved once at module init, so the per-event cost is a
   single unboxed increment — cheap enough to leave always on. *)
let m_produced = Metrics.counter Metrics.default "ring.produced"
let m_consumed = Metrics.counter Metrics.default "ring.consumed"
let m_full_misses = Metrics.counter Metrics.default "ring.full_misses"
let m_empty_polls = Metrics.counter Metrics.default "ring.empty_polls"
let m_len_clamped = Metrics.counter Metrics.default "ring.len_clamped"
let m_index_masked = Metrics.counter Metrics.default "ring.index_masked"
let m_state_skipped = Metrics.counter Metrics.default "ring.state_skipped"

let state_empty = 0
let state_full = 1

let header_bytes = 16

type layout = {
  total : int;          (* bytes needed from base *)
  hdr_off : int;        (* headers, slots * 16 *)
  desc_off : int;       (* indirect descriptors (0 width otherwise) *)
  desc_count : int;
  data_off : int;       (* payload arena, power-of-two sized and aligned *)
  data_size : int;
  unit_size : int;      (* payload bytes per slot / pool slot *)
  units : int;          (* number of payload units in the arena *)
}

let layout ~page_size ~slots (positioning : Config.positioning) =
  if not (Bitops.is_power_of_two slots) then invalid_arg "Ring.layout: slots must be a power of two";
  let unit_size, units, desc_count =
    match positioning with
    | Config.Inline { data_capacity } -> (data_capacity, slots, 0)
    | Config.Pool { pool_slots; pool_slot_size } -> (pool_slot_size, pool_slots, 0)
    | Config.Indirect { desc_count; pool_slots; pool_slot_size } ->
        (pool_slot_size, pool_slots, desc_count)
  in
  if not (Bitops.is_power_of_two unit_size) then
    invalid_arg "Ring.layout: payload unit size must be a power of two";
  if not (Bitops.is_power_of_two units) then
    invalid_arg "Ring.layout: payload unit count must be a power of two";
  if desc_count <> 0 && not (Bitops.is_power_of_two desc_count) then
    invalid_arg "Ring.layout: descriptor count must be a power of two";
  let hdr_off = 0 in
  let desc_off = hdr_off + (slots * header_bytes) in
  let data_size = units * unit_size in
  (* The arena is aligned to its own (power-of-two) size so that offset
     confinement is a single AND, and to the page size so revocation can
     operate on whole payload pages. *)
  let align = max page_size data_size in
  let data_off = Bitops.align_up (desc_off + (desc_count * 8)) ~align in
  { total = data_off + data_size; hdr_off; desc_off; desc_count; data_off; data_size; unit_size; units }

type counters = {
  mutable produced : int;
  mutable consumed : int;
  mutable full_misses : int;   (* produce found no EMPTY slot *)
  mutable empty_polls : int;   (* consume found no FULL slot *)
  mutable len_clamped : int;   (* untrusted length confined *)
  mutable index_masked : int;  (* untrusted index/offset confined *)
  mutable state_skipped : int; (* malformed state word skipped *)
}

type t = {
  region : Region.t;
  base : int;
  slots : int;
  lay : layout;
  positioning : Config.positioning;
  producer : Region.actor;
  guest_meter : Cost.meter;
  host_meter : Cost.meter;
  model : Cost.model;
  mutable prod_next : int;  (* producer-private cursor *)
  mutable cons_next : int;  (* consumer-private cursor *)
  (* Producer-private payload allocator (pool / indirect modes): unit
     bindings per ring slot, reclaimed lazily when the slot is reused. *)
  free_units : int Queue.t;
  bindings : int option array;
  mutable next_desc : int;
  mutable next_tag : int;
  counters : counters;
}

let create ~region ~base ~slots ~positioning ~producer ~host_meter =
  let lay = layout ~page_size:(Region.page_size region) ~slots positioning in
  if base + lay.total > Region.size region then invalid_arg "Ring.create: does not fit in region";
  if base mod max (Region.page_size region) 1 <> 0 then
    invalid_arg "Ring.create: base must be page-aligned";
  let t =
    {
      region;
      base;
      slots;
      lay;
      positioning;
      producer;
      guest_meter = Region.meter region;
      host_meter;
      model = Region.model region;
      prod_next = 0;
      cons_next = 0;
      free_units = Queue.create ();
      bindings = Array.make slots None;
      next_desc = 0;
      next_tag = 0;
      counters =
        {
          produced = 0;
          consumed = 0;
          full_misses = 0;
          empty_polls = 0;
          len_clamped = 0;
          index_masked = 0;
          state_skipped = 0;
        };
    }
  in
  (match positioning with
  | Config.Inline _ -> ()
  | Config.Pool _ | Config.Indirect _ ->
      for u = 0 to lay.units - 1 do
        Queue.add u t.free_units
      done);
  t

let counters t = t.counters
let slots t = t.slots
let region t = t.region
let header_offset t slot = t.base + t.lay.hdr_off + (header_bytes * (slot land (t.slots - 1)))
let capacity t = t.lay.unit_size
let consumer t = match t.producer with Region.Guest -> Region.Host | Region.Host -> Region.Guest
let data_arena t = (t.base + t.lay.data_off, t.lay.data_size)

let meter_of t (actor : Region.actor) =
  match actor with Region.Guest -> t.guest_meter | Region.Host -> t.host_meter

let charge t actor cat cycles = Cost.charge (meter_of t actor) cat cycles

let hdr_off t slot = t.base + t.lay.hdr_off + (header_bytes * (slot land (t.slots - 1)))
let unit_off t u = t.base + t.lay.data_off + (t.lay.unit_size * (u land (t.lay.units - 1)))
let desc_off t d = t.base + t.lay.desc_off + (8 * (d land (max t.lay.desc_count 1 - 1)))

(* Single-fetch header read: one 16-byte pull, decoded privately. *)
let read_header t actor slot =
  charge t actor Cost.Ring t.model.Cost.ring_op;
  let b =
    match actor with
    | Region.Guest -> Region.guest_read t.region ~off:(hdr_off t slot) ~len:header_bytes
    | Region.Host -> Region.host_read t.region ~off:(hdr_off t slot) ~len:header_bytes
  in
  let state = Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF in
  let len = Int32.to_int (Bytes.get_int32_le b 4) land 0xFFFFFFFF in
  let info = Int32.to_int (Bytes.get_int32_le b 8) land 0xFFFFFFFF in
  let tag = Int32.to_int (Bytes.get_int32_le b 12) land 0xFFFFFFFF in
  (state, len, info, tag)

let write_word t actor ~off v =
  charge t actor Cost.Ring t.model.Cost.ring_op;
  Region.write_u32 t.region actor ~off v

let write_payload t actor ~off payload =
  match actor with
  | Region.Guest -> Region.copy_out t.region ~off payload
  | Region.Host ->
      Region.host_write t.region ~off payload;
      charge t actor Cost.Dma (Cost.dma_cost t.model (Bytes.length payload))

let read_payload t actor ~off ~len =
  match actor with
  | Region.Guest -> Region.copy_in t.region ~off ~len
  | Region.Host ->
      let b = Region.host_read t.region ~off ~len in
      charge t actor Cost.Dma (Cost.dma_cost t.model len);
      b

(* Reclaim the payload unit a ring slot was last bound to (producer
   private bookkeeping; the "free" control message is the slot's return
   to EMPTY, which the producer observes on reuse). *)
let reclaim_binding t slot =
  match t.bindings.(slot land (t.slots - 1)) with
  | None -> ()
  | Some u ->
      t.bindings.(slot land (t.slots - 1)) <- None;
      Queue.add u t.free_units

let try_produce t payload =
  let actor = t.producer in
  let len = Bytes.length payload in
  if len > t.lay.unit_size then invalid_arg "Ring.try_produce: payload larger than slot capacity";
  if len = 0 then invalid_arg "Ring.try_produce: messages carry at least one byte";
  let slot = t.prod_next land (t.slots - 1) in
  let state, _, _, _ = read_header t actor slot in
  if state <> state_empty then begin
    t.counters.full_misses <- t.counters.full_misses + 1;
    Metrics.inc m_full_misses;
    false
  end
  else begin
    reclaim_binding t slot;
    let info =
      match t.positioning with
      | Config.Inline _ ->
          write_payload t actor ~off:(unit_off t slot) payload;
          0
      | Config.Pool _ -> (
          match Queue.take_opt t.free_units with
          | None ->
              t.counters.full_misses <- t.counters.full_misses + 1;
              Metrics.inc m_full_misses;
              -1
          | Some u ->
              t.bindings.(slot) <- Some u;
              write_payload t actor ~off:(unit_off t u) payload;
              u)
      | Config.Indirect _ -> (
          match Queue.take_opt t.free_units with
          | None ->
              t.counters.full_misses <- t.counters.full_misses + 1;
              Metrics.inc m_full_misses;
              -1
          | Some u ->
              t.bindings.(slot) <- Some u;
              write_payload t actor ~off:(unit_off t u) payload;
              let d = t.next_desc land (t.lay.desc_count - 1) in
              t.next_desc <- t.next_desc + 1;
              write_word t actor ~off:(desc_off t d) (unit_off t u - (t.base + t.lay.data_off));
              write_word t actor ~off:(desc_off t d + 4) len;
              d)
    in
    if info < 0 then false
    else begin
      (* Publish: len and info first, state FULL last. *)
      write_word t actor ~off:(hdr_off t slot + 4) len;
      write_word t actor ~off:(hdr_off t slot + 8) info;
      write_word t actor ~off:(hdr_off t slot + 12) (t.next_tag land 0xFFFFFFFF);
      t.next_tag <- t.next_tag + 1;
      write_word t actor ~off:(hdr_off t slot) state_full;
      t.prod_next <- t.prod_next + 1;
      t.counters.produced <- t.counters.produced + 1;
      Metrics.inc m_produced;
      if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-produce";
      true
    end
  end

(* Resolve the payload location for a consumed slot, confining every
   untrusted value by masking/clamping. *)
let locate t actor slot ~len ~info =
  let clamp len cap =
    charge t actor Cost.Check t.model.Cost.check;
    if len > cap then begin
      t.counters.len_clamped <- t.counters.len_clamped + 1;
      Metrics.inc m_len_clamped;
      if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-clamp";
      cap
    end
    else len
  in
  match t.positioning with
  | Config.Inline _ ->
      let len = clamp len t.lay.unit_size in
      (unit_off t slot, len)
  | Config.Pool _ ->
      charge t actor Cost.Check t.model.Cost.check;
      let u = info land (t.lay.units - 1) in
      if u <> info then begin
        t.counters.index_masked <- t.counters.index_masked + 1;
        Metrics.inc m_index_masked;
        if Trace.on () then Trace.instant ~arg:info ~cat:Kind.l2 "slot-mask"
      end;
      let len = clamp len t.lay.unit_size in
      (unit_off t u, len)
  | Config.Indirect _ ->
      charge t actor Cost.Check t.model.Cost.check;
      let d = info land (t.lay.desc_count - 1) in
      if d <> info then begin
        t.counters.index_masked <- t.counters.index_masked + 1;
        Metrics.inc m_index_masked;
        if Trace.on () then Trace.instant ~arg:info ~cat:Kind.l2 "slot-mask"
      end;
      (* Single fetch of the descriptor. *)
      charge t actor Cost.Ring t.model.Cost.ring_op;
      let db =
        match actor with
        | Region.Guest -> Region.guest_read t.region ~off:(desc_off t d) ~len:8
        | Region.Host -> Region.host_read t.region ~off:(desc_off t d) ~len:8
      in
      let raw_off = Int32.to_int (Bytes.get_int32_le db 0) land 0xFFFFFFFF in
      let dlen = Int32.to_int (Bytes.get_int32_le db 4) land 0xFFFFFFFF in
      (* Confine the buffer offset: wrap into the arena, align down to a
         unit boundary. A hostile offset aliases a valid unit. *)
      charge t actor Cost.Check t.model.Cost.check;
      let confined = Bitops.align_down (raw_off land (t.lay.data_size - 1)) ~align:t.lay.unit_size in
      if confined <> raw_off then begin
        t.counters.index_masked <- t.counters.index_masked + 1;
        Metrics.inc m_index_masked;
        if Trace.on () then Trace.instant ~arg:raw_off ~cat:Kind.l2 "slot-mask"
      end;
      let len = clamp (min len dlen) t.lay.unit_size in
      (t.base + t.lay.data_off + confined, len)

let try_consume t =
  let actor = consumer t in
  let slot = t.cons_next land (t.slots - 1) in
  let state, len, info, _tag = read_header t actor slot in
  if state = state_empty then begin
    t.counters.empty_polls <- t.counters.empty_polls + 1;
    Metrics.inc m_empty_polls;
    None
  end
  else if state <> state_full then begin
    (* Malformed state word: skip the slot entirely (no error path). *)
    t.counters.state_skipped <- t.counters.state_skipped + 1;
    Metrics.inc m_state_skipped;
    if Trace.on () then Trace.instant ~arg:state ~cat:Kind.l2 "slot-skip";
    write_word t actor ~off:(hdr_off t slot) state_empty;
    t.cons_next <- t.cons_next + 1;
    None
  end
  else begin
    let off, len = locate t actor slot ~len ~info in
    if len = 0 then begin
      (* A message carries at least one byte by contract: a zero-length
         claim is malformed, so the slot is skipped like any other
         malformed slot (no error path). *)
      t.counters.state_skipped <- t.counters.state_skipped + 1;
      Metrics.inc m_state_skipped;
      if Trace.on () then Trace.instant ~cat:Kind.l2 "slot-skip";
      write_word t actor ~off:(hdr_off t slot) state_empty;
      t.cons_next <- t.cons_next + 1;
      None
    end
    else begin
      let payload = read_payload t actor ~off ~len in
      write_word t actor ~off:(hdr_off t slot) state_empty;
      t.cons_next <- t.cons_next + 1;
      t.counters.consumed <- t.counters.consumed + 1;
      Metrics.inc m_consumed;
      if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-consume";
      Some payload
    end
  end

(* Zero-copy consume by revocation (guest consumer, Inline positioning):
   unshare the payload pages, return a view of now-private memory, and
   release by re-sharing + marking EMPTY. *)
type zero_copy = { data : bytes; release : unit -> unit }

let rec try_consume_revoke t =
  let actor = consumer t in
  if actor <> Region.Guest then invalid_arg "Ring.try_consume_revoke: guest-consumer rings only";
  (match t.positioning with
  | Config.Inline _ -> ()
  | _ -> invalid_arg "Ring.try_consume_revoke: inline positioning only");
  let slot = t.cons_next land (t.slots - 1) in
  let state, len, _info, _tag = read_header t actor slot in
  if state = state_empty then begin
    t.counters.empty_polls <- t.counters.empty_polls + 1;
    Metrics.inc m_empty_polls;
    None
  end
  else if state <> state_full then begin
    t.counters.state_skipped <- t.counters.state_skipped + 1;
    Metrics.inc m_state_skipped;
    if Trace.on () then Trace.instant ~arg:state ~cat:Kind.l2 "slot-skip";
    write_word t actor ~off:(hdr_off t slot) state_empty;
    t.cons_next <- t.cons_next + 1;
    None
  end
  else begin
    charge t actor Cost.Check t.model.Cost.check;
    let len = min len t.lay.unit_size in
    if len = 0 then begin
      t.counters.state_skipped <- t.counters.state_skipped + 1;
      Metrics.inc m_state_skipped;
      if Trace.on () then Trace.instant ~cat:Kind.l2 "slot-skip";
      write_word t actor ~off:(hdr_off t slot) state_empty;
      t.cons_next <- t.cons_next + 1;
      None
    end
    else revoke_consume t actor slot ~len
  end

and revoke_consume t actor slot ~len =
  begin
    let off = unit_off t slot in
    (* Revoke the slot's pages: the host can no longer race the data. *)
    Region.unshare_range t.region ~off ~len:t.lay.unit_size;
    let data = Region.guest_read t.region ~off ~len in
    let released = ref false in
    let release () =
      if not !released then begin
        released := true;
        Region.share_range t.region ~off ~len:t.lay.unit_size;
        write_word t actor ~off:(hdr_off t slot) state_empty
      end
    in
    t.cons_next <- t.cons_next + 1;
    t.counters.consumed <- t.counters.consumed + 1;
    Metrics.inc m_consumed;
    if Trace.on () then Trace.instant ~arg:len ~cat:Kind.l2 "slot-revoke";
    Some { data; release }
  end
