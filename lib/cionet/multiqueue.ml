(* Multi-queue cionet: N independent device instances, one per core — the
   standard answer to the paper's §2.2 performance ideal (saturating
   tens-of-Gbit links), applied to the safe interface.

   Because each queue is a complete, independent cionet device (own
   region, own rings, own meter), multi-queue composes with every safety
   property for free: there is no shared control state between queues to
   harden, no steering negotiation (the flow->queue map is fixed at
   creation, like everything else), and per-queue hot swap keeps working.
   Contrast virtio multiqueue, which adds a control-virtqueue command set
   (and its own CVE surface) to renegotiate steering at runtime.

   TX steering: flows are pinned by a caller-supplied hash so per-flow
   ordering is preserved; RX arrives on whatever queue the host used and
   is drained round-robin. The per-queue meters let experiments compute
   the parallel critical path (max over queues) versus total work. *)

open Cio_util

type t = {
  queues : Driver.t array;
  mutable rx_next : int;  (* round-robin drain cursor *)
}

let create ?(model = Cost.default) ?host_meter ~name ~queues (config : Config.t) =
  if queues < 1 then invalid_arg "Multiqueue.create: need at least one queue";
  {
    queues =
      Array.init queues (fun i ->
          Driver.create ~model ?host_meter ~name:(Printf.sprintf "%s-q%d" name i) config);
    rx_next = 0;
  }

let queue_count t = Array.length t.queues
let queue t i = t.queues.(i)
let queues t = Array.to_list t.queues

(* Fixed flow steering: same hash, same queue, always. Power-of-two
   counts use the mask; other counts fall back to a sign-safe modulo (a
   bare [mod] goes negative for negative hashes). *)
let queue_for t ~flow_hash =
  let n = Array.length t.queues in
  if n land (n - 1) = 0 then flow_hash land (n - 1)
  else ((flow_hash mod n) + n) mod n

let transmit t ~flow_hash frame =
  Driver.transmit t.queues.(queue_for t ~flow_hash) frame

let transmit_burst t ~flow_hash frames =
  Driver.transmit_burst t.queues.(queue_for t ~flow_hash) frames

let poll t =
  (* Drain one frame, round-robin across queues for fairness. *)
  let n = Array.length t.queues in
  let rec go tried =
    if tried = n then None
    else begin
      let q = t.rx_next in
      t.rx_next <- (t.rx_next + 1) mod n;
      match Driver.poll t.queues.(q) with
      | Some f -> Some f
      | None -> go (tried + 1)
    end
  in
  go 0

(* Burst drain: visit each queue once starting from the round-robin
   cursor, taking up to the remaining budget from each, so one busy queue
   cannot starve the others and a single poll can move a whole batch
   (the old one-frame-per-poll drain was the multi-queue bottleneck). *)
let poll_burst ?(max = 64) t =
  let n = Array.length t.queues in
  let left = ref max in
  let acc = ref [] in
  for _ = 0 to n - 1 do
    if !left > 0 then begin
      let q = t.rx_next in
      t.rx_next <- (t.rx_next + 1) mod n;
      let frames = Driver.poll_burst ~max:!left t.queues.(q) in
      left := !left - List.length frames;
      acc := List.rev_append frames !acc
    end
  done;
  List.rev !acc

(* Aggregate backpressure: total in-flight TX slots and the worst
   per-queue level — with fixed steering a single hot queue can hit Hard
   while the others idle, and the worst queue is the one that matters. *)
let tx_occupancy t =
  Array.fold_left (fun acc q -> acc + Driver.tx_occupancy q) 0 t.queues

let tx_pressure t =
  Array.fold_left
    (fun acc q -> Cio_overload.Pressure.worst acc (Driver.tx_pressure q))
    Cio_overload.Pressure.Nominal t.queues

let total_cycles t =
  Array.fold_left (fun acc q -> acc + Cost.total (Driver.guest_meter q)) 0 t.queues

(* The parallel critical path: with one core per queue, wall time is the
   busiest queue, not the sum. *)
let critical_path_cycles t =
  Array.fold_left (fun acc q -> max acc (Cost.total (Driver.guest_meter q))) 0 t.queues
