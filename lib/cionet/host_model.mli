(** Host-side cionet device model (strictly the [Host] actor), with the
    same misbehaviour classes as the virtio device so E4 can aim identical
    attacks at the safe interface. *)

type misbehavior =
  | Lie_len of int
  | Bad_index of int
  | Garbage_state of int
  | Race_header of int
  | Corrupt_payload
  | Replay_slot
  | Stall of int  (** stop servicing the device (both directions) for [n] polls *)
  | Silent_drop of int  (** discard the next [n] delivered RX frames without ring activity *)
  | Ring_freeze of int  (** keep draining TX but produce nothing into RX for [n] polls *)

type stats = {
  mutable tx_forwarded : int;
  mutable rx_injected : int;
  mutable faults : int;
  mutable rx_dropped : int;
}

type t

val create : driver:Driver.t -> transmit:(bytes -> unit) -> t

val reattach : t -> driver:Driver.t -> unit
(** Re-attach to a driver after {!Driver.hot_swap}. *)

val stats : t -> stats

val inject : t -> misbehavior -> unit
(** Header/payload sabotage queues one-shot; [Stall]/[Silent_drop]/
    [Ring_freeze] extend the corresponding modal fault duration. *)

val stalled : t -> bool
val frozen : t -> bool

val set_service_quota : t -> int option -> unit
(** Cap frames serviced per {!poll}, per direction ([None] = unbounded,
    the default). A slow-but-honest host: the saturation knob for the
    overload experiments. *)

val deliver_rx : t -> bytes -> unit

val poll : t -> unit
(** Drain the guest's TX ring (forwarding frames) and fill the RX ring
    from pending frames. *)

val pending_rx_count : t -> int
