(* Driver watchdog: the statelessness payoff turned into a recovery loop.

   The guest cannot trust the host to service the device — a stalled,
   frozen, or crashed device model looks exactly like a dead one. Because
   the cionet interface is stateless and zero-negotiation, the cure is
   always the same and always safe: bump the generation, revoke the old
   region wholesale, and stand up fresh rings (Driver.hot_swap). Nothing
   is negotiated or replayed across the reset, so a false positive costs
   only the reset itself; TCP and the L5 record layer absorb the cable
   pull either way.

   Detection is deadline-based in counted polls, per direction:

   - TX deadline: the guest has produced frames the host has not consumed
     and the host-consumed cursor is not advancing.
   - RX deadline: the caller declares it is waiting for inbound data
     (e.g. a request is outstanding) and the host-produced cursor is not
     advancing. This is what catches a one-directional ring freeze.

   Consecutive resets without intervening progress back off
   exponentially, so a long host outage costs a handful of resets, not a
   reset per budget. *)

let m_deferred =
  Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "overload.watchdog.deferred"
let m_skipped =
  Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "overload.watchdog.skipped"
let m_full_windows =
  Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "overload.ring_full_windows"

type t = {
  driver : Driver.t;
  poll_budget : int;
  max_backoff : int;
  on_reset : unit -> unit;
  recovery : Cio_observe.Recovery.t;
  (* Overload plane (both optional; absent = classic watchdog):
     [breaker] tracks host health — deadline trips and ring-full windows
     are failures, progress is success, and while the breaker is Open
     resets are skipped (the host is considered down; re-swapping rings
     at it buys nothing). [retry_budget] paces the resets themselves:
     a reset is a retry against the host and spends a token. *)
  breaker : Cio_overload.Breaker.t option;
  retry_budget : Cio_overload.Retry_budget.t option;
  mutable last_tx_consumed : int;
  mutable last_rx_produced : int;
  mutable tx_idle : int;
  mutable rx_idle : int;
  mutable backoff : int;  (* budget multiplier; doubles per consecutive reset *)
  mutable stalls_detected : int;
  mutable resets : int;
  mutable last_full_misses : int;
  mutable full_streak : int;  (* ticks with fresh full-misses and no progress *)
}

let create ?(poll_budget = 2048) ?(max_backoff = 32) ?recovery ?(on_reset = fun () -> ())
    ?breaker ?retry_budget driver =
  {
    driver;
    poll_budget = max 1 poll_budget;
    max_backoff = max 1 max_backoff;
    on_reset;
    recovery =
      (match recovery with Some r -> r | None -> Cio_observe.Recovery.create ());
    breaker;
    retry_budget;
    last_tx_consumed = 0;
    last_rx_produced = 0;
    tx_idle = 0;
    rx_idle = 0;
    backoff = 1;
    stalls_detected = 0;
    resets = 0;
    last_full_misses = 0;
    full_streak = 0;
  }

let stalls_detected t = t.stalls_detected
let resets t = t.resets
let current_backoff t = t.backoff

let budget t = t.poll_budget * t.backoff

let reset_now t =
  t.stalls_detected <- t.stalls_detected + 1;
  Cio_observe.Recovery.stall_detected t.recovery;
  if Cio_telemetry.Trace.on () then begin
    Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.l2 "stall-detected";
    Cio_telemetry.Trace.span_begin ~cat:Cio_telemetry.Kind.l2 "watchdog-reset"
  end;
  Driver.hot_swap t.driver;
  t.resets <- t.resets + 1;
  Cio_observe.Recovery.reset t.recovery;
  (* Fresh rings: every cursor is back at zero. *)
  t.last_tx_consumed <- 0;
  t.last_rx_produced <- 0;
  t.tx_idle <- 0;
  t.rx_idle <- 0;
  t.last_full_misses <- 0;
  t.full_streak <- 0;
  t.backoff <- min (t.backoff * 2) t.max_backoff;
  t.on_reset ();
  if Cio_telemetry.Trace.on () then
    Cio_telemetry.Trace.span_end ~cat:Cio_telemetry.Kind.l2 "watchdog-reset"

(* One observation per driver poll quantum. [expecting_rx] is the upper
   layer's statement that inbound data is owed (a request in flight); the
   watchdog cannot infer that from the rings alone. *)
let tick ?(expecting_rx = false) t =
  let txc = (Ring.counters (Driver.tx_ring t.driver)).Ring.consumed in
  let rxc = (Ring.counters (Driver.rx_ring t.driver)).Ring.produced in
  let tx_outstanding =
    (Ring.counters (Driver.tx_ring t.driver)).Ring.produced > txc
  in
  let progress = txc > t.last_tx_consumed || rxc > t.last_rx_produced in
  if progress then begin
    t.tx_idle <- 0;
    t.rx_idle <- 0;
    t.backoff <- 1;
    t.full_streak <- 0;
    (* Host health restored: close the breaker, pay back the budget. *)
    (match t.breaker with Some b -> Cio_overload.Breaker.success b | None -> ());
    (match t.retry_budget with
    | Some rb -> Cio_overload.Retry_budget.on_success rb
    | None -> ())
  end
  else begin
    if tx_outstanding then t.tx_idle <- t.tx_idle + 1 else t.tx_idle <- 0;
    if expecting_rx then t.rx_idle <- t.rx_idle + 1 else t.rx_idle <- 0
  end;
  (* Ring-full windows: a TX ring that keeps refusing frames for a whole
     budget without the host consuming anything is a host-health failure
     in its own right — the breaker hears about it before (or without) a
     deadline trip. The counter can regress only across a hot swap. *)
  let fm = (Ring.counters (Driver.tx_ring t.driver)).Ring.full_misses in
  if fm > t.last_full_misses && not progress then begin
    t.full_streak <- t.full_streak + 1;
    if t.full_streak >= budget t then begin
      Cio_telemetry.Metrics.inc m_full_windows;
      (match t.breaker with Some b -> Cio_overload.Breaker.failure b | None -> ());
      t.full_streak <- 0
    end
  end
  else if fm < t.last_full_misses || progress then t.full_streak <- 0;
  t.last_full_misses <- fm;
  t.last_tx_consumed <- txc;
  t.last_rx_produced <- rxc;
  if t.tx_idle >= budget t || t.rx_idle >= budget t then begin
    (* Deadline tripped. The breaker records the failure; whether we
       actually reset depends on it (an Open breaker means the host is
       considered down — re-swapping rings at it buys nothing) and on
       the retry budget (a reset is a retry against the host). Skipped
       and deferred trips zero the idle counters so the next window
       measures afresh; the backoff multiplier only moves on real
       resets and on progress, preserving its monotone-doubling shape. *)
    (match t.breaker with Some b -> Cio_overload.Breaker.failure b | None -> ());
    let allowed =
      match t.breaker with Some b -> Cio_overload.Breaker.allow b | None -> true
    in
    if not allowed then begin
      Cio_telemetry.Metrics.inc m_skipped;
      t.tx_idle <- 0;
      t.rx_idle <- 0
    end
    else begin
      let granted =
        match t.retry_budget with
        | Some rb -> Cio_overload.Retry_budget.try_retry rb
        | None -> true
      in
      if granted then reset_now t
      else begin
        Cio_telemetry.Metrics.inc m_deferred;
        t.tx_idle <- 0;
        t.rx_idle <- 0
      end
    end
  end
