(* Driver watchdog: the statelessness payoff turned into a recovery loop.

   The guest cannot trust the host to service the device — a stalled,
   frozen, or crashed device model looks exactly like a dead one. Because
   the cionet interface is stateless and zero-negotiation, the cure is
   always the same and always safe: bump the generation, revoke the old
   region wholesale, and stand up fresh rings (Driver.hot_swap). Nothing
   is negotiated or replayed across the reset, so a false positive costs
   only the reset itself; TCP and the L5 record layer absorb the cable
   pull either way.

   Detection is deadline-based in counted polls, per direction:

   - TX deadline: the guest has produced frames the host has not consumed
     and the host-consumed cursor is not advancing.
   - RX deadline: the caller declares it is waiting for inbound data
     (e.g. a request is outstanding) and the host-produced cursor is not
     advancing. This is what catches a one-directional ring freeze.

   Consecutive resets without intervening progress back off
   exponentially, so a long host outage costs a handful of resets, not a
   reset per budget. *)

type t = {
  driver : Driver.t;
  poll_budget : int;
  max_backoff : int;
  on_reset : unit -> unit;
  recovery : Cio_observe.Recovery.t;
  mutable last_tx_consumed : int;
  mutable last_rx_produced : int;
  mutable tx_idle : int;
  mutable rx_idle : int;
  mutable backoff : int;  (* budget multiplier; doubles per consecutive reset *)
  mutable stalls_detected : int;
  mutable resets : int;
}

let create ?(poll_budget = 2048) ?(max_backoff = 32) ?recovery ?(on_reset = fun () -> ())
    driver =
  {
    driver;
    poll_budget = max 1 poll_budget;
    max_backoff = max 1 max_backoff;
    on_reset;
    recovery =
      (match recovery with Some r -> r | None -> Cio_observe.Recovery.create ());
    last_tx_consumed = 0;
    last_rx_produced = 0;
    tx_idle = 0;
    rx_idle = 0;
    backoff = 1;
    stalls_detected = 0;
    resets = 0;
  }

let stalls_detected t = t.stalls_detected
let resets t = t.resets
let current_backoff t = t.backoff

let budget t = t.poll_budget * t.backoff

let reset_now t =
  t.stalls_detected <- t.stalls_detected + 1;
  Cio_observe.Recovery.stall_detected t.recovery;
  if Cio_telemetry.Trace.on () then begin
    Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.l2 "stall-detected";
    Cio_telemetry.Trace.span_begin ~cat:Cio_telemetry.Kind.l2 "watchdog-reset"
  end;
  Driver.hot_swap t.driver;
  t.resets <- t.resets + 1;
  Cio_observe.Recovery.reset t.recovery;
  (* Fresh rings: every cursor is back at zero. *)
  t.last_tx_consumed <- 0;
  t.last_rx_produced <- 0;
  t.tx_idle <- 0;
  t.rx_idle <- 0;
  t.backoff <- min (t.backoff * 2) t.max_backoff;
  t.on_reset ();
  if Cio_telemetry.Trace.on () then
    Cio_telemetry.Trace.span_end ~cat:Cio_telemetry.Kind.l2 "watchdog-reset"

(* One observation per driver poll quantum. [expecting_rx] is the upper
   layer's statement that inbound data is owed (a request in flight); the
   watchdog cannot infer that from the rings alone. *)
let tick ?(expecting_rx = false) t =
  let txc = (Ring.counters (Driver.tx_ring t.driver)).Ring.consumed in
  let rxc = (Ring.counters (Driver.rx_ring t.driver)).Ring.produced in
  let tx_outstanding =
    (Ring.counters (Driver.tx_ring t.driver)).Ring.produced > txc
  in
  let progress = txc > t.last_tx_consumed || rxc > t.last_rx_produced in
  if progress then begin
    t.tx_idle <- 0;
    t.rx_idle <- 0;
    t.backoff <- 1
  end
  else begin
    if tx_outstanding then t.tx_idle <- t.tx_idle + 1 else t.tx_idle <- 0;
    if expecting_rx then t.rx_idle <- t.rx_idle + 1 else t.rx_idle <- 0
  end;
  t.last_tx_consumed <- txc;
  t.last_rx_produced <- rxc;
  if t.tx_idle >= budget t || t.rx_idle >= budget t then reset_now t
