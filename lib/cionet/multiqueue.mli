(** Multi-queue cionet: N independent safe-ring devices with fixed flow
    steering (no control plane, no steering renegotiation). Safety
    properties compose per queue; per-queue meters expose the parallel
    critical path. *)

open Cio_util

type t

val create :
  ?model:Cost.model -> ?host_meter:Cost.meter -> name:string -> queues:int -> Config.t -> t

val queue_count : t -> int
val queue : t -> int -> Driver.t
val queues : t -> Driver.t list

val queue_for : t -> flow_hash:int -> int
(** Fixed steering: mask for power-of-two queue counts, sign-safe modulo
    otherwise. Always in [[0, queue_count)], for any hash. *)

val transmit : t -> flow_hash:int -> bytes -> bool

val transmit_burst : t -> flow_hash:int -> bytes array -> int
(** Burst transmit on the flow's queue; see {!Driver.transmit_burst}. *)

val poll : t -> bytes option
(** Round-robin drain across the queues. *)

val poll_burst : ?max:int -> t -> bytes list
(** Drain up to [max] (default 64) frames, visiting each queue at most
    once round-robin from the cursor. *)

val tx_occupancy : t -> int
(** Total TX slots in flight across all queues. *)

val tx_pressure : t -> Cio_overload.Pressure.level
(** Worst per-queue TX pressure (a single hot queue dominates under
    fixed steering). *)

val total_cycles : t -> int
val critical_path_cycles : t -> int
(** Busiest queue: wall time with one core per queue. *)
