(** The safe ring: §3.2's host↔TEE data path, safe by construction
    (stateless slots, single-fetch headers, mask-confined indices and
    offsets, clamped lengths, polling, zero negotiation).

    One ring carries one direction; the producer actor is fixed at
    creation. *)

open Cio_util
open Cio_mem

val header_bytes : int

type layout = {
  total : int;
  hdr_off : int;
  desc_off : int;
  desc_count : int;
  data_off : int;
  data_size : int;
  unit_size : int;
  units : int;
}

val layout : page_size:int -> slots:int -> Config.positioning -> layout
(** Compute the shared-memory footprint; raises [Invalid_argument] on
    non-power-of-two geometry. *)

type counters = {
  mutable produced : int;
  mutable consumed : int;
  mutable full_misses : int;
  mutable empty_polls : int;
  mutable len_clamped : int;
  mutable index_masked : int;
  mutable state_skipped : int;
}

type t

val create :
  region:Region.t ->
  base:int ->
  slots:int ->
  positioning:Config.positioning ->
  producer:Region.actor ->
  host_meter:Cost.meter ->
  t
(** [base] must be page-aligned. Guest-side work is charged to the
    region's meter, host-side work to [host_meter]. *)

val counters : t -> counters
val slots : t -> int
val region : t -> Region.t

val occupancy : t -> int
(** Slots currently in flight (produced, not yet consumed), computed
    from the private cursors — trusted, host-independent, and free. The
    root of the overload plane's backpressure signal. *)

val header_offset : t -> int -> int
(** Absolute region offset of a slot's header — exposed for the attack
    harness, which pokes shared memory as the host. *)

val capacity : t -> int
(** Maximum payload bytes per message. *)

val consumer : t -> Region.actor
val data_arena : t -> int * int
(** (offset, size) of the payload arena within the region. *)

val try_produce : t -> bytes -> bool
(** Producer side: place one message; [false] when the ring (or the
    payload pool) is full. *)

val try_produce_burst : t -> bytes array -> int
(** Place up to [Array.length frames] messages in one crossing, stopping
    at the first full slot; returns how many went in. Slots after the
    first pay the amortized [ring_burst_op] cost for header/word work.
    A burst of one is exactly {!try_produce} (same charges, same
    counters). *)

val try_consume : ?pool:Bufpool.t -> t -> bytes option
(** Consumer side, copy strategy: one early copy into private memory.
    With [pool], the destination buffer is recycled from the pool instead
    of freshly allocated. *)

val try_consume_burst : ?pool:Bufpool.t -> ?max:int -> t -> bytes list
(** Drain up to [max] (default 64) messages in one crossing, in FIFO
    order. Malformed slots inside the batch are skipped-and-counted
    without ending the batch; an EMPTY slot ends it. Header/word costs
    amortize after the first access. *)

type zero_copy = { data : bytes; release : unit -> unit }

val try_consume_revoke : ?pool:Bufpool.t -> t -> zero_copy option
(** Consumer side, revocation strategy (guest consumer, inline
    positioning): unshare the payload pages and read in place; [release]
    re-shares and returns the slot. The returned [data] is always a
    private snapshot owned by the caller. *)

type zero_copy_burst = { frames : bytes list; release : unit -> unit }

val try_consume_revoke_burst : ?pool:Bufpool.t -> ?max:int -> t -> zero_copy_burst option
(** Revocation in bursts: one unshare/share pair (one TLB shootdown each
    way) covers a contiguous run of up to [max] valid FULL slots. The run
    stops at a ring wrap or at the first non-FULL/malformed slot, which is
    left in place for the next call. [release] re-shares the whole span
    and returns every slot. *)
