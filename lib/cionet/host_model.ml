(* Host-side cionet device model.

   Consumes the guest's TX ring and produces into the RX ring, strictly as
   the [Host] actor. Region faults (e.g. the guest has revoked a payload
   page mid-operation) are absorbed and counted — from the host's view a
   revoked page is simply unmapped.

   Misbehaviour knobs mirror the virtio device's so E4 can aim the same
   attack classes at the safe interface and show each one bouncing off a
   specific construction principle. *)

open Cio_mem
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind = Cio_telemetry.Kind

let m_tx_forwarded = Metrics.counter Metrics.default "host.tx_forwarded"
let m_rx_injected = Metrics.counter Metrics.default "host.rx_injected"
let m_faults = Metrics.counter Metrics.default "host.faults"
let m_rx_dropped = Metrics.counter Metrics.default "host.rx_dropped"
let m_injected = Metrics.counter Metrics.default "host.misbehaviors_injected"

type misbehavior =
  | Lie_len of int          (* publish this length on the next RX message *)
  | Bad_index of int        (* publish this pool/descriptor index *)
  | Garbage_state of int    (* write this state word instead of FULL *)
  | Race_header of int      (* rewrite len when the guest reads the header *)
  | Corrupt_payload
  | Replay_slot             (* republish the previous message once more *)
  | Stall of int            (* stop servicing the device for n polls *)
  | Silent_drop of int      (* discard the next n delivered RX frames *)
  | Ring_freeze of int      (* keep draining TX but withhold RX for n polls *)

type stats = {
  mutable tx_forwarded : int;
  mutable rx_injected : int;
  mutable faults : int;  (* host accesses refused by memory protection *)
  mutable rx_dropped : int;  (* frames silently discarded (Silent_drop) *)
}

type t = {
  mutable driver_tx : Ring.t;  (* we consume *)
  mutable driver_rx : Ring.t;  (* we produce *)
  transmit : bytes -> unit;
  pool : Bufpool.t;  (* staging buffers for pending RX frames *)
  pending_rx : bytes Queue.t;
  mutable misbehaviors : misbehavior list;
  mutable last_frame : bytes option;
  (* Modal faults: unlike the one-shot header sabotage, these describe a
     host *condition* that persists for a counted number of polls/frames.
     A stalled or frozen host is indistinguishable from a dead one to the
     guest, which is exactly what the driver watchdog must handle. *)
  mutable stall_polls : int;
  mutable freeze_polls : int;
  mutable drop_frames : int;
  (* Service rate: frames serviced per poll, per direction. [None] means
     unbounded (the classic model). A finite quota makes the host a
     bottleneck without making it hostile — the saturation knob the
     overload experiments turn. *)
  mutable service_quota : int option;
  stats : stats;
}

let create ~(driver : Driver.t) ~transmit =
  {
    driver_tx = Driver.tx_ring driver;
    driver_rx = Driver.rx_ring driver;
    transmit;
    pool = Bufpool.create ();
    pending_rx = Queue.create ();
    misbehaviors = [];
    last_frame = None;
    stall_polls = 0;
    freeze_polls = 0;
    drop_frames = 0;
    service_quota = None;
    stats = { tx_forwarded = 0; rx_injected = 0; faults = 0; rx_dropped = 0 };
  }

let set_service_quota t q = t.service_quota <- q

(* After a hot swap the old rings are revoked; the host re-attaches to the
   new instance (in deployment: the hypervisor maps the new device). *)
let reattach t ~(driver : Driver.t) =
  t.driver_tx <- Driver.tx_ring driver;
  t.driver_rx <- Driver.rx_ring driver

let stats t = t.stats

let misbehavior_name = function
  | Lie_len _ -> "lie-len"
  | Bad_index _ -> "bad-index"
  | Garbage_state _ -> "garbage-state"
  | Race_header _ -> "race-header"
  | Corrupt_payload -> "corrupt-payload"
  | Replay_slot -> "replay-slot"
  | Stall _ -> "stall"
  | Silent_drop _ -> "silent-drop"
  | Ring_freeze _ -> "ring-freeze"

let inject t m =
  Metrics.inc m_injected;
  if Trace.on () then
    Trace.instant ~cat:Kind.l2 ("host-" ^ misbehavior_name m);
  match m with
  | Stall n -> t.stall_polls <- t.stall_polls + max 0 n
  | Silent_drop n -> t.drop_frames <- t.drop_frames + max 0 n
  | Ring_freeze n -> t.freeze_polls <- t.freeze_polls + max 0 n
  | _ -> t.misbehaviors <- t.misbehaviors @ [ m ]

let stalled t = t.stall_polls > 0
let frozen t = t.freeze_polls > 0

let take t pred =
  let rec go acc = function
    | [] -> None
    | m :: rest when pred m ->
        t.misbehaviors <- List.rev_append acc rest;
        Some m
    | m :: rest -> go (m :: acc) rest
  in
  go [] t.misbehaviors

let deliver_rx t frame =
  (* Zero-length frames are meaningless on the ring (and rejected by it);
     a real device would not generate them either. The staging copy comes
     from the host's pool so steady-state forwarding reuses buffers. *)
  if Bytes.length frame > 0 then begin
    let len = Bytes.length frame in
    let copy = Bufpool.acquire t.pool len in
    Bytes.blit frame 0 copy 0 len;
    Queue.add copy t.pending_rx
  end

(* Post-produce header corruption for the attack experiments: the honest
   produce path wrote a well-formed slot; the hostile host then scribbles
   over the shared words. All writes go through the Host actor, so memory
   protection and the region log both apply. *)
let sabotage t =
  (* Apply at most one header corruption per produced slot, so queued
     misbehaviours land on successive messages rather than piling onto
     the same slot. *)
  let ring = t.driver_rx in
  let region = Ring.region ring in
  let last_slot () = ((Ring.counters ring).Ring.produced - 1) land (Ring.slots ring - 1) in
  let applied = ref false in
  let try_take pred f =
    if not !applied then begin
      match take t pred with
      | Some m ->
          applied := true;
          f m
      | None -> ()
    end
  in
  try_take
    (function Lie_len _ -> true | _ -> false)
    (function
      | Lie_len v -> Region.write_u32 region Host ~off:(Ring.header_offset ring (last_slot ()) + 4) v
      | _ -> ());
  try_take
    (function Bad_index _ -> true | _ -> false)
    (function
      | Bad_index v -> Region.write_u32 region Host ~off:(Ring.header_offset ring (last_slot ()) + 8) v
      | _ -> ());
  try_take
    (function Garbage_state _ -> true | _ -> false)
    (function
      | Garbage_state v -> Region.write_u32 region Host ~off:(Ring.header_offset ring (last_slot ())) v
      | _ -> ());
  try_take
    (function Race_header _ -> true | _ -> false)
    (function
      | Race_header v ->
          (* Rewrite the len field the instant the guest touches the
             header. The guest's single 16-byte fetch has already captured
             the honest words by then, so by construction there is no
             second fetch for the lie to reach. *)
          let target = Ring.header_offset ring (last_slot ()) in
          Region.set_guest_read_hook region
            (Some
               (fun ~off ~len:_ ->
                 if off = target then begin
                   Region.set_guest_read_hook region None;
                   Region.write_u32 region Host ~off:(target + 4) v
                 end))
      | _ -> ())

let poll t =
  if t.stall_polls > 0 then
    (* A stalled host services nothing: TX backs up, RX starves. The
       guest-side watchdog is the only way out — the stateless interface
       means its reset loses nothing the transport cannot replay. *)
    t.stall_polls <- t.stall_polls - 1
  else begin
  let quota = match t.service_quota with Some q -> max 0 q | None -> max_int in
  let tx_left = ref quota in
  let rx_left = ref quota in
  (* TX direction: drain the guest's ring in bursts and forward in FIFO
     order, up to the service quota. A fault mid-burst (revoked pages,
     e.g. a hot swap racing the drain) loses the in-flight batch, exactly
     like a cable pull. *)
  let rec drain_tx () =
    let k = min 64 !tx_left in
    if k > 0 then
      match Ring.try_consume_burst ~max:k t.driver_tx with
      | [] -> ()
      | frames ->
          tx_left := !tx_left - List.length frames;
          List.iter
            (fun frame ->
              t.stats.tx_forwarded <- t.stats.tx_forwarded + 1;
              Metrics.inc m_tx_forwarded;
              t.transmit frame)
            frames;
          drain_tx ()
      | exception Region.Fault _ ->
          t.stats.faults <- t.stats.faults + 1;
          Metrics.inc m_faults;
          if Trace.on () then Trace.instant ~cat:Kind.l2 "host-fault"
  in
  drain_tx ();
  (* RX direction: push pending frames into the guest's RX ring. *)
  let rec fill_rx () =
    if t.drop_frames > 0 && not (Queue.is_empty t.pending_rx) then begin
      (* Silent drop: the frame vanishes without any ring activity, as if
         the wire had eaten it. Nothing to detect at L2; TCP's timers own
         this failure. *)
      ignore (Queue.take t.pending_rx);
      t.drop_frames <- t.drop_frames - 1;
      t.stats.rx_dropped <- t.stats.rx_dropped + 1;
      Metrics.inc m_rx_dropped;
      if Trace.on () then Trace.instant ~cat:Kind.l2 "host-rx-drop";
      fill_rx ()
    end
    else if (not (Queue.is_empty t.pending_rx)) && !rx_left > 0 then begin
      let frame = Queue.peek t.pending_rx in
      let frame =
        match take t (function Corrupt_payload -> true | _ -> false) with
        | Some Corrupt_payload ->
            let f = Bytes.copy frame in
            if Bytes.length f > 0 then
              Bytes.set f 0 (Char.chr (Char.code (Bytes.get f 0) lxor 0xFF));
            f
        | _ -> frame
      in
      match Ring.try_produce t.driver_rx frame with
      | true ->
          ignore (Queue.take t.pending_rx);
          rx_left := !rx_left - 1;
          t.stats.rx_injected <- t.stats.rx_injected + 1;
          Metrics.inc m_rx_injected;
          t.last_frame <- Some frame;
          sabotage t;
          (match take t (function Replay_slot -> true | _ -> false) with
          | Some Replay_slot ->
              (* Republish the same payload: a temporal attack. The safe
                 ring makes this indistinguishable from the host licitly
                 delivering the same bytes twice — exactly the paper's
                 point that L2 cannot and need not stop replays; the L5
                 record layer must (and does, see cio_tls tests). *)
              ignore (Ring.try_produce t.driver_rx frame)
          | _ -> ());
          fill_rx ()
      | false -> ()
      | exception Region.Fault _ ->
          t.stats.faults <- t.stats.faults + 1;
          Metrics.inc m_faults;
          if Trace.on () then Trace.instant ~cat:Kind.l2 "host-fault";
          ignore (Queue.take t.pending_rx)
    end
  in
  (* Fast path: no misbehaviour pending and the whole region shared means
     burst produce cannot take a per-frame detour (corruption, sabotage,
     replay) or fault slot-by-slot; inject whole batches and recycle the
     staging buffers the ring has already copied out. [last_frame] keeps
     the newest buffer un-recycled because a later slow-path replay may
     republish it. *)
  let rec fill_rx_burst () =
    let k = min (min 64 !rx_left) (Queue.length t.pending_rx) in
    if k > 0 then begin
      let frames = Array.init k (fun _ -> Queue.take t.pending_rx) in
      match Ring.try_produce_burst t.driver_rx frames with
      | n ->
          if n > 0 then begin
            rx_left := !rx_left - n;
            t.stats.rx_injected <- t.stats.rx_injected + n;
            Metrics.add m_rx_injected n;
            for i = 0 to n - 2 do
              Bufpool.recycle t.pool frames.(i)
            done;
            t.last_frame <- Some frames.(n - 1)
          end;
          if n < k then begin
            (* Ring full: put the unproduced tail back at the head. *)
            let leftovers = Queue.create () in
            for i = n to k - 1 do
              Queue.add frames.(i) leftovers
            done;
            Queue.transfer t.pending_rx leftovers;
            Queue.transfer leftovers t.pending_rx
          end
          else fill_rx_burst ()
      | exception Region.Fault _ ->
          t.stats.faults <- t.stats.faults + 1;
          Metrics.inc m_faults;
          if Trace.on () then Trace.instant ~cat:Kind.l2 "host-fault"
    end
  in
  if t.freeze_polls > 0 then
    (* Ring freeze: the host still drains TX (the guest sees forward
       progress on sends) but the RX ring goes quiet — a one-directional
       stall that only an RX-aware watchdog deadline catches. *)
    t.freeze_polls <- t.freeze_polls - 1
  else begin
    let region = Ring.region t.driver_rx in
    if
      t.misbehaviors = [] && t.drop_frames = 0
      && Region.range_shared region 0 (Region.size region)
    then fill_rx_burst ()
    else fill_rx ()
  end
  end

let pending_rx_count t = Queue.length t.pending_rx
