(** Driver watchdog: poll-budget deadlines per ring direction, exponential
    backoff, and automatic generation-bumping reset ({!Driver.hot_swap})
    when the host stops servicing the device. *)

type t

val create :
  ?poll_budget:int ->
  ?max_backoff:int ->
  ?recovery:Cio_observe.Recovery.t ->
  ?on_reset:(unit -> unit) ->
  ?breaker:Cio_overload.Breaker.t ->
  ?retry_budget:Cio_overload.Retry_budget.t ->
  Driver.t ->
  t
(** [poll_budget] is the deadline in observation ticks without progress
    (default 2048); [max_backoff] caps the exponential budget multiplier
    (default 32). [on_reset] runs after each {!Driver.hot_swap} — in the
    simulator it re-attaches the host model; in deployment the host
    notices the generation bump itself.

    With [breaker], deadline trips and ring-full windows are recorded as
    host-health failures, progress as success, and resets are skipped
    while the breaker is Open (counted as [overload.watchdog.skipped]).
    With [retry_budget], each reset spends a retry token; an exhausted
    budget defers the reset ([overload.watchdog.deferred]). Neither
    changes the backoff multiplier's monotone-doubling behaviour. *)

val tick : ?expecting_rx:bool -> t -> unit
(** One observation per driver poll quantum. The TX deadline arms itself
    whenever produced-but-unconsumed TX frames exist; the RX deadline only
    counts while [expecting_rx] (the caller knows a response is owed). *)

val stalls_detected : t -> int
val resets : t -> int

val current_backoff : t -> int
(** Current budget multiplier (1 after any progress). *)

val budget : t -> int
(** Effective deadline in ticks, i.e. poll budget x current backoff. *)
