(** Guest-side cionet driver: builds the shared region (config page + two
    safe rings) and exposes the polling netif. *)

open Cio_util
open Cio_mem

type t

val create :
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  ?host_meter:Cost.meter ->
  name:string ->
  Config.t ->
  t

val region : t -> Region.t
val config : t -> Config.t
val tx_ring : t -> Ring.t
val rx_ring : t -> Ring.t
val host_meter : t -> Cost.meter
val guest_meter : t -> Cost.meter
val tx_frames : t -> int
val rx_frames : t -> int

val generation : t -> int
(** Device generation; bumped by {!hot_swap}. *)

val hot_swap : t -> unit
(** Replace the device instance wholesale (live migration by hot swap,
    §3.2): the zero-negotiation interface has no state to transfer. The
    old region is fully revoked from the host; in-flight frames are lost
    like a cable pull and the upper layers recover. The host must
    re-attach (see {!Host_model.reattach}). *)

val transmit : t -> bytes -> bool
val poll : t -> bytes option

val transmit_ex : t -> bytes -> Cio_overload.Pressure.outcome
(** Typed transmit: [Backpressure Ring_full] when the TX ring has no
    EMPTY slot (also counted as [overload.bp.ring_full]). [transmit] is
    the boolean shim over this. *)

val transmit_burst_ex : t -> bytes array -> int * Cio_overload.Pressure.outcome
(** Burst transmit with a typed tail outcome: [(n, Accepted)] when the
    whole batch was placed, [(n, Backpressure Ring_full)] when the ring
    filled after [n] frames. *)

val tx_occupancy : t -> int
(** TX-ring slots in flight (guest-private cursors; host-independent). *)

val tx_pressure : t -> Cio_overload.Pressure.level
(** TX-ring occupancy mapped to Nominal/Soft/Hard. *)

val transmit_burst : t -> bytes array -> int
(** Place up to a whole batch in one ring crossing with at most one
    doorbell (coalesced under [use_notifications]); returns how many
    frames went in. Short frames are padded via pool buffers when
    [pad_frames] is set — no per-frame allocation in steady state. *)

val poll_burst : ?max:int -> t -> bytes list
(** Drain up to [max] (default 64) RX frames in one crossing, FIFO. In
    [Revoke] mode the contiguous run is revoked under a single shootdown
    and released before returning; every buffer is an owned snapshot. *)

val recycle : t -> bytes -> unit
(** Return a frame buffer handed out by {!poll}/{!poll_burst} to the
    driver's pool once the caller is done with it. *)

val pool : t -> Cio_mem.Bufpool.t
(** The driver's RX/staging buffer pool (stable across hot swaps). *)

val poll_zero_copy : t -> Ring.zero_copy option
(** Revocation receive that keeps the slot until [release] (for callers
    that can consume in place). *)

val to_netif : t -> Cio_tcpip.Netif.t
