(* Guest-side cionet driver: the confidential unit's end of the safe L2
   interface. Builds the shared region (config page + TX ring + RX ring),
   exposes the polling netif the in-TEE stack plugs into, and implements
   the two receive strategies (early copy vs page revocation). *)

open Cio_util
open Cio_mem
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind = Cio_telemetry.Kind

let m_tx = Metrics.counter Metrics.default "driver.tx_frames"
let m_rx = Metrics.counter Metrics.default "driver.rx_frames"
let m_kicks = Metrics.counter Metrics.default "driver.doorbells"
let m_kicks_coalesced = Metrics.counter Metrics.default "driver.doorbells_coalesced"
let m_batch_depth = Metrics.histogram Metrics.default "batch.depth"
let m_swaps = Metrics.counter Metrics.default "driver.hot_swaps"

type instance = {
  region : Region.t;
  tx : Ring.t;   (* guest produces *)
  rx : Ring.t;   (* host produces *)
}

type t = {
  config : Config.t;
  mutable inst : instance;
  meter : Cost.meter;     (* guest meter, stable across hot swaps *)
  host_meter : Cost.meter;
  model : Cost.model;
  name : string;
  mutable generation : int;  (* bumped on every hot swap *)
  mutable tx_frames : int;
  mutable rx_frames : int;
  pool : Bufpool.t;       (* RX buffer recycling; stable across hot swaps *)
  pad_scratch : bytes option;  (* preallocated pad buffer (pad_frames only) *)
}

let config_bytes = 64

(* The immutable config page at offset 0: MAC, MTU, geometry. Written once
   by the guest at boot; the host reads it once at attach. No field ever
   changes afterwards. *)
let write_config region (c : Config.t) =
  let b = Bytes.make config_bytes '\000' in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr (Cio_frame.Addr.mac_octet c.Config.mac i))
  done;
  Bytes.set_uint16_le b 6 c.Config.mtu;
  Bytes.set_uint16_le b 8 c.Config.ring_slots;
  Bytes.set b 10 (if c.Config.checksum_offload then '\001' else '\000');
  Bytes.set b 11 (if c.Config.use_notifications then '\001' else '\000');
  Region.guest_write region ~off:0 b

let make_instance ~model ~meter ~host_meter ~name (config : Config.t) =
  let page = 4096 in
  let lay = Ring.layout ~page_size:page ~slots:config.Config.ring_slots config.Config.positioning in
  let tx_base = page in
  let rx_base = Bitops.align_up (tx_base + lay.Ring.total) ~align:page in
  let total = Bitops.align_up (rx_base + lay.Ring.total) ~align:page in
  let region = Region.create ~meter ~model ~page_size:page ~prot:Region.Shared ~name total in
  write_config region config;
  let tx =
    Ring.create ~region ~base:tx_base ~slots:config.Config.ring_slots
      ~positioning:config.Config.positioning ~producer:Region.Guest ~host_meter
  in
  let rx =
    Ring.create ~region ~base:rx_base ~slots:config.Config.ring_slots
      ~positioning:config.Config.positioning ~producer:Region.Host ~host_meter
  in
  { region; tx; rx }

let create ?(model = Cost.default) ?meter ?host_meter ~name (config : Config.t) =
  let meter = match meter with Some m -> m | None -> Cost.meter () in
  let host_meter = match host_meter with Some m -> m | None -> Cost.meter () in
  let inst = make_instance ~model ~meter ~host_meter ~name config in
  {
    config;
    inst;
    meter;
    host_meter;
    model;
    name;
    generation = 0;
    tx_frames = 0;
    rx_frames = 0;
    pool = Bufpool.create ();
    pad_scratch =
      (if config.Config.pad_frames then Some (Bytes.create (config.Config.mtu + 14))
       else None);
  }

let region t = t.inst.region
let config t = t.config
let tx_ring t = t.inst.tx
let rx_ring t = t.inst.rx
let host_meter t = t.host_meter
let guest_meter t = t.meter
let tx_frames t = t.tx_frames
let rx_frames t = t.rx_frames
let generation t = t.generation

(* Hot swap: replace the entire device instance with a fresh one — the
   §3.2 answer to live migration. Because the interface is stateless and
   zero-negotiation, there is nothing to transfer: no feature bits, no
   in-flight descriptor state, no sequence numbers. In-flight *frames*
   are lost, exactly like a cable pull, and TCP/L5 recover; the old
   region is revoked from the host wholesale so nothing lingers shared
   after migration. *)
let hot_swap t =
  if Trace.on () then Trace.span_begin ~cat:Kind.l2 "hot-swap";
  Region.unshare_range t.inst.region ~off:0 ~len:(Region.size t.inst.region);
  t.generation <- t.generation + 1;
  t.inst <-
    make_instance ~model:t.model ~meter:t.meter ~host_meter:t.host_meter
      ~name:(Printf.sprintf "%s-gen%d" t.name t.generation)
      t.config;
  Metrics.inc m_swaps;
  if Trace.on () then Trace.span_end ~cat:Kind.l2 "hot-swap"

(* One doorbell covers [n] produced frames: the kick is stateless and
   idempotent ("look at the ring"), so coalescing is free of protocol
   state — the host drains everything it finds regardless of how many
   kicks arrived. *)
let kick t n =
  if n > 0 && t.config.Config.use_notifications then begin
    Cost.charge (guest_meter t) Cost.Notification t.model.Cost.notification;
    Metrics.inc m_kicks;
    if n > 1 then Metrics.add m_kicks_coalesced (n - 1);
    if Trace.on () then Trace.instant ~cat:Kind.l2 Kind.kick
  end

(* Size padding: the host sees uniform frames. Receivers strip the
   padding via the IPv4 total-length field. The scratch buffer is safe to
   reuse because [try_produce] copies the payload into the region before
   returning. *)
let pad t frame =
  match t.pad_scratch with
  | Some scratch when Bytes.length frame < Bytes.length scratch ->
      let len = Bytes.length frame in
      Bytes.blit frame 0 scratch 0 len;
      Bytes.fill scratch len (Bytes.length scratch - len) '\000';
      scratch
  | _ -> frame

(* Backpressure surface: TX-ring occupancy, from the guest-private
   cursors (see Ring.occupancy). *)
let tx_occupancy t = Ring.occupancy t.inst.tx

let tx_pressure t =
  Cio_overload.Pressure.level_of_occupancy ~used:(Ring.occupancy t.inst.tx)
    ~capacity:(Ring.slots t.inst.tx)

(* Typed transmit: the ring refusing a frame is a signal, not a silent
   [false]. [transmit] below keeps the boolean shape for callers that
   predate the overload plane. *)
let transmit_ex t frame =
  let frame = pad t frame in
  let traced = Trace.on () in
  if traced then Trace.span_begin ~cat:Kind.l2 "tx";
  let ok = Ring.try_produce t.inst.tx frame in
  if ok then begin
    t.tx_frames <- t.tx_frames + 1;
    Metrics.inc m_tx;
    kick t 1
  end
  else Cio_overload.Pressure.note_ring_full ();
  if traced then Trace.span_end ~cat:Kind.l2 "tx";
  if ok then Cio_overload.Pressure.Accepted
  else Cio_overload.Pressure.(Backpressure Ring_full)

let transmit t frame =
  match transmit_ex t frame with
  | Cio_overload.Pressure.Accepted -> true
  | Cio_overload.Pressure.Backpressure _ -> false

(* Burst transmit: one ring crossing, one doorbell, for the whole batch.
   Padded short frames are staged in pool buffers (recycled immediately
   after the ring copies them out), so the burst path performs no
   per-frame allocation in steady state. Returns how many frames went
   in; the tail of the batch is the caller's to retry. *)
let transmit_burst t frames =
  let n_in = Array.length frames in
  if n_in = 0 then 0
  else begin
    let traced = Trace.on () in
    if traced then Trace.span_begin ~cat:Kind.l2 "tx-burst";
    let cap = t.config.Config.mtu + 14 in
    let staged =
      if not t.config.Config.pad_frames then frames
      else
        Array.map
          (fun frame ->
            if Bytes.length frame >= cap then frame
            else begin
              let padded = Bufpool.acquire t.pool cap in
              let len = Bytes.length frame in
              Bytes.blit frame 0 padded 0 len;
              Bytes.fill padded len (cap - len) '\000';
              padded
            end)
          frames
    in
    let n = Ring.try_produce_burst t.inst.tx staged in
    if t.config.Config.pad_frames then
      Array.iteri
        (fun i b -> if b != frames.(i) then Bufpool.recycle t.pool b)
        staged;
    if n > 0 then begin
      t.tx_frames <- t.tx_frames + n;
      Metrics.add m_tx n;
      Metrics.observe m_batch_depth n;
      kick t n
    end;
    if n < n_in then Cio_overload.Pressure.note_ring_full ();
    if traced then Trace.span_end ~cat:Kind.l2 "tx-burst";
    n
  end

(* Burst transmit with a typed tail outcome: [(n, Accepted)] when the
   whole batch went in, [(n, Backpressure Ring_full)] when the ring
   filled after [n] frames and the tail is the caller's to hold. *)
let transmit_burst_ex t frames =
  let n = transmit_burst t frames in
  if n < Array.length frames then
    (n, Cio_overload.Pressure.(Backpressure Ring_full))
  else (n, Cio_overload.Pressure.Accepted)

let got_rx t frame =
  t.rx_frames <- t.rx_frames + 1;
  Metrics.inc m_rx;
  if Trace.on () then
    Trace.instant ~arg:(Bytes.length frame) ~cat:Kind.l2 "rx-frame"

let poll t =
  match t.config.Config.rx_strategy with
  | Config.Copy_in ->
      let r = Ring.try_consume ~pool:t.pool t.inst.rx in
      (match r with Some f -> got_rx t f | None -> ());
      r
  | Config.Revoke -> (
      match Ring.try_consume_revoke ~pool:t.pool t.inst.rx with
      | None -> None
      | Some zc ->
          got_rx t zc.Ring.data;
          (* The netif contract hands out an owned buffer, so release the
             slot immediately; the data bytes were captured while the
             pages were private, which is the property that matters. *)
          zc.Ring.release ();
          Some zc.Ring.data)

(* Burst receive: drain up to [max] frames in one crossing. In [Revoke]
   mode the whole contiguous run is revoked with a single shootdown and
   released immediately — every returned buffer is a private snapshot. *)
let poll_burst ?(max = 64) t =
  let frames =
    match t.config.Config.rx_strategy with
    | Config.Copy_in -> Ring.try_consume_burst ~pool:t.pool ~max t.inst.rx
    | Config.Revoke -> (
        match Ring.try_consume_revoke_burst ~pool:t.pool ~max t.inst.rx with
        | None -> []
        | Some zcb ->
            zcb.Ring.release ();
            zcb.Ring.frames)
  in
  (match frames with
  | [] -> ()
  | _ ->
      Metrics.observe m_batch_depth (List.length frames);
      List.iter (fun f -> got_rx t f) frames);
  frames

let recycle t b = Bufpool.recycle t.pool b
let pool t = t.pool

let poll_zero_copy t =
  match Ring.try_consume_revoke t.inst.rx with
  | None -> None
  | Some zc ->
      got_rx t zc.Ring.data;
      Some zc

let to_netif t =
  {
    Cio_tcpip.Netif.mac = t.config.Config.mac;
    mtu = t.config.Config.mtu;
    transmit = (fun frame -> ignore (transmit t frame));
    poll = (fun () -> poll t);
  }
