(* Guest-side cionet driver: the confidential unit's end of the safe L2
   interface. Builds the shared region (config page + TX ring + RX ring),
   exposes the polling netif the in-TEE stack plugs into, and implements
   the two receive strategies (early copy vs page revocation). *)

open Cio_util
open Cio_mem
module Trace = Cio_telemetry.Trace
module Metrics = Cio_telemetry.Metrics
module Kind = Cio_telemetry.Kind

let m_tx = Metrics.counter Metrics.default "driver.tx_frames"
let m_rx = Metrics.counter Metrics.default "driver.rx_frames"
let m_kicks = Metrics.counter Metrics.default "driver.doorbells"
let m_swaps = Metrics.counter Metrics.default "driver.hot_swaps"

type instance = {
  region : Region.t;
  tx : Ring.t;   (* guest produces *)
  rx : Ring.t;   (* host produces *)
}

type t = {
  config : Config.t;
  mutable inst : instance;
  meter : Cost.meter;     (* guest meter, stable across hot swaps *)
  host_meter : Cost.meter;
  model : Cost.model;
  name : string;
  mutable generation : int;  (* bumped on every hot swap *)
  mutable tx_frames : int;
  mutable rx_frames : int;
}

let config_bytes = 64

(* The immutable config page at offset 0: MAC, MTU, geometry. Written once
   by the guest at boot; the host reads it once at attach. No field ever
   changes afterwards. *)
let write_config region (c : Config.t) =
  let b = Bytes.make config_bytes '\000' in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr (Cio_frame.Addr.mac_octet c.Config.mac i))
  done;
  Bytes.set_uint16_le b 6 c.Config.mtu;
  Bytes.set_uint16_le b 8 c.Config.ring_slots;
  Bytes.set b 10 (if c.Config.checksum_offload then '\001' else '\000');
  Bytes.set b 11 (if c.Config.use_notifications then '\001' else '\000');
  Region.guest_write region ~off:0 b

let make_instance ~model ~meter ~host_meter ~name (config : Config.t) =
  let page = 4096 in
  let lay = Ring.layout ~page_size:page ~slots:config.Config.ring_slots config.Config.positioning in
  let tx_base = page in
  let rx_base = Bitops.align_up (tx_base + lay.Ring.total) ~align:page in
  let total = Bitops.align_up (rx_base + lay.Ring.total) ~align:page in
  let region = Region.create ~meter ~model ~page_size:page ~prot:Region.Shared ~name total in
  write_config region config;
  let tx =
    Ring.create ~region ~base:tx_base ~slots:config.Config.ring_slots
      ~positioning:config.Config.positioning ~producer:Region.Guest ~host_meter
  in
  let rx =
    Ring.create ~region ~base:rx_base ~slots:config.Config.ring_slots
      ~positioning:config.Config.positioning ~producer:Region.Host ~host_meter
  in
  { region; tx; rx }

let create ?(model = Cost.default) ?meter ?host_meter ~name (config : Config.t) =
  let meter = match meter with Some m -> m | None -> Cost.meter () in
  let host_meter = match host_meter with Some m -> m | None -> Cost.meter () in
  let inst = make_instance ~model ~meter ~host_meter ~name config in
  {
    config;
    inst;
    meter;
    host_meter;
    model;
    name;
    generation = 0;
    tx_frames = 0;
    rx_frames = 0;
  }

let region t = t.inst.region
let config t = t.config
let tx_ring t = t.inst.tx
let rx_ring t = t.inst.rx
let host_meter t = t.host_meter
let guest_meter t = t.meter
let tx_frames t = t.tx_frames
let rx_frames t = t.rx_frames
let generation t = t.generation

(* Hot swap: replace the entire device instance with a fresh one — the
   §3.2 answer to live migration. Because the interface is stateless and
   zero-negotiation, there is nothing to transfer: no feature bits, no
   in-flight descriptor state, no sequence numbers. In-flight *frames*
   are lost, exactly like a cable pull, and TCP/L5 recover; the old
   region is revoked from the host wholesale so nothing lingers shared
   after migration. *)
let hot_swap t =
  if Trace.on () then Trace.span_begin ~cat:Kind.l2 "hot-swap";
  Region.unshare_range t.inst.region ~off:0 ~len:(Region.size t.inst.region);
  t.generation <- t.generation + 1;
  t.inst <-
    make_instance ~model:t.model ~meter:t.meter ~host_meter:t.host_meter
      ~name:(Printf.sprintf "%s-gen%d" t.name t.generation)
      t.config;
  Metrics.inc m_swaps;
  if Trace.on () then Trace.span_end ~cat:Kind.l2 "hot-swap"

let transmit t frame =
  let frame =
    if t.config.Config.pad_frames && Bytes.length frame < t.config.Config.mtu + 14 then begin
      (* Size padding: the host sees uniform frames. Receivers strip the
         padding via the IPv4 total-length field. *)
      let padded = Bytes.make (t.config.Config.mtu + 14) '\000' in
      Bytes.blit frame 0 padded 0 (Bytes.length frame);
      padded
    end
    else frame
  in
  let traced = Trace.on () in
  if traced then Trace.span_begin ~cat:Kind.l2 "tx";
  let ok = Ring.try_produce t.inst.tx frame in
  if ok then begin
    t.tx_frames <- t.tx_frames + 1;
    Metrics.inc m_tx;
    if t.config.Config.use_notifications then begin
      (* Optional doorbell for E11: stateless and idempotent — it carries
         no data, only "look at the ring". *)
      Cost.charge (guest_meter t) Cost.Notification t.model.Cost.notification;
      Metrics.inc m_kicks;
      if traced then Trace.instant ~cat:Kind.l2 Kind.kick
    end
  end;
  if traced then Trace.span_end ~cat:Kind.l2 "tx";
  ok

let got_rx t frame =
  t.rx_frames <- t.rx_frames + 1;
  Metrics.inc m_rx;
  if Trace.on () then
    Trace.instant ~arg:(Bytes.length frame) ~cat:Kind.l2 "rx-frame"

let poll t =
  match t.config.Config.rx_strategy with
  | Config.Copy_in ->
      let r = Ring.try_consume t.inst.rx in
      (match r with Some f -> got_rx t f | None -> ());
      r
  | Config.Revoke -> (
      match Ring.try_consume_revoke t.inst.rx with
      | None -> None
      | Some zc ->
          got_rx t zc.Ring.data;
          (* The netif contract hands out an owned buffer, so release the
             slot immediately; the data bytes were captured while the
             pages were private, which is the property that matters. *)
          zc.Ring.release ();
          Some zc.Ring.data)

let poll_zero_copy t =
  match Ring.try_consume_revoke t.inst.rx with
  | None -> None
  | Some zc ->
      got_rx t zc.Ring.data;
      Some zc

let to_netif t =
  {
    Cio_tcpip.Netif.mac = t.config.Config.mac;
    mtu = t.config.Config.mtu;
    transmit = (fun frame -> ignore (transmit t frame));
    poll = (fun () -> poll t);
  }
