(** Experiment registry: every paper figure (fig2-fig5), §3 exploration
    and extension (e1-e22), each printing the rows/series it reports. *)

val all : (string * string * (Format.formatter -> unit -> unit)) list
(** (id, title, run). *)

val find : string -> (string * string * (Format.formatter -> unit -> unit)) option

val run_one : Format.formatter -> string -> bool
(** [false] if the id is unknown. *)

val run_all : Format.formatter -> unit -> unit
