(* Experiment harness: one entry per paper figure (F2-F5) and per §3
   exploration (E1-E11). Each prints the rows/series the corresponding
   figure reports; EXPERIMENTS.md records the paper-vs-measured
   comparison. All runs are deterministic (fixed seeds). *)

open Cio_util
open Cio_core
module C = Configurations
module Trace = Cio_telemetry.Trace
module Kind_ = Cio_telemetry.Kind

let fp = Format.fprintf

(* --- F2: remotely exploitable /net CVEs per year ---------------------- *)

let fig2 ppf () =
  let open Cio_data in
  fp ppf "Figure 2: remotely-exploitable CVEs in Linux /net per year@.";
  List.iter (fun row -> fp ppf "  %a@." Cve_net.pp_row row) Cve_net.series;
  fp ppf "  total=%d  mean/yr=%.1f  peak=%d (%d)  trend slope=%+.2f CVEs/yr@."
    (Cve_net.total ()) (Cve_net.mean_per_year ()) (Cve_net.peak ()).Cve_net.count
    (Cve_net.peak ()).Cve_net.year (Cve_net.trend_slope ());
  fp ppf "  shape: CVEs in %d/%d years; the subsystem never converges to safety.@."
    (Cve_net.years_with_cves ()) (Cve_net.years_covered ())

(* --- F3/F4: hardening-commit distributions ---------------------------- *)

let hardening_figure ppf subsystem =
  let open Cio_data in
  List.iter
    (fun (cat, n) ->
      fp ppf "  %-18s %-22s %2d  (%4.1f%%)@." (Hardening.category_name cat) (String.make n '#') n
        (Hardening.percentage subsystem cat))
    (Hardening.distribution subsystem);
  fp ppf "  total hardening commits: %d; amend/revert: %d (%.0f%%), of which %d never re-applied@."
    (Hardening.total subsystem) (Hardening.amend_count subsystem)
    (100.0 *. Hardening.amend_rate subsystem)
    (Hardening.revert_count subsystem)

let fig3 ppf () =
  fp ppf "Figure 3: hardening commits to the NetVSC driver, by category@.";
  hardening_figure ppf Cio_data.Hardening.Netvsc

let fig4 ppf () =
  fp ppf "Figure 4: hardening commits to the VirtIO driver family, by category@.";
  hardening_figure ppf Cio_data.Hardening.Virtio

(* --- F5: the design space --------------------------------------------- *)

let fig5_runs () =
  List.map (fun kind -> (kind, C.run_echo ~messages:40 ~msg_size:1024 kind)) C.all_kinds

let fig5 ppf () =
  fp ppf "Figure 5: security (TCB, observability) vs performance@.";
  fp ppf "  workload: 40 x 1 KiB echo round trips, identical substrate@.";
  fp ppf "  %-16s %10s %9s %9s %12s %11s@." "config" "cycles/B" "obs-score" "obs-kinds"
    "coreTCB(LoC)" "quarantined";
  let runs = fig5_runs () in
  List.iter
    (fun (kind, m) ->
      fp ppf "  %-16s %10.1f %9.2f %9d %12d %11d%s@." (C.kind_name kind) (C.cycles_per_byte m)
        (Cio_observe.Observe.score m.C.tap)
        (Cio_observe.Observe.kinds m.C.tap)
        m.C.tcb_core_loc m.C.tcb_quarantined_loc
        (if m.C.completed then "" else "  [INCOMPLETE]"))
    runs;
  fp ppf "  shape: dual-boundary = fastest datapath, small core TCB, network-level@.";
  fp ppf "  observability; syscall designs leak the most metadata; the tunnel hides@.";
  fp ppf "  the most and pays for it; hardening costs the legacy transport throughput.@."

(* --- E1: data positioning --------------------------------------------- *)

let raw_ring_cost ~positioning ~msg_size ~count =
  let cfg =
    { Cio_cionet.Config.default with Cio_cionet.Config.positioning; ring_slots = 64 }
  in
  let drv = Cio_cionet.Driver.create ~name:"e1" cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let payload = Bytes.make msg_size 'e' in
  let m = Cio_cionet.Driver.guest_meter drv in
  let before = Cost.snapshot m in
  for _ = 1 to count do
    ignore (Cio_cionet.Driver.transmit drv payload);
    Cio_cionet.Host_model.poll host;
    Cio_cionet.Host_model.deliver_rx host payload;
    Cio_cionet.Host_model.poll host;
    ignore (Cio_cionet.Driver.poll drv)
  done;
  let d = Cost.diff ~before ~after:(Cost.snapshot m) in
  float_of_int (Cost.total d) /. float_of_int count

let e1 ppf () =
  fp ppf "E1: data positioning (guest cycles per TX+RX message pair)@.";
  let sizes = [ 64; 256; 1024; 2048 ] in
  let variants =
    [
      ("inline", Cio_cionet.Config.Inline { data_capacity = 2048 });
      ("pool", Cio_cionet.Config.Pool { pool_slots = 128; pool_slot_size = 2048 });
      ("indirect", Cio_cionet.Config.Indirect { desc_count = 128; pool_slots = 128; pool_slot_size = 2048 });
    ]
  in
  fp ppf "  %-10s" "size(B)";
  List.iter (fun (name, _) -> fp ppf " %10s" name) variants;
  fp ppf "@.";
  List.iter
    (fun size ->
      fp ppf "  %-10d" size;
      List.iter
        (fun (_, positioning) -> fp ppf " %10.0f" (raw_ring_cost ~positioning ~msg_size:size ~count:64))
        variants;
      fp ppf "@.")
    sizes;
  fp ppf "  shape: inline cheapest (no indirection); indirect pays an extra shared@.";
  fp ppf "  fetch + mask per message; pool sits between.@."

(* --- E2: revocation vs copy crossover --------------------------------- *)

let rx_cost ?(model = Cost.default) ~strategy ~msg_size ~count () =
  let capacity = max 4096 (Bitops.next_power_of_two msg_size) in
  let cfg =
    {
      Cio_cionet.Config.default with
      Cio_cionet.Config.positioning = Cio_cionet.Config.Inline { data_capacity = capacity };
      rx_strategy = strategy;
      ring_slots = 16;
    }
  in
  let drv = Cio_cionet.Driver.create ~model ~name:"e2" cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let payload = Bytes.make msg_size 'r' in
  let m = Cio_cionet.Driver.guest_meter drv in
  let before = Cost.snapshot m in
  for _ = 1 to count do
    Cio_cionet.Host_model.deliver_rx host payload;
    Cio_cionet.Host_model.poll host;
    ignore (Cio_cionet.Driver.poll drv)
  done;
  let d = Cost.diff ~before ~after:(Cost.snapshot m) in
  float_of_int (Cost.total d) /. float_of_int count

let e2 ppf () =
  fp ppf "E2: receive strategy — early copy vs page revocation (cycles/message)@.";
  fp ppf "  %-10s %10s %10s %s@." "size(B)" "copy" "revoke" "winner";
  let crossover = ref None in
  List.iter
    (fun size ->
      let copy = rx_cost ~strategy:Cio_cionet.Config.Copy_in ~msg_size:size ~count:32 () in
      let revoke = rx_cost ~strategy:Cio_cionet.Config.Revoke ~msg_size:size ~count:32 () in
      if revoke < copy && !crossover = None then crossover := Some size;
      fp ppf "  %-10d %10.0f %10.0f %s@." size copy revoke
        (if copy <= revoke then "copy" else "REVOKE"))
    [ 256; 1024; 4096; 8192; 16384; 32768; 65536 ];
  (match !crossover with
  | Some s -> fp ppf "  crossover: revocation wins from ~%d B (batched shootdowns amortise).@." s
  | None -> fp ppf "  no crossover in range (copy wins throughout).@.");
  fp ppf "  shape: copies win for packet-sized messages; revocation wins for large@.";
  fp ppf "  (multi-page) transfers — matching the paper's expectation that this is@.";
  fp ppf "  a size-dependent design choice.@.";
  (* End-to-end addendum: the same copy-vs-revoke choice, but measured
     through the full dual-boundary unit (TLS at L5, quarantined stack,
     cionet at L2) rather than against a bare ring. This is where the
     strategy's cost actually lands in the proposed design — and a traced
     run of it crosses both boundaries. *)
  fp ppf "  end-to-end (dual-boundary echo, 8 x 1 KiB):@.";
  List.iter
    (fun (label, strategy) ->
      let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.rx_strategy = strategy } in
      let m = C.run_echo ~seed:7L ~messages:8 ~msg_size:1024 ~cionet_config:cfg C.Dual_boundary in
      fp ppf "    %-8s %s, %.1f cycles/B, %d L5 crossings@." label
        (if m.C.completed then "completed" else "DID NOT COMPLETE")
        (C.cycles_per_byte m) m.C.crossings)
    [ ("copy", Cio_cionet.Config.Copy_in); ("revoke", Cio_cionet.Config.Revoke) ]

(* --- E3: hardening tax at the transport ------------------------------- *)

let virtio_frame_cost ~hardened ~count =
  let transport = Cio_virtio.Transport.create ~name:"e3" () in
  let dev =
    Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx transport)
      ~tx:(Cio_virtio.Transport.tx transport) ~transmit:(fun _ -> ())
  in
  let m = Cio_mem.Region.meter (Cio_virtio.Transport.region transport) in
  let payload = Bytes.make 1500 'f' in
  if hardened then begin
    let drv = Cio_virtio.Driver_hardened.create transport in
    let before = Cost.snapshot m in
    for _ = 1 to count do
      ignore (Cio_virtio.Driver_hardened.transmit drv payload);
      Cio_virtio.Device.deliver_rx dev payload;
      Cio_virtio.Device.poll dev;
      ignore (Cio_virtio.Driver_hardened.poll drv)
    done;
    Cost.diff ~before ~after:(Cost.snapshot m)
  end
  else begin
    let drv = Cio_virtio.Driver_unhardened.create transport in
    let before = Cost.snapshot m in
    for _ = 1 to count do
      ignore (Cio_virtio.Driver_unhardened.transmit drv payload);
      Cio_virtio.Device.deliver_rx dev payload;
      Cio_virtio.Device.poll dev;
      ignore (Cio_virtio.Driver_unhardened.poll drv)
    done;
    Cost.diff ~before ~after:(Cost.snapshot m)
  end

let cionet_frame_cost ~count =
  let drv = Cio_cionet.Driver.create ~name:"e3c" Cio_cionet.Config.default in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let m = Cio_cionet.Driver.guest_meter drv in
  let payload = Bytes.make 1500 'f' in
  let before = Cost.snapshot m in
  for _ = 1 to count do
    ignore (Cio_cionet.Driver.transmit drv payload);
    Cio_cionet.Host_model.poll host;
    Cio_cionet.Host_model.deliver_rx host payload;
    Cio_cionet.Host_model.poll host;
    ignore (Cio_cionet.Driver.poll drv)
  done;
  Cost.diff ~before ~after:(Cost.snapshot m)

let e3 ppf () =
  fp ppf "E3: the hardening tax (guest cycles per 1500 B TX+RX pair)@.";
  let count = 64 in
  let rows =
    [
      ("virtio-unhardened", virtio_frame_cost ~hardened:false ~count);
      ("virtio-hardened", virtio_frame_cost ~hardened:true ~count);
      ("cionet (this work)", cionet_frame_cost ~count);
    ]
  in
  fp ppf "  %-20s %10s   breakdown@." "transport" "cyc/frame";
  List.iter
    (fun (name, d) ->
      fp ppf "  %-20s %10.0f   %a@." name
        (float_of_int (Cost.total d) /. float_of_int count)
        Cost.pp_meter d)
    rows;
  fp ppf "  shape: retrofitted hardening pays checks + systematic copies on the@.";
  fp ppf "  legacy transport; the from-scratch interface is safe *and* cheaper than@.";
  fp ppf "  both (no notifications, one early copy, masked accesses).@."

(* --- E4: attack resilience matrix -------------------------------------- *)

let e4 ppf () =
  let open Cio_attack in
  fp ppf "E4: interface-attack resilience matrix@.";
  fp ppf "  %-20s" "scenario";
  List.iter (fun t -> fp ppf " %-18s" (Attack.target_name t)) Attack.all_targets;
  fp ppf "@.";
  List.iter
    (fun (s, row) ->
      fp ppf "  %-20s" s.Attack.sname;
      List.iter (fun (_, o) -> fp ppf " %-18s" (Attack.outcome_name o)) row;
      fp ppf "@.")
    (Attack.matrix ());
  let sc = Attack.run_stack_compromise () in
  fp ppf "  compromised I/O stack (ternary model): direct read -> %s; forged stream -> %s@."
    (Attack.outcome_name sc.Attack.direct_read)
    (Attack.outcome_name sc.Attack.forged_stream);
  fp ppf "  shape: unhardened falls to every class; hardening stops interface attacks@.";
  fp ppf "  at a cost; the safe interface confines them by construction; whatever@.";
  fp ppf "  remains expressible at L2 (payload replay/corruption) fails closed at L5.@."

(* --- E5: observability by boundary ------------------------------------- *)

let e5 ppf () =
  fp ppf "E5: host observability by boundary placement@.";
  List.iter
    (fun (kind, m) ->
      fp ppf "  %a@." Cio_observe.Observe.pp_summary m.C.tap;
      ignore kind)
    (fig5_runs ());
  fp ppf "  shape: syscall-level boundaries expose operation types, sizes and@.";
  fp ppf "  timings; raw L2 exposes frame metadata plus doorbells; the dual design@.";
  fp ppf "  exposes frames only (polling); the tunnel reduces the channel to@.";
  fp ppf "  uniform blobs at uniform cadence.@."

(* --- E6: TCB by boundary ------------------------------------------------ *)

let e6 ppf () =
  fp ppf "E6: confidential-core TCB by configuration (LoC measured on this repo)@.";
  List.iter
    (fun p -> fp ppf "  %a@." Cio_tcb.Tcb.pp_profile p.Cio_tcb.Tcb.config)
    Cio_tcb.Tcb.profiles;
  fp ppf "  shape: the dual boundary removes the whole stack+driver from the core@.";
  fp ppf "  TCB; compromising the quarantined stack yields observability only (E4).@."

(* --- E7: zero-copy send / recv-copy ablation ---------------------------- *)

let channel_copy_cycles ~zero_copy_send ~copy_on_recv =
  (* One 16 KiB message over an in-memory stack pair; report the Copy
     cycles attributable to the L5 boundary. *)
  let open Cio_tcpip in
  let mac_a = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 1 in
  let mac_b = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 2 in
  let ip_a = Cio_frame.Addr.ipv4_of_octets 10 9 0 1 in
  let ip_b = Cio_frame.Addr.ipv4_of_octets 10 9 0 2 in
  let nif_a, nif_b = Netif.loopback_pair ~mac_a ~mac_b ~mtu:1500 in
  let clock = ref 0L in
  let now () = !clock in
  let rng = Rng.create 8L in
  let sa = Stack.create ~netif:nif_a ~ip:ip_a ~neighbors:[ (ip_b, mac_b) ] ~now ~rng () in
  let sb = Stack.create ~netif:nif_b ~ip:ip_b ~neighbors:[ (ip_a, mac_a) ] ~now ~rng () in
  let listener = Tcp.listen (Stack.tcp sb) ~port:1 () in
  let conn = Tcp.connect (Stack.tcp sa) ~dst:ip_b ~dst_port:1 () in
  let step () =
    Stack.poll sa;
    Stack.poll sb;
    clock := Int64.add !clock 1_000_000L
  in
  let server = ref None in
  for _ = 1 to 10 do
    step ();
    if !server = None then server := Tcp.accept listener
  done;
  let psk = Bytes.make 32 'e' in
  let meter = Cost.meter () in
  let c_sess = Cio_tls.Session.create ~meter ~role:Cio_tls.Session.Client ~psk ~psk_id:"e7" ~rng () in
  let s_sess = Cio_tls.Session.create ~role:Cio_tls.Session.Server ~psk ~psk_id:"e7" ~rng () in
  let ch_c =
    Channel.create ~zero_copy_send ~copy_on_recv ~meter ~session:c_sess ~stack:sa ~conn ()
  in
  let ch_s =
    Channel.create ~meter:(Cost.meter ()) ~session:s_sess ~stack:sb
      ~conn:(Option.get !server) ()
  in
  ignore (Channel.start_handshake ch_c);
  let pump () =
    Channel.pump ch_c;
    Channel.pump ch_s;
    step ()
  in
  for _ = 1 to 30 do
    pump ()
  done;
  let before = Cost.cycles_of meter Cost.Copy in
  ignore (Channel.send ch_c (Bytes.make 16000 'z'));
  (match Channel.send ch_s (Bytes.make 16000 'y') with Ok () | Error _ -> ());
  for _ = 1 to 60 do
    pump ()
  done;
  Cost.cycles_of meter Cost.Copy - before

let e7 ppf () =
  fp ppf "E7: L5 copy ablation, one 16 KiB message each way (Copy cycles at the boundary)@.";
  let rows =
    [
      ("copy send + copy recv", false, true);
      ("zero-copy send + copy recv", true, true);
      ("copy send + trusted recv", false, false);
      ("zero-copy send + trusted recv", true, false);
    ]
  in
  List.iter
    (fun (name, zc, cr) ->
      fp ppf "  %-30s %8d cycles@." name (channel_copy_cycles ~zero_copy_send:zc ~copy_on_recv:cr))
    rows;
  fp ppf "  shape: 'trusted component allocates' removes the send-side copy; the@.";
  fp ppf "  recv-side copy remains the price of distrusting the I/O stack (or is@.";
  fp ppf "  replaced by revocation, E2).@."

(* --- E8: gate vs two-TEE dual boundary ---------------------------------- *)

let e8 ppf () =
  let open Cio_compartment in
  fp ppf "E8: L5 boundary mechanism — intra-TEE gate vs second TEE@.";
  let cost crossing =
    let w = Compartment.create ~crossing () in
    let a = Compartment.add_domain w ~name:"a" and b = Compartment.add_domain w ~name:"b" in
    for _ = 1 to 1000 do
      Compartment.call w ~caller:a ~callee:b ignore
    done;
    Cost.cycles_of (Compartment.meter w) Cost.Gate / 1000
  in
  let gate = cost Compartment.Gate and tee = cost Compartment.Tee_switch in
  fp ppf "  compartment gate : %6d cycles per crossing@." gate;
  fp ppf "  TEE world switch : %6d cycles per crossing (%.0fx)@." tee
    (float_of_int tee /. float_of_int gate);
  let dual_gate = C.run_echo ~messages:20 C.Dual_boundary in
  fp ppf "  end-to-end (20 echoes): gate-based dual = %d total cycles, %d crossings@."
    (Cost.total dual_gate.C.guest) dual_gate.C.crossings;
  fp ppf "  shape: a dual-distrust (two-TEE) boundary at L5 would pay ~%.0fx per@."
    (float_of_int tee /. float_of_int gate);
  fp ppf "  handoff where single distrust needs only a gate — the §3.1 argument for@.";
  fp ppf "  compartment-based L5.@."

(* --- E9: storage generalisation ----------------------------------------- *)

let e9 ppf () =
  let open Cio_storage in
  fp ppf "E9: the dual boundary generalised to storage@.";
  let run mode =
    let dev, _ = Blockdev.create ~name:"e9" ~blocks:512 () in
    let fs = File.create ~dev ~mode in
    let m = File.meter fs in
    let content = Bytes.make (256 * 1024) 's' in
    let before = Cost.snapshot m in
    (match File.write_file fs ~name:"f" content with Ok () -> () | Error _ -> ());
    (match File.read_file fs ~name:"f" with Ok _ -> () | Error _ -> ());
    Cost.total (Cost.diff ~before ~after:(Cost.snapshot m))
  in
  let plain = run File.Plain and sealed = run (File.Sealed (Bytes.make 32 'K')) in
  fp ppf "  256 KiB write+read: plain=%d cycles, sealed=%d cycles (%.2fx)@." plain sealed
    (float_of_int sealed /. float_of_int plain);
  (* Attack rows. *)
  let attack mode inject =
    let dev, disk = Blockdev.create ~name:"e9a" ~blocks:64 () in
    let fs = File.create ~dev ~mode in
    ignore (File.write_file fs ~name:"f" (Bytes.make 1000 'a'));
    Blockdev.disk_inject disk inject;
    match File.read_file fs ~name:"f" with
    | Ok got -> if Bytes.equal got (Bytes.make 1000 'a') then "unaffected" else "SILENTLY WRONG"
    | Error (File.Integrity _) -> "fail-closed"
    | Error e -> "error: " ^ File.error_to_string e
  in
  fp ppf "  %-22s %-16s %-16s@." "host attack" "plain FS" "sealed FS";
  List.iter
    (fun (name, inject) ->
      fp ppf "  %-22s %-16s %-16s@." name
        (attack File.Plain inject)
        (attack (File.Sealed (Bytes.make 32 'K')) inject))
    [ ("corrupt block", Blockdev.Corrupt_block); ("remap block", Blockdev.Wrong_lba) ];
  fp ppf "  shape: the same split works for storage — low boundary on the safe ring,@.";
  fp ppf "  cryptographic high boundary; a hostile disk degrades to denial of service.@."

(* --- E10: direct device assignment --------------------------------------- *)

let e10 ppf () =
  let open Cio_dda in
  fp ppf "E10: direct device assignment (TDISP-style) vs paravirtual designs@.";
  let rng = Rng.create 17L in
  (match Dda.establish ~rng () with
  | Error e -> fp ppf "  honest device: UNEXPECTED %s@." (Dda.error_to_string e)
  | Ok t ->
      let payload = Bytes.make 4096 'd' in
      let before = Cost.snapshot (Dda.meter t) in
      for _ = 1 to 32 do
        ignore (Dda.transfer t payload)
      done;
      let per = Cost.total (Cost.diff ~before ~after:(Cost.snapshot (Dda.meter t))) / 32 in
      fp ppf "  honest attested device: %d guest cycles / 4 KiB round trip (IDE in hardware)@." per);
  (match Dda.establish ~counterfeit:true ~rng () with
  | Error e -> fp ppf "  counterfeit device: rejected (%s)@." (Dda.error_to_string e)
  | Ok _ -> fp ppf "  counterfeit device: ACCEPTED (should not happen)@.");
  (match Dda.establish ~behavior:Dda.Compromised ~rng () with
  | Error e -> fp ppf "  compromised device: %s@." (Dda.error_to_string e)
  | Ok t -> (
      match Dda.transfer t (Bytes.of_string "trusting-you") with
      | Ok data when not (Bytes.equal data (Bytes.of_string "trusting-you")) ->
          fp ppf "  compromised-but-attested device: corrupted data ACCEPTED SILENTLY@."
      | _ -> fp ppf "  compromised device: unexpected benign behaviour@."));
  (match Dda.establish ~rng () with
  | Ok t -> (
      match Dda.transfer_with_host_tamper t (Bytes.make 64 'x') with
      | Error Dda.Link_tampered -> fp ppf "  host-in-the-middle on IDE link: detected@."
      | _ -> fp ppf "  host tamper: NOT detected@.")
  | Error _ -> ());
  fp ppf "  shape: DDA is the cheapest datapath and needs no driver hardening, but@.";
  fp ppf "  attestation proves identity, not honesty — a compromised device sits@.";
  fp ppf "  inside the TCB (the paper's §3.4 trade-off).@."

(* --- E11: polling vs notifications ---------------------------------------- *)

let e11 ppf () =
  fp ppf "E11: no-notifications principle (cionet with/without doorbells)@.";
  let run use_notifications =
    let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.use_notifications } in
    let drv = Cio_cionet.Driver.create ~name:"e11" cfg in
    let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
    let m = Cio_cionet.Driver.guest_meter drv in
    let payload = Bytes.make 1024 'n' in
    let before = Cost.snapshot m in
    for _ = 1 to 64 do
      ignore (Cio_cionet.Driver.transmit drv payload);
      Cio_cionet.Host_model.poll host;
      Cio_cionet.Host_model.deliver_rx host payload;
      Cio_cionet.Host_model.poll host;
      ignore (Cio_cionet.Driver.poll drv)
    done;
    let d = Cost.diff ~before ~after:(Cost.snapshot m) in
    (Cost.total d / 64, Cost.count_of d Cost.Notification)
  in
  let poll_cyc, poll_n = run false in
  let notif_cyc, notif_n = run true in
  fp ppf "  polling      : %6d cycles/pair, %d notifications@." poll_cyc poll_n;
  fp ppf "  notifications: %6d cycles/pair, %d notifications@." notif_cyc notif_n;
  fp ppf "  shape: doorbells add host-visible events (E5) and per-message cost, and@.";
  fp ppf "  the hardening corpus (F4) shows their races are what needed fixing; under@.";
  fp ppf "  polling neither exists.@."

(* --- E12: live migration by device hot swap -------------------------------- *)

(* Local topology constants for the hand-wired experiments. *)
let ip_tee = Cio_frame.Addr.ipv4_of_octets 10 0 0 1
let ip_peer = Cio_frame.Addr.ipv4_of_octets 10 0 0 2
let mac_tee = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 1
let mac_peer = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 2
let echo_port = 443
let psk = Bytes.of_string "attestation-provisioned-psk-32b!"
let psk_id = "experiments"

(* A full dual-boundary echo session; halfway through, the device is
   hot-swapped (old region revoked wholesale, fresh instance, host
   re-attaches). The zero-negotiation interface has no state to migrate;
   TCP retransmission and the L5 record layer absorb the cable-pull. *)
let e12 ppf () =
  let open Cio_netsim in
  fp ppf "E12: live migration by device hot swap (the §3.2 zero-negotiation payoff)@.";
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
  let rng = Rng.create 66L in
  let now () = Engine.now engine in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer ~neighbors:[ (ip_tee, mac_tee) ]
      ~psk ~psk_id ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:echo_port;
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"e12" ~ip:ip_tee ~neighbors:[ (ip_peer, mac_peer) ] ~psk
      ~psk_id ~rng:(Rng.split rng) ~now ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  let ch = Dual.connect unit_ ~dst:ip_peer ~dst_port:echo_port in
  let pump () =
    Dual.poll unit_;
    Cio_cionet.Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:5_000L
  in
  let echoes = ref 0 and sent = ref 0 and steps = ref 0 in
  let payload = Bytes.make 512 'm' in
  let swap_at = 10 and target = 20 in
  let swapped_step = ref 0 and recovered_step = ref 0 in
  while !echoes < target && !steps < 300_000 do
    incr steps;
    pump ();
    if Channel.is_established ch && !sent < target && !sent - !echoes < 2 then
      if (match Channel.send ch payload with Ok () -> true | Error _ -> false) then incr sent;
    (match Channel.recv ch with
    | Some _ ->
        incr echoes;
        if !echoes = swap_at + 1 && !recovered_step = 0 && !swapped_step > 0 then
          recovered_step := !steps
    | None -> ());
    if !echoes = swap_at && !swapped_step = 0 then begin
      swapped_step := !steps;
      Cio_cionet.Driver.hot_swap (Dual.driver unit_);
      Cio_cionet.Host_model.reattach host ~driver:(Dual.driver unit_)
    end
  done;
  fp ppf "  echoes before swap: %d; hot swap at step %d; first echo after swap at step %d@."
    swap_at !swapped_step !recovered_step;
  fp ppf "  completed %d/%d echoes; device generation now %d; channel error: %s@." !echoes target
    (Cio_cionet.Driver.generation (Dual.driver unit_))
    (match Channel.error ch with
    | None -> "none"
    | Some e -> Cio_tls.Session.error_to_string e);
  fp ppf "  recovery gap: %d steps (~%.1f ms simulated), driven purely by TCP@."
    (!recovered_step - !swapped_step)
    (float_of_int ((!recovered_step - !swapped_step) * 5_000) /. 1e6);
  fp ppf "  shape: nothing is negotiated, transferred, or replayed across the swap —@.";
  fp ppf "  the stateless interface makes migration a cable pull that transport-@.";
  fp ppf "  layer retransmission already handles; contrast virtio-net failover's@.";
  fp ppf "  stateful migration machinery [63].@."

(* --- E13: L2 size padding (observability ablation) -------------------------- *)

let e13 ppf () =
  let open Cio_netsim in
  fp ppf "E13: padding dual-boundary frames to the MTU (observability ablation)@.";
  let run pad_frames =
    let engine = Engine.create () in
    let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
    let tap = Cio_observe.Observe.create (if pad_frames then "dual+pad" else "dual") in
    Link.set_transit_tap link
      (Some
         (fun ~time ~src frame ->
           let dir = match src with Link.A -> Kind_.dir_out | Link.B -> Kind_.dir_in in
           Cio_observe.Observe.record tap ~time
             ~kind:(Kind_.tap ~base:Kind_.frame ~dir)
             ~size:(Bytes.length frame)));
    let rng = Rng.create 77L in
    let now () = Engine.now engine in
    let peer =
      Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer ~neighbors:[ (ip_tee, mac_tee) ]
        ~psk ~psk_id ~rng:(Rng.split rng) ~now ()
    in
    Peer.serve_echo peer ~port:echo_port;
    let cionet_config = { Cio_cionet.Config.default with Cio_cionet.Config.pad_frames } in
    let unit_ =
      Dual.create ~cionet_config ~mac:mac_tee ~name:"e13" ~ip:ip_tee
        ~neighbors:[ (ip_peer, mac_peer) ] ~psk ~psk_id ~rng:(Rng.split rng) ~now ()
    in
    let host =
      Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
        ~transmit:(fun f -> Link.send link ~src:Link.A f)
    in
    Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
    let ch = Dual.connect unit_ ~dst:ip_peer ~dst_port:echo_port in
    let rng_sizes = Rng.create 5L in
    let echoes = ref 0 and sent = ref 0 and steps = ref 0 in
    while !echoes < 30 && !steps < 100_000 do
      incr steps;
      Dual.poll unit_;
      Cio_cionet.Host_model.poll host;
      Peer.poll peer;
      Engine.advance engine ~by:2_000L;
      if Channel.is_established ch && !sent < 30 && !sent - !echoes < 2 then begin
        (* Varied sizes: what padding is supposed to hide. *)
        let payload = Bytes.make (32 + Rng.int rng_sizes 900) 'p' in
        match Channel.send ch payload with Ok () -> incr sent | Error _ -> ()
      end;
      match Channel.recv ch with Some _ -> incr echoes | None -> ()
    done;
    (tap, Link.bytes_sent link ~src:Link.A + Link.bytes_sent link ~src:Link.B)
  in
  let tap_plain, bytes_plain = run false in
  let tap_pad, bytes_pad = run true in
  fp ppf "  plain : %a; wire bytes %d@." Cio_observe.Observe.pp_summary tap_plain bytes_plain;
  fp ppf "  padded: %a; wire bytes %d@." Cio_observe.Observe.pp_summary tap_pad bytes_pad;
  fp ppf "  shape: padding TX frames to the MTU collapses size buckets toward the@.";
  fp ppf "  tunnel's profile at %.1fx wire-bandwidth cost — a knob between the@."
    (float_of_int bytes_pad /. float_of_int (max 1 bytes_plain));
  fp ppf "  dual design's default and LightBox-style full cover traffic.@."

(* --- E14: cost-model sensitivity -------------------------------------------- *)

(* DESIGN.md promises that no reported shape hinges on a single constant:
   sweep the constants the headline results depend on and re-check the
   orderings. *)
let e14 ppf () =
  fp ppf "E14: cost-model sensitivity of the headline shapes@.";
  (* (a) E2 crossover vs revocation cost. *)
  fp ppf "  (a) copy-vs-revoke crossover as page_unshare scales:@.";
  List.iter
    (fun scale ->
      let model =
        {
          Cost.default with
          Cost.page_unshare = Cost.default.Cost.page_unshare * scale / 2;
          page_unshare_extra = Cost.default.Cost.page_unshare_extra * scale / 2;
          page_share = Cost.default.Cost.page_share * scale / 2;
          page_share_extra = Cost.default.Cost.page_share_extra * scale / 2;
        }
      in
      let crossover =
        List.find_opt
          (fun size ->
            let copy = rx_cost ~model ~strategy:Cio_cionet.Config.Copy_in ~msg_size:size ~count:8 () in
            let revoke = rx_cost ~model ~strategy:Cio_cionet.Config.Revoke ~msg_size:size ~count:8 () in
            revoke < copy)
          [ 1024; 4096; 8192; 16384; 32768; 65536 ]
      in
      fp ppf "      unshare x%.1f: crossover at %s@."
        (float_of_int scale /. 2.0)
        (match crossover with Some s -> Printf.sprintf "%d B" s | None -> ">64 KiB"))
    [ 1; 2; 4; 8 ];
  (* (b) E3 ordering vs notification cost. *)
  fp ppf "  (b) transport ordering (cionet < unhardened < hardened) as notification cost scales:@.";
  List.iter
    (fun scale ->
      let model =
        { Cost.default with Cost.notification = Cost.default.Cost.notification * scale / 2 }
      in
      let cost_of f = float_of_int (Cost.total f) in
      (* Re-run the E3 micro-workload under the scaled model. *)
      let virtio hardened =
        let transport = Cio_virtio.Transport.create ~model ~name:"e14" () in
        let dev =
          Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx transport)
            ~tx:(Cio_virtio.Transport.tx transport) ~transmit:(fun _ -> ())
        in
        let m = Cio_mem.Region.meter (Cio_virtio.Transport.region transport) in
        let payload = Bytes.make 1500 'f' in
        if hardened then begin
          let drv = Cio_virtio.Driver_hardened.create transport in
          let before = Cost.snapshot m in
          for _ = 1 to 16 do
            ignore (Cio_virtio.Driver_hardened.transmit drv payload);
            Cio_virtio.Device.deliver_rx dev payload;
            Cio_virtio.Device.poll dev;
            ignore (Cio_virtio.Driver_hardened.poll drv)
          done;
          Cost.diff ~before ~after:(Cost.snapshot m)
        end
        else begin
          let drv = Cio_virtio.Driver_unhardened.create transport in
          let before = Cost.snapshot m in
          for _ = 1 to 16 do
            ignore (Cio_virtio.Driver_unhardened.transmit drv payload);
            Cio_virtio.Device.deliver_rx dev payload;
            Cio_virtio.Device.poll dev;
            ignore (Cio_virtio.Driver_unhardened.poll drv)
          done;
          Cost.diff ~before ~after:(Cost.snapshot m)
        end
      in
      let cionet =
        let drv = Cio_cionet.Driver.create ~model ~name:"e14c" Cio_cionet.Config.default in
        let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
        let m = Cio_cionet.Driver.guest_meter drv in
        let payload = Bytes.make 1500 'f' in
        let before = Cost.snapshot m in
        for _ = 1 to 16 do
          ignore (Cio_cionet.Driver.transmit drv payload);
          Cio_cionet.Host_model.poll host;
          Cio_cionet.Host_model.deliver_rx host payload;
          Cio_cionet.Host_model.poll host;
          ignore (Cio_cionet.Driver.poll drv)
        done;
        Cost.diff ~before ~after:(Cost.snapshot m)
      in
      let u = cost_of (virtio false) and h = cost_of (virtio true) and c = cost_of cionet in
      fp ppf "      notify x%.1f: cionet=%.0f unhardened=%.0f hardened=%.0f -> ordering %s@."
        (float_of_int scale /. 2.0)
        c u h
        (if c < u && u < h then "HOLDS" else "changes");
      ())
    [ 1; 2; 4 ];
  fp ppf "  shape: the crossover location moves with the revocation cost but always@.";
  fp ppf "  exists; the transport ordering is insensitive to the notification@.";
  fp ppf "  constant (the hardened driver's copies dominate its tax).@."

(* --- E15: split vs packed virtqueue hardening needs -------------------------- *)

(* §2.5: "The VirtIO standard for example supports at least two alternative
   virtqueue formats, each featuring unique hardening needs." Both formats
   are implemented (lib/virtio/vring.ml, lib/virtio/packed.ml); this
   experiment contrasts their hardened-driver check inventories and runs
   the packed-specific attacks against both packed driver variants. *)
let e15 ppf () =
  let open Cio_virtio in
  fp ppf "E15: split vs packed virtqueue — unique hardening needs per format@.";
  fp ppf "  split-format hardened checks:@.";
  List.iter
    (fun (check, unique) -> fp ppf "    [%s] %s@." (if unique then "format-specific" else "common ") check)
    Packed.split_hardened_check_inventory;
  fp ppf "  packed-format hardened checks:@.";
  List.iter
    (fun (check, unique) -> fp ppf "    [%s] %s@." (if unique then "format-specific" else "common ") check)
    Packed.hardened_check_inventory;
  let run_attack ~hardened inject expected_frame =
    let tr = Packed.create_transport ~name:"e15" () in
    let dev = Packed.create_device ~transport:tr ~transmit:(fun _ -> ()) in
    let drv = Packed.create_driver ~hardened tr in
    Packed.device_inject dev inject;
    Packed.device_deliver_rx dev expected_frame;
    Packed.device_poll dev;
    match
      let frames = ref [] in
      for _ = 1 to 4 do
        match Packed.driver_poll drv with Some f -> frames := f :: !frames | None -> ()
      done;
      !frames
    with
    | exception Cio_mem.Region.Fault _ -> "CRASH"
    | exception Invalid_argument _ -> "CORRUPTION"
    | frames -> (
        let wrap_rej, id_rej, clamped = Packed.driver_rejects drv in
        match frames with
        | [] when wrap_rej + id_rej > 0 -> "rejected"
        | [] -> "no-frame"
        | fs ->
            if List.exists (fun f -> Bytes.length f > Bytes.length expected_frame && clamped = 0) fs
            then "OVER-READ"
            else if List.length fs > 1 then "DUPLICATE"
            else if List.exists (fun f -> not (Bytes.equal f expected_frame)) fs then
              if clamped > 0 then "clamped" else "WRONG-DATA"
            else "intact")
  in
  let honest = Bytes.of_string "honest-frame" in
  fp ppf "  packed-specific attacks:@.";
  fp ppf "    %-18s %-14s %-14s@." "attack" "unhardened" "hardened";
  List.iter
    (fun (name, inject) ->
      fp ppf "    %-18s %-14s %-14s@." name
        (run_attack ~hardened:false inject honest)
        (run_attack ~hardened:true inject honest))
    [
      ("lie-len", Packed.P_lie_len 6000);
      ("bogus-id", Packed.P_bogus_id 5000);
      ("wrap-replay", Packed.P_wrap_replay);
      ("premature-used", Packed.P_premature_used);
    ];
  fp ppf "  shape: the two formats need different check inventories (wrap-counter@.";
  fp ppf "  discipline and in-place completion shadowing exist only in packed; chain@.";
  fp ppf "  walking exists only in split) — hardening effort does not transfer@.";
  fp ppf "  between formats, which is §2.5's argument that broad standards multiply@.";
  fp ppf "  the retrofit burden.@."

(* --- E16: fault-injection campaigns and the self-healing datapath ------------- *)

(* The robustness payoff of the paper's design principles, measured: a
   deterministic, seed-driven campaign throws faults at every layer —
   host device model (stalls, freezes, silent drops, header sabotage),
   link adversary bursts, in-flight TLS record tampering, and a crash of
   the quarantined I/O-stack domain — while the datapath heals itself
   (driver watchdog + generation-bumping ring reset, TCP retransmission,
   fail-closed PSK re-establishment, compartment restart) and the canary
   tap certifies that no plaintext ever reached the host. *)
let e16 ppf () =
  let open Cio_fault in
  fp ppf "E16: fault-injection campaigns — a self-healing datapath under a hostile host@.";
  let seeds = [ 11L; 42L; 1337L ] in
  let reports =
    List.map
      (fun seed ->
        let plan = Plan.generate ~seed () in
        let r = Campaign.run plan in
        fp ppf "%a" Campaign.pp r;
        r)
      seeds
  in
  let all p = List.for_all p reports in
  fp ppf "  verdict over %d campaigns (%d faults):@." (List.length reports)
    (List.fold_left (fun a r -> a + List.length r.Campaign.faults) 0 reports);
  fp ppf "    every fault detected or tolerated, datapath recovered: %s@."
    (if all Campaign.all_recovered then "yes" else "NO");
  fp ppf "    zero integrity failures: %s; zero canary/plaintext leaks to host: %s@."
    (if all (fun r -> r.Campaign.integrity_failures = 0) then "yes" else "NO")
    (if all (fun r -> r.Campaign.leaks = 0) then "yes" else "NO");
  fp ppf "  shape: statelessness makes recovery unilateral — the watchdog can throw@.";
  fp ppf "  the device away on a deadline because nothing is negotiated; TLS makes@.";
  fp ppf "  it safe — stack death and record tampering end in a fresh PSK handshake,@.";
  fp ppf "  never a renegotiation, and never plaintext below L5.@."

(* --- E17: decomposition ablation --------------------------------------------- *)

(* How much of the dual design's Figure-5 position comes from the safe
   transport, and how much from the boundary split? Cross the two choices. *)
let e17 ppf () =
  fp ppf "E17: decomposition — transport choice x boundary placement (cycles/B)@.";
  fp ppf "  %-18s %-22s %-22s@." "" "stack in core TCB" "stack quarantined";
  List.iter
    (fun transport ->
      let cell quarantined =
        let completed, cyc, crossings =
          C.run_echo_custom ~transport ~quarantined ()
        in
        if completed then Printf.sprintf "%6.1f cyc/B (%d gates)" cyc crossings
        else "INCOMPLETE"
      in
      fp ppf "  %-18s %-22s %-22s@." (C.transport_name transport) (cell false) (cell true))
    [ C.T_virtio_hardened; C.T_cionet ];
  fp ppf "  shape: the transport choice dominates the cycle budget (notifications +@.";
  fp ppf "  hardening copies vs polled masked rings); the quarantine adds only the@.";
  fp ppf "  per-handoff gate + L5 distrust copy while removing the stack from the@.";
  fp ppf "  core TCB — the two halves of the design contribute independently and@.";
  fp ppf "  compose.@."

(* --- E18: workload fingerprinting -------------------------------------------- *)

(* §2.2 defines observability as what "allows the host to infer
   information about the TEE". Make that concrete: run two application
   behaviours — a chatty workload (many small messages) and a bulk
   workload (few large ones) — through each boundary and measure how far
   apart their host-visible signatures are. A large distance means a
   passive host can fingerprint what the application is doing. *)

let tap_signature tap =
  let events = Cio_observe.Observe.events tap in
  let sizes = List.filter_map (fun e ->
      if e.Cio_observe.Observe.size > 0 then Some (float_of_int e.Cio_observe.Observe.size) else None)
      events
  in
  match sizes with
  | [] -> (0.0, 0.0, 0.0)
  | _ ->
      let arr = Array.of_list sizes in
      let mean = Cio_util.Stats.mean arr in
      let sd = Cio_util.Stats.stddev arr in
      (mean, sd, float_of_int (List.length events))

let signature_distance (m1, s1, n1) (m2, s2, n2) =
  (* Normalised per-feature relative difference, averaged. *)
  let rel a b = if a = 0.0 && b = 0.0 then 0.0 else abs_float (a -. b) /. max a b in
  (rel m1 m2 +. rel s1 s2 +. rel n1 n2) /. 3.0

let e18 ppf () =
  fp ppf "E18: workload fingerprinting by a passive host@.";
  fp ppf "  chatty = 60 x 64 B messages; bulk = 6 x 12 KiB messages@.";
  fp ppf "  %-16s %10s   (0 = indistinguishable, 1 = trivially distinguished)@."
    "config" "distance";
  List.iter
    (fun kind ->
      let chatty = C.run_echo ~seed:21L ~messages:60 ~msg_size:64 kind in
      let bulk = C.run_echo ~seed:22L ~messages:6 ~msg_size:12_288 kind in
      let d = signature_distance (tap_signature chatty.C.tap) (tap_signature bulk.C.tap) in
      fp ppf "  %-16s %10.2f@." (C.kind_name kind) d)
    C.all_kinds;
  fp ppf "  shape: syscall and raw-L2 boundaries let the host separate the two@.";
  fp ppf "  behaviours from sizes/rates alone; the tunnel's constant-size,@.";
  fp ppf "  cadence-padded channel collapses the distance — the quantitative@.";
  fp ppf "  content of §2.2's observability vector.@."

(* --- E19: storage access-pattern observability -------------------------------- *)

(* The storage twin of E18, and the reason the paper cites oblivious
   filesystems [3]: sealing protects *contents*, but the host still sees
   which blocks are touched. Two application behaviours — hot reads of
   file A vs hot reads of file B — remain perfectly distinguishable from
   the block-access trace alone. *)
let e19 ppf () =
  let open Cio_storage in
  fp ppf "E19: storage access-pattern observability (sealed contents, visible pattern)@.";
  let dev, disk = Blockdev.create ~name:"e19" ~blocks:256 () in
  let store = Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  (match Dual_store.write_file store ~name:"file-A" (Bytes.make 20_000 'a') with
  | Ok () -> ()
  | Error e -> fp ppf "  setup failed: %s@." (Dual_store.error_to_string e));
  (match Dual_store.write_file store ~name:"file-B" (Bytes.make 20_000 'b') with
  | Ok () -> ()
  | Error e -> fp ppf "  setup failed: %s@." (Dual_store.error_to_string e));
  let trace_of name =
    Blockdev.disk_clear_log disk;
    for _ = 1 to 5 do
      ignore (Dual_store.read_file store ~name)
    done;
    List.filter_map
      (fun (op, lba) -> match op with Block_wire.Read -> Some lba | Block_wire.Write -> None)
      (Blockdev.disk_access_log disk)
  in
  let trace_a = trace_of "file-A" and trace_b = trace_of "file-B" in
  let set_of l = List.sort_uniq compare l in
  let sa = set_of trace_a and sb = set_of trace_b in
  let inter = List.length (List.filter (fun x -> List.mem x sb) sa) in
  let union = List.length (set_of (sa @ sb)) in
  let jaccard = float_of_int inter /. float_of_int (max 1 union) in
  fp ppf "  hot-A trace touches blocks %s@."
    (String.concat "," (List.map string_of_int sa));
  fp ppf "  hot-B trace touches blocks %s@."
    (String.concat "," (List.map string_of_int sb));
  fp ppf "  trace overlap (Jaccard): %.2f — a passive host tells the workloads apart@." jaccard;
  (* And yet contents and integrity are safe: corrupt the hot block. *)
  Blockdev.disk_inject disk Blockdev.Corrupt_block;
  (match Dual_store.read_file store ~name:"file-A" with
  | Error (Dual_store.Integrity _) -> fp ppf "  content attack on the hot file: fail-closed@."
  | Ok _ -> fp ppf "  content attack: MISSED@."
  | Error e -> fp ppf "  content attack: %s@." (Dual_store.error_to_string e));
  fp ppf "  rogue storage domain reads app memory: %s@."
    (match Dual_store.rogue_store_reads_app_memory store with
    | `Denied -> "denied by the compartment"
    | `Leaked -> "LEAKED");
  fp ppf "  shape: the dual boundary bounds a storage compromise to access-pattern@.";
  fp ppf "  observability — closing that residual channel needs oblivious layouts@.";
  fp ppf "  (OBLIVIATE [3]), orthogonal to interface safety.@."

(* --- E20: multi-queue scaling -------------------------------------------------- *)

(* The §2.2 performance ideal (saturate tens-of-Gbit links) via per-core
   queues. Because each queue is a complete independent safe device,
   multi-queue adds zero control plane and zero new hardening surface —
   contrast virtio's control-virtqueue steering commands. With one core
   per queue, wall time is the busiest queue's cycles. *)
let e20 ppf () =
  fp ppf "E20: multi-queue scaling of the safe interface (64 flows, 16 msgs each, 1 KiB)@.";
  fp ppf "  %-8s %14s %18s %9s@." "queues" "total cycles" "critical path" "speedup";
  let flows = 64 and per_flow = 16 in
  let baseline = ref 0.0 in
  List.iter
    (fun nq ->
      let mq =
        Cio_cionet.Multiqueue.create ~name:"e20" ~queues:nq Cio_cionet.Config.default
      in
      (* One host model per queue (the host scales with the guest). *)
      let hosts =
        List.map
          (fun d -> Cio_cionet.Host_model.create ~driver:d ~transmit:(fun _ -> ()))
          (Cio_cionet.Multiqueue.queues mq)
      in
      let payload = Bytes.make 1024 'q' in
      for round = 1 to per_flow do
        ignore round;
        for flow = 0 to flows - 1 do
          ignore (Cio_cionet.Multiqueue.transmit mq ~flow_hash:flow payload)
        done;
        List.iter Cio_cionet.Host_model.poll hosts
      done;
      let total = Cio_cionet.Multiqueue.total_cycles mq in
      let critical = Cio_cionet.Multiqueue.critical_path_cycles mq in
      if nq = 1 then baseline := float_of_int critical;
      fp ppf "  %-8d %14d %18d %8.1fx@." nq total critical
        (!baseline /. float_of_int critical))
    [ 1; 2; 4; 8 ];
  fp ppf "  shape: near-linear critical-path scaling with zero added control plane@.";
  fp ppf "  or hardening surface — fixed flow steering is just more of the same@.";
  fp ppf "  stateless interface, where virtio multiqueue adds a control virtqueue@.";
  fp ppf "  command set to harden.@."

(* --- E21: batch-depth sweep ------------------------------------------------ *)

(* §2.2's performance ideal is reached "by batching their rings": sweep
   the burst depth across positioning variants and queue counts. One cell
   echoes [rounds x depth] 1 KiB frames per queue through burst transmit,
   a host burst drain/refill, and burst receive, then reports guest
   cycles per frame (critical path) and doorbells per frame. *)
let e21_cell ~positioning ~queues ~depth =
  let cfg =
    {
      Cio_cionet.Config.default with
      Cio_cionet.Config.positioning;
      ring_slots = 128;
      use_notifications = true;
    }
  in
  let mq = Cio_cionet.Multiqueue.create ~name:"e21" ~queues cfg in
  (* Per-queue loopback host: frames the guest transmits come straight
     back on the same queue's RX ring. *)
  let hosts =
    List.map
      (fun d ->
        let self = ref None in
        let h =
          Cio_cionet.Host_model.create ~driver:d
            ~transmit:(fun f ->
              match !self with
              | Some h -> Cio_cionet.Host_model.deliver_rx h f
              | None -> ())
        in
        self := Some h;
        h)
      (Cio_cionet.Multiqueue.queues mq)
  in
  let batch = Array.make depth (Bytes.make 1024 'b') in
  let rounds = max 1 (256 / depth) in
  let frames_per_queue = rounds * depth in
  for _ = 1 to rounds do
    for q = 0 to queues - 1 do
      ignore (Cio_cionet.Multiqueue.transmit_burst mq ~flow_hash:q batch)
    done;
    List.iter Cio_cionet.Host_model.poll hosts;
    let rec drain () =
      if Cio_cionet.Multiqueue.poll_burst ~max:(queues * depth) mq <> [] then drain ()
    in
    drain ()
  done;
  let cycles_per_frame =
    float_of_int (Cio_cionet.Multiqueue.critical_path_cycles mq)
    /. float_of_int frames_per_queue
  in
  let doorbells =
    List.fold_left
      (fun acc d -> acc + Cost.count_of (Cio_cionet.Driver.guest_meter d) Cost.Notification)
      0
      (Cio_cionet.Multiqueue.queues mq)
  in
  (cycles_per_frame, float_of_int doorbells /. float_of_int (frames_per_queue * queues))

let e21 ppf () =
  fp ppf "E21: batch-depth sweep (burst ring ops + doorbell coalescing, 1 KiB echo)@.";
  let depths = [ 1; 4; 16; 64 ] in
  let variants =
    [
      ("inline", Cio_cionet.Config.Inline { data_capacity = 2048 });
      ("pool", Cio_cionet.Config.Pool { pool_slots = 256; pool_slot_size = 2048 });
      ( "indirect",
        Cio_cionet.Config.Indirect { desc_count = 256; pool_slots = 256; pool_slot_size = 2048 } );
    ]
  in
  fp ppf "  guest cycles/frame (critical path):@.";
  fp ppf "  %-10s %7s" "variant" "queues";
  List.iter (fun d -> fp ppf " %9s" (Printf.sprintf "depth=%d" d)) depths;
  fp ppf "@.";
  let inline_q1 = ref [] in
  List.iter
    (fun (name, positioning) ->
      List.iter
        (fun queues ->
          fp ppf "  %-10s %7d" name queues;
          List.iter
            (fun depth ->
              let cycles, dbpf = e21_cell ~positioning ~queues ~depth in
              if name = "inline" && queues = 1 then inline_q1 := (depth, dbpf) :: !inline_q1;
              fp ppf " %9.0f" cycles)
            depths;
          fp ppf "@.")
        [ 1; 2; 4; 8 ])
    variants;
  fp ppf "  doorbells/frame (any variant):";
  List.iter (fun (d, dbpf) -> fp ppf "  depth=%d -> %.4f" d dbpf) (List.rev !inline_q1);
  fp ppf "@.";
  fp ppf "  shape: per-frame cost falls with depth and flattens past ~16 as the@.";
  fp ppf "  fixed crossing cost is spread thin; doorbells/frame = 1/depth exactly@.";
  fp ppf "  (one stateless kick covers the whole burst).@."

(* --- E22: offered-load sweep, overload plane on vs off -------------------- *)

(* The overload plane's money shot: an open-loop generator over a
   rate-limited host, swept from half saturation to 4x. Without the
   plane the excess piles into the sealed outbox and the TX queue —
   throughput holds at the service rate but latency grows with the
   backlog and *goodput* (replies within the deadline) collapses. With
   the plane the admission controller sheds the excess before any
   sealing work, blown deadlines are shed at the crossing, and goodput
   holds near saturation with bounded p99. *)
let e22 ppf () =
  let open Cio_fault in
  fp ppf "E22: offered-load sweep, overload plane on vs off (slow host, quota=%d/poll)@."
    Loadgen.default_config.Loadgen.host_quota;
  let base = Loadgen.default_config in
  (* Admission tuned to the measured service capacity (~0.5 msg/step at
     quota 2): 50k tokens/s at a 10 us quantum is 0.5 admits/step. *)
  let plane_cfg =
    {
      Cio_overload.Plane.default_config with
      Cio_overload.Plane.admit_rate_per_sec = 50_000;
      admit_burst = 8;
      queue_limit = 64;
      deadline_budget_ns =
        Int64.mul (Int64.of_int base.Loadgen.deadline_steps) base.Loadgen.quantum_ns;
    }
  in
  let saturation = 500 in
  let rates = [ 250; 500; 1_000; 2_000 ] in
  fp ppf "  %-9s %-5s %7s %6s %6s %7s %7s %6s %8s@." "offered" "plane" "offered"
    "sent" "shed" "goodput" "p99rtt" "txq" "outboxB";
  let results = ref [] in
  List.iter
    (fun rate ->
      List.iter
        (fun on ->
          let config =
            {
              base with
              Loadgen.offered_per_mille = rate;
              overload = (if on then Some plane_cfg else None);
            }
          in
          let r = Loadgen.run ~config ~seed:7L () in
          results := ((rate, on), r) :: !results;
          fp ppf "  %-9s %-5s %7d %6d %6d %7d %7d %6d %8d@."
            (Printf.sprintf "%.2fx" (float_of_int rate /. float_of_int saturation))
            (if on then "on" else "off")
            r.Loadgen.offered r.Loadgen.sent r.Loadgen.shed r.Loadgen.timely
            r.Loadgen.p99_rtt_steps r.Loadgen.tx_backlog r.Loadgen.backlog_bytes)
        [ false; true ])
    rates;
  let get rate on = List.assoc (rate, on) !results in
  let sat_on = get saturation true in
  let over_on = get 2_000 true in
  let over_off = get 2_000 false in
  fp ppf "  shape: plane ON holds goodput at 4x offered (%d vs %d at 1x, within 20%%)@."
    over_on.Loadgen.timely sat_on.Loadgen.timely;
  fp ppf "  with bounded p99 (%d steps); plane OFF collapses — goodput %d, p99 %d,@."
    over_on.Loadgen.p99_rtt_steps over_off.Loadgen.timely over_off.Loadgen.p99_rtt_steps;
  fp ppf "  %d frames / %d sealed bytes stranded in queues at the end of the run.@."
    over_off.Loadgen.tx_backlog over_off.Loadgen.backlog_bytes

(* --- registry -------------------------------------------------------------- *)

let all =
  [
    ("fig2", "Linux /net remote CVEs per year", fig2);
    ("fig3", "NetVSC hardening-commit distribution", fig3);
    ("fig4", "VirtIO hardening-commit distribution", fig4);
    ("fig5", "security vs performance design space", fig5);
    ("e1", "data positioning variants", e1);
    ("e2", "copy vs revocation crossover", e2);
    ("e3", "hardening tax at the transport", e3);
    ("e4", "attack resilience matrix", e4);
    ("e5", "observability by boundary", e5);
    ("e6", "TCB by boundary", e6);
    ("e7", "zero-copy send / recv-copy ablation", e7);
    ("e8", "gate vs two-TEE L5 boundary", e8);
    ("e9", "storage generalisation", e9);
    ("e10", "direct device assignment", e10);
    ("e11", "polling vs notifications", e11);
    ("e12", "live migration by hot swap", e12);
    ("e13", "L2 size padding ablation", e13);
    ("e14", "cost-model sensitivity", e14);
    ("e15", "split vs packed virtqueue hardening", e15);
    ("e16", "fault campaigns / self-healing datapath", e16);
    ("e17", "decomposition: transport x boundary", e17);
    ("e18", "workload fingerprinting by the host", e18);
    ("e19", "storage access-pattern observability", e19);
    ("e20", "multi-queue scaling", e20);
    ("e21", "batch-depth sweep / doorbell coalescing", e21);
    ("e22", "offered-load sweep / overload plane on vs off", e22);
  ]

let find id = List.find_opt (fun (i, _, _) -> i = id) all

let scoped id f ppf = Trace.with_span ~cat:Kind_.experiment id (fun () -> f ppf ())

let run_one ppf id =
  match find id with
  | Some (_, _, f) ->
      scoped id f ppf;
      true
  | None -> false

let run_all ppf () =
  List.iter
    (fun (id, title, f) ->
      fp ppf "=== %s: %s ===@." id title;
      scoped id f ppf;
      fp ppf "@.")
    all
