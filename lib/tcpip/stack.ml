(* IP stack facade: binds a polling netif to the TCP and UDP layers.

   Address resolution is a static neighbour table fixed at construction —
   the §3.2 zero-negotiation principle applied to the stack itself (no ARP
   state machine, no renegotiation, parameters fixed at deployment). *)

open Cio_util
open Cio_frame

let src = Logs.Src.create "cio.stack" ~doc:"IP stack"

module Log = (val Logs.src_log src : Logs.LOG)

let m_txq_depth =
  Cio_telemetry.Metrics.histogram Cio_telemetry.Metrics.default "overload.txq.depth"

type udp_socket = {
  uport : int;
  rxq : (Addr.ipv4 * int * bytes) Queue.t;
}

type counters = {
  mutable frames_in : int;
  mutable frames_out : int;
  mutable dropped : int;
  mutable last_drop_reason : string;
}

type t = {
  netif : Netif.t;
  ip : Addr.ipv4;
  ttl : int;
  neighbors : (Addr.ipv4 * Addr.mac) list;
  tcp : Tcp.t;
  mutable udp_socks : udp_socket list;
  meter : Cost.meter;
  model : Cost.model;
  now : unit -> int64;
  counters : counters;
  (* TX coalescing: when the netif offers a burst transmit, outgoing
     frames queue here and flush as batches (one ring crossing, one
     doorbell). Without [tx_burst] every frame transmits immediately —
     byte-identical to the uncoalesced stack. *)
  tx_burst : (bytes array -> int) option;
  txq : bytes Queue.t;
  (* Overload plane: when set, the TX coalescing queue is bounded and
     new frames shed (counted, typed) instead of growing it without
     limit while the ring is full. *)
  tx_queue_limit : int option;
  (* Frame-buffer return path: RX buffers go back to the driver's pool
     once parsed (the parsers copy what they keep). *)
  recycle : (bytes -> unit) option;
}

let mac_for t dst =
  match List.assoc_opt dst t.neighbors with
  | Some mac -> Some mac
  | None -> None

(* Emit one built frame: queue for the next burst flush when coalescing,
   transmit immediately otherwise. Counters and charges are identical
   either way. With [tx_queue_limit] set, a full queue sheds the frame
   here — the backpressure signal the ring raised has reached the
   stack, and dropping at the source beats queueing without bound
   (TCP retransmits what mattered; the rest was load). *)
let emit t frame =
  match t.tx_burst with
  | Some _ -> (
      match t.tx_queue_limit with
      | Some lim when Queue.length t.txq >= lim ->
          t.counters.dropped <- t.counters.dropped + 1;
          t.counters.last_drop_reason <- "tx backpressure: queue full";
          Cio_overload.Pressure.note_queue_full ()
      | _ ->
          t.counters.frames_out <- t.counters.frames_out + 1;
          Cost.charge t.meter Cost.Stack 150;
          Queue.add frame t.txq)
  | None ->
      t.counters.frames_out <- t.counters.frames_out + 1;
      Cost.charge t.meter Cost.Stack 150;
      t.netif.Netif.transmit frame

(* Flush pending TX as bursts. A partial burst means the ring is full:
   requeue the tail and stop — the next poll retries. *)
let flush_tx t =
  match t.tx_burst with
  | None -> ()
  | Some burst ->
      let rec go () =
        let k = min 64 (Queue.length t.txq) in
        if k > 0 then begin
          let frames = Array.init k (fun _ -> Queue.take t.txq) in
          let n = burst frames in
          if n < k then begin
            let leftovers = Queue.create () in
            for i = n to k - 1 do
              Queue.add frames.(i) leftovers
            done;
            Queue.transfer t.txq leftovers;
            Queue.transfer leftovers t.txq
          end
          else go ()
        end
      in
      go ()

let create ?(ttl = 64) ?(model = Cost.default) ?meter ?tx_burst ?recycle ?tx_queue_limit
    ?retry_budget ~netif ~ip ~neighbors ~now ~rng () =
  let meter = match meter with Some m -> m | None -> Cost.meter () in
  let rec t =
    lazy
      {
        netif;
        ip;
        ttl;
        neighbors;
        tcp =
          Tcp.create ~model ~meter ?retry_budget ~local_ip:ip
            ~send_segment:(fun ~dst payload -> send_proto (Lazy.force t) Ipv4.Tcp ~dst payload)
            ~now ~rng ();
        udp_socks = [];
        meter;
        model;
        now;
        counters = { frames_in = 0; frames_out = 0; dropped = 0; last_drop_reason = "" };
        tx_burst;
        txq = Queue.create ();
        tx_queue_limit;
        recycle;
      }
  and send_proto t proto ~dst payload =
    match mac_for t dst with
    | None ->
        t.counters.dropped <- t.counters.dropped + 1;
        t.counters.last_drop_reason <- "no neighbour entry"
    | Some dst_mac ->
        let ip_packet = Ipv4.build { Ipv4.src = t.ip; dst; protocol = proto; ttl = t.ttl; payload } in
        let frame =
          Ethernet.build
            { Ethernet.dst = dst_mac; src = t.netif.Netif.mac; ethertype = Ethernet.Ipv4; payload = ip_packet }
        in
        emit t frame
  in
  Lazy.force t

let tcp t = t.tcp
let ip t = t.ip
let counters t = t.counters
let meter t = t.meter
let tx_backlog t = Queue.length t.txq

let tx_pressure t =
  match t.tx_queue_limit with
  | None -> Cio_overload.Pressure.Nominal
  | Some lim ->
      Cio_overload.Pressure.level_of_occupancy ~used:(Queue.length t.txq) ~capacity:lim

let send_udp t ~src_port ~dst ~dst_port payload =
  match mac_for t dst with
  | None ->
      t.counters.dropped <- t.counters.dropped + 1;
      t.counters.last_drop_reason <- "no neighbour entry"
  | Some dst_mac ->
      let udp = Udp.build ~src_ip:t.ip ~dst_ip:dst { Udp.src_port; dst_port; payload } in
      let ip_packet = Ipv4.build { Ipv4.src = t.ip; dst; protocol = Ipv4.Udp; ttl = t.ttl; payload = udp } in
      let frame =
        Ethernet.build
          { Ethernet.dst = dst_mac; src = t.netif.Netif.mac; ethertype = Ethernet.Ipv4; payload = ip_packet }
      in
      emit t frame

let udp_bind t ~port =
  if List.exists (fun s -> s.uport = port) t.udp_socks then
    invalid_arg "Stack.udp_bind: port already bound";
  let s = { uport = port; rxq = Queue.create () } in
  t.udp_socks <- s :: t.udp_socks;
  s

let udp_recv s = if Queue.is_empty s.rxq then None else Some (Queue.take s.rxq)
let udp_port s = s.uport

let drop t reason =
  t.counters.dropped <- t.counters.dropped + 1;
  t.counters.last_drop_reason <- reason;
  Log.debug (fun m -> m "drop: %s" reason)

let handle_frame t frame =
  t.counters.frames_in <- t.counters.frames_in + 1;
  Cost.charge t.meter Cost.Stack 150;
  match Ethernet.parse frame with
  | Error e -> drop t e
  | Ok eth ->
      if eth.Ethernet.dst <> t.netif.Netif.mac && eth.Ethernet.dst <> Addr.mac_broadcast then
        drop t "ethernet: not for us"
      else begin
        match eth.Ethernet.ethertype with
        | Ethernet.Arp | Ethernet.Unknown _ -> drop t "ethernet: unhandled ethertype"
        | Ethernet.Ipv4 -> (
            match Ipv4.parse eth.Ethernet.payload with
            | Error e -> drop t e
            | Ok ip ->
                if ip.Ipv4.dst <> t.ip then drop t "ipv4: not our address"
                else begin
                  match ip.Ipv4.protocol with
                  | Ipv4.Tcp -> (
                      match Tcp_wire.parse ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ip.Ipv4.payload with
                      | Error e -> drop t e
                      | Ok seg -> Tcp.input t.tcp ~src:ip.Ipv4.src seg)
                  | Ipv4.Udp -> (
                      match Udp.parse ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ip.Ipv4.payload with
                      | Error e -> drop t e
                      | Ok dgram -> (
                          match List.find_opt (fun s -> s.uport = dgram.Udp.dst_port) t.udp_socks with
                          | None -> drop t "udp: no socket bound"
                          | Some s ->
                              if Queue.length s.rxq < 1024 then
                                Queue.add (ip.Ipv4.src, dgram.Udp.src_port, dgram.Udp.payload) s.rxq
                              else drop t "udp: socket queue full"))
                  | Ipv4.Unknown _ -> drop t "ipv4: unhandled protocol"
                end)
      end

(* One scheduling quantum: drain pending RX frames (bounded), then run TCP
   timers, then flush coalesced TX. Flushing last means segments generated
   while handling this quantum's RX (ACKs, echoes) leave in the same poll,
   as one burst. Drivers are polled, never notify. *)
let poll ?(budget = 64) t =
  let rec go n =
    if n > 0 then begin
      match t.netif.Netif.poll () with
      | None -> ()
      | Some frame ->
          handle_frame t frame;
          (* The parsers copied what they kept; the frame buffer can go
             back to the driver's pool. *)
          (match t.recycle with Some r -> r frame | None -> ());
          go (n - 1)
    end
  in
  go budget;
  Tcp.tick t.tcp;
  (* Only bounded stacks observe queue depth — the classic stack keeps
     its metric stream byte-identical to the pre-overload build. *)
  if t.tx_queue_limit <> None then
    Cio_telemetry.Metrics.observe m_txq_depth (Queue.length t.txq);
  flush_tx t
