(** TCP (RFC 9293 subset): handshake, sliding-window data transfer,
    reassembly, retransmission with backoff, fast retransmit, slow start /
    congestion avoidance, graceful close, RST handling.

    Polling-driven: the owner feeds parsed segments via {!input} and calls
    {!tick} from its poll loop; there are no callbacks or notifications,
    matching the paper's no-notification principle. *)

open Cio_util
open Cio_frame

type state =
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val state_name : state -> string

type conn
type listener
type t

val create :
  ?default_mss:int ->
  ?base_rto_ns:int64 ->
  ?max_retries:int ->
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  ?retry_budget:Cio_overload.Retry_budget.t ->
  local_ip:Addr.ipv4 ->
  send_segment:(dst:Addr.ipv4 -> bytes -> unit) ->
  now:(unit -> int64) ->
  rng:Rng.t ->
  unit ->
  t

val meter : t -> Cost.meter
val segments_in : t -> int
val segments_out : t -> int

val retransmits : t -> int
(** Segments re-sent by either recovery path (fast retransmit or RTO). *)

val conn_state : conn -> state
val conn_error : conn -> string option
val conn_id : conn -> int

val conn_remote : conn -> Addr.ipv4 * int
(** Remote (ip, port) — what a reconnect after an I/O-stack restart needs
    to re-dial. *)

val connect : t -> ?src_port:int -> dst:Addr.ipv4 -> dst_port:int -> unit -> conn
val listen : t -> port:int -> ?backlog:int -> unit -> listener
val accept : listener -> conn option

val send : t -> conn -> bytes -> int
(** Queue application data; returns bytes accepted (0 unless the
    connection is open for sending). Call {!flush} to segment. *)

val flush : t -> conn -> unit

val recv : t -> conn -> max:int -> bytes
val recv_available : conn -> int

val eof : conn -> bool
(** Peer FIN received and the reassembly buffer fully drained. *)

val close : t -> conn -> unit
val abort : t -> conn -> unit

val input : t -> src:Addr.ipv4 -> Tcp_wire.t -> unit
(** Process one inbound segment (already IP-demultiplexed). *)

val tick : t -> unit
(** Run retransmission / TIME-WAIT timers against the [now] clock. *)

val gc : t -> unit
(** Drop all closed connections, including errored ones. *)
