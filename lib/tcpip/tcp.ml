(* TCP (RFC 9293 subset) — the in-TEE I/O stack's transport.

   Implemented: active/passive open, data transfer with cumulative ACKs,
   MSS negotiation via the SYN option, sliding-window flow control,
   out-of-order reassembly, retransmission with exponential backoff, fast
   retransmit on triple duplicate ACKs, slow start + congestion avoidance,
   graceful close through FIN states and TIME-WAIT, and RST handling.

   Deliberately omitted (documented simplifications): RTT estimation
   (fixed base RTO; the simulator's latencies are known), zero-window
   probes, SACK, urgent data, and simultaneous open. None of these affect
   the experiments, which exercise correctness-under-adversary and counted
   work, not TCP micro-tuning.

   The module is callback-free towards the driver: the stack calls [input]
   with parsed segments and [tick] with the polling clock — the paper's
   no-notifications principle end to end. *)

open Cio_util
open Cio_frame

let src = Logs.Src.create "cio.tcp" ~doc:"TCP state machine"

module Log = (val Logs.src_log src : Logs.LOG)

type state =
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_name = function
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN-SENT"
  | Syn_received -> "SYN-RECEIVED"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN-WAIT-1"
  | Fin_wait_2 -> "FIN-WAIT-2"
  | Close_wait -> "CLOSE-WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST-ACK"
  | Time_wait -> "TIME-WAIT"
  | Closed -> "CLOSED"

type retx_entry = {
  rseq : int32;
  rpayload : bytes;
  rsyn : bool;
  rfin : bool;
  mutable sent_at : int64;
  mutable retries : int;
}

let retx_len e = Bytes.length e.rpayload + (if e.rsyn then 1 else 0) + if e.rfin then 1 else 0

type conn = {
  id : int;
  local_port : int;
  remote_ip : Addr.ipv4;
  remote_port : int;
  mutable state : state;
  (* send side *)
  mutable snd_una : int32;
  mutable snd_nxt : int32;
  mutable snd_wnd : int;
  mutable snd_queue : Buffer.t;  (* app data not yet segmented *)
  mutable retx : retx_entry list; (* oldest first *)
  mutable dup_acks : int;
  mutable fin_pending : bool;
  mutable fin_seq : int32 option;
  (* receive side *)
  mutable rcv_nxt : int32;
  rcv_capacity : int;
  mutable recv_buf : Buffer.t;   (* in-order stream awaiting the app *)
  mutable ooo : (int32 * bytes) list;  (* out-of-order stash, seq-sorted *)
  mutable fin_rcvd : bool;
  (* congestion control *)
  mutable mss : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  (* timers *)
  mutable rto_ns : int64;
  mutable rtx_deadline : int64 option;
  mutable timewait_deadline : int64 option;
  mutable error : string option;
}

type listener = { lport : int; backlog : int; mutable accept_queue : conn list }

type t = {
  local_ip : Addr.ipv4;
  send_segment : dst:Addr.ipv4 -> bytes -> unit;
  now : unit -> int64;
  rng : Rng.t;
  meter : Cost.meter;
  model : Cost.model;
  default_mss : int;
  base_rto_ns : int64;
  max_retries : int;
  (* Shared retry budget (overload plane): every retransmit — RTO or
     fast — spends from it, so a lossy episode cannot turn into a
     self-synchronised retry storm across connections. *)
  retry_budget : Cio_overload.Retry_budget.t option;
  mutable conns : conn list;
  mutable listeners : listener list;
  mutable next_id : int;
  mutable next_ephemeral : int;
  mutable segments_in : int;
  mutable segments_out : int;
  mutable retransmits : int;
}

let m_segments_in = Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "tcp.segments_in"
let m_segments_out = Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "tcp.segments_out"
let m_retransmits = Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default "tcp.retransmits"
let m_segment_bytes =
  Cio_telemetry.Metrics.histogram Cio_telemetry.Metrics.default "tcp.segment_bytes"

(* Both retransmission paths (triple-dup-ack fast retransmit and RTO
   expiry) funnel through here. *)
let note_retransmit t =
  t.retransmits <- t.retransmits + 1;
  Cio_telemetry.Metrics.inc m_retransmits;
  if Cio_telemetry.Trace.on () then
    Cio_telemetry.Trace.instant ~cat:Cio_telemetry.Kind.tcp "retransmit"

let create ?(default_mss = 1460) ?(base_rto_ns = 200_000_000L) ?(max_retries = 8)
    ?(model = Cost.default) ?meter ?retry_budget ~local_ip ~send_segment ~now ~rng () =
  {
    local_ip;
    send_segment;
    now;
    rng;
    meter = (match meter with Some m -> m | None -> Cost.meter ());
    model;
    default_mss;
    base_rto_ns;
    max_retries;
    retry_budget;
    conns = [];
    listeners = [];
    next_id = 0;
    (* Randomised ephemeral-port start (deterministic per rng seed): a
       restarted stack must not march through the same port sequence as
       its dead predecessor, or its first SYN collides with the peer's
       lingering half of the old connection. *)
    next_ephemeral = 49152 + Rng.int rng 16_000;
    segments_in = 0;
    segments_out = 0;
    retransmits = 0;
  }

let meter t = t.meter
let segments_in t = t.segments_in
let segments_out t = t.segments_out
let retransmits t = t.retransmits

let conn_state c = c.state
let conn_error c = c.error
let conn_id c = c.id
let conn_remote c = (c.remote_ip, c.remote_port)

(* Every segment processed charges stack work: the cycles that live inside
   the TEE's I/O stack TCB. This is what the dual-boundary design pushes
   out of the core TCB. *)
let charge_stack t nbytes =
  Cost.charge t.meter Cost.Stack (300 + Cost.copy_cost t.model nbytes)

let emit t conn ?(payload = Bytes.empty) ?(syn = false) ?(fin = false) ?(rst = false)
    ?(ack = true) ~seq () =
  let seg =
    {
      Tcp_wire.src_port = conn.local_port;
      dst_port = conn.remote_port;
      seq;
      ack = (if ack then conn.rcv_nxt else 0l);
      flags = { Tcp_wire.syn; fin; rst; ack; psh = Bytes.length payload > 0 };
      window = max 0 (conn.rcv_capacity - Buffer.length conn.recv_buf);
      mss = (if syn then Some t.default_mss else None);
      payload;
    }
  in
  t.segments_out <- t.segments_out + 1;
  Cio_telemetry.Metrics.inc m_segments_out;
  Cio_telemetry.Metrics.observe m_segment_bytes (Bytes.length payload);
  charge_stack t (Bytes.length payload);
  t.send_segment ~dst:conn.remote_ip (Tcp_wire.build ~src_ip:t.local_ip ~dst_ip:conn.remote_ip seg)

let send_rst t ~dst ~(to_seg : Tcp_wire.t) =
  (* RFC 9293 §3.10.7.1 reset generation for segments with no connection. *)
  if not to_seg.Tcp_wire.flags.Tcp_wire.rst then begin
    let seq, ack, ack_flag =
      if to_seg.Tcp_wire.flags.Tcp_wire.ack then (to_seg.Tcp_wire.ack, 0l, false)
      else
        ( 0l,
          Tcp_wire.seq_add to_seg.Tcp_wire.seq
            (Bytes.length to_seg.Tcp_wire.payload
            + (if to_seg.Tcp_wire.flags.Tcp_wire.syn then 1 else 0)
            + if to_seg.Tcp_wire.flags.Tcp_wire.fin then 1 else 0),
          true )
    in
    let seg =
      {
        Tcp_wire.src_port = to_seg.Tcp_wire.dst_port;
        dst_port = to_seg.Tcp_wire.src_port;
        seq;
        ack;
        flags = { Tcp_wire.flags_none with rst = true; ack = ack_flag };
        window = 0;
        mss = None;
        payload = Bytes.empty;
      }
    in
    t.segments_out <- t.segments_out + 1;
    Cio_telemetry.Metrics.inc m_segments_out;
    charge_stack t 0;
    t.send_segment ~dst (Tcp_wire.build ~src_ip:t.local_ip ~dst_ip:dst seg)
  end

let isn t = Rng.next_int64 t.rng |> Int64.to_int32

let fresh_conn t ~local_port ~remote_ip ~remote_port ~state =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let iss = isn t in
  let c =
    {
      id;
      local_port;
      remote_ip;
      remote_port;
      state;
      snd_una = iss;
      snd_nxt = iss;
      snd_wnd = 0;
      snd_queue = Buffer.create 4096;
      retx = [];
      dup_acks = 0;
      fin_pending = false;
      fin_seq = None;
      rcv_nxt = 0l;
      rcv_capacity = 65535;
      recv_buf = Buffer.create 4096;
      ooo = [];
      fin_rcvd = false;
      mss = t.default_mss;
      cwnd = 2 * t.default_mss;
      ssthresh = 65535;
      rto_ns = t.base_rto_ns;
      rtx_deadline = None;
      timewait_deadline = None;
      error = None;
    }
  in
  t.conns <- c :: t.conns;
  c

let find_conn t ~local_port ~remote_ip ~remote_port =
  List.find_opt
    (fun c ->
      c.local_port = local_port && c.remote_ip = remote_ip && c.remote_port = remote_port
      && c.state <> Closed && c.state <> Listen)
    t.conns

let find_listener t ~port = List.find_opt (fun l -> l.lport = port) t.listeners

let arm_rtx t c = if c.rtx_deadline = None then c.rtx_deadline <- Some (Int64.add (t.now ()) c.rto_ns)

let record_retx t c ~seq ~payload ~syn ~fin =
  c.retx <- c.retx @ [ { rseq = seq; rpayload = payload; rsyn = syn; rfin = fin; sent_at = t.now (); retries = 0 } ];
  arm_rtx t c

let in_flight c = Tcp_wire.seq_diff c.snd_nxt c.snd_una

(* Push queued application data as segments while both flow-control and
   congestion windows allow. *)
let rec output t c =
  match c.state with
  | Established | Close_wait ->
      let window = min c.snd_wnd c.cwnd in
      let usable = window - in_flight c in
      let queued = Buffer.length c.snd_queue in
      if queued > 0 && usable > 0 then begin
        let len = min (min queued usable) c.mss in
        let payload = Bytes.sub (Buffer.to_bytes c.snd_queue) 0 len in
        let rest = Buffer.sub c.snd_queue len (queued - len) in
        Buffer.clear c.snd_queue;
        Buffer.add_string c.snd_queue rest;
        let seq = c.snd_nxt in
        c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt len;
        record_retx t c ~seq ~payload ~syn:false ~fin:false;
        emit t c ~payload ~seq ();
        output t c
      end
      else if queued = 0 && c.fin_pending && c.fin_seq = None then begin
        (* All data segmented: send FIN. *)
        let seq = c.snd_nxt in
        c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt 1;
        c.fin_seq <- Some seq;
        record_retx t c ~seq ~payload:Bytes.empty ~syn:false ~fin:true;
        emit t c ~fin:true ~seq ();
        c.state <- (match c.state with Established -> Fin_wait_1 | _ -> Last_ack)
      end
  | _ -> ()

let connect t ?src_port ~dst ~dst_port () =
  let local_port =
    match src_port with
    | Some p -> p
    | None ->
        let p = t.next_ephemeral in
        t.next_ephemeral <- (if p >= 65535 then 49152 else p + 1);
        p
  in
  let c = fresh_conn t ~local_port ~remote_ip:dst ~remote_port:dst_port ~state:Syn_sent in
  let seq = c.snd_nxt in
  c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt 1;
  record_retx t c ~seq ~payload:Bytes.empty ~syn:true ~fin:false;
  emit t c ~syn:true ~ack:false ~seq ();
  c

let listen t ~port ?(backlog = 16) () =
  match find_listener t ~port with
  | Some _ -> invalid_arg "Tcp.listen: port already bound"
  | None ->
      let l = { lport = port; backlog; accept_queue = [] } in
      t.listeners <- l :: t.listeners;
      l

let accept l =
  match l.accept_queue with
  | [] -> None
  | c :: rest ->
      l.accept_queue <- rest;
      Some c

let send _t c data =
  match c.state with
  | Established | Close_wait ->
      if c.fin_pending then 0
      else begin
        let room = 262144 - Buffer.length c.snd_queue in
        let n = min room (Bytes.length data) in
        Buffer.add_subbytes c.snd_queue data 0 n;
        n
      end
  | _ -> 0

let flush t c = output t c

let recv _t c ~max =
  let avail = Buffer.length c.recv_buf in
  let n = min max avail in
  if n = 0 then Bytes.empty
  else begin
    let out = Bytes.of_string (Buffer.sub c.recv_buf 0 n) in
    let rest = Buffer.sub c.recv_buf n (avail - n) in
    Buffer.clear c.recv_buf;
    Buffer.add_string c.recv_buf rest;
    out
  end

let recv_available c = Buffer.length c.recv_buf

let eof c = c.fin_rcvd && Buffer.length c.recv_buf = 0

let close t c =
  match c.state with
  | Established | Close_wait | Syn_received ->
      c.fin_pending <- true;
      output t c
  | Syn_sent | Listen ->
      c.state <- Closed
  | _ -> ()

let abort t c =
  (match c.state with
  | Established | Syn_received | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
      emit t c ~rst:true ~seq:c.snd_nxt ()
  | _ -> ());
  c.state <- Closed;
  c.error <- Some "aborted"

(* Insert an out-of-order segment keeping the stash sorted and bounded. *)
let stash_ooo c seq payload =
  if List.length c.ooo < 64 then begin
    let rec ins = function
      | [] -> [ (seq, payload) ]
      | (s, p) :: rest as all ->
          if Tcp_wire.seq_lt seq s then (seq, payload) :: all
          else if s = seq then all  (* duplicate stash *)
          else (s, p) :: ins rest
    in
    c.ooo <- ins c.ooo
  end

(* After advancing rcv_nxt, pull any now-contiguous stashed segments. *)
let rec drain_ooo c =
  match c.ooo with
  | (s, p) :: rest when Tcp_wire.seq_leq s c.rcv_nxt ->
      c.ooo <- rest;
      let skip = Tcp_wire.seq_diff c.rcv_nxt s in
      if skip < Bytes.length p then begin
        let fresh = Bytes.sub p skip (Bytes.length p - skip) in
        Buffer.add_bytes c.recv_buf fresh;
        c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt (Bytes.length fresh)
      end;
      drain_ooo c
  | _ -> ()

let deliver_payload c (seg : Tcp_wire.t) =
  let len = Bytes.length seg.payload in
  if len > 0 then begin
    if seg.seq = c.rcv_nxt then begin
      let room = c.rcv_capacity - Buffer.length c.recv_buf in
      let take = min len room in
      Buffer.add_subbytes c.recv_buf seg.payload 0 take;
      c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt take;
      drain_ooo c
    end
    else if Tcp_wire.seq_lt c.rcv_nxt seg.seq then begin
      let dist = Tcp_wire.seq_diff seg.seq c.rcv_nxt in
      if dist < c.rcv_capacity then stash_ooo c seg.seq seg.payload
    end
    else begin
      (* Partially old segment: deliver the fresh tail. *)
      let skip = Tcp_wire.seq_diff c.rcv_nxt seg.seq in
      if skip < len then begin
        let fresh = Bytes.sub seg.payload skip (len - skip) in
        let room = c.rcv_capacity - Buffer.length c.recv_buf in
        let take = min (Bytes.length fresh) room in
        Buffer.add_subbytes c.recv_buf fresh 0 take;
        c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt take;
        drain_ooo c
      end
    end
  end

let process_ack t c (seg : Tcp_wire.t) =
  let ack = seg.Tcp_wire.ack in
  if Tcp_wire.seq_lt c.snd_una ack && Tcp_wire.seq_leq ack c.snd_nxt then begin
    (* New data acknowledged. *)
    let acked = Tcp_wire.seq_diff ack c.snd_una in
    c.snd_una <- ack;
    c.dup_acks <- 0;
    c.snd_wnd <- seg.Tcp_wire.window;
    (* Keep only segments whose end sequence is still unacknowledged. *)
    c.retx <- List.filter (fun e -> Tcp_wire.seq_lt ack (Tcp_wire.seq_add e.rseq (retx_len e))) c.retx;
    (* Congestion control: slow start then additive increase. *)
    if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + min acked c.mss
    else c.cwnd <- c.cwnd + max 1 (c.mss * c.mss / c.cwnd);
    c.rto_ns <- t.base_rto_ns;
    c.rtx_deadline <- (if c.retx = [] then None else Some (Int64.add (t.now ()) c.rto_ns));
    (* Forward progress pays back into the shared retry budget. *)
    (match t.retry_budget with
    | Some rb -> Cio_overload.Retry_budget.on_success rb
    | None -> ());
    (* FIN acked? *)
    (match c.fin_seq with
    | Some fs when Tcp_wire.seq_lt fs ack -> (
        match c.state with
        | Fin_wait_1 -> c.state <- Fin_wait_2
        | Closing ->
            c.state <- Time_wait;
            c.timewait_deadline <- Some (Int64.add (t.now ()) (Int64.mul 2L c.rto_ns))
        | Last_ack -> c.state <- Closed
        | _ -> ())
    | _ -> ());
    output t c
  end
  else if ack = c.snd_una && Bytes.length seg.Tcp_wire.payload = 0 && c.retx <> [] then begin
    (* Duplicate ACK. *)
    c.snd_wnd <- seg.Tcp_wire.window;
    c.dup_acks <- c.dup_acks + 1;
    if c.dup_acks = 3 then begin
      (* Fast retransmit also spends a retry token: when the budget is
         dry the cumulative-ACK / RTO machinery still recovers, just
         without the extra speculative send. *)
      let budget_ok =
        match t.retry_budget with
        | Some rb -> Cio_overload.Retry_budget.try_retry rb
        | None -> true
      in
      match c.retx with
      | e :: _ when budget_ok ->
          let flight = max (in_flight c) c.mss in
          c.ssthresh <- max (flight / 2) (2 * c.mss);
          c.cwnd <- c.ssthresh;
          e.retries <- e.retries + 1;
          e.sent_at <- t.now ();
          note_retransmit t;
          emit t c ~payload:e.rpayload ~syn:e.rsyn ~fin:e.rfin ~seq:e.rseq ()
      | _ -> ()
    end
  end
  else if ack = c.snd_una then c.snd_wnd <- seg.Tcp_wire.window

let handle_synsent t c (seg : Tcp_wire.t) =
  if seg.Tcp_wire.flags.Tcp_wire.rst then begin
    if seg.Tcp_wire.flags.Tcp_wire.ack && seg.Tcp_wire.ack = c.snd_nxt then begin
      c.state <- Closed;
      c.error <- Some "connection refused"
    end
  end
  else if seg.Tcp_wire.flags.Tcp_wire.syn && seg.Tcp_wire.flags.Tcp_wire.ack then begin
    if seg.Tcp_wire.ack = c.snd_nxt then begin
      c.rcv_nxt <- Tcp_wire.seq_add seg.Tcp_wire.seq 1;
      c.snd_una <- seg.Tcp_wire.ack;
      c.snd_wnd <- seg.Tcp_wire.window;
      (match seg.Tcp_wire.mss with Some m -> c.mss <- min m t.default_mss | None -> ());
      c.cwnd <- 2 * c.mss;
      c.retx <- [];
      c.rtx_deadline <- None;
      c.state <- Established;
      emit t c ~seq:c.snd_nxt ();  (* ACK completing the handshake *)
      output t c
    end
    else send_rst t ~dst:c.remote_ip ~to_seg:seg
  end
  else if seg.Tcp_wire.flags.Tcp_wire.ack && seg.Tcp_wire.ack <> c.snd_nxt then
    (* RFC 9293 §3.10.7.3: an unacceptable ACK in SYN-SENT gets a RST.
       This is the ghost-busting path: if our 4-tuple collides with a
       stale connection at the peer (e.g. after an I/O-stack restart),
       the peer's challenge ACK lands here, our RST kills the stale
       conn, and the retransmitted SYN then completes normally. *)
    send_rst t ~dst:c.remote_ip ~to_seg:seg

let seq_acceptable c (seg : Tcp_wire.t) =
  (* RFC 9293 §3.4 acceptability, with the simplification of a constant
     advertised window. *)
  let seg_len = Bytes.length seg.Tcp_wire.payload in
  let wnd = c.rcv_capacity in
  if seg_len = 0 then
    Tcp_wire.seq_leq c.rcv_nxt seg.Tcp_wire.seq
    || Tcp_wire.seq_lt (Tcp_wire.seq_add seg.Tcp_wire.seq (-1)) (Tcp_wire.seq_add c.rcv_nxt wnd)
  else
    Tcp_wire.seq_lt seg.Tcp_wire.seq (Tcp_wire.seq_add c.rcv_nxt wnd)
    && Tcp_wire.seq_lt c.rcv_nxt (Tcp_wire.seq_add seg.Tcp_wire.seq seg_len)
    || seg.Tcp_wire.seq = c.rcv_nxt

let handle_fin t c (seg : Tcp_wire.t) =
  let fin_seq = Tcp_wire.seq_add seg.Tcp_wire.seq (Bytes.length seg.Tcp_wire.payload) in
  if fin_seq = c.rcv_nxt then begin
    c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt 1;
    c.fin_rcvd <- true;
    (match c.state with
    | Established -> c.state <- Close_wait
    | Fin_wait_1 -> c.state <- Closing
    | Fin_wait_2 ->
        c.state <- Time_wait;
        c.timewait_deadline <- Some (Int64.add (t.now ()) (Int64.mul 2L c.rto_ns))
    | _ -> ());
    emit t c ~seq:c.snd_nxt ()
  end

let handle_established t c (seg : Tcp_wire.t) =
  if not (seq_acceptable c seg) then
    (* Unacceptable: ACK and drop (protects against old/replayed data). *)
    emit t c ~seq:c.snd_nxt ()
  else if seg.Tcp_wire.flags.Tcp_wire.rst then begin
    c.state <- Closed;
    c.error <- Some "connection reset by peer"
  end
  else if seg.Tcp_wire.flags.Tcp_wire.syn && Tcp_wire.seq_lt seg.Tcp_wire.seq c.rcv_nxt then
    (* Retransmitted handshake SYN: re-ACK. *)
    emit t c ~seq:c.snd_nxt ()
  else if seg.Tcp_wire.flags.Tcp_wire.syn then
    (* RFC 5961 §4: an in-window SYN on a synchronized connection gets a
       challenge ACK, never silence. If the SYN is a new incarnation of
       the 4-tuple, the sender answers the challenge with a RST and the
       stale connection dies. *)
    emit t c ~seq:c.snd_nxt ()
  else begin
    if seg.Tcp_wire.flags.Tcp_wire.ack then process_ack t c seg;
    let before = c.rcv_nxt in
    deliver_payload c seg;
    if seg.Tcp_wire.flags.Tcp_wire.fin then handle_fin t c seg
    else if c.rcv_nxt <> before || Bytes.length seg.Tcp_wire.payload > 0 then
      (* Data arrived (in order or not): ACK immediately. *)
      emit t c ~seq:c.snd_nxt ()
  end

let handle_synreceived t c l (seg : Tcp_wire.t) =
  if seg.Tcp_wire.flags.Tcp_wire.rst then c.state <- Closed
  else if seg.Tcp_wire.flags.Tcp_wire.ack && seg.Tcp_wire.ack = c.snd_nxt then begin
    c.snd_una <- seg.Tcp_wire.ack;
    c.snd_wnd <- seg.Tcp_wire.window;
    c.retx <- [];
    c.rtx_deadline <- None;
    c.state <- Established;
    (match l with
    | Some l when List.length l.accept_queue < l.backlog ->
        l.accept_queue <- l.accept_queue @ [ c ]
    | _ -> ());
    (* The completing ACK may already carry data. *)
    if Bytes.length seg.Tcp_wire.payload > 0 then handle_established t c seg
  end
  else if seg.Tcp_wire.flags.Tcp_wire.syn && Bytes.length seg.Tcp_wire.payload = 0 then
    (* Retransmitted SYN: resend SYN-ACK. *)
    match c.retx with
    | e :: _ -> emit t c ~payload:e.rpayload ~syn:e.rsyn ~fin:e.rfin ~seq:e.rseq ()
    | [] -> ()

let input t ~src (seg : Tcp_wire.t) =
  t.segments_in <- t.segments_in + 1;
  Cio_telemetry.Metrics.inc m_segments_in;
  charge_stack t (Bytes.length seg.Tcp_wire.payload);
  match
    find_conn t ~local_port:seg.Tcp_wire.dst_port ~remote_ip:src ~remote_port:seg.Tcp_wire.src_port
  with
  | Some c -> (
      match c.state with
      | Syn_sent -> handle_synsent t c seg
      | Syn_received ->
          handle_synreceived t c (find_listener t ~port:c.local_port) seg
      | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
          handle_established t c seg
      | Time_wait ->
          if seg.Tcp_wire.flags.Tcp_wire.fin then emit t c ~seq:c.snd_nxt ()
      | Listen | Closed -> send_rst t ~dst:src ~to_seg:seg)
  | None -> (
      match find_listener t ~port:seg.Tcp_wire.dst_port with
      | Some _ when seg.Tcp_wire.flags.Tcp_wire.syn && not seg.Tcp_wire.flags.Tcp_wire.ack ->
          let c =
            fresh_conn t ~local_port:seg.Tcp_wire.dst_port ~remote_ip:src
              ~remote_port:seg.Tcp_wire.src_port ~state:Syn_received
          in
          c.rcv_nxt <- Tcp_wire.seq_add seg.Tcp_wire.seq 1;
          (match seg.Tcp_wire.mss with Some m -> c.mss <- min m t.default_mss | None -> ());
          c.cwnd <- 2 * c.mss;
          c.snd_wnd <- seg.Tcp_wire.window;
          let seq = c.snd_nxt in
          c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt 1;
          record_retx t c ~seq ~payload:Bytes.empty ~syn:true ~fin:false;
          emit t c ~syn:true ~seq ()
      | _ -> send_rst t ~dst:src ~to_seg:seg)

let tick t =
  let now = t.now () in
  List.iter
    (fun c ->
      (match c.timewait_deadline with
      | Some d when d <= now -> c.state <- Closed
      | _ -> ());
      match c.rtx_deadline with
      | Some d when d <= now -> (
          match c.retx with
          | [] -> c.rtx_deadline <- None
          | e :: _ ->
              if e.retries >= t.max_retries then begin
                c.state <- Closed;
                c.error <- Some "retransmission limit exceeded";
                c.rtx_deadline <- None
              end
              else begin
                match t.retry_budget with
                | Some rb when not (Cio_overload.Retry_budget.try_retry rb) ->
                    (* Budget dry: defer without spending a retry or
                       touching cwnd. The decorrelated-jitter backoff
                       paces the re-attempt so a fleet of starved
                       connections cannot retry in lockstep. *)
                    c.rtx_deadline <-
                      Some (Int64.add now (Cio_overload.Retry_budget.backoff_ns rb))
                | budget ->
                    e.retries <- e.retries + 1;
                    e.sent_at <- now;
                    (* Exponential backoff and multiplicative decrease. *)
                    c.rto_ns <- Int64.mul 2L c.rto_ns;
                    c.ssthresh <- max (in_flight c / 2) (2 * c.mss);
                    c.cwnd <- c.mss;
                    (* With a budget attached, pacing takes the worse of
                       the per-connection RTO and the shared jittered
                       backoff. *)
                    let pace =
                      match budget with
                      | Some rb ->
                          Int64.max c.rto_ns (Cio_overload.Retry_budget.backoff_ns rb)
                      | None -> c.rto_ns
                    in
                    c.rtx_deadline <- Some (Int64.add now pace);
                    note_retransmit t;
                    if e.rsyn && c.state = Syn_sent then
                      emit t c ~payload:e.rpayload ~syn:true ~ack:false ~seq:e.rseq ()
                    else emit t c ~payload:e.rpayload ~syn:e.rsyn ~fin:e.rfin ~seq:e.rseq ()
              end)
      | _ -> ())
    t.conns;
  (* Garbage-collect closed connections. *)
  t.conns <- List.filter (fun c -> c.state <> Closed || c.error <> None) t.conns

let gc t = t.conns <- List.filter (fun c -> c.state <> Closed) t.conns
