(** IP stack facade: Ethernet/IPv4 demux over a polling {!Netif.t}, UDP
    sockets, and a {!Tcp.t} instance. Neighbour resolution is a static
    table (zero-negotiation principle). *)

open Cio_util
open Cio_frame

type udp_socket

type counters = {
  mutable frames_in : int;
  mutable frames_out : int;
  mutable dropped : int;
  mutable last_drop_reason : string;
}

type t

val create :
  ?ttl:int ->
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  ?tx_burst:(bytes array -> int) ->
  ?recycle:(bytes -> unit) ->
  ?tx_queue_limit:int ->
  ?retry_budget:Cio_overload.Retry_budget.t ->
  netif:Netif.t ->
  ip:Addr.ipv4 ->
  neighbors:(Addr.ipv4 * Addr.mac) list ->
  now:(unit -> int64) ->
  rng:Rng.t ->
  unit ->
  t
(** [tx_burst] enables TX coalescing: outgoing frames queue and flush as
    bursts at the end of each {!poll} (the function returns how many of
    the batch were accepted; the tail is retried next flush). [recycle]
    returns drained RX frame buffers to the driver's pool after parsing.
    Omitting both yields the classic frame-at-a-time stack.
    [tx_queue_limit] bounds the coalescing queue: a full queue sheds new
    frames (counted under [dropped] and [overload.bp.queue_full])
    instead of growing without limit while the ring is full.
    [retry_budget] makes TCP retransmits (RTO and fast) spend from the
    shared overload-plane budget. *)

val tcp : t -> Tcp.t
val ip : t -> Addr.ipv4
val counters : t -> counters
val meter : t -> Cost.meter

val tx_backlog : t -> int
(** Frames waiting in the TX coalescing queue. *)

val tx_pressure : t -> Cio_overload.Pressure.level
(** Queue occupancy vs [tx_queue_limit]; [Nominal] when unbounded. *)

val send_udp : t -> src_port:int -> dst:Addr.ipv4 -> dst_port:int -> bytes -> unit

val udp_bind : t -> port:int -> udp_socket
val udp_recv : udp_socket -> (Addr.ipv4 * int * bytes) option
val udp_port : udp_socket -> int

val handle_frame : t -> bytes -> unit
(** Inject one raw Ethernet frame (normally called via {!poll}). *)

val poll : ?budget:int -> t -> unit
(** Drain up to [budget] received frames, run TCP timers, then flush
    coalesced TX (when [tx_burst] was given). *)

val flush_tx : t -> unit
(** Push any coalesced pending TX frames out as bursts now. No-op
    without [tx_burst]. *)
