(* Benchmark harness.

   Two parts:

   1. The experiment tables — one section per paper figure (F2-F5) and
      per §3 exploration (E1-E11), printing the rows/series the figure
      reports (simulated-metric results; see EXPERIMENTS.md for the
      paper-vs-measured comparison). This is what `bench/main.exe` is for.

   2. Bechamel micro-benchmarks — one Test.make per experiment datapath,
      measuring this implementation's real wall-clock time for the same
      operations (ring ops, driver pairs, record protection, crypto,
      compartment calls, end-to-end echoes). These validate that the
      simulator itself is fast enough to be used as a substrate.

   Usage:
     bench/main.exe                 # tables + micro-benchmarks
     bench/main.exe tables          # tables only
     bench/main.exe micro           # micro-benchmarks only
     bench/main.exe fig5 e2 ...     # selected tables only

   Flags (combine with any mode):
     --json FILE    also write machine-readable results (experiment text,
                    micro ns/run, telemetry metrics snapshot) to FILE
     --smoke        restrict tables to a fast subset (CI)
*)

open Bechamel
open Toolkit

(* --- part 2: Bechamel micro-benchmarks ------------------------------- *)

let test_ring_roundtrip positioning name =
  let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.positioning } in
  let drv = Cio_cionet.Driver.create ~name:("bench-" ^ name) cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let payload = Bytes.make 1024 'b' in
  Test.make ~name:("cionet-" ^ name)
    (Staged.stage (fun () ->
         ignore (Cio_cionet.Driver.transmit drv payload);
         Cio_cionet.Host_model.poll host;
         Cio_cionet.Host_model.deliver_rx host payload;
         Cio_cionet.Host_model.poll host;
         ignore (Cio_cionet.Driver.poll drv)))

(* Burst datapath: one run moves [depth] frames end to end (burst
   transmit -> host burst drain/refill -> burst receive, buffers
   recycled), so ns/run ÷ depth is comparable with the single-slot
   round-trip above. *)
let test_ring_burst positioning name ~depth =
  let cfg =
    { Cio_cionet.Config.default with Cio_cionet.Config.positioning; ring_slots = 128 }
  in
  let drv = Cio_cionet.Driver.create ~name:(Printf.sprintf "bench-burst-d%d-%s" depth name) cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let batch = Array.make depth (Bytes.make 1024 'b') in
  Test.make ~name:(Printf.sprintf "cionet-burst-d%d-%s" depth name)
    (Staged.stage (fun () ->
         ignore (Cio_cionet.Driver.transmit_burst drv batch);
         Cio_cionet.Host_model.poll host;
         Array.iter (Cio_cionet.Host_model.deliver_rx host) batch;
         Cio_cionet.Host_model.poll host;
         List.iter (Cio_cionet.Driver.recycle drv) (Cio_cionet.Driver.poll_burst ~max:depth drv)))

let test_cionet_revoke () =
  let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.rx_strategy = Cio_cionet.Config.Revoke } in
  let drv = Cio_cionet.Driver.create ~name:"bench-revoke" cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let payload = Bytes.make 4096 'r' in
  Test.make ~name:"cionet-rx-revoke"
    (Staged.stage (fun () ->
         Cio_cionet.Host_model.deliver_rx host payload;
         Cio_cionet.Host_model.poll host;
         ignore (Cio_cionet.Driver.poll drv)))

let test_virtio ~hardened name =
  let transport = Cio_virtio.Transport.create ~name:("bench-" ^ name) () in
  let dev =
    Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx transport)
      ~tx:(Cio_virtio.Transport.tx transport) ~transmit:(fun _ -> ())
  in
  let payload = Bytes.make 1024 'v' in
  if hardened then begin
    let drv = Cio_virtio.Driver_hardened.create transport in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Cio_virtio.Driver_hardened.transmit drv payload);
           Cio_virtio.Device.deliver_rx dev payload;
           Cio_virtio.Device.poll dev;
           ignore (Cio_virtio.Driver_hardened.poll drv)))
  end
  else begin
    let drv = Cio_virtio.Driver_unhardened.create transport in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Cio_virtio.Driver_unhardened.transmit drv payload);
           Cio_virtio.Device.deliver_rx dev payload;
           Cio_virtio.Device.poll dev;
           ignore (Cio_virtio.Driver_unhardened.poll drv)))
  end

let test_tls_record () =
  let rng = Cio_util.Rng.create 1L in
  let psk = Bytes.make 32 'p' in
  let c = Cio_tls.Session.create ~role:Cio_tls.Session.Client ~psk ~psk_id:"b" ~rng () in
  let s = Cio_tls.Session.create ~role:Cio_tls.Session.Server ~psk ~psk_id:"b" ~rng () in
  let cat l = List.fold_left Bytes.cat Bytes.empty l in
  let f1 = match Cio_tls.Session.initiate c with Ok o -> cat o | Error _ -> assert false in
  let r1 = Cio_tls.Session.feed s f1 in
  let r2 = Cio_tls.Session.feed c (cat r1.Cio_tls.Session.outputs) in
  ignore (Cio_tls.Session.feed s (cat r2.Cio_tls.Session.outputs));
  let payload = Bytes.make 1024 't' in
  Test.make ~name:"tls-seal-open-1KiB"
    (Staged.stage (fun () ->
         match Cio_tls.Session.send_data c payload with
         | Ok wire -> ignore (Cio_tls.Session.feed s wire)
         | Error _ -> assert false))

let test_crypto_primitives () =
  let data = Bytes.make 4096 'c' in
  let key = Bytes.make 32 'k' and nonce = Bytes.make 12 'n' in
  [
    Test.make ~name:"sha256-4KiB" (Staged.stage (fun () -> ignore (Cio_crypto.Sha256.digest_bytes data)));
    Test.make ~name:"aead-seal-4KiB"
      (Staged.stage (fun () -> ignore (Cio_crypto.Aead.seal ~key ~nonce ~aad:Bytes.empty data)));
  ]

let test_packed ~hardened name =
  let tr = Cio_virtio.Packed.create_transport ~name:("bench-" ^ name) () in
  let dev = Cio_virtio.Packed.create_device ~transport:tr ~transmit:(fun _ -> ()) in
  let drv = Cio_virtio.Packed.create_driver ~hardened tr in
  let payload = Bytes.make 1024 'p' in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Cio_virtio.Packed.driver_transmit drv payload);
         Cio_virtio.Packed.device_deliver_rx dev payload;
         Cio_virtio.Packed.device_poll dev;
         ignore (Cio_virtio.Packed.driver_poll drv)))

(* One run = one boundary admission decision (token bucket + breaker +
   deadline stamp), on a warm bucket: the cost every admitted send now
   pays at the Dual/compartment boundary. *)
let test_overload_admission () =
  let clock = ref 0L in
  let plane =
    Cio_overload.Plane.create ~rng:(Cio_util.Rng.create 11L) ~now:(fun () -> !clock) ()
  in
  Test.make ~name:"cionet-overload-admission"
    (Staged.stage (fun () ->
         (* 1µs per call keeps the bucket refilled at the default
            100k/s rate, so the steady-state admit path is measured. *)
         clock := Int64.add !clock 1_000L;
         ignore (Cio_overload.Plane.admit plane Cio_overload.Admission.Interactive)))

let test_compartment_call () =
  let open Cio_compartment in
  let w = Compartment.create ~crossing:Compartment.Gate () in
  let a = Compartment.add_domain w ~name:"a" and b = Compartment.add_domain w ~name:"b" in
  Test.make ~name:"compartment-gate-call"
    (Staged.stage (fun () -> Compartment.call w ~caller:a ~callee:b ignore))

let test_echo_configuration kind =
  Test.make
    ~name:("echo-" ^ Cio_core.Configurations.kind_name kind)
    (Staged.stage (fun () ->
         ignore (Cio_core.Configurations.run_echo ~messages:5 ~msg_size:512 kind)))

let test_storage () =
  let dev, _ = Cio_storage.Blockdev.create ~name:"bench-store" ~blocks:256 () in
  let store = Cio_storage.Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  let content = Bytes.make 8192 's' in
  let counter = ref 0 in
  Test.make ~name:"dual-store-write-read-8KiB"
    (Staged.stage (fun () ->
         incr counter;
         let name = Printf.sprintf "f%d" (!counter mod 8) in
         ignore (Cio_storage.Dual_store.write_file store ~name content);
         ignore (Cio_storage.Dual_store.read_file store ~name)))

let test_dda () =
  let rng = Cio_util.Rng.create 3L in
  match Cio_dda.Dda.establish ~rng () with
  | Error _ -> Test.make ~name:"dda-transfer-4KiB" (Staged.stage (fun () -> ()))
  | Ok t ->
      let payload = Bytes.make 4096 'd' in
      Test.make ~name:"dda-transfer-4KiB"
        (Staged.stage (fun () -> ignore (Cio_dda.Dda.transfer t payload)))

let micro_tests ?(smoke = false) () =
  (* The cionet subset is the perf trajectory CI tracks against
     BENCH_baseline.json; --smoke runs only these. *)
  let cionet =
    [
      test_ring_roundtrip (Cio_cionet.Config.Inline { data_capacity = 4096 }) "inline";
      test_ring_roundtrip (Cio_cionet.Config.Pool { pool_slots = 128; pool_slot_size = 2048 }) "pool";
      test_ring_roundtrip
        (Cio_cionet.Config.Indirect { desc_count = 128; pool_slots = 128; pool_slot_size = 2048 })
        "indirect";
      test_cionet_revoke ();
      test_ring_burst (Cio_cionet.Config.Inline { data_capacity = 4096 }) "inline" ~depth:16;
      test_ring_burst (Cio_cionet.Config.Pool { pool_slots = 256; pool_slot_size = 2048 }) "pool"
        ~depth:16;
      test_ring_burst
        (Cio_cionet.Config.Indirect { desc_count = 256; pool_slots = 256; pool_slot_size = 2048 })
        "indirect" ~depth:16;
      test_ring_burst (Cio_cionet.Config.Inline { data_capacity = 4096 }) "inline" ~depth:64;
      test_overload_admission ();
    ]
  in
  let full =
    [
      test_virtio ~hardened:false "virtio-unhardened";
      test_virtio ~hardened:true "virtio-hardened";
      test_packed ~hardened:false "packed-unhardened";
      test_packed ~hardened:true "packed-hardened";
      test_tls_record ();
      test_compartment_call ();
      test_storage ();
      test_dda ();
    ]
    @ test_crypto_primitives ()
    @ List.map test_echo_configuration Cio_core.Configurations.all_kinds
  in
  Test.make_grouped ~name:"cio" (if smoke then cionet else cionet @ full)

let () = Bechamel_notty.Unit.add Instance.monotonic_clock "ns"

(* Returns the merged OLS results so the --json path can extract ns/run
   per test after the notty table has been printed. *)
let run_micro ?(smoke = false) () =
  Fmt.pr "@.=== Bechamel micro-benchmarks (wall time of this implementation) ===@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances (micro_tests ~smoke ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image;
  results

(* --- machine-readable output (--json) -------------------------------- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_json_string buf s =
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"'

let micro_ns_per_run results =
  (* merged results: measure label -> (test name -> OLS). One instance
     (monotonic_clock), so just flatten. *)
  let out = ref [] in
  Hashtbl.iter
    (fun _label per_test ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (ns :: _) -> out := (name, ns) :: !out
          | _ -> ())
        per_test)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let write_json ~file ~mode ~smoke ~experiments ~micro =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"schema\":\"cio-bench-v1\",\"mode\":";
  add_json_string buf mode;
  Buffer.add_string buf (Printf.sprintf ",\"smoke\":%b" smoke);
  Buffer.add_string buf ",\"experiments\":[";
  List.iteri
    (fun i (id, title, output) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"id\":";
      add_json_string buf id;
      Buffer.add_string buf ",\"title\":";
      add_json_string buf title;
      Buffer.add_string buf ",\"output\":";
      add_json_string buf output;
      Buffer.add_char buf '}')
    experiments;
  Buffer.add_string buf "],\"micro_ns_per_run\":{";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf name;
      Buffer.add_string buf (Printf.sprintf ":%.2f" ns))
    micro;
  Buffer.add_string buf "},\"metrics\":";
  Cio_telemetry.Metrics.to_json buf Cio_telemetry.Metrics.default;
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "wrote %s@." file

(* Fast, information-dense subset for CI smoke runs. *)
let smoke_ids = [ "fig2"; "fig3"; "fig4"; "e1"; "e2"; "e11"; "e21"; "e22" ]

(* Run one experiment, teeing its output to stdout and into the
   accumulator for --json. *)
let run_captured acc ?title id =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  (match title with Some t -> Fmt.pr "=== %s: %s ===@." id t | None -> ());
  let known = Cio_experiments.Experiments.run_one ppf id in
  Format.pp_print_flush ppf ();
  if known then begin
    print_string (Buffer.contents buf);
    Fmt.pr "@.";
    let title = match title with Some t -> t | None -> "" in
    acc := (id, title, Buffer.contents buf) :: !acc
  end
  else Fmt.epr "unknown experiment: %s@." id;
  known

let () =
  Cio_tcb.Tcb.set_repo_root ".";
  let rec parse (json, smoke, words) = function
    | [] -> (json, smoke, List.rev words)
    | "--json" :: file :: rest -> parse (Some file, smoke, words) rest
    | "--smoke" :: rest -> parse (json, true, words) rest
    | w :: rest -> parse (json, smoke, w :: words) rest
  in
  let json, smoke, words = parse (None, false, []) (List.tl (Array.to_list Sys.argv)) in
  let acc = ref [] in
  let table_ids () =
    List.filter_map
      (fun (id, title, _) ->
        if (not smoke) || List.mem id smoke_ids then Some (id, title) else None)
      Cio_experiments.Experiments.all
  in
  let run_tables () =
    List.iter (fun (id, title) -> ignore (run_captured acc ~title id)) (table_ids ())
  in
  let mode, micro =
    match words with
    | [] ->
        run_tables ();
        let r = run_micro ~smoke () in
        ("all", micro_ns_per_run r)
    | [ "tables" ] ->
        run_tables ();
        ("tables", [])
    | [ "micro" ] ->
        let r = run_micro ~smoke () in
        ("micro", micro_ns_per_run r)
    | ids ->
        let ok = List.for_all (fun id -> run_captured acc id) ids in
        if not ok then exit 1;
        ("select", [])
  in
  match json with
  | Some file -> write_json ~file ~mode ~smoke ~experiments:(List.rev !acc) ~micro
  | None -> ()
