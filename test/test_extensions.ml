(* Extension-feature tests: hot swap (E12), frame padding (E13), and
   experiment-registry smoke coverage. *)

open Cio_cionet
open Cio_util

(* --- hot swap ----------------------------------------------------------- *)

let make_pair () =
  let drv = Driver.create ~name:"hs" Config.default in
  let sent = ref [] in
  let host = Host_model.create ~driver:drv ~transmit:(fun f -> sent := f :: !sent) in
  (drv, host, sent)

let test_hot_swap_revokes_old_region () =
  let drv, host, _ = make_pair () in
  let old_region = Driver.region drv in
  Driver.hot_swap drv;
  (* The entire old region is gone from the host's view. *)
  (match Cio_mem.Region.host_read old_region ~off:0 ~len:16 with
  | _ -> Alcotest.fail "old region must be revoked wholesale"
  | exception Cio_mem.Region.Fault _ -> ());
  Alcotest.(check int) "generation bumped" 1 (Driver.generation drv);
  (* A host still holding the old rings faults harmlessly. *)
  Host_model.deliver_rx host (Bytes.of_string "late");
  Host_model.poll host;
  Alcotest.(check bool) "stale host faults absorbed" ((Host_model.stats host).Host_model.faults > 0)
    true

let test_hot_swap_traffic_resumes () =
  let drv, host, sent = make_pair () in
  ignore (Driver.transmit drv (Bytes.of_string "before"));
  Host_model.poll host;
  Alcotest.(check int) "pre-swap tx" 1 (List.length !sent);
  Driver.hot_swap drv;
  Host_model.reattach host ~driver:drv;
  ignore (Driver.transmit drv (Bytes.of_string "after"));
  Host_model.poll host;
  Alcotest.(check int) "post-swap tx" 2 (List.length !sent);
  Helpers.check_bytes "post-swap content" (Bytes.of_string "after") (List.hd !sent);
  Host_model.deliver_rx host (Bytes.of_string "rx-after");
  Host_model.poll host;
  (match Driver.poll drv with
  | Some f -> Helpers.check_bytes "rx after swap" (Bytes.of_string "rx-after") f
  | None -> Alcotest.fail "rx lost after swap")

let test_hot_swap_repeated () =
  let drv, host, sent = make_pair () in
  for g = 1 to 5 do
    Driver.hot_swap drv;
    Host_model.reattach host ~driver:drv;
    Alcotest.(check int) "generation" g (Driver.generation drv);
    ignore (Driver.transmit drv (Bytes.of_string (Printf.sprintf "gen-%d" g)));
    Host_model.poll host
  done;
  Alcotest.(check int) "one frame per generation" 5 (List.length !sent)

let test_hot_swap_meter_continuity () =
  let drv, _, _ = make_pair () in
  let m = Driver.guest_meter drv in
  ignore (Driver.transmit drv (Bytes.of_string "x"));
  let before = Cost.total m in
  Driver.hot_swap drv;
  Alcotest.(check bool) "meter survives swap (revocation charged on it)" true
    (Cost.total m > before)

(* --- frame padding ------------------------------------------------------- *)

let test_padding_uniform_sizes () =
  let cfg = { Config.default with Config.pad_frames = true } in
  let drv = Driver.create ~name:"pad" cfg in
  let sizes = ref [] in
  let host = Host_model.create ~driver:drv ~transmit:(fun f -> sizes := Bytes.length f :: !sizes) in
  List.iter
    (fun n -> ignore (Driver.transmit drv (Bytes.make n 'x')))
    [ 40; 333; 1000; 1514 ];
  Host_model.poll host;
  Alcotest.(check (list int)) "all frames MTU-sized" [ 1514; 1514; 1514; 1514 ] !sizes

let test_padding_preserves_ip_payload () =
  (* End-to-end over two stacks: the padded frames must still parse (IPv4
     total length strips the padding). *)
  let cfg = { Config.default with Config.pad_frames = true; Config.mac = Helpers.mac_a } in
  let drv = Driver.create ~name:"pad2" cfg in
  let peer_rx = Queue.create () in
  let host = Host_model.create ~driver:drv ~transmit:(fun f -> Queue.add f peer_rx) in
  let clock = ref 0L in
  let now () = !clock in
  let rng = Rng.create 21L in
  let stack_a =
    Cio_tcpip.Stack.create ~netif:(Driver.to_netif drv) ~ip:Helpers.ip_a
      ~neighbors:[ (Helpers.ip_b, Helpers.mac_b) ] ~now ~rng:(Rng.split rng) ()
  in
  let b_out = Queue.create () in
  let nif_b =
    {
      Cio_tcpip.Netif.mac = Helpers.mac_b;
      mtu = 1500;
      transmit = (fun f -> Queue.add f b_out);
      poll = (fun () -> if Queue.is_empty peer_rx then None else Some (Queue.take peer_rx));
    }
  in
  let stack_b =
    Cio_tcpip.Stack.create ~netif:nif_b ~ip:Helpers.ip_b
      ~neighbors:[ (Helpers.ip_a, Helpers.mac_a) ] ~now ~rng:(Rng.split rng) ()
  in
  let sock = Cio_tcpip.Stack.udp_bind stack_b ~port:9 in
  Cio_tcpip.Stack.send_udp stack_a ~src_port:8 ~dst:Helpers.ip_b ~dst_port:9
    (Bytes.of_string "small payload");
  Host_model.poll host;
  Cio_tcpip.Stack.poll stack_b;
  match Cio_tcpip.Stack.udp_recv sock with
  | Some (_, _, payload) -> Helpers.check_bytes "padding stripped" (Bytes.of_string "small payload") payload
  | None -> Alcotest.fail "padded datagram not delivered"

(* --- multi-queue ----------------------------------------------------------- *)

let test_multiqueue_flow_pinning () =
  let mq = Multiqueue.create ~name:"mq" ~queues:4 Config.default in
  for flow = 0 to 31 do
    let q = Multiqueue.queue_for mq ~flow_hash:flow in
    Alcotest.(check int) "stable steering" q (Multiqueue.queue_for mq ~flow_hash:flow);
    Alcotest.(check bool) "in range" true (q >= 0 && q < 4)
  done

let test_multiqueue_roundtrip_all_queues () =
  let mq = Multiqueue.create ~name:"mq2" ~queues:4 Config.default in
  let hosts =
    List.map (fun d -> Host_model.create ~driver:d ~transmit:(fun _ -> ())) (Multiqueue.queues mq)
  in
  (* Deliver one frame into every queue's RX and drain them all through
     the round-robin poll. *)
  List.iteri
    (fun i host -> Host_model.deliver_rx host (Bytes.of_string (Printf.sprintf "rx-q%d" i)))
    hosts;
  for flow = 0 to 7 do
    Alcotest.(check bool) "tx accepted" true
      (Multiqueue.transmit mq ~flow_hash:flow (Bytes.of_string (Printf.sprintf "tx-%d" flow)))
  done;
  List.iter Host_model.poll hosts;
  let received = ref 0 in
  for _ = 1 to 16 do
    match Multiqueue.poll mq with Some _ -> incr received | None -> ()
  done;
  Alcotest.(check int) "all queue deliveries drained" 4 !received

let test_multiqueue_per_flow_ordering () =
  let mq = Multiqueue.create ~name:"mq3" ~queues:2 Config.default in
  let forwarded = ref [] in
  let hosts =
    List.map
      (fun d ->
        Host_model.create ~driver:d ~transmit:(fun f -> forwarded := Bytes.to_string f :: !forwarded))
      (Multiqueue.queues mq)
  in
  (* Interleave two flows; within each flow order must be preserved. *)
  for i = 1 to 10 do
    ignore (Multiqueue.transmit mq ~flow_hash:0 (Bytes.of_string (Printf.sprintf "a%02d" i)));
    ignore (Multiqueue.transmit mq ~flow_hash:1 (Bytes.of_string (Printf.sprintf "b%02d" i)));
    List.iter Host_model.poll hosts
  done;
  let seq prefix =
    List.rev !forwarded |> List.filter (fun s -> String.length s > 0 && s.[0] = prefix)
  in
  Alcotest.(check (list string)) "flow a ordered"
    (List.init 10 (fun i -> Printf.sprintf "a%02d" (i + 1)))
    (seq 'a');
  Alcotest.(check (list string)) "flow b ordered"
    (List.init 10 (fun i -> Printf.sprintf "b%02d" (i + 1)))
    (seq 'b')

let test_multiqueue_critical_path () =
  let mq = Multiqueue.create ~name:"mq4" ~queues:4 Config.default in
  let hosts =
    List.map (fun d -> Host_model.create ~driver:d ~transmit:(fun _ -> ())) (Multiqueue.queues mq)
  in
  for flow = 0 to 15 do
    ignore (Multiqueue.transmit mq ~flow_hash:flow (Bytes.make 512 'x'))
  done;
  List.iter Host_model.poll hosts;
  Alcotest.(check bool) "critical path < total" true
    (Multiqueue.critical_path_cycles mq < Multiqueue.total_cycles mq);
  Alcotest.(check bool) "roughly a quarter" true
    (Multiqueue.critical_path_cycles mq * 3 < Multiqueue.total_cycles mq)

(* --- experiment registry smoke ------------------------------------------- *)

let test_every_experiment_runs () =
  Cio_tcb.Tcb.set_repo_root ".";
  List.iter
    (fun (id, _, f) ->
      (* Skip the slowest end-to-end sweeps here; they run in bench and in
         the dedicated core tests. *)
      if not (List.mem id [ "fig5"; "e5"; "e12"; "e14"; "e16"; "e18" ]) then begin
        let buf = Buffer.create 4096 in
        let ppf = Format.formatter_of_buffer buf in
        f ppf ();
        Format.pp_print_flush ppf ();
        Alcotest.(check bool) (id ^ " produces output") true (Buffer.length buf > 100)
      end)
    Cio_experiments.Experiments.all

let test_experiment_registry_complete () =
  let ids = List.map (fun (id, _, _) -> id) Cio_experiments.Experiments.all in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required ids))
    [ "fig2"; "fig3"; "fig4"; "fig5"; "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9";
      "e10"; "e11"; "e12"; "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ];
  Alcotest.(check bool) "unknown id rejected" true
    (Cio_experiments.Experiments.find "e999" = None)

let suite =
  [
    Alcotest.test_case "hot swap: old region revoked" `Quick test_hot_swap_revokes_old_region;
    Alcotest.test_case "hot swap: traffic resumes" `Quick test_hot_swap_traffic_resumes;
    Alcotest.test_case "hot swap: repeated generations" `Quick test_hot_swap_repeated;
    Alcotest.test_case "hot swap: meter continuity" `Quick test_hot_swap_meter_continuity;
    Alcotest.test_case "padding: uniform wire sizes" `Quick test_padding_uniform_sizes;
    Alcotest.test_case "padding: transparent to IP" `Quick test_padding_preserves_ip_payload;
    Alcotest.test_case "multiqueue: stable flow pinning" `Quick test_multiqueue_flow_pinning;
    Alcotest.test_case "multiqueue: roundtrip all queues" `Quick test_multiqueue_roundtrip_all_queues;
    Alcotest.test_case "multiqueue: per-flow ordering" `Quick test_multiqueue_per_flow_ordering;
    Alcotest.test_case "multiqueue: critical path" `Quick test_multiqueue_critical_path;
    Alcotest.test_case "experiments: all runnable" `Slow test_every_experiment_runs;
    Alcotest.test_case "experiments: registry complete" `Quick test_experiment_registry_complete;
  ]
