(* Regression tests for the reproduced result *shapes*: every claim in
   EXPERIMENTS.md that is an ordering, crossover or dominance is pinned
   here so that a refactor that silently breaks a headline result fails
   the suite, not just changes a table. *)

open Cio_util

(* E1: inline <= pool < indirect at every size. *)
let test_e1_positioning_order () =
  let cost positioning size =
    let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.positioning } in
    let drv = Cio_cionet.Driver.create ~name:"shape-e1" cfg in
    let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
    let payload = Bytes.make size 's' in
    let m = Cio_cionet.Driver.guest_meter drv in
    for _ = 1 to 16 do
      ignore (Cio_cionet.Driver.transmit drv payload);
      Cio_cionet.Host_model.poll host;
      Cio_cionet.Host_model.deliver_rx host payload;
      Cio_cionet.Host_model.poll host;
      ignore (Cio_cionet.Driver.poll drv)
    done;
    Cost.total m
  in
  List.iter
    (fun size ->
      let inline = cost (Cio_cionet.Config.Inline { data_capacity = 2048 }) size in
      let pool = cost (Cio_cionet.Config.Pool { pool_slots = 128; pool_slot_size = 2048 }) size in
      let indirect =
        cost (Cio_cionet.Config.Indirect { desc_count = 128; pool_slots = 128; pool_slot_size = 2048 }) size
      in
      Alcotest.(check bool) (Printf.sprintf "inline <= pool @ %d" size) true (inline <= pool);
      Alcotest.(check bool) (Printf.sprintf "pool < indirect @ %d" size) true (pool < indirect))
    [ 64; 1024 ]

(* E2: copy wins small, revocation wins large — the crossover exists. *)
let test_e2_crossover_exists () =
  let rx_cost strategy size =
    let capacity = max 4096 (Bitops.next_power_of_two size) in
    let cfg =
      {
        Cio_cionet.Config.default with
        Cio_cionet.Config.positioning = Cio_cionet.Config.Inline { data_capacity = capacity };
        rx_strategy = strategy;
        ring_slots = 16;
      }
    in
    let drv = Cio_cionet.Driver.create ~name:"shape-e2" cfg in
    let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
    let payload = Bytes.make size 'r' in
    let m = Cio_cionet.Driver.guest_meter drv in
    for _ = 1 to 8 do
      Cio_cionet.Host_model.deliver_rx host payload;
      Cio_cionet.Host_model.poll host;
      ignore (Cio_cionet.Driver.poll drv)
    done;
    Cost.total m
  in
  Alcotest.(check bool) "copy wins at 1 KiB" true
    (rx_cost Cio_cionet.Config.Copy_in 1024 < rx_cost Cio_cionet.Config.Revoke 1024);
  Alcotest.(check bool) "revocation wins at 64 KiB" true
    (rx_cost Cio_cionet.Config.Revoke 65536 < rx_cost Cio_cionet.Config.Copy_in 65536)

(* E3: cionet < virtio-unhardened < virtio-hardened per frame pair. *)
let test_e3_transport_order () =
  let virtio hardened =
    let transport = Cio_virtio.Transport.create ~name:"shape-e3" () in
    let dev =
      Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx transport)
        ~tx:(Cio_virtio.Transport.tx transport) ~transmit:(fun _ -> ())
    in
    let m = Cio_mem.Region.meter (Cio_virtio.Transport.region transport) in
    let payload = Bytes.make 1500 'f' in
    (if hardened then begin
       let drv = Cio_virtio.Driver_hardened.create transport in
       for _ = 1 to 16 do
         ignore (Cio_virtio.Driver_hardened.transmit drv payload);
         Cio_virtio.Device.deliver_rx dev payload;
         Cio_virtio.Device.poll dev;
         ignore (Cio_virtio.Driver_hardened.poll drv)
       done
     end
     else begin
       let drv = Cio_virtio.Driver_unhardened.create transport in
       for _ = 1 to 16 do
         ignore (Cio_virtio.Driver_unhardened.transmit drv payload);
         Cio_virtio.Device.deliver_rx dev payload;
         Cio_virtio.Device.poll dev;
         ignore (Cio_virtio.Driver_unhardened.poll drv)
       done
     end);
    Cost.total m
  in
  let cionet =
    let drv = Cio_cionet.Driver.create ~name:"shape-e3c" Cio_cionet.Config.default in
    let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
    let payload = Bytes.make 1500 'f' in
    for _ = 1 to 16 do
      ignore (Cio_cionet.Driver.transmit drv payload);
      Cio_cionet.Host_model.poll host;
      Cio_cionet.Host_model.deliver_rx host payload;
      Cio_cionet.Host_model.poll host;
      ignore (Cio_cionet.Driver.poll drv)
    done;
    Cost.total (Cio_cionet.Driver.guest_meter drv)
  in
  let unhardened = virtio false and hardened = virtio true in
  Alcotest.(check bool) "cionet < unhardened" true (cionet < unhardened);
  Alcotest.(check bool) "unhardened < hardened" true (unhardened < hardened)

(* E8: TEE switch at least an order of magnitude above the gate. *)
let test_e8_boundary_gap () =
  let open Cio_compartment in
  let cost crossing =
    let w = Compartment.create ~crossing () in
    let a = Compartment.add_domain w ~name:"a" and b = Compartment.add_domain w ~name:"b" in
    Compartment.call w ~caller:a ~callee:b ignore;
    Cost.cycles_of (Compartment.meter w) Cost.Gate
  in
  Alcotest.(check bool) "switch >= 10x gate" true
    (cost Compartment.Tee_switch >= 10 * cost Compartment.Gate)

(* E11: notifications strictly dominate polling per message. *)
let test_e11_polling_cheaper () =
  let run use_notifications =
    let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.use_notifications } in
    let drv = Cio_cionet.Driver.create ~name:"shape-e11" cfg in
    let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
    let payload = Bytes.make 1024 'n' in
    for _ = 1 to 16 do
      ignore (Cio_cionet.Driver.transmit drv payload);
      Cio_cionet.Host_model.poll host;
      Cio_cionet.Host_model.deliver_rx host payload;
      Cio_cionet.Host_model.poll host;
      ignore (Cio_cionet.Driver.poll drv)
    done;
    Cost.total (Cio_cionet.Driver.guest_meter drv)
  in
  Alcotest.(check bool) "polling cheaper" true (run false < run true)

(* E20: critical path halves (at least 1.9x) from 1 to 2 queues. *)
let test_e20_scaling () =
  let critical nq =
    let mq = Cio_cionet.Multiqueue.create ~name:"shape-e20" ~queues:nq Cio_cionet.Config.default in
    let hosts =
      List.map
        (fun d -> Cio_cionet.Host_model.create ~driver:d ~transmit:(fun _ -> ()))
        (Cio_cionet.Multiqueue.queues mq)
    in
    for round = 1 to 8 do
      ignore round;
      for flow = 0 to 15 do
        ignore (Cio_cionet.Multiqueue.transmit mq ~flow_hash:flow (Bytes.make 1024 'q'))
      done;
      List.iter Cio_cionet.Host_model.poll hosts
    done;
    Cio_cionet.Multiqueue.critical_path_cycles mq
  in
  let one = critical 1 and two = critical 2 in
  Alcotest.(check bool) "2 queues >= 1.9x faster critical path" true
    (float_of_int one /. float_of_int two >= 1.9)

(* F3/F4: dataset invariants the figures hinge on. *)
let test_figure_data_shapes () =
  let open Cio_data in
  Alcotest.(check bool) "fig2 trend non-negative" true (Cve_net.trend_slope () >= 0.0);
  Alcotest.(check string) "fig3 dominant is checks" "add checks"
    (Hardening.category_name (Hardening.dominant_category Hardening.Netvsc));
  Alcotest.(check bool) "fig4 amend rate double-digit" true
    (Hardening.amend_rate Hardening.Virtio >= 0.10)

let suite =
  [
    Alcotest.test_case "E1 shape: positioning order" `Quick test_e1_positioning_order;
    Alcotest.test_case "E2 shape: crossover exists" `Quick test_e2_crossover_exists;
    Alcotest.test_case "E3 shape: transport order" `Quick test_e3_transport_order;
    Alcotest.test_case "E8 shape: boundary gap" `Quick test_e8_boundary_gap;
    Alcotest.test_case "E11 shape: polling cheaper" `Quick test_e11_polling_cheaper;
    Alcotest.test_case "E20 shape: multi-queue scaling" `Quick test_e20_scaling;
    Alcotest.test_case "F2-F4 shape: dataset invariants" `Quick test_figure_data_shapes;
  ]
