(* Storage generalisation (§3.3 / E9): block layer over the safe ring,
   file layer in both protection modes, and the attack contrasts. *)

open Cio_storage

let make_dev () = Blockdev.create ~name:"test-disk" ~blocks:64 ()

let test_block_write_read () =
  let dev, _ = make_dev () in
  let data = Bytes.make Blockdev.block_size 'D' in
  (match Blockdev.write_block dev ~lba:3 data with
  | Blockdev.Write_ok -> ()
  | _ -> Alcotest.fail "write failed");
  match Blockdev.read_block dev ~lba:3 with
  | Blockdev.Data got -> Helpers.check_bytes "block content" data got
  | _ -> Alcotest.fail "read failed"

let test_block_out_of_range () =
  let dev, _ = make_dev () in
  match Blockdev.read_block dev ~lba:999 with
  | Blockdev.Failed _ -> ()
  | _ -> Alcotest.fail "out-of-range lba must fail"

let test_block_lie_len_rejected_by_codec () =
  let dev, disk = make_dev () in
  ignore (Blockdev.write_block dev ~lba:0 (Bytes.make 512 'x'));
  Blockdev.disk_inject disk Blockdev.Lie_response_len;
  match Blockdev.read_block dev ~lba:0 with
  | Blockdev.Failed "malformed response" -> ()
  | Blockdev.Failed e -> Alcotest.fail ("unexpected failure: " ^ e)
  | _ -> Alcotest.fail "length lie must be rejected by the stateless codec"

let test_file_roundtrip_plain () =
  let dev, _ = make_dev () in
  let fs = File.create ~dev ~mode:File.Plain in
  let content = Bytes.init 10_000 (fun i -> Char.chr ((i * 13) land 0xFF)) in
  (match File.write_file fs ~name:"data.bin" content with
  | Ok () -> ()
  | Error e -> Alcotest.fail (File.error_to_string e));
  match File.read_file fs ~name:"data.bin" with
  | Ok got -> Helpers.check_bytes "content" content got
  | Error e -> Alcotest.fail (File.error_to_string e)

let sealed_fs dev = File.create ~dev ~mode:(File.Sealed (Bytes.make 32 'K'))

let test_file_roundtrip_sealed () =
  let dev, _ = make_dev () in
  let fs = sealed_fs dev in
  let content = Bytes.init 20_000 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  (match File.write_file fs ~name:"sealed.bin" content with
  | Ok () -> ()
  | Error e -> Alcotest.fail (File.error_to_string e));
  match File.read_file fs ~name:"sealed.bin" with
  | Ok got -> Helpers.check_bytes "content" content got
  | Error e -> Alcotest.fail (File.error_to_string e)

let test_file_replace_semantics () =
  let dev, _ = make_dev () in
  let fs = File.create ~dev ~mode:File.Plain in
  ignore (File.write_file fs ~name:"f" (Bytes.of_string "version-1"));
  ignore (File.write_file fs ~name:"f" (Bytes.of_string "v2"));
  (match File.read_file fs ~name:"f" with
  | Ok got -> Helpers.check_bytes "latest version" (Bytes.of_string "v2") got
  | Error e -> Alcotest.fail (File.error_to_string e));
  Alcotest.(check int) "one directory entry" 1 (List.length (File.list_files fs))

let test_file_delete_frees_blocks () =
  let dev, _ = make_dev () in
  let fs = File.create ~dev ~mode:File.Plain in
  (* Fill most of the disk, delete, then fill again: blocks must recycle. *)
  let big = Bytes.make (50 * Blockdev.block_size) 'b' in
  (match File.write_file fs ~name:"big" big with Ok () -> () | Error e -> Alcotest.fail (File.error_to_string e));
  (match File.delete fs "big" with Ok () -> () | Error _ -> Alcotest.fail "delete");
  match File.write_file fs ~name:"big2" big with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("blocks not recycled: " ^ File.error_to_string e)

let test_file_not_found () =
  let dev, _ = make_dev () in
  let fs = File.create ~dev ~mode:File.Plain in
  match File.read_file fs ~name:"ghost" with
  | Error File.Not_found_ -> ()
  | _ -> Alcotest.fail "missing file must report not found"

let test_no_space () =
  let dev, _ = make_dev () in
  let fs = File.create ~dev ~mode:File.Plain in
  match File.write_file fs ~name:"huge" (Bytes.make (100 * Blockdev.block_size) 'x') with
  | Error File.No_space -> ()
  | _ -> Alcotest.fail "over-capacity write must fail with No_space"

(* --- the E9 attack contrast ------------------------------------------- *)

let test_corruption_silent_in_plain_mode () =
  let dev, disk = make_dev () in
  let fs = File.create ~dev ~mode:File.Plain in
  let content = Bytes.make 1000 'p' in
  ignore (File.write_file fs ~name:"f" content);
  Blockdev.disk_inject disk Blockdev.Corrupt_block;
  match File.read_file fs ~name:"f" with
  | Ok got ->
      (* Accepted without complaint — and wrong. The lift-and-shift
         failure mode. *)
      Alcotest.(check bool) "silently wrong" false (Bytes.equal got content)
  | Error _ -> Alcotest.fail "plain mode has no way to detect this"

let test_corruption_detected_in_sealed_mode () =
  let dev, disk = make_dev () in
  let fs = sealed_fs dev in
  ignore (File.write_file fs ~name:"f" (Bytes.make 1000 's'));
  Blockdev.disk_inject disk Blockdev.Corrupt_block;
  match File.read_file fs ~name:"f" with
  | Error (File.Integrity _) -> ()
  | Ok _ -> Alcotest.fail "sealed mode must detect corruption"
  | Error e -> Alcotest.fail ("wrong error: " ^ File.error_to_string e)

let test_remap_detected_in_sealed_mode () =
  let dev, disk = make_dev () in
  let fs = sealed_fs dev in
  ignore (File.write_file fs ~name:"a" (Bytes.make 1000 'a'));
  ignore (File.write_file fs ~name:"b" (Bytes.make 1000 'b'));
  Blockdev.disk_inject disk Blockdev.Wrong_lba;
  (* The response claims a different lba; the lba-bound AAD kills it. *)
  match File.read_file fs ~name:"a" with
  | Error (File.Integrity _) -> ()
  | Ok _ -> Alcotest.fail "remap must be detected"
  | Error e -> Alcotest.fail ("wrong error: " ^ File.error_to_string e)

let test_rollback_detected_in_sealed_mode () =
  let dev, _ = make_dev () in
  let fs = sealed_fs dev in
  ignore (File.write_file fs ~name:"f" (Bytes.of_string "version-one-content"));
  (* Capture the sealed block, overwrite the file, then roll the disk
     back to the captured block: stale-but-authentic data. *)
  let disk_region_snapshot = Blockdev.read_block dev ~lba:0 in
  ignore (File.write_file fs ~name:"f" (Bytes.of_string "version-two-content"));
  (match disk_region_snapshot with
  | Blockdev.Data old_block -> ignore (Blockdev.write_block dev ~lba:1 old_block)
  | _ -> ());
  (* Version-two landed on a fresh block; force a rollback by rewriting
     its block with the version-one ciphertext. *)
  (match (File.list_files fs, disk_region_snapshot) with
  | _, Blockdev.Data old_block ->
      (* Find version-two's block: it is whichever block the inode holds;
         easiest honest rollback: write old ciphertext over every block. *)
      for lba = 0 to 7 do
        ignore (Blockdev.write_block dev ~lba old_block)
      done
  | _ -> ());
  match File.read_file fs ~name:"f" with
  | Error (File.Integrity _) -> ()
  | Ok got ->
      Alcotest.(check bool) "if accepted it must be current" true
        (Bytes.equal got (Bytes.of_string "version-two-content"))
  | Error e -> Alcotest.fail ("wrong error: " ^ File.error_to_string e)

let test_sealed_write_read_many_files () =
  let dev, _ = make_dev () in
  let fs = sealed_fs dev in
  let files = List.init 10 (fun i -> (Printf.sprintf "file-%d" i, Bytes.make (500 * (i + 1)) (Char.chr (65 + i)))) in
  List.iter
    (fun (name, content) ->
      match File.write_file fs ~name content with
      | Ok () -> ()
      | Error e -> Alcotest.fail (File.error_to_string e))
    files;
  List.iter
    (fun (name, content) ->
      match File.read_file fs ~name with
      | Ok got -> Helpers.check_bytes name content got
      | Error e -> Alcotest.fail (File.error_to_string e))
    files

let prop_sealed_roundtrip =
  QCheck.Test.make ~name:"sealed file roundtrip, arbitrary sizes" ~count:50
    QCheck.(string_of_size Gen.(int_range 0 20_000))
    (fun content ->
      let dev, _ = make_dev () in
      let fs = sealed_fs dev in
      match File.write_file fs ~name:"p" (Bytes.of_string content) with
      | Error _ -> String.length content > 50 * Blockdev.block_size
      | Ok () -> (
          match File.read_file fs ~name:"p" with
          | Ok got -> String.equal (Bytes.to_string got) content
          | Error _ -> false))

(* --- dual_store: the full ternary model ---------------------------------- *)

let make_store () =
  let dev, disk = make_dev () in
  (Dual_store.create ~dev ~key:(Bytes.make 32 'K') (), disk)

let test_dual_store_roundtrip () =
  let store, _ = make_store () in
  let content = Bytes.init 9_000 (fun i -> Char.chr ((i * 3) land 0xFF)) in
  (match Dual_store.write_file store ~name:"doc" content with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Dual_store.error_to_string e));
  match Dual_store.read_file store ~name:"doc" with
  | Ok got -> Helpers.check_bytes "content" content got
  | Error e -> Alcotest.fail (Dual_store.error_to_string e)

let test_dual_store_gates_charged () =
  let store, _ = make_store () in
  ignore (Dual_store.write_file store ~name:"f" (Bytes.make 100 'x'));
  ignore (Dual_store.read_file store ~name:"f");
  Alcotest.(check int) "one gate per operation" 2 (Dual_store.crossings store)

let test_dual_store_disk_never_sees_plaintext () =
  let dev, _disk = make_dev () in
  let store = Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  let secret = "the-secret-ledger-entry-0xFEED" in
  ignore (Dual_store.write_file store ~name:"ledger" (Bytes.of_string secret));
  (* Read every block back raw (as the host could) and scan. *)
  let found = ref false in
  for lba = 0 to Blockdev.blocks dev - 1 do
    match Blockdev.read_block dev ~lba with
    | Blockdev.Data b ->
        let s = Bytes.to_string b in
        let n = String.length s and c = String.length secret in
        let rec go i = i + c <= n && (String.equal (String.sub s i c) secret || go (i + 1)) in
        if go 0 then found := true
    | _ -> ()
  done;
  Alcotest.(check bool) "plaintext never reaches the disk" false !found

let test_dual_store_wrong_file_swap_detected () =
  (* The quarantined file layer (or host) serves file B when asked for A:
     the name-bound AAD kills it. *)
  let dev, _ = make_dev () in
  let store = Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  ignore (Dual_store.write_file store ~name:"A" (Bytes.make 500 'a'));
  ignore (Dual_store.write_file store ~name:"B" (Bytes.make 500 'b'));
  (* Simulate the swap below the app: copy B's sealed block over A's
     (a host-level block copy). *)
  (match Blockdev.read_block dev ~lba:1 with
  | Blockdev.Data b_sealed -> ignore (Blockdev.write_block dev ~lba:0 b_sealed)
  | _ -> ());
  match Dual_store.read_file store ~name:"A" with
  | Error (Dual_store.Integrity _) -> ()
  | Ok got ->
      (* If the copy landed elsewhere the read may still succeed — but it
         must then be the genuine A. *)
      Helpers.check_bytes "if accepted, must be genuine A" (Bytes.make 500 'a') got
  | Error e -> Alcotest.fail (Dual_store.error_to_string e)

let test_dual_store_rollback_detected () =
  let dev, _ = make_dev () in
  let store = Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  ignore (Dual_store.write_file store ~name:"f" (Bytes.of_string "version-1"));
  (* Capture v1's sealed block, overwrite the file, roll the block back. *)
  let v1_block = Blockdev.read_block dev ~lba:0 in
  ignore (Dual_store.write_file store ~name:"f" (Bytes.of_string "version-2"));
  (match v1_block with
  | Blockdev.Data b ->
      for lba = 0 to 4 do
        ignore (Blockdev.write_block dev ~lba b)
      done
  | _ -> ());
  match Dual_store.read_file store ~name:"f" with
  | Error (Dual_store.Integrity _) -> ()
  | Ok got -> Helpers.check_bytes "if accepted, must be current" (Bytes.of_string "version-2") got
  | Error e -> Alcotest.fail (Dual_store.error_to_string e)

let test_dual_store_rogue_domain_denied () =
  let store, _ = make_store () in
  match Dual_store.rogue_store_reads_app_memory store with
  | `Denied -> ()
  | `Leaked -> Alcotest.fail "storage domain must not reach app memory"

let test_dual_store_access_pattern_visible () =
  (* The residual channel: distinct files produce distinct block traces
     even though all contents are sealed. *)
  let dev, disk = make_dev () in
  let store = Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  ignore (Dual_store.write_file store ~name:"A" (Bytes.make 9000 'a'));
  ignore (Dual_store.write_file store ~name:"B" (Bytes.make 9000 'b'));
  Blockdev.disk_clear_log disk;
  ignore (Dual_store.read_file store ~name:"A");
  let trace_a = List.map snd (Blockdev.disk_access_log disk) in
  Blockdev.disk_clear_log disk;
  ignore (Dual_store.read_file store ~name:"B");
  let trace_b = List.map snd (Blockdev.disk_access_log disk) in
  Alcotest.(check bool) "traces nonempty" true (trace_a <> [] && trace_b <> []);
  Alcotest.(check bool) "traces distinguish the files" true (trace_a <> trace_b)

let test_dual_store_delete () =
  let store, _ = make_store () in
  ignore (Dual_store.write_file store ~name:"gone" (Bytes.make 10 'x'));
  (match Dual_store.delete store ~name:"gone" with Ok () -> () | Error e -> Alcotest.fail (Dual_store.error_to_string e));
  match Dual_store.read_file store ~name:"gone" with
  | Error (Dual_store.Store_error File.Not_found_) -> ()
  | _ -> Alcotest.fail "deleted file must be gone"

let suite =
  [
    Alcotest.test_case "block: write/read" `Quick test_block_write_read;
    Alcotest.test_case "block: out of range" `Quick test_block_out_of_range;
    Alcotest.test_case "block: length lie rejected" `Quick test_block_lie_len_rejected_by_codec;
    Alcotest.test_case "file: roundtrip (plain)" `Quick test_file_roundtrip_plain;
    Alcotest.test_case "file: roundtrip (sealed)" `Quick test_file_roundtrip_sealed;
    Alcotest.test_case "file: replace semantics" `Quick test_file_replace_semantics;
    Alcotest.test_case "file: delete recycles blocks" `Quick test_file_delete_frees_blocks;
    Alcotest.test_case "file: not found" `Quick test_file_not_found;
    Alcotest.test_case "file: no space" `Quick test_no_space;
    Alcotest.test_case "E9: corruption silent in plain" `Quick test_corruption_silent_in_plain_mode;
    Alcotest.test_case "E9: corruption detected sealed" `Quick test_corruption_detected_in_sealed_mode;
    Alcotest.test_case "E9: remap detected sealed" `Quick test_remap_detected_in_sealed_mode;
    Alcotest.test_case "E9: rollback detected sealed" `Quick test_rollback_detected_in_sealed_mode;
    Alcotest.test_case "file: many sealed files" `Quick test_sealed_write_read_many_files;
    Alcotest.test_case "dual store: roundtrip" `Quick test_dual_store_roundtrip;
    Alcotest.test_case "dual store: gates charged" `Quick test_dual_store_gates_charged;
    Alcotest.test_case "dual store: no plaintext on disk" `Quick
      test_dual_store_disk_never_sees_plaintext;
    Alcotest.test_case "dual store: file swap detected" `Quick test_dual_store_wrong_file_swap_detected;
    Alcotest.test_case "dual store: rollback detected" `Quick test_dual_store_rollback_detected;
    Alcotest.test_case "dual store: rogue domain denied" `Quick test_dual_store_rogue_domain_denied;
    Alcotest.test_case "dual store: access pattern visible (E19)" `Quick
      test_dual_store_access_pattern_visible;
    Alcotest.test_case "dual store: delete" `Quick test_dual_store_delete;
    Helpers.qtest prop_sealed_roundtrip;
  ]
