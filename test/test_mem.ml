(* Tests for the TEE memory model: protections, sharing/revocation,
   double-fetch transactions, and the pool allocator policies. *)

open Cio_util
open Cio_mem

let make ?(prot = Region.Shared) ?(size = 4 * 4096) () =
  Region.create ~prot ~name:"test" size

let test_guest_rw_roundtrip () =
  let r = make () in
  Region.guest_write r ~off:100 (Bytes.of_string "hello");
  Helpers.check_bytes "roundtrip" (Bytes.of_string "hello") (Region.guest_read r ~off:100 ~len:5)

let test_host_rw_shared () =
  let r = make () in
  Region.host_write r ~off:0 (Bytes.of_string "host");
  Helpers.check_bytes "host sees shared" (Bytes.of_string "host") (Region.host_read r ~off:0 ~len:4)

let test_host_faults_on_private () =
  let r = make ~prot:Region.Private () in
  (match Region.host_read r ~off:0 ~len:4 with
  | _ -> Alcotest.fail "host read of private memory must fault"
  | exception Region.Fault (Region.Host_access_private _) -> ());
  match Region.host_write r ~off:0 (Bytes.of_string "x") with
  | _ -> Alcotest.fail "host write of private memory must fault"
  | exception Region.Fault (Region.Host_access_private _) -> ()

let test_guest_reads_private () =
  let r = make ~prot:Region.Private () in
  Region.guest_write r ~off:0 (Bytes.of_string "secret");
  Helpers.check_bytes "guest ok" (Bytes.of_string "secret") (Region.guest_read r ~off:0 ~len:6)

let test_out_of_bounds_faults () =
  let r = make ~size:4096 () in
  (match Region.guest_read r ~off:4090 ~len:10 with
  | _ -> Alcotest.fail "oob read must fault"
  | exception Region.Fault (Region.Out_of_bounds _) -> ());
  match Region.guest_read r ~off:(-1) ~len:1 with
  | _ -> Alcotest.fail "negative offset must fault"
  | exception Region.Fault (Region.Out_of_bounds _) -> ()

let test_unshare_revokes_host_access () =
  let r = make () in
  Region.host_write r ~off:0 (Bytes.of_string "ok");
  Region.unshare_page r 0;
  (match Region.host_read r ~off:0 ~len:2 with
  | _ -> Alcotest.fail "revoked page must fault for host"
  | exception Region.Fault (Region.Host_access_private _) -> ());
  (* Other pages remain shared. *)
  Region.host_write r ~off:4096 (Bytes.of_string "ok");
  (* Re-sharing restores access. *)
  Region.share_page r 0;
  Region.host_write r ~off:0 (Bytes.of_string "ok")

let test_partial_range_shared () =
  let r = make () in
  Region.unshare_page r 1;
  Alcotest.(check bool) "page 0 shared" true (Region.range_shared r 0 4096);
  Alcotest.(check bool) "range spanning private page" false (Region.range_shared r 4000 200);
  match Region.host_read r ~off:4000 ~len:200 with
  | _ -> Alcotest.fail "spanning read must fault"
  | exception Region.Fault (Region.Host_access_private _) -> ()

let test_share_costs_batched () =
  let model = Cost.default in
  let r = make () in
  let m = Region.meter r in
  (* Unshare all 4 pages in one batched call. *)
  Region.unshare_range r ~off:0 ~len:(4 * 4096);
  let batched = Cost.cycles_of m Cost.Unshare in
  Alcotest.(check int) "one full + three extras"
    (model.Cost.page_unshare + (3 * model.Cost.page_unshare_extra))
    batched;
  (* Per-page calls cost full price each. *)
  let r2 = make () in
  let m2 = Region.meter r2 in
  for p = 0 to 3 do
    Region.unshare_page r2 p
  done;
  Alcotest.(check int) "per-page pays full each" (4 * model.Cost.page_unshare)
    (Cost.cycles_of m2 Cost.Unshare)

let test_unshare_idempotent_cost () =
  let r = make () in
  let m = Region.meter r in
  Region.unshare_page r 0;
  let once = Cost.cycles_of m Cost.Unshare in
  Region.unshare_page r 0;
  Alcotest.(check int) "no double charge" once (Cost.cycles_of m Cost.Unshare)

let test_copy_in_charges () =
  let r = make () in
  let m = Region.meter r in
  ignore (Region.copy_in r ~off:0 ~len:1024);
  Alcotest.(check bool) "copy charged" (Cost.cycles_of m Cost.Copy > 0) true;
  Alcotest.(check int) "exact" (Cost.copy_cost (Region.model r) 1024) (Cost.cycles_of m Cost.Copy)

let test_double_fetch_detected () =
  let r = make () in
  Region.guest_write r ~off:0 (Bytes.of_string "AAAA");
  Region.begin_txn r;
  ignore (Region.guest_read r ~off:0 ~len:4);
  ignore (Region.guest_read r ~off:0 ~len:4);
  let hazards = Region.end_txn r in
  Alcotest.(check int) "one hazard" 1 (List.length hazards);
  Alcotest.(check bool) "not mutated" false (List.hd hazards).Region.mutated

let test_double_fetch_mutation_flagged () =
  let r = make () in
  Region.guest_write r ~off:0 (Bytes.of_string "AAAA");
  Region.begin_txn r;
  ignore (Region.guest_read r ~off:0 ~len:4);
  Region.host_write r ~off:0 (Bytes.of_string "BBBB");
  ignore (Region.guest_read r ~off:0 ~len:4);
  let hazards = Region.end_txn r in
  Alcotest.(check bool) "mutation flagged" true
    (List.exists (fun h -> h.Region.mutated) hazards)

let test_single_fetch_no_hazard () =
  let r = make () in
  Region.begin_txn r;
  ignore (Region.guest_read r ~off:0 ~len:4);
  ignore (Region.guest_read r ~off:100 ~len:4);
  Alcotest.(check int) "disjoint reads, no hazard" 0 (List.length (Region.end_txn r))

let test_overlapping_fetch_hazard () =
  let r = make () in
  Region.begin_txn r;
  ignore (Region.guest_read r ~off:0 ~len:8);
  ignore (Region.guest_read r ~off:4 ~len:8);
  Alcotest.(check int) "overlap is a hazard" 1 (List.length (Region.end_txn r))

let test_guest_read_hook_fires () =
  let r = make () in
  Region.guest_write r ~off:0 (Bytes.of_string "\x01\x02\x03\x04");
  let fired = ref 0 in
  Region.set_guest_read_hook r
    (Some
       (fun ~off:_ ~len:_ ->
         incr fired;
         Region.set_guest_read_hook r None;
         Region.host_write r ~off:0 (Bytes.of_string "\xFF")));
  let first = Region.guest_read r ~off:0 ~len:1 in
  let second = Region.guest_read r ~off:0 ~len:1 in
  Alcotest.(check int) "fired once" 1 !fired;
  Alcotest.(check char) "first read honest" '\x01' (Bytes.get first 0);
  Alcotest.(check char) "second read sees race" '\xFF' (Bytes.get second 0)

let test_events_logged () =
  let r = make () in
  Region.clear_log r;
  ignore (Region.guest_read r ~off:0 ~len:4);
  Region.host_write r ~off:8 (Bytes.of_string "hi");
  let events = Region.events r in
  Alcotest.(check int) "two events" 2 (List.length events);
  match events with
  | [ Region.Read { actor = Region.Guest; _ }; Region.Write { actor = Region.Host; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

let test_word_accessors () =
  let r = make () in
  Region.write_u16 r Region.Guest ~off:0 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Region.read_u16 r Region.Guest ~off:0);
  Region.write_u32 r Region.Guest ~off:4 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Region.read_u32 r Region.Guest ~off:4);
  Region.write_u64 r Region.Guest ~off:8 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Region.read_u64 r Region.Guest ~off:8);
  Region.write_u8 r Region.Guest ~off:16 0xAB;
  Alcotest.(check int) "u8" 0xAB (Region.read_u8 r Region.Guest ~off:16)

(* --- pool --------------------------------------------------------- *)

let make_pool metadata =
  let r = make ~size:(64 * 1024) () in
  (r, Pool.create ~region:r ~base:0 ~slot_size:512 ~slots:16 ~metadata)

let test_pool_alloc_free_cycle () =
  let _, p = make_pool Pool.Trusted in
  let slots = List.init 16 (fun _ -> Option.get (Pool.alloc p)) in
  Alcotest.(check int) "all allocated" 16 (Pool.allocated_count p);
  Alcotest.(check (option int)) "exhausted" None (Pool.alloc p);
  List.iter (Pool.free p) slots;
  Alcotest.(check int) "all freed" 0 (Pool.allocated_count p)

let test_pool_no_double_alloc () =
  let _, p = make_pool Pool.Trusted in
  let a = Option.get (Pool.alloc p) and b = Option.get (Pool.alloc p) in
  Alcotest.(check bool) "distinct slots" true (a <> b)

let test_pool_free_validation () =
  let _, p = make_pool Pool.Trusted in
  Alcotest.check_raises "free unallocated" (Invalid_argument "Pool.free: slot not allocated")
    (fun () -> Pool.free p 3);
  Alcotest.check_raises "free out of range" (Invalid_argument "Pool.free: bad slot") (fun () ->
      Pool.free p 99)

let test_pool_shared_unvalidated_corruptible () =
  let r, p = make_pool Pool.Shared_unvalidated in
  (* The host plants a wild slot id on top of the shared free stack. *)
  let meta_off = Pool.base p + (Pool.slot_size p * Pool.slot_count p) in
  let count = Region.read_u16 r Region.Host ~off:meta_off in
  Region.write_u16 r Region.Host ~off:(meta_off + 2 + (2 * (count - 1))) 999;
  match Pool.alloc p with
  | _ -> Alcotest.fail "unvalidated pop must blow up on wild id"
  | exception Pool.Corrupted_metadata _ -> ()

let test_pool_shared_masked_confines () =
  let r, p = make_pool Pool.Shared_masked in
  let meta_off = Pool.base p + (Pool.slot_size p * Pool.slot_count p) in
  let count = Region.read_u16 r Region.Host ~off:meta_off in
  Region.write_u16 r Region.Host ~off:(meta_off + 2 + (2 * (count - 1))) 999;
  match Pool.alloc p with
  | Some slot -> Alcotest.(check bool) "confined to range" true (Pool.slot_in_bounds p slot)
  | None -> Alcotest.fail "masked pop must still produce a slot"

let test_pool_slot_io () =
  let _, p = make_pool Pool.Trusted in
  let slot = Option.get (Pool.alloc p) in
  Pool.write_slot p slot (Bytes.of_string "payload");
  Helpers.check_bytes "slot io" (Bytes.of_string "payload") (Pool.read_slot p slot ~len:7)

let test_pool_geometry_validated () =
  let r = make () in
  Alcotest.check_raises "non-pow2 slot size"
    (Invalid_argument "Pool.create: slot_size must be a power of two") (fun () ->
      ignore (Pool.create ~region:r ~base:0 ~slot_size:100 ~slots:16 ~metadata:Pool.Trusted))

let prop_pool_alloc_unique =
  QCheck.Test.make ~name:"pool never double-allocates" ~count:100
    QCheck.(int_range 1 16)
    (fun n ->
      let _, p = make_pool Pool.Trusted in
      let allocated = List.filter_map (fun _ -> Pool.alloc p) (List.init n (fun i -> i)) in
      let sorted = List.sort_uniq compare allocated in
      List.length sorted = List.length allocated)

let prop_masked_pool_always_in_bounds =
  QCheck.Test.make ~name:"masked slot ids stay in bounds" ~count:300 QCheck.small_nat (fun v ->
      let _, p = make_pool Pool.Shared_masked in
      Pool.slot_in_bounds p (Pool.mask_slot p v))

(* --- buffer pool (allocation-free datapath) --------------------------- *)

let test_bufpool_acquire_recycle_reuse () =
  let p = Bufpool.create () in
  let b = Bufpool.acquire p 100 in
  Alcotest.(check int) "exact length" 100 (Bytes.length b);
  Bufpool.recycle p b;
  let b2 = Bufpool.acquire p 100 in
  Alcotest.(check bool) "same buffer handed back" true (b == b2);
  let s = Bufpool.stats p in
  Alcotest.(check int) "one fresh" 1 s.Bufpool.fresh;
  Alcotest.(check int) "one reused" 1 s.Bufpool.reused;
  Alcotest.(check int) "one recycled" 1 s.Bufpool.recycled;
  Alcotest.(check int) "nothing dropped" 0 s.Bufpool.dropped

let test_bufpool_exact_length_buckets () =
  (* 64 and 65 share a pow2 class but are distinct buckets: recycling one
     length never serves an acquire of another. *)
  let p = Bufpool.create () in
  let b = Bufpool.acquire p 64 in
  Bufpool.recycle p b;
  let c = Bufpool.acquire p 65 in
  Alcotest.(check int) "right length" 65 (Bytes.length c);
  Alcotest.(check int) "65 was a fresh allocation" 2 (Bufpool.stats p).Bufpool.fresh;
  Alcotest.(check int) "64 still retained" 1 (Bufpool.retained p);
  Alcotest.(check bool) "64 reusable" true (Bufpool.acquire p 64 == b)

let test_bufpool_class_cap_drops () =
  let p = Bufpool.create ~cap:2 () in
  let bs = List.init 4 (fun _ -> Bufpool.acquire p 128) in
  List.iter (Bufpool.recycle p) bs;
  Alcotest.(check int) "retained capped at 2" 2 (Bufpool.retained p);
  Alcotest.(check int) "overflow dropped" 2 (Bufpool.stats p).Bufpool.dropped;
  (* Same class, different exact length, shares the class budget. *)
  let odd = Bufpool.acquire p 100 in
  Bufpool.recycle p odd;
  Alcotest.(check int) "class budget shared across lengths" 3 (Bufpool.stats p).Bufpool.dropped

let test_bufpool_rejects_nonpositive () =
  let p = Bufpool.create () in
  Alcotest.check_raises "zero length"
    (Invalid_argument "Bufpool.acquire: length must be positive") (fun () ->
      ignore (Bufpool.acquire p 0));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Bufpool.acquire: length must be positive") (fun () ->
      ignore (Bufpool.acquire p (-3)))

let prop_bufpool_acquire_is_exact_and_balanced =
  QCheck.Test.make ~name:"bufpool acquires are exact-length; stats balance" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 4096))
    (fun lens ->
      let p = Bufpool.create ~cap:8 () in
      let held = List.map (fun len -> Bufpool.acquire p len) lens in
      List.iter (Bufpool.recycle p) held;
      let again = List.map (fun len -> (len, Bufpool.acquire p len)) lens in
      let s = Bufpool.stats p in
      List.for_all (fun (len, b) -> Bytes.length b = len) again
      && s.Bufpool.fresh + s.Bufpool.reused = 2 * List.length lens
      && s.Bufpool.recycled + s.Bufpool.dropped = List.length lens
      && Bufpool.retained p >= 0)

(* --- runtime double-fetch sanitizer ----------------------------------- *)

let san_metric name =
  Cio_telemetry.Metrics.counter_value
    (Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default name)

let test_sanitizer_off_counts_nothing () =
  let r = make () in
  Alcotest.(check bool) "off by default" false (Region.sanitizer_on r);
  ignore (Region.guest_read r ~off:0 ~len:8);
  ignore (Region.guest_read r ~off:0 ~len:8);
  let s = Region.sanitizer_stats r in
  Alcotest.(check int) "no doubles recorded" 0 s.Region.double_fetches;
  Alcotest.(check int) "no mutations recorded" 0 s.Region.mutated_fetches

let test_sanitizer_counts_double_fetch () =
  let r = make () in
  let m0 = san_metric "mem.sanitizer.double_fetch" in
  Region.sanitizer_enable r;
  ignore (Region.guest_read r ~off:0 ~len:8);
  ignore (Region.guest_read r ~off:4 ~len:8);
  let s = Region.sanitizer_stats r in
  Alcotest.(check int) "overlap counted" 1 s.Region.double_fetches;
  Alcotest.(check int) "bytes unchanged: not mutated" 0 s.Region.mutated_fetches;
  Alcotest.(check int) "metric bumped" (m0 + 1) (san_metric "mem.sanitizer.double_fetch")

let test_sanitizer_sees_host_race () =
  (* The attack harness's race hook rewrites the bytes after the first
     fetch; the second fetch must be counted as a *mutated* double. *)
  let r = make () in
  Region.guest_write r ~off:0 (Bytes.of_string "AAAA");
  Region.sanitizer_enable r;
  Region.set_guest_read_hook r
    (Some
       (fun ~off:_ ~len:_ ->
         Region.set_guest_read_hook r None;
         Region.host_write r ~off:0 (Bytes.of_string "BBBB")));
  ignore (Region.guest_read r ~off:0 ~len:4);
  ignore (Region.guest_read r ~off:0 ~len:4);
  let s = Region.sanitizer_stats r in
  Alcotest.(check int) "double fetch" 1 s.Region.double_fetches;
  Alcotest.(check int) "raced mutation seen" 1 s.Region.mutated_fetches

let test_sanitizer_epoch_resets_window () =
  let r = make () in
  Region.sanitizer_enable r;
  ignore (Region.guest_read r ~off:0 ~len:8);
  Region.sanitizer_epoch r;
  ignore (Region.guest_read r ~off:0 ~len:8);
  let s = Region.sanitizer_stats r in
  Alcotest.(check int) "cross-epoch re-read is legitimate" 0 s.Region.double_fetches;
  Alcotest.(check int) "epoch counted" 1 s.Region.epochs;
  Region.sanitizer_disable r;
  Alcotest.(check bool) "disabled" false (Region.sanitizer_on r)

let test_sanitizer_ignores_private_and_host () =
  let r = make () in
  Region.unshare_page r 0;
  Region.sanitizer_enable r;
  (* Private-page guest reads and host reads of shared memory are not
     guest fetches of host-writable state. *)
  ignore (Region.guest_read r ~off:0 ~len:8);
  ignore (Region.guest_read r ~off:0 ~len:8);
  ignore (Region.host_read r ~off:4096 ~len:8);
  ignore (Region.host_read r ~off:4096 ~len:8);
  Alcotest.(check int) "nothing counted" 0 (Region.sanitizer_stats r).Region.double_fetches

(* Property: the transaction API's hazard semantics — which the runtime
   sanitizer mirrors epoch-for-epoch — are exactly "overlap = hazard,
   changed bytes in the overlap = mutated". *)
let prop_txn_hazards_pin_sanitizer_semantics =
  QCheck.Test.make
    ~name:"txn hazards = overlap; mutated = raced; sanitizer agrees" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (quad (int_range 0 1000) (int_range 1 64) (int_range 0 1000) (int_range 1 64))
           bool))
    (fun ((off1, len1, off2, len2), mutate) ->
      let r = make () in
      Region.sanitizer_enable r;
      let (), hazards =
        Region.with_txn r (fun () ->
            ignore (Region.guest_read r ~off:off1 ~len:len1);
            if mutate then Region.host_write r ~off:off2 (Bytes.make len2 '\xFF');
            ignore (Region.guest_read r ~off:off2 ~len:len2))
      in
      let overlap = off1 < off2 + len2 && off2 < off1 + len1 in
      let s = Region.sanitizer_stats r in
      (* 1. a hazard iff the two reads overlap; *)
      (hazards <> []) = overlap
      (* 2. mutated iff the host raced an overlapping window; *)
      && List.for_all (fun h -> h.Region.mutated = (overlap && mutate)) hazards
      (* 3. the runtime sanitizer counts the same pair the txn saw. *)
      && s.Region.double_fetches = (if overlap then 1 else 0)
      && s.Region.mutated_fetches = (if overlap && mutate then 1 else 0))

let suite =
  [
    Alcotest.test_case "region: guest roundtrip" `Quick test_guest_rw_roundtrip;
    Alcotest.test_case "region: host access to shared" `Quick test_host_rw_shared;
    Alcotest.test_case "region: host faults on private" `Quick test_host_faults_on_private;
    Alcotest.test_case "region: guest reads private" `Quick test_guest_reads_private;
    Alcotest.test_case "region: bounds faults" `Quick test_out_of_bounds_faults;
    Alcotest.test_case "region: revocation" `Quick test_unshare_revokes_host_access;
    Alcotest.test_case "region: partial range protection" `Quick test_partial_range_shared;
    Alcotest.test_case "region: batched revocation cost" `Quick test_share_costs_batched;
    Alcotest.test_case "region: idempotent unshare cost" `Quick test_unshare_idempotent_cost;
    Alcotest.test_case "region: copy-in charged" `Quick test_copy_in_charges;
    Alcotest.test_case "region: double fetch detected" `Quick test_double_fetch_detected;
    Alcotest.test_case "region: raced double fetch flagged" `Quick test_double_fetch_mutation_flagged;
    Alcotest.test_case "region: disjoint reads safe" `Quick test_single_fetch_no_hazard;
    Alcotest.test_case "region: overlapping reads hazardous" `Quick test_overlapping_fetch_hazard;
    Alcotest.test_case "region: guest-read race hook" `Quick test_guest_read_hook_fires;
    Alcotest.test_case "region: access log" `Quick test_events_logged;
    Alcotest.test_case "region: word accessors" `Quick test_word_accessors;
    Alcotest.test_case "pool: alloc/free cycle" `Quick test_pool_alloc_free_cycle;
    Alcotest.test_case "pool: unique allocation" `Quick test_pool_no_double_alloc;
    Alcotest.test_case "pool: free validation" `Quick test_pool_free_validation;
    Alcotest.test_case "pool: unvalidated metadata corruptible" `Quick
      test_pool_shared_unvalidated_corruptible;
    Alcotest.test_case "pool: masked metadata confined" `Quick test_pool_shared_masked_confines;
    Alcotest.test_case "pool: slot io" `Quick test_pool_slot_io;
    Alcotest.test_case "pool: geometry validated" `Quick test_pool_geometry_validated;
    Alcotest.test_case "bufpool: acquire/recycle/reuse" `Quick test_bufpool_acquire_recycle_reuse;
    Alcotest.test_case "bufpool: exact-length buckets" `Quick test_bufpool_exact_length_buckets;
    Alcotest.test_case "bufpool: class cap drops overflow" `Quick test_bufpool_class_cap_drops;
    Alcotest.test_case "bufpool: non-positive length rejected" `Quick
      test_bufpool_rejects_nonpositive;
    Alcotest.test_case "sanitizer: off by default, counts nothing" `Quick
      test_sanitizer_off_counts_nothing;
    Alcotest.test_case "sanitizer: overlapping fetch counted" `Quick
      test_sanitizer_counts_double_fetch;
    Alcotest.test_case "sanitizer: host race marks mutation" `Quick test_sanitizer_sees_host_race;
    Alcotest.test_case "sanitizer: epoch resets the window" `Quick
      test_sanitizer_epoch_resets_window;
    Alcotest.test_case "sanitizer: private/host reads ignored" `Quick
      test_sanitizer_ignores_private_and_host;
    Helpers.qtest prop_txn_hazards_pin_sanitizer_semantics;
    Helpers.qtest prop_pool_alloc_unique;
    Helpers.qtest prop_masked_pool_always_in_bounds;
    Helpers.qtest prop_bufpool_acquire_is_exact_and_balanced;
  ]
