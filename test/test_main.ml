let () =
  Alcotest.run "cio"
    [
      ("util", Test_util.suite);
      ("mem", Test_mem.suite);
      ("crypto", Test_crypto.suite);
      ("frame", Test_frame.suite);
      ("netsim", Test_netsim.suite);
      ("tcpip", Test_tcpip.suite);
      ("virtio", Test_virtio.suite);
      ("cionet", Test_cionet.suite);
      ("compartment", Test_compartment.suite);
      ("tls", Test_tls.suite);
      ("core", Test_core.suite);
      ("attack", Test_attack.suite);
      ("data", Test_data.suite);
      ("storage", Test_storage.suite);
      ("dda", Test_dda.suite);
      ("observe-tcb", Test_observe_tcb.suite);
      ("telemetry", Test_telemetry.suite);
      ("packed", Test_packed.suite);
      ("fault", Test_fault.suite);
      ("lint", Test_lint.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
      ("switch", Test_switch.suite);
      ("shapes", Test_shapes.suite);
      ("overload", Test_overload.suite);
    ]
