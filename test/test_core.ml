(* Integration tests: the dual-boundary unit end to end, the five Figure-5
   configurations, and the orderings the paper predicts. *)

open Cio_util
open Cio_core
module C = Configurations

let run_quick kind = C.run_echo ~messages:10 ~msg_size:512 kind

let test_all_configurations_complete () =
  List.iter
    (fun kind ->
      let m = run_quick kind in
      Alcotest.(check bool) (C.kind_name kind ^ " completes") true m.C.completed;
      Alcotest.(check int) (C.kind_name kind ^ " echo count") 10 m.C.messages)
    C.all_kinds

let test_dual_fastest_per_byte () =
  (* The headline performance claim: the dual boundary preserves (here:
     beats, thanks to polling) passthrough-class performance. *)
  let dual = run_quick C.Dual_boundary and pass = run_quick C.Passthrough_l2 in
  Alcotest.(check bool) "dual <= passthrough cycles/byte" true
    (C.cycles_per_byte dual <= C.cycles_per_byte pass)

let test_hardening_tax_visible () =
  let unh = run_quick C.Passthrough_l2 and hard = run_quick C.Hardened_virtio in
  Alcotest.(check bool) "hardened costs more than unhardened" true
    (Cost.total hard.C.guest > Cost.total unh.C.guest)

let test_syscall_slowest_of_tcp_designs () =
  let sys = run_quick C.Syscall_l5 and pass = run_quick C.Passthrough_l2 in
  Alcotest.(check bool) "syscall >= passthrough cycles/byte" true
    (C.cycles_per_byte sys >= C.cycles_per_byte pass)

let test_observability_ordering () =
  (* Figure 5's Obs axis: syscall > raw L2 designs > dual >= tunneled,
     with tunneled strictly the lowest. *)
  let score k = Cio_observe.Observe.score (run_quick k).C.tap in
  let sys = score C.Syscall_l5
  and pass = score C.Passthrough_l2
  and dual = score C.Dual_boundary
  and tun = score C.Tunneled in
  Alcotest.(check bool) "syscall > passthrough" true (sys > pass);
  Alcotest.(check bool) "passthrough > dual (no doorbells)" true (pass > dual);
  Alcotest.(check bool) "dual > tunneled" true (dual > tun)

let test_tcb_ordering () =
  Cio_tcb.Tcb.set_repo_root ".";
  let dual = run_quick C.Dual_boundary and pass = run_quick C.Passthrough_l2 in
  Alcotest.(check bool) "dual core TCB < passthrough core TCB" true
    (dual.C.tcb_core_loc < pass.C.tcb_core_loc);
  Alcotest.(check bool) "dual quarantines the stack" true (dual.C.tcb_quarantined_loc > 0);
  Alcotest.(check int) "single-boundary designs quarantine nothing" 0 pass.C.tcb_quarantined_loc

let test_dual_crossings_bounded () =
  let m = run_quick C.Dual_boundary in
  (* Handoff crossings scale with traffic, not with polling time. *)
  Alcotest.(check bool) "crossings > 0" true (m.C.crossings > 0);
  Alcotest.(check bool) "crossings bounded by a small multiple of messages" true
    (m.C.crossings < 20 * m.C.messages)

let test_tunnel_uniform_sizes () =
  let m = run_quick C.Tunneled in
  let sizes =
    List.filter_map
      (fun e ->
        if e.Cio_observe.Observe.size > 0 then Some e.Cio_observe.Observe.size else None)
      (Cio_observe.Observe.events m.C.tap)
  in
  let distinct = List.sort_uniq compare sizes in
  Alcotest.(check bool) "at most two distinct sizes on the wire" true
    (List.length distinct <= 2)

let test_deterministic_runs () =
  let a = C.run_echo ~seed:77L ~messages:5 C.Dual_boundary in
  let b = C.run_echo ~seed:77L ~messages:5 C.Dual_boundary in
  Alcotest.(check int) "same total cycles" (Cost.total a.C.guest) (Cost.total b.C.guest);
  Alcotest.(check int64) "same sim time" a.C.sim_ns b.C.sim_ns

let test_message_sizes_sweep () =
  List.iter
    (fun size ->
      let m = C.run_echo ~messages:5 ~msg_size:size C.Dual_boundary in
      Alcotest.(check bool) (Printf.sprintf "size %d completes" size) true m.C.completed)
    [ 16; 256; 1400; 4096; 16000 ]

let test_tunnel_codec_roundtrip () =
  let key = Bytes.make 32 'T' in
  let frame = Bytes.of_string "an ethernet frame, say" in
  let blob = Tunnel.seal ~key ~pad_to:1600 frame in
  Alcotest.(check bool) "padded" true (Bytes.length blob >= 1590);
  (match Tunnel.open_ ~key blob with
  | Some back -> Helpers.check_bytes "roundtrip" frame back
  | None -> Alcotest.fail "tunnel open failed");
  (* Tampered blob rejected. *)
  Bytes.set blob 40 '\x00';
  Alcotest.(check bool) "tamper rejected" true (Tunnel.open_ ~key blob = None)

let test_tunnel_uniform_padding () =
  let key = Bytes.make 32 'T' in
  let small = Tunnel.seal ~key ~pad_to:1600 (Bytes.of_string "a") in
  let large = Tunnel.seal ~key ~pad_to:1600 (Bytes.make 1400 'z') in
  Alcotest.(check int) "size-independent" (Bytes.length small) (Bytes.length large)

(* --- dual unit as a library (not through the harness) ----------------- *)

let test_dual_unit_echo_direct () =
  let open Cio_netsim in
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
  let rng = Rng.create 3L in
  let now () = Engine.now engine in
  let psk = Bytes.of_string "direct-dual-test-psk-32-bytes-x." in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:Helpers.ip_b ~mac:Helpers.mac_b
      ~neighbors:[ (Helpers.ip_a, Helpers.mac_a) ] ~psk ~psk_id:"d" ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:4433;
  let unit_ =
    Dual.create ~mac:Helpers.mac_a ~name:"direct" ~ip:Helpers.ip_a
      ~neighbors:[ (Helpers.ip_b, Helpers.mac_b) ] ~psk ~psk_id:"d" ~rng:(Rng.split rng) ~now ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  let ch = Dual.connect unit_ ~dst:Helpers.ip_b ~dst_port:4433 in
  let pump () =
    Dual.poll unit_;
    Cio_cionet.Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:2_000L
  in
  let rec until pred n = pred () || (n > 0 && (pump (); until pred (n - 1))) in
  Alcotest.(check bool) "established" true (until (fun () -> Channel.is_established ch) 2000);
  (match Channel.send ch (Bytes.of_string "dual-echo") with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Cio_tls.Session.error_to_string e));
  let got = ref None in
  Alcotest.(check bool) "echo received" true
    (until
       (fun () ->
         (match Channel.recv ch with Some m -> got := Some m | None -> ());
         !got <> None)
       2000);
  Helpers.check_bytes "echo content" (Bytes.of_string "dual-echo") (Option.get !got);
  (* The dual unit's confidentiality invariant: every frame the host saw
     is ciphertext — the plaintext never appears on the shared region. *)
  Alcotest.(check bool) "gate crossings happened" true (Dual.crossings unit_ > 0)

let test_dual_echo_steady_state_zero_alloc () =
  (* The allocation-free acceptance bar: once the pool is warm, a dual-
     boundary TLS echo performs zero fresh Bytes allocations per frame on
     the L2 path (RX consume buffers and TX pad staging all recycle). *)
  let open Cio_netsim in
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
  let rng = Rng.create 11L in
  let now () = Engine.now engine in
  let psk = Bytes.of_string "steady-state-echo-psk-32-bytes-x" in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:Helpers.ip_b ~mac:Helpers.mac_b
      ~neighbors:[ (Helpers.ip_a, Helpers.mac_a) ] ~psk ~psk_id:"s" ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:4433;
  let unit_ =
    Dual.create ~mac:Helpers.mac_a ~name:"steady" ~ip:Helpers.ip_a
      ~neighbors:[ (Helpers.ip_b, Helpers.mac_b) ] ~psk ~psk_id:"s" ~rng:(Rng.split rng) ~now ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  let ch = Dual.connect unit_ ~dst:Helpers.ip_b ~dst_port:4433 in
  let pump () =
    Dual.poll unit_;
    Cio_cionet.Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:2_000L
  in
  let rec until pred n = pred () || (n > 0 && (pump (); until pred (n - 1))) in
  Alcotest.(check bool) "established" true (until (fun () -> Channel.is_established ch) 2000);
  let msg = Bytes.make 512 'e' in
  let echo () =
    (match Channel.send ch msg with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Cio_tls.Session.error_to_string e));
    let got = ref None in
    if
      not
        (until
           (fun () ->
             (match Channel.recv ch with Some m -> got := Some m | None -> ());
             !got <> None)
           2000)
    then Alcotest.fail "echo lost";
    Helpers.check_bytes "echo content" msg (Option.get !got)
  in
  for _ = 1 to 6 do echo () done;
  let pool = Cio_cionet.Driver.pool (Dual.driver unit_) in
  let fresh0 = (Cio_mem.Bufpool.stats pool).Cio_mem.Bufpool.fresh in
  for _ = 1 to 10 do echo () done;
  Alcotest.(check int) "zero per-frame allocations on the L2 path" fresh0
    (Cio_mem.Bufpool.stats pool).Cio_mem.Bufpool.fresh

let test_channel_copy_knobs_change_costs () =
  (* E7 at unit level: zero-copy send saves the L5 crossing copy. *)
  let run ~zc =
    let pair = Helpers.make_stack_pair () in
    let tcp_a = Cio_tcpip.Stack.tcp pair.Helpers.stack_a in
    let tcp_b = Cio_tcpip.Stack.tcp pair.Helpers.stack_b in
    let listener = Cio_tcpip.Tcp.listen tcp_b ~port:5555 () in
    let conn = Cio_tcpip.Tcp.connect tcp_a ~dst:Helpers.ip_b ~dst_port:5555 () in
    let server_conn = ref None in
    ignore
      (Helpers.run_until pair (fun () ->
           (match !server_conn with None -> server_conn := Cio_tcpip.Tcp.accept listener | Some _ -> ());
           Cio_tcpip.Tcp.conn_state conn = Cio_tcpip.Tcp.Established && !server_conn <> None));
    let meter = Cost.meter () in
    let rng = Rng.create 5L in
    let session =
      Cio_tls.Session.create ~meter ~role:Cio_tls.Session.Client
        ~psk:(Bytes.make 32 'p') ~psk_id:"t" ~rng ()
    in
    let ch =
      Channel.create ~zero_copy_send:zc ~copy_on_recv:false ~meter ~session
        ~stack:pair.Helpers.stack_a ~conn ()
    in
    ignore (Channel.start_handshake ch);
    ignore (Channel.send ch (Bytes.make 4096 'd'));
    Channel.pump ch;
    Cost.cycles_of meter Cost.Copy
  in
  let with_copy = run ~zc:false and without_copy = run ~zc:true in
  Alcotest.(check bool) "zero-copy saves cycles" true (without_copy < with_copy)

let suite =
  [
    Alcotest.test_case "all five configurations complete" `Slow test_all_configurations_complete;
    Alcotest.test_case "fig5: dual fastest per byte" `Slow test_dual_fastest_per_byte;
    Alcotest.test_case "fig5: hardening tax" `Slow test_hardening_tax_visible;
    Alcotest.test_case "fig5: syscall slowest TCP design" `Slow test_syscall_slowest_of_tcp_designs;
    Alcotest.test_case "fig5: observability ordering" `Slow test_observability_ordering;
    Alcotest.test_case "fig5: TCB ordering" `Slow test_tcb_ordering;
    Alcotest.test_case "dual: handoff crossings bounded" `Slow test_dual_crossings_bounded;
    Alcotest.test_case "tunnel: uniform wire sizes" `Slow test_tunnel_uniform_sizes;
    Alcotest.test_case "runs are deterministic" `Slow test_deterministic_runs;
    Alcotest.test_case "message size sweep" `Slow test_message_sizes_sweep;
    Alcotest.test_case "tunnel codec roundtrip" `Quick test_tunnel_codec_roundtrip;
    Alcotest.test_case "tunnel uniform padding" `Quick test_tunnel_uniform_padding;
    Alcotest.test_case "dual unit direct echo" `Slow test_dual_unit_echo_direct;
    Alcotest.test_case "dual echo allocation-free in steady state" `Slow
      test_dual_echo_steady_state_zero_alloc;
    Alcotest.test_case "channel copy knobs (E7)" `Quick test_channel_copy_knobs_change_costs;
  ]
