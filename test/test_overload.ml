(* Tests for the overload-control plane (lib/overload) and its threading
   through the datapath: admission classes, breaker state machine, retry
   budget + decorrelated jitter, deadline propagation, bounded TX queue,
   typed driver backpressure — plus the two acceptance properties: the
   watchdog backoff law under a shared retry budget, and the composed
   stall/ring-freeze campaign with the plane on (breaker re-closed, zero
   lost admitted frames, overload.* metrics consistent with the report). *)

open Cio_util
open Cio_cionet
open Cio_overload
module Metrics = Cio_telemetry.Metrics

let accepted = function Pressure.Accepted -> true | Pressure.Backpressure _ -> false

(* --- admission ---------------------------------------------------------- *)

let test_admission_control_exempt () =
  let clock = ref 0L in
  let a = Admission.create ~rate_per_sec:0 ~burst:4 ~now:(fun () -> !clock) () in
  for _ = 1 to 4 do
    Alcotest.(check bool) "bucket token admits interactive" true
      (accepted (Admission.admit a Admission.Interactive))
  done;
  Alcotest.(check bool) "dry bucket sheds interactive" false
    (accepted (Admission.admit a Admission.Interactive));
  for _ = 1 to 16 do
    Alcotest.(check bool) "control admitted on an empty bucket" true
      (accepted (Admission.admit a Admission.Control))
  done;
  Alcotest.(check int) "control exemption leaves no token debt" 0 (Admission.tokens a)

let test_admission_bulk_shed_first () =
  (* burst 8, 25% reserve = 2 tokens: bulk may spend down to the reserve
     (6 admits), then sheds while interactive still has 2 tokens. *)
  let clock = ref 0L in
  let a =
    Admission.create ~rate_per_sec:0 ~burst:8 ~bulk_reserve_percent:25
      ~now:(fun () -> !clock) ()
  in
  let bulk_ok = ref 0 in
  for _ = 1 to 10 do
    if accepted (Admission.admit a Admission.Bulk) then incr bulk_ok
  done;
  Alcotest.(check int) "bulk stops at the reserve" 6 !bulk_ok;
  Alcotest.(check int) "reserve intact" 2 (Admission.tokens a);
  Alcotest.(check bool) "interactive spends the reserve" true
    (accepted (Admission.admit a Admission.Interactive));
  Alcotest.(check int) "bulk sheds counted per class" 4 (Admission.shed_of a Admission.Bulk)

let test_admission_refill_deterministic () =
  let run () =
    let clock = ref 0L in
    let a = Admission.create ~rate_per_sec:1_000 ~burst:4 ~now:(fun () -> !clock) () in
    let log = ref [] in
    for i = 1 to 40 do
      (* 1 ms of simulated time per iteration = exactly one token. *)
      clock := Int64.add !clock 1_000_000L;
      let klass = if i mod 3 = 0 then Admission.Bulk else Admission.Interactive in
      log := accepted (Admission.admit a klass) :: !log;
      log := accepted (Admission.admit a klass) :: !log
    done;
    (!log, Admission.admitted_total a, Admission.shed_total a)
  in
  let l1, ad1, sh1 = run () and l2, ad2, sh2 = run () in
  Alcotest.(check bool) "same clock, same admissions" true (l1 = l2);
  Alcotest.(check int) "same admitted total" ad1 ad2;
  Alcotest.(check int) "same shed total" sh1 sh2;
  (* 1 token/ms against 2 requests/ms: the bucket paces to the rate. *)
  Alcotest.(check bool) "admitted tracks the refill rate" true (ad1 >= 40 && ad1 <= 44)

(* --- breaker ------------------------------------------------------------ *)

let test_breaker_state_walk () =
  let b = Breaker.create ~threshold:2 ~cooldown:2 () in
  let transitions0 =
    Metrics.counter_value (Metrics.counter Metrics.default "overload.breaker.transitions")
  in
  Alcotest.(check string) "starts closed" "closed" (Breaker.state_name (Breaker.state b));
  Breaker.failure b;
  Alcotest.(check string) "below threshold stays closed" "closed"
    (Breaker.state_name (Breaker.state b));
  Breaker.failure b;
  Alcotest.(check string) "threshold consecutive failures open it" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check int) "state gauge follows" (Breaker.state_code Breaker.Open)
    (Metrics.gauge_value (Metrics.gauge Metrics.default "overload.breaker.state"));
  Alcotest.(check bool) "open denies work during cooldown" false (Breaker.allow b);
  Alcotest.(check bool) "cooldown exhaustion grants the half-open probe" true
    (Breaker.allow b);
  Alcotest.(check string) "now half-open" "half-open" (Breaker.state_name (Breaker.state b));
  Breaker.failure b;
  Alcotest.(check string) "failed probe re-opens" "open"
    (Breaker.state_name (Breaker.state b));
  ignore (Breaker.allow b);
  ignore (Breaker.allow b);
  Breaker.success b;
  Alcotest.(check string) "success re-closes from any state" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check int) "every edge counted" 5 (Breaker.transitions b);
  let transitions1 =
    Metrics.counter_value (Metrics.counter Metrics.default "overload.breaker.transitions")
  in
  Alcotest.(check int) "transitions counter matches" 5 (transitions1 - transitions0);
  Breaker.failure b;
  Alcotest.(check int) "single failure after re-close stays closed" 1
    (Breaker.consecutive_failures b);
  Alcotest.(check string) "still closed" "closed" (Breaker.state_name (Breaker.state b))

(* --- retry budget ------------------------------------------------------- *)

let test_retry_budget_exhaustion_and_refill () =
  let rb = Retry_budget.create ~capacity:2 ~refill_percent:50 ~rng:(Rng.create 9L) () in
  Alcotest.(check bool) "token 1" true (Retry_budget.try_retry rb);
  Alcotest.(check bool) "token 2" true (Retry_budget.try_retry rb);
  Alcotest.(check bool) "exhausted budget refuses" false (Retry_budget.try_retry rb);
  Alcotest.(check int) "denial counted" 1 (Retry_budget.denied rb);
  Retry_budget.on_success rb;
  Alcotest.(check bool) "half a token is not a retry" false (Retry_budget.try_retry rb);
  Retry_budget.on_success rb;
  Alcotest.(check bool) "successes earn the token back" true (Retry_budget.try_retry rb);
  Alcotest.(check int) "grants counted" 3 (Retry_budget.granted rb)

let test_retry_backoff_jitter_law () =
  let base = 1_000_000L and cap = 8_000_000L in
  let sample seed =
    let rb = Retry_budget.create ~base_ns:base ~cap_ns:cap ~rng:(Rng.create seed) () in
    List.init 32 (fun _ -> Retry_budget.backoff_ns rb)
  in
  let s = sample 3L in
  let prev = ref base in
  List.iter
    (fun d ->
      Alcotest.(check bool) "never below base" true (Int64.compare d base >= 0);
      Alcotest.(check bool) "never above cap" true (Int64.compare d cap <= 0);
      Alcotest.(check bool) "decorrelated: at most 3x the previous delay" true
        (Int64.compare d (Int64.min cap (Int64.mul 3L (Int64.max base !prev))) <= 0);
      prev := d)
    s;
  Alcotest.(check bool) "same seed, same jitter sequence" true (s = sample 3L);
  let rb = Retry_budget.create ~base_ns:base ~cap_ns:cap ~rng:(Rng.create 3L) () in
  List.iter (fun _ -> ignore (Retry_budget.backoff_ns rb)) s;
  Retry_budget.reset_backoff rb;
  Alcotest.(check bool) "reset collapses the anchor to base" true
    (Int64.compare (Retry_budget.backoff_ns rb) (Int64.mul 3L base) <= 0)

(* --- deadlines ---------------------------------------------------------- *)

let test_deadline_propagation () =
  Alcotest.(check bool) "none never expires" false
    (Deadline.expired Deadline.none ~now:Int64.max_int);
  let d = Deadline.after ~now:100L ~budget_ns:50L in
  Alcotest.(check bool) "fresh deadline is live" false (Deadline.expired d ~now:100L);
  Alcotest.(check bool) "live at the edge" false (Deadline.expired d ~now:150L);
  Alcotest.(check bool) "blown past the budget" true (Deadline.expired d ~now:151L);
  Alcotest.(check bool) "remaining clamps at zero" true
    (Int64.equal (Deadline.remaining_ns d ~now:400L) 0L);
  Alcotest.(check bool) "non-positive budget means none" true
    (Deadline.is_none (Deadline.after ~now:5L ~budget_ns:0L));
  (* The plane sheds a blown deadline before anything else. *)
  let clock = ref 0L in
  let plane = Plane.create ~rng:(Rng.create 1L) ~now:(fun () -> !clock) () in
  let d = Plane.deadline plane in
  clock := Int64.add !clock (Int64.add (Plane.config plane).Plane.deadline_budget_ns 1L);
  (match Plane.admit ~deadline:d plane Admission.Interactive with
  | Pressure.Backpressure Pressure.Deadline -> ()
  | _ -> Alcotest.fail "blown deadline must shed with the Deadline reason");
  Alcotest.(check int) "counted as deadline shed" 1 (Plane.deadline_shed plane)

(* --- bounded TX queue in the stack -------------------------------------- *)

let test_stack_bounded_txq_sheds () =
  let nif_a, _nif_b =
    Cio_tcpip.Netif.loopback_pair ~mac_a:Helpers.mac_a ~mac_b:Helpers.mac_b ~mtu:1500
  in
  let clock = ref 0L in
  (* A tx_burst that accepts nothing: the ring is permanently full from
     the stack's point of view, so the bounded queue must shed, not grow. *)
  let st =
    Cio_tcpip.Stack.create ~tx_burst:(fun _ -> 0) ~tx_queue_limit:4 ~netif:nif_a
      ~ip:Helpers.ip_a
      ~neighbors:[ (Helpers.ip_b, Helpers.mac_b) ]
      ~now:(fun () -> !clock)
      ~rng:(Rng.create 2L) ()
  in
  let qf0 =
    Metrics.counter_value (Metrics.counter Metrics.default "overload.bp.queue_full")
  in
  for i = 1 to 10 do
    Cio_tcpip.Stack.send_udp st ~src_port:1000 ~dst:Helpers.ip_b ~dst_port:2000
      (Bytes.make 32 (Char.chr (Char.code 'a' + i)))
  done;
  let c = Cio_tcpip.Stack.counters st in
  Alcotest.(check int) "queue holds exactly the limit" 4 (Cio_tcpip.Stack.tx_backlog st);
  Alcotest.(check int) "excess shed, not queued" 6 c.Cio_tcpip.Stack.dropped;
  Alcotest.(check string) "drop reason names backpressure" "tx backpressure: queue full"
    c.Cio_tcpip.Stack.last_drop_reason;
  Alcotest.(check bool) "full queue reports hard pressure" true
    (Cio_tcpip.Stack.tx_pressure st = Pressure.Hard);
  let qf1 =
    Metrics.counter_value (Metrics.counter Metrics.default "overload.bp.queue_full")
  in
  Alcotest.(check int) "sheds surface as overload.bp.queue_full" 6 (qf1 - qf0)

(* --- typed driver backpressure ------------------------------------------ *)

let test_driver_transmit_ex_ring_full () =
  let cfg =
    { Config.default with Config.ring_slots = 8;
      positioning = Config.Inline { data_capacity = 2048 } }
  in
  let drv = Driver.create ~name:"test-overload-bp" cfg in
  (* No host poll: the TX ring fills and stays full. *)
  let payload = Bytes.make 64 'x' in
  for i = 1 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d accepted" i)
      true
      (accepted (Driver.transmit_ex drv payload))
  done;
  Alcotest.(check int) "occupancy at capacity" 8 (Driver.tx_occupancy drv);
  Alcotest.(check bool) "full ring reports hard pressure" true
    (Driver.tx_pressure drv = Pressure.Hard);
  let rf0 =
    Metrics.counter_value (Metrics.counter Metrics.default "overload.bp.ring_full")
  in
  (match Driver.transmit_ex drv payload with
  | Pressure.Backpressure Pressure.Ring_full -> ()
  | _ -> Alcotest.fail "full ring must refuse with the Ring_full reason");
  let n, outcome = Driver.transmit_burst_ex drv [| payload; payload |] in
  Alcotest.(check int) "burst accepts nothing on a full ring" 0 n;
  Alcotest.(check bool) "burst reports the same reason" true
    (outcome = Pressure.Backpressure Pressure.Ring_full);
  let rf1 =
    Metrics.counter_value (Metrics.counter Metrics.default "overload.bp.ring_full")
  in
  Alcotest.(check int) "refusals counted" 2 (rf1 - rf0)

(* --- property: watchdog backoff law under a shared retry budget --------- *)

(* The multiplier law the watchdog promises even when resets draw from a
   shared (exhaustible) retry budget: powers of two only, capped at
   max_backoff, advancing at most one doubling at a time, and collapsing
   to exactly 1 on real progress. A deferred reset (budget dry, breaker
   open) must not advance the multiplier — deferral is not backoff. *)
let prop_watchdog_backoff_under_budget =
  let open QCheck in
  let op_gen = Gen.(frequency [ (4, return `Stall_tick); (1, return `Progress) ]) in
  Test.make ~name:"watchdog backoff: doubling/cap/reset law holds under retry budget"
    ~count:80
    (make
       ~print:(fun ops ->
         String.concat ""
           (List.map (function `Stall_tick -> "s" | `Progress -> "p") ops))
       Gen.(list_size (int_range 20 300) op_gen))
    (fun ops ->
      let cfg =
        { Config.default with Config.ring_slots = 16;
          positioning = Config.Inline { data_capacity = 2048 } }
      in
      let drv = Driver.create ~name:"test-overload-wd" cfg in
      let sent = ref 0 in
      let host = Host_model.create ~driver:drv ~transmit:(fun _ -> incr sent) in
      let breaker = Breaker.create ~threshold:3 ~cooldown:4 () in
      let rb = Retry_budget.create ~capacity:3 ~refill_percent:50 ~rng:(Rng.create 5L) () in
      let wd =
        Watchdog.create ~poll_budget:2 ~max_backoff:8 ~breaker ~retry_budget:rb
          ~on_reset:(fun () -> Host_model.reattach host ~driver:drv)
          drv
      in
      let ok = ref true in
      let prev = ref (Watchdog.current_backoff wd) in
      let check_law after_progress =
        let b = Watchdog.current_backoff wd in
        let is_pow2 = b > 0 && b land (b - 1) = 0 in
        if not (is_pow2 && b <= 8) then ok := false;
        (* One tick moves the multiplier by at most one doubling, and
           never downward except to 1. *)
        if not (b = !prev || b = 2 * !prev || b = 1) then ok := false;
        if after_progress && b <> 1 then ok := false;
        prev := b
      in
      List.iter
        (fun op ->
          match op with
          | `Stall_tick ->
              (* The host does not poll: pending TX makes the deadline arm. *)
              if Driver.tx_occupancy drv = 0 then
                ignore (Driver.transmit drv (Bytes.make 8 's'));
              Watchdog.tick wd;
              check_law false
          | `Progress ->
              Host_model.deliver_rx host (Bytes.make 8 'p');
              Host_model.poll host;
              ignore (Driver.poll drv);
              Watchdog.tick wd;
              check_law true)
        ops;
      !ok)

(* --- property: composed faults with the plane on ------------------------ *)

(* The acceptance property: a stall + ring-freeze campaign with the
   overload plane on must survive with zero lost admitted in-flight
   frames and a re-closed breaker, and the global overload.* metrics
   must agree exactly with the per-plane numbers in the report. *)
let prop_composed_faults_breaker_recloses =
  let open QCheck in
  Test.make ~name:"composed stall+freeze with plane on: re-closed breaker, zero lost"
    ~count:5 (int_bound 1000) (fun seed ->
      let open Cio_fault in
      let plan =
        {
          Plan.seed = Int64.of_int seed;
          injections =
            [
              { Plan.at_step = 2_000; kind = Plan.Host_stall 600 };
              { Plan.at_step = 9_000; kind = Plan.Host_ring_freeze 600 };
            ];
        }
      in
      let config =
        {
          Campaign.default_config with
          Campaign.watchdog_budget = 120;
          max_steps = 150_000;
          overload = Some { Plane.default_config with Plane.breaker_threshold = 2 };
        }
      in
      let ctr name = Metrics.counter_value (Metrics.counter Metrics.default name) in
      let adm0 = ctr "overload.admitted"
      and shed0 = ctr "overload.shed"
      and tr0 = ctr "overload.breaker.transitions" in
      let r = Campaign.run ~config plan in
      let adm1 = ctr "overload.admitted"
      and shed1 = ctr "overload.shed"
      and tr1 = ctr "overload.breaker.transitions" in
      r.Campaign.survived
      && r.Campaign.lost = 0
      && r.Campaign.leaks = 0
      && Campaign.all_recovered r
      && r.Campaign.breaker_state = "closed"
      && r.Campaign.breaker_transitions mod 2 = 0
      && r.Campaign.admitted > 0
      && adm1 - adm0 = r.Campaign.admitted
      && shed1 - shed0 = r.Campaign.shed
      && tr1 - tr0 = r.Campaign.breaker_transitions)

(* --- E22: graceful degradation under offered load ------------------------ *)

let e22_plane_cfg quantum_ns deadline_steps =
  {
    Plane.default_config with
    Plane.admit_rate_per_sec = 50_000;
    admit_burst = 8;
    queue_limit = 64;
    deadline_budget_ns = Int64.mul (Int64.of_int deadline_steps) quantum_ns;
  }

let test_loadgen_graceful_degradation () =
  let open Cio_fault in
  let base = Loadgen.default_config in
  let cfg ~rate ~on =
    {
      base with
      Loadgen.offered_per_mille = rate;
      overload = (if on then Some (e22_plane_cfg base.Loadgen.quantum_ns base.Loadgen.deadline_steps) else None);
    }
  in
  let on_1x = Loadgen.run ~config:(cfg ~rate:500 ~on:true) ~seed:7L () in
  let on_4x = Loadgen.run ~config:(cfg ~rate:2_000 ~on:true) ~seed:7L () in
  let off_4x = Loadgen.run ~config:(cfg ~rate:2_000 ~on:false) ~seed:7L () in
  (* Plane on: goodput at 4x offered within 20% of the saturation level,
     latency bounded by the deadline, nothing stranded. *)
  Alcotest.(check bool) "plane on holds goodput at 4x offered" true
    (10 * on_4x.Loadgen.timely >= 8 * on_1x.Loadgen.timely);
  Alcotest.(check bool) "plane on bounds p99 by the deadline" true
    (on_4x.Loadgen.p99_rtt_steps <= base.Loadgen.deadline_steps);
  Alcotest.(check int) "plane on strands no sealed bytes" 0 on_4x.Loadgen.backlog_bytes;
  Alcotest.(check bool) "the excess was shed, not queued" true
    (on_4x.Loadgen.shed > on_4x.Loadgen.sent);
  (* Plane off: classic congestion collapse. *)
  Alcotest.(check bool) "plane off collapses goodput" true
    (2 * off_4x.Loadgen.timely < on_4x.Loadgen.timely);
  Alcotest.(check bool) "plane off latency blows through the deadline" true
    (off_4x.Loadgen.p99_rtt_steps > 4 * base.Loadgen.deadline_steps);
  Alcotest.(check bool) "plane off strands sealed bytes in queues" true
    (off_4x.Loadgen.backlog_bytes > 0);
  Alcotest.(check int) "plane off sheds nothing (and pays for it)" 0 off_4x.Loadgen.shed;
  (* Determinism: same seed + config, byte-identical report. *)
  let again = Loadgen.run ~config:(cfg ~rate:2_000 ~on:true) ~seed:7L () in
  Alcotest.(check bool) "same seed, identical report" true (again = on_4x)

let suite =
  [
    Alcotest.test_case "admission: control exempt" `Quick test_admission_control_exempt;
    Alcotest.test_case "admission: bulk shed first" `Quick test_admission_bulk_shed_first;
    Alcotest.test_case "admission: refill deterministic" `Quick
      test_admission_refill_deterministic;
    Alcotest.test_case "breaker: state walk + metrics" `Quick test_breaker_state_walk;
    Alcotest.test_case "retry budget: exhaustion and refill" `Quick
      test_retry_budget_exhaustion_and_refill;
    Alcotest.test_case "retry budget: jitter law" `Quick test_retry_backoff_jitter_law;
    Alcotest.test_case "deadline: propagation and shed" `Quick test_deadline_propagation;
    Alcotest.test_case "stack: bounded TX queue sheds" `Quick test_stack_bounded_txq_sheds;
    Alcotest.test_case "driver: typed ring-full backpressure" `Quick
      test_driver_transmit_ex_ring_full;
    Helpers.qtest prop_watchdog_backoff_under_budget;
    Helpers.qtest prop_composed_faults_breaker_recloses;
    Alcotest.test_case "E22: graceful degradation under load" `Slow
      test_loadgen_graceful_degradation;
  ]
