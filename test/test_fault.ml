(* Tests for the fault-injection campaign engine and the self-healing
   machinery it drives: deterministic plans, crash containment + restart
   of the quarantined I/O stack, fail-closed record tampering, watchdog
   stall recovery — and the leak verdict that makes them safe. *)

open Cio_util
open Cio_core
open Cio_netsim
open Cio_fault
open Cio_compartment

(* --- plans --------------------------------------------------------------- *)

let test_plan_deterministic () =
  let a = Plan.generate ~seed:7L () and b = Plan.generate ~seed:7L () in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  let c = Plan.generate ~seed:8L () in
  Alcotest.(check bool) "different seed, different plan" true (a <> c)

let test_plan_covers_every_layer () =
  let plan = Plan.generate ~seed:3L () in
  let classes =
    List.map
      (fun { Plan.kind; _ } ->
        match kind with
        | Plan.Host_stall _ -> `Stall
        | Plan.Host_ring_freeze _ | Plan.Host_silent_drop _ -> `Starve
        | Plan.Host_lie_len _ | Plan.Host_bad_index _ | Plan.Host_garbage_state _
        | Plan.Host_race_header _ | Plan.Host_corrupt_payload | Plan.Host_replay_slot ->
            `Sabotage
        | Plan.Link_burst _ -> `Link
        | Plan.Record_tamper -> `Record
        | Plan.Stack_crash _ -> `Crash)
      plan.Plan.injections
  in
  List.iter
    (fun cls -> Alcotest.(check bool) "layer class present" true (List.mem cls classes))
    [ `Stall; `Starve; `Sabotage; `Link; `Record; `Crash ];
  let steps = List.map (fun i -> i.Plan.at_step) plan.Plan.injections in
  Alcotest.(check bool) "injection steps strictly increasing" true
    (List.sort compare steps = steps && List.sort_uniq compare steps = steps)

(* --- campaigns ----------------------------------------------------------- *)

(* Small, fast configuration: low watchdog budget, short fault windows. *)
let fast_config =
  { Campaign.default_config with Campaign.watchdog_budget = 120; max_steps = 150_000;
    target_echoes = 8 }

let run_injections ?(config = fast_config) ~seed injections =
  Campaign.run ~config { Plan.seed; injections }

let test_campaign_deterministic () =
  let plan =
    { Plan.seed = 5L;
      injections =
        [ { Plan.at_step = 800; kind = Plan.Host_stall 300 };
          { Plan.at_step = 25_000; kind = Plan.Record_tamper };
          { Plan.at_step = 50_000; kind = Plan.Stack_crash 120 } ] }
  in
  let show r = Format.asprintf "%a" Campaign.pp r in
  let a = show (Campaign.run ~config:fast_config plan) in
  let b = show (Campaign.run ~config:fast_config plan) in
  Alcotest.(check string) "same seed, byte-identical report" a b

let test_campaign_stall_watchdog_recovery () =
  let r = run_injections ~seed:21L [ { Plan.at_step = 700; kind = Plan.Host_stall 400 } ] in
  Alcotest.(check bool) "stall detected" true (r.Campaign.stalls_detected >= 1);
  Alcotest.(check bool) "ring reset" true (r.Campaign.resets >= 1);
  Alcotest.(check bool) "recovered" true (Campaign.all_recovered r);
  Alcotest.(check int) "no leaks" 0 r.Campaign.leaks;
  Alcotest.(check bool) "survived" true r.Campaign.survived

let test_campaign_crash_containment () =
  let r = run_injections ~seed:22L [ { Plan.at_step = 900; kind = Plan.Stack_crash 150 } ] in
  Alcotest.(check int) "one crash" 1 r.Campaign.crashes;
  Alcotest.(check int) "one restart" 1 r.Campaign.restarts;
  Alcotest.(check bool) "reconnected" true (r.Campaign.reconnects >= 1);
  Alcotest.(check bool) "recovered" true (Campaign.all_recovered r);
  Alcotest.(check int) "no integrity failures" 0 r.Campaign.integrity_failures;
  Alcotest.(check int) "no plaintext to host" 0 r.Campaign.leaks;
  Alcotest.(check bool) "survived" true r.Campaign.survived

let test_campaign_record_tamper_fail_closed () =
  let r = run_injections ~seed:23L [ { Plan.at_step = 600; kind = Plan.Record_tamper } ] in
  Alcotest.(check bool) "fresh session after tamper" true (r.Campaign.reconnects >= 1);
  Alcotest.(check int) "tampered record never surfaced" 0 r.Campaign.integrity_failures;
  Alcotest.(check int) "no leaks" 0 r.Campaign.leaks;
  Alcotest.(check bool) "survived" true r.Campaign.survived

let test_campaign_sabotage_confined () =
  let r =
    run_injections ~seed:24L
      [ { Plan.at_step = 500; kind = Plan.Host_lie_len 999_999 } ]
  in
  Alcotest.(check bool) "confined at L2" true (r.Campaign.confined >= 1);
  Alcotest.(check bool) "survived" true r.Campaign.survived

let test_tamper_helper_only_touches_payload () =
  (* The record-tamper helper must produce a frame that still parses at
     L2-L4 (that is the point: only the AEAD may notice). *)
  let open Cio_frame in
  let payload = Bytes.make 32 'p' in
  let seg =
    { Tcp_wire.src_port = 1234; dst_port = 443; seq = 7l; ack = 9l;
      flags = { Tcp_wire.syn = false; ack = true; fin = false; rst = false; psh = false };
      window = 65535; payload; mss = None }
  in
  let src = Addr.ipv4_of_octets 10 0 0 1 and dst = Addr.ipv4_of_octets 10 0 0 2 in
  let tcp = Tcp_wire.build ~src_ip:src ~dst_ip:dst seg in
  let ip =
    Ipv4.build { Ipv4.src; dst; protocol = Ipv4.Tcp; ttl = 64; payload = tcp }
  in
  let eth =
    Ethernet.build
      { Ethernet.src = Addr.mac_of_octets 2 0 0 0 0 1;
        dst = Addr.mac_of_octets 2 0 0 0 0 2; ethertype = Ethernet.Ipv4; payload = ip }
  in
  match Campaign.tamper_tls_record eth with
  | None -> Alcotest.fail "tamper refused a payload-bearing frame"
  | Some eth' -> (
      Alcotest.(check bool) "frame changed" false (Bytes.equal eth eth');
      match Ethernet.parse eth' with
      | Error _ -> Alcotest.fail "tampered frame no longer parses at L2"
      | Ok e -> (
          match Ipv4.parse e.Ethernet.payload with
          | Error _ -> Alcotest.fail "tampered frame no longer parses at L3"
          | Ok i -> (
              match Tcp_wire.parse ~src_ip:i.Ipv4.src ~dst_ip:i.Ipv4.dst i.Ipv4.payload with
              | Error _ -> Alcotest.fail "tampered frame no longer parses at L4"
              | Ok s ->
                  Alcotest.(check bool) "only the payload differs" false
                    (Bytes.equal s.Tcp_wire.payload payload))))

(* --- compartment crash / restart ----------------------------------------- *)

let test_crash_domain_fails_closed () =
  let world = Compartment.create ~crossing:Compartment.Gate () in
  let a = Compartment.add_domain world ~name:"app" in
  let io = Compartment.add_domain world ~name:"io" in
  Alcotest.(check int) "call works while alive" 41
    (Compartment.call world ~caller:a ~callee:io (fun () -> 41));
  Compartment.crash_domain world io;
  Alcotest.(check bool) "dead" false (Compartment.domain_alive io);
  (match Compartment.call world ~caller:a ~callee:io (fun () -> 1) with
  | _ -> Alcotest.fail "call into a crashed domain must fail"
  | exception Compartment.Access_violation _ -> ());
  Alcotest.(check int) "crash counted" 1 (Compartment.counters world).Compartment.crashes;
  Compartment.restart_domain world io;
  Alcotest.(check bool) "alive again" true (Compartment.domain_alive io);
  Alcotest.(check int) "fresh incarnation" 1 (Compartment.domain_incarnation io);
  Alcotest.(check int) "restart counted" 1 (Compartment.counters world).Compartment.restarts;
  Alcotest.(check int) "call works after restart" 42
    (Compartment.call world ~caller:a ~callee:io (fun () -> 42))

(* --- dual-unit crash recovery end to end --------------------------------- *)

let test_dual_survives_io_stack_crash () =
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:5_000L ~gbps:10.0 engine in
  let rng = Rng.create 99L in
  let now () = Engine.now engine in
  let ip_tee = Cio_frame.Addr.ipv4_of_octets 10 0 0 1 in
  let ip_peer = Cio_frame.Addr.ipv4_of_octets 10 0 0 2 in
  let mac_tee = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 1 in
  let mac_peer = Cio_frame.Addr.mac_of_octets 2 0 0 0 0 2 in
  let psk = Bytes.of_string "attestation-provisioned-psk-32b!" in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer
      ~neighbors:[ (ip_tee, mac_tee) ] ~psk ~psk_id:"t" ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:443;
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"crash-test" ~ip:ip_tee
      ~neighbors:[ (ip_peer, mac_peer) ] ~psk ~psk_id:"t" ~rng:(Rng.split rng) ~now ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  let step () =
    Dual.poll unit_;
    Cio_cionet.Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:10_000L
  in
  let wait pred =
    let n = ref 0 in
    while (not (pred ())) && !n < 60_000 do incr n; step () done;
    pred ()
  in
  let ch = ref (Dual.connect unit_ ~dst:ip_peer ~dst_port:443) in
  Alcotest.(check bool) "established" true
    (wait (fun () -> Channel.is_established !ch));
  let echo msg =
    (match Channel.send !ch (Bytes.of_string msg) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "send failed");
    let got = ref None in
    ignore
      (wait (fun () ->
           (match Channel.recv !ch with Some m -> got := Some m | None -> ());
           !got <> None));
    match !got with
    | Some m -> Alcotest.(check string) "echo intact" msg (Bytes.to_string m)
    | None -> Alcotest.fail "no echo"
  in
  echo "before the crash";
  Dual.crash_io unit_;
  Alcotest.(check bool) "io dead" false (Dual.io_alive unit_);
  for _ = 1 to 200 do step () done;
  Dual.restart_io unit_;
  Cio_cionet.Host_model.reattach host ~driver:(Dual.driver unit_);
  ch := Dual.reconnect unit_ !ch;
  Alcotest.(check bool) "re-established after restart" true
    (wait (fun () -> Channel.is_established !ch));
  echo "after the restart";
  let r = Cio_observe.Recovery.snapshot (Dual.recovery unit_) in
  Alcotest.(check int) "one ring reset" 1 r.Cio_observe.Recovery.resets;
  Alcotest.(check int) "one reconnect" 1 r.Cio_observe.Recovery.reconnects

let suite =
  [
    Alcotest.test_case "plan: deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan: covers every layer" `Quick test_plan_covers_every_layer;
    Alcotest.test_case "campaign: byte-identical reports" `Slow test_campaign_deterministic;
    Alcotest.test_case "campaign: stall -> watchdog recovery" `Slow
      test_campaign_stall_watchdog_recovery;
    Alcotest.test_case "campaign: crash contained + restart" `Slow
      test_campaign_crash_containment;
    Alcotest.test_case "campaign: record tamper fails closed" `Slow
      test_campaign_record_tamper_fail_closed;
    Alcotest.test_case "campaign: sabotage confined at L2" `Slow test_campaign_sabotage_confined;
    Alcotest.test_case "tamper: survives L2-L4, breaks at L5" `Quick
      test_tamper_helper_only_touches_payload;
    Alcotest.test_case "compartment: crash fails closed, restart revives" `Quick
      test_crash_domain_fails_closed;
    Alcotest.test_case "dual: survives I/O-stack crash" `Quick test_dual_survives_io_stack_crash;
  ]
