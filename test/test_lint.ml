(* cio_lint: the static analyzer and its runtime counterpart.

   The static half is pinned by the repo's own sources: the
   intentionally-vulnerable driver_unhardened.ml is a living corpus that
   must keep producing findings, and the hardened/safe modules must stay
   clean. The runtime half drives the same corpus driver under an
   adversarial device and checks that the Region double-fetch sanitizer
   observes dynamically what the DF rule flags statically. *)

open Cio_mem
open Cio_virtio
open Cio_fault
module Lint = Cio_lintlib.Lint

let root () = Helpers.repo_root ()

let count_categories findings =
  List.sort_uniq compare (List.map (fun f -> f.Lint.f_rule) findings) |> List.length

(* --- static: the living corpus ------------------------------------------ *)

let corpus_file = "lib/virtio/driver_unhardened.ml"

let test_corpus_yields_findings () =
  let fs = Lint.scan_file ~root:(root ()) corpus_file in
  Alcotest.(check bool)
    (Printf.sprintf "at least %d findings (got %d)" Lint.corpus_min_findings (List.length fs))
    true
    (List.length fs >= Lint.corpus_min_findings);
  Alcotest.(check bool)
    (Printf.sprintf "at least %d rule categories" Lint.corpus_min_categories)
    true
    (count_categories fs >= Lint.corpus_min_categories);
  List.iter
    (fun f -> Alcotest.(check string) "role" "corpus" (Lint.role_name f.Lint.f_role))
    fs;
  (* The corpus must exhibit the two headline taxonomy classes. *)
  Alcotest.(check bool) "has a double fetch" true
    (List.exists (fun f -> f.Lint.f_rule = Lint.DF) fs);
  Alcotest.(check bool) "has an unvalidated value" true
    (List.exists (fun f -> f.Lint.f_rule = Lint.UV) fs)

let test_safe_modules_clean () =
  List.iter
    (fun rel ->
      let fs = Lint.scan_file ~root:(root ()) rel in
      Alcotest.(check int)
        (rel ^ " is finding-free")
        0 (List.length fs))
    [
      "lib/cionet/ring.ml";
      "lib/cionet/driver.ml";
      "lib/virtio/driver_hardened.ml";
      "lib/virtio/vring.ml";
      "lib/mem/region.ml";
      "lib/mem/pool.ml";
      "lib/util/rng.ml";
    ]

let test_trusted_tree_clean () =
  (* The full-tree scan must produce zero trusted-path findings: this is
     the same invariant the CI gate enforces, pinned here so `dune
     runtest` catches a regression without needing the baseline file. *)
  let fs = Lint.scan ~root:(root ()) in
  let trusted = List.filter (fun f -> f.Lint.f_role = Lint.Trusted) fs in
  List.iter (fun f -> Format.eprintf "unexpected: %a@." Lint.pp_finding f) trusted;
  Alcotest.(check int) "no trusted-path findings" 0 (List.length trusted)

let test_classify () =
  let check rel expect =
    Alcotest.(check string) rel expect (Lint.role_name (Lint.classify rel))
  in
  check "lib/cionet/ring.ml" "trusted";
  check "lib/mem/region.ml" "trusted";
  check "lib/tls/session.ml" "trusted";
  check "lib/virtio/driver_unhardened.ml" "corpus";
  check "lib/virtio/device.ml" "host-model";
  check "lib/cionet/host_model.ml" "host-model";
  check "lib/attack/attack.ml" "host-model";
  check "lib/experiments/experiments.ml" "unclassified";
  check "lib/fault/campaign.ml" "unclassified"

let test_host_model_skipped () =
  (* The device plays the adversary: reading guest memory twice is its
     job, so the analyzer must not flag it at all. *)
  Alcotest.(check int) "device.ml skipped" 0
    (List.length (Lint.scan_file ~root:(root ()) "lib/virtio/device.ml"))

(* --- baseline + two-sided gate ------------------------------------------ *)

let load_committed_baseline () =
  Lint.load_baseline (Filename.concat (root ()) "LINT_baseline.json")

let test_baseline_gate_ok () =
  let baseline = load_committed_baseline () in
  Alcotest.(check bool) "baseline nonempty" true (baseline <> []);
  let g = Lint.gate ~baseline (Lint.scan ~root:(root ())) in
  Alcotest.(check int) "no new trusted findings" 0 (List.length g.Lint.g_new_trusted);
  Alcotest.(check int) "no vanished corpus findings" 0 (List.length g.Lint.g_corpus_missing);
  Alcotest.(check bool) "corpus rich enough" true
    (g.Lint.g_corpus_count >= Lint.corpus_min_findings
    && g.Lint.g_corpus_categories >= Lint.corpus_min_categories);
  Alcotest.(check bool) "gate passes" true g.Lint.g_ok

let test_gate_fails_on_new_trusted_finding () =
  let baseline = load_committed_baseline () in
  let fake =
    {
      Lint.f_rule = Lint.UC;
      f_file = "lib/mem/region.ml";
      f_func = "read";
      f_line = 1;
      f_detail = "synthetic: Bytes.unsafe_get";
      f_role = Lint.Trusted;
    }
  in
  let g = Lint.gate ~baseline (fake :: Lint.scan ~root:(root ())) in
  Alcotest.(check int) "flagged as new" 1 (List.length g.Lint.g_new_trusted);
  Alcotest.(check bool) "gate fails" false g.Lint.g_ok

let test_gate_fails_on_vanished_corpus_finding () =
  let baseline = load_committed_baseline () in
  let phantom =
    {
      Lint.b_key = "DF|" ^ corpus_file ^ "|nonesuch|synthetic";
      b_file = corpus_file;
      b_rule = "DF";
    }
  in
  let g = Lint.gate ~baseline:(phantom :: baseline) (Lint.scan ~root:(root ())) in
  Alcotest.(check int) "phantom reported missing" 1 (List.length g.Lint.g_corpus_missing);
  Alcotest.(check bool) "gate fails" false g.Lint.g_ok

let test_baseline_matches_tree () =
  (* Every committed baseline key must still be produced, and every
     corpus finding must be in the baseline: `--update-baseline` was run
     when the corpus last changed. *)
  let baseline = load_committed_baseline () in
  let keys = List.map Lint.key (Lint.scan_file ~root:(root ()) corpus_file) in
  List.iter
    (fun b ->
      Alcotest.(check bool) ("still produced: " ^ b.Lint.b_key) true
        (List.mem b.Lint.b_key keys))
    baseline;
  List.iter
    (fun k ->
      Alcotest.(check bool) ("in baseline: " ^ k) true
        (List.exists (fun b -> b.Lint.b_key = k) baseline))
    keys

let test_rule_categories_map_to_fig34 () =
  let name r = Cio_data.Hardening.category_name (Lint.rule_category r) in
  Alcotest.(check string) "DF -> add copies" "add copies" (name Lint.DF);
  Alcotest.(check string) "UV -> add checks" "add checks" (name Lint.UV);
  Alcotest.(check string) "UC -> add checks" "add checks" (name Lint.UC);
  Alcotest.(check string) "UW -> design changes" "design changes" (name Lint.UW);
  Alcotest.(check string) "SI -> design changes" "design changes" (name Lint.SI)

(* --- runtime: the sanitizer reproduces the DF finding dynamically -------- *)

(* Statically, cio_lint flags Driver_unhardened.poll for fetching the
   used entry twice (the DF finding in the committed baseline). Here the
   same driver runs against a device that rewrites the length between
   those two fetches — and the Region sanitizer, armed on the very
   region the static rule reasons about, observes the double fetch AND
   the mutation at runtime. *)
let drive_virtio ~hardened =
  let transport = Transport.create ~name:"lint-runtime" () in
  let device =
    Device.create ~rx:(Transport.rx transport) ~tx:(Transport.tx transport)
      ~transmit:(fun _ -> ())
  in
  let region = Transport.region transport in
  Region.sanitizer_enable region;
  let poll =
    if hardened then
      let d = Driver_hardened.create transport in
      fun () -> ignore (Driver_hardened.poll d)
    else
      let d = Driver_unhardened.create transport in
      fun () -> ignore (Driver_unhardened.poll d)
  in
  Device.inject device (Device.Race_used_len 6000);
  Device.deliver_rx device (Bytes.of_string "honest-frame-payload");
  Device.poll device;
  for _ = 1 to 4 do
    Region.sanitizer_epoch region;
    (try poll () with
    | Driver_unhardened.Unbounded_work _ | Region.Fault _ | Invalid_argument _ -> ())
  done;
  Region.sanitizer_stats region

let test_runtime_double_fetch_on_unhardened () =
  let s = drive_virtio ~hardened:false in
  Alcotest.(check bool) "double fetch observed" true (s.Region.double_fetches >= 1);
  Alcotest.(check bool) "host mutation between fetches observed" true
    (s.Region.mutated_fetches >= 1)

let test_runtime_hardened_single_fetch () =
  let s = drive_virtio ~hardened:true in
  Alcotest.(check int) "hardened driver never re-fetches" 0 s.Region.double_fetches;
  Alcotest.(check int) "no race window" 0 s.Region.mutated_fetches

let test_campaign_sanitized_safe_path_clean () =
  (* The sanitizer rides inside a fault campaign on the safe cionet
     datapath: even under injected faults it must see no double fetch —
     the safe interface reads each header exactly once by construction. *)
  let config =
    { Campaign.default_config with
      Campaign.watchdog_budget = 120;
      max_steps = 120_000;
      target_echoes = 6;
      sanitize = true }
  in
  let r =
    Campaign.run ~config
      { Plan.seed = 77L; injections = [ { Plan.at_step = 700; kind = Plan.Host_lie_len 999_999 } ] }
  in
  Alcotest.(check bool) "campaign survived" true r.Campaign.survived;
  Alcotest.(check int) "safe path: no double fetches" 0 r.Campaign.sanitizer_double_fetches;
  Alcotest.(check int) "safe path: no mutated fetches" 0 r.Campaign.sanitizer_mutated_fetches

let suite =
  [
    Alcotest.test_case "lint: corpus yields findings" `Quick test_corpus_yields_findings;
    Alcotest.test_case "lint: safe modules clean" `Quick test_safe_modules_clean;
    Alcotest.test_case "lint: trusted tree clean" `Quick test_trusted_tree_clean;
    Alcotest.test_case "lint: classify roles" `Quick test_classify;
    Alcotest.test_case "lint: host model skipped" `Quick test_host_model_skipped;
    Alcotest.test_case "lint: baseline gate ok" `Quick test_baseline_gate_ok;
    Alcotest.test_case "lint: gate fails on new trusted finding" `Quick
      test_gate_fails_on_new_trusted_finding;
    Alcotest.test_case "lint: gate fails on vanished corpus finding" `Quick
      test_gate_fails_on_vanished_corpus_finding;
    Alcotest.test_case "lint: baseline matches tree" `Quick test_baseline_matches_tree;
    Alcotest.test_case "lint: rules map to Fig. 3/4" `Quick test_rule_categories_map_to_fig34;
    Alcotest.test_case "lint: runtime DF on unhardened driver" `Quick
      test_runtime_double_fetch_on_unhardened;
    Alcotest.test_case "lint: runtime clean on hardened driver" `Quick
      test_runtime_hardened_single_fetch;
    Alcotest.test_case "lint: sanitized campaign, safe path clean" `Slow
      test_campaign_sanitized_safe_path_clean;
  ]
