(* Shared fixtures for the test suites. *)

open Cio_frame

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

let hex = Cio_util.Hex.to_bytes

let mac_a = Addr.mac_of_octets 0x02 0 0 0 0 0x01
let mac_b = Addr.mac_of_octets 0x02 0 0 0 0 0x02
let ip_a = Addr.ipv4_of_octets 10 0 0 1
let ip_b = Addr.ipv4_of_octets 10 0 0 2

(* A pair of stacks wired through loopback netifs with a shared manual
   clock: the minimal closed world for transport-layer tests. *)
type stack_pair = {
  stack_a : Cio_tcpip.Stack.t;
  stack_b : Cio_tcpip.Stack.t;
  clock : int64 ref;
}

let make_stack_pair ?(seed = 42L) () =
  let nif_a, nif_b = Cio_tcpip.Netif.loopback_pair ~mac_a ~mac_b ~mtu:1500 in
  let clock = ref 0L in
  let now () = !clock in
  let rng = Cio_util.Rng.create seed in
  let stack_a =
    Cio_tcpip.Stack.create ~netif:nif_a ~ip:ip_a ~neighbors:[ (ip_b, mac_b) ] ~now
      ~rng:(Cio_util.Rng.split rng) ()
  in
  let stack_b =
    Cio_tcpip.Stack.create ~netif:nif_b ~ip:ip_b ~neighbors:[ (ip_a, mac_a) ] ~now
      ~rng:(Cio_util.Rng.split rng) ()
  in
  { stack_a; stack_b; clock }

let step ?(ms = 1) pair =
  Cio_tcpip.Stack.poll pair.stack_a;
  Cio_tcpip.Stack.poll pair.stack_b;
  pair.clock := Int64.add !(pair.clock) (Int64.of_int (ms * 1_000_000))

let run_until ?(max_steps = 10_000) pair pred =
  let rec go n =
    if pred () then true
    else if n = 0 then false
    else begin
      step pair;
      go (n - 1)
    end
  in
  go max_steps

(* Established TCP connection pair over loopback. *)
let connected_pair ?seed () =
  let pair = make_stack_pair ?seed () in
  let tcp_a = Cio_tcpip.Stack.tcp pair.stack_a and tcp_b = Cio_tcpip.Stack.tcp pair.stack_b in
  let listener = Cio_tcpip.Tcp.listen tcp_b ~port:7777 () in
  let client = Cio_tcpip.Tcp.connect tcp_a ~dst:ip_b ~dst_port:7777 () in
  let server = ref None in
  let ok =
    run_until pair (fun () ->
        (match !server with None -> server := Cio_tcpip.Tcp.accept listener | Some _ -> ());
        Cio_tcpip.Tcp.conn_state client = Cio_tcpip.Tcp.Established && !server <> None)
  in
  if not ok then failwith "helpers.connected_pair: handshake did not complete";
  (pair, client, Option.get !server)

(* Pump [data] from [src_conn] on stack [src] to [dst_conn], returning
   what arrived. *)
let transfer pair ~src_tcp ~src_conn ~dst_tcp ~dst_conn data =
  let sent = ref 0 in
  let received = Buffer.create (Bytes.length data) in
  let total = Bytes.length data in
  let ok =
    run_until pair (fun () ->
        if !sent < total then begin
          let n =
            Cio_tcpip.Tcp.send src_tcp src_conn
              (Bytes.sub data !sent (min 8192 (total - !sent)))
          in
          sent := !sent + n;
          Cio_tcpip.Tcp.flush src_tcp src_conn
        end;
        Buffer.add_bytes received (Cio_tcpip.Tcp.recv dst_tcp dst_conn ~max:65536);
        Buffer.length received >= total)
  in
  if not ok then failwith "helpers.transfer: did not complete";
  Buffer.to_bytes received

(* TLS session pair, established. *)
let tls_pair ?(psk = Bytes.of_string "0123456789abcdef0123456789abcdef") ?(psk_id = "test") () =
  let rng = Cio_util.Rng.create 7L in
  let client = Cio_tls.Session.create ~role:Cio_tls.Session.Client ~psk ~psk_id ~rng () in
  let server = Cio_tls.Session.create ~role:Cio_tls.Session.Server ~psk ~psk_id ~rng () in
  let cat l = List.fold_left Bytes.cat Bytes.empty l in
  let f1 = match Cio_tls.Session.initiate client with Ok o -> cat o | Error _ -> failwith "initiate" in
  let r1 = Cio_tls.Session.feed server f1 in
  let r2 = Cio_tls.Session.feed client (cat r1.Cio_tls.Session.outputs) in
  ignore (Cio_tls.Session.feed server (cat r2.Cio_tls.Session.outputs));
  (client, server)

let cat_bytes l = List.fold_left Bytes.cat Bytes.empty l

let qtest = QCheck_alcotest.to_alcotest

(* Locate the repository root from wherever the test binary runs (dune
   executes it in _build/default/test, and dune copies the sources into
   _build/default, so walking up finds a complete lib/ tree). *)
let repo_root () =
  let marker = Filename.concat "lib" (Filename.concat "virtio" "driver_unhardened.ml") in
  let rec go dir =
    if Sys.file_exists (Filename.concat dir marker) then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  match go (Sys.getcwd ()) with
  | Some d -> d
  | None -> Alcotest.fail "repo root (containing lib/) not found above cwd"
