(* TCP/IP stack tests over loopback netifs, including adversarial frame
   handling. *)

open Cio_tcpip
module H = Helpers

let test_handshake () =
  let _pair, client, server = H.connected_pair () in
  Alcotest.(check string) "client" "ESTABLISHED" (Tcp.state_name (Tcp.conn_state client));
  Alcotest.(check string) "server" "ESTABLISHED" (Tcp.state_name (Tcp.conn_state server))

let test_small_transfer () =
  let pair, client, server = H.connected_pair () in
  let data = Bytes.of_string "hello over tcp" in
  let got =
    H.transfer pair ~src_tcp:(Stack.tcp pair.H.stack_a) ~src_conn:client
      ~dst_tcp:(Stack.tcp pair.H.stack_b) ~dst_conn:server data
  in
  H.check_bytes "delivered" data got

let test_large_transfer_exceeds_window () =
  let pair, client, server = H.connected_pair () in
  (* 300 KB: far beyond both cwnd and the advertised window, forcing
     many round trips, segmentation and window updates. *)
  let data = Bytes.init 300_000 (fun i -> Char.chr ((i * 31) land 0xFF)) in
  let got =
    H.transfer pair ~src_tcp:(Stack.tcp pair.H.stack_a) ~src_conn:client
      ~dst_tcp:(Stack.tcp pair.H.stack_b) ~dst_conn:server data
  in
  H.check_bytes "byte-exact" data got

let test_bidirectional_transfer () =
  let pair, client, server = H.connected_pair () in
  let a2b = Bytes.make 20_000 'u' and b2a = Bytes.make 15_000 'd' in
  let tcp_a = Stack.tcp pair.H.stack_a and tcp_b = Stack.tcp pair.H.stack_b in
  let sent_a = ref 0 and sent_b = ref 0 in
  let recv_a = Buffer.create 1024 and recv_b = Buffer.create 1024 in
  let done_ () = Buffer.length recv_b >= 20_000 && Buffer.length recv_a >= 15_000 in
  let ok =
    H.run_until pair (fun () ->
        if !sent_a < 20_000 then begin
          sent_a := !sent_a + Tcp.send tcp_a client (Bytes.sub a2b !sent_a (min 4096 (20_000 - !sent_a)));
          Tcp.flush tcp_a client
        end;
        if !sent_b < 15_000 then begin
          sent_b := !sent_b + Tcp.send tcp_b server (Bytes.sub b2a !sent_b (min 4096 (15_000 - !sent_b)));
          Tcp.flush tcp_b server
        end;
        Buffer.add_bytes recv_b (Tcp.recv tcp_b server ~max:65536);
        Buffer.add_bytes recv_a (Tcp.recv tcp_a client ~max:65536);
        done_ ())
  in
  Alcotest.(check bool) "completed" true ok;
  H.check_bytes "a->b" a2b (Buffer.to_bytes recv_b);
  H.check_bytes "b->a" b2a (Buffer.to_bytes recv_a)

let test_graceful_close () =
  let pair, client, server = H.connected_pair () in
  let tcp_a = Stack.tcp pair.H.stack_a and tcp_b = Stack.tcp pair.H.stack_b in
  Tcp.close tcp_a client;
  let ok =
    H.run_until pair (fun () -> Tcp.eof server && Tcp.conn_state client = Tcp.Fin_wait_2)
  in
  Alcotest.(check bool) "server sees eof, client half-closed" true ok;
  Alcotest.(check string) "half-closed client" "FIN-WAIT-2" (Tcp.state_name (Tcp.conn_state client));
  Alcotest.(check string) "server close-wait" "CLOSE-WAIT" (Tcp.state_name (Tcp.conn_state server));
  Tcp.close tcp_b server;
  let ok =
    H.run_until pair (fun () ->
        Tcp.conn_state server = Tcp.Closed
        && (Tcp.conn_state client = Tcp.Time_wait || Tcp.conn_state client = Tcp.Closed))
  in
  Alcotest.(check bool) "full close" true ok

let test_connection_refused () =
  let pair = H.make_stack_pair () in
  let tcp_a = Stack.tcp pair.H.stack_a in
  let conn = Tcp.connect tcp_a ~dst:H.ip_b ~dst_port:9999 () in
  let ok = H.run_until pair (fun () -> Tcp.conn_state conn = Tcp.Closed) in
  Alcotest.(check bool) "closed by RST" true ok;
  Alcotest.(check (option string)) "refused" (Some "connection refused") (Tcp.conn_error conn)

let test_data_after_close_rejected () =
  let pair, client, _server = H.connected_pair () in
  let tcp_a = Stack.tcp pair.H.stack_a in
  Tcp.close tcp_a client;
  H.step pair;
  Alcotest.(check int) "send after close returns 0" 0 (Tcp.send tcp_a client (Bytes.of_string "x"))

let test_listener_accept_queue () =
  let pair = H.make_stack_pair () in
  let tcp_a = Stack.tcp pair.H.stack_a and tcp_b = Stack.tcp pair.H.stack_b in
  let listener = Tcp.listen tcp_b ~port:80 () in
  let c1 = Tcp.connect tcp_a ~dst:H.ip_b ~dst_port:80 () in
  let c2 = Tcp.connect tcp_a ~dst:H.ip_b ~dst_port:80 () in
  let accepted = ref [] in
  let ok =
    H.run_until pair (fun () ->
        (match Tcp.accept listener with Some c -> accepted := c :: !accepted | None -> ());
        List.length !accepted = 2
        && Tcp.conn_state c1 = Tcp.Established
        && Tcp.conn_state c2 = Tcp.Established)
  in
  Alcotest.(check bool) "both accepted" true ok

let test_duplicate_listen_rejected () =
  let pair = H.make_stack_pair () in
  let tcp_b = Stack.tcp pair.H.stack_b in
  ignore (Tcp.listen tcp_b ~port:81 ());
  Alcotest.check_raises "double bind" (Invalid_argument "Tcp.listen: port already bound") (fun () ->
      ignore (Tcp.listen tcp_b ~port:81 ()))

(* A lossy/reordering netif wrapper for robustness tests. *)
let lossy_pair ~seed ~drop ~dup ~reorder () =
  let nif_a, nif_b = Netif.loopback_pair ~mac_a:H.mac_a ~mac_b:H.mac_b ~mtu:1500 in
  let rng = Cio_util.Rng.create seed in
  let held = ref None in
  let lossy_transmit frame =
    if Cio_util.Rng.float rng < drop then ()
    else if Cio_util.Rng.float rng < reorder then begin
      match !held with
      | None -> held := Some frame
      | Some h ->
          held := None;
          nif_a.Netif.transmit frame;
          nif_a.Netif.transmit h
    end
    else begin
      nif_a.Netif.transmit frame;
      if Cio_util.Rng.float rng < dup then nif_a.Netif.transmit frame
    end
  in
  let nif_a' = { nif_a with Netif.transmit = lossy_transmit } in
  let clock = ref 0L in
  let now () = !clock in
  let stack_a =
    Stack.create ~netif:nif_a' ~ip:H.ip_a ~neighbors:[ (H.ip_b, H.mac_b) ] ~now
      ~rng:(Cio_util.Rng.split rng) ()
  in
  let stack_b =
    Stack.create ~netif:nif_b ~ip:H.ip_b ~neighbors:[ (H.ip_a, H.mac_a) ] ~now
      ~rng:(Cio_util.Rng.split rng) ()
  in
  { H.stack_a; stack_b; clock }

let transfer_under_impairment ~seed ~drop ~dup ~reorder =
  let pair = lossy_pair ~seed ~drop ~dup ~reorder () in
  let tcp_a = Stack.tcp pair.H.stack_a and tcp_b = Stack.tcp pair.H.stack_b in
  let listener = Tcp.listen tcp_b ~port:90 () in
  let client = Tcp.connect tcp_a ~dst:H.ip_b ~dst_port:90 () in
  let server = ref None in
  let ok =
    H.run_until ~max_steps:30_000 pair (fun () ->
        (match !server with None -> server := Tcp.accept listener | Some _ -> ());
        Tcp.conn_state client = Tcp.Established && !server <> None)
  in
  Alcotest.(check bool) "handshake survives impairment" true ok;
  let server = Option.get !server in
  let data = Bytes.init 60_000 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let sent = ref 0 in
  let received = Buffer.create 60_000 in
  let ok =
    H.run_until ~max_steps:30_000 pair (fun () ->
        if !sent < 60_000 then begin
          sent := !sent + Tcp.send tcp_a client (Bytes.sub data !sent (min 4096 (60_000 - !sent)));
          Tcp.flush tcp_a client
        end;
        Buffer.add_bytes received (Tcp.recv tcp_b server ~max:65536);
        Buffer.length received >= 60_000)
  in
  Alcotest.(check bool) "transfer completes" true ok;
  H.check_bytes "byte-exact despite impairment" data (Buffer.to_bytes received)

let test_retransmission_on_loss () = transfer_under_impairment ~seed:11L ~drop:0.05 ~dup:0.0 ~reorder:0.0

let test_duplication_tolerated () = transfer_under_impairment ~seed:12L ~drop:0.0 ~dup:0.1 ~reorder:0.0

let test_reordering_reassembled () = transfer_under_impairment ~seed:13L ~drop:0.0 ~dup:0.0 ~reorder:0.2

let test_combined_impairment () = transfer_under_impairment ~seed:14L ~drop:0.03 ~dup:0.05 ~reorder:0.1

let test_udp_roundtrip () =
  let pair = H.make_stack_pair () in
  let sock_b = Stack.udp_bind pair.H.stack_b ~port:5000 in
  Stack.send_udp pair.H.stack_a ~src_port:4000 ~dst:H.ip_b ~dst_port:5000 (Bytes.of_string "ping");
  H.step pair;
  match Stack.udp_recv sock_b with
  | Some (src, sport, payload) ->
      Alcotest.(check int32) "src ip" H.ip_a src;
      Alcotest.(check int) "src port" 4000 sport;
      H.check_bytes "payload" (Bytes.of_string "ping") payload
  | None -> Alcotest.fail "datagram not delivered"

let test_udp_unbound_port_dropped () =
  let pair = H.make_stack_pair () in
  Stack.send_udp pair.H.stack_a ~src_port:1 ~dst:H.ip_b ~dst_port:12345 (Bytes.of_string "x");
  H.step pair;
  Alcotest.(check string) "drop reason" "udp: no socket bound"
    (Stack.counters pair.H.stack_b).Stack.last_drop_reason

let test_stack_ignores_foreign_frames () =
  let pair = H.make_stack_pair () in
  (* A frame addressed to a different MAC must be dropped at Ethernet. *)
  let foreign =
    Cio_frame.Ethernet.build
      {
        Cio_frame.Ethernet.dst = Cio_frame.Addr.mac_of_octets 9 9 9 9 9 9;
        src = H.mac_a;
        ethertype = Cio_frame.Ethernet.Ipv4;
        payload = Bytes.make 30 'x';
      }
  in
  Stack.handle_frame pair.H.stack_b foreign;
  Alcotest.(check string) "dropped" "ethernet: not for us"
    (Stack.counters pair.H.stack_b).Stack.last_drop_reason

let test_stack_counts_garbage () =
  let pair = H.make_stack_pair () in
  Stack.handle_frame pair.H.stack_b (Bytes.make 5 '\x00');
  Alcotest.(check int) "counted" 1 (Stack.counters pair.H.stack_b).Stack.dropped

let test_stack_meter_charges () =
  let pair, client, server = H.connected_pair () in
  ignore client;
  ignore server;
  let m = Stack.meter pair.H.stack_a in
  Alcotest.(check bool) "stack work metered" (Cio_util.Cost.cycles_of m Cio_util.Cost.Stack > 0) true

let test_ten_concurrent_connections () =
  let pair = H.make_stack_pair () in
  let tcp_a = Stack.tcp pair.H.stack_a and tcp_b = Stack.tcp pair.H.stack_b in
  let listener = Tcp.listen tcp_b ~port:7000 ~backlog:16 () in
  let clients = List.init 10 (fun _ -> Tcp.connect tcp_a ~dst:H.ip_b ~dst_port:7000 ()) in
  let servers = ref [] in
  let ok =
    H.run_until pair (fun () ->
        (match Tcp.accept listener with Some c -> servers := c :: !servers | None -> ());
        List.length !servers = 10
        && List.for_all (fun c -> Tcp.conn_state c = Tcp.Established) clients)
  in
  Alcotest.(check bool) "all ten established" true ok;
  (* Each client sends a distinct message; each must land on exactly one
     server connection, and all ten must arrive. *)
  List.iteri
    (fun i c ->
      ignore (Tcp.send tcp_a c (Bytes.of_string (Printf.sprintf "conn-%d" i)));
      Tcp.flush tcp_a c)
    clients;
  let received = ref [] in
  let ok =
    H.run_until pair (fun () ->
        List.iter
          (fun s ->
            let b = Tcp.recv tcp_b s ~max:100 in
            if Bytes.length b > 0 then received := Bytes.to_string b :: !received)
          !servers;
        List.length !received = 10)
  in
  Alcotest.(check bool) "all ten delivered" true ok;
  Alcotest.(check int) "no cross-talk (all distinct)" 10
    (List.length (List.sort_uniq compare !received))

let test_half_close_data_still_flows () =
  (* After the client closes its send side, the server in CLOSE-WAIT can
     still push data back (TCP half-close semantics). *)
  let pair, client, server = H.connected_pair () in
  let tcp_a = Stack.tcp pair.H.stack_a and tcp_b = Stack.tcp pair.H.stack_b in
  Tcp.close tcp_a client;
  let ok = H.run_until pair (fun () -> Tcp.eof server) in
  Alcotest.(check bool) "server saw eof" true ok;
  ignore (Tcp.send tcp_b server (Bytes.of_string "parting words"));
  Tcp.flush tcp_b server;
  let got = Buffer.create 16 in
  let ok =
    H.run_until pair (fun () ->
        Buffer.add_bytes got (Tcp.recv tcp_a client ~max:100);
        Buffer.length got >= 13)
  in
  Alcotest.(check bool) "data flows into the half-closed side" true ok;
  H.check_bytes "content" (Bytes.of_string "parting words") (Buffer.to_bytes got)

let prop_stack_survives_random_frames =
  (* Fuzz the demux path: arbitrary bytes injected as frames must never
     crash the stack — they are host-deliverable data. *)
  QCheck.Test.make ~name:"stack survives arbitrary injected frames" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun junk ->
      let pair = H.make_stack_pair () in
      Cio_tcpip.Stack.handle_frame pair.H.stack_b (Bytes.of_string junk);
      true)

let prop_stack_survives_mutated_real_frames =
  (* Take a real TCP segment in a real frame and flip one bit anywhere:
     the stack must drop or process it, never raise. *)
  QCheck.Test.make ~name:"stack survives bit-flipped real frames" ~count:300
    QCheck.(pair small_nat (int_bound 7))
    (fun (pos, bit) ->
      let pair = H.make_stack_pair () in
      let seg =
        Cio_frame.Tcp_wire.build ~src_ip:H.ip_a ~dst_ip:H.ip_b
          {
            Cio_frame.Tcp_wire.src_port = 1234;
            dst_port = 80;
            seq = 100l;
            ack = 0l;
            flags = { Cio_frame.Tcp_wire.flags_none with Cio_frame.Tcp_wire.syn = true };
            window = 1000;
            mss = Some 1460;
            payload = Bytes.empty;
          }
      in
      let ip =
        Cio_frame.Ipv4.build
          { Cio_frame.Ipv4.src = H.ip_a; dst = H.ip_b; protocol = Cio_frame.Ipv4.Tcp; ttl = 64; payload = seg }
      in
      let frame =
        Cio_frame.Ethernet.build
          { Cio_frame.Ethernet.dst = H.mac_b; src = H.mac_a; ethertype = Cio_frame.Ethernet.Ipv4; payload = ip }
      in
      let i = pos mod Bytes.length frame in
      Bytes.set frame i (Char.chr (Char.code (Bytes.get frame i) lxor (1 lsl bit)));
      Cio_tcpip.Stack.handle_frame pair.H.stack_b frame;
      true)

(* A reincarnated client stack reusing the exact 4-tuple of a connection
   the server still believes is established (what happens when the
   quarantined I/O stack crashes and restarts, losing all TCP state).
   RFC 5961 challenge ACK + RFC 9293 SYN-SENT RST generation must bust
   the ghost: the stale server conn dies, the retransmitted SYN reaches
   the listener, and the new incarnation establishes. *)
let test_stale_incarnation_recovers () =
  let nif_a, nif_b = Cio_tcpip.Netif.loopback_pair ~mac_a:H.mac_a ~mac_b:H.mac_b ~mtu:1500 in
  let clock = ref 0L in
  let now () = !clock in
  let rng = Cio_util.Rng.create 77L in
  let mk nif ip peer_ip peer_mac =
    Stack.create ~netif:nif ~ip ~neighbors:[ (peer_ip, peer_mac) ] ~now
      ~rng:(Cio_util.Rng.split rng) ()
  in
  let stack_a = mk nif_a H.ip_a H.ip_b H.mac_b in
  let stack_b = mk nif_b H.ip_b H.ip_a H.mac_a in
  let tcp_b = Stack.tcp stack_b in
  let listener = Tcp.listen tcp_b ~port:7777 () in
  let live_a = ref stack_a in
  let run_until pred =
    let n = ref 0 in
    while (not (pred ())) && !n < 10_000 do
      incr n;
      Stack.poll !live_a;
      Stack.poll stack_b;
      clock := Int64.add !clock 1_000_000L
    done;
    pred ()
  in
  let client1 = Tcp.connect (Stack.tcp stack_a) ~src_port:5555 ~dst:H.ip_b ~dst_port:7777 () in
  let server1 = ref None in
  Alcotest.(check bool) "first incarnation establishes" true
    (run_until (fun () ->
         (match !server1 with None -> server1 := Tcp.accept listener | Some _ -> ());
         Tcp.conn_state client1 = Tcp.Established && !server1 <> None));
  (* The client stack dies with all its TCP state; its reincarnation
     picks the same ephemeral port. *)
  let stack_a2 = mk nif_a H.ip_a H.ip_b H.mac_b in
  live_a := stack_a2;
  let client2 = Tcp.connect (Stack.tcp stack_a2) ~src_port:5555 ~dst:H.ip_b ~dst_port:7777 () in
  let server2 = ref None in
  Alcotest.(check bool) "reincarnation establishes" true
    (run_until (fun () ->
         (match !server2 with None -> server2 := Tcp.accept listener | Some _ -> ());
         Tcp.conn_state client2 = Tcp.Established && !server2 <> None));
  (match !server1 with
  | Some c ->
      Alcotest.(check string) "stale server conn reset" "CLOSED"
        (Tcp.state_name (Tcp.conn_state c))
  | None -> ());
  (* Data flows on the new incarnation. *)
  ignore (Tcp.send (Stack.tcp stack_a2) client2 (Bytes.of_string "reborn"));
  Tcp.flush (Stack.tcp stack_a2) client2;
  let got = Buffer.create 16 in
  Alcotest.(check bool) "data delivered" true
    (run_until (fun () ->
         (match !server2 with
         | Some s -> Buffer.add_bytes got (Tcp.recv tcp_b s ~max:4096)
         | None -> ());
         Buffer.length got >= 6));
  Alcotest.(check string) "payload intact" "reborn" (Buffer.contents got)

(* --- TX coalescing ------------------------------------------------------ *)

(* A stack whose burst netif records each flush: frames built during a
   quantum queue up and leave together at the end of poll, and a partial
   acceptance requeues the tail for the next flush. *)
let make_coalescing_stack ~accept =
  let nif_a, _nif_b = Netif.loopback_pair ~mac_a:H.mac_a ~mac_b:H.mac_b ~mtu:1500 in
  let bursts = ref [] in
  let tx_burst frames =
    let n = min (accept ()) (Array.length frames) in
    bursts := n :: !bursts;
    n
  in
  let stack =
    Stack.create ~tx_burst ~netif:nif_a ~ip:H.ip_a ~neighbors:[ (H.ip_b, H.mac_b) ]
      ~now:(fun () -> 0L)
      ~rng:(Cio_util.Rng.create 9L) ()
  in
  (stack, bursts)

let test_stack_tx_coalesces_quantum () =
  let stack, bursts = make_coalescing_stack ~accept:(fun () -> max_int) in
  for i = 1 to 5 do
    Stack.send_udp stack ~src_port:1000 ~dst:H.ip_b ~dst_port:7 (Bytes.make (32 + i) 'u')
  done;
  Alcotest.(check (list int)) "nothing leaves before the flush" [] !bursts;
  Stack.poll stack;
  Alcotest.(check (list int)) "one burst carries the whole quantum" [ 5 ] !bursts;
  Alcotest.(check int) "counted as sent" 5 (Stack.counters stack).Stack.frames_out

let test_stack_tx_partial_burst_requeues () =
  let cap = ref 3 in
  let stack, bursts = make_coalescing_stack ~accept:(fun () -> !cap) in
  for _ = 1 to 5 do
    Stack.send_udp stack ~src_port:1000 ~dst:H.ip_b ~dst_port:7 (Bytes.make 32 'u')
  done;
  Stack.poll stack;
  Alcotest.(check (list int)) "ring-full tail held back" [ 3 ] !bursts;
  cap := max_int;
  Stack.poll stack;
  Alcotest.(check (list int)) "tail retried next quantum" [ 2; 3 ] !bursts

let suite =
  [
    Alcotest.test_case "tcp: three-way handshake" `Quick test_handshake;
    Alcotest.test_case "tcp: stale incarnation recovers" `Quick test_stale_incarnation_recovers;
    Alcotest.test_case "tcp: small transfer" `Quick test_small_transfer;
    Alcotest.test_case "tcp: large transfer (windowed)" `Quick test_large_transfer_exceeds_window;
    Alcotest.test_case "tcp: bidirectional" `Quick test_bidirectional_transfer;
    Alcotest.test_case "tcp: graceful close" `Quick test_graceful_close;
    Alcotest.test_case "tcp: connection refused" `Quick test_connection_refused;
    Alcotest.test_case "tcp: send after close" `Quick test_data_after_close_rejected;
    Alcotest.test_case "tcp: accept queue" `Quick test_listener_accept_queue;
    Alcotest.test_case "tcp: duplicate listen" `Quick test_duplicate_listen_rejected;
    Alcotest.test_case "tcp: retransmission on loss" `Slow test_retransmission_on_loss;
    Alcotest.test_case "tcp: duplication tolerated" `Slow test_duplication_tolerated;
    Alcotest.test_case "tcp: reordering reassembled" `Slow test_reordering_reassembled;
    Alcotest.test_case "tcp: combined impairment" `Slow test_combined_impairment;
    Alcotest.test_case "udp: roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp: unbound port" `Quick test_udp_unbound_port_dropped;
    Alcotest.test_case "stack: foreign frames ignored" `Quick test_stack_ignores_foreign_frames;
    Alcotest.test_case "stack: garbage counted" `Quick test_stack_counts_garbage;
    Alcotest.test_case "stack: work metered" `Quick test_stack_meter_charges;
    Alcotest.test_case "stack: TX coalesced per quantum" `Quick test_stack_tx_coalesces_quantum;
    Alcotest.test_case "stack: partial burst requeued" `Quick test_stack_tx_partial_burst_requeues;
    Alcotest.test_case "tcp: ten concurrent connections" `Quick test_ten_concurrent_connections;
    Alcotest.test_case "tcp: half-close data flow" `Quick test_half_close_data_still_flows;
    Helpers.qtest prop_stack_survives_random_frames;
    Helpers.qtest prop_stack_survives_mutated_real_frames;
  ]
