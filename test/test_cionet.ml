(* Tests for the paper's safe L2 interface: geometry, all three data
   positionings, both receive strategies, confinement properties, and the
   host-model attack knobs. *)

open Cio_mem
open Cio_cionet
open Cio_util

let config_with pos = { Config.default with Config.positioning = pos }

let inline_cfg = config_with (Config.Inline { data_capacity = 4096 })
let pool_cfg = config_with (Config.Pool { pool_slots = 128; pool_slot_size = 2048 })
let indirect_cfg = config_with (Config.Indirect { desc_count = 128; pool_slots = 128; pool_slot_size = 2048 })

let make ?(cfg = inline_cfg) () =
  let drv = Driver.create ~name:"test-cionet" cfg in
  let sent = ref [] in
  let host = Host_model.create ~driver:drv ~transmit:(fun f -> sent := f :: !sent) in
  (drv, host, sent)

let test_layout_power_of_two_enforced () =
  Alcotest.check_raises "non-pow2 unit"
    (Invalid_argument "Ring.layout: payload unit size must be a power of two") (fun () ->
      ignore (Ring.layout ~page_size:4096 ~slots:64 (Config.Inline { data_capacity = 1000 })))

let test_layout_arena_aligned () =
  let lay = Ring.layout ~page_size:4096 ~slots:64 (Config.Inline { data_capacity = 4096 }) in
  Alcotest.(check bool) "arena aligned to own size" true
    (Bitops.is_aligned lay.Ring.data_off ~align:(min lay.Ring.data_size (1 lsl 20)) ||
     Bitops.is_aligned lay.Ring.data_off ~align:lay.Ring.data_size);
  Alcotest.(check int) "arena size" (64 * 4096) lay.Ring.data_size

let roundtrip cfg name =
  let drv, host, sent = make ~cfg () in
  Alcotest.(check bool) (name ^ " tx") true (Driver.transmit drv (Bytes.of_string "tx-payload"));
  Host_model.poll host;
  Alcotest.(check int) (name ^ " forwarded") 1 (List.length !sent);
  Helpers.check_bytes (name ^ " tx content") (Bytes.of_string "tx-payload") (List.hd !sent);
  Host_model.deliver_rx host (Bytes.of_string "rx-payload");
  Host_model.poll host;
  match Driver.poll drv with
  | Some f -> Helpers.check_bytes (name ^ " rx content") (Bytes.of_string "rx-payload") f
  | None -> Alcotest.fail (name ^ ": no rx")

let test_inline_roundtrip () = roundtrip inline_cfg "inline"
let test_pool_roundtrip () = roundtrip pool_cfg "pool"
let test_indirect_roundtrip () = roundtrip indirect_cfg "indirect"

let test_sustained_traffic_wraps () =
  let drv, host, sent = make () in
  for i = 1 to 500 do
    Alcotest.(check bool) "tx accepted" true
      (Driver.transmit drv (Bytes.of_string (Printf.sprintf "frame-%04d" i)));
    Host_model.deliver_rx host (Bytes.of_string (Printf.sprintf "back-%04d" i));
    Host_model.poll host;
    match Driver.poll drv with
    | Some f -> Helpers.check_bytes "in order" (Bytes.of_string (Printf.sprintf "back-%04d" i)) f
    | None -> Alcotest.fail "rx lost"
  done;
  Alcotest.(check int) "all forwarded" 500 (List.length !sent)

let test_ring_full_backpressure () =
  let drv, _host, _ = make () in
  let accepted = ref 0 in
  for _ = 1 to 200 do
    if Driver.transmit drv (Bytes.make 100 'x') then incr accepted
  done;
  Alcotest.(check int) "bounded by ring size" Config.default.Config.ring_slots !accepted;
  Alcotest.(check bool) "misses counted" ((Ring.counters (Driver.tx_ring drv)).Ring.full_misses > 0) true

let test_oversized_payload_rejected () =
  let drv, _, _ = make () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Ring.try_produce: payload larger than slot capacity") (fun () ->
      ignore (Driver.transmit drv (Bytes.make 5000 'x')))

let test_revoke_strategy_roundtrip () =
  let cfg = { inline_cfg with Config.rx_strategy = Config.Revoke } in
  let drv, host, _ = make ~cfg () in
  Host_model.deliver_rx host (Bytes.of_string "revoked-payload");
  Host_model.poll host;
  (match Driver.poll drv with
  | Some f -> Helpers.check_bytes "content" (Bytes.of_string "revoked-payload") f
  | None -> Alcotest.fail "no rx");
  let m = Driver.guest_meter drv in
  Alcotest.(check bool) "unshare charged" (Cost.count_of m Cost.Unshare > 0) true;
  Alcotest.(check bool) "reshare charged" (Cost.count_of m Cost.Share > 0) true

let test_revoked_page_blocks_host () =
  let cfg = { inline_cfg with Config.rx_strategy = Config.Revoke } in
  let drv, host, _ = make ~cfg () in
  Host_model.deliver_rx host (Bytes.of_string "first");
  Host_model.poll host;
  match Driver.poll_zero_copy drv with
  | None -> Alcotest.fail "no zero-copy rx"
  | Some zc ->
      (* While the guest holds the slot, its pages are private: the host
         producing into that slot faults (and the model absorbs it). *)
      let off, _ = Ring.data_arena (Driver.rx_ring drv) in
      (match Region.host_read (Driver.region drv) ~off ~len:16 with
      | _ -> Alcotest.fail "revoked page must be invisible to host"
      | exception Region.Fault _ -> ());
      zc.Ring.release ();
      (* After release the host can touch it again. *)
      ignore (Region.host_read (Driver.region drv) ~off ~len:16)

let test_copy_strategy_charges_copy () =
  let drv, host, _ = make () in
  let before = Cost.cycles_of (Driver.guest_meter drv) Cost.Copy in
  Host_model.deliver_rx host (Bytes.make 2048 'z');
  Host_model.poll host;
  ignore (Driver.poll drv);
  Alcotest.(check bool) "copy paid" (Cost.cycles_of (Driver.guest_meter drv) Cost.Copy > before) true

let test_single_fetch_header () =
  (* The consumer must read each slot header exactly once per consume:
     count guest reads of the header word region. *)
  let drv, host, _ = make () in
  Host_model.deliver_rx host (Bytes.of_string "data");
  Host_model.poll host;
  let region = Driver.region drv in
  Region.clear_log region;
  ignore (Driver.poll drv);
  let hdr_off = Ring.header_offset (Driver.rx_ring drv) 0 in
  let header_reads =
    List.length
      (List.filter
         (function
           | Region.Read { actor = Region.Guest; off; len } ->
               off <= hdr_off && hdr_off < off + len
           | _ -> false)
         (Region.events region))
  in
  Alcotest.(check int) "exactly one header fetch" 1 header_reads

let test_no_notifications_by_default () =
  let drv, host, _ = make () in
  ignore (Driver.transmit drv (Bytes.of_string "x"));
  Host_model.deliver_rx host (Bytes.of_string "y");
  Host_model.poll host;
  ignore (Driver.poll drv);
  Alcotest.(check int) "zero notification cycles" 0
    (Cost.count_of (Driver.guest_meter drv) Cost.Notification)

let test_notifications_optional () =
  let cfg = { inline_cfg with Config.use_notifications = true } in
  let drv, _, _ = make ~cfg () in
  ignore (Driver.transmit drv (Bytes.of_string "x"));
  Alcotest.(check int) "doorbell charged" 1
    (Cost.count_of (Driver.guest_meter drv) Cost.Notification)

(* --- hostile host ------------------------------------------------------ *)

let test_lie_len_confined () =
  let drv, host, _ = make () in
  Host_model.inject host (Host_model.Lie_len 100000);
  Host_model.deliver_rx host (Bytes.of_string "tiny");
  Host_model.poll host;
  (match Driver.poll drv with
  | Some f -> Alcotest.(check bool) "clamped to capacity" true (Bytes.length f <= 4096)
  | None -> ());
  Alcotest.(check int) "clamp counted" 1 (Ring.counters (Driver.rx_ring drv)).Ring.len_clamped

let test_bad_index_masked_in_pool_mode () =
  let drv, host, _ = make ~cfg:pool_cfg () in
  Host_model.inject host (Host_model.Bad_index 99999);
  Host_model.deliver_rx host (Bytes.of_string "x");
  Host_model.poll host;
  (match Driver.poll drv with
  | Some _ | None -> ()  (* either way: no exception, no escape *));
  Alcotest.(check bool) "mask counted" ((Ring.counters (Driver.rx_ring drv)).Ring.index_masked > 0)
    true

let test_garbage_state_skipped () =
  let drv, host, _ = make () in
  Host_model.inject host (Host_model.Garbage_state 0xDEAD);
  Host_model.deliver_rx host (Bytes.of_string "x");
  Host_model.poll host;
  ignore (Driver.poll drv);
  ignore (Driver.poll drv);
  Alcotest.(check int) "skipped exactly once" 1
    (Ring.counters (Driver.rx_ring drv)).Ring.state_skipped

let test_race_header_defeated_by_single_fetch () =
  let drv, host, _ = make () in
  Host_model.inject host (Host_model.Race_header 100000);
  Host_model.deliver_rx host (Bytes.make 100 'r');
  Host_model.poll host;
  match Driver.poll drv with
  | Some f -> Alcotest.(check int) "honest length used" 100 (Bytes.length f)
  | None -> Alcotest.fail "frame lost"

let test_dataflow_survives_attack_burst () =
  (* After a burst of hostile slots, honest traffic still flows: no error
     path, no stuck state. *)
  let drv, host, _ = make () in
  Host_model.inject host (Host_model.Lie_len 999999);
  Host_model.inject host (Host_model.Garbage_state 7);
  Host_model.inject host (Host_model.Bad_index 31337);
  for i = 1 to 10 do
    Host_model.deliver_rx host (Bytes.of_string (Printf.sprintf "m%d" i))
  done;
  Host_model.poll host;
  let got = ref 0 in
  for _ = 1 to 20 do
    match Driver.poll drv with Some _ -> incr got | None -> ()
  done;
  Alcotest.(check bool) "most messages still delivered" (!got >= 8) true

let test_corrupt_payload_confined_to_l2 () =
  (* L2 neither can nor must detect payload corruption — it delivers the
     corrupted bytes verbatim (same length) and the L5 AEAD rejects them. *)
  let drv, host, _ = make () in
  Host_model.inject host Host_model.Corrupt_payload;
  Host_model.deliver_rx host (Bytes.of_string "payload-bytes");
  Host_model.poll host;
  match Driver.poll drv with
  | Some f ->
      Alcotest.(check int) "length preserved" 13 (Bytes.length f);
      Alcotest.(check bool) "content corrupted" false
        (Bytes.equal f (Bytes.of_string "payload-bytes"))
  | None -> Alcotest.fail "frame lost"

let test_replay_slot_duplicate_delivery () =
  (* A replayed slot is indistinguishable from the host licitly delivering
     the same bytes twice: both copies arrive, and deduplication is the
     L5 record layer's job. *)
  let drv, host, _ = make () in
  Host_model.inject host Host_model.Replay_slot;
  Host_model.deliver_rx host (Bytes.of_string "once");
  Host_model.poll host;
  (match Driver.poll drv with
  | Some f -> Helpers.check_bytes "first copy" (Bytes.of_string "once") f
  | None -> Alcotest.fail "first copy lost");
  match Driver.poll drv with
  | Some f -> Helpers.check_bytes "replayed copy" (Bytes.of_string "once") f
  | None -> Alcotest.fail "replay not delivered"

let test_stall_services_nothing () =
  let drv, host, sent = make () in
  Host_model.inject host (Host_model.Stall 3);
  ignore (Driver.transmit drv (Bytes.of_string "tx"));
  Host_model.deliver_rx host (Bytes.of_string "rx");
  for _ = 1 to 3 do Host_model.poll host done;
  Alcotest.(check int) "nothing forwarded while stalled" 0 (List.length !sent);
  Alcotest.(check int) "nothing produced while stalled" 0
    (Ring.counters (Driver.rx_ring drv)).Ring.produced;
  Host_model.poll host;
  Alcotest.(check int) "tx flows after stall" 1 (List.length !sent);
  match Driver.poll drv with
  | Some f -> Helpers.check_bytes "rx flows after stall" (Bytes.of_string "rx") f
  | None -> Alcotest.fail "rx lost after stall"

let test_silent_drop_no_ring_activity () =
  let drv, host, _ = make () in
  Host_model.inject host (Host_model.Silent_drop 2);
  Host_model.deliver_rx host (Bytes.of_string "a");
  Host_model.deliver_rx host (Bytes.of_string "b");
  Host_model.deliver_rx host (Bytes.of_string "c");
  Host_model.poll host;
  Alcotest.(check int) "drops counted" 2 (Host_model.stats host).Host_model.rx_dropped;
  Alcotest.(check int) "dropped frames leave no ring trace" 1
    (Ring.counters (Driver.rx_ring drv)).Ring.produced;
  match Driver.poll drv with
  | Some f -> Helpers.check_bytes "survivor delivered" (Bytes.of_string "c") f
  | None -> Alcotest.fail "survivor lost"

let test_ring_freeze_tx_progresses_rx_withheld () =
  let drv, host, sent = make () in
  Host_model.inject host (Host_model.Ring_freeze 2);
  ignore (Driver.transmit drv (Bytes.of_string "tx"));
  Host_model.deliver_rx host (Bytes.of_string "rx");
  Host_model.poll host;
  Alcotest.(check int) "tx drained during freeze" 1 (List.length !sent);
  Alcotest.(check int) "rx withheld during freeze" 0
    (Ring.counters (Driver.rx_ring drv)).Ring.produced;
  Host_model.poll host;
  Host_model.poll host;
  match Driver.poll drv with
  | Some f -> Helpers.check_bytes "rx flows after freeze" (Bytes.of_string "rx") f
  | None -> Alcotest.fail "rx lost after freeze"

(* --- watchdog ----------------------------------------------------------- *)

let make_watched ?(poll_budget = 8) () =
  let drv, host, sent = make () in
  let wd =
    Watchdog.create ~poll_budget
      ~on_reset:(fun () -> Host_model.reattach host ~driver:drv)
      drv
  in
  (drv, host, sent, wd)

let test_watchdog_no_false_positive () =
  let drv, host, _, wd = make_watched () in
  for i = 1 to 100 do
    ignore (Driver.transmit drv (Bytes.of_string (Printf.sprintf "f%d" i)));
    Host_model.deliver_rx host (Bytes.of_string "back");
    Host_model.poll host;
    ignore (Driver.poll drv);
    Watchdog.tick wd ~expecting_rx:true
  done;
  Alcotest.(check int) "no resets under benign traffic" 0 (Watchdog.resets wd)

let test_watchdog_detects_tx_stall () =
  let drv, host, sent, wd = make_watched () in
  Host_model.inject host (Host_model.Stall 1_000_000);
  ignore (Driver.transmit drv (Bytes.of_string "stuck"));
  let gen0 = Driver.generation drv in
  for _ = 1 to 9 do
    Host_model.poll host;
    Watchdog.tick wd
  done;
  Alcotest.(check int) "stall detected" 1 (Watchdog.stalls_detected wd);
  Alcotest.(check bool) "generation bumped" true (Driver.generation drv > gen0);
  Alcotest.(check int) "nothing leaked out meanwhile" 0 (List.length !sent)

let test_watchdog_detects_ring_freeze () =
  (* A frozen ring keeps consuming TX, so only the RX deadline — armed by
     the caller's declaration that a response is owed — can catch it. *)
  let _drv, host, _, wd = make_watched () in
  Host_model.inject host (Host_model.Ring_freeze 1_000_000);
  for _ = 1 to 9 do
    Host_model.poll host;
    Watchdog.tick wd ~expecting_rx:true
  done;
  Alcotest.(check int) "freeze detected via rx deadline" 1 (Watchdog.stalls_detected wd)

let test_watchdog_backoff_doubles_and_caps () =
  let _drv, host, _, wd = make_watched ~poll_budget:2 () in
  Host_model.inject host (Host_model.Stall 200);
  let seen = ref [] in
  for _ = 1 to 200 do
    Host_model.poll host;
    Watchdog.tick wd ~expecting_rx:true;
    seen := Watchdog.current_backoff wd :: !seen
  done;
  Alcotest.(check bool) "several resets, not one per budget" true
    (Watchdog.resets wd >= 3 && Watchdog.resets wd < 50);
  Alcotest.(check bool) "backoff grew" true (List.exists (fun b -> b >= 8) !seen);
  Alcotest.(check bool) "backoff capped at 32" true (List.for_all (fun b -> b <= 32) !seen);
  (* The stall has expired by now; progress resets the multiplier. *)
  Host_model.deliver_rx host (Bytes.of_string "alive");
  Host_model.poll host;
  Watchdog.tick wd;
  Alcotest.(check int) "backoff back to 1 after progress" 1 (Watchdog.current_backoff wd)

let prop_untrusted_len_never_escapes =
  QCheck.Test.make ~name:"untrusted length never exceeds capacity" ~count:100
    QCheck.(int_bound 10_000_000)
    (fun lie ->
      let drv, host, _ = make () in
      Host_model.inject host (Host_model.Lie_len lie);
      Host_model.deliver_rx host (Bytes.of_string "p");
      Host_model.poll host;
      match Driver.poll drv with
      | Some f -> Bytes.length f <= Ring.capacity (Driver.rx_ring drv)
      | None -> true)

let prop_untrusted_index_confined =
  QCheck.Test.make ~name:"untrusted pool index aliases a valid unit" ~count:100
    QCheck.(int_bound 10_000_000)
    (fun idx ->
      let drv, host, _ = make ~cfg:pool_cfg () in
      Host_model.inject host (Host_model.Bad_index idx);
      Host_model.deliver_rx host (Bytes.of_string "p");
      Host_model.poll host;
      match Driver.poll drv with
      | Some _ -> true  (* delivered something from *inside* the arena *)
      | None -> true
      | exception _ -> false)

(* Model-based property: arbitrary interleavings of driver traffic, host
   traffic and host sabotage never raise, never deliver oversized
   payloads, and keep the counters coherent. This is "safe by
   construction" phrased as an executable invariant. *)
let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> `Tx (1 + (n mod 2047))) small_nat);
        (4, map (fun n -> `Rx (1 + (n mod 2047))) small_nat);
        (3, return `Guest_poll);
        (3, return `Host_poll);
        (1, map (fun v -> `Sab_lie v) (int_bound 1_000_000));
        (1, map (fun v -> `Sab_index v) (int_bound 1_000_000));
        (1, map (fun v -> `Sab_state v) (int_bound 0xFFFF));
        (1, return `Sab_replay);
      ])

let op_print = function
  | `Tx n -> Printf.sprintf "Tx %d" n
  | `Rx n -> Printf.sprintf "Rx %d" n
  | `Guest_poll -> "Guest_poll"
  | `Host_poll -> "Host_poll"
  | `Sab_lie v -> Printf.sprintf "Sab_lie %d" v
  | `Sab_index v -> Printf.sprintf "Sab_index %d" v
  | `Sab_state v -> Printf.sprintf "Sab_state %d" v
  | `Sab_replay -> "Sab_replay"

let prop_ring_model_based =
  QCheck.Test.make ~name:"arbitrary op/sabotage interleavings stay confined" ~count:120
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map op_print ops))
       QCheck.Gen.(list_size (int_range 1 80) op_gen))
    (fun ops ->
      let drv, host, _ = make () in
      let cap = Ring.capacity (Driver.rx_ring drv) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Tx n -> ignore (Driver.transmit drv (Bytes.make n 't'))
          | `Rx n -> Host_model.deliver_rx host (Bytes.make n 'r')
          | `Guest_poll -> (
              match Driver.poll drv with
              | Some f -> if Bytes.length f > cap then ok := false
              | None -> ())
          | `Host_poll -> Host_model.poll host
          | `Sab_lie v -> Host_model.inject host (Host_model.Lie_len v)
          | `Sab_index v -> Host_model.inject host (Host_model.Bad_index v)
          | `Sab_state v -> Host_model.inject host (Host_model.Garbage_state v)
          | `Sab_replay -> Host_model.inject host Host_model.Replay_slot)
        ops;
      let ctx = Ring.counters (Driver.tx_ring drv) and crx = Ring.counters (Driver.rx_ring drv) in
      !ok
      && ctx.Ring.consumed <= ctx.Ring.produced
      && crx.Ring.consumed <= crx.Ring.produced)

(* Hot swap / watchdog reset under arbitrary interleavings: every ring
   generation independently keeps its invariants (masked indices keep
   delivered lengths within capacity, cursors stay coherent), generations
   only move forward, and no slot is ever reused across a swap — the old
   region is revoked wholesale, so post-swap host access faults rather
   than aliasing the new rings' slots. *)
let swap_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> `Tx (1 + (n mod 2047))) small_nat);
        (4, map (fun n -> `Rx (1 + (n mod 2047))) small_nat);
        (3, return `Guest_poll);
        (3, return `Host_poll);
        (1, return `Swap);
        (1, map (fun n -> `Stall (1 + (n mod 30))) small_nat);
        (1, map (fun v -> `Sab_lie v) (int_bound 1_000_000));
      ])

let swap_op_print = function
  | `Tx n -> Printf.sprintf "Tx %d" n
  | `Rx n -> Printf.sprintf "Rx %d" n
  | `Guest_poll -> "Guest_poll"
  | `Host_poll -> "Host_poll"
  | `Swap -> "Swap"
  | `Stall n -> Printf.sprintf "Stall %d" n
  | `Sab_lie v -> Printf.sprintf "Sab_lie %d" v

let prop_hot_swap_preserves_invariants =
  QCheck.Test.make ~name:"hot swap under random ops preserves ring invariants" ~count:100
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map swap_op_print ops))
       QCheck.Gen.(list_size (int_range 1 60) swap_op_gen))
    (fun ops ->
      let drv, host, _ = make () in
      let wd =
        Watchdog.create ~poll_budget:4
          ~on_reset:(fun () -> Host_model.reattach host ~driver:drv)
          drv
      in
      let cap = Ring.capacity (Driver.rx_ring drv) in
      let ok = ref true in
      let last_gen = ref (Driver.generation drv) in
      List.iter
        (fun op ->
          (match op with
          | `Tx n -> ignore (Driver.transmit drv (Bytes.make n 't'))
          | `Rx n -> Host_model.deliver_rx host (Bytes.make n 'r')
          | `Guest_poll -> (
              match Driver.poll drv with
              | Some f -> if Bytes.length f > cap then ok := false
              | None -> ())
          | `Host_poll -> Host_model.poll host
          | `Swap ->
              let old_region = Driver.region drv in
              let off, _ = Ring.data_arena (Driver.rx_ring drv) in
              Driver.hot_swap drv;
              Host_model.reattach host ~driver:drv;
              (* No slot reuse across generations: the pre-swap region is
                 dead to the host, not aliased into the new rings. *)
              (match Region.host_read old_region ~off ~len:16 with
              | _ -> ok := false
              | exception Region.Fault _ -> ())
          | `Stall n -> Host_model.inject host (Host_model.Stall n)
          | `Sab_lie v -> Host_model.inject host (Host_model.Lie_len v));
          Watchdog.tick wd ~expecting_rx:(Host_model.pending_rx_count host > 0);
          let g = Driver.generation drv in
          if g < !last_gen then ok := false;
          last_gen := g;
          let ctx = Ring.counters (Driver.tx_ring drv)
          and crx = Ring.counters (Driver.rx_ring drv) in
          if ctx.Ring.consumed > ctx.Ring.produced || crx.Ring.consumed > crx.Ring.produced
          then ok := false)
        ops;
      !ok)

(* --- batched datapath --------------------------------------------------- *)

let frames_of strings = Array.of_list (List.map Bytes.of_string strings)

let test_burst_roundtrip () =
  let drv, host, sent = make () in
  let tx = frames_of [ "b-one"; "b-two"; "b-three"; "b-four" ] in
  Alcotest.(check int) "all accepted" 4 (Driver.transmit_burst drv tx);
  Host_model.poll host;
  Alcotest.(check int) "all forwarded" 4 (List.length !sent);
  List.iteri
    (fun i f -> Helpers.check_bytes (Printf.sprintf "tx order %d" i) tx.(i) f)
    (List.rev !sent);
  for i = 1 to 4 do
    Host_model.deliver_rx host (Bytes.of_string (Printf.sprintf "rx-%d" i))
  done;
  Host_model.poll host;
  let got = Driver.poll_burst drv in
  Alcotest.(check int) "all drained in one burst" 4 (List.length got);
  List.iteri
    (fun i f -> Helpers.check_bytes "rx fifo" (Bytes.of_string (Printf.sprintf "rx-%d" (i + 1))) f)
    got

let test_burst_doorbell_coalesced () =
  let cfg = { inline_cfg with Config.use_notifications = true } in
  let drv, _, _ = make ~cfg () in
  let coalesced = Cio_telemetry.Metrics.counter Cio_telemetry.Metrics.default
      "driver.doorbells_coalesced" in
  let before = Cio_telemetry.Metrics.counter_value coalesced in
  let n = Driver.transmit_burst drv (Array.init 16 (fun i -> Bytes.make (64 + i) 'd')) in
  Alcotest.(check int) "all placed" 16 n;
  Alcotest.(check int) "one doorbell for the whole burst" 1
    (Cost.count_of (Driver.guest_meter drv) Cost.Notification);
  Alcotest.(check int) "15 kicks coalesced away" 15
    (Cio_telemetry.Metrics.counter_value coalesced - before)

let test_burst_stops_at_full_ring () =
  let cfg = { inline_cfg with Config.ring_slots = 8 } in
  let drv, _, _ = make ~cfg () in
  let n = Driver.transmit_burst drv (Array.init 20 (fun _ -> Bytes.make 32 'f')) in
  Alcotest.(check int) "bounded by ring size" 8 n;
  Alcotest.(check bool) "miss counted" true
    ((Ring.counters (Driver.tx_ring drv)).Ring.full_misses > 0)

let test_malformed_slot_inside_burst () =
  (* One garbage slot in the middle of a batch is skipped-and-counted;
     the rest of the batch flows through the same poll_burst call. *)
  let drv, host, _ = make () in
  Host_model.inject host (Host_model.Garbage_state 0xBAD);
  for i = 1 to 5 do
    Host_model.deliver_rx host (Bytes.of_string (Printf.sprintf "m-%d" i))
  done;
  Host_model.poll host;
  let got = Driver.poll_burst drv in
  Alcotest.(check int) "survivors delivered" 4 (List.length got);
  Alcotest.(check int) "skip counted once" 1
    (Ring.counters (Driver.rx_ring drv)).Ring.state_skipped;
  List.iteri
    (fun i f -> Helpers.check_bytes "order preserved" (Bytes.of_string (Printf.sprintf "m-%d" (i + 2))) f)
    got

let test_revoke_burst_roundtrip () =
  let cfg = { inline_cfg with Config.rx_strategy = Config.Revoke } in
  let drv, host, _ = make ~cfg () in
  for i = 1 to 6 do
    Host_model.deliver_rx host (Bytes.of_string (Printf.sprintf "rv-%d" i))
  done;
  Host_model.poll host;
  let unshares_before = Cost.count_of (Driver.guest_meter drv) Cost.Unshare in
  let got = Driver.poll_burst drv in
  Alcotest.(check int) "all drained" 6 (List.length got);
  List.iteri
    (fun i f -> Helpers.check_bytes "revoke fifo" (Bytes.of_string (Printf.sprintf "rv-%d" (i + 1))) f)
    got;
  Alcotest.(check int) "one shootdown for the whole span" 1
    (Cost.count_of (Driver.guest_meter drv) Cost.Unshare - unshares_before)

let test_revoke_poll_returns_stable_snapshot () =
  (* Regression: a frame handed out by [poll] in Revoke mode must be an
     owned snapshot — not aliased to ring pages the host rewrites, nor to
     pool pages reclaimed by later traffic. *)
  let cfg = { inline_cfg with Config.rx_strategy = Config.Revoke } in
  let drv, host, _ = make ~cfg () in
  Host_model.deliver_rx host (Bytes.of_string "stable-snapshot");
  Host_model.poll host;
  let held =
    match Driver.poll drv with Some f -> f | None -> Alcotest.fail "no rx"
  in
  (* Reuse every slot and churn the pool: the held frame must not move. *)
  for round = 1 to 3 do
    for i = 1 to Config.default.Config.ring_slots do
      Host_model.deliver_rx host (Bytes.make 15 (Char.chr (64 + ((round + i) mod 26))))
    done;
    Host_model.poll host;
    List.iter (Driver.recycle drv) (Driver.poll_burst drv ~max:Config.default.Config.ring_slots)
  done;
  Helpers.check_bytes "held frame unchanged" (Bytes.of_string "stable-snapshot") held

let test_steady_state_zero_fresh_allocations () =
  (* The allocation-free claim: once the pool is warm, an L2 echo loop
     performs zero fresh Bytes allocations per frame on the driver side. *)
  let drv, host, _ = make () in
  let payload = Bytes.make 512 'p' in
  let batch = Array.make 8 payload in
  let round () =
    ignore (Driver.transmit_burst drv batch);
    Host_model.poll host;
    for _ = 1 to 8 do Host_model.deliver_rx host payload done;
    Host_model.poll host;
    List.iter (Driver.recycle drv) (Driver.poll_burst drv)
  in
  for _ = 1 to 4 do round () done;
  let fresh0 = (Bufpool.stats (Driver.pool drv)).Bufpool.fresh in
  for _ = 1 to 16 do round () done;
  Alcotest.(check int) "zero fresh allocations after warm-up" fresh0
    (Bufpool.stats (Driver.pool drv)).Bufpool.fresh

(* --- multiqueue steering ------------------------------------------------ *)

let test_queue_for_pow2_mask () =
  let mq = Multiqueue.create ~name:"mq4" ~queues:4 inline_cfg in
  Alcotest.(check int) "masked" 1 (Multiqueue.queue_for mq ~flow_hash:5);
  Alcotest.(check int) "negative hash masked into range" ((-7) land 3)
    (Multiqueue.queue_for mq ~flow_hash:(-7));
  List.iter
    (fun h ->
      let q = Multiqueue.queue_for mq ~flow_hash:h in
      Alcotest.(check bool) "in range" true (q >= 0 && q < 4))
    [ 0; 1; 17; -1; -64; max_int; min_int ]

let test_queue_for_non_pow2 () =
  (* Three queues: the old pow2 mask would compute [hash land 2] and both
     strand queue 1 and map negative hashes out of range. *)
  let mq = Multiqueue.create ~name:"mq3" ~queues:3 inline_cfg in
  Alcotest.(check int) "7 mod 3" 1 (Multiqueue.queue_for mq ~flow_hash:7);
  Alcotest.(check int) "negative hash stays in range" 1 (Multiqueue.queue_for mq ~flow_hash:(-5));
  let hits = Array.make 3 0 in
  for h = 0 to 29 do
    let q = Multiqueue.queue_for mq ~flow_hash:h in
    Alcotest.(check bool) "in range" true (q >= 0 && q < 3);
    hits.(q) <- hits.(q) + 1
  done;
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "queue %d reachable" i) 10 n)
    hits;
  List.iter
    (fun h ->
      let q = Multiqueue.queue_for mq ~flow_hash:h in
      Alcotest.(check bool) "extreme hash in range" true (q >= 0 && q < 3))
    [ max_int; min_int; -1 ]

let test_multiqueue_transmit_matches_steering () =
  let mq = Multiqueue.create ~name:"mq-steer" ~queues:3 inline_cfg in
  List.iter
    (fun h ->
      let q = Multiqueue.queue_for mq ~flow_hash:h in
      let before = Driver.tx_frames (Multiqueue.queue mq q) in
      Alcotest.(check bool) "accepted" true (Multiqueue.transmit mq ~flow_hash:h (Bytes.make 64 's'));
      Alcotest.(check int) "landed on the steered queue" (before + 1)
        (Driver.tx_frames (Multiqueue.queue mq q)))
    [ 0; 1; 2; 7; -5; max_int ]

(* --- batched-path properties -------------------------------------------- *)

let prop_burst_of_one_equals_single_slot =
  (* A burst of one is *exactly* the single-slot operation: same ring
     counters, same metered cost, bit for bit. *)
  QCheck.Test.make ~name:"burst of one ≡ single-slot (counters and cost)" ~count:60
    QCheck.(int_range 1 2047)
    (fun len ->
      let payload = Bytes.make len 'q' in
      let run ~burst =
        let drv, host, _ = make () in
        (if burst then ignore (Driver.transmit_burst drv [| payload |])
         else ignore (Driver.transmit drv payload));
        Host_model.poll host;
        Host_model.deliver_rx host payload;
        Host_model.poll host;
        (if burst then ignore (Driver.poll_burst drv ~max:1) else ignore (Driver.poll drv));
        let c r = let k = Ring.counters r in (k.Ring.produced, k.Ring.consumed) in
        (Cost.total (Driver.guest_meter drv), c (Driver.tx_ring drv), c (Driver.rx_ring drv))
      in
      run ~burst:true = run ~burst:false)

let prop_burst_fifo_exactly_once =
  (* Whatever mix of burst sizes the producer uses, every frame comes out
     exactly once, in order. *)
  QCheck.Test.make ~name:"bursts deliver FIFO, exactly once" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 1 16))
    (fun burst_sizes ->
      let drv, host, _ = make () in
      let seq = ref 0 in
      let expected = ref [] in
      let ok = ref true in
      List.iter
        (fun k ->
          let frames =
            Array.init k (fun _ ->
                incr seq;
                Bytes.of_string (Printf.sprintf "frame-%03d" !seq))
          in
          Array.iter (fun f -> expected := Bytes.copy f :: !expected) frames;
          Array.iter (fun f -> Host_model.deliver_rx host f) frames;
          Host_model.poll host;
          let got = Driver.poll_burst drv ~max:k in
          if List.length got <> k then ok := false;
          List.iteri
            (fun i f ->
              let e = List.nth (List.rev !expected) (!seq - k + i) in
              if not (Bytes.equal e f) then ok := false)
            got)
        burst_sizes;
      !ok && (Ring.counters (Driver.rx_ring drv)).Ring.consumed = !seq)

let suite =
  [
    Alcotest.test_case "layout: power-of-two enforced" `Quick test_layout_power_of_two_enforced;
    Alcotest.test_case "layout: arena aligned" `Quick test_layout_arena_aligned;
    Alcotest.test_case "inline: roundtrip" `Quick test_inline_roundtrip;
    Alcotest.test_case "pool: roundtrip" `Quick test_pool_roundtrip;
    Alcotest.test_case "indirect: roundtrip" `Quick test_indirect_roundtrip;
    Alcotest.test_case "ring: 500 frames, wraps" `Quick test_sustained_traffic_wraps;
    Alcotest.test_case "ring: backpressure when full" `Quick test_ring_full_backpressure;
    Alcotest.test_case "ring: oversized payload rejected" `Quick test_oversized_payload_rejected;
    Alcotest.test_case "revoke: roundtrip + costs" `Quick test_revoke_strategy_roundtrip;
    Alcotest.test_case "revoke: host locked out while held" `Quick test_revoked_page_blocks_host;
    Alcotest.test_case "copy: charged" `Quick test_copy_strategy_charges_copy;
    Alcotest.test_case "header: single fetch by construction" `Quick test_single_fetch_header;
    Alcotest.test_case "polling: no notifications by default" `Quick test_no_notifications_by_default;
    Alcotest.test_case "polling: optional doorbell" `Quick test_notifications_optional;
    Alcotest.test_case "hostile: lie-len confined" `Quick test_lie_len_confined;
    Alcotest.test_case "hostile: bad index masked" `Quick test_bad_index_masked_in_pool_mode;
    Alcotest.test_case "hostile: garbage state skipped" `Quick test_garbage_state_skipped;
    Alcotest.test_case "hostile: header race defeated" `Quick test_race_header_defeated_by_single_fetch;
    Alcotest.test_case "hostile: dataflow survives burst" `Quick test_dataflow_survives_attack_burst;
    Alcotest.test_case "hostile: corrupt payload confined to L2" `Quick
      test_corrupt_payload_confined_to_l2;
    Alcotest.test_case "hostile: replay slot delivered twice" `Quick
      test_replay_slot_duplicate_delivery;
    Alcotest.test_case "hostile: stall services nothing" `Quick test_stall_services_nothing;
    Alcotest.test_case "hostile: silent drop leaves no ring trace" `Quick
      test_silent_drop_no_ring_activity;
    Alcotest.test_case "hostile: ring freeze is one-directional" `Quick
      test_ring_freeze_tx_progresses_rx_withheld;
    Alcotest.test_case "watchdog: no false positives" `Quick test_watchdog_no_false_positive;
    Alcotest.test_case "watchdog: tx stall detected" `Quick test_watchdog_detects_tx_stall;
    Alcotest.test_case "watchdog: ring freeze detected" `Quick test_watchdog_detects_ring_freeze;
    Alcotest.test_case "watchdog: exponential backoff" `Quick
      test_watchdog_backoff_doubles_and_caps;
    Alcotest.test_case "burst: roundtrip FIFO" `Quick test_burst_roundtrip;
    Alcotest.test_case "burst: doorbell coalesced" `Quick test_burst_doorbell_coalesced;
    Alcotest.test_case "burst: stops at full ring" `Quick test_burst_stops_at_full_ring;
    Alcotest.test_case "burst: malformed slot skipped mid-batch" `Quick
      test_malformed_slot_inside_burst;
    Alcotest.test_case "burst: revoke drains span under one shootdown" `Quick
      test_revoke_burst_roundtrip;
    Alcotest.test_case "revoke: poll returns stable snapshot" `Quick
      test_revoke_poll_returns_stable_snapshot;
    Alcotest.test_case "pool: steady state allocates nothing" `Quick
      test_steady_state_zero_fresh_allocations;
    Alcotest.test_case "multiqueue: pow2 steering mask" `Quick test_queue_for_pow2_mask;
    Alcotest.test_case "multiqueue: non-pow2 steering" `Quick test_queue_for_non_pow2;
    Alcotest.test_case "multiqueue: transmit follows queue_for" `Quick
      test_multiqueue_transmit_matches_steering;
    Helpers.qtest prop_burst_of_one_equals_single_slot;
    Helpers.qtest prop_burst_fifo_exactly_once;
    Helpers.qtest prop_untrusted_len_never_escapes;
    Helpers.qtest prop_untrusted_index_confined;
    Helpers.qtest prop_ring_model_based;
    Helpers.qtest prop_hot_swap_preserves_invariants;
  ]
