(* Observability scoring + TCB accounting tests. *)

open Cio_observe
open Cio_tcb

let test_tap_records () =
  let t = Observe.create "tap" in
  Observe.record t ~time:0L ~kind:"frame" ~size:100;
  Observe.record t ~time:1000L ~kind:"frame" ~size:200;
  Observe.record t ~time:2000L ~kind:"kick" ~size:0;
  Alcotest.(check int) "count" 3 (Observe.count t);
  Alcotest.(check int) "kinds" 2 (Observe.kinds t)

let test_uniform_stream_low_entropy () =
  let uniform = Observe.create "uniform" and varied = Observe.create "varied" in
  for i = 0 to 99 do
    Observe.record uniform ~time:(Int64.of_int (i * 1000)) ~kind:"blob" ~size:1600;
    Observe.record varied
      ~time:(Int64.of_int (i * i * 137))
      ~kind:(if i mod 3 = 0 then "send" else "recv")
      ~size:(17 * ((i * 31 mod 11) + 1) * (i mod 7 + 1))
  done;
  Alcotest.(check bool) "uniform < varied" true (Observe.score uniform < Observe.score varied)

let test_empty_tap_scores_zero () =
  let t = Observe.create "empty" in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Observe.entropy_bits t)

let test_clear () =
  let t = Observe.create "c" in
  Observe.record t ~time:0L ~kind:"x" ~size:1;
  Observe.clear t;
  Alcotest.(check int) "cleared" 0 (Observe.count t)

let test_more_kinds_more_score () =
  let few = Observe.create "few" and many = Observe.create "many" in
  for i = 0 to 63 do
    Observe.record few ~time:(Int64.of_int (i * 1000)) ~kind:"frame" ~size:(100 + (i mod 4));
    Observe.record many
      ~time:(Int64.of_int (i * 1000))
      ~kind:(Printf.sprintf "op%d" (i mod 8))
      ~size:(100 + (i mod 4))
  done;
  Alcotest.(check bool) "richer vocabulary scores higher" true
    (Observe.score many > Observe.score few)

let test_tcb_components_measured () =
  Tcb.set_repo_root ".";
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " nonzero") true (Tcb.loc name > 0))
    [ "tcpip-stack"; "virtio-driver"; "cionet-driver"; "tls"; "crypto"; "compartment-runtime" ]

let test_tcb_unknown_component () =
  Alcotest.check_raises "unknown" (Invalid_argument "Tcb.loc: unknown component nonesuch")
    (fun () -> ignore (Tcb.loc "nonesuch"))

let test_tcb_profiles_complete () =
  List.iter
    (fun config ->
      let p = Tcb.profile config in
      Alcotest.(check bool) (config ^ " has a core") true (p.Tcb.core <> []);
      Alcotest.(check bool) (config ^ " core loc > 0") true (Tcb.core_loc config > 0))
    [ "syscall-l5"; "passthrough-l2"; "hardened-virtio"; "tunneled"; "dual-boundary" ]

let test_tcb_dual_smallest_l2_core () =
  Tcb.set_repo_root ".";
  Alcotest.(check bool) "dual < passthrough" true
    (Tcb.core_loc "dual-boundary" < Tcb.core_loc "passthrough-l2");
  Alcotest.(check bool) "dual quarantined > 0" true (Tcb.quarantined_loc "dual-boundary" > 0);
  Alcotest.(check int) "passthrough quarantines nothing" 0 (Tcb.quarantined_loc "passthrough-l2")

let test_tcb_stack_outside_dual_core () =
  let p = Tcb.profile "dual-boundary" in
  Alcotest.(check bool) "stack quarantined" true (List.mem "tcpip-stack" p.Tcb.quarantined);
  Alcotest.(check bool) "stack not in core" false (List.mem "tcpip-stack" p.Tcb.core)

(* Every component a profile names must resolve against the *real* source
   tree: its directories exist, contain OCaml, and count to a nonzero LoC
   without the fallback. A renamed lib/ directory or a typo in a profile
   would otherwise silently fall back to canned numbers and skew Fig. 5
   (and cio_lint's trusted-file set, which derives from the same dirs). *)
let test_tcb_profiles_resolve_against_tree () =
  let root = Helpers.repo_root () in
  Tcb.set_repo_root root;
  let referenced =
    List.concat_map (fun p -> p.Tcb.core @ p.Tcb.quarantined) Tcb.profiles
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "profiles reference components" true (referenced <> []);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " is a declared component") true
        (List.mem name Tcb.component_names);
      List.iter
        (fun dir ->
          let abs = Filename.concat root dir in
          Alcotest.(check bool) (dir ^ " exists") true
            (Sys.file_exists abs && Sys.is_directory abs);
          let mls =
            Array.to_list (Sys.readdir abs)
            |> List.filter (fun f -> Filename.check_suffix f ".ml")
          in
          Alcotest.(check bool) (dir ^ " has OCaml sources") true (mls <> []))
        (Tcb.component_dirs name);
      Alcotest.(check bool) (name ^ " counts real LoC") true (Tcb.loc name > 0))
    referenced;
  Tcb.set_repo_root "."

let suite =
  [
    Alcotest.test_case "observe: tap records" `Quick test_tap_records;
    Alcotest.test_case "observe: uniform stream scores low" `Quick test_uniform_stream_low_entropy;
    Alcotest.test_case "observe: empty tap" `Quick test_empty_tap_scores_zero;
    Alcotest.test_case "observe: clear" `Quick test_clear;
    Alcotest.test_case "observe: kind richness" `Quick test_more_kinds_more_score;
    Alcotest.test_case "tcb: components measured" `Quick test_tcb_components_measured;
    Alcotest.test_case "tcb: unknown component" `Quick test_tcb_unknown_component;
    Alcotest.test_case "tcb: profiles complete" `Quick test_tcb_profiles_complete;
    Alcotest.test_case "tcb: dual smallest L2 core" `Quick test_tcb_dual_smallest_l2_core;
    Alcotest.test_case "tcb: stack quarantined in dual" `Quick test_tcb_stack_outside_dual_core;
    Alcotest.test_case "tcb: profiles resolve against the tree" `Quick
      test_tcb_profiles_resolve_against_tree;
  ]
