(* Telemetry: metrics registry, histogram quantiles, trace recorder, and
   end-to-end tracing of an experiment across both isolation boundaries. *)

module Metrics = Cio_telemetry.Metrics
module Trace = Cio_telemetry.Trace
module Kind = Cio_telemetry.Kind

let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- metrics: counters and gauges ----------------------------------- *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  check_int "fresh counter" 0 (Metrics.counter_value c);
  Metrics.inc c;
  Metrics.add c 41;
  check_int "inc + add" 42 (Metrics.counter_value c);
  let c' = Metrics.counter reg "c" in
  Metrics.inc c';
  check_int "idempotent handle shares state" 43 (Metrics.counter_value c)

let test_gauge_basics () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "g" in
  Metrics.set g 7;
  Metrics.set g (-3);
  check_int "gauge keeps last value" (-3) (Metrics.gauge_value g)

let test_name_type_clash () =
  let reg = Metrics.create () in
  let _ = Metrics.counter reg "x" in
  Alcotest.check_raises "counter name reused as histogram"
    (Invalid_argument "Metrics.histogram: x is not a histogram") (fun () ->
      ignore (Metrics.histogram reg "x"))

let test_snapshot_and_json () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "reqs" in
  Metrics.add c 5;
  let h = Metrics.histogram reg "lat" in
  List.iter (Metrics.observe h) [ 1; 2; 100; 1000 ];
  (match Metrics.snapshot reg with
  | [ ("lat", Metrics.Histogram { n; min; max; _ }); ("reqs", Metrics.Counter 5) ] ->
      check_int "histogram n" 4 n;
      check_int "histogram min" 1 min;
      check_int "histogram max" 1000 max
  | _ -> Alcotest.fail "unexpected snapshot shape");
  let buf = Buffer.create 256 in
  Metrics.to_json buf reg;
  let js = Buffer.contents buf in
  Alcotest.(check bool) "json mentions both instruments" true
    (contains js "\"reqs\":5" && contains js "\"lat\"")

(* --- histogram properties (qcheck) ---------------------------------- *)

let values_arb = QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 2_000_000))

let prop_count_conservation =
  QCheck.Test.make ~name:"histogram count equals number of observations" ~count:300
    values_arb (fun vs ->
      let h = Metrics.histogram (Metrics.create ()) "h" in
      List.iter (Metrics.observe h) vs;
      Metrics.count h = List.length vs)

let prop_quantiles_monotone =
  QCheck.Test.make ~name:"quantiles are monotone and within [min,max]" ~count:300
    QCheck.(pair values_arb (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (vs, (qa, qb)) ->
      let h = Metrics.histogram (Metrics.create ()) "h" in
      List.iter (Metrics.observe h) vs;
      let qlo = min qa qb and qhi = max qa qb in
      let vlo = Metrics.quantile h qlo and vhi = Metrics.quantile h qhi in
      vlo <= vhi && Metrics.hmin h <= vlo && vhi <= Metrics.hmax h)

let prop_quantile_extremes =
  QCheck.Test.make ~name:"q=0 and q=1 hit observed extremes" ~count:300 values_arb
    (fun vs ->
      let h = Metrics.histogram (Metrics.create ()) "h" in
      List.iter (Metrics.observe h) vs;
      Metrics.quantile h 0.0 = Metrics.hmin h && Metrics.quantile h 1.0 = Metrics.hmax h)

(* --- recovery snapshots are immutable ------------------------------- *)

let test_recovery_snapshot_immutable () =
  let r = Cio_observe.Recovery.create () in
  Cio_observe.Recovery.fault_injected r;
  let before = Cio_observe.Recovery.snapshot r in
  Cio_observe.Recovery.fault_injected r;
  Cio_observe.Recovery.reset r;
  Cio_observe.Recovery.reconnect r;
  check_int "old snapshot unaffected by later mutation" 1
    before.Cio_observe.Recovery.faults_injected;
  check_int "old snapshot resets" 0 before.Cio_observe.Recovery.resets;
  let after = Cio_observe.Recovery.snapshot r in
  let d = Cio_observe.Recovery.diff ~before ~after in
  check_int "diff faults" 1 d.Cio_observe.Recovery.faults_injected;
  check_int "diff resets" 1 d.Cio_observe.Recovery.resets;
  check_int "diff reconnects" 1 d.Cio_observe.Recovery.reconnects

(* --- trace recorder -------------------------------------------------- *)

let with_tracing ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset_clock ())
    f

let test_trace_disabled_records_nothing () =
  Trace.disable ();
  Trace.span_begin ~cat:"x" "a";
  Trace.instant ~cat:"x" "b";
  Alcotest.(check bool) "off" false (Trace.on ());
  check_int "nothing recorded while disabled" 0 (List.length (Trace.events ()))

let test_trace_span_pairing () =
  with_tracing (fun () ->
      Trace.with_span ~cat:"t" "outer" (fun () ->
          Trace.instant ~arg:7 ~cat:"t" "tick");
      (try Trace.with_span ~cat:"t" "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      let evs = Trace.events () in
      check_int "5 events" 5 (List.length evs);
      let phases = List.map (fun e -> e.Trace.phase) evs in
      Alcotest.(check bool) "B/E matched even on raise" true
        (phases = [ Trace.B; Trace.I; Trace.E; Trace.B; Trace.E ]);
      let tick = List.nth evs 1 in
      check_int "instant arg carried" 7 tick.Trace.arg)

let test_trace_ring_wrap () =
  with_tracing ~capacity:16 (fun () ->
      for i = 0 to 99 do
        Trace.instant ~arg:i ~cat:"w" "e"
      done;
      check_int "recorded counts everything" 100 (Trace.recorded ());
      check_int "ring keeps the newest capacity events" 16
        (List.length (Trace.events ()));
      check_int "dropped = recorded - capacity" 84 (Trace.dropped ());
      match List.rev (Trace.events ()) with
      | last :: _ -> check_int "newest survives the wrap" 99 last.Trace.arg
      | [] -> Alcotest.fail "empty ring")

let test_trace_chrome_json_shape () =
  with_tracing (fun () ->
      Trace.span_begin ~cat:"c" "s\"pan";
      Trace.span_end ~cat:"c" "s\"pan";
      let buf = Buffer.create 256 in
      Trace.to_chrome_json buf;
      let js = Buffer.contents buf in
      Alcotest.(check bool) "array brackets" true
        (String.length js > 2 && js.[0] = '[');
      Alcotest.(check bool) "escapes quotes in names" true
        (contains js "s\\\"pan");
      Alcotest.(check bool) "has begin and end phases" true
        (contains js "\"ph\":\"B\"" && contains js "\"ph\":\"E\""))

(* --- a traced e2 run crosses both boundaries ------------------------- *)

let null_ppf =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_traced_e2_spans_both_boundaries () =
  with_tracing ~capacity:262_144 (fun () ->
      Alcotest.(check bool) "e2 runs" true
        (Cio_experiments.Experiments.run_one null_ppf "e2");
      let evs = Trace.events () in
      check_int "nothing dropped" 0 (Trace.dropped ());
      let count cat ph =
        List.length
          (List.filter (fun e -> e.Trace.cat = cat && e.Trace.phase = ph) evs)
      in
      List.iter
        (fun cat ->
          let b = count cat Trace.B and e = count cat Trace.E in
          Alcotest.(check bool)
            (Printf.sprintf "cat %s has spans" cat)
            true (b > 0);
          check_int (Printf.sprintf "cat %s begin/end matched" cat) b e)
        [ Kind.l2; Kind.l5; Kind.experiment ])

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
    Alcotest.test_case "name/type clash rejected" `Quick test_name_type_clash;
    Alcotest.test_case "snapshot and json" `Quick test_snapshot_and_json;
    Helpers.qtest prop_count_conservation;
    Helpers.qtest prop_quantiles_monotone;
    Helpers.qtest prop_quantile_extremes;
    Alcotest.test_case "recovery snapshot immutable" `Quick
      test_recovery_snapshot_immutable;
    Alcotest.test_case "trace disabled records nothing" `Quick
      test_trace_disabled_records_nothing;
    Alcotest.test_case "trace span pairing" `Quick test_trace_span_pairing;
    Alcotest.test_case "trace ring wrap" `Quick test_trace_ring_wrap;
    Alcotest.test_case "chrome json shape" `Quick test_trace_chrome_json_shape;
    Alcotest.test_case "traced e2 spans both boundaries" `Slow
      test_traced_e2_spans_both_boundaries;
  ]
