(* cio-lint: run the interface-safety analyzer over the repository.

     cio-lint                      text report over ./lib
     cio-lint --json               machine-readable report (cio-lint-v1)
     cio-lint --baseline FILE      two-sided gate against a committed baseline
     cio-lint --update-baseline F  rewrite the baseline from the current scan

   The gate is two-sided: it fails on any *new* finding in a trusted
   component (hardening must not regress) and it fails if the living
   corpus (driver_unhardened.ml) stops producing its recorded findings
   (the rules must not regress). *)

open Cmdliner
module Lint = Cio_lintlib.Lint
module Json = Cio_lintlib.Json_lite

let root_arg =
  let doc = "Repository root (directory containing lib/)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let json_arg =
  let doc = "Emit the report as JSON (schema cio-lint-v1) on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let baseline_arg =
  let doc = "Gate against a committed baseline file; exit 1 on gate failure." in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_arg =
  let doc = "Write the current scan to $(docv) as the new baseline and exit." in
  Arg.(value & opt (some string) None & info [ "update-baseline" ] ~docv:"FILE" ~doc)

let rules_arg =
  let doc = "Only report these comma-separated rules (DF,UV,UW,UC,SI)." in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run root json baseline update rules =
  Cio_tcb.Tcb.set_repo_root root;
  let findings = Lint.scan ~root in
  let findings =
    match rules with
    | None -> findings
    | Some spec ->
        let wanted = List.filter_map Lint.rule_of_name (String.split_on_char ',' spec) in
        if wanted = [] then begin
          Fmt.epr "no valid rules in --rules %s@." spec;
          exit 2
        end;
        List.filter (fun f -> List.mem f.Lint.f_rule wanted) findings
  in
  match update with
  | Some path ->
      write_file path (Json.to_string (Lint.to_json findings) ^ "\n");
      Fmt.pr "wrote %d finding(s) to %s@." (List.length findings) path;
      0
  | None -> (
      if json then print_string (Json.to_string (Lint.to_json findings) ^ "\n")
      else Lint.pp_findings Fmt.stdout findings;
      match baseline with
      | None -> 0
      | Some path -> (
          match Lint.load_baseline path with
          | exception Failure msg ->
              Fmt.epr "baseline error: %s@." msg;
              2
          | exception Sys_error msg ->
              Fmt.epr "baseline error: %s@." msg;
              2
          | baseline ->
              let g = Lint.gate ~baseline findings in
              Lint.pp_gate Fmt.stderr g;
              if g.Lint.g_ok then 0 else 1))

let main =
  let doc = "interface-safety lint over the cio simulator sources (Fig. 3/4 taxonomy as rules)" in
  Cmd.v
    (Cmd.info "cio-lint" ~version:"1.0.0" ~doc)
    Term.(const run $ root_arg $ json_arg $ baseline_arg $ update_arg $ rules_arg)

let () = exit (Cmd.eval' main)
