(* cio-sim: command-line driver for the reproduction experiments.

     cio-sim list            enumerate experiments
     cio-sim run fig5 e2     run selected experiments
     cio-sim all             run everything (same content as bench/main.exe)
     cio-sim trace e2        run one experiment with tracing on and write
                             a Chrome trace_event JSON (about://tracing)
*)

open Cmdliner

let setup_tcb repo_root = Cio_tcb.Tcb.set_repo_root repo_root

let repo_root_arg =
  let doc = "Repository root (for live TCB line counting)." in
  Arg.(value & opt string "." & info [ "repo-root" ] ~docv:"DIR" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun (id, title, _) -> Fmt.pr "%-6s %s@." id title)
      Cio_experiments.Experiments.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

let run_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (see list).")
  in
  let run repo_root ids =
    setup_tcb repo_root;
    let ok =
      List.for_all
        (fun id ->
          if Cio_experiments.Experiments.run_one Fmt.stdout id then true
          else begin
            Fmt.epr "unknown experiment id: %s@." id;
            false
          end)
        ids
    in
    if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run selected experiments")
    Term.(const run $ repo_root_arg $ ids)

let all_cmd =
  let run repo_root =
    setup_tcb repo_root;
    Cio_experiments.Experiments.run_all Fmt.stdout ();
    0
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ repo_root_arg)

let trace_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (see list).")
  in
  let out_arg =
    let doc = "Output file for the Chrome trace_event JSON (default trace-<ID>.json)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let timeline_arg =
    let doc = "Also print a compact text timeline to stderr." in
    Arg.(value & flag & info [ "timeline" ] ~doc)
  in
  let capacity_arg =
    let doc = "Trace ring capacity in events (oldest events drop beyond it)." in
    Arg.(value & opt int 262_144 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let run repo_root id out timeline capacity =
    setup_tcb repo_root;
    let module Trace = Cio_telemetry.Trace in
    Trace.enable ~capacity ();
    if not (Cio_experiments.Experiments.run_one Fmt.stdout id) then begin
      Fmt.epr "unknown experiment id: %s@." id;
      1
    end
    else begin
      Trace.disable ();
      let file = match out with Some f -> f | None -> Printf.sprintf "trace-%s.json" id in
      let buf = Buffer.create 65536 in
      Trace.to_chrome_json buf;
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      if timeline then Fmt.epr "%a@." Trace.pp_timeline ();
      Fmt.pr "trace: %d events (%d dropped by ring wrap) -> %s@." (Trace.recorded ())
        (Trace.dropped ()) file;
      0
    end
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run one experiment with tracing enabled and export a Chrome trace")
    Term.(const run $ repo_root_arg $ id_arg $ out_arg $ timeline_arg $ capacity_arg)

(* Composed-fault overload campaign: the same hostile-host plan run with
   the overload plane off, then on — printed for humans and optionally
   written as a cio-campaign-v1 JSON artifact for CI. *)
let campaign_cmd =
  let seed_arg =
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Plan seed (deterministic).")
  in
  let json_arg =
    let doc = "Write the off/on reports as a cio-campaign-v1 JSON file." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run seed json =
    let open Cio_fault in
    (* A host-health plan: a stall and a one-directional ring freeze,
       the two faults the breaker + retry budget are about. *)
    let plan =
      {
        Plan.seed;
        injections =
          [
            { Plan.at_step = 2_000; kind = Plan.Host_stall 600 };
            { Plan.at_step = 9_000; kind = Plan.Host_ring_freeze 600 };
          ];
      }
    in
    let config =
      { Campaign.default_config with Campaign.watchdog_budget = 120; max_steps = 150_000 }
    in
    let off = Campaign.run ~config plan in
    (* Trip the breaker after two consecutive watchdog failures so the
       open -> half-open -> closed walk is visible in the report. *)
    let plane_cfg =
      { Cio_overload.Plane.default_config with Cio_overload.Plane.breaker_threshold = 2 }
    in
    let on = Campaign.run ~config:{ config with Campaign.overload = Some plane_cfg } plan in
    Fmt.pr "overload campaign, plane OFF:@.%a@." Campaign.pp off;
    Fmt.pr "overload campaign, plane ON:@.%a@." Campaign.pp on;
    (match json with
    | Some file ->
        let buf = Buffer.create 4096 in
        Printf.bprintf buf "{\"schema\":\"cio-campaign-v1\",\"seed\":%Ld,\"off\":" seed;
        Campaign.to_json buf off;
        Buffer.add_string buf ",\"on\":";
        Campaign.to_json buf on;
        Buffer.add_string buf "}\n";
        let oc = open_out file in
        Buffer.output_buffer oc buf;
        close_out oc;
        Fmt.pr "report: %s@." file
    | None -> ());
    if off.Campaign.survived && on.Campaign.survived then 0 else 1
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the composed-fault overload campaign (plane off, then on)")
    Term.(const run $ seed_arg $ json_arg)

let main =
  let doc = "confidential I/O simulator: reproduction of 'Towards (Really) Safe and Fast Confidential I/O' (HotOS '23)" in
  Cmd.group (Cmd.info "cio-sim" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; trace_cmd; campaign_cmd ]

let () = exit (Cmd.eval' main)
