(* cio-sim: command-line driver for the reproduction experiments.

     cio-sim list            enumerate experiments
     cio-sim run fig5 e2     run selected experiments
     cio-sim all             run everything (same content as bench/main.exe)
*)

open Cmdliner

let setup_tcb repo_root = Cio_tcb.Tcb.set_repo_root repo_root

let repo_root_arg =
  let doc = "Repository root (for live TCB line counting)." in
  Arg.(value & opt string "." & info [ "repo-root" ] ~docv:"DIR" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun (id, title, _) -> Fmt.pr "%-6s %s@." id title)
      Cio_experiments.Experiments.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

let run_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (see list).")
  in
  let run repo_root ids =
    setup_tcb repo_root;
    let ok =
      List.for_all
        (fun id ->
          if Cio_experiments.Experiments.run_one Fmt.stdout id then true
          else begin
            Fmt.epr "unknown experiment id: %s@." id;
            false
          end)
        ids
    in
    if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run selected experiments")
    Term.(const run $ repo_root_arg $ ids)

let all_cmd =
  let run repo_root =
    setup_tcb repo_root;
    Cio_experiments.Experiments.run_all Fmt.stdout ();
    0
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ repo_root_arg)

let main =
  let doc = "confidential I/O simulator: reproduction of 'Towards (Really) Safe and Fast Confidential I/O' (HotOS '23)" in
  Cmd.group (Cmd.info "cio-sim" ~version:"1.0.0" ~doc) [ list_cmd; run_cmd; all_cmd ]

let () = exit (Cmd.eval' main)
