(** CRC-32 (IEEE 802.3), used as the simulated Ethernet FCS. *)

val update : int32 -> bytes -> pos:int -> len:int -> int32
(** [update crc b ~pos ~len] extends [crc] over the given range. Start
    from [0l]. *)

val digest_bytes : bytes -> int32
val digest_string : string -> int32
