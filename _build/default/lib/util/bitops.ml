(* Bit-level helpers shared by the ring-buffer and memory layers.

   The paper's safe-interface principles require power-of-two sizing so
   that index and pointer confinement can be a single AND ([mask]) instead
   of a branchy bounds check; these helpers centralise that arithmetic. *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n <= 1 then 1
  else begin
    let rec go p = if p >= n then p else go (p * 2) in
    go 2
  end

let mask_of_size n =
  if not (is_power_of_two n) then
    invalid_arg "Bitops.mask_of_size: size must be a power of two";
  n - 1

let align_up n ~align =
  if not (is_power_of_two align) then
    invalid_arg "Bitops.align_up: alignment must be a power of two";
  (n + align - 1) land lnot (align - 1)

let align_down n ~align =
  if not (is_power_of_two align) then
    invalid_arg "Bitops.align_down: alignment must be a power of two";
  n land lnot (align - 1)

let is_aligned n ~align =
  if not (is_power_of_two align) then
    invalid_arg "Bitops.is_aligned: alignment must be a power of two";
  n land (align - 1) = 0

let log2 n =
  if not (is_power_of_two n) then invalid_arg "Bitops.log2: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n
