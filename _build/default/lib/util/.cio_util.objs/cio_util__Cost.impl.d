lib/util/cost.ml: Array Fmt List
