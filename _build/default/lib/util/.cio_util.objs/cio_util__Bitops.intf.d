lib/util/bitops.mli:
