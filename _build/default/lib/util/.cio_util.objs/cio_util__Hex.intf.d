lib/util/hex.mli:
