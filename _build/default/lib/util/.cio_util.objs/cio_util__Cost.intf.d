lib/util/cost.mli: Format
