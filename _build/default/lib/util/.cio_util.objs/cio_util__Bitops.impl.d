lib/util/bitops.ml:
