lib/util/rng.mli:
