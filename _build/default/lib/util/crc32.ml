(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

   Used as the Ethernet frame check sequence in the simulated link layer
   and as a cheap integrity probe in tests. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let crc = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let digest_bytes b = update 0l b ~pos:0 ~len:(Bytes.length b)
let digest_string s = digest_bytes (Bytes.of_string s)
