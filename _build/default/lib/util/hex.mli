(** Hex encoding, decoding (whitespace-tolerant, for RFC test vectors) and
    hexdump formatting. *)

val of_bytes : bytes -> string
val of_string : string -> string

val to_bytes : string -> bytes
(** Raises [Invalid_argument] on non-hex input or odd digit count.
    Whitespace is ignored. *)

val to_string : string -> string

val dump : ?width:int -> bytes -> string
(** Classic offset/hex/ASCII dump. *)
