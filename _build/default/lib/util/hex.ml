(* Hex encoding/decoding and hexdump, used by tests (RFC vectors) and by
   trace output. *)

let of_bytes b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let of_string s = of_bytes (Bytes.of_string s)

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_bytes: invalid hex digit"

let to_bytes s =
  (* Whitespace is permitted so RFC vectors can be pasted verbatim. *)
  let compact = Buffer.create (String.length s) in
  String.iter
    (fun c -> match c with ' ' | '\n' | '\t' | '\r' -> () | c -> Buffer.add_char compact c)
    s;
  let s = Buffer.contents compact in
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.to_bytes: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = nibble s.[2 * i] and lo = nibble s.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  out

let to_string s = Bytes.to_string (to_bytes s)

let dump ?(width = 16) b =
  let n = Bytes.length b in
  let buf = Buffer.create (n * 4) in
  let rec line off =
    if off < n then begin
      Buffer.add_string buf (Printf.sprintf "%08x  " off);
      let stop = min (off + width) n in
      for i = off to off + width - 1 do
        if i < stop then
          Buffer.add_string buf (Printf.sprintf "%02x " (Char.code (Bytes.get b i)))
        else Buffer.add_string buf "   "
      done;
      Buffer.add_string buf " |";
      for i = off to stop - 1 do
        let c = Bytes.get b i in
        Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
      done;
      Buffer.add_string buf "|\n";
      line (off + width)
    end
  in
  line 0;
  Buffer.contents buf
