(** Power-of-two arithmetic for masked rings and aligned regions. *)

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** Smallest power of two [>= n] (and [>= 1]). *)

val mask_of_size : int -> int
(** [mask_of_size n] is [n - 1] for power-of-two [n]; raises
    [Invalid_argument] otherwise. Applying the mask confines any index to
    [0, n). *)

val align_up : int -> align:int -> int
val align_down : int -> align:int -> int
val is_aligned : int -> align:int -> bool

val log2 : int -> int
(** Exact log2 of a power of two. *)

val popcount : int -> int
