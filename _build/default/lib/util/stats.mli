(** Batch and streaming statistics for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val percentile : float array -> float -> float
(** [percentile samples p] with linear interpolation; [p] in [0, 100]. *)

val mean : float array -> float
val stddev : float array -> float
(** Sample standard deviation (Bessel-corrected). *)

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** {1 Streaming accumulator (Welford)} *)

type online

val online : unit -> online
val add : online -> float -> unit
val online_count : online -> int
val online_mean : online -> float
val online_stddev : online -> float
val online_min : online -> float
val online_max : online -> float
