(** Deterministic SplitMix64 pseudo-random generator.

    All randomness in the simulator flows through an explicit [t] so every
    experiment is reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform draw from [0, 1). *)

val range : t -> lo:int -> hi:int -> int
(** Inclusive range draw. *)

val byte : t -> int

val bytes : t -> int -> bytes
(** [bytes t n] is an [n]-byte uniformly random payload. *)

val pick : t -> 'a array -> 'a
(** Uniform choice. Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (for inter-arrival
    times). *)
