(* Streaming and batch statistics used by the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile samples p =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  percentile_of_sorted sorted p

let mean samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let stddev samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sqrt (ss /. float_of_int (n - 1))
  end

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  {
    count = n;
    mean = mean samples;
    stddev = stddev samples;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile_of_sorted sorted 50.0;
    p90 = percentile_of_sorted sorted 90.0;
    p99 = percentile_of_sorted sorted 99.0;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

(* Welford's online algorithm: lets long simulations accumulate statistics
   without retaining every sample. *)
type online = {
  mutable n : int;
  mutable m : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let online () = { n = 0; m = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let add o x =
  o.n <- o.n + 1;
  let delta = x -. o.m in
  o.m <- o.m +. (delta /. float_of_int o.n);
  o.m2 <- o.m2 +. (delta *. (x -. o.m));
  if x < o.lo then o.lo <- x;
  if x > o.hi then o.hi <- x

let online_count o = o.n
let online_mean o = if o.n = 0 then 0.0 else o.m

let online_stddev o =
  if o.n < 2 then 0.0 else sqrt (o.m2 /. float_of_int (o.n - 1))

let online_min o = o.lo
let online_max o = o.hi
