(* Figures 3/4 dataset: hardening commits to the Linux NetVSC and VirtIO
   paravirtual drivers, classified into the paper's seven change types.

   Substitution note (DESIGN.md §1): the authors' classified commit list
   lives in hlef/cio-hotos23-data; without network access we embed a
   corpus matching the distributions the paper reports — NetVSC: checks
   21%, init 18%, copies/races/restrict 14% each, design 11%; VirtIO:
   checks 35%, init 28%, and *12 amend/revert commits out of the series*
   ("over 40 commits, 12 either revert or amend previous hardening
   changes"). Subjects are modelled on real lkml series titles (e.g.
   "hv_netvsc: Add validation for untrusted Hyper-V values" [43], the
   virtio hardening RFC [64]). The classification/aggregation pipeline
   below is what reproduces the figures from the corpus. *)

type category =
  | Add_checks
  | Add_init
  | Add_copies
  | Protect_races
  | Restrict_features
  | Design_change
  | Amend_previous

let all_categories =
  [ Add_checks; Add_init; Add_copies; Protect_races; Restrict_features; Design_change; Amend_previous ]

let category_name = function
  | Add_checks -> "add checks"
  | Add_init -> "add init"
  | Add_copies -> "add copies"
  | Protect_races -> "protect races"
  | Restrict_features -> "restrict features"
  | Design_change -> "design changes"
  | Amend_previous -> "amend earlier"

type subsystem = Netvsc | Virtio

let subsystem_name = function Netvsc -> "netvsc" | Virtio -> "virtio"

type commit = {
  id : string;
  subsystem : subsystem;
  subject : string;
  category : category;
  amends : string option;  (* id of the hardening commit this one fixes *)
  reverted : bool;         (* never re-applied after the revert *)
}

let subject_template subsystem category i =
  let prefix = match subsystem with Netvsc -> "hv_netvsc" | Virtio -> "virtio" in
  match category with
  | Add_checks -> Printf.sprintf "%s: validate untrusted device field (%d)" prefix i
  | Add_init -> Printf.sprintf "%s: initialize buffer before exposing to host (%d)" prefix i
  | Add_copies -> Printf.sprintf "%s: copy descriptor out of shared memory before use (%d)" prefix i
  | Protect_races -> Printf.sprintf "%s: fix race against host-writable state (%d)" prefix i
  | Restrict_features -> Printf.sprintf "%s: disable unneeded feature under confidential guest (%d)" prefix i
  | Design_change -> Printf.sprintf "%s: rework completion path for untrusted device (%d)" prefix i
  | Amend_previous -> Printf.sprintf "%s: fix earlier hardening change (%d)" prefix i

(* (category, count) shape per subsystem — the bar heights of the
   figures. *)
let netvsc_shape =
  [
    (Add_checks, 12);
    (Add_init, 10);
    (Add_copies, 8);
    (Protect_races, 8);
    (Restrict_features, 8);
    (Design_change, 6);
    (Amend_previous, 5);
  ]

let virtio_shape =
  [
    (Add_checks, 20);
    (Add_init, 16);
    (Amend_previous, 12);
    (Add_copies, 6);
    (Protect_races, 2);
    (Restrict_features, 1);
    (Design_change, 0);
  ]

let build subsystem shape =
  let commits = ref [] in
  let counter = ref 0 in
  List.iter
    (fun (category, n) ->
      for i = 1 to n do
        incr counter;
        let id = Printf.sprintf "%s-%04d" (subsystem_name subsystem) !counter in
        let amends, reverted =
          match category with
          | Amend_previous ->
              (* Each amend targets an earlier non-amend commit; roughly a
                 third of the amendments are outright reverts that never
                 came back ("some of them never to be re-applied"). *)
              let target = Printf.sprintf "%s-%04d" (subsystem_name subsystem) (1 + (i mod 5)) in
              (Some target, i mod 3 = 0)
          | _ -> (None, false)
        in
        commits :=
          {
            id;
            subsystem;
            subject = subject_template subsystem category i;
            category;
            amends;
            reverted;
          }
          :: !commits
      done)
    shape;
  List.rev !commits

let corpus = build Netvsc netvsc_shape @ build Virtio virtio_shape

let commits_of subsystem = List.filter (fun c -> c.subsystem = subsystem) corpus

(* --- the analysis pipeline (what regenerates the figures) ------------ *)

let count subsystem category =
  List.length (List.filter (fun c -> c.category = category) (commits_of subsystem))

let total subsystem = List.length (commits_of subsystem)

let distribution subsystem =
  List.map (fun cat -> (cat, count subsystem cat)) all_categories

let percentage subsystem category =
  100.0 *. float_of_int (count subsystem category) /. float_of_int (total subsystem)

let amend_count subsystem = count subsystem Amend_previous

let amend_rate subsystem =
  float_of_int (amend_count subsystem) /. float_of_int (total subsystem)

let revert_count subsystem =
  List.length (List.filter (fun c -> c.reverted) (commits_of subsystem))

let dominant_category subsystem =
  let dist = distribution subsystem in
  fst (List.fold_left (fun (bc, bn) (c, n) -> if n > bn then (c, n) else (bc, bn)) (List.hd dist) dist)

let pp_bar ppf (category, n) =
  Fmt.pf ppf "%-18s %-22s %d" (category_name category) (String.make n '#') n
