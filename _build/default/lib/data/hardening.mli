(** Figures 3/4 dataset + analysis: classified hardening commits to the
    NetVSC and VirtIO Linux drivers. *)

type category =
  | Add_checks
  | Add_init
  | Add_copies
  | Protect_races
  | Restrict_features
  | Design_change
  | Amend_previous

val all_categories : category list
val category_name : category -> string

type subsystem = Netvsc | Virtio

val subsystem_name : subsystem -> string

type commit = {
  id : string;
  subsystem : subsystem;
  subject : string;
  category : category;
  amends : string option;
  reverted : bool;
}

val corpus : commit list
val commits_of : subsystem -> commit list

val count : subsystem -> category -> int
val total : subsystem -> int
val distribution : subsystem -> (category * int) list
val percentage : subsystem -> category -> float

val amend_count : subsystem -> int
val amend_rate : subsystem -> float
(** The error-proneness headline: share of hardening commits that fix
    earlier hardening commits (12 of the VirtIO series). *)

val revert_count : subsystem -> int
val dominant_category : subsystem -> category

val pp_bar : Format.formatter -> category * int -> unit
