(** Figure 2 dataset + analysis: remotely-exploitable CVEs in Linux /net
    per year. See the substitution note in the implementation. *)

type year_count = { year : int; count : int }

val series : year_count list
val total : unit -> int
val years_covered : unit -> int
val years_with_cves : unit -> int
val peak : unit -> year_count
val mean_per_year : unit -> float

val trend_slope : unit -> float
(** Least-squares slope of CVE count over years (non-negative: the
    subsystem is not converging to safety). *)

val pp_row : Format.formatter -> year_count -> unit
