(* Figure 2 dataset: remotely-exploitable CVEs in the Linux /net
   subsystem per year, 2002-2022.

   Substitution note (DESIGN.md §1): the paper's raw data lives in the
   authors' repository (hlef/cio-hotos23-data), which queries the NVD —
   neither is reachable from this sealed environment. The series below is
   a synthesized stand-in with the figure's load-bearing properties: CVEs
   are present in (almost) every year across two decades, with a
   mid-2010s surge and no downward trend to zero — the subsystem never
   "finishes" hardening. The analysis code operates on the dataset
   identically either way. *)

type year_count = { year : int; count : int }

let series =
  [
    { year = 2002; count = 2 };
    { year = 2003; count = 3 };
    { year = 2004; count = 5 };
    { year = 2005; count = 8 };
    { year = 2006; count = 6 };
    { year = 2007; count = 7 };
    { year = 2008; count = 9 };
    { year = 2009; count = 11 };
    { year = 2010; count = 13 };
    { year = 2011; count = 8 };
    { year = 2012; count = 10 };
    { year = 2013; count = 14 };
    { year = 2014; count = 12 };
    { year = 2015; count = 11 };
    { year = 2016; count = 17 };
    { year = 2017; count = 21 };
    { year = 2018; count = 14 };
    { year = 2019; count = 13 };
    { year = 2020; count = 10 };
    { year = 2021; count = 15 };
    { year = 2022; count = 12 };
  ]

let total () = List.fold_left (fun acc y -> acc + y.count) 0 series

let years_covered () = List.length series

let years_with_cves () = List.length (List.filter (fun y -> y.count > 0) series)

let peak () =
  List.fold_left (fun best y -> if y.count > best.count then y else best) (List.hd series) series

let mean_per_year () = float_of_int (total ()) /. float_of_int (years_covered ())

(* Least-squares slope of count over year: the "is it getting better?"
   question. A non-negative slope is the figure's point. *)
let trend_slope () =
  let n = float_of_int (years_covered ()) in
  let sx = List.fold_left (fun a y -> a +. float_of_int y.year) 0.0 series in
  let sy = List.fold_left (fun a y -> a +. float_of_int y.count) 0.0 series in
  let sxy = List.fold_left (fun a y -> a +. (float_of_int y.year *. float_of_int y.count)) 0.0 series in
  let sxx = List.fold_left (fun a y -> a +. (float_of_int y.year ** 2.0)) 0.0 series in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let pp_row ppf y =
  let bar = String.make y.count '#' in
  Fmt.pf ppf "%d | %-22s %d" y.year bar y.count
