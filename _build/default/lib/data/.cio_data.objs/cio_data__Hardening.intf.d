lib/data/hardening.mli: Format
