lib/data/cve_net.ml: Fmt List String
