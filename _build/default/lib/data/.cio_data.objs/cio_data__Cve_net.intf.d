lib/data/cve_net.mli: Format
