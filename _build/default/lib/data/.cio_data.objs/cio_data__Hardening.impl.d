lib/data/hardening.ml: Fmt List Printf String
