lib/tls/keys.mli:
