lib/tls/session.mli: Cio_util Cost Rng
