lib/tls/keys.ml: Aead Bytes Char Cio_crypto Hkdf Hmac
