lib/tls/wire.ml: Buffer Bytes Char List Printf String
