lib/tls/session.ml: Aead Buffer Bytes Char Cio_crypto Cio_util Cost Ct Int64 Keys Printf Rng Sha256 String Wire
