lib/tls/wire.mli:
