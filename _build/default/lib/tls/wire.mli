(** Record framing and a defensive record splitter for the untrusted byte
    stream the I/O stack delivers. *)

type content_type = Handshake | Data | Alert | Rekey

val content_code : content_type -> int
val content_of_code : int -> content_type option
val content_name : content_type -> string

val header_len : int
val max_body : int

type record = { ctype : content_type; body : bytes }

val header : ctype:content_type -> len:int -> bytes
val encode : record -> bytes

type splitter

val splitter : unit -> splitter

type split_result = Records of record list | Malformed of string

val feed : splitter -> bytes -> split_result
(** Accumulate stream bytes; emit complete records. Malformed input
    poisons the splitter permanently (fail-closed, no error recovery
    path). *)
