(** PSK-based key schedule for the L5 channel (HKDF-SHA256 throughout). *)

type direction_keys = { key : bytes; iv : bytes }

type t = {
  handshake_secret : bytes;
  client : direction_keys;
  server : direction_keys;
  client_finished_key : bytes;
  server_finished_key : bytes;
  mutable generation : int;
}

val derive : psk:bytes -> client_random:bytes -> server_random:bytes -> t

val rekey : t -> t
(** Next key generation; the old secret cannot be recovered from it. *)

val nonce : iv:bytes -> seq:int64 -> bytes
(** Per-record nonce: IV xor big-endian sequence (RFC 8446 §5.3). *)

val finished_mac : finished_key:bytes -> transcript:bytes -> bytes
