(** L5 secure-channel session: PSK handshake, AEAD-protected records,
    strict ordering and replay rejection, key updates. All failures are
    fatal (fail-closed; no error-recovery surface). *)

open Cio_util

type role = Client | Server

type error =
  | Auth_failed
  | Bad_format of string
  | Bad_state of string
  | Peer_alert

val error_to_string : error -> string

type t

val create :
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  role:role ->
  psk:bytes ->
  psk_id:string ->
  rng:Rng.t ->
  unit ->
  t

val is_established : t -> bool
val last_error : t -> error option
val generation : t -> int
(** Key generation (increments on rekey); -1 before key derivation. *)

val records_sent : t -> int
val records_received : t -> int
val meter : t -> Cost.meter

val initiate : t -> (bytes list, error) result
(** Client only: the opening flight (wire bytes). *)

type feed_result = {
  outputs : bytes list;
  app_data : bytes list;
  err : error option;
}

val feed : t -> bytes -> feed_result
(** Process stream bytes from the (untrusted) transport. *)

val send_data : t -> bytes -> (bytes, error) result
(** Seal one application payload into wire bytes. *)

val initiate_rekey : t -> (bytes, error) result
(** Switch both directions to the next key generation. Both peers must be
    quiescent (no records in flight). *)

val alert : t -> bytes
(** A fatal alert record (plaintext). *)
