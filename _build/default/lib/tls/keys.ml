(* Key schedule for the L5 channel (TLS-1.3-shaped, PSK-based).

   The pre-shared key stands in for attestation-provisioned secrets: in a
   real CVM deployment the tenant releases the PSK to the TEE only after
   remote attestation, which is exactly how confidential workloads receive
   secrets today (DESIGN.md §1). All derivation is HKDF-SHA256 with
   domain-separated labels. *)

open Cio_crypto

type direction_keys = { key : bytes; iv : bytes }

type t = {
  handshake_secret : bytes;
  client : direction_keys;
  server : direction_keys;
  client_finished_key : bytes;
  server_finished_key : bytes;
  mutable generation : int;
}

let derive_direction ~prk ~label =
  {
    key = Hkdf.expand_label ~prk ~label:(label ^ " key") ~context:Bytes.empty ~len:Aead.key_len;
    iv = Hkdf.expand_label ~prk ~label:(label ^ " iv") ~context:Bytes.empty ~len:Aead.nonce_len;
  }

let derive ~psk ~client_random ~server_random =
  let early = Hkdf.extract ~ikm:psk () in
  let context = Bytes.cat client_random server_random in
  let handshake_secret = Hkdf.expand_label ~prk:early ~label:"hs" ~context ~len:32 in
  {
    handshake_secret;
    client = derive_direction ~prk:handshake_secret ~label:"c ap";
    server = derive_direction ~prk:handshake_secret ~label:"s ap";
    client_finished_key =
      Hkdf.expand_label ~prk:handshake_secret ~label:"c fin" ~context:Bytes.empty ~len:32;
    server_finished_key =
      Hkdf.expand_label ~prk:handshake_secret ~label:"s fin" ~context:Bytes.empty ~len:32;
    generation = 0;
  }

(* Forward-secret-style ratchet for KeyUpdate: the new generation's
   secret is derived from the old one, and the old one is unrecoverable
   from the new. *)
let rekey t =
  let next = Hkdf.expand_label ~prk:t.handshake_secret ~label:"upd" ~context:Bytes.empty ~len:32 in
  {
    handshake_secret = next;
    client = derive_direction ~prk:next ~label:"c ap";
    server = derive_direction ~prk:next ~label:"s ap";
    client_finished_key = t.client_finished_key;
    server_finished_key = t.server_finished_key;
    generation = t.generation + 1;
  }

(* Per-record nonce: IV xor big-endian sequence number (RFC 8446 §5.3). *)
let nonce ~iv ~seq =
  let n = Bytes.copy iv in
  let len = Bytes.length n in
  let seqb = Bytes.create 8 in
  Bytes.set_int64_be seqb 0 seq;
  for i = 0 to 7 do
    let j = len - 8 + i in
    Bytes.set n j (Char.chr (Char.code (Bytes.get n j) lxor Char.code (Bytes.get seqb i)))
  done;
  n

let finished_mac ~finished_key ~transcript = Hmac.digest_bytes ~key:finished_key transcript
