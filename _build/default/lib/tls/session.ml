(* L5 secure channel session: PSK handshake + protected records.

   This is the mandatory TLS layer of §3.2: it guarantees integrity,
   confidentiality, ordering and replay protection *independently of the
   I/O stack below*, so a compromised stack (or host, or network) that
   replays, reorders, truncates or rewrites the TCP stream produces a
   detectable fatal error rather than wrong application data. Every
   failure is fatal and poisons the session — there is no error-recovery
   path to exploit. *)

open Cio_util
open Cio_crypto

type role = Client | Server

type error =
  | Auth_failed        (* AEAD/MAC verification failed: tamper or replay *)
  | Bad_format of string
  | Bad_state of string
  | Peer_alert

let error_to_string = function
  | Auth_failed -> "authentication failed (tamper/replay/reorder)"
  | Bad_format s -> "malformed input: " ^ s
  | Bad_state s -> "protocol state violation: " ^ s
  | Peer_alert -> "peer sent fatal alert"

type state =
  | Start
  | Wait_server_hello   (* client sent CH *)
  | Wait_client_finished  (* server sent SH + Finished *)
  | Wait_server_finished  (* client sent nothing yet; waiting for server Finished *)
  | Established
  | Dead

type t = {
  role : role;
  psk : bytes;
  psk_id : string;
  rng : Rng.t;
  meter : Cost.meter;
  model : Cost.model;
  splitter : Wire.splitter;
  mutable state : state;
  mutable my_random : bytes;
  mutable peer_random : bytes;
  mutable transcript : Buffer.t;
  mutable keys : Keys.t option;
  mutable send_seq : int64;
  mutable recv_seq : int64;
  mutable last_error : error option;
  mutable records_sent : int;
  mutable records_received : int;
}

let create ?(model = Cost.default) ?meter ~role ~psk ~psk_id ~rng () =
  {
    role;
    psk;
    psk_id;
    rng;
    meter = (match meter with Some m -> m | None -> Cost.meter ());
    model;
    splitter = Wire.splitter ();
    state = Start;
    my_random = Bytes.empty;
    peer_random = Bytes.empty;
    transcript = Buffer.create 128;
    keys = None;
    send_seq = 0L;
    recv_seq = 0L;
    last_error = None;
    records_sent = 0;
    records_received = 0;
  }

let is_established t = t.state = Established
let last_error t = t.last_error
let generation t = match t.keys with Some k -> k.Keys.generation | None -> -1
let records_sent t = t.records_sent
let records_received t = t.records_received
let meter t = t.meter

let die t err =
  t.state <- Dead;
  t.last_error <- Some err;
  Error err

let send_keys t (k : Keys.t) =
  match t.role with Client -> k.Keys.client | Server -> k.Keys.server

let recv_keys t (k : Keys.t) =
  match t.role with Client -> k.Keys.server | Server -> k.Keys.client

let charge_aead t nbytes = Cost.charge t.meter Cost.Crypto (Cost.aead_cost t.model nbytes)

(* Seal a plaintext into a protected wire record. The header (with the
   ciphertext length) is the AAD, so length tampering is also caught. *)
let seal_record t ~ctype plaintext =
  match t.keys with
  | None -> Error (Bad_state "no keys yet")
  | Some k ->
      let dk = send_keys t k in
      let clen = Bytes.length plaintext + Aead.tag_len in
      let aad = Wire.header ~ctype ~len:clen in
      let nonce = Keys.nonce ~iv:dk.Keys.iv ~seq:t.send_seq in
      let sealed = Aead.seal ~key:dk.Keys.key ~nonce ~aad plaintext in
      charge_aead t (Bytes.length plaintext);
      t.send_seq <- Int64.add t.send_seq 1L;
      t.records_sent <- t.records_sent + 1;
      Ok (Bytes.cat aad sealed)

let open_record t (r : Wire.record) =
  match t.keys with
  | None -> Error (Bad_state "protected record before key derivation")
  | Some k ->
      let dk = recv_keys t k in
      let aad = Wire.header ~ctype:r.Wire.ctype ~len:(Bytes.length r.Wire.body) in
      let nonce = Keys.nonce ~iv:dk.Keys.iv ~seq:t.recv_seq in
      charge_aead t (Bytes.length r.Wire.body);
      (match Aead.open_ ~key:dk.Keys.key ~nonce ~aad r.Wire.body with
      | Some plaintext ->
          (* The sequence number only advances on success: a replayed or
             reordered record authenticates against the wrong nonce and
             lands here as Auth_failed. *)
          t.recv_seq <- Int64.add t.recv_seq 1L;
          t.records_received <- t.records_received + 1;
          Ok plaintext
      | None -> Error Auth_failed)

(* Handshake message bodies. *)

let msg_client_hello = 1
let msg_server_hello = 2
let msg_finished = 3

let encode_client_hello t =
  let idb = Bytes.of_string t.psk_id in
  let b = Bytes.create (1 + 32 + 1 + Bytes.length idb) in
  Bytes.set b 0 (Char.chr msg_client_hello);
  Bytes.blit t.my_random 0 b 1 32;
  Bytes.set b 33 (Char.chr (Bytes.length idb));
  Bytes.blit idb 0 b 34 (Bytes.length idb);
  b

let encode_server_hello t =
  let b = Bytes.create 33 in
  Bytes.set b 0 (Char.chr msg_server_hello);
  Bytes.blit t.my_random 0 b 1 32;
  b

let transcript_hash t = Sha256.digest_bytes (Buffer.to_bytes t.transcript)

let finished_body t ~own =
  match t.keys with
  | None -> invalid_arg "finished_body: no keys"
  | Some k ->
      let fk =
        match (t.role, own) with
        | Client, true | Server, false -> k.Keys.client_finished_key
        | Server, true | Client, false -> k.Keys.server_finished_key
      in
      let mac = Keys.finished_mac ~finished_key:fk ~transcript:(transcript_hash t) in
      let b = Bytes.create 33 in
      Bytes.set b 0 (Char.chr msg_finished);
      Bytes.blit mac 0 b 1 32;
      b

let derive_keys t ~client_random ~server_random =
  t.keys <- Some (Keys.derive ~psk:t.psk ~client_random ~server_random);
  Cost.charge t.meter Cost.Crypto (4 * t.model.Cost.aead_base)

(* Client: produce the ClientHello that opens the connection. *)
let initiate t =
  match (t.role, t.state) with
  | Client, Start ->
      t.my_random <- Rng.bytes t.rng 32;
      let ch = encode_client_hello t in
      Buffer.add_bytes t.transcript ch;
      t.state <- Wait_server_hello;
      Ok [ Wire.encode { Wire.ctype = Wire.Handshake; body = ch } ]
  | Client, _ -> die t (Bad_state "initiate called twice")
  | Server, _ -> die t (Bad_state "server cannot initiate")

type feed_result = {
  outputs : bytes list;   (* wire bytes to hand to the transport *)
  app_data : bytes list;  (* decrypted application payloads *)
  err : error option;
}

let no_result = { outputs = []; app_data = []; err = None }

let handle_client_hello t body =
  if Bytes.length body < 34 then Error (Bad_format "short ClientHello")
  else begin
    let id_len = Char.code (Bytes.get body 33) in
    if Bytes.length body < 34 + id_len then Error (Bad_format "truncated psk id")
    else begin
      let peer_id = Bytes.sub_string body 34 id_len in
      if not (String.equal peer_id t.psk_id) then Error Auth_failed
      else begin
        t.peer_random <- Bytes.sub body 1 32;
        Buffer.add_bytes t.transcript body;
        t.my_random <- Rng.bytes t.rng 32;
        let sh = encode_server_hello t in
        Buffer.add_bytes t.transcript sh;
        derive_keys t ~client_random:t.peer_random ~server_random:t.my_random;
        let sh_record = Wire.encode { Wire.ctype = Wire.Handshake; body = sh } in
        match seal_record t ~ctype:Wire.Handshake (finished_body t ~own:true) with
        | Error e -> Error e
        | Ok fin_record ->
            t.state <- Wait_client_finished;
            Ok [ sh_record; fin_record ]
      end
    end
  end

let handle_server_hello t body =
  if Bytes.length body <> 33 then Error (Bad_format "bad ServerHello length")
  else begin
    t.peer_random <- Bytes.sub body 1 32;
    Buffer.add_bytes t.transcript body;
    derive_keys t ~client_random:t.my_random ~server_random:t.peer_random;
    t.state <- Wait_server_finished;
    Ok []
  end

let verify_finished t plaintext =
  if Bytes.length plaintext <> 33 || Char.code (Bytes.get plaintext 0) <> msg_finished then
    Error (Bad_format "bad Finished message")
  else begin
    let expected = finished_body t ~own:false in
    if Ct.equal (Bytes.sub expected 1 32) (Bytes.sub plaintext 1 32) then Ok () else Error Auth_failed
  end

let process_record t (r : Wire.record) =
  match (t.state, r.Wire.ctype) with
  | Dead, _ -> Error (Bad_state "session dead")
  | Start, Wire.Handshake
    when t.role = Server
         && Bytes.length r.Wire.body > 0
         && Char.code (Bytes.get r.Wire.body 0) = msg_client_hello -> (
      match handle_client_hello t r.Wire.body with Ok outs -> Ok (outs, []) | Error e -> Error e)
  | Start, _ -> Error (Bad_state "no handshake yet")
  | Wait_server_hello, Wire.Handshake when Bytes.length r.Wire.body > 0
      && Char.code (Bytes.get r.Wire.body 0) = msg_server_hello -> (
      match handle_server_hello t r.Wire.body with Ok outs -> Ok (outs, []) | Error e -> Error e)
  | Wait_server_finished, Wire.Handshake -> (
      (* Protected server Finished. *)
      match open_record t r with
      | Error e -> Error e
      | Ok plaintext -> (
          match verify_finished t plaintext with
          | Error e -> Error e
          | Ok () -> (
              match seal_record t ~ctype:Wire.Handshake (finished_body t ~own:true) with
              | Error e -> Error e
              | Ok fin ->
                  t.state <- Established;
                  Ok ([ fin ], []))))
  | Wait_client_finished, Wire.Handshake -> (
      match open_record t r with
      | Error e -> Error e
      | Ok plaintext -> (
          match verify_finished t plaintext with
          | Error e -> Error e
          | Ok () ->
              t.state <- Established;
              Ok ([], [])))
  | Established, Wire.Data -> (
      match open_record t r with Ok pt -> Ok ([], [ pt ]) | Error e -> Error e)
  | Established, Wire.Rekey -> (
      match open_record t r with
      | Error e -> Error e
      | Ok _ ->
          (match t.keys with
          | Some k ->
              t.keys <- Some (Keys.rekey k);
              t.send_seq <- 0L;
              t.recv_seq <- 0L
          | None -> ());
          Ok ([], []))
  | _, Wire.Alert -> Error Peer_alert
  | st, ct ->
      ignore st;
      Error (Bad_state (Printf.sprintf "unexpected %s record" (Wire.content_name ct)))

let feed t stream_bytes =
  if t.state = Dead then { no_result with err = t.last_error }
  else begin
    match Wire.feed t.splitter stream_bytes with
    | Wire.Malformed e -> (
        match die t (Bad_format e) with
        | Error err -> { no_result with err = Some err }
        | Ok _ -> assert false)
    | Wire.Records records ->
        let outputs = ref [] and app = ref [] and err = ref None in
        let rec go = function
          | [] -> ()
          | r :: rest -> (
              match process_record t r with
              | Ok (outs, data) ->
                  outputs := !outputs @ outs;
                  app := !app @ data;
                  go rest
              | Error e ->
                  ignore (die t e);
                  err := Some e)
        in
        go records;
        { outputs = !outputs; app_data = !app; err = !err }
  end

let send_data t payload =
  match t.state with
  | Established -> seal_record t ~ctype:Wire.Data payload
  | _ -> Error (Bad_state "not established")

let initiate_rekey t =
  match t.state with
  | Established -> (
      match seal_record t ~ctype:Wire.Rekey Bytes.empty with
      | Error e -> Error e
      | Ok record ->
          (match t.keys with
          | Some k ->
              t.keys <- Some (Keys.rekey k);
              t.send_seq <- 0L;
              t.recv_seq <- 0L
          | None -> ());
          Ok record)
  | _ -> Error (Bad_state "not established")

let alert _t = Wire.encode { Wire.ctype = Wire.Alert; body = Bytes.make 1 '\002' }
