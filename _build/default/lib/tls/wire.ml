(* Record framing for the L5 channel.

   A record is { content_type:u8, flags:u8, length:u16be } followed by the
   body. The splitter accumulates an untrusted byte stream (what the
   untrusted I/O stack delivers) and emits complete records; it never
   trusts the stream beyond the declared length, and oversized lengths are
   rejected outright. *)

type content_type = Handshake | Data | Alert | Rekey

let content_code = function Handshake -> 22 | Data -> 23 | Alert -> 21 | Rekey -> 24

let content_of_code = function
  | 22 -> Some Handshake
  | 23 -> Some Data
  | 21 -> Some Alert
  | 24 -> Some Rekey
  | _ -> None

let content_name = function
  | Handshake -> "handshake"
  | Data -> "data"
  | Alert -> "alert"
  | Rekey -> "rekey"

let header_len = 4
let max_body = 16384 + 256  (* plaintext limit + AEAD expansion headroom *)

type record = { ctype : content_type; body : bytes }

let header ~ctype ~len =
  let b = Bytes.create header_len in
  Bytes.set b 0 (Char.chr (content_code ctype));
  Bytes.set b 1 '\000';
  Bytes.set_uint16_be b 2 len;
  b

let encode { ctype; body } =
  let len = Bytes.length body in
  if len > max_body then invalid_arg "Wire.encode: record body too large";
  Bytes.cat (header ~ctype ~len) body

type splitter = { buf : Buffer.t; mutable dead : bool }

let splitter () = { buf = Buffer.create 4096; dead = false }

type split_result = Records of record list | Malformed of string

let feed t data =
  if t.dead then Malformed "splitter poisoned by earlier malformed input"
  else begin
    Buffer.add_bytes t.buf data;
    let out = ref [] in
    let err = ref None in
    let continue = ref true in
    while !continue do
      let have = Buffer.length t.buf in
      if have < header_len then continue := false
      else begin
        let hdr = Buffer.sub t.buf 0 header_len in
        match content_of_code (Char.code hdr.[0]) with
        | None ->
            t.dead <- true;
            err := Some (Printf.sprintf "unknown content type %d" (Char.code hdr.[0]));
            continue := false
        | Some ctype ->
            let len = (Char.code hdr.[2] lsl 8) lor Char.code hdr.[3] in
            if len > max_body then begin
              t.dead <- true;
              err := Some (Printf.sprintf "record length %d exceeds limit" len);
              continue := false
            end
            else if have < header_len + len then continue := false
            else begin
              let body = Bytes.of_string (Buffer.sub t.buf header_len len) in
              let rest = Buffer.sub t.buf (header_len + len) (have - header_len - len) in
              Buffer.clear t.buf;
              Buffer.add_string t.buf rest;
              out := { ctype; body } :: !out
            end
      end
    done;
    match !err with Some e -> Malformed e | None -> Records (List.rev !out)
  end
