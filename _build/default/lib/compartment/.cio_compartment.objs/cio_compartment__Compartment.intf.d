lib/compartment/compartment.mli: Cio_util Cost
