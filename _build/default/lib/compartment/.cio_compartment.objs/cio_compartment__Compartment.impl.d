lib/compartment/compartment.ml: Bytes Cio_util Cost List Printf
