(* Fixed-slot buffer pool over a region.

   Two metadata policies capture the design choice the paper highlights via
   snmalloc [40] and the "trusted component allocates" rule [34]:

   - [Trusted]: the free list lives in guest-private OCaml state. The host
     can corrupt buffer *contents* but never allocator behaviour.
   - [Shared_unvalidated] / [Shared_masked]: the free list lives inside the
     shared region itself (a classic legacy design). Unvalidated pops trust
     a host-writable slot id; masked pops confine it with a power-of-two
     mask, trading corruption for confinement, exactly the §3.2 "safe
     shared data area" argument. *)

open Cio_util

type metadata = Trusted | Shared_unvalidated | Shared_masked

type t = {
  region : Region.t;
  base : int;           (* first byte of slot 0 *)
  slot_size : int;      (* power of two *)
  slots : int;          (* power of two *)
  metadata : metadata;
  meta_off : int;       (* offset of shared free stack, if shared *)
  mutable free : int list;  (* trusted policy only *)
  mutable allocated : bool array;
}

(* Shared metadata layout: u16 count at [meta_off], then [slots] u16 slot
   ids forming a stack. *)
let meta_bytes slots = 2 + (2 * slots)

let create ~region ~base ~slot_size ~slots ~metadata =
  if not (Bitops.is_power_of_two slot_size) then
    invalid_arg "Pool.create: slot_size must be a power of two";
  if not (Bitops.is_power_of_two slots) then
    invalid_arg "Pool.create: slots must be a power of two";
  if base < 0 then invalid_arg "Pool.create: negative base";
  let data_bytes = slot_size * slots in
  let meta_off = base + data_bytes in
  let total =
    match metadata with
    | Trusted -> data_bytes
    | Shared_unvalidated | Shared_masked -> data_bytes + meta_bytes slots
  in
  if base + total > Region.size region then
    invalid_arg "Pool.create: pool does not fit in region";
  let t =
    {
      region;
      base;
      slot_size;
      slots;
      metadata;
      meta_off;
      free = List.init slots (fun i -> i);
      allocated = Array.make slots false;
    }
  in
  (match metadata with
  | Trusted -> ()
  | Shared_unvalidated | Shared_masked ->
      (* Initialise the shared stack to hold every slot. *)
      Region.write_u16 region Guest ~off:meta_off slots;
      for i = 0 to slots - 1 do
        Region.write_u16 region Guest ~off:(meta_off + 2 + (2 * i)) i
      done);
  t

let slot_size t = t.slot_size
let slot_count t = t.slots
let base t = t.base
let offset_of_slot t slot = t.base + (slot * t.slot_size)

let slot_in_bounds t slot = slot >= 0 && slot < t.slots

let mask_slot t slot = slot land (t.slots - 1)

let charge_alloc t =
  let model = Region.model t.region in
  Cost.charge (Region.meter t.region) Cost.Alloc model.Cost.alloc

exception Corrupted_metadata of string

let alloc t =
  charge_alloc t;
  match t.metadata with
  | Trusted -> (
      match t.free with
      | [] -> None
      | slot :: rest ->
          t.free <- rest;
          t.allocated.(slot) <- true;
          Some slot)
  | Shared_unvalidated | Shared_masked -> (
      let count = Region.read_u16 t.region Guest ~off:t.meta_off in
      if count = 0 then None
      else begin
        (* A host lie about [count] is confined: reads beyond the stack
           area would fault at the region level, so clamp instead of
           trusting it. The slot id itself is the dangerous value. *)
        let count = min count t.slots in
        let top_off = t.meta_off + 2 + (2 * (count - 1)) in
        let slot = Region.read_u16 t.region Guest ~off:top_off in
        Region.write_u16 t.region Guest ~off:t.meta_off (count - 1);
        match t.metadata with
        | Shared_masked ->
            let slot = mask_slot t slot in
            t.allocated.(slot) <- true;
            Some slot
        | Shared_unvalidated ->
            if not (slot_in_bounds t slot) then
              raise
                (Corrupted_metadata
                   (Printf.sprintf "free-stack slot id %d out of [0,%d)" slot t.slots));
            t.allocated.(slot) <- true;
            Some slot
        | Trusted -> assert false
      end)

let free t slot =
  if not (slot_in_bounds t slot) then invalid_arg "Pool.free: bad slot";
  if not t.allocated.(slot) then invalid_arg "Pool.free: slot not allocated";
  charge_alloc t;
  t.allocated.(slot) <- false;
  match t.metadata with
  | Trusted -> t.free <- slot :: t.free
  | Shared_unvalidated | Shared_masked ->
      let count = Region.read_u16 t.region Guest ~off:t.meta_off in
      let count = min count (t.slots - 1) in
      Region.write_u16 t.region Guest ~off:(t.meta_off + 2 + (2 * count)) slot;
      Region.write_u16 t.region Guest ~off:t.meta_off (count + 1)

let is_allocated t slot = slot_in_bounds t slot && t.allocated.(slot)

let allocated_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.allocated

let write_slot t slot payload =
  if not (slot_in_bounds t slot) then invalid_arg "Pool.write_slot: bad slot";
  if Bytes.length payload > t.slot_size then
    invalid_arg "Pool.write_slot: payload larger than slot";
  Region.guest_write t.region ~off:(offset_of_slot t slot) payload

let read_slot t slot ~len =
  if not (slot_in_bounds t slot) then invalid_arg "Pool.read_slot: bad slot";
  if len > t.slot_size then invalid_arg "Pool.read_slot: len larger than slot";
  Region.guest_read t.region ~off:(offset_of_slot t slot) ~len
