lib/mem/pool.mli: Region
