lib/mem/pool.ml: Array Bitops Bytes Cio_util Cost List Printf Region
