lib/mem/region.mli: Cio_util Cost Format
