lib/mem/region.ml: Array Bitops Bytes Char Cio_util Cost Fmt Int32 List String
