(** Fixed-slot buffer pool over a {!Region.t}, with selectable metadata
    trust policy (the §3.2 shared-allocator design axis). *)

type metadata =
  | Trusted  (** free list in guest-private state ("trusted component allocates") *)
  | Shared_unvalidated  (** free list in shared memory, slot ids trusted *)
  | Shared_masked  (** free list in shared memory, slot ids mask-confined *)

type t

exception Corrupted_metadata of string
(** Raised by [alloc] under [Shared_unvalidated] when the host planted an
    out-of-range slot id. *)

val create :
  region:Region.t -> base:int -> slot_size:int -> slots:int -> metadata:metadata -> t
(** Both [slot_size] and [slots] must be powers of two. Shared policies
    place their free stack immediately after the slot array. *)

val slot_size : t -> int
val slot_count : t -> int
val base : t -> int

val offset_of_slot : t -> int -> int
val slot_in_bounds : t -> int -> bool

val mask_slot : t -> int -> int
(** Confine an untrusted slot id with the power-of-two mask. *)

val alloc : t -> int option
(** Pop a free slot; [None] when exhausted. Charges allocator cost. *)

val free : t -> int -> unit
val is_allocated : t -> int -> bool
val allocated_count : t -> int

val write_slot : t -> int -> bytes -> unit
val read_slot : t -> int -> len:int -> bytes
