(* Direct Device Assignment, end to end (§3.4): attest the device with
   SPDM, then move data over the IDE-protected link with no driver
   hardening at all — the device is in the TCB now.

   E10 reproduces both sides of the paper's assessment: the datapath is
   the cheapest of all designs (hardware crypto, no checks, no bounces),
   and a genuine-but-compromised device defeats it completely, because
   attestation proves identity, not honesty. *)

open Cio_util
open Cio_crypto

type device_behavior = Honest | Compromised  (* passes attestation, then lies *)

type t = {
  device : Spdm.device;
  behavior : device_behavior;
  guest_link : Ide.t;
  device_link : Ide.t;
  meter : Cost.meter;
  mutable transfers : int;
}

type error = Attestation_failed of Spdm.error | Link_tampered

let error_to_string = function
  | Attestation_failed e -> "attestation failed: " ^ Spdm.error_to_string e
  | Link_tampered -> "IDE rejected a tampered TLP"

let reference_measurement = Sha256.digest_string "nic-firmware-v1.0-golden"

let establish ?(model = Cost.default) ?(behavior = Honest) ?counterfeit:(fake = false) ~rng () =
  let root_key = Bytes.of_string "vendor-root-endorsement-key-32b." in
  let device =
    if fake then Spdm.make_counterfeit ~device_id:"nic0" ~measurement:reference_measurement
    else Spdm.make_device ~root_key ~device_id:"nic0" ~measurement:reference_measurement
  in
  match Spdm.attest ~root_key ~reference_measurements:[ reference_measurement ] ~rng device with
  | Error e -> Error (Attestation_failed e)
  | Ok key ->
      let meter = Cost.meter () in
      Ok
        {
          device;
          behavior;
          guest_link = Ide.create ~model ~meter ~key ();
          device_link = Ide.create ~model ~key ();
          meter;
        transfers = 0;
        }

let meter t = t.meter

(* One round trip: the guest sends a request TLP; the (attested) device
   answers. A compromised device answers with corrupted bytes — through a
   perfectly valid IDE session. *)
let transfer t payload =
  t.transfers <- t.transfers + 1;
  let tlp = Ide.seal_tlp t.guest_link payload in
  match Ide.open_tlp t.device_link tlp with
  | None -> Error Link_tampered
  | Some received ->
      let reply =
        match t.behavior with
        | Honest -> received
        | Compromised ->
            let r = Bytes.copy received in
            if Bytes.length r > 0 then Bytes.set r 0 (Char.chr (Char.code (Bytes.get r 0) lxor 0xFF));
            r
      in
      let reply_tlp = Ide.seal_tlp t.device_link reply in
      (match Ide.open_tlp t.guest_link reply_tlp with
      | None -> Error Link_tampered
      | Some data -> Ok data)

(* Host-in-the-middle on the protected link: flip a ciphertext bit. *)
let transfer_with_host_tamper t payload =
  t.transfers <- t.transfers + 1;
  let tlp = Ide.seal_tlp t.guest_link payload in
  let tampered = Bytes.copy tlp in
  if Bytes.length tampered > 0 then
    Bytes.set tampered 0 (Char.chr (Char.code (Bytes.get tampered 0) lxor 1));
  match Ide.open_tlp t.device_link tampered with
  | None -> Error Link_tampered
  | Some _ -> Ok Bytes.empty
