(** SPDM-shaped device attestation with symmetric endorsement (see the
    substitution note in the implementation). *)

open Cio_util

val protocol_version : int

type device

val make_device : root_key:bytes -> device_id:string -> measurement:bytes -> device
val make_counterfeit : device_id:string -> measurement:bytes -> device

type error = Version_mismatch | Bad_signature | Unknown_measurement

val error_to_string : error -> string

val get_measurements : device -> nonce:bytes -> bytes * bytes
val key_exchange : device -> req_nonce:bytes -> bytes * bytes

val attest :
  root_key:bytes -> reference_measurements:bytes list -> rng:Rng.t -> device -> (bytes, error) result
(** Full verifier flow; [Ok key] is the IDE session key. *)
