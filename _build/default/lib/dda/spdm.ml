(* SPDM-shaped device attestation (§3.4, TDISP/TEE-I/O direction).

   The asymmetric certificate chain of real SPDM is replaced by a
   symmetric endorsement scheme workable in this sealed environment: each
   device holds an endorsement key derived from a vendor root key and its
   device id; the verifier (the TEE, which trusts the vendor root) can
   derive the same key. The protocol shape is SPDM's: VERSION ->
   MEASUREMENTS (nonce-bound) -> KEY_EXCHANGE, ending in an IDE session
   key. What the experiments need is faithfully preserved: attestation
   binds the session to a *measurement*, a bad/modified device fails it,
   and a genuine-but-malicious device passes it — the paper's caveat. *)

open Cio_crypto

let protocol_version = 0x12  (* SPDM 1.2-shaped *)

type device = {
  device_id : string;
  measurement : bytes;        (* "firmware hash" *)
  endorsement_key : bytes;    (* HMAC key derived from the vendor root *)
  mutable dev_nonce : int;
}

let endorsement_key ~root_key ~device_id =
  Hmac.digest_bytes ~key:root_key (Bytes.of_string ("endorse:" ^ device_id))

let make_device ~root_key ~device_id ~measurement =
  { device_id; measurement; endorsement_key = endorsement_key ~root_key ~device_id; dev_nonce = 0 }

(* A counterfeit device: right id, wrong key (no vendor endorsement). *)
let make_counterfeit ~device_id ~measurement =
  { device_id; measurement; endorsement_key = Bytes.make 32 '\xEE'; dev_nonce = 0 }

type error =
  | Version_mismatch
  | Bad_signature
  | Unknown_measurement

let error_to_string = function
  | Version_mismatch -> "protocol version mismatch"
  | Bad_signature -> "endorsement verification failed"
  | Unknown_measurement -> "measurement not in reference set"

(* Device-side responses. *)

let get_version (_ : device) = protocol_version

let get_measurements device ~nonce =
  let mac = Hmac.init ~key:device.endorsement_key in
  Hmac.feed_bytes mac nonce;
  Hmac.feed_bytes mac device.measurement;
  (device.measurement, Hmac.finish mac)

let key_exchange device ~req_nonce =
  device.dev_nonce <- device.dev_nonce + 1;
  let dev_nonce = Bytes.create 8 in
  Bytes.set_int64_le dev_nonce 0 (Int64.of_int device.dev_nonce);
  let transcript = Bytes.cat req_nonce dev_nonce in
  let mac = Hmac.digest_bytes ~key:device.endorsement_key transcript in
  (dev_nonce, mac)

let session_key ~endorsement_key ~req_nonce ~dev_nonce =
  Hkdf.derive ~ikm:endorsement_key ~info:(Bytes.cat (Bytes.of_string "ide") (Bytes.cat req_nonce dev_nonce))
    ~len:Aead.key_len ()

(* Verifier side: run the whole flow against a device. *)
let attest ~root_key ~reference_measurements ~rng device =
  if get_version device <> protocol_version then Error Version_mismatch
  else begin
    let ek = endorsement_key ~root_key ~device_id:device.device_id in
    let nonce = Cio_util.Rng.bytes rng 16 in
    let measurement, sig_ = get_measurements device ~nonce in
    let expected =
      let m = Hmac.init ~key:ek in
      Hmac.feed_bytes m nonce;
      Hmac.feed_bytes m measurement;
      Hmac.finish m
    in
    if not (Ct.equal expected sig_) then Error Bad_signature
    else if not (List.exists (Bytes.equal measurement) reference_measurements) then
      Error Unknown_measurement
    else begin
      let req_nonce = Cio_util.Rng.bytes rng 8 in
      let dev_nonce, kx_mac = key_exchange device ~req_nonce in
      let expected_kx = Hmac.digest_bytes ~key:ek (Bytes.cat req_nonce dev_nonce) in
      if not (Ct.equal expected_kx kx_mac) then Error Bad_signature
      else Ok (session_key ~endorsement_key:ek ~req_nonce ~dev_nonce)
    end
  end
