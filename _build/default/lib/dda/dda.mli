(** Direct Device Assignment end to end: SPDM attestation + IDE datapath,
    with the honest / compromised / counterfeit device scenarios of E10. *)

open Cio_util

type device_behavior = Honest | Compromised

type t

type error = Attestation_failed of Spdm.error | Link_tampered

val error_to_string : error -> string

val establish :
  ?model:Cost.model ->
  ?behavior:device_behavior ->
  ?counterfeit:bool ->
  rng:Rng.t ->
  unit ->
  (t, error) result
(** Counterfeit devices fail attestation; compromised ones pass it. *)

val meter : t -> Cost.meter

val transfer : t -> bytes -> (bytes, error) result
(** One guest→device→guest round trip over IDE. A compromised device
    corrupts the echo — inside a valid session. *)

val transfer_with_host_tamper : t -> bytes -> (bytes, error) result
(** Host-in-the-middle bit flip on the protected link: always detected. *)
