(* IDE (Integrity & Data Encryption) link model: PCIe TLPs protected with
   the SPDM-established session key. The crypto runs in hardware on both
   ends, so it costs the TEE's CPU nothing — the performance argument for
   DDA — but the *integrity* guarantee is link-level only: it
   authenticates the device, not the device's honesty. *)

open Cio_util
open Cio_crypto

type t = {
  key : bytes;
  mutable send_seq : int64;
  mutable recv_seq : int64;
  model : Cost.model;
  meter : Cost.meter;
  mutable tampered_rejected : int;
}

let create ?(model = Cost.default) ?meter ~key () =
  if Bytes.length key <> Aead.key_len then invalid_arg "Ide.create: bad key size";
  {
    key;
    send_seq = 0L;
    recv_seq = 0L;
    model;
    meter = (match meter with Some m -> m | None -> Cost.meter ());
    tampered_rejected = 0;
  }

let meter t = t.meter
let tampered_rejected t = t.tampered_rejected

let nonce_of_seq seq =
  let n = Bytes.make Aead.nonce_len '\000' in
  Bytes.set_int64_le n 0 seq;
  n

(* Hardware does the AEAD: the TEE is charged only the DMA movement. *)
let seal_tlp t payload =
  let nonce = nonce_of_seq t.send_seq in
  t.send_seq <- Int64.add t.send_seq 1L;
  Cost.charge t.meter Cost.Dma (Cost.dma_cost t.model (Bytes.length payload));
  Aead.seal ~key:t.key ~nonce ~aad:Bytes.empty payload

let open_tlp t sealed =
  let nonce = nonce_of_seq t.recv_seq in
  Cost.charge t.meter Cost.Dma (Cost.dma_cost t.model (Bytes.length sealed));
  match Aead.open_ ~key:t.key ~nonce ~aad:Bytes.empty sealed with
  | Some payload ->
      t.recv_seq <- Int64.add t.recv_seq 1L;
      Some payload
  | None ->
      t.tampered_rejected <- t.tampered_rejected + 1;
      None
