(** IDE-protected PCIe link: AEAD TLPs under the SPDM session key, crypto
    in hardware (no TEE CPU cost beyond DMA). *)

open Cio_util

type t

val create : ?model:Cost.model -> ?meter:Cost.meter -> key:bytes -> unit -> t
val meter : t -> Cost.meter
val tampered_rejected : t -> int

val seal_tlp : t -> bytes -> bytes
val open_tlp : t -> bytes -> bytes option
(** [None] on link tampering (host-in-the-middle); the sequence number
    only advances on success. *)
