lib/dda/ide.ml: Aead Bytes Cio_crypto Cio_util Cost Int64
