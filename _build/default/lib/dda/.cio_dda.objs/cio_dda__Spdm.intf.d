lib/dda/spdm.mli: Cio_util Rng
