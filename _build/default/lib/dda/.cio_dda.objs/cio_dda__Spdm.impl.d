lib/dda/spdm.ml: Aead Bytes Cio_crypto Cio_util Ct Hkdf Hmac Int64 List
