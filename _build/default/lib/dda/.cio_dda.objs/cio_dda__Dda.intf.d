lib/dda/dda.mli: Cio_util Cost Rng Spdm
