lib/dda/ide.mli: Cio_util Cost
