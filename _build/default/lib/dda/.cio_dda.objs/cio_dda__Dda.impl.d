lib/dda/dda.ml: Bytes Char Cio_crypto Cio_util Cost Ide Sha256 Spdm
