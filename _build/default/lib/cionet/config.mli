(** Boot-time cionet device configuration (zero-negotiation: all fields
    fixed at creation, no control plane). *)

open Cio_frame

type positioning =
  | Inline of { data_capacity : int }
  | Pool of { pool_slots : int; pool_slot_size : int }
  | Indirect of { desc_count : int; pool_slots : int; pool_slot_size : int }

type rx_strategy = Copy_in | Revoke

type t = {
  mac : Addr.mac;
  mtu : int;
  ring_slots : int;
  positioning : positioning;
  rx_strategy : rx_strategy;
  checksum_offload : bool;
  use_notifications : bool;
  pad_frames : bool;
}

val default : t

val data_capacity : t -> int
(** Maximum message payload under the configured positioning. *)

val positioning_name : positioning -> string
val rx_strategy_name : rx_strategy -> string
