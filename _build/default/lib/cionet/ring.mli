(** The safe ring: §3.2's host↔TEE data path, safe by construction
    (stateless slots, single-fetch headers, mask-confined indices and
    offsets, clamped lengths, polling, zero negotiation).

    One ring carries one direction; the producer actor is fixed at
    creation. *)

open Cio_util
open Cio_mem

val header_bytes : int

type layout = {
  total : int;
  hdr_off : int;
  desc_off : int;
  desc_count : int;
  data_off : int;
  data_size : int;
  unit_size : int;
  units : int;
}

val layout : page_size:int -> slots:int -> Config.positioning -> layout
(** Compute the shared-memory footprint; raises [Invalid_argument] on
    non-power-of-two geometry. *)

type counters = {
  mutable produced : int;
  mutable consumed : int;
  mutable full_misses : int;
  mutable empty_polls : int;
  mutable len_clamped : int;
  mutable index_masked : int;
  mutable state_skipped : int;
}

type t

val create :
  region:Region.t ->
  base:int ->
  slots:int ->
  positioning:Config.positioning ->
  producer:Region.actor ->
  host_meter:Cost.meter ->
  t
(** [base] must be page-aligned. Guest-side work is charged to the
    region's meter, host-side work to [host_meter]. *)

val counters : t -> counters
val slots : t -> int
val region : t -> Region.t

val header_offset : t -> int -> int
(** Absolute region offset of a slot's header — exposed for the attack
    harness, which pokes shared memory as the host. *)

val capacity : t -> int
(** Maximum payload bytes per message. *)

val consumer : t -> Region.actor
val data_arena : t -> int * int
(** (offset, size) of the payload arena within the region. *)

val try_produce : t -> bytes -> bool
(** Producer side: place one message; [false] when the ring (or the
    payload pool) is full. *)

val try_consume : t -> bytes option
(** Consumer side, copy strategy: one early copy into private memory. *)

type zero_copy = { data : bytes; release : unit -> unit }

val try_consume_revoke : t -> zero_copy option
(** Consumer side, revocation strategy (guest consumer, inline
    positioning): unshare the payload pages and read in place; [release]
    re-shares and returns the slot. *)
