lib/cionet/host_model.ml: Bytes Char Cio_mem Driver List Queue Region Ring
