lib/cionet/host_model.mli: Driver
