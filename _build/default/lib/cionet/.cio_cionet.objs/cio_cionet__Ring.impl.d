lib/cionet/ring.ml: Array Bitops Bytes Cio_mem Cio_util Config Cost Int32 Queue Region
