lib/cionet/config.mli: Addr Cio_frame
