lib/cionet/driver.ml: Bitops Bytes Char Cio_frame Cio_mem Cio_tcpip Cio_util Config Cost Printf Region Ring
