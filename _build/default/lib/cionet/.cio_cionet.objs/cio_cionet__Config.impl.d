lib/cionet/config.ml: Addr Cio_frame
