lib/cionet/ring.mli: Cio_mem Cio_util Config Cost Region
