lib/cionet/driver.mli: Cio_mem Cio_tcpip Cio_util Config Cost Region Ring
