lib/cionet/multiqueue.ml: Array Cio_util Config Cost Driver Printf
