lib/cionet/multiqueue.mli: Cio_util Config Cost Driver
