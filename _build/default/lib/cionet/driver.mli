(** Guest-side cionet driver: builds the shared region (config page + two
    safe rings) and exposes the polling netif. *)

open Cio_util
open Cio_mem

type t

val create :
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  ?host_meter:Cost.meter ->
  name:string ->
  Config.t ->
  t

val region : t -> Region.t
val config : t -> Config.t
val tx_ring : t -> Ring.t
val rx_ring : t -> Ring.t
val host_meter : t -> Cost.meter
val guest_meter : t -> Cost.meter
val tx_frames : t -> int
val rx_frames : t -> int

val generation : t -> int
(** Device generation; bumped by {!hot_swap}. *)

val hot_swap : t -> unit
(** Replace the device instance wholesale (live migration by hot swap,
    §3.2): the zero-negotiation interface has no state to transfer. The
    old region is fully revoked from the host; in-flight frames are lost
    like a cable pull and the upper layers recover. The host must
    re-attach (see {!Host_model.reattach}). *)

val transmit : t -> bytes -> bool
val poll : t -> bytes option

val poll_zero_copy : t -> Ring.zero_copy option
(** Revocation receive that keeps the slot until [release] (for callers
    that can consume in place). *)

val to_netif : t -> Cio_tcpip.Netif.t
