(* Multi-queue cionet: N independent device instances, one per core — the
   standard answer to the paper's §2.2 performance ideal (saturating
   tens-of-Gbit links), applied to the safe interface.

   Because each queue is a complete, independent cionet device (own
   region, own rings, own meter), multi-queue composes with every safety
   property for free: there is no shared control state between queues to
   harden, no steering negotiation (the flow->queue map is fixed at
   creation, like everything else), and per-queue hot swap keeps working.
   Contrast virtio multiqueue, which adds a control-virtqueue command set
   (and its own CVE surface) to renegotiate steering at runtime.

   TX steering: flows are pinned by a caller-supplied hash so per-flow
   ordering is preserved; RX arrives on whatever queue the host used and
   is drained round-robin. The per-queue meters let experiments compute
   the parallel critical path (max over queues) versus total work. *)

open Cio_util

type t = {
  queues : Driver.t array;
  mutable rx_next : int;  (* round-robin drain cursor *)
}

let create ?(model = Cost.default) ?host_meter ~name ~queues (config : Config.t) =
  if queues < 1 then invalid_arg "Multiqueue.create: need at least one queue";
  {
    queues =
      Array.init queues (fun i ->
          Driver.create ~model ?host_meter ~name:(Printf.sprintf "%s-q%d" name i) config);
    rx_next = 0;
  }

let queue_count t = Array.length t.queues
let queue t i = t.queues.(i)
let queues t = Array.to_list t.queues

(* Fixed flow steering: same hash, same queue, always. *)
let queue_for t ~flow_hash = flow_hash land (Array.length t.queues - 1)

let transmit t ~flow_hash frame =
  (* Non-power-of-two queue counts use modulo; power-of-two uses the
     mask. Either way the mapping never changes at runtime. *)
  let n = Array.length t.queues in
  let q = if n land (n - 1) = 0 then queue_for t ~flow_hash else flow_hash mod n in
  Driver.transmit t.queues.(q) frame

let poll t =
  (* Drain one frame, round-robin across queues for fairness. *)
  let n = Array.length t.queues in
  let rec go tried =
    if tried = n then None
    else begin
      let q = t.rx_next in
      t.rx_next <- (t.rx_next + 1) mod n;
      match Driver.poll t.queues.(q) with
      | Some f -> Some f
      | None -> go (tried + 1)
    end
  in
  go 0

let total_cycles t =
  Array.fold_left (fun acc q -> acc + Cost.total (Driver.guest_meter q)) 0 t.queues

(* The parallel critical path: with one core per queue, wall time is the
   busiest queue, not the sum. *)
let critical_path_cycles t =
  Array.fold_left (fun acc q -> max acc (Cost.total (Driver.guest_meter q))) 0 t.queues
