(* Boot-time device configuration — the §3.2 "zero (re-)negotiation"
   principle made concrete.

   Everything a paravirtual standard would negotiate (MAC, MTU, feature
   bits, checksum ownership, queue geometry, data-positioning format) is
   fixed here when the device is instantiated and never changes. There is
   no feature-negotiation state machine, no control virtqueue, no runtime
   reconfiguration: the control plane is this immutable page. Live
   migration is handled by hot-swapping the whole device, not by mutating
   it. *)

open Cio_frame

type positioning =
  | Inline of { data_capacity : int }
      (** payload lives in the ring slot itself (page-aligned slots) *)
  | Pool of { pool_slots : int; pool_slot_size : int }
      (** payload in a separate shared pool, mask-confined index in the slot *)
  | Indirect of { desc_count : int; pool_slots : int; pool_slot_size : int }
      (** slot -> masked descriptor -> masked buffer offset *)

type rx_strategy =
  | Copy_in   (** copy payload to private memory, then release the slot *)
  | Revoke    (** unshare the payload pages and use the data in place *)

type t = {
  mac : Addr.mac;
  mtu : int;
  ring_slots : int;          (* per direction, power of two *)
  positioning : positioning;
  rx_strategy : rx_strategy;
  checksum_offload : bool;   (* fixed: the guest always owns checksums *)
  use_notifications : bool;  (* false = pure polling (the default) *)
  pad_frames : bool;
      (* pad every TX frame to the MTU before it reaches shared memory:
         hides payload sizes from the host at bandwidth cost (an
         observability ablation; IPv4 receivers strip link padding) *)
}

let default =
  {
    mac = Addr.mac_of_octets 0x02 0xC1 0x0F 0x00 0x00 0x01;
    mtu = 1500;
    ring_slots = 64;
    positioning = Inline { data_capacity = 4096 };
    rx_strategy = Copy_in;
    checksum_offload = false;
    use_notifications = false;
    pad_frames = false;
  }

let data_capacity t =
  match t.positioning with
  | Inline { data_capacity } -> data_capacity
  | Pool { pool_slot_size; _ } -> pool_slot_size
  | Indirect { pool_slot_size; _ } -> pool_slot_size

let positioning_name = function
  | Inline _ -> "inline"
  | Pool _ -> "pool"
  | Indirect _ -> "indirect"

let rx_strategy_name = function Copy_in -> "copy" | Revoke -> "revoke"
