(** Interface-vulnerability attack harness (E4): §2.5 attack classes aimed
    at the four interface designs, with canary-based leak detection and
    outcome classification. *)

type outcome =
  | Leak of string
  | Corruption of string
  | Crash of string
  | Livelock of string
  | Desync of string
  | Confined of string
  | Fail_closed of string
  | No_effect

val outcome_name : outcome -> string
val outcome_detail : outcome -> string

val is_compromise : outcome -> bool
(** True for outcomes that violate confidentiality or integrity; false
    for defended/benign outcomes (DoS is out of scope per §2.1). *)

type target = Virtio_unhardened | Virtio_hardened | Cionet | Dual

val target_name : target -> string
val all_targets : target list

type scenario = {
  sname : string;
  description : string;
  virtio_inject : Cio_virtio.Device.t -> unit;
  cionet_inject : Cio_cionet.Host_model.t -> unit;
}

val scenarios : scenario list
val find_scenario : string -> scenario option

val canary : string
val contains_canary : bytes -> bool

val run : scenario -> target -> outcome

val matrix : unit -> (scenario * (target * outcome) list) list
(** The full E4 resilience matrix. *)

type stack_compromise = { direct_read : outcome; forged_stream : outcome }

val run_stack_compromise : unit -> stack_compromise
(** §3.1's multi-stage argument: a fully compromised I/O stack can
    neither read app memory (compartment) nor forge app data (L5). *)
