lib/attack/attack.mli: Cio_cionet Cio_virtio
