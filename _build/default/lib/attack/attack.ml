(* Interface-vulnerability attack harness (E4).

   Each scenario is one §2.5 attack class, aimed at four targets on
   identical substrates:

     virtio-unhardened   the legacy baseline
     virtio-hardened     the retrofitted-checks baseline (Figs. 3/4)
     cionet              the paper's safe-by-construction L2 interface
     dual                cionet + the mandatory L5 record layer

   The harness plants canary secrets adjacent to the attacked buffers,
   runs the scenario and classifies what actually happened. The paper's
   claim reproduced here: the unhardened driver falls to every class;
   hardening stops them with per-operation checks; the safe interface
   makes most of them *unexpressible*; and whatever the host can still do
   at L2 (corrupt/replay payload bytes) is converted by L5 into a fatal,
   fail-closed error — never into wrong application data. *)

open Cio_util
open Cio_mem
open Cio_virtio
open Cio_cionet

type outcome =
  | Leak of string        (* canary bytes escaped into received data *)
  | Corruption of string  (* memory-safety violation in the driver *)
  | Crash of string       (* unhandled fault *)
  | Livelock of string    (* unbounded processing (temporal violation) *)
  | Desync of string      (* wrong data accepted silently *)
  | Confined of string    (* defense confined/rejected it; dataflow intact *)
  | Fail_closed of string (* L5 detected tampering and killed the session *)
  | No_effect

let outcome_name = function
  | Leak _ -> "LEAK"
  | Corruption _ -> "CORRUPTION"
  | Crash _ -> "CRASH"
  | Livelock _ -> "LIVELOCK"
  | Desync _ -> "DESYNC"
  | Confined _ -> "confined"
  | Fail_closed _ -> "fail-closed"
  | No_effect -> "no-effect"

let outcome_detail = function
  | Leak s | Corruption s | Crash s | Livelock s | Desync s | Confined s | Fail_closed s -> s
  | No_effect -> ""

let is_compromise = function
  | Leak _ | Corruption _ | Crash _ | Livelock _ | Desync _ -> true
  | Confined _ | Fail_closed _ | No_effect -> false

type target = Virtio_unhardened | Virtio_hardened | Cionet | Dual

let target_name = function
  | Virtio_unhardened -> "virtio-unhardened"
  | Virtio_hardened -> "virtio-hardened"
  | Cionet -> "cionet"
  | Dual -> "dual-boundary"

let all_targets = [ Virtio_unhardened; Virtio_hardened; Cionet; Dual ]

type scenario = {
  sname : string;
  description : string;
  virtio_inject : Device.t -> unit;
  cionet_inject : Host_model.t -> unit;
}

let canary = "CANARY-SECRET-0xDEADBEEF-CANARY-SECRET"

let scenarios =
  [
    {
      sname = "lie-used-len";
      description = "device reports a completion length larger than the posted buffer";
      virtio_inject = (fun d -> Device.inject d (Device.Lie_used_len 6000));
      cionet_inject = (fun h -> Host_model.inject h (Host_model.Lie_len 6000));
    };
    {
      sname = "bogus-id";
      description = "device completes a buffer id outside the ring";
      virtio_inject = (fun d -> Device.inject d (Device.Bogus_used_id 5000));
      cionet_inject = (fun h -> Host_model.inject h (Host_model.Bad_index 5000));
    };
    {
      sname = "double-fetch-race";
      description = "host rewrites the length field between the driver's two fetches";
      virtio_inject = (fun d -> Device.inject d (Device.Race_used_len 6000));
      cionet_inject = (fun h -> Host_model.inject h (Host_model.Race_header 6000));
    };
    {
      sname = "desc-loop";
      description = "host rewrites a descriptor chain into a cycle";
      virtio_inject = (fun d -> Device.inject d Device.Desc_chain_loop);
      cionet_inject = (fun h -> Host_model.inject h (Host_model.Garbage_state 7));
      (* cionet has no chains; the closest expressible corruption is a
         malformed state word, which the stateless slot protocol skips. *)
    };
    {
      sname = "redirect-buffer";
      description = "after DMA, host repoints the descriptor at other memory";
      virtio_inject = (fun d -> Device.inject d (Device.Redirect_desc_addr 0));
      cionet_inject = (fun h -> Host_model.inject h (Host_model.Bad_index 3));
    };
    {
      sname = "replay-completion";
      description = "host publishes the same completion twice";
      virtio_inject = (fun d -> Device.inject d Device.Replay_completion);
      cionet_inject = (fun h -> Host_model.inject h Host_model.Replay_slot);
    };
    {
      sname = "corrupt-payload";
      description = "host flips bits in the delivered payload";
      virtio_inject = (fun d -> Device.inject d Device.Corrupt_payload);
      cionet_inject = (fun h -> Host_model.inject h Host_model.Corrupt_payload);
    };
    {
      sname = "used-idx-jump";
      description = "device advances used.idx without writing entries (stale reaps)";
      virtio_inject = (fun d -> Device.inject d (Device.Jump_used_idx 3));
      cionet_inject = (fun h -> Host_model.inject h (Host_model.Lie_len 0));
      (* cionet has no free-running completion index to lie about; the
         nearest expressible attack is a zero-length payload claim. *)
    };
  ]

let find_scenario name = List.find_opt (fun s -> s.sname = name) scenarios

let contains_canary b =
  let s = Bytes.to_string b in
  let n = String.length s and c = String.length canary in
  (* Look for any 8-byte window of the canary (partial leaks count). *)
  let rec probe i =
    if i + 8 > c then false
    else begin
      let window = String.sub canary i 8 in
      let rec scan j =
        j + 8 <= n && (String.equal (String.sub s j 8) window || scan (j + 1))
      in
      scan 0 || probe (i + 8)
    end
  in
  probe 0

(* --- virtio targets ------------------------------------------------- *)

(* Secret residue in every buffer *except* the one the device will
   legitimately complete (slot 0): reading the slack of your own posted
   buffer is not a leak, reading a neighbour's is. *)
let plant_virtio_canaries transport =
  let region = Transport.region transport in
  let blot = Bytes.of_string canary in
  for slot = 1 to Transport.queue_size transport - 1 do
    Region.guest_write region ~off:(Transport.rx_buf_offset transport slot) blot;
    Region.guest_write region
      ~off:(Transport.rx_buf_offset transport slot + Transport.buf_size transport
           - Bytes.length blot)
      blot
  done;
  for slot = 0 to Transport.queue_size transport - 1 do
    Region.guest_write region ~off:(Transport.tx_buf_offset transport slot) blot
  done

type virtio_driver =
  | Unhardened of Driver_unhardened.t
  | Hardened of Driver_hardened.t

let virtio_poll = function
  | Unhardened d -> Driver_unhardened.poll d
  | Hardened d -> Driver_hardened.poll d

let run_virtio ~hardened scenario =
  let transport = Transport.create ~name:"attack-virtio" () in
  let sent = ref [] in
  let device =
    Device.create ~rx:(Transport.rx transport) ~tx:(Transport.tx transport)
      ~transmit:(fun f -> sent := f :: !sent)
  in
  let driver =
    if hardened then Hardened (Driver_hardened.create transport)
    else Unhardened (Driver_unhardened.create transport)
  in
  plant_virtio_canaries transport;
  let honest = Bytes.of_string "honest-frame-payload" in
  scenario.virtio_inject device;
  Device.deliver_rx device honest;
  Device.poll device;
  let classify_frames () =
    (* Drain everything the driver hands up and inspect it. *)
    let frames = ref [] in
    let rec drain n =
      if n > 0 then begin
        match virtio_poll driver with
        | Some f ->
            frames := f :: !frames;
            drain (n - 1)
        | None -> ()
      end
    in
    drain 8;
    let leaked = List.exists contains_canary !frames in
    let got_honest = List.exists (fun f -> Bytes.equal f honest) !frames in
    let duplicates = List.length (List.filter (fun f -> Bytes.equal f honest) !frames) > 1 in
    let silently_wrong =
      List.exists
        (fun f ->
          (not (Bytes.equal f honest)) && (not (contains_canary f))
          && Bytes.length f = Bytes.length honest)
        !frames
    in
    (* Frames of the wrong size that the defense did not account for:
       stale/phantom completions surfacing as receptions. *)
    let phantom = List.exists (fun f -> Bytes.length f <> Bytes.length honest) !frames in
    if leaked then Leak "driver returned adjacent-buffer bytes to the stack"
    else if duplicates then Desync "completion replayed: same frame delivered twice"
    else begin
      match driver with
      | Hardened d ->
          let r = Driver_hardened.rejects d in
          if
            r.Driver_hardened.bad_id > 0 || r.Driver_hardened.not_outstanding > 0
            || r.Driver_hardened.len_clamped > 0 || r.Driver_hardened.runt > 0
          then
            Confined
              (Printf.sprintf "validation rejected it (bad_id=%d stale=%d clamped=%d runt=%d)"
                 r.Driver_hardened.bad_id r.Driver_hardened.not_outstanding
                 r.Driver_hardened.len_clamped r.Driver_hardened.runt)
          else if silently_wrong then Desync "corrupted payload accepted as genuine"
          else if phantom then Desync "phantom completion accepted"
          else No_effect
      | Unhardened _ ->
          if silently_wrong then Desync "corrupted payload accepted as genuine"
          else if phantom then Desync "phantom/stale completion accepted as a reception"
          else if got_honest then No_effect
          else Desync "frame lost or mangled"
    end
  in
  match classify_frames () with
  | outcome -> outcome
  | exception Driver_unhardened.Unbounded_work msg -> Livelock msg
  | exception Region.Fault f -> Crash (Fmt.str "%a" Region.pp_fault f)
  | exception Invalid_argument msg -> Corruption ("bounds violation: " ^ msg)

(* --- cionet target --------------------------------------------------- *)

let plant_cionet_canaries driver =
  let region = Driver.region driver in
  let blot = Bytes.of_string canary in
  (* Residue in the RX arena beyond each unit's start, and in the TX
     arena. *)
  let rx_off, rx_size = Ring.data_arena (Driver.rx_ring driver) in
  let tx_off, _ = Ring.data_arena (Driver.tx_ring driver) in
  let cap = Ring.capacity (Driver.rx_ring driver) in
  (* Skip unit 0: that is where the honest message legitimately lands. *)
  let rec blot_at off =
    if off + cap + Bytes.length blot < rx_off + rx_size then begin
      Region.guest_write region ~off:(off + cap) blot;
      Region.guest_write region ~off:(off + (2 * cap) - Bytes.length blot) blot;
      blot_at (off + cap)
    end
  in
  blot_at rx_off;
  Region.guest_write region ~off:tx_off blot

let run_cionet scenario =
  let driver = Driver.create ~name:"attack-cionet" Config.default in
  let host = Host_model.create ~driver ~transmit:(fun _ -> ()) in
  plant_cionet_canaries driver;
  let honest = Bytes.of_string "honest-frame-payload" in
  scenario.cionet_inject host;
  Host_model.deliver_rx host honest;
  Host_model.poll host;
  let frames = ref [] in
  let drain n =
    (* Fixed number of polls: skipped slots return None once but advance
       the cursor, so a few extra polls sweep past them. *)
    for _ = 1 to n do
      match Driver.poll driver with Some f -> frames := f :: !frames | None -> ()
    done
  in
  match drain 8 with
  | () ->
      let c = Ring.counters (Driver.rx_ring driver) in
      let leaked = List.exists contains_canary !frames in
      let duplicates = List.length (List.filter (fun f -> Bytes.equal f honest) !frames) > 1 in
      let silently_wrong =
        List.exists
          (fun f ->
            (not (Bytes.equal f honest)) && (not (contains_canary f))
            && Bytes.length f = Bytes.length honest)
          !frames
      in
      let phantom = List.exists (fun f -> Bytes.length f <> Bytes.length honest) !frames in
      if leaked then Leak "safe ring leaked adjacent bytes"
      else if duplicates then
        Desync "slot replayed: same payload delivered twice (L2 cannot distinguish; see dual)"
      else if c.Ring.len_clamped > 0 || c.Ring.index_masked > 0 || c.Ring.state_skipped > 0 then
        Confined
          (Printf.sprintf "confined by construction (clamped=%d masked=%d skipped=%d)"
             c.Ring.len_clamped c.Ring.index_masked c.Ring.state_skipped)
      else if silently_wrong then
        Desync "corrupted payload accepted at L2 (opaque bytes; see dual)"
      else if phantom then Desync "payload-size lie accepted at L2 (opaque bytes; see dual)"
      else No_effect
  | exception Region.Fault f -> Crash (Fmt.str "%a" Region.pp_fault f)
  | exception Invalid_argument msg -> Corruption ("bounds violation: " ^ msg)

(* --- dual target: cionet + mandatory L5 ------------------------------ *)

(* The L5 layer rides directly on cionet messages here (one record per
   message) so the experiment isolates the boundary question from TCP. *)
let run_dual scenario =
  let open Cio_tls in
  let rng = Rng.create 99L in
  let psk = Bytes.of_string "attack-harness-psk-32-bytes-long" in
  let tee = Session.create ~role:Session.Server ~psk ~psk_id:"atk" ~rng () in
  let remote = Session.create ~role:Session.Client ~psk ~psk_id:"atk" ~rng () in
  let driver = Driver.create ~name:"attack-dual" Config.default in
  let host = Host_model.create ~driver ~transmit:(fun _ -> ()) in
  plant_cionet_canaries driver;
  (* Handshake through the attacked path: remote -> host -> ring -> tee. *)
  let to_tee wire = Host_model.deliver_rx host wire in
  let pump_tee () =
    Host_model.poll host;
    let outs = ref [] in
    let rec drain () =
      match Driver.poll driver with
      | Some frame ->
          let r = Session.feed tee frame in
          outs := !outs @ r.Session.outputs;
          (match r.Session.err with Some e -> raise (Failure (Session.error_to_string e)) | None -> ());
          drain ()
      | None -> ()
    in
    drain ();
    !outs
  in
  let feed_remote wires =
    List.concat_map
      (fun w ->
        let r = Session.feed remote w in
        (match r.Session.err with Some e -> raise (Failure (Session.error_to_string e)) | None -> ());
        r.Session.outputs)
      wires
  in
  (try
     (match Session.initiate remote with
     | Ok flight -> List.iter to_tee flight
     | Error _ -> failwith "client initiate failed");
     let replies = pump_tee () in
     List.iter to_tee (feed_remote replies);
     ignore (pump_tee ())
   with Failure _ -> ());
  if not (Session.is_established tee) then Crash "handshake did not complete"
  else begin
    (* Attack the data path. *)
    scenario.cionet_inject host;
    let secret_msg = Bytes.of_string "application-secret-message" in
    let wire = match Session.send_data remote secret_msg with Ok w -> w | Error _ -> assert false in
    to_tee wire;
    match
      Host_model.poll host;
      let received = ref [] in
      let rec drain n =
        if n > 0 then begin
          match Driver.poll driver with
          | Some frame ->
              let r = Session.feed tee frame in
              received := !received @ r.Session.app_data;
              (match r.Session.err with
              | Some e -> raise (Failure (Session.error_to_string e))
              | None -> ());
              drain (n - 1)
          | None -> ()
        end
      in
      drain 8;
      !received
    with
    | received ->
        let leaked = List.exists contains_canary received in
        let duplicates =
          List.length (List.filter (fun m -> Bytes.equal m secret_msg) received) > 1
        in
        let wrong = List.exists (fun m -> not (Bytes.equal m secret_msg)) received in
        if leaked then Leak "L5 accepted leaked bytes as authentic"
        else if duplicates then Desync "L5 accepted a replay"
        else if wrong then Desync "L5 accepted corrupted data"
        else begin
          let c = Ring.counters (Driver.rx_ring driver) in
          if c.Ring.len_clamped > 0 || c.Ring.index_masked > 0 || c.Ring.state_skipped > 0 then
            Confined "confined at L2; record layer undisturbed"
          else if received = [] then No_effect
          else No_effect
        end
    | exception Failure msg -> Fail_closed ("record layer detected tampering: " ^ msg)
    | exception Region.Fault f -> Crash (Fmt.str "%a" Region.pp_fault f)
    | exception Invalid_argument msg -> Corruption ("bounds violation: " ^ msg)
  end

let run scenario target =
  match target with
  | Virtio_unhardened -> run_virtio ~hardened:false scenario
  | Virtio_hardened -> run_virtio ~hardened:true scenario
  | Cionet -> run_cionet scenario
  | Dual -> run_dual scenario

let matrix () =
  List.map (fun s -> (s, List.map (fun t -> (t, run s t)) all_targets)) scenarios

(* --- compromised-I/O-stack experiment (ternary trust model) ---------- *)

(* §3.1's multi-stage argument: even with the I/O stack fully
   compromised, the attacker reaches observability, not application
   data. The rogue stack tries to read an app-domain buffer directly and
   to splice forged bytes into the stream; the compartment denies the
   first and the record layer kills the second. *)
type stack_compromise = {
  direct_read : outcome;   (* rogue stack dereferences app memory *)
  forged_stream : outcome; (* rogue stack fabricates stream bytes *)
}

let run_stack_compromise () =
  let open Cio_compartment in
  let world = Compartment.create ~crossing:Compartment.Gate () in
  let app = Compartment.add_domain world ~name:"app" in
  let io = Compartment.add_domain world ~name:"iostack" in
  let secret_buf = Compartment.alloc world ~owner:app 64 in
  Compartment.write world ~as_:app secret_buf ~pos:0 (Bytes.of_string canary);
  let direct_read =
    match Compartment.read world ~as_:io secret_buf ~pos:0 ~len:64 with
    | _ -> Leak "I/O stack read application memory"
    | exception Compartment.Access_violation msg -> Confined ("compartment denied: " ^ msg)
  in
  (* Forged stream: the rogue stack invents plausible TLS bytes. *)
  let open Cio_tls in
  let rng = Rng.create 123L in
  let psk = Bytes.of_string "attack-harness-psk-32-bytes-long" in
  let tee = Session.create ~role:Session.Server ~psk ~psk_id:"x" ~rng () in
  let remote = Session.create ~role:Session.Client ~psk ~psk_id:"x" ~rng () in
  (* Establish honestly first. *)
  let cat l = List.fold_left Bytes.cat Bytes.empty l in
  let f1 = match Session.initiate remote with Ok o -> cat o | Error _ -> Bytes.empty in
  let r1 = Session.feed tee f1 in
  let r2 = Session.feed remote (cat r1.Session.outputs) in
  ignore (Session.feed tee (cat r2.Session.outputs));
  let forged_stream =
    if not (Session.is_established tee) then Crash "handshake failed"
    else begin
      (* The stack knows the record format but not the keys. *)
      let forged =
        Wire.encode { Wire.ctype = Wire.Data; body = Bytes.make 64 '\xAA' }
      in
      let r = Session.feed tee forged in
      match r.Session.err with
      | Some e -> Fail_closed ("record layer: " ^ Session.error_to_string e)
      | None ->
          if r.Session.app_data = [] then No_effect
          else Desync "forged bytes accepted as application data"
    end
  in
  { direct_read; forged_stream }
