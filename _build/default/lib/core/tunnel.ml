(* LightBox-style L2 tunnel: every Ethernet frame is sealed into an AEAD
   blob and padded to a fixed size, so the host and network observe only
   uniform ciphertext at uniform cadence. Format:

     nonce(12) | u16 padded_len | ciphertext( u16 true_len | frame | pad ) | tag

   The nonce is a counter kept by the sealing side; the tunnel is
   point-to-point with one key per direction pair, which suffices for the
   observability experiment. *)

open Cio_crypto

let counter = ref 0L

let seal ~key ~pad_to frame =
  let true_len = Bytes.length frame in
  let inner_len = max (2 + true_len) (pad_to - Aead.nonce_len - 2 - Aead.tag_len) in
  let inner = Bytes.make inner_len '\000' in
  Bytes.set_uint16_le inner 0 true_len;
  Bytes.blit frame 0 inner 2 true_len;
  counter := Int64.add !counter 1L;
  let nonce = Bytes.make Aead.nonce_len '\000' in
  Bytes.set_int64_le nonce 0 !counter;
  let sealed = Aead.seal ~key ~nonce ~aad:Bytes.empty inner in
  let out = Bytes.create (Aead.nonce_len + 2 + Bytes.length sealed) in
  Bytes.blit nonce 0 out 0 Aead.nonce_len;
  Bytes.set_uint16_le out Aead.nonce_len (Bytes.length sealed);
  Bytes.blit sealed 0 out (Aead.nonce_len + 2) (Bytes.length sealed);
  out

let open_ ~key blob =
  let n = Bytes.length blob in
  if n < Aead.nonce_len + 2 + Aead.tag_len then None
  else begin
    let nonce = Bytes.sub blob 0 Aead.nonce_len in
    let slen = Bytes.get_uint16_le blob Aead.nonce_len in
    if Aead.nonce_len + 2 + slen > n then None
    else begin
      let sealed = Bytes.sub blob (Aead.nonce_len + 2) slen in
      match Aead.open_ ~key ~nonce ~aad:Bytes.empty sealed with
      | None -> None
      | Some inner ->
          if Bytes.length inner < 2 then None
          else begin
            let true_len = Bytes.get_uint16_le inner 0 in
            if 2 + true_len > Bytes.length inner then None else Some (Bytes.sub inner 2 true_len)
          end
    end
  end
