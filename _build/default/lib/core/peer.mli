(** Plain remote endpoint on the simulated network: runs a stack + TLS in
    a trusted environment (the tenant's client or a remote service). *)

open Cio_util
open Cio_frame
open Cio_netsim
open Cio_tcpip

type t

val create_with_netif :
  ?model:Cost.model ->
  netif:Cio_tcpip.Netif.t ->
  ip:Addr.ipv4 ->
  neighbors:(Addr.ipv4 * Addr.mac) list ->
  psk:bytes ->
  psk_id:string ->
  rng:Rng.t ->
  now:(unit -> int64) ->
  unit ->
  t
(** A peer over an arbitrary netif (e.g. a {!Cio_netsim.Switch} port). *)

val create :
  ?model:Cost.model ->
  ?frame_codec:(bytes -> bytes) * (bytes -> bytes option) ->
  link:Link.t ->
  endpoint:Link.endpoint ->
  ip:Addr.ipv4 ->
  mac:Addr.mac ->
  neighbors:(Addr.ipv4 * Addr.mac) list ->
  psk:bytes ->
  psk_id:string ->
  rng:Rng.t ->
  now:(unit -> int64) ->
  unit ->
  t

val stack : t -> Stack.t
val meter : t -> Cost.meter
val echoed : t -> int

val connect : t -> dst:Addr.ipv4 -> dst_port:int -> Channel.t
val serve_echo : t -> port:int -> unit

val poll : t -> unit
(** Stack poll + accept + channel pump + echo service. *)
