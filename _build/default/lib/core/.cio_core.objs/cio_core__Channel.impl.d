lib/core/channel.ml: Buffer Bytes Cio_tcpip Cio_tls Cio_util Cost List Queue Session Stack Tcp
