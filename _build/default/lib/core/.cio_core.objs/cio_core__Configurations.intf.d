lib/core/configurations.mli: Cio_observe Cio_util Cost
