lib/core/peer.mli: Addr Channel Cio_frame Cio_netsim Cio_tcpip Cio_util Cost Link Rng Stack
