lib/core/tunnel.mli:
