lib/core/dual.mli: Addr Channel Cio_cionet Cio_compartment Cio_frame Cio_tcpip Cio_util Compartment Cost Rng Stack
