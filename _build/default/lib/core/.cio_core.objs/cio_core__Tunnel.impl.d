lib/core/tunnel.ml: Aead Bytes Cio_crypto Int64
