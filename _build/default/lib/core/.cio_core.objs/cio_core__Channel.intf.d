lib/core/channel.mli: Cio_tcpip Cio_tls Cio_util Cost Session Stack Tcp
