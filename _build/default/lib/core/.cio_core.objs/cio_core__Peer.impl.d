lib/core/peer.ml: Channel Cio_netsim Cio_tcpip Cio_tls Cio_util Cost Link List Netif Queue Rng Session Stack Tcp
