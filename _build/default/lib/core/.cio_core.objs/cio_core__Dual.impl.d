lib/core/dual.ml: Channel Cio_cionet Cio_compartment Cio_tcpip Cio_tls Cio_util Compartment Cost List Rng Session Stack Tcp
