(** LightBox-style L2 tunnel: frames sealed into fixed-size AEAD blobs so
    the host observes only uniform ciphertext. *)

val seal : key:bytes -> pad_to:int -> bytes -> bytes
val open_ : key:bytes -> bytes -> bytes option
