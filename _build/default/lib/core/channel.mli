(** Secure L5 channel: a {!Cio_tls.Session.t} over a TCP connection in the
    (possibly untrusted) I/O stack, with the L5 boundary expressed as the
    [enter_io] wrapper and the §3.2 copy knobs. *)

open Cio_util
open Cio_tcpip
open Cio_tls

type t

val create :
  ?zero_copy_send:bool ->
  ?copy_on_recv:bool ->
  ?enter_io:((unit -> unit) -> unit) ->
  ?model:Cost.model ->
  meter:Cost.meter ->
  session:Session.t ->
  stack:Stack.t ->
  conn:Tcp.conn ->
  unit ->
  t

val session : t -> Session.t
val conn : t -> Tcp.conn
val error : t -> Session.error option
val sent_messages : t -> int
val received_messages : t -> int

val start_handshake : t -> (unit, Session.error) result
(** Client side: emit the opening flight. *)

val send : t -> bytes -> (unit, Session.error) result
(** Seal and queue one message (app side; no boundary crossing). *)

val io_pump : t -> bool
(** I/O-domain half: flush the outbox into TCP and harvest stream bytes.
    The caller must already be inside the I/O domain. Returns whether any
    bytes crossed the L5 boundary (for handoff-crossing accounting). *)

val app_pump : t -> unit
(** App-side half: run harvested bytes through the record layer. *)

val pump : t -> unit
(** Standalone convenience: one boundary crossing around {!io_pump}, then
    {!app_pump}. *)

val recv : t -> bytes option
val pending : t -> int
val is_established : t -> bool
