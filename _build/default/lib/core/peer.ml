(* Plain (non-confidential) remote endpoint on the simulated network: the
   tenant's client, a remote service, or the far end of a tunnel. Runs
   the same stack and TLS code but in a trusted environment — no
   compartment, no distrust copies — and its cycles are charged to its
   own meter, not the TEE's. *)

open Cio_util
open Cio_netsim
open Cio_tcpip
open Cio_tls

type t = {
  stack : Stack.t;
  meter : Cost.meter;
  model : Cost.model;
  psk : bytes;
  psk_id : string;
  rng : Rng.t;
  mutable channels : Channel.t list;
  mutable echo_channels : Channel.t list;
  mutable listeners : (Tcp.listener * [ `Echo | `Sink ]) list;
  mutable echoed : int;
}

let create_with_netif ?(model = Cost.default) ~netif ~ip ~neighbors ~psk ~psk_id ~rng ~now () =
  let meter = Cost.meter () in
  let stack = Stack.create ~model ~meter ~netif ~ip ~neighbors ~now ~rng () in
  {
    stack;
    meter;
    model;
    psk;
    psk_id;
    rng;
    channels = [];
    echo_channels = [];
    listeners = [];
    echoed = 0;
  }

let create ?(model = Cost.default) ?frame_codec ~link ~endpoint ~ip ~mac ~neighbors ~psk ~psk_id
    ~rng ~now () =
  let rxq = Queue.create () in
  Link.attach link endpoint (fun frame -> Queue.add frame rxq);
  let encode, decode =
    match frame_codec with
    | Some (e, d) -> (e, d)
    | None -> ((fun f -> f), fun f -> Some f)
  in
  let netif =
    {
      Netif.mac;
      mtu = 1500;
      transmit = (fun frame -> Link.send link ~src:endpoint (encode frame));
      poll =
        (fun () ->
          if Queue.is_empty rxq then None
          else begin
            match decode (Queue.take rxq) with Some f -> Some f | None -> None
          end);
    }
  in
  create_with_netif ~model ~netif ~ip ~neighbors ~psk ~psk_id ~rng ~now ()

let stack t = t.stack
let meter t = t.meter
let echoed t = t.echoed

let make_channel t ~role ~conn =
  let session =
    Session.create ~model:t.model ~meter:t.meter ~role ~psk:t.psk ~psk_id:t.psk_id ~rng:t.rng ()
  in
  let ch = Channel.create ~model:t.model ~meter:t.meter ~session ~stack:t.stack ~conn () in
  t.channels <- ch :: t.channels;
  ch

let connect t ~dst ~dst_port =
  let conn = Tcp.connect (Stack.tcp t.stack) ~dst ~dst_port () in
  let ch = make_channel t ~role:Session.Client ~conn in
  ignore (Channel.start_handshake ch);
  ch

let serve t ~port mode =
  let l = Tcp.listen (Stack.tcp t.stack) ~port () in
  t.listeners <- (l, mode) :: t.listeners

let serve_echo t ~port = serve t ~port `Echo

let poll t =
  Stack.poll t.stack;
  (* Accept pending connections on every listener. *)
  List.iter
    (fun (l, mode) ->
      let rec accept_all () =
        match Tcp.accept l with
        | None -> ()
        | Some conn ->
            let ch = make_channel t ~role:Session.Server ~conn in
            (match mode with `Echo -> t.echo_channels <- ch :: t.echo_channels | `Sink -> ());
            accept_all ()
      in
      accept_all ())
    t.listeners;
  List.iter Channel.pump t.channels;
  (* Echo service: bounce every received message straight back. *)
  List.iter
    (fun ch ->
      let rec echo () =
        match Channel.recv ch with
        | Some msg ->
            t.echoed <- t.echoed + 1;
            ignore (Channel.send ch msg);
            echo ()
        | None -> ()
      in
      echo ())
    t.echo_channels
