(** ChaCha20 stream cipher (RFC 8439). *)

val block : key:bytes -> nonce:bytes -> counter:int32 -> bytes
(** One 64-byte keystream block. [key] is 32 bytes, [nonce] 12 bytes. *)

val encrypt : ?counter:int32 -> key:bytes -> nonce:bytes -> bytes -> bytes
(** XOR with the keystream starting at [counter] (default 1, the AEAD
    convention). *)

val decrypt : ?counter:int32 -> key:bytes -> nonce:bytes -> bytes -> bytes
(** Identical to [encrypt]; the cipher is an involution. *)
