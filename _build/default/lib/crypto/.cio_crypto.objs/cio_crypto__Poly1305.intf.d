lib/crypto/poly1305.mli:
