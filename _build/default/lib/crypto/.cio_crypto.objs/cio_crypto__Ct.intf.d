lib/crypto/ct.mli:
