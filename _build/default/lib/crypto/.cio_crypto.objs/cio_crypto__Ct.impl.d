lib/crypto/ct.ml: Bytes Char
