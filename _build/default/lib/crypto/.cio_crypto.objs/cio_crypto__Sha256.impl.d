lib/crypto/sha256.ml: Array Bytes Cio_util Int32 Int64
