lib/crypto/aead.mli:
