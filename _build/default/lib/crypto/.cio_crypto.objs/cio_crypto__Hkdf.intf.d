lib/crypto/hkdf.mli:
