lib/crypto/poly1305.ml: Array Bytes Char
