lib/crypto/hmac.mli:
