lib/crypto/aead.ml: Bytes Chacha20 Ct Int64 Poly1305
