(** Branch-free byte comparison for MAC/tag verification. *)

val equal : bytes -> bytes -> bool
