(** ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). *)

val tag_len : int
val key_len : int
val nonce_len : int

val encrypt : key:bytes -> nonce:bytes -> aad:bytes -> bytes -> bytes * bytes
(** [(ciphertext, tag)]. *)

val decrypt : key:bytes -> nonce:bytes -> aad:bytes -> tag:bytes -> bytes -> bytes option
(** [None] on authentication failure; no plaintext is released. *)

val seal : key:bytes -> nonce:bytes -> aad:bytes -> bytes -> bytes
(** Ciphertext with the tag appended. *)

val open_ : key:bytes -> nonce:bytes -> aad:bytes -> bytes -> bytes option
