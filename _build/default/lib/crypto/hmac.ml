(* HMAC-SHA256 (RFC 2104 / RFC 4231 test vectors). *)

let block_size = 64

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest_bytes key else key in
  let k = Bytes.make block_size '\000' in
  Bytes.blit key 0 k 0 (Bytes.length key);
  k

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  out

type t = { inner : Sha256.t; okey : bytes }

let init ~key =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed_bytes inner (xor_pad key 0x36);
  { inner; okey = xor_pad key 0x5c }

let feed_bytes t b = Sha256.feed_bytes t.inner b
let feed_string t s = Sha256.feed_string t.inner s

let finish t =
  let inner_digest = Sha256.finish t.inner in
  let outer = Sha256.init () in
  Sha256.feed_bytes outer t.okey;
  Sha256.feed_bytes outer inner_digest;
  Sha256.finish outer

let digest_bytes ~key msg =
  let t = init ~key in
  feed_bytes t msg;
  finish t

let digest_string ~key msg = digest_bytes ~key:(Bytes.of_string key) (Bytes.of_string msg)
