(** SHA-256 (FIPS 180-4). Incremental and one-shot interfaces. *)

type t

val init : unit -> t
val feed : t -> bytes -> pos:int -> len:int -> unit
val feed_bytes : t -> bytes -> unit
val feed_string : t -> string -> unit

val finish : t -> bytes
(** 32-byte digest. The state must not be reused afterwards. *)

val digest_bytes : bytes -> bytes
val digest_string : string -> bytes
val hex_digest_string : string -> string
