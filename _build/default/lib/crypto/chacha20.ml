(* ChaCha20 stream cipher (RFC 8439 §2). Verified against the RFC vectors
   in the test suite. *)

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let quarter_round st a b c d =
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl (Int32.logxor st.(d) st.(a)) 16;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl (Int32.logxor st.(b) st.(c)) 12;
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl (Int32.logxor st.(d) st.(a)) 8;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl (Int32.logxor st.(b) st.(c)) 7

let init_state ~key ~nonce ~counter =
  if Bytes.length key <> 32 then invalid_arg "Chacha20: key must be 32 bytes";
  if Bytes.length nonce <> 12 then invalid_arg "Chacha20: nonce must be 12 bytes";
  let st = Array.make 16 0l in
  st.(0) <- 0x61707865l;
  st.(1) <- 0x3320646el;
  st.(2) <- 0x79622d32l;
  st.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    st.(4 + i) <- Bytes.get_int32_le key (4 * i)
  done;
  st.(12) <- counter;
  for i = 0 to 2 do
    st.(13 + i) <- Bytes.get_int32_le nonce (4 * i)
  done;
  st

let block ~key ~nonce ~counter =
  let st = init_state ~key ~nonce ~counter in
  let work = Array.copy st in
  for _ = 1 to 10 do
    quarter_round work 0 4 8 12;
    quarter_round work 1 5 9 13;
    quarter_round work 2 6 10 14;
    quarter_round work 3 7 11 15;
    quarter_round work 0 5 10 15;
    quarter_round work 1 6 11 12;
    quarter_round work 2 7 8 13;
    quarter_round work 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    Bytes.set_int32_le out (4 * i) (Int32.add work.(i) st.(i))
  done;
  out

let encrypt ?(counter = 1l) ~key ~nonce data =
  if Bytes.length key <> 32 then invalid_arg "Chacha20: key must be 32 bytes";
  if Bytes.length nonce <> 12 then invalid_arg "Chacha20: nonce must be 12 bytes";
  let n = Bytes.length data in
  let out = Bytes.create n in
  let blocks = (n + 63) / 64 in
  for b = 0 to blocks - 1 do
    let ks = block ~key ~nonce ~counter:(Int32.add counter (Int32.of_int b)) in
    let off = 64 * b in
    let len = min 64 (n - off) in
    for i = 0 to len - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code (Bytes.get data (off + i)) lxor Char.code (Bytes.get ks i)))
    done
  done;
  out

let decrypt = encrypt
