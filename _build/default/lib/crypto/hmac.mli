(** HMAC-SHA256 (RFC 2104). *)

type t

val init : key:bytes -> t
val feed_bytes : t -> bytes -> unit
val feed_string : t -> string -> unit
val finish : t -> bytes

val digest_bytes : key:bytes -> bytes -> bytes
val digest_string : key:string -> string -> bytes
