(** Poly1305 one-time authenticator (RFC 8439 §2.5). *)

type t

val init : key:bytes -> t
(** [key] is the 32-byte one-time key (r || s). *)

val feed : t -> bytes -> pos:int -> len:int -> unit
val feed_bytes : t -> bytes -> unit

val finish : t -> bytes
(** 16-byte tag. The state must not be reused afterwards. *)

val mac : key:bytes -> bytes -> bytes
