(* HKDF-SHA256 (RFC 5869). Drives the L5 key schedule: the attestation-
   provisioned PSK is expanded into per-direction record keys. *)

let hash_len = 32

let extract ?salt ~ikm () =
  let salt = match salt with Some s -> s | None -> Bytes.make hash_len '\000' in
  Hmac.digest_bytes ~key:salt ikm

let expand ~prk ~info ~len =
  if len < 0 || len > 255 * hash_len then invalid_arg "Hkdf.expand: invalid length";
  let blocks = (len + hash_len - 1) / hash_len in
  let out = Buffer.create len in
  let prev = ref Bytes.empty in
  for i = 1 to blocks do
    let h = Hmac.init ~key:prk in
    Hmac.feed_bytes h !prev;
    Hmac.feed_bytes h info;
    Hmac.feed_bytes h (Bytes.make 1 (Char.chr i));
    prev := Hmac.finish h;
    Buffer.add_bytes out !prev
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive ?salt ~ikm ~info ~len () =
  let prk = extract ?salt ~ikm () in
  expand ~prk ~info ~len

let expand_label ~prk ~label ~context ~len =
  (* TLS-1.3-style labelled expansion, scoped to this simulator. *)
  let info = Buffer.create 32 in
  Buffer.add_uint16_be info len;
  let full_label = "cio13 " ^ label in
  Buffer.add_uint8 info (String.length full_label);
  Buffer.add_string info full_label;
  Buffer.add_uint8 info (Bytes.length context);
  Buffer.add_bytes info context;
  expand ~prk ~info:(Buffer.to_bytes info) ~len
