(* Constant-time(-shaped) comparison.

   OCaml cannot promise cycle-exact constant time, but the comparison is
   branch-free over the data so the *interface discipline* — never
   early-exit on a tag mismatch — is preserved, which is what the safe-
   interface principles require of implementations. *)

let equal a b =
  Bytes.length a = Bytes.length b
  &&
  let acc = ref 0 in
  for i = 0 to Bytes.length a - 1 do
    acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
  done;
  !acc = 0
