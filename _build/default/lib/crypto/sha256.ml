(* SHA-256 (FIPS 180-4), pure OCaml over int32.

   Backs HMAC/HKDF in the L5 key schedule. Verified against the FIPS/RFC
   6234 test vectors in the test suite. *)

let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
    0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
    0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
    0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
    0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
    0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
    0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
    0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type t = {
  h : int32 array;           (* chaining state, 8 words *)
  block : bytes;             (* 64-byte input buffer *)
  mutable fill : int;        (* bytes currently buffered *)
  mutable total : int64;     (* total message bytes seen *)
}

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
        0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    block = Bytes.create 64;
    fill = 0;
    total = 0L;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( +% ) = Int32.add

let compress t block pos =
  let w = Array.make 64 0l in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be block (pos + (4 * i))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^^ rotr w.(i - 15) 18 ^^ Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^^ rotr w.(i - 2) 19 ^^ Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref t.h.(0) and b = ref t.h.(1) and c = ref t.h.(2) and d = ref t.h.(3) in
  let e = ref t.h.(4) and f = ref t.h.(5) and g = ref t.h.(6) and h = ref t.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
    let ch = (!e &&& !f) ^^ (Int32.lognot !e &&& !g) in
    let temp1 = !h +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
    let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
    let temp2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  t.h.(0) <- t.h.(0) +% !a;
  t.h.(1) <- t.h.(1) +% !b;
  t.h.(2) <- t.h.(2) +% !c;
  t.h.(3) <- t.h.(3) +% !d;
  t.h.(4) <- t.h.(4) +% !e;
  t.h.(5) <- t.h.(5) +% !f;
  t.h.(6) <- t.h.(6) +% !g;
  t.h.(7) <- t.h.(7) +% !h

let feed t src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha256.feed: range out of bounds";
  t.total <- Int64.add t.total (Int64.of_int len);
  let pos = ref pos and remaining = ref len in
  (* Top up a partial block first. *)
  if t.fill > 0 then begin
    let take = min !remaining (64 - t.fill) in
    Bytes.blit src !pos t.block t.fill take;
    t.fill <- t.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if t.fill = 64 then begin
      compress t t.block 0;
      t.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress t src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos t.block t.fill !remaining;
    t.fill <- t.fill + !remaining
  end

let feed_bytes t b = feed t b ~pos:0 ~len:(Bytes.length b)
let feed_string t s = feed_bytes t (Bytes.of_string s)

let finish t =
  let bitlen = Int64.mul t.total 8L in
  let pad_start = t.fill in
  Bytes.set t.block pad_start '\x80';
  if pad_start + 1 > 56 then begin
    Bytes.fill t.block (pad_start + 1) (64 - pad_start - 1) '\000';
    compress t t.block 0;
    Bytes.fill t.block 0 56 '\000'
  end
  else Bytes.fill t.block (pad_start + 1) (56 - pad_start - 1) '\000';
  Bytes.set_int64_be t.block 56 bitlen;
  compress t t.block 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) t.h.(i)
  done;
  out

let digest_bytes b =
  let t = init () in
  feed_bytes t b;
  finish t

let digest_string s = digest_bytes (Bytes.of_string s)

let hex_digest_string s = Cio_util.Hex.of_bytes (digest_string s)
