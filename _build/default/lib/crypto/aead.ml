(* ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

   The L5 record layer's only cipher. Decryption verifies the tag with a
   branch-free comparison before releasing any plaintext. *)

let tag_len = 16
let key_len = 32
let nonce_len = 12

let poly_key ~key ~nonce =
  Bytes.sub (Chacha20.block ~key ~nonce ~counter:0l) 0 32

let pad16 p n = if n mod 16 = 0 then () else Poly1305.feed_bytes p (Bytes.make (16 - (n mod 16)) '\000')

let le64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let compute_tag ~key ~nonce ~aad ~ciphertext =
  let otk = poly_key ~key ~nonce in
  let p = Poly1305.init ~key:otk in
  Poly1305.feed_bytes p aad;
  pad16 p (Bytes.length aad);
  Poly1305.feed_bytes p ciphertext;
  pad16 p (Bytes.length ciphertext);
  Poly1305.feed_bytes p (le64 (Bytes.length aad));
  Poly1305.feed_bytes p (le64 (Bytes.length ciphertext));
  Poly1305.finish p

let encrypt ~key ~nonce ~aad plaintext =
  if Bytes.length key <> key_len then invalid_arg "Aead.encrypt: bad key length";
  if Bytes.length nonce <> nonce_len then invalid_arg "Aead.encrypt: bad nonce length";
  let ciphertext = Chacha20.encrypt ~counter:1l ~key ~nonce plaintext in
  let tag = compute_tag ~key ~nonce ~aad ~ciphertext in
  (ciphertext, tag)

let decrypt ~key ~nonce ~aad ~tag ciphertext =
  if Bytes.length key <> key_len then invalid_arg "Aead.decrypt: bad key length";
  if Bytes.length nonce <> nonce_len then invalid_arg "Aead.decrypt: bad nonce length";
  if Bytes.length tag <> tag_len then None
  else begin
    let expected = compute_tag ~key ~nonce ~aad ~ciphertext in
    if Ct.equal expected tag then Some (Chacha20.decrypt ~counter:1l ~key ~nonce ciphertext)
    else None
  end

let seal ~key ~nonce ~aad plaintext =
  let c, t = encrypt ~key ~nonce ~aad plaintext in
  Bytes.cat c t

let open_ ~key ~nonce ~aad sealed =
  let n = Bytes.length sealed in
  if n < tag_len then None
  else begin
    let ciphertext = Bytes.sub sealed 0 (n - tag_len) in
    let tag = Bytes.sub sealed (n - tag_len) tag_len in
    decrypt ~key ~nonce ~aad ~tag ciphertext
  end
