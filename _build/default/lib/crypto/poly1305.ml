(* Poly1305 one-time authenticator (RFC 8439 §2.5).

   Arithmetic over 2^130 - 5 with five 26-bit limbs in native ints: limb
   products are at most 52 bits and a row of five fits comfortably in
   OCaml's 63-bit ints, so no big-number library is needed. *)

type t = {
  r : int array;              (* clamped key, 5 limbs *)
  s : int array;              (* final addend, 4 x 32-bit words *)
  h : int array;              (* accumulator, 5 limbs *)
  buf : bytes;                (* 16-byte input buffer *)
  mutable fill : int;
}

let mask26 = (1 lsl 26) - 1

let u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let init ~key =
  if Bytes.length key <> 32 then invalid_arg "Poly1305.init: key must be 32 bytes";
  (* Clamp r per the RFC. *)
  let r0 = u32 key 0 land 0x0FFFFFFF in
  let r1 = u32 key 4 land 0x0FFFFFFC in
  let r2 = u32 key 8 land 0x0FFFFFFC in
  let r3 = u32 key 12 land 0x0FFFFFFC in
  let r =
    [|
      r0 land mask26;
      ((r0 lsr 26) lor (r1 lsl 6)) land mask26;
      ((r1 lsr 20) lor (r2 lsl 12)) land mask26;
      ((r2 lsr 14) lor (r3 lsl 18)) land mask26;
      r3 lsr 8;
    |]
  in
  {
    r;
    s = [| u32 key 16; u32 key 20; u32 key 24; u32 key 28 |];
    h = Array.make 5 0;
    buf = Bytes.create 16;
    fill = 0;
  }

(* Process one 16-byte block (or final partial block with its own pad). *)
let process t block ~partial_len =
  let full = partial_len = 0 in
  let m = Bytes.make 17 '\000' in
  if full then begin
    Bytes.blit block 0 m 0 16;
    Bytes.set m 16 '\001'
  end
  else begin
    Bytes.blit block 0 m 0 partial_len;
    Bytes.set m partial_len '\001'
  end;
  let w0 = u32 m 0 and w1 = u32 m 4 and w2 = u32 m 8 and w3 = u32 m 12 in
  let hi = Char.code (Bytes.get m 16) in
  let h = t.h and r = t.r in
  h.(0) <- h.(0) + (w0 land mask26);
  h.(1) <- h.(1) + (((w0 lsr 26) lor (w1 lsl 6)) land mask26);
  h.(2) <- h.(2) + (((w1 lsr 20) lor (w2 lsl 12)) land mask26);
  h.(3) <- h.(3) + (((w2 lsr 14) lor (w3 lsl 18)) land mask26);
  h.(4) <- h.(4) + ((w3 lsr 8) lor (hi lsl 24));
  (* h <- h * r mod 2^130-5, schoolbook with 5*r folding. *)
  let r5 = Array.map (fun x -> 5 * x) r in
  let d0 = (h.(0) * r.(0)) + (h.(1) * r5.(4)) + (h.(2) * r5.(3)) + (h.(3) * r5.(2)) + (h.(4) * r5.(1)) in
  let d1 = (h.(0) * r.(1)) + (h.(1) * r.(0)) + (h.(2) * r5.(4)) + (h.(3) * r5.(3)) + (h.(4) * r5.(2)) in
  let d2 = (h.(0) * r.(2)) + (h.(1) * r.(1)) + (h.(2) * r.(0)) + (h.(3) * r5.(4)) + (h.(4) * r5.(3)) in
  let d3 = (h.(0) * r.(3)) + (h.(1) * r.(2)) + (h.(2) * r.(1)) + (h.(3) * r.(0)) + (h.(4) * r5.(4)) in
  let d4 = (h.(0) * r.(4)) + (h.(1) * r.(3)) + (h.(2) * r.(2)) + (h.(3) * r.(1)) + (h.(4) * r.(0)) in
  (* Carry propagation. *)
  let c = d0 lsr 26 in
  let d1 = d1 + c in
  h.(0) <- d0 land mask26;
  let c = d1 lsr 26 in
  let d2 = d2 + c in
  h.(1) <- d1 land mask26;
  let c = d2 lsr 26 in
  let d3 = d3 + c in
  h.(2) <- d2 land mask26;
  let c = d3 lsr 26 in
  let d4 = d4 + c in
  h.(3) <- d3 land mask26;
  let c = d4 lsr 26 in
  h.(4) <- d4 land mask26;
  h.(0) <- h.(0) + (5 * c);
  let c = h.(0) lsr 26 in
  h.(0) <- h.(0) land mask26;
  h.(1) <- h.(1) + c

let feed t src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Poly1305.feed: range out of bounds";
  let pos = ref pos and remaining = ref len in
  if t.fill > 0 then begin
    let take = min !remaining (16 - t.fill) in
    Bytes.blit src !pos t.buf t.fill take;
    t.fill <- t.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if t.fill = 16 then begin
      process t t.buf ~partial_len:0;
      t.fill <- 0
    end
  end;
  while !remaining >= 16 do
    let blk = Bytes.sub src !pos 16 in
    process t blk ~partial_len:0;
    pos := !pos + 16;
    remaining := !remaining - 16
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos t.buf t.fill !remaining;
    t.fill <- t.fill + !remaining
  end

let feed_bytes t b = feed t b ~pos:0 ~len:(Bytes.length b)

let finish t =
  if t.fill > 0 then begin
    process t t.buf ~partial_len:t.fill;
    t.fill <- 0
  end;
  let h = t.h in
  (* Full carry, then conditional subtraction of p = 2^130 - 5. *)
  let c = ref 0 in
  for i = 0 to 4 do
    h.(i) <- h.(i) + !c;
    c := h.(i) lsr 26;
    h.(i) <- h.(i) land mask26
  done;
  h.(0) <- h.(0) + (5 * !c);
  let c = h.(0) lsr 26 in
  h.(0) <- h.(0) land mask26;
  h.(1) <- h.(1) + c;
  let g = Array.make 5 0 in
  let c = ref 5 in
  for i = 0 to 4 do
    g.(i) <- h.(i) + !c;
    c := g.(i) lsr 26;
    g.(i) <- g.(i) land mask26
  done;
  (* If h + 5 overflowed 2^130, g = h - p; select it. *)
  let use_g = !c > 0 in
  let sel = if use_g then g else h in
  (* Serialise to 128 bits and add s with 32-bit carries. *)
  let w0 = sel.(0) lor (sel.(1) lsl 26) in
  let w1 = (sel.(1) lsr 6) lor (sel.(2) lsl 20) in
  let w2 = (sel.(2) lsr 12) lor (sel.(3) lsl 14) in
  let w3 = (sel.(3) lsr 18) lor (sel.(4) lsl 8) in
  let mask32 = 0xFFFFFFFF in
  let f0 = (w0 land mask32) + t.s.(0) in
  let f1 = (w1 land mask32) + t.s.(1) + (f0 lsr 32) in
  let f2 = (w2 land mask32) + t.s.(2) + (f1 lsr 32) in
  let f3 = (w3 land mask32) + t.s.(3) + (f2 lsr 32) in
  let out = Bytes.create 16 in
  let put off v =
    Bytes.set out off (Char.chr (v land 0xFF));
    Bytes.set out (off + 1) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out (off + 2) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out (off + 3) (Char.chr ((v lsr 24) land 0xFF))
  in
  put 0 f0;
  put 4 f1;
  put 8 f2;
  put 12 f3;
  out

let mac ~key msg =
  let t = init ~key in
  feed_bytes t msg;
  finish t
