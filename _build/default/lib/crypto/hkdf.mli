(** HKDF-SHA256 (RFC 5869) plus TLS-1.3-style labelled expansion. *)

val extract : ?salt:bytes -> ikm:bytes -> unit -> bytes
(** Pseudorandom key from input keying material. Default salt is 32 zero
    bytes. *)

val expand : prk:bytes -> info:bytes -> len:int -> bytes
(** Raises [Invalid_argument] if [len > 255 * 32]. *)

val derive : ?salt:bytes -> ikm:bytes -> info:bytes -> len:int -> unit -> bytes
(** [extract] then [expand]. *)

val expand_label : prk:bytes -> label:string -> context:bytes -> len:int -> bytes
(** HKDF-Expand-Label with a simulator-scoped protocol prefix. *)
