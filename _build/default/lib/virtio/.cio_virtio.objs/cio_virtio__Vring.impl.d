lib/virtio/vring.ml: Bitops Cio_mem Cio_util Int64 Region
