lib/virtio/driver_unhardened.ml: Array Bytes Cio_mem Cio_tcpip Cio_util Cost Queue Region Transport Vring
