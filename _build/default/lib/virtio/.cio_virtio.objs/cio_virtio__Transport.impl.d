lib/virtio/transport.ml: Bitops Cio_mem Cio_util Cost Region Vring
