lib/virtio/device.mli: Vring
