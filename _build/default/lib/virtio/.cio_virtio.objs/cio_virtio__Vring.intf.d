lib/virtio/vring.mli: Cio_mem Region
