lib/virtio/driver_hardened.mli: Addr Cio_frame Cio_tcpip Transport
