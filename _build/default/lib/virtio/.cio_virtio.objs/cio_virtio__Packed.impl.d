lib/virtio/packed.ml: Array Bitops Bytes Char Cio_mem Cio_util Cost Int64 List Queue Region
