lib/virtio/transport.mli: Cio_mem Cio_util Cost Region Vring
