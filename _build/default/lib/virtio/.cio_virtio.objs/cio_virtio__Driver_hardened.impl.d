lib/virtio/driver_hardened.ml: Array Bytes Cio_mem Cio_tcpip Cio_util Cost Queue Region Transport Vring
