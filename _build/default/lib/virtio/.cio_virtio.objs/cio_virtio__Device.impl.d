lib/virtio/device.ml: Buffer Bytes Char Cio_mem Int64 List Logs Queue Region Vring
