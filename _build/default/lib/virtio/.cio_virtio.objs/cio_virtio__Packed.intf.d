lib/virtio/packed.mli: Cio_mem Cio_util Cost Region
