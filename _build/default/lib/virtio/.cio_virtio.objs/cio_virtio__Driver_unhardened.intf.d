lib/virtio/driver_unhardened.mli: Addr Cio_frame Cio_tcpip Transport
