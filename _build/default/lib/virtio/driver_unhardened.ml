(* Unhardened guest virtio-net driver — the legacy baseline.

   This driver is written exactly the way pre-hardening paravirtual
   drivers were written: it assumes the device is an honest part of the
   platform. Every one of the following behaviours is a real pattern that
   the Linux hardening commits studied in Figures 3/4 had to retrofit
   away, and each is exploited by a scenario in [cio_attack]:

   - trusts [used.id] without bounds or liveness checks (spatial +
     temporal violations on completion);
   - fetches [used.len] twice — once to size the private buffer, once to
     copy — a textbook double fetch;
   - does not clamp [used.len] to the posted buffer size (adjacent-buffer
     over-read: information leak);
   - walks descriptor chains *from shared memory* with no hop bound
     (host-induced livelock);
   - frees TX slots named by the device without checking they were
     outstanding (double free / free-of-wild-slot).

   It still *works* perfectly against an honest device, which is the whole
   point of the comparison. *)

open Cio_util
open Cio_mem

exception Unbounded_work of string
(** Raised when the simulator's hop fuse trips: in a real driver this is
    an unbounded loop on the RX path. *)

type t = {
  transport : Transport.t;
  meter : Cost.meter;
  model : Cost.model;
  mutable rx_last_used : int;
  mutable tx_last_used : int;
  mutable rx_avail_next : int;
  mutable tx_avail_next : int;
  mutable tx_free : bool array;  (* slot states, trusted blindly on free *)
  rxq : bytes Queue.t;           (* frames delivered to the stack *)
  mutable kicks : int;
  mutable irqs : int;
}

let charge t cat cycles = Cost.charge t.meter cat cycles

let kick t =
  t.kicks <- t.kicks + 1;
  charge t Cost.Mmio t.model.Cost.mmio;
  charge t Cost.Notification t.model.Cost.notification

let post_rx_buffer t slot =
  let vring = Transport.rx t.transport in
  Vring.write_desc vring Guest slot
    {
      Vring.addr = Transport.rx_buf_offset t.transport slot;
      len = Transport.buf_size t.transport;
      flags = Vring.flag_write;
      next = 0;
    };
  charge t Cost.Ring (2 * t.model.Cost.ring_op);
  Vring.set_avail_entry vring Guest t.rx_avail_next slot;
  Vring.set_avail_idx vring Guest (t.rx_avail_next + 1);
  t.rx_avail_next <- (t.rx_avail_next + 1) land 0xFFFF

let create transport =
  let meter = Region.meter (Transport.region transport) in
  let model = Region.model (Transport.region transport) in
  let t =
    {
      transport;
      meter;
      model;
      rx_last_used = 0;
      tx_last_used = 0;
      rx_avail_next = 0;
      tx_avail_next = 0;
      tx_free = Array.make (Transport.queue_size transport) true;
      rxq = Queue.create ();
      kicks = 0;
      irqs = 0;
    }
  in
  (* Prime the whole RX queue with buffers, like a driver's ndo_open. *)
  for slot = 0 to Transport.queue_size transport - 1 do
    post_rx_buffer t slot
  done;
  kick t;
  t

let kicks t = t.kicks
let irqs t = t.irqs

(* TX: copy the frame into the slot's shared buffer, post a descriptor,
   kick. The copy is inherent to the bounce design; what is *missing* here
   is every check. *)
let transmit t frame =
  let vring = Transport.tx t.transport in
  let region = Transport.region t.transport in
  let len = Bytes.length frame in
  if len > Transport.buf_size t.transport then invalid_arg "transmit: frame larger than buffer"
  else begin
    (* Find a free slot (private state, but freed on the device's word). *)
    let slot = ref (-1) in
    Array.iteri (fun i free -> if free && !slot < 0 then slot := i) t.tx_free;
    match !slot with
    | -1 -> false  (* ring full *)
    | slot ->
        t.tx_free.(slot) <- false;
        let off = Transport.tx_buf_offset t.transport slot in
        (* Pre-CoCo zero-copy semantics: the posted buffer *is* the DMA
           target, so publishing it costs no bounce copy (contrast with
           the hardened driver's systematic SWIOTLB-style copy). *)
        Region.guest_write region ~off frame;
        Vring.write_desc vring Guest slot { Vring.addr = off; len; flags = 0; next = 0 };
        charge t Cost.Ring (2 * t.model.Cost.ring_op);
        Vring.set_avail_entry vring Guest t.tx_avail_next slot;
        Vring.set_avail_idx vring Guest (t.tx_avail_next + 1);
        t.tx_avail_next <- (t.tx_avail_next + 1) land 0xFFFF;
        kick t;
        true
  end

(* Reap TX completions: free whichever slot the device names. *)
let reap_tx t =
  let vring = Transport.tx t.transport in
  let used = Vring.used_idx vring Guest in
  charge t Cost.Ring t.model.Cost.ring_op;
  let progressed = used <> t.tx_last_used in
  while t.tx_last_used <> used do
    let id, _len = Vring.used_entry vring Guest t.tx_last_used in
    charge t Cost.Ring t.model.Cost.ring_op;
    (* No bounds check, no liveness check: Array.set throws on a wild id,
       modelling the memory corruption a real driver would suffer. *)
    t.tx_free.(id) <- true;
    t.tx_last_used <- (t.tx_last_used + 1) land 0xFFFF
  done;
  if progressed then begin
    t.irqs <- t.irqs + 1;
    charge t Cost.Notification t.model.Cost.notification
  end

(* Reap RX completions, unhardened. *)
let reap_rx t =
  let vring = Transport.rx t.transport in
  let region = Transport.region t.transport in
  let used = Vring.used_idx vring Guest in
  charge t Cost.Ring t.model.Cost.ring_op;
  let progressed = used <> t.rx_last_used in
  while t.rx_last_used <> used do
    (* FIRST fetch of the used entry: size a private buffer from it. *)
    let id, len1 = Vring.used_entry vring Guest t.rx_last_used in
    charge t Cost.Ring t.model.Cost.ring_op;
    let private_buf = Bytes.create len1 in
    (* SECOND fetch: the copy loop re-reads the length — double fetch. *)
    let _, len2 = Vring.used_entry vring Guest t.rx_last_used in
    (* Re-read the descriptor from *shared* memory (not the posted copy)
       and trust whatever is there now. A wild [id] indexes outside the
       descriptor table; a set NEXT flag sends us chain-walking with no
       hop bound. *)
    let rec drain_chain idx hops =
      if hops > 4096 then raise (Unbounded_work "rx descriptor chain did not terminate");
      let d = Vring.read_desc vring Guest idx in
      charge t Cost.Ring t.model.Cost.ring_op;
      if Vring.desc_has_next d then drain_chain d.Vring.next (hops + 1) else d
    in
    let d = drain_chain id 0 in
    (* Read [used.len] bytes from the buffer address with no clamp to the
       posted buffer size: a lying device makes this read the neighbour's
       buffer (information leak). Zero-copy again: the stack parses the
       DMA buffer in place, so no bounce copy is charged. *)
    let chunk = Region.guest_read region ~off:d.Vring.addr ~len:len2 in
    (* Assemble into the len1-sized buffer using len2 bytes: if the device
       raced the two fetches this blit overflows (we inherit the bounds
       error as the memory-corruption signal). *)
    Bytes.blit chunk 0 private_buf 0 (Bytes.length chunk);
    let frame = Bytes.sub private_buf 0 (min len1 (Bytes.length chunk)) in
    Queue.add frame t.rxq;
    (* Recycle the slot the device named. *)
    post_rx_buffer t id;
    t.rx_last_used <- (t.rx_last_used + 1) land 0xFFFF
  done;
  if progressed then begin
    t.irqs <- t.irqs + 1;
    charge t Cost.Notification t.model.Cost.notification
  end

let poll t =
  reap_tx t;
  reap_rx t;
  if Queue.is_empty t.rxq then None else Some (Queue.take t.rxq)

let to_netif t ~mac =
  {
    Cio_tcpip.Netif.mac;
    mtu = 1500;
    transmit = (fun frame -> ignore (transmit t frame));
    poll = (fun () -> poll t);
  }
