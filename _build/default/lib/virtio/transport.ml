(* Shared-memory layout for one virtio-net device: RX/TX rings plus two
   buffer arenas, all in a single host-shared region. *)

open Cio_util
open Cio_mem

type t = {
  region : Region.t;
  rx : Vring.t;
  tx : Vring.t;
  queue_size : int;
  buf_size : int;
  rx_buf_base : int;
  tx_buf_base : int;
}

let create ?(queue_size = 64) ?(buf_size = 2048) ?(model = Cost.default) ?meter ~name () =
  if not (Bitops.is_power_of_two queue_size) then
    invalid_arg "Transport.create: queue_size must be a power of two";
  if not (Bitops.is_power_of_two buf_size) then
    invalid_arg "Transport.create: buf_size must be a power of two";
  let ring_bytes = Bitops.align_up (Vring.bytes_needed queue_size) ~align:64 in
  let rx_base = 0 in
  let tx_base = ring_bytes in
  let rx_buf_base = 2 * ring_bytes in
  let tx_buf_base = rx_buf_base + (queue_size * buf_size) in
  let total = tx_buf_base + (queue_size * buf_size) in
  let region = Region.create ?meter ~model ~prot:Region.Shared ~name total in
  {
    region;
    rx = Vring.create ~region ~base:rx_base ~size:queue_size;
    tx = Vring.create ~region ~base:tx_base ~size:queue_size;
    queue_size;
    buf_size;
    rx_buf_base;
    tx_buf_base;
  }

let region t = t.region
let rx t = t.rx
let tx t = t.tx
let queue_size t = t.queue_size
let buf_size t = t.buf_size

let rx_buf_offset t slot = t.rx_buf_base + (slot * t.buf_size)
let tx_buf_offset t slot = t.tx_buf_base + (slot * t.buf_size)
