(** Packed virtqueue (VirtIO 1.1): the standard's second transport format,
    with its own hazard set (shared flag words, wrap-counter confusion,
    in-place completion rewrites) and correspondingly different hardening
    inventory — the §2.5 "each format has unique hardening needs"
    observation, made executable. *)

open Cio_util
open Cio_mem

val flag_avail : int
val flag_used : int
val flag_write : int

type element = { addr : int; len : int; id : int; flags : int }
type queue

val make_queue : region:Region.t -> base:int -> size:int -> queue
val read_elem : queue -> Region.actor -> int -> element
val write_elem : queue -> Region.actor -> int -> element -> unit

val is_avail : int -> wrap:bool -> bool
val is_used : int -> wrap:bool -> bool
val avail_flags : wrap:bool -> write:bool -> int
val used_flags : wrap:bool -> int

type transport

val create_transport :
  ?queue_size:int ->
  ?buf_size:int ->
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  name:string ->
  unit ->
  transport

val rx_buf_offset : transport -> int -> int
val tx_buf_offset : transport -> int -> int
val transport_region : transport -> Region.t
val transport_buf_size : transport -> int

type misbehavior =
  | P_lie_len of int
  | P_bogus_id of int
  | P_wrap_replay
  | P_premature_used
  | P_corrupt_payload

type device

val create_device : transport:transport -> transmit:(bytes -> unit) -> device
val device_inject : device -> misbehavior -> unit
val device_deliver_rx : device -> bytes -> unit
val device_poll : device -> unit
val device_tx_frames : device -> int
val device_rx_frames : device -> int

type driver

val create_driver : hardened:bool -> transport -> driver
val driver_transmit : driver -> bytes -> bool
val driver_poll : driver -> bytes option

val driver_rejects : driver -> int * int * int
(** (wrap-confusions rejected, bad ids rejected, lengths clamped). *)

val hardened_check_inventory : (string * bool) list
(** Hardening checks for the packed format; [true] marks format-unique
    checks. *)

val split_hardened_check_inventory : (string * bool) list
