(** Unhardened guest virtio-net driver: the pre-hardening legacy baseline.

    Trusts every device-written field — used ids, used lengths (fetched
    twice), live descriptor contents, chain links. Works perfectly against
    an honest device; each trusting behaviour is exploited by a scenario
    in [cio_attack]. *)

open Cio_frame

exception Unbounded_work of string

type t

val create : Transport.t -> t
(** Primes the whole RX queue with posted buffers, like ndo_open. *)

val transmit : t -> bytes -> bool
(** [false] when the TX ring is full. *)

val poll : t -> bytes option
(** Reap TX and RX completions; return the next received frame. *)

val kicks : t -> int
val irqs : t -> int

val to_netif : t -> mac:Addr.mac -> Cio_tcpip.Netif.t
