(* Host-side virtio-net device model.

   Runs entirely as the [Host] actor over the shared region: it can only
   touch shared pages, and everything it does is visible in the region
   log. A benign device forwards frames faithfully; the misbehaviour knobs
   turn it into the §2.5 interface attacker (lying used entries, raced
   descriptor fields, replayed completions, descriptor-chain loops). *)

open Cio_mem

let src = Logs.Src.create "cio.virtio.device" ~doc:"virtio device model"

module Log = (val Logs.src_log src : Logs.LOG)

type misbehavior =
  | Lie_used_len of int       (* complete next RX with this length *)
  | Bogus_used_id of int      (* complete next buffer with this id *)
  | Redirect_desc_addr of int (* after DMA, repoint the descriptor at this offset *)
  | Race_used_len of int      (* rewrite used.len between the guest's two fetches *)
  | Corrupt_payload           (* flip bytes in the completed buffer *)
  | Replay_completion         (* publish the same used entry twice *)
  | Desc_chain_loop           (* rewrite a descriptor chain into a cycle *)
  | Jump_used_idx of int      (* advance used.idx without writing entries:
                                 the driver reaps stale/zero entries *)

type stats = {
  mutable tx_frames : int;   (* guest->network frames forwarded *)
  mutable rx_frames : int;   (* network->guest frames completed *)
  mutable rx_dropped : int;
  mutable guest_faults : int;  (* guest-posted descriptors the device refused *)
}

type t = {
  rx : Vring.t;
  tx : Vring.t;
  transmit : bytes -> unit;
  mutable rx_last_avail : int;
  mutable tx_last_avail : int;
  mutable rx_used_next : int;
  mutable tx_used_next : int;
  pending_rx : bytes Queue.t;
  mutable misbehaviors : misbehavior list;  (* consumed one-shot, in order *)
  stats : stats;
  max_chain : int;
}

let create ~rx ~tx ~transmit =
  {
    rx;
    tx;
    transmit;
    rx_last_avail = 0;
    tx_last_avail = 0;
    rx_used_next = 0;
    tx_used_next = 0;
    pending_rx = Queue.create ();
    misbehaviors = [];
    stats = { tx_frames = 0; rx_frames = 0; rx_dropped = 0; guest_faults = 0 };
    max_chain = 16;
  }

let stats t = t.stats

let inject t m = t.misbehaviors <- t.misbehaviors @ [ m ]

let take_misbehavior t pred =
  let rec go acc = function
    | [] -> None
    | m :: rest when pred m ->
        t.misbehaviors <- List.rev_append acc rest;
        Some m
    | m :: rest -> go (m :: acc) rest
  in
  go [] t.misbehaviors

let deliver_rx t frame = Queue.add (Bytes.copy frame) t.pending_rx

(* Walk a descriptor chain as the device, defensively: the device also
   must not trust the guest (mutual distrust), so chains are bounded and
   faults are swallowed as guest errors. *)
let read_chain t vring head =
  let region = Vring.region vring in
  let buf = Buffer.create 2048 in
  let rec go idx hops =
    if hops > t.max_chain then None
    else begin
      let d = Vring.read_desc vring Host idx in
      match Region.host_read region ~off:d.Vring.addr ~len:d.Vring.len with
      | exception Region.Fault _ -> None
      | bytes ->
          Buffer.add_bytes buf bytes;
          if Vring.desc_has_next d then go d.Vring.next (hops + 1) else Some (Buffer.to_bytes buf)
    end
  in
  go head 0

let complete t vring ~used_next ~id ~len =
  let id =
    match take_misbehavior t (function Bogus_used_id _ -> true | _ -> false) with
    | Some (Bogus_used_id bogus) -> bogus
    | _ -> id
  in
  let len =
    match take_misbehavior t (function Lie_used_len _ -> true | _ -> false) with
    | Some (Lie_used_len lie) -> lie
    | _ -> len
  in
  Vring.set_used_entry vring Host used_next ~id ~len;
  Vring.set_used_idx vring Host (used_next + 1);
  (match take_misbehavior t (function Replay_completion -> true | _ -> false) with
  | Some Replay_completion ->
      (* Publish the same buffer a second time: a classic completion-path
         temporal violation. *)
      Vring.set_used_entry vring Host (used_next + 1) ~id ~len;
      Vring.set_used_idx vring Host (used_next + 2)
  | _ -> ())

let arm_race t vring ~used_slot =
  (* Install a guest-read hook that rewrites the used.len field the moment
     the guest first fetches it — a deterministic model of a host core
     racing the driver between its two reads. *)
  match take_misbehavior t (function Race_used_len _ -> true | _ -> false) with
  | Some (Race_used_len newlen) ->
      let region = Vring.region vring in
      let target = Vring.used_len_field_off vring used_slot in
      Region.set_guest_read_hook region
        (Some
           (fun ~off ~len:_ ->
             if off = target then begin
               Region.set_guest_read_hook region None;
               Region.write_u32 region Host ~off:target newlen
             end))
  | _ -> ()

let process_tx t =
  let vring = t.tx in
  let region = Vring.region vring in
  let avail = Vring.avail_idx vring Host in
  while t.tx_last_avail <> avail land 0xFFFF do
    let id = Vring.avail_entry vring Host t.tx_last_avail in
    (match read_chain t vring id with
    | Some frame ->
        t.stats.tx_frames <- t.stats.tx_frames + 1;
        let frame =
          match take_misbehavior t (function Corrupt_payload -> true | _ -> false) with
          | Some Corrupt_payload ->
              let f = Bytes.copy frame in
              if Bytes.length f > 14 then
                Bytes.set f 14 (Char.chr (Char.code (Bytes.get f 14) lxor 0xFF));
              f
          | _ -> frame
        in
        t.transmit frame
    | None -> t.stats.guest_faults <- t.stats.guest_faults + 1);
    complete t vring ~used_next:t.tx_used_next ~id ~len:0;
    t.tx_used_next <- (t.tx_used_next + 1) land 0xFFFF;
    t.tx_last_avail <- (t.tx_last_avail + 1) land 0xFFFF
  done;
  ignore region

let process_rx t =
  let vring = t.rx in
  let region = Vring.region vring in
  let avail = Vring.avail_idx vring Host in
  let continue = ref true in
  while !continue && (not (Queue.is_empty t.pending_rx)) && t.rx_last_avail <> avail land 0xFFFF do
    let frame = Queue.take t.pending_rx in
    let id = Vring.avail_entry vring Host t.rx_last_avail in
    let d = Vring.read_desc vring Host id in
    if not (Vring.desc_is_write d) then begin
      (* Guest posted a read-only buffer on the RX queue: refuse it. *)
      t.stats.guest_faults <- t.stats.guest_faults + 1;
      t.rx_last_avail <- (t.rx_last_avail + 1) land 0xFFFF
    end
    else begin
      let len = min (Bytes.length frame) d.Vring.len in
      let payload =
        match take_misbehavior t (function Corrupt_payload -> true | _ -> false) with
        | Some Corrupt_payload ->
            let f = Bytes.sub frame 0 len in
            if Bytes.length f > 0 then
              Bytes.set f 0 (Char.chr (Char.code (Bytes.get f 0) lxor 0xFF));
            f
        | _ -> Bytes.sub frame 0 len
      in
      (match Region.host_write region ~off:d.Vring.addr payload with
      | () ->
          t.stats.rx_frames <- t.stats.rx_frames + 1;
          (match take_misbehavior t (function Desc_chain_loop -> true | _ -> false) with
          | Some Desc_chain_loop ->
              (* Point the descriptor's NEXT at itself: a driver that
                 walks chains from shared memory spins forever. *)
              let d = Vring.read_desc vring Host id in
              Vring.write_desc vring Host id
                { d with Vring.flags = d.Vring.flags lor Vring.flag_next; next = id }
          | _ -> ());
          (match take_misbehavior t (function Redirect_desc_addr _ -> true | _ -> false) with
          | Some (Redirect_desc_addr target) ->
              (* After honest DMA, repoint the shared descriptor: a driver
                 that re-reads it copies from attacker-chosen memory. *)
              Region.write_u64 region Host ~off:(Vring.desc_addr_field_off vring id)
                (Int64.of_int target)
          | _ -> ());
          arm_race t vring ~used_slot:t.rx_used_next;
          complete t vring ~used_next:t.rx_used_next ~id ~len
      | exception Region.Fault _ ->
          t.stats.guest_faults <- t.stats.guest_faults + 1;
          t.stats.rx_dropped <- t.stats.rx_dropped + 1);
      t.rx_used_next <- (t.rx_used_next + 1) land 0xFFFF;
      t.rx_last_avail <- (t.rx_last_avail + 1) land 0xFFFF
    end;
    if Queue.is_empty t.pending_rx then continue := false
  done

let poll t =
  (match take_misbehavior t (function Jump_used_idx _ -> true | _ -> false) with
  | Some (Jump_used_idx n) ->
      (* Pure index lie on the RX used ring: no entries are written. *)
      Vring.set_used_idx t.rx Host (t.rx_used_next + n);
      t.rx_used_next <- (t.rx_used_next + n) land 0xFFFF
  | _ -> ());
  process_tx t;
  process_rx t

let pending_rx_count t = Queue.length t.pending_rx
