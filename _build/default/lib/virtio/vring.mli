(** Split virtqueue layout in simulated shared memory (descriptor table,
    avail ring, used ring), accessible from either actor. *)

open Cio_mem

val flag_next : int
val flag_write : int

type desc = { addr : int; len : int; flags : int; next : int }

val desc_has_next : desc -> bool
val desc_is_write : desc -> bool

type t

val bytes_needed : int -> int
(** Shared-memory footprint of a queue of the given size. *)

val create : region:Region.t -> base:int -> size:int -> t
val size : t -> int
val region : t -> Region.t

val write_desc : t -> Region.actor -> int -> desc -> unit
val read_desc : t -> Region.actor -> int -> desc

val avail_idx : t -> Region.actor -> int
val set_avail_idx : t -> Region.actor -> int -> unit
val avail_entry : t -> Region.actor -> int -> int
val set_avail_entry : t -> Region.actor -> int -> int -> unit

val used_idx : t -> Region.actor -> int
val set_used_idx : t -> Region.actor -> int -> unit
val used_entry : t -> Region.actor -> int -> int * int
val set_used_entry : t -> Region.actor -> int -> id:int -> len:int -> unit

(** Field offsets within the shared region (for targeted attack hooks). *)

val used_len_field_off : t -> int -> int
val desc_addr_field_off : t -> int -> int
val desc_len_field_off : t -> int -> int
