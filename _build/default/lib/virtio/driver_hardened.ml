(* Hardened guest virtio-net driver — the retrofitted-checks baseline.

   Mirrors the cumulative effect of the Linux virtio/netvsc hardening
   series the paper measures in Figures 3/4: private shadow state for
   everything the device can write, single fetches, bounds and liveness
   validation of used entries, clamped lengths, and systematic bounce
   copies. The price is exactly what §2.5 predicts: more checks and more
   copies on every operation, charged to the meter so E3 can report the
   hardening tax. *)

open Cio_util
open Cio_mem

type posted = { p_addr : int; p_len : int }

type reject_stats = {
  mutable bad_id : int;
  mutable not_outstanding : int;
  mutable len_clamped : int;
  mutable runt : int;  (* completions shorter than a minimal frame *)
}

type t = {
  transport : Transport.t;
  meter : Cost.meter;
  model : Cost.model;
  mutable rx_last_used : int;
  mutable tx_last_used : int;
  mutable rx_avail_next : int;
  mutable tx_avail_next : int;
  rx_shadow : posted option array;  (* private copy of what we posted *)
  tx_shadow : posted option array;
  tx_free : int Queue.t;
  rxq : bytes Queue.t;
  rejects : reject_stats;
  mutable kicks : int;
  mutable irqs : int;
}

let charge t cat cycles = Cost.charge t.meter cat cycles

let kick t =
  t.kicks <- t.kicks + 1;
  charge t Cost.Mmio t.model.Cost.mmio;
  charge t Cost.Notification t.model.Cost.notification

let post_rx_buffer t slot =
  let vring = Transport.rx t.transport in
  let addr = Transport.rx_buf_offset t.transport slot in
  let len = Transport.buf_size t.transport in
  Vring.write_desc vring Guest slot { Vring.addr; len; flags = Vring.flag_write; next = 0 };
  t.rx_shadow.(slot) <- Some { p_addr = addr; p_len = len };
  charge t Cost.Ring (2 * t.model.Cost.ring_op);
  Vring.set_avail_entry vring Guest t.rx_avail_next slot;
  Vring.set_avail_idx vring Guest (t.rx_avail_next + 1);
  t.rx_avail_next <- (t.rx_avail_next + 1) land 0xFFFF

let create transport =
  let queue_size = Transport.queue_size transport in
  let t =
    {
      transport;
      meter = Region.meter (Transport.region transport);
      model = Region.model (Transport.region transport);
      rx_last_used = 0;
      tx_last_used = 0;
      rx_avail_next = 0;
      tx_avail_next = 0;
      rx_shadow = Array.make queue_size None;
      tx_shadow = Array.make queue_size None;
      tx_free = Queue.create ();
      rxq = Queue.create ();
      rejects = { bad_id = 0; not_outstanding = 0; len_clamped = 0; runt = 0 };
      kicks = 0;
      irqs = 0;
    }
  in
  for slot = 0 to queue_size - 1 do
    post_rx_buffer t slot;
    Queue.add slot t.tx_free
  done;
  kick t;
  t

let kicks t = t.kicks
let irqs t = t.irqs
let rejects t = t.rejects

let valid_id t id =
  charge t Cost.Check t.model.Cost.check;
  id >= 0 && id < Transport.queue_size t.transport

let transmit t frame =
  let vring = Transport.tx t.transport in
  let region = Transport.region t.transport in
  let len = Bytes.length frame in
  if len > Transport.buf_size t.transport then invalid_arg "transmit: frame larger than buffer"
  else if Queue.is_empty t.tx_free then false
  else begin
    let slot = Queue.take t.tx_free in
    let off = Transport.tx_buf_offset t.transport slot in
    (* Bounce copy into shared memory. *)
    Region.copy_out region ~off frame;
    Vring.write_desc vring Guest slot { Vring.addr = off; len; flags = 0; next = 0 };
    t.tx_shadow.(slot) <- Some { p_addr = off; p_len = len };
    charge t Cost.Ring (2 * t.model.Cost.ring_op);
    Vring.set_avail_entry vring Guest t.tx_avail_next slot;
    Vring.set_avail_idx vring Guest (t.tx_avail_next + 1);
    t.tx_avail_next <- (t.tx_avail_next + 1) land 0xFFFF;
    kick t;
    true
  end

let reap_tx t =
  let vring = Transport.tx t.transport in
  let used = Vring.used_idx vring Guest in
  charge t Cost.Ring t.model.Cost.ring_op;
  let progressed = used <> t.tx_last_used in
  while t.tx_last_used <> used do
    (* Single fetch of the used entry into private state. *)
    let id, _len = Vring.used_entry vring Guest t.tx_last_used in
    charge t Cost.Ring t.model.Cost.ring_op;
    if not (valid_id t id) then t.rejects.bad_id <- t.rejects.bad_id + 1
    else begin
      charge t Cost.Check t.model.Cost.check;
      match t.tx_shadow.(id) with
      | None -> t.rejects.not_outstanding <- t.rejects.not_outstanding + 1
      | Some _ ->
          t.tx_shadow.(id) <- None;
          Queue.add id t.tx_free
    end;
    t.tx_last_used <- (t.tx_last_used + 1) land 0xFFFF
  done;
  if progressed then begin
    t.irqs <- t.irqs + 1;
    charge t Cost.Notification t.model.Cost.notification
  end

let reap_rx t =
  let vring = Transport.rx t.transport in
  let region = Transport.region t.transport in
  let used = Vring.used_idx vring Guest in
  charge t Cost.Ring t.model.Cost.ring_op;
  let progressed = used <> t.rx_last_used in
  while t.rx_last_used <> used do
    let id, len = Vring.used_entry vring Guest t.rx_last_used in
    charge t Cost.Ring t.model.Cost.ring_op;
    if not (valid_id t id) then t.rejects.bad_id <- t.rejects.bad_id + 1
    else begin
      charge t Cost.Check t.model.Cost.check;
      match t.rx_shadow.(id) with
      | None ->
          (* Replayed or spurious completion: reject (temporal safety). *)
          t.rejects.not_outstanding <- t.rejects.not_outstanding + 1
      | Some posted ->
          t.rx_shadow.(id) <- None;
          (* Clamp the device-claimed length to what we actually posted,
             reject runt completions (shorter than any valid frame), and
             copy from the *shadow* address, never the live desc. *)
          charge t Cost.Check (2 * t.model.Cost.check);
          let safe_len = min len posted.p_len in
          if safe_len < len then t.rejects.len_clamped <- t.rejects.len_clamped + 1;
          if safe_len = 0 then t.rejects.runt <- t.rejects.runt + 1
          else begin
            let frame = Region.copy_in region ~off:posted.p_addr ~len:safe_len in
            Queue.add frame t.rxq
          end;
          post_rx_buffer t id
    end;
    t.rx_last_used <- (t.rx_last_used + 1) land 0xFFFF
  done;
  if progressed then begin
    t.irqs <- t.irqs + 1;
    charge t Cost.Notification t.model.Cost.notification
  end

let poll t =
  reap_tx t;
  reap_rx t;
  if Queue.is_empty t.rxq then None else Some (Queue.take t.rxq)

let to_netif t ~mac =
  {
    Cio_tcpip.Netif.mac;
    mtu = 1500;
    transmit = (fun frame -> ignore (transmit t frame));
    poll = (fun () -> poll t);
  }
