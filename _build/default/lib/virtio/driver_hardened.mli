(** Hardened guest virtio-net driver: the retrofitted-checks baseline of
    Figures 3/4. Private shadow state, single fetches, id/liveness
    validation, clamped lengths, systematic bounce copies — and the
    corresponding per-operation cost. *)

open Cio_frame

type reject_stats = {
  mutable bad_id : int;
  mutable not_outstanding : int;
  mutable len_clamped : int;
  mutable runt : int;
}

type t

val create : Transport.t -> t
val transmit : t -> bytes -> bool
val poll : t -> bytes option
val kicks : t -> int
val irqs : t -> int
val rejects : t -> reject_stats
val to_netif : t -> mac:Addr.mac -> Cio_tcpip.Netif.t
