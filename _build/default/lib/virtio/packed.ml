(* Packed virtqueue (VirtIO 1.1 §2.8) — the second transport format the
   standard supports, included because §2.5 observes that each format has
   *unique* hardening needs.

   One descriptor ring per queue; each 16-byte element carries
   { addr:u64, len:u32, id:u16, flags:u16 } and is written by BOTH sides:
   the driver publishes a buffer by setting the AVAIL bit to its wrap
   counter (and USED to the inverse); the device consumes it and republishes
   the element with its own id/len and both bits set to the device's wrap
   counter. Compared to the split format this halves the shared-memory
   footprint and touches one cacheline per descriptor — and creates
   hazards the split format does not have:

   - driver- and device-owned state share a word (flags), so ownership is
     a *convention*, not a layout property;
   - progress is governed by wrap counters, so a device that replays a
     stale element from the previous lap forges "fresh" availability
     (wrap confusion);
   - the element is rewritten in place on completion, so the posted
     addr/len are gone unless the driver shadowed them — re-reading the
     element is inherently reading device output.

   The unhardened driver below trusts in-place state exactly the way the
   split unhardened driver does; the hardened driver needs a *different*
   check inventory (wrap-counter tracking, per-lap id liveness, shadowed
   addr/len) — which is the paper's point. *)

open Cio_util
open Cio_mem

let flag_avail = 1 lsl 7
let flag_used = 1 lsl 15
let flag_write = 1 lsl 1

type element = { addr : int; len : int; id : int; flags : int }

type queue = {
  region : Region.t;
  base : int;
  size : int;  (* power of two *)
}

let elem_bytes = 16

let queue_footprint size = size * elem_bytes

let make_queue ~region ~base ~size =
  if not (Bitops.is_power_of_two size) then
    invalid_arg "Packed.make_queue: size must be a power of two";
  { region; base; size }

let elem_off q i = q.base + (elem_bytes * i)

let read_elem q actor i =
  let off = elem_off q i in
  {
    addr = Int64.to_int (Region.read_u64 q.region actor ~off);
    len = Region.read_u32 q.region actor ~off:(off + 8);
    id = Region.read_u16 q.region actor ~off:(off + 12);
    flags = Region.read_u16 q.region actor ~off:(off + 14);
  }

let write_elem q actor i (e : element) =
  let off = elem_off q i in
  Region.write_u64 q.region actor ~off (Int64.of_int e.addr);
  Region.write_u32 q.region actor ~off:(off + 8) e.len;
  Region.write_u16 q.region actor ~off:(off + 12) e.id;
  Region.write_u16 q.region actor ~off:(off + 14) e.flags

(* Availability predicate (VirtIO 1.1 §2.8.1): an element is available to
   the consumer with wrap counter [wrap] when AVAIL = wrap and USED != wrap. *)
let is_avail flags ~wrap =
  let a = flags land flag_avail <> 0 and u = flags land flag_used <> 0 in
  a = wrap && u <> wrap

let is_used flags ~wrap =
  let a = flags land flag_avail <> 0 and u = flags land flag_used <> 0 in
  a = wrap && u = wrap

let avail_flags ~wrap ~write =
  (if wrap then flag_avail else 0)
  lor (if not wrap then flag_used else 0)
  lor if write then flag_write else 0

let used_flags ~wrap = (if wrap then flag_avail lor flag_used else 0)

(* --- transport layout -------------------------------------------------- *)

type transport = {
  region : Region.t;
  rx : queue;
  tx : queue;
  queue_size : int;
  buf_size : int;
  rx_buf_base : int;
  tx_buf_base : int;
}

let create_transport ?(queue_size = 64) ?(buf_size = 2048) ?(model = Cost.default) ?meter ~name () =
  if not (Bitops.is_power_of_two queue_size) then
    invalid_arg "Packed.create_transport: queue_size must be a power of two";
  let ring_bytes = Bitops.align_up (queue_footprint queue_size) ~align:64 in
  let rx_base = 0 and tx_base = ring_bytes in
  let rx_buf_base = 2 * ring_bytes in
  let tx_buf_base = rx_buf_base + (queue_size * buf_size) in
  let total = tx_buf_base + (queue_size * buf_size) in
  let region = Region.create ?meter ~model ~prot:Region.Shared ~name total in
  {
    region;
    rx = make_queue ~region ~base:rx_base ~size:queue_size;
    tx = make_queue ~region ~base:tx_base ~size:queue_size;
    queue_size;
    buf_size;
    rx_buf_base;
    tx_buf_base;
  }

let rx_buf_offset t slot = t.rx_buf_base + (slot * t.buf_size)
let tx_buf_offset t slot = t.tx_buf_base + (slot * t.buf_size)
let transport_region t = t.region
let transport_buf_size t = t.buf_size

(* --- host-side device model -------------------------------------------- *)

type misbehavior =
  | P_lie_len of int        (* complete RX with this length *)
  | P_bogus_id of int       (* complete with this buffer id *)
  | P_wrap_replay           (* republish the previous used element verbatim:
                               with the right timing it forges availability
                               on the next lap (wrap confusion) *)
  | P_premature_used        (* mark used before writing the data *)
  | P_corrupt_payload

type device = {
  dt : transport;
  transmit : bytes -> unit;
  mutable rx_next : int;  (* device-side ring cursors *)
  mutable tx_next : int;
  mutable rx_wrap : bool;
  mutable tx_wrap : bool;
  pending_rx : bytes Queue.t;
  mutable dmis : misbehavior list;
  mutable dev_tx_frames : int;
  mutable dev_rx_frames : int;
  mutable dev_faults : int;
  mutable last_used : (int * element) option;
}

let create_device ~transport ~transmit =
  {
    dt = transport;
    transmit;
    rx_next = 0;
    tx_next = 0;
    rx_wrap = true;
    tx_wrap = true;
    pending_rx = Queue.create ();
    dmis = [];
    dev_tx_frames = 0;
    dev_rx_frames = 0;
    dev_faults = 0;
    last_used = None;
  }

let device_inject d m = d.dmis <- d.dmis @ [ m ]
let device_deliver_rx d frame = Queue.add (Bytes.copy frame) d.pending_rx
let device_tx_frames d = d.dev_tx_frames
let device_rx_frames d = d.dev_rx_frames

let dtake d pred =
  let rec go acc = function
    | [] -> None
    | m :: rest when pred m ->
        d.dmis <- List.rev_append acc rest;
        Some m
    | m :: rest -> go (m :: acc) rest
  in
  go [] d.dmis

let advance_device_cursor d ~tx =
  if tx then begin
    d.tx_next <- d.tx_next + 1;
    if d.tx_next = d.dt.queue_size then begin
      d.tx_next <- 0;
      d.tx_wrap <- not d.tx_wrap
    end
  end
  else begin
    d.rx_next <- d.rx_next + 1;
    if d.rx_next = d.dt.queue_size then begin
      d.rx_next <- 0;
      d.rx_wrap <- not d.rx_wrap
    end
  end

let device_complete d q slot ~id ~len ~wrap =
  let id = match dtake d (function P_bogus_id _ -> true | _ -> false) with
    | Some (P_bogus_id b) -> b
    | _ -> id
  in
  let len = match dtake d (function P_lie_len _ -> true | _ -> false) with
    | Some (P_lie_len l) -> l
    | _ -> len
  in
  let e = { addr = 0; len; id; flags = used_flags ~wrap } in
  write_elem q Host slot e;
  (match dtake d (function P_wrap_replay -> true | _ -> false) with
  | Some P_wrap_replay ->
      (* Republish a used element verbatim into the *next* slot: a stale
         element whose flag bits satisfy a wrap-unaware driver's
         completion check, making it swallow a phantom completion. *)
      let stale = match d.last_used with Some (_, prev) -> prev | None -> e in
      write_elem q Host ((slot + 1) land (d.dt.queue_size - 1)) stale
  | _ -> ());
  d.last_used <- Some (slot, e)

let device_poll d =
  (* TX: consume driver-published elements. *)
  let continue = ref true in
  while !continue do
    let e = read_elem d.dt.tx Host d.tx_next in
    if is_avail e.flags ~wrap:d.tx_wrap then begin
      (match Region.host_read d.dt.region ~off:e.addr ~len:e.len with
      | frame ->
          d.dev_tx_frames <- d.dev_tx_frames + 1;
          d.transmit frame
      | exception Region.Fault _ -> d.dev_faults <- d.dev_faults + 1);
      let slot = d.tx_next and wrap = d.tx_wrap in
      advance_device_cursor d ~tx:true;
      device_complete d d.dt.tx slot ~id:e.id ~len:0 ~wrap
    end
    else continue := false
  done;
  (* RX: fill driver-posted writable buffers with pending frames. *)
  let continue = ref true in
  while !continue && not (Queue.is_empty d.pending_rx) do
    let e = read_elem d.dt.rx Host d.rx_next in
    if is_avail e.flags ~wrap:d.rx_wrap then begin
      let frame = Queue.take d.pending_rx in
      let frame =
        match dtake d (function P_corrupt_payload -> true | _ -> false) with
        | Some P_corrupt_payload ->
            let f = Bytes.copy frame in
            if Bytes.length f > 0 then Bytes.set f 0 (Char.chr (Char.code (Bytes.get f 0) lxor 0xFF));
            f
        | _ -> frame
      in
      let len = min (Bytes.length frame) e.len in
      let premature = dtake d (function P_premature_used -> true | _ -> false) <> None in
      let slot = d.rx_next and wrap = d.rx_wrap in
      advance_device_cursor d ~tx:false;
      if premature then
        (* Publish used *before* the DMA lands: the driver that reads on
           seeing USED observes whatever stale bytes the buffer held (the
           real frame arrives too late to matter — modelled by never
           landing it). A temporal/ordering violation unique to formats
           where completion and data share no barrier discipline. *)
        device_complete d d.dt.rx slot ~id:e.id ~len ~wrap
      else begin
        match Region.host_write d.dt.region ~off:e.addr (Bytes.sub frame 0 len) with
        | () ->
            d.dev_rx_frames <- d.dev_rx_frames + 1;
            device_complete d d.dt.rx slot ~id:e.id ~len ~wrap
        | exception Region.Fault _ -> d.dev_faults <- d.dev_faults + 1
      end
    end
    else continue := false
  done

(* --- guest drivers ------------------------------------------------------ *)

type posted = { p_addr : int; p_len : int }

type driver = {
  gt : transport;
  hardened : bool;
  meter : Cost.meter;
  model : Cost.model;
  mutable g_rx_next : int;
  mutable g_tx_next : int;
  mutable g_rx_wrap : bool;  (* wrap counter for publishing RX buffers *)
  mutable g_tx_wrap : bool;
  mutable g_rx_used_next : int;  (* where we expect the next completion *)
  mutable g_tx_used_next : int;
  mutable g_rx_used_wrap : bool;
  mutable g_tx_used_wrap : bool;
  rx_shadow : posted option array;  (* hardened: posted addr/len by slot *)
  tx_shadow : posted option array;
  rxq : bytes Queue.t;
  mutable rejects_wrap : int;   (* hardened: wrap-confusion rejected *)
  mutable rejects_id : int;
  mutable clamped : int;
}

let charge dr cat cycles = Cost.charge dr.meter cat cycles

let post_rx dr slot =
  let addr = rx_buf_offset dr.gt slot and len = dr.gt.buf_size in
  write_elem dr.gt.rx Guest slot
    { addr; len; id = slot; flags = avail_flags ~wrap:dr.g_rx_wrap ~write:true };
  if dr.hardened then dr.rx_shadow.(slot) <- Some { p_addr = addr; p_len = len };
  charge dr Cost.Ring dr.model.Cost.ring_op;
  dr.g_rx_next <- dr.g_rx_next + 1;
  if dr.g_rx_next = dr.gt.queue_size then begin
    dr.g_rx_next <- 0;
    dr.g_rx_wrap <- not dr.g_rx_wrap
  end

let create_driver ~hardened transport =
  let dr =
    {
      gt = transport;
      hardened;
      meter = Region.meter transport.region;
      model = Region.model transport.region;
      g_rx_next = 0;
      g_tx_next = 0;
      g_rx_wrap = true;
      g_tx_wrap = true;
      g_rx_used_next = 0;
      g_tx_used_next = 0;
      g_rx_used_wrap = true;
      g_tx_used_wrap = true;
      rx_shadow = Array.make transport.queue_size None;
      tx_shadow = Array.make transport.queue_size None;
      rxq = Queue.create ();
      rejects_wrap = 0;
      rejects_id = 0;
      clamped = 0;
    }
  in
  for _ = 0 to transport.queue_size - 1 do
    post_rx dr dr.g_rx_next
  done;
  dr

let driver_rejects dr = (dr.rejects_wrap, dr.rejects_id, dr.clamped)

let driver_transmit dr frame =
  let len = Bytes.length frame in
  if len > dr.gt.buf_size then invalid_arg "Packed.driver_transmit: frame too large";
  let slot = dr.g_tx_next in
  (* Check the slot has been consumed (its element shows used for the
     previous lap, or we have not wrapped yet). The unhardened check
     trusts the in-place flags blindly; the hardened driver additionally
     requires the id to match its shadow discipline. *)
  let e = read_elem dr.gt.tx Guest slot in
  charge dr Cost.Ring dr.model.Cost.ring_op;
  let free =
    (* On the first lap every element is zeroed = free. Afterwards it must
       show used with our previous wrap. *)
    e.flags = 0 || is_used e.flags ~wrap:(not dr.g_tx_wrap) || is_used e.flags ~wrap:dr.g_tx_wrap
  in
  if not free then false
  else begin
    let addr = tx_buf_offset dr.gt slot in
    Region.guest_write dr.gt.region ~off:addr frame;
    if dr.hardened then begin
      Region.copy_out dr.gt.region ~off:addr frame;  (* bounce-style copy *)
      dr.tx_shadow.(slot) <- Some { p_addr = addr; p_len = len }
    end;
    write_elem dr.gt.tx Guest slot { addr; len; id = slot; flags = avail_flags ~wrap:dr.g_tx_wrap ~write:false };
    charge dr Cost.Ring dr.model.Cost.ring_op;
    dr.g_tx_next <- dr.g_tx_next + 1;
    if dr.g_tx_next = dr.gt.queue_size then begin
      dr.g_tx_next <- 0;
      dr.g_tx_wrap <- not dr.g_tx_wrap
    end;
    true
  end

let driver_poll dr =
  (* Reap RX completions at the expected cursor. *)
  let e = read_elem dr.gt.rx Guest dr.g_rx_used_next in
  charge dr Cost.Ring dr.model.Cost.ring_op;
  if not (is_used e.flags ~wrap:dr.g_rx_used_wrap) then begin
    (* Hardened: a stale republished element from a previous lap would
       show used for the WRONG wrap value; the unhardened driver checks
       only the bits, not the lap, so a wrap replay can fool it. *)
    if (not dr.hardened) && is_used e.flags ~wrap:(not dr.g_rx_used_wrap) && e.len > 0 then begin
      (* Unhardened wrap confusion: accept the stale element. *)
      let chunk = Region.guest_read dr.gt.region ~off:(rx_buf_offset dr.gt (e.id land 0xFFFF)) ~len:(min e.len dr.gt.buf_size) in
      Queue.add chunk dr.rxq
    end;
    if Queue.is_empty dr.rxq then None else Some (Queue.take dr.rxq)
  end
  else begin
    let slot = dr.g_rx_used_next in
    dr.g_rx_used_next <- dr.g_rx_used_next + 1;
    if dr.g_rx_used_next = dr.gt.queue_size then begin
      dr.g_rx_used_next <- 0;
      dr.g_rx_used_wrap <- not dr.g_rx_used_wrap
    end;
    let frame =
      if dr.hardened then begin
        charge dr Cost.Check (2 * dr.model.Cost.check);
        (* Validate the id against this lap's shadow and clamp the length
           to what was actually posted; read from the shadow address. *)
        if e.id < 0 || e.id >= dr.gt.queue_size then begin
          dr.rejects_id <- dr.rejects_id + 1;
          None
        end
        else begin
          match dr.rx_shadow.(e.id) with
          | None ->
              dr.rejects_id <- dr.rejects_id + 1;
              None
          | Some p ->
              dr.rx_shadow.(e.id) <- None;
              let len = min e.len p.p_len in
              if len < e.len then dr.clamped <- dr.clamped + 1;
              Some (Region.copy_in dr.gt.region ~off:p.p_addr ~len)
        end
      end
      else begin
        (* Unhardened: trust id and len as published by the device. *)
        let off = rx_buf_offset dr.gt e.id in
        Some (Region.guest_read dr.gt.region ~off ~len:e.len)
      end
    in
    (match frame with Some f -> Queue.add f dr.rxq | None -> ());
    (* Recycle the slot. *)
    post_rx dr slot;
    if Queue.is_empty dr.rxq then None else Some (Queue.take dr.rxq)
  end

(* The hardened packed driver's check inventory, for the E15 comparison:
   checks that exist *only because of the packed format* are marked. *)
let hardened_check_inventory =
  [
    ("bounds-check completion id", false);
    ("liveness-check id against shadow", false);
    ("clamp completion length to posted", false);
    ("read via shadowed addr, not in-place element", true);
    ("track wrap counters; reject stale-lap elements", true);
    ("treat in-place flags as device output after publish", true);
  ]

let split_hardened_check_inventory =
  [
    ("bounds-check used.id", false);
    ("liveness-check id against shadow", false);
    ("clamp used.len to posted", false);
    ("single-fetch used entries", true);
    ("never walk descriptor chains from shared memory", true);
  ]
