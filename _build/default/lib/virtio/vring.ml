(* Split virtqueue layout (VirtIO 1.x "legacy" split format), bit-accurate
   in simulated shared memory.

   Layout at [base] for a queue of [size] entries (size a power of two):

     descriptor table   size * 16 B   { addr:u64, len:u32, flags:u16, next:u16 }
     avail ring         4 + size*2 B  { flags:u16, idx:u16, ring:[u16] }
     used ring          4 + size*8 B  { flags:u16, idx:u16, ring:[{id:u32, len:u32}] }

   Descriptor [addr] fields are offsets into the queue's buffer space (the
   simulator's stand-in for guest-physical addresses). Both actors access
   the structure through [Region], so every read/write is logged,
   protection-checked and double-fetch-trackable — which is exactly where
   the paper locates the interface-vulnerability surface of this design. *)

open Cio_util
open Cio_mem

let flag_next = 0x1
let flag_write = 0x2

type desc = { addr : int; len : int; flags : int; next : int }

let desc_has_next d = d.flags land flag_next <> 0
let desc_is_write d = d.flags land flag_write <> 0

type t = {
  region : Region.t;
  base : int;
  size : int;
  desc_off : int;
  avail_off : int;
  used_off : int;
}

let bytes_needed size = (size * 16) + (4 + (size * 2)) + (4 + (size * 8)) + 8

let create ~region ~base ~size =
  if not (Bitops.is_power_of_two size) then invalid_arg "Vring.create: size must be a power of two";
  let desc_off = base in
  let avail_off = desc_off + (size * 16) in
  let used_off = Bitops.align_up (avail_off + 4 + (size * 2)) ~align:4 in
  if used_off + 4 + (size * 8) > Region.size region then
    invalid_arg "Vring.create: ring does not fit in region";
  { region; base; size; desc_off; avail_off; used_off }

let size t = t.size
let region t = t.region

(* Deliberately *not* wrapped: a descriptor index is data (a buffer id),
   not a ring position. An out-of-range id computes an out-of-range offset
   and the region decides what that means — exactly the hazard unhardened
   drivers face. Ring positions (avail/used slots) below *are* wrapped,
   because those are free-running counters by contract. *)
let desc_slot t i = t.desc_off + (16 * i)

(* Descriptor accessors. The [actor] parameter matters: guest writes
   descriptors, the device reads them — and a malicious device-side actor
   may also *write* them, which the region log captures. *)

let write_desc t actor i (d : desc) =
  let off = desc_slot t i in
  Region.write_u64 t.region actor ~off (Int64.of_int d.addr);
  Region.write_u32 t.region actor ~off:(off + 8) d.len;
  Region.write_u16 t.region actor ~off:(off + 12) d.flags;
  Region.write_u16 t.region actor ~off:(off + 14) d.next

let read_desc t actor i =
  let off = desc_slot t i in
  {
    addr = Int64.to_int (Region.read_u64 t.region actor ~off);
    len = Region.read_u32 t.region actor ~off:(off + 8);
    flags = Region.read_u16 t.region actor ~off:(off + 12);
    next = Region.read_u16 t.region actor ~off:(off + 14);
  }

(* Avail ring: written by the guest, read by the device. *)

let avail_idx t actor = Region.read_u16 t.region actor ~off:(t.avail_off + 2)

let set_avail_idx t actor v = Region.write_u16 t.region actor ~off:(t.avail_off + 2) (v land 0xFFFF)

let avail_entry t actor slot =
  Region.read_u16 t.region actor ~off:(t.avail_off + 4 + (2 * (slot land (t.size - 1))))

let set_avail_entry t actor slot v =
  Region.write_u16 t.region actor ~off:(t.avail_off + 4 + (2 * (slot land (t.size - 1)))) v

(* Used ring: written by the device, read by the guest. *)

let used_idx t actor = Region.read_u16 t.region actor ~off:(t.used_off + 2)

let set_used_idx t actor v = Region.write_u16 t.region actor ~off:(t.used_off + 2) (v land 0xFFFF)

let used_entry t actor slot =
  let off = t.used_off + 4 + (8 * (slot land (t.size - 1))) in
  let id = Region.read_u32 t.region actor ~off in
  let len = Region.read_u32 t.region actor ~off:(off + 4) in
  (id, len)

(* Field offsets, for precisely targeted attack hooks. *)
let used_len_field_off t slot = t.used_off + 4 + (8 * (slot land (t.size - 1))) + 4
let desc_addr_field_off t i = desc_slot t i
let desc_len_field_off t i = desc_slot t i + 8

let set_used_entry t actor slot ~id ~len =
  let off = t.used_off + 4 + (8 * (slot land (t.size - 1))) in
  Region.write_u32 t.region actor ~off id;
  Region.write_u32 t.region actor ~off:(off + 4) len
