(** Host-side virtio-net device model with §2.5-style misbehaviour knobs.

    Operates strictly as the [Host] actor: it can only touch shared pages
    and all accesses land in the region log. *)

type misbehavior =
  | Lie_used_len of int
  | Bogus_used_id of int
  | Redirect_desc_addr of int
  | Race_used_len of int
  | Corrupt_payload
  | Replay_completion
  | Desc_chain_loop
  | Jump_used_idx of int

type stats = {
  mutable tx_frames : int;
  mutable rx_frames : int;
  mutable rx_dropped : int;
  mutable guest_faults : int;
}

type t

val create : rx:Vring.t -> tx:Vring.t -> transmit:(bytes -> unit) -> t
val stats : t -> stats

val inject : t -> misbehavior -> unit
(** Queue a one-shot misbehaviour, applied at the next matching point. *)

val deliver_rx : t -> bytes -> unit
(** Hand the device a frame arriving from the network. *)

val poll : t -> unit
(** Process TX submissions and complete RX buffers. *)

val pending_rx_count : t -> int
