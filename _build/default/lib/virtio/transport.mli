(** Shared-memory layout for a virtio-net device: two rings and two
    per-slot buffer arenas in one host-shared region. *)

open Cio_util
open Cio_mem

type t

val create :
  ?queue_size:int ->
  ?buf_size:int ->
  ?model:Cost.model ->
  ?meter:Cost.meter ->
  name:string ->
  unit ->
  t

val region : t -> Region.t
val rx : t -> Vring.t
val tx : t -> Vring.t
val queue_size : t -> int
val buf_size : t -> int

val rx_buf_offset : t -> int -> int
val tx_buf_offset : t -> int -> int
