(** Polling network interface provided by a driver to the stack. *)

open Cio_frame

type t = {
  mac : Addr.mac;
  mtu : int;
  transmit : bytes -> unit;
  poll : unit -> bytes option;
}

val loopback_pair : mac_a:Addr.mac -> mac_b:Addr.mac -> mtu:int -> t * t
(** Two interfaces cross-wired through in-memory queues (for tests). *)
