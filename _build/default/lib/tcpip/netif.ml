(* Driver-facing network interface.

   The stack is strictly polling-driven — the paper's "no notifications"
   principle — so a netif exposes [poll] rather than an RX callback. Any
   driver (virtio baseline, cionet, loopback) plugs in by providing this
   record. *)

open Cio_frame

type t = {
  mac : Addr.mac;
  mtu : int;
  transmit : bytes -> unit;     (* raw Ethernet frame out *)
  poll : unit -> bytes option;  (* next received raw Ethernet frame, if any *)
}

let loopback_pair ~mac_a ~mac_b ~mtu =
  (* Two interfaces wired back-to-back through in-memory queues; used by
     tests to exercise the stack without any driver or simulator. *)
  let qa = Queue.create () and qb = Queue.create () in
  let mk mac inbox outbox =
    {
      mac;
      mtu;
      transmit = (fun frame -> Queue.add (Bytes.copy frame) outbox);
      poll = (fun () -> if Queue.is_empty inbox then None else Some (Queue.take inbox));
    }
  in
  (mk mac_a qa qb, mk mac_b qb qa)
