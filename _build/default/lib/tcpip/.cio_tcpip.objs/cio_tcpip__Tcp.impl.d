lib/tcpip/tcp.ml: Addr Buffer Bytes Cio_frame Cio_util Cost Int64 List Logs Rng Tcp_wire
