lib/tcpip/netif.mli: Addr Cio_frame
