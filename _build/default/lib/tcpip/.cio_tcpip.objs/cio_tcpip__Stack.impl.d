lib/tcpip/stack.ml: Addr Cio_frame Cio_util Cost Ethernet Ipv4 Lazy List Logs Netif Queue Tcp Tcp_wire Udp
