lib/tcpip/stack.mli: Addr Cio_frame Cio_util Cost Netif Rng Tcp
