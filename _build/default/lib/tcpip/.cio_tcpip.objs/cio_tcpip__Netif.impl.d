lib/tcpip/netif.ml: Addr Bytes Cio_frame Queue
