lib/tcpip/tcp.mli: Addr Cio_frame Cio_util Cost Rng Tcp_wire
