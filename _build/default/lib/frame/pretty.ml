(* One-line human-readable frame decoding, for traces, demos and
   debugging: ethernet -> ipv4 -> tcp/udp, falling back gracefully on
   anything unparseable (which, on a confidential wire, is most bytes). *)

let tcp_summary ~src_ip ~dst_ip payload =
  match Tcp_wire.parse ~src_ip ~dst_ip payload with
  | Error e -> Printf.sprintf "tcp? (%s)" e
  | Ok seg ->
      Fmt.str "%a:%d > %a:%d [%a] seq=%lu ack=%lu win=%d len=%d" Addr.pp_ipv4 src_ip
        seg.Tcp_wire.src_port Addr.pp_ipv4 dst_ip seg.Tcp_wire.dst_port Tcp_wire.pp_flags
        seg.Tcp_wire.flags seg.Tcp_wire.seq seg.Tcp_wire.ack seg.Tcp_wire.window
        (Bytes.length seg.Tcp_wire.payload)

let udp_summary ~src_ip ~dst_ip payload =
  match Udp.parse ~src_ip ~dst_ip payload with
  | Error e -> Printf.sprintf "udp? (%s)" e
  | Ok dgram ->
      Fmt.str "%a:%d > %a:%d udp len=%d" Addr.pp_ipv4 src_ip dgram.Udp.src_port Addr.pp_ipv4
        dst_ip dgram.Udp.dst_port
        (Bytes.length dgram.Udp.payload)

let ip_summary payload =
  match Ipv4.parse payload with
  | Error e -> Printf.sprintf "ipv4? (%s)" e
  | Ok ip -> (
      match ip.Ipv4.protocol with
      | Ipv4.Tcp -> tcp_summary ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ip.Ipv4.payload
      | Ipv4.Udp -> udp_summary ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ip.Ipv4.payload
      | Ipv4.Unknown p ->
          Fmt.str "%a > %a proto=%d len=%d" Addr.pp_ipv4 ip.Ipv4.src Addr.pp_ipv4 ip.Ipv4.dst p
            (Bytes.length ip.Ipv4.payload))

let frame_summary frame =
  match Ethernet.parse frame with
  | Error _ -> Printf.sprintf "opaque %d B (not an ethernet frame)" (Bytes.length frame)
  | Ok eth -> (
      match eth.Ethernet.ethertype with
      | Ethernet.Ipv4 -> ip_summary eth.Ethernet.payload
      | Ethernet.Arp -> Fmt.str "%a > %a arp" Addr.pp_mac eth.Ethernet.src Addr.pp_mac eth.Ethernet.dst
      | Ethernet.Unknown t ->
          Fmt.str "%a > %a ethertype=0x%04x len=%d" Addr.pp_mac eth.Ethernet.src Addr.pp_mac
            eth.Ethernet.dst t
            (Bytes.length eth.Ethernet.payload))
