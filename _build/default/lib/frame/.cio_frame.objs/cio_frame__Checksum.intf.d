lib/frame/checksum.mli:
