lib/frame/addr.mli: Format
