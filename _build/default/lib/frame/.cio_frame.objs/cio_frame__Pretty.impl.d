lib/frame/pretty.ml: Addr Bytes Ethernet Fmt Ipv4 Printf Tcp_wire Udp
