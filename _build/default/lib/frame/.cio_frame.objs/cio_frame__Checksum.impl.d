lib/frame/checksum.ml: Bytes Char
