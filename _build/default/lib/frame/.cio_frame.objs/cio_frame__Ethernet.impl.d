lib/frame/ethernet.ml: Addr Bytes Char Fmt
