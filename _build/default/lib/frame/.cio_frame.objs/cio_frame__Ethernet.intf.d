lib/frame/ethernet.mli: Addr Format
