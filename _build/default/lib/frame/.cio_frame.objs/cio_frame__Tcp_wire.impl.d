lib/frame/tcp_wire.ml: Bytes Char Checksum Fmt Int32 String
