lib/frame/pretty.mli:
