lib/frame/udp.ml: Bytes Checksum Fmt
