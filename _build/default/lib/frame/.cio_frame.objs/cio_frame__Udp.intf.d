lib/frame/udp.mli: Addr Format
