lib/frame/ipv4.mli: Addr Format
