lib/frame/tcp_wire.mli: Addr Format
