lib/frame/addr.ml: Fmt Int32 String
