lib/frame/ipv4.ml: Addr Bytes Char Checksum Fmt
