(* TCP segment codec (RFC 9293 wire format). Sequence numbers are int32
   with modular comparison helpers; the only option understood is MSS
   (kind 2), everything else is skipped on parse and never emitted. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

let flags_none = { syn = false; ack = false; fin = false; rst = false; psh = false }

let pp_flags ppf f =
  let tag c b = if b then String.make 1 c else "" in
  Fmt.pf ppf "%s%s%s%s%s"
    (tag 'S' f.syn) (tag 'A' f.ack) (tag 'F' f.fin) (tag 'R' f.rst) (tag 'P' f.psh)

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack : int32;
  flags : flags;
  window : int;
  mss : int option;  (* only meaningful on SYN segments *)
  payload : bytes;
}

let base_header_len = 20

(* Modular sequence arithmetic. *)
let seq_lt a b = Int32.compare (Int32.sub a b) 0l < 0
let seq_leq a b = Int32.compare (Int32.sub a b) 0l <= 0
let seq_add a n = Int32.add a (Int32.of_int n)
let seq_diff a b = Int32.to_int (Int32.sub a b)

let flag_bits f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)

let build ~src_ip ~dst_ip t =
  let opts =
    match t.mss with
    | None -> Bytes.empty
    | Some mss ->
        let o = Bytes.create 4 in
        Bytes.set o 0 '\x02';
        Bytes.set o 1 '\x04';
        Bytes.set_uint16_be o 2 mss;
        o
  in
  let header_len = base_header_len + Bytes.length opts in
  let total = header_len + Bytes.length t.payload in
  if total > 0xFFFF then invalid_arg "Tcp_wire.build: segment too large";
  let b = Bytes.make total '\000' in
  Bytes.set_uint16_be b 0 t.src_port;
  Bytes.set_uint16_be b 2 t.dst_port;
  Bytes.set_int32_be b 4 t.seq;
  Bytes.set_int32_be b 8 t.ack;
  Bytes.set b 12 (Char.chr ((header_len / 4) lsl 4));
  Bytes.set b 13 (Char.chr (flag_bits t.flags));
  Bytes.set_uint16_be b 14 t.window;
  Bytes.blit opts 0 b base_header_len (Bytes.length opts);
  Bytes.blit t.payload 0 b header_len (Bytes.length t.payload);
  let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto:6 ~length:total in
  let init = Checksum.ones_complement_sum pseudo ~pos:0 ~len:12 ~init:0 in
  let csum = Checksum.finish (Checksum.ones_complement_sum b ~pos:0 ~len:total ~init) in
  Bytes.set_uint16_be b 16 csum;
  b

let parse_mss b ~pos ~len =
  (* Walk the options area looking for MSS; tolerate unknown options. *)
  let stop = pos + len in
  let rec go i =
    if i >= stop then None
    else begin
      match Char.code (Bytes.get b i) with
      | 0 -> None  (* end of options *)
      | 1 -> go (i + 1)  (* NOP *)
      | 2 when i + 3 < stop && Char.code (Bytes.get b (i + 1)) = 4 ->
          Some (Bytes.get_uint16_be b (i + 2))
      | _ ->
          if i + 1 >= stop then None
          else begin
            let olen = Char.code (Bytes.get b (i + 1)) in
            if olen < 2 then None else go (i + olen)
          end
    end
  in
  go pos

let parse ~src_ip ~dst_ip b =
  let len = Bytes.length b in
  if len < base_header_len then Error "tcp: truncated header"
  else begin
    let data_off = (Char.code (Bytes.get b 12) lsr 4) * 4 in
    if data_off < base_header_len || data_off > len then Error "tcp: bad data offset"
    else begin
      let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto:6 ~length:len in
      let init = Checksum.ones_complement_sum pseudo ~pos:0 ~len:12 ~init:0 in
      if Checksum.ones_complement_sum b ~pos:0 ~len ~init <> 0xFFFF then
        Error "tcp: checksum mismatch"
      else begin
        let bits = Char.code (Bytes.get b 13) in
        let flags =
          {
            fin = bits land 0x01 <> 0;
            syn = bits land 0x02 <> 0;
            rst = bits land 0x04 <> 0;
            psh = bits land 0x08 <> 0;
            ack = bits land 0x10 <> 0;
          }
        in
        Ok
          {
            src_port = Bytes.get_uint16_be b 0;
            dst_port = Bytes.get_uint16_be b 2;
            seq = Bytes.get_int32_be b 4;
            ack = Bytes.get_int32_be b 8;
            flags;
            window = Bytes.get_uint16_be b 14;
            mss = parse_mss b ~pos:base_header_len ~len:(data_off - base_header_len);
            payload = Bytes.sub b data_off (len - data_off);
          }
      end
    end
  end

let pp ppf t =
  Fmt.pf ppf "tcp %d -> %d [%a] seq=%lu ack=%lu win=%d (%d B)" t.src_port t.dst_port
    pp_flags t.flags t.seq t.ack t.window (Bytes.length t.payload)
