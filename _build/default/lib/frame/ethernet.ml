(* Ethernet II framing. 14-byte header; the simulated FCS is handled by
   the link layer when enabled, not here. *)

type ethertype = Ipv4 | Arp | Unknown of int

let ethertype_code = function Ipv4 -> 0x0800 | Arp -> 0x0806 | Unknown c -> c

let ethertype_of_code = function 0x0800 -> Ipv4 | 0x0806 -> Arp | c -> Unknown c

let pp_ethertype ppf = function
  | Ipv4 -> Fmt.pf ppf "IPv4"
  | Arp -> Fmt.pf ppf "ARP"
  | Unknown c -> Fmt.pf ppf "0x%04x" c

type t = { dst : Addr.mac; src : Addr.mac; ethertype : ethertype; payload : bytes }

let header_len = 14
let min_payload = 46  (* classic Ethernet minimum; we pad on build *)
let max_payload = 1500

let build { dst; src; ethertype; payload } =
  let pay_len = max (Bytes.length payload) min_payload in
  let b = Bytes.make (header_len + pay_len) '\000' in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr (Addr.mac_octet dst i));
    Bytes.set b (6 + i) (Char.chr (Addr.mac_octet src i))
  done;
  Bytes.set_uint16_be b 12 (ethertype_code ethertype);
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  b

let parse b =
  if Bytes.length b < header_len then Error "ethernet: frame shorter than header"
  else begin
    let mac_at off =
      Addr.mac_of_octets
        (Char.code (Bytes.get b off))
        (Char.code (Bytes.get b (off + 1)))
        (Char.code (Bytes.get b (off + 2)))
        (Char.code (Bytes.get b (off + 3)))
        (Char.code (Bytes.get b (off + 4)))
        (Char.code (Bytes.get b (off + 5)))
    in
    Ok
      {
        dst = mac_at 0;
        src = mac_at 6;
        ethertype = ethertype_of_code (Bytes.get_uint16_be b 12);
        payload = Bytes.sub b header_len (Bytes.length b - header_len);
      }
  end

let pp ppf t =
  Fmt.pf ppf "eth %a -> %a %a (%d B payload)" Addr.pp_mac t.src Addr.pp_mac t.dst
    pp_ethertype t.ethertype (Bytes.length t.payload)
