(** UDP codec with pseudo-header checksums. *)

type t = { src_port : int; dst_port : int; payload : bytes }

val header_len : int

val build : src_ip:Addr.ipv4 -> dst_ip:Addr.ipv4 -> t -> bytes
val parse : src_ip:Addr.ipv4 -> dst_ip:Addr.ipv4 -> bytes -> (t, string) result
val pp : Format.formatter -> t -> unit
