(* RFC 1071 Internet checksum, shared by IPv4/UDP/TCP. *)

let ones_complement_sum b ~pos ~len ~init =
  let sum = ref init in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  (* Fold carries. *)
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  !s

let finish sum = lnot sum land 0xFFFF

let compute b ~pos ~len = finish (ones_complement_sum b ~pos ~len ~init:0)

let verify b ~pos ~len = ones_complement_sum b ~pos ~len ~init:0 = 0xFFFF

(* Pseudo-header contribution for UDP/TCP checksums. *)
let pseudo_header ~src ~dst ~proto ~length =
  let b = Bytes.create 12 in
  Bytes.set_int32_be b 0 src;
  Bytes.set_int32_be b 4 dst;
  Bytes.set b 8 '\000';
  Bytes.set b 9 (Char.chr proto);
  Bytes.set_uint16_be b 10 length;
  b
