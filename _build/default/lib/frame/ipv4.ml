(* IPv4 header codec (RFC 791). No options, no fragmentation support on
   the send side; fragmented packets are rejected on parse, which is also
   a deliberate safe-interface simplification (§3.2: eliminate error-prone
   protocol corners that the deployment does not need). *)

type protocol = Tcp | Udp | Unknown of int

let protocol_code = function Tcp -> 6 | Udp -> 17 | Unknown c -> c
let protocol_of_code = function 6 -> Tcp | 17 -> Udp | c -> Unknown c

let pp_protocol ppf = function
  | Tcp -> Fmt.pf ppf "TCP"
  | Udp -> Fmt.pf ppf "UDP"
  | Unknown c -> Fmt.pf ppf "proto-%d" c

type t = {
  src : Addr.ipv4;
  dst : Addr.ipv4;
  protocol : protocol;
  ttl : int;
  payload : bytes;
}

let header_len = 20

let build { src; dst; protocol; ttl; payload } =
  let total = header_len + Bytes.length payload in
  if total > 0xFFFF then invalid_arg "Ipv4.build: packet too large";
  let b = Bytes.make total '\000' in
  Bytes.set b 0 '\x45';  (* version 4, IHL 5 *)
  Bytes.set_uint16_be b 2 total;
  Bytes.set_uint16_be b 6 0x4000;  (* DF set, no fragments *)
  Bytes.set b 8 (Char.chr (ttl land 0xFF));
  Bytes.set b 9 (Char.chr (protocol_code protocol));
  Bytes.set_int32_be b 12 src;
  Bytes.set_int32_be b 16 dst;
  let csum = Checksum.compute b ~pos:0 ~len:header_len in
  Bytes.set_uint16_be b 10 csum;
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  b

let parse b =
  let len = Bytes.length b in
  if len < header_len then Error "ipv4: truncated header"
  else begin
    let vihl = Char.code (Bytes.get b 0) in
    let version = vihl lsr 4 and ihl = (vihl land 0xF) * 4 in
    if version <> 4 then Error "ipv4: not version 4"
    else if ihl < header_len then Error "ipv4: bad IHL"
    else if ihl > len then Error "ipv4: IHL beyond packet"
    else begin
      let total = Bytes.get_uint16_be b 2 in
      if total < ihl || total > len then Error "ipv4: bad total length"
      else if not (Checksum.verify b ~pos:0 ~len:ihl) then Error "ipv4: header checksum mismatch"
      else begin
        let frag = Bytes.get_uint16_be b 6 in
        let more_fragments = frag land 0x2000 <> 0 in
        let frag_offset = frag land 0x1FFF in
        if more_fragments || frag_offset <> 0 then Error "ipv4: fragmentation unsupported"
        else
          Ok
            {
              src = Bytes.get_int32_be b 12;
              dst = Bytes.get_int32_be b 16;
              protocol = protocol_of_code (Char.code (Bytes.get b 9));
              ttl = Char.code (Bytes.get b 8);
              payload = Bytes.sub b ihl (total - ihl);
            }
      end
    end
  end

let pp ppf t =
  Fmt.pf ppf "ipv4 %a -> %a %a ttl=%d (%d B)" Addr.pp_ipv4 t.src Addr.pp_ipv4 t.dst
    pp_protocol t.protocol t.ttl (Bytes.length t.payload)
