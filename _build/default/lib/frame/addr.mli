(** MAC (48-bit, in a native int) and IPv4 (int32) addresses. *)

type mac = int

val mac_broadcast : mac
val mac_of_octets : int -> int -> int -> int -> int -> int -> mac
val mac_octet : mac -> int -> int
val pp_mac : Format.formatter -> mac -> unit
val mac_to_string : mac -> string

type ipv4 = int32

val ipv4_of_octets : int -> int -> int -> int -> ipv4
val ipv4_octet : ipv4 -> int -> int
val pp_ipv4 : Format.formatter -> ipv4 -> unit
val ipv4_to_string : ipv4 -> string
val ipv4_of_string : string -> ipv4 option
