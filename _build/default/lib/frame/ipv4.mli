(** IPv4 header codec (no options, no fragmentation). *)

type protocol = Tcp | Udp | Unknown of int

val protocol_code : protocol -> int
val protocol_of_code : int -> protocol
val pp_protocol : Format.formatter -> protocol -> unit

type t = {
  src : Addr.ipv4;
  dst : Addr.ipv4;
  protocol : protocol;
  ttl : int;
  payload : bytes;
}

val header_len : int

val build : t -> bytes
(** Serialise with a correct header checksum and DF set. *)

val parse : bytes -> (t, string) result
(** Rejects bad versions, bad lengths, checksum mismatches and fragments.
    Trailing link-layer padding beyond the total length is tolerated. *)

val pp : Format.formatter -> t -> unit
