(** RFC 1071 Internet checksum. *)

val ones_complement_sum : bytes -> pos:int -> len:int -> init:int -> int
(** Folded 16-bit one's-complement sum of the range, accumulated onto
    [init]. *)

val finish : int -> int
(** One's-complement of a folded sum. *)

val compute : bytes -> pos:int -> len:int -> int
(** Checksum of a range (with the checksum field zeroed by the caller). *)

val verify : bytes -> pos:int -> len:int -> bool
(** True iff the range (including its checksum field) sums to 0xFFFF. *)

val pseudo_header : src:int32 -> dst:int32 -> proto:int -> length:int -> bytes
(** 12-byte IPv4 pseudo-header for UDP/TCP checksums. *)
