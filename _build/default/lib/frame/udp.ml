(* UDP codec (RFC 768), checksummed with the IPv4 pseudo-header. *)

type t = { src_port : int; dst_port : int; payload : bytes }

let header_len = 8

let build ~src_ip ~dst_ip { src_port; dst_port; payload } =
  let total = header_len + Bytes.length payload in
  if total > 0xFFFF then invalid_arg "Udp.build: datagram too large";
  let b = Bytes.make total '\000' in
  Bytes.set_uint16_be b 0 src_port;
  Bytes.set_uint16_be b 2 dst_port;
  Bytes.set_uint16_be b 4 total;
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto:17 ~length:total in
  let init = Checksum.ones_complement_sum pseudo ~pos:0 ~len:12 ~init:0 in
  let csum = Checksum.finish (Checksum.ones_complement_sum b ~pos:0 ~len:total ~init) in
  (* All-zero checksums are transmitted as 0xFFFF per the RFC. *)
  Bytes.set_uint16_be b 6 (if csum = 0 then 0xFFFF else csum);
  b

let parse ~src_ip ~dst_ip b =
  let len = Bytes.length b in
  if len < header_len then Error "udp: truncated header"
  else begin
    let total = Bytes.get_uint16_be b 4 in
    if total < header_len || total > len then Error "udp: bad length"
    else begin
      let declared_csum = Bytes.get_uint16_be b 6 in
      let ok =
        if declared_csum = 0 then true  (* checksum disabled by sender *)
        else begin
          let pseudo = Checksum.pseudo_header ~src:src_ip ~dst:dst_ip ~proto:17 ~length:total in
          let init = Checksum.ones_complement_sum pseudo ~pos:0 ~len:12 ~init:0 in
          Checksum.ones_complement_sum b ~pos:0 ~len:total ~init = 0xFFFF
        end
      in
      if not ok then Error "udp: checksum mismatch"
      else
        Ok
          {
            src_port = Bytes.get_uint16_be b 0;
            dst_port = Bytes.get_uint16_be b 2;
            payload = Bytes.sub b header_len (total - header_len);
          }
    end
  end

let pp ppf t =
  Fmt.pf ppf "udp %d -> %d (%d B)" t.src_port t.dst_port (Bytes.length t.payload)
