(** TCP segment codec (RFC 9293 wire format; MSS is the only option). *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

val flags_none : flags
val pp_flags : Format.formatter -> flags -> unit

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack : int32;
  flags : flags;
  window : int;
  mss : int option;
  payload : bytes;
}

(** Modular 32-bit sequence arithmetic. *)

val seq_lt : int32 -> int32 -> bool
val seq_leq : int32 -> int32 -> bool
val seq_add : int32 -> int -> int32
val seq_diff : int32 -> int32 -> int

val build : src_ip:Addr.ipv4 -> dst_ip:Addr.ipv4 -> t -> bytes
val parse : src_ip:Addr.ipv4 -> dst_ip:Addr.ipv4 -> bytes -> (t, string) result
val pp : Format.formatter -> t -> unit
