(** Ethernet II framing. *)

type ethertype = Ipv4 | Arp | Unknown of int

val ethertype_code : ethertype -> int
val ethertype_of_code : int -> ethertype
val pp_ethertype : Format.formatter -> ethertype -> unit

type t = { dst : Addr.mac; src : Addr.mac; ethertype : ethertype; payload : bytes }

val header_len : int
val min_payload : int
val max_payload : int

val build : t -> bytes
(** Serialise; payloads shorter than the Ethernet minimum are zero-padded,
    so receivers must rely on the inner layer's length field. *)

val parse : bytes -> (t, string) result
val pp : Format.formatter -> t -> unit
