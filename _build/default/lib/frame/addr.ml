(* MAC and IPv4 address types shared by the codecs and the stack. *)

type mac = int  (* 48 bits in a native int *)

let mac_broadcast = 0xFFFFFFFFFFFF

let mac_of_octets a b c d e f =
  ((a land 0xFF) lsl 40) lor ((b land 0xFF) lsl 32) lor ((c land 0xFF) lsl 24)
  lor ((d land 0xFF) lsl 16) lor ((e land 0xFF) lsl 8) lor (f land 0xFF)

let mac_octet m i =
  if i < 0 || i > 5 then invalid_arg "Addr.mac_octet";
  (m lsr (8 * (5 - i))) land 0xFF

let pp_mac ppf m =
  Fmt.pf ppf "%02x:%02x:%02x:%02x:%02x:%02x" (mac_octet m 0) (mac_octet m 1)
    (mac_octet m 2) (mac_octet m 3) (mac_octet m 4) (mac_octet m 5)

let mac_to_string m = Fmt.str "%a" pp_mac m

type ipv4 = int32

let ipv4_of_octets a b c d =
  Int32.logor
    (Int32.shift_left (Int32.of_int (a land 0xFF)) 24)
    (Int32.of_int (((b land 0xFF) lsl 16) lor ((c land 0xFF) lsl 8) lor (d land 0xFF)))

let ipv4_octet ip i =
  if i < 0 || i > 3 then invalid_arg "Addr.ipv4_octet";
  Int32.to_int (Int32.shift_right_logical ip (8 * (3 - i))) land 0xFF

let pp_ipv4 ppf ip =
  Fmt.pf ppf "%d.%d.%d.%d" (ipv4_octet ip 0) (ipv4_octet ip 1) (ipv4_octet ip 2) (ipv4_octet ip 3)

let ipv4_to_string ip = Fmt.str "%a" pp_ipv4 ip

let ipv4_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
          Some (ipv4_of_octets a b c d)
      | _ -> None)
  | _ -> None
