(** One-line frame decoding for traces and demos. *)

val frame_summary : bytes -> string
(** Ethernet → IPv4 → TCP/UDP one-liner; degrades gracefully on
    unparseable input. *)

val ip_summary : bytes -> string
