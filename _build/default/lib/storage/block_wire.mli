(** Stateless block-I/O wire format for the safe-ring storage boundary. *)

type op = Read | Write

val op_code : op -> int
val op_of_code : int -> op option

type status = Ok_ | Error_

val status_code : status -> int
val status_of_code : int -> status option

val header_len : int

type request = { op : op; lba : int; payload : bytes }
type response = { status : status; rlba : int; rpayload : bytes }

val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_response : response -> bytes
val decode_response : bytes -> response option
