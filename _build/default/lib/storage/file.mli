(** Minimal file layer over the block client, in two protection modes:
    [Plain] (trusts the block boundary) and [Sealed] (fscrypt-style
    per-block AEAD bound to lba + guest-private version: corruption,
    remapping and rollback all fail closed). *)

type mode = Plain | Sealed of bytes

type t

type error = Not_found_ | No_space | Io_error of string | Integrity of string

val error_to_string : error -> string

val create : dev:Blockdev.t -> mode:mode -> t

val write_file : t -> name:string -> bytes -> (unit, error) result
(** Replace semantics. *)

val read_file : t -> name:string -> (bytes, error) result
val delete : t -> string -> (unit, error) result
val list_files : t -> (string * int) list
val meter : t -> Cio_util.Cost.meter
