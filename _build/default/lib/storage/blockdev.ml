(* Block device over the safe ring: the storage instantiation of the
   paper's L2 boundary. The guest submits stateless requests; the host
   disk model answers with responses on the opposite ring. Host
   misbehaviour knobs mirror the network device's so the E9 attack rows
   line up with E4's. *)

open Cio_util
open Cio_mem
open Cio_cionet

let block_size = 4096

type misbehavior =
  | Corrupt_block        (* flip bits in the next read response *)
  | Lie_response_len     (* claim a huge response length *)
  | Wrong_lba            (* answer for a different block *)
  | Replay_response      (* deliver the previous response again *)

(* --- host side: the disk model --------------------------------------- *)

type disk = {
  data : bytes;              (* the host's backing store *)
  blocks : int;
  req_ring : Ring.t;         (* guest produces, host consumes *)
  resp_ring : Ring.t;        (* host produces, guest consumes *)
  mutable misbehaviors : misbehavior list;
  mutable last_response : bytes option;
  mutable reads : int;
  mutable writes : int;
  mutable malformed : int;
  mutable access_log : (Block_wire.op * int) list;
      (* newest first: everything a passive host learns even when the
         contents are sealed — the storage observability channel (E18) *)
}

(* --- guest side: the block client ------------------------------------ *)

type t = {
  region : Region.t;
  client_req : Ring.t;
  client_resp : Ring.t;
  disk : disk;
  meter : Cost.meter;
  mutable outstanding : int;
}

let positioning = Config.Inline { data_capacity = 8192 }

let create ?(model = Cost.default) ?meter ~name ~blocks () =
  let host_meter = Cost.meter () in
  let page = 4096 in
  let lay = Ring.layout ~page_size:page ~slots:16 positioning in
  let req_base = page in
  let resp_base = Cio_util.Bitops.align_up (req_base + lay.Ring.total) ~align:page in
  let total = Cio_util.Bitops.align_up (resp_base + lay.Ring.total) ~align:page in
  let region = Region.create ?meter ~model ~page_size:page ~prot:Region.Shared ~name total in
  let req_ring =
    Ring.create ~region ~base:req_base ~slots:16 ~positioning ~producer:Region.Guest ~host_meter
  in
  let resp_ring =
    Ring.create ~region ~base:resp_base ~slots:16 ~positioning ~producer:Region.Host ~host_meter
  in
  let disk =
    {
      data = Bytes.make (blocks * block_size) '\000';
      blocks;
      req_ring;
      resp_ring;
      misbehaviors = [];
      last_response = None;
      reads = 0;
      writes = 0;
      malformed = 0;
      access_log = [];
    }
  in
  ({ region; client_req = req_ring; client_resp = resp_ring; disk; meter = Region.meter region; outstanding = 0 }, disk)

let disk_inject disk m = disk.misbehaviors <- disk.misbehaviors @ [ m ]

let take disk pred =
  let rec go acc = function
    | [] -> None
    | m :: rest when pred m ->
        disk.misbehaviors <- List.rev_append acc rest;
        Some m
    | m :: rest -> go (m :: acc) rest
  in
  go [] disk.misbehaviors

let disk_reads d = d.reads
let disk_writes d = d.writes
let disk_access_log d = List.rev d.access_log
let disk_clear_log d = d.access_log <- []

(* Run the host disk: consume requests, produce responses. *)
let disk_poll disk =
  let rec go () =
    match Ring.try_consume disk.req_ring with
    | None -> ()
    | Some raw -> (
        match Block_wire.decode_request raw with
        | None -> disk.malformed <- disk.malformed + 1
        | Some req ->
            let lba = req.Block_wire.lba in
            disk.access_log <- (req.Block_wire.op, lba) :: disk.access_log;
            let resp =
              if lba < 0 || lba >= disk.blocks then
                { Block_wire.status = Block_wire.Error_; rlba = lba; rpayload = Bytes.empty }
              else begin
                match req.Block_wire.op with
                | Block_wire.Read ->
                    disk.reads <- disk.reads + 1;
                    (* Wrong_lba: serve a *different* block's content while
                       claiming it is the requested one. *)
                    let src_lba =
                      match take disk (function Wrong_lba -> true | _ -> false) with
                      | Some Wrong_lba -> (lba + 1) mod disk.blocks
                      | _ -> lba
                    in
                    let payload = Bytes.sub disk.data (src_lba * block_size) block_size in
                    let payload =
                      match take disk (function Corrupt_block -> true | _ -> false) with
                      | Some Corrupt_block ->
                          (* Flip a mid-payload byte: real bit rot / malice
                             lands in data, not padding. *)
                          let i = 64 in
                          Bytes.set payload i (Char.chr (Char.code (Bytes.get payload i) lxor 0xFF));
                          payload
                      | _ -> payload
                    in
                    { Block_wire.status = Block_wire.Ok_; rlba = lba; rpayload = payload }
                | Block_wire.Write ->
                    disk.writes <- disk.writes + 1;
                    let len = min (Bytes.length req.Block_wire.payload) block_size in
                    Bytes.blit req.Block_wire.payload 0 disk.data (lba * block_size) len;
                    { Block_wire.status = Block_wire.Ok_; rlba = lba; rpayload = Bytes.empty }
              end
            in
            let encoded = Block_wire.encode_response resp in
            let encoded =
              match take disk (function Lie_response_len -> true | _ -> false) with
              | Some Lie_response_len ->
                  (* Corrupt the embedded length field upward. *)
                  let e = Bytes.copy encoded in
                  Bytes.set_int32_le e 5 (Int32.of_int 1_000_000);
                  e
              | _ -> encoded
            in
            ignore (Ring.try_produce disk.resp_ring encoded);
            disk.last_response <- Some encoded;
            (match take disk (function Replay_response -> true | _ -> false) with
            | Some Replay_response -> (
                match disk.last_response with
                | Some prev -> ignore (Ring.try_produce disk.resp_ring prev)
                | None -> ())
            | _ -> ());
            go ())
  in
  go ()

(* Guest-side API: synchronous convenience that drives the host inline
   (the storage experiments do not need the network engine). *)

type result = Data of bytes | Write_ok | Failed of string

let submit t req =
  Cost.charge t.meter Cost.Ring 0;
  Ring.try_produce t.client_req (Block_wire.encode_request req)

let poll_response t =
  match Ring.try_consume t.client_resp with
  | None -> None
  | Some raw -> (
      match Block_wire.decode_response raw with
      | None -> Some (Failed "malformed response")
      | Some r ->
          if r.Block_wire.status <> Block_wire.Ok_ then Some (Failed "device error")
          else begin
            match Bytes.length r.Block_wire.rpayload with
            | 0 -> Some Write_ok
            | _ -> Some (Data r.Block_wire.rpayload)
          end)

let read_block t ~lba =
  if not (submit t { Block_wire.op = Block_wire.Read; lba; payload = Bytes.empty }) then
    Failed "request ring full"
  else begin
    disk_poll t.disk;
    match poll_response t with
    | Some r -> r
    | None -> Failed "no response"
  end

let write_block t ~lba payload =
  if Bytes.length payload > block_size then Failed "payload larger than block"
  else if not (submit t { Block_wire.op = Block_wire.Write; lba; payload }) then
    Failed "request ring full"
  else begin
    disk_poll t.disk;
    match poll_response t with
    | Some r -> r
    | None -> Failed "no response"
  end

let meter t = t.meter
let disk t = t.disk
let blocks t = t.disk.blocks
