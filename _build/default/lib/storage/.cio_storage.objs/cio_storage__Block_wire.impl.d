lib/storage/block_wire.ml: Bytes Char Int32
