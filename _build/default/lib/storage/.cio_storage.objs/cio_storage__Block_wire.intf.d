lib/storage/block_wire.mli:
