lib/storage/dual_store.ml: Aead Blockdev Bytes Cio_compartment Cio_crypto Cio_util Compartment Cost File Hashtbl Int32 Option Printf Sha256
