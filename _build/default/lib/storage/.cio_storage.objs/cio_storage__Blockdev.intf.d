lib/storage/blockdev.mli: Block_wire Cio_util Cost
