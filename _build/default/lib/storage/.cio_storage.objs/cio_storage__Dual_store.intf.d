lib/storage/dual_store.mli: Blockdev Cio_compartment Cio_util Compartment Cost File
