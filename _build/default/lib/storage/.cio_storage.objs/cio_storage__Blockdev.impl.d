lib/storage/blockdev.ml: Block_wire Bytes Char Cio_cionet Cio_mem Cio_util Config Cost Int32 List Region Ring
