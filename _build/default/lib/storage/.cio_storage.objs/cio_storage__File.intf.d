lib/storage/file.mli: Blockdev Cio_util
