lib/storage/file.ml: Aead Array Blockdev Buffer Bytes Cio_crypto Cio_util Int32 List
