(** Block device over the safe ring (§3.3 low-level storage boundary),
    with a host disk model carrying the same misbehaviour classes as the
    network devices. *)

open Cio_util

val block_size : int

type misbehavior = Corrupt_block | Lie_response_len | Wrong_lba | Replay_response

type disk
type t

val create :
  ?model:Cost.model -> ?meter:Cost.meter -> name:string -> blocks:int -> unit -> t * disk

val disk_inject : disk -> misbehavior -> unit
val disk_poll : disk -> unit
val disk_reads : disk -> int
val disk_writes : disk -> int

val disk_access_log : disk -> (Block_wire.op * int) list
(** (op, lba) per request, oldest first: the access-pattern side channel a
    passive host keeps even when block contents are sealed. *)

val disk_clear_log : disk -> unit

type result = Data of bytes | Write_ok | Failed of string

val submit : t -> Block_wire.request -> bool
val poll_response : t -> result option

val read_block : t -> lba:int -> result
(** Synchronous convenience: submits, runs the disk, returns the reply. *)

val write_block : t -> lba:int -> bytes -> result

val meter : t -> Cost.meter
val disk : t -> disk
val blocks : t -> int
