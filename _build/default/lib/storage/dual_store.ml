(* The complete §3.3 ternary model for storage.

   Mirrors the network design one-to-one:

     app domain        seals whole files (AEAD bound to name + version
                       kept in app-private state) — the high boundary;
     storage domain    the *quarantined* file layer + block client: it
                       only ever handles ciphertext, and reaching it costs
                       a compartment gate per operation — the analogue of
                       the quarantined network stack;
     host              the disk behind the safe ring — the low boundary.

   Consequences (tested and measured in E9/E18):
   - a hostile disk or a fully compromised file layer can deny service or
     reorder the world, but any wrong bytes fail authentication in the
     app domain;
   - what the lower layers retain is *observability*: which (encrypted)
     file is touched, when, and how big it is — the storage twin of the
     network design's network-level metadata. *)

open Cio_util
open Cio_crypto
open Cio_compartment

type t = {
  world : Compartment.t;
  app : Compartment.domain;
  store : Compartment.domain;
  fs : File.t;
  key : bytes;
  versions : (string, int) Hashtbl.t;  (* app-private: anti-rollback *)
  meter : Cost.meter;
}

type error = Store_error of File.error | Integrity of string

let error_to_string = function
  | Store_error e -> "store: " ^ File.error_to_string e
  | Integrity s -> "integrity: " ^ s

let create ?(crossing = Compartment.Gate) ~dev ~key () =
  if Bytes.length key <> Aead.key_len then invalid_arg "Dual_store.create: bad key size";
  let meter = Blockdev.meter dev in
  let world = Compartment.create ~meter ~crossing () in
  let app = Compartment.add_domain world ~name:"app" in
  let store = Compartment.add_domain world ~name:"storage-stack" in
  (* The quarantined file layer runs in Plain mode: it only ever sees
     ciphertext that the app sealed above it. *)
  let fs = File.create ~dev ~mode:File.Plain in
  { world; app; store; fs; key; versions = Hashtbl.create 16; meter }

let world t = t.world
let app_domain t = t.app
let store_domain t = t.store
let meter t = t.meter
let crossings t = (Compartment.counters t.world).Compartment.crossings

let enter_store t f = Compartment.call t.world ~caller:t.app ~callee:t.store f

let aad ~name ~version =
  let b = Bytes.of_string (Printf.sprintf "%s#%d" name version) in
  b

let nonce_of ~name ~version =
  let h = Sha256.digest_string name in
  let n = Bytes.sub h 0 Aead.nonce_len in
  Bytes.set_int32_le n 0 (Int32.of_int version);
  n

let charge_crypto t nbytes = Cost.charge t.meter Cost.Crypto (Cost.aead_cost Cost.default nbytes)

let write_file t ~name content =
  (* Seal in the app domain: name + fresh version bound into the AAD. *)
  let version = 1 + Option.value ~default:0 (Hashtbl.find_opt t.versions name) in
  charge_crypto t (Bytes.length content);
  let sealed =
    Aead.seal ~key:t.key ~nonce:(nonce_of ~name ~version) ~aad:(aad ~name ~version) content
  in
  match enter_store t (fun () -> File.write_file t.fs ~name sealed) with
  | Ok () ->
      Hashtbl.replace t.versions name version;
      Ok ()
  | Error e -> Error (Store_error e)

let read_file t ~name =
  match Hashtbl.find_opt t.versions name with
  | None -> Error (Store_error File.Not_found_)
  | Some version -> (
      match enter_store t (fun () -> File.read_file t.fs ~name) with
      | Error e -> Error (Store_error e)
      | Ok sealed -> (
          charge_crypto t (Bytes.length sealed);
          (* Unseal in the app domain against app-private name+version:
             wrong file, stale version or corrupt bytes all land here. *)
          match Aead.open_ ~key:t.key ~nonce:(nonce_of ~name ~version) ~aad:(aad ~name ~version) sealed with
          | Some content -> Ok content
          | None -> Error (Integrity "file failed authentication (corrupt/swapped/rolled back)")))

let delete t ~name =
  match enter_store t (fun () -> File.delete t.fs name) with
  | Ok () ->
      Hashtbl.remove t.versions name;
      Ok ()
  | Error e -> Error (Store_error e)

let list_files t = enter_store t (fun () -> File.list_files t.fs)

(* What a fully compromised storage domain can and cannot do: it cannot
   touch app memory (compartment), and anything it fabricates fails the
   app-side unseal — the multi-stage property, storage edition. *)
let rogue_store_reads_app_memory t =
  let secret = Compartment.alloc t.world ~owner:t.app 64 in
  Compartment.write t.world ~as_:t.app secret ~pos:0 (Bytes.of_string "app-secret");
  match Compartment.read t.world ~as_:t.store secret ~pos:0 ~len:10 with
  | _ -> `Leaked
  | exception Compartment.Access_violation _ -> `Denied
