(* Minimal file layer over the block client — the storage analogue of the
   in-TEE I/O stack. Two protection modes reproduce the two sides of the
   §3.3 argument:

   - [Plain]: the file layer trusts the block boundary, like a
     lift-and-shift guest filesystem. Host corruption, block remapping
     and stale replays are accepted silently.
   - [Sealed]: the high-level boundary is cryptographic (fscrypt-style):
     every block is AEAD-sealed with its (lba, version) bound into the
     AAD, so a hostile block layer or disk can only deny service — wrong
     bytes, remapped blocks and rolled-back versions all fail closed.

   The file layer itself is deliberately simple (flat namespace,
   whole-file read/write): the experiments exercise the boundary, not
   directory trees. *)

open Cio_crypto

(* Sealed-block geometry: u32 version + nonce + u16 ciphertext length +
   tag fit inside the block alongside the chunk. The explicit length is
   needed because the device always returns whole (zero-padded) blocks. *)
let seal_overhead = 4 + Aead.nonce_len + 2 + Aead.tag_len
let chunk_size = Blockdev.block_size - seal_overhead

type mode = Plain | Sealed of bytes  (* 32-byte key *)

type inode = { name : string; size : int; inode_blocks : int list }

type t = {
  dev : Blockdev.t;
  mode : mode;
  mutable inodes : inode list;
  free : bool array;         (* block allocation bitmap (guest-private) *)
  versions : int array;      (* per-block write version (guest-private) *)
  mutable rng_counter : int;
}

type error = Not_found_ | No_space | Io_error of string | Integrity of string

let error_to_string = function
  | Not_found_ -> "file not found"
  | No_space -> "out of blocks"
  | Io_error s -> "I/O error: " ^ s
  | Integrity s -> "integrity violation: " ^ s

let create ~dev ~mode =
  (match mode with
  | Sealed key when Bytes.length key <> Aead.key_len -> invalid_arg "File.create: bad key size"
  | _ -> ());
  let blocks = Blockdev.blocks dev in
  { dev; mode; inodes = []; free = Array.make blocks true; versions = Array.make blocks 0; rng_counter = 0 }

let alloc_block t =
  let n = Array.length t.free in
  let rec go i = if i >= n then None else if t.free.(i) then Some i else go (i + 1) in
  match go 0 with
  | Some i ->
      t.free.(i) <- false;
      Some i
  | None -> None

let free_block t i = t.free.(i) <- true

let chunk_of_mode t = match t.mode with Plain -> Blockdev.block_size | Sealed _ -> chunk_size

let charge_crypto t nbytes =
  let m = Blockdev.meter t.dev in
  Cio_util.Cost.charge m Cio_util.Cost.Crypto (Cio_util.Cost.aead_cost Cio_util.Cost.default nbytes)

let seal_chunk t ~lba chunk =
  match t.mode with
  | Plain -> chunk
  | Sealed key ->
      charge_crypto t (Bytes.length chunk);
      t.versions.(lba) <- t.versions.(lba) + 1;
      let version = t.versions.(lba) in
      let nonce = Bytes.make Aead.nonce_len '\000' in
      Bytes.set_int32_le nonce 0 (Int32.of_int lba);
      Bytes.set_int32_le nonce 4 (Int32.of_int version);
      let aad = Bytes.create 8 in
      Bytes.set_int32_le aad 0 (Int32.of_int lba);
      Bytes.set_int32_le aad 4 (Int32.of_int version);
      let sealed = Aead.seal ~key ~nonce ~aad chunk in
      let out = Bytes.create (4 + Aead.nonce_len + 2 + Bytes.length sealed) in
      Bytes.set_int32_le out 0 (Int32.of_int version);
      Bytes.blit nonce 0 out 4 Aead.nonce_len;
      Bytes.set_uint16_le out (4 + Aead.nonce_len) (Bytes.length sealed);
      Bytes.blit sealed 0 out (4 + Aead.nonce_len + 2) (Bytes.length sealed);
      out

let open_chunk t ~lba stored =
  match t.mode with
  | Plain -> Ok stored
  | Sealed key ->
      if Bytes.length stored < seal_overhead then Error (Integrity "sealed block too short")
      else begin
        (* The expected version comes from guest-private state, not from
           the (host-controlled) stored bytes: rollback cannot lie. The
           declared ciphertext length is untrusted and clamped. *)
        let expected_version = t.versions.(lba) in
        let nonce = Bytes.sub stored 4 Aead.nonce_len in
        let declared = Bytes.get_uint16_le stored (4 + Aead.nonce_len) in
        let clen = min declared (Bytes.length stored - seal_overhead + Aead.tag_len) in
        let sealed = Bytes.sub stored (4 + Aead.nonce_len + 2) clen in
        charge_crypto t clen;
        let aad = Bytes.create 8 in
        Bytes.set_int32_le aad 0 (Int32.of_int lba);
        Bytes.set_int32_le aad 4 (Int32.of_int expected_version);
        match Aead.open_ ~key ~nonce ~aad sealed with
        | Some chunk -> Ok chunk
        | None -> Error (Integrity "block failed authentication (corrupt/remap/rollback)")
      end

let find t name = List.find_opt (fun i -> i.name = name) t.inodes

let delete t name =
  match find t name with
  | None -> Error Not_found_
  | Some inode ->
      List.iter (free_block t) inode.inode_blocks;
      t.inodes <- List.filter (fun i -> i.name <> name) t.inodes;
      Ok ()

let write_file t ~name content =
  (* Replace semantics: drop any existing file first. *)
  (match delete t name with Ok () | Error Not_found_ -> () | Error _ -> ());
  let chunk = chunk_of_mode t in
  let size = Bytes.length content in
  let nblocks = max 1 ((size + chunk - 1) / chunk) in
  let rec place i acc =
    if i >= nblocks then Ok (List.rev acc)
    else begin
      match alloc_block t with
      | None ->
          List.iter (free_block t) acc;
          Error No_space
      | Some lba ->
          let off = i * chunk in
          let len = min chunk (size - off) in
          let piece = if len > 0 then Bytes.sub content off len else Bytes.empty in
          let stored = seal_chunk t ~lba piece in
          (match Blockdev.write_block t.dev ~lba stored with
          | Blockdev.Write_ok -> place (i + 1) (lba :: acc)
          | Blockdev.Failed e ->
              List.iter (free_block t) (lba :: acc);
              Error (Io_error e)
          | Blockdev.Data _ ->
              List.iter (free_block t) (lba :: acc);
              Error (Io_error "unexpected data response"))
    end
  in
  match place 0 [] with
  | Error e -> Error e
  | Ok placed ->
      t.inodes <- { name; size; inode_blocks = placed } :: t.inodes;
      Ok ()

let read_file t ~name =
  match find t name with
  | None -> Error Not_found_
  | Some inode ->
      let chunk = chunk_of_mode t in
      let out = Buffer.create inode.size in
      let rec go = function
        | [] ->
            let all = Buffer.to_bytes out in
            Ok (Bytes.sub all 0 (min inode.size (Bytes.length all)))
        | lba :: rest -> (
            match Blockdev.read_block t.dev ~lba with
            | Blockdev.Failed e -> Error (Io_error e)
            | Blockdev.Write_ok -> Error (Io_error "unexpected write response")
            | Blockdev.Data stored -> (
                match open_chunk t ~lba stored with
                | Error e -> Error e
                | Ok piece ->
                    Buffer.add_bytes out (Bytes.sub piece 0 (min chunk (Bytes.length piece)));
                    go rest))
      in
      ignore chunk;
      go inode.inode_blocks

let list_files t = List.map (fun i -> (i.name, i.size)) t.inodes
let meter t = Blockdev.meter t.dev
