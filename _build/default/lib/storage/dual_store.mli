(** The §3.3 ternary model for storage: app-domain whole-file sealing over
    a quarantined file layer over the safe-ring block device. *)

open Cio_util
open Cio_compartment

type t

type error = Store_error of File.error | Integrity of string

val error_to_string : error -> string

val create : ?crossing:Compartment.crossing -> dev:Blockdev.t -> key:bytes -> unit -> t

val world : t -> Compartment.t
val app_domain : t -> Compartment.domain
val store_domain : t -> Compartment.domain
val meter : t -> Cost.meter
val crossings : t -> int

val write_file : t -> name:string -> bytes -> (unit, error) result
val read_file : t -> name:string -> (bytes, error) result
val delete : t -> name:string -> (unit, error) result
val list_files : t -> (string * int) list

val rogue_store_reads_app_memory : t -> [ `Leaked | `Denied ]
(** The multi-stage property, storage edition. *)
