(* Block I/O wire format carried over the safe ring (§3.3: the same
   dual-boundary treatment applied to storage; the low-level boundary is
   the block layer, the high-level one is file operations).

   Request:  { op:u8, lba:u32, len:u32, payload }
   Response: { status:u8, lba:u32, len:u32, payload }

   Fixed-size headers, no negotiation, stateless request/response pairs
   matched by lba — the L2 principles transposed to storage. *)

type op = Read | Write

let op_code = function Read -> 1 | Write -> 2
let op_of_code = function 1 -> Some Read | 2 -> Some Write | _ -> None

type status = Ok_ | Error_

let status_code = function Ok_ -> 0 | Error_ -> 1
let status_of_code = function 0 -> Some Ok_ | 1 -> Some Error_ | _ -> None

let header_len = 9

type request = { op : op; lba : int; payload : bytes }

type response = { status : status; rlba : int; rpayload : bytes }

let encode_request { op; lba; payload } =
  let b = Bytes.create (header_len + Bytes.length payload) in
  Bytes.set b 0 (Char.chr (op_code op));
  Bytes.set_int32_le b 1 (Int32.of_int lba);
  Bytes.set_int32_le b 5 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  b

let decode_request b =
  if Bytes.length b < header_len then None
  else begin
    match op_of_code (Char.code (Bytes.get b 0)) with
    | None -> None
    | Some op ->
        let lba = Int32.to_int (Bytes.get_int32_le b 1) in
        let len = Int32.to_int (Bytes.get_int32_le b 5) in
        if lba < 0 || len < 0 || header_len + len > Bytes.length b then None
        else Some { op; lba; payload = Bytes.sub b header_len len }
  end

let encode_response { status; rlba; rpayload } =
  let b = Bytes.create (header_len + Bytes.length rpayload) in
  Bytes.set b 0 (Char.chr (status_code status));
  Bytes.set_int32_le b 1 (Int32.of_int rlba);
  Bytes.set_int32_le b 5 (Int32.of_int (Bytes.length rpayload));
  Bytes.blit rpayload 0 b header_len (Bytes.length rpayload);
  b

let decode_response b =
  if Bytes.length b < header_len then None
  else begin
    match status_of_code (Char.code (Bytes.get b 0)) with
    | None -> None
    | Some status ->
        let rlba = Int32.to_int (Bytes.get_int32_le b 1) in
        let len = Int32.to_int (Bytes.get_int32_le b 5) in
        if rlba < 0 || len < 0 || header_len + len > Bytes.length b then None
        else Some { status; rlba; rpayload = Bytes.sub b header_len len }
  end
