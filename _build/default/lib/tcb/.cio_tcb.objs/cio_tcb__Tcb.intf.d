lib/tcb/tcb.mli: Format
