lib/tcb/tcb.ml: Array Filename Fmt List String Sys
