(** TCB accounting (Figure 5 / E6): per-component LoC counted from this
    repository's own sources, composed into per-configuration core TCBs. *)

val set_repo_root : string -> unit
(** Directory containing [lib/]; defaults to ["."]. *)

val loc : string -> int
(** Lines of OCaml in a named component; raises on unknown names. *)

type profile = { config : string; core : string list; quarantined : string list }

val profiles : profile list
val profile : string -> profile

val core_loc : string -> int
(** LoC whose compromise exposes application data. *)

val quarantined_loc : string -> int
(** LoC isolated behind the intra-TEE L5 boundary (dual design only). *)

val pp_profile : Format.formatter -> string -> unit
