(** Host observability metering (the "Obs." axis of Figure 5): taps record
    host-visible boundary events; the score estimates leaked bits per
    event. Only the ordering across boundaries is meaningful. *)

type event = { time : int64; kind : string; size : int }

type t

val create : string -> t
val name : t -> string
val record : t -> time:int64 -> kind:string -> size:int -> unit
val count : t -> int
val events : t -> event list
val clear : t -> unit

val kinds : t -> int
(** Number of distinct operation kinds the host observed. *)

val entropy_bits : t -> float
(** Empirical entropy of (kind, size-bucket, gap-bucket) per event. *)

val score : t -> float

val pp_summary : Format.formatter -> t -> unit
