(* Host observability metering — the "Obs." axis of Figure 5.

   §2.2 defines observability as the non-architectural side channel the
   I/O boundary exposes: which operations the host sees, their metadata,
   sizes and timing. A tap records every host-visible event at a given
   boundary; the score estimates how many bits each event leaks by the
   empirical entropy of its (kind, size-bucket, gap-bucket) triple, plus a
   kind-richness term. The absolute number is not meaningful (no
   simulation could make it so) — the *ordering* across boundaries is the
   reproduced result: syscall-level > raw-L2 > tunneled, with the dual
   boundary equal to raw-L2 by construction. *)

type event = { time : int64; kind : string; size : int }

type t = {
  name : string;
  mutable events : event list;  (* newest first *)
  mutable count : int;
}

let create name = { name; events = []; count = 0 }

let name t = t.name

let record t ~time ~kind ~size =
  t.events <- { time; kind; size } :: t.events;
  t.count <- t.count + 1

let count t = t.count
let events t = List.rev t.events

let clear t =
  t.events <- [];
  t.count <- 0

let kinds t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace tbl e.kind ()) t.events;
  Hashtbl.length tbl

(* Bucketing: sizes by power of two, gaps by decade of microseconds. *)
let size_bucket size =
  if size <= 0 then 0 else Cio_util.Bitops.log2 (Cio_util.Bitops.next_power_of_two size)

let gap_bucket ns =
  if ns <= 0L then 0
  else begin
    let us = Int64.to_int (Int64.div ns 1000L) in
    let rec decade acc v = if v = 0 then acc else decade (acc + 1) (v / 10) in
    decade 0 us
  end

let entropy_of_counts counts total =
  if total = 0 then 0.0
  else
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. float_of_int total in
        acc -. (p *. (log p /. log 2.0)))
      counts 0.0

let entropy_bits t =
  let ordered = events t in
  let counts = Hashtbl.create 32 in
  let total = ref 0 in
  let prev_time = ref None in
  List.iter
    (fun e ->
      let gap = match !prev_time with None -> 0L | Some p -> Int64.sub e.time p in
      prev_time := Some e.time;
      let key = (e.kind, size_bucket e.size, gap_bucket gap) in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key));
      incr total)
    ordered;
  entropy_of_counts counts !total

(* Overall leakage score: per-event entropy plus a term for the richness
   of the operation vocabulary the host observes. *)
let score t = entropy_bits t +. log (float_of_int (max 1 (kinds t))) /. log 2.0

let pp_summary ppf t =
  Fmt.pf ppf "%s: %d events, %d kinds, %.2f bits/event, score %.2f" t.name t.count (kinds t)
    (entropy_bits t) (score t)
