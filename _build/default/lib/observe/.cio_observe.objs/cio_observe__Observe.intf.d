lib/observe/observe.mli: Format
