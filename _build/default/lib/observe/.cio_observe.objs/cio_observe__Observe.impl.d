lib/observe/observe.ml: Cio_util Fmt Hashtbl Int64 List Option
