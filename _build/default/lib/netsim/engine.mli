(** Deterministic discrete-event engine with a nanosecond virtual clock.

    Ties at equal timestamps run in scheduling order. *)

type t

val create : unit -> t
val now : t -> int64

val schedule_at : t -> time:int64 -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [time] is in the past. *)

val schedule : t -> after:int64 -> (unit -> unit) -> unit

val pending : t -> int
(** Number of queued events. *)

val step : t -> bool
(** Run the earliest event; [false] when the agenda is empty. *)

val run : ?until:int64 -> t -> unit
(** Drain the agenda, or run events up to and including [until] and set
    the clock to [until]. *)

val advance : t -> by:int64 -> unit

val stop : t -> unit
(** Abort the current [run] after the in-flight event returns. *)
