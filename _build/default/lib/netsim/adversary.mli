(** Deterministic network adversary (drop / duplicate / corrupt / reorder /
    replay) installable as a {!Link.tamper}. *)

open Cio_util

type profile = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  replay : float;
  extra_delay_ns : int64;
}

val benign : profile
val hostile : profile

type stats = {
  mutable seen : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable reordered : int;
  mutable replayed : int;
}

type t

val create : ?memory_limit:int -> rng:Rng.t -> profile -> t
val stats : t -> stats

val tamper : t -> Link.tamper

val install : t -> Link.t -> src:Link.endpoint -> unit
