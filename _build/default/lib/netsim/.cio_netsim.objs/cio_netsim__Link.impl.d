lib/netsim/link.ml: Bytes Engine Int64 List
