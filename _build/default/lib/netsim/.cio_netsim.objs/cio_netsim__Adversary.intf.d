lib/netsim/adversary.mli: Cio_util Link Rng
