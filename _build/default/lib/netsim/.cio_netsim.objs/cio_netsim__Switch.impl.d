lib/netsim/switch.ml: Array Bytes Char Engine Hashtbl Queue
