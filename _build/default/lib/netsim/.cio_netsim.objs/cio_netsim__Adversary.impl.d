lib/netsim/adversary.ml: Array Bytes Char Cio_util Link List Rng
