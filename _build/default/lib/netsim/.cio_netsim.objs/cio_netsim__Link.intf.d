lib/netsim/link.mli: Engine
