lib/netsim/engine.ml: Array Int64
