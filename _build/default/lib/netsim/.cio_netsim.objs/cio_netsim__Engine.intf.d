lib/netsim/engine.mli:
