lib/netsim/switch.mli: Engine
