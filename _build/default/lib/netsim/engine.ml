(* Discrete-event simulation core.

   A single virtual clock (nanoseconds) and a binary-heap agenda. Ties are
   broken by insertion order so runs are fully deterministic. All network
   latency/bandwidth behaviour in the reproduction is expressed as events
   on this engine. *)

type event = { time : int64; seq : int; action : unit -> unit }

type t = {
  mutable now : int64;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable stopped : bool;
}

let create () = { now = 0L; heap = Array.make 64 { time = 0L; seq = 0; action = ignore }; size = 0; next_seq = 0; stopped = false }

let now t = t.now

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) t.heap.(0) in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule_at t ~time action =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule t ~after action = schedule_at t ~time:(Int64.add t.now after) action

let pending t = t.size

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

let step t =
  match pop t with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      ev.action ();
      true

let stop t = t.stopped <- true

let peek t = if t.size = 0 then None else Some t.heap.(0)

let run ?until t =
  t.stopped <- false;
  let in_horizon ev = match until with None -> true | Some h -> ev.time <= h in
  let rec loop () =
    if t.stopped then ()
    else begin
      match peek t with
      | None -> (match until with None -> () | Some h -> t.now <- max t.now h)
      | Some ev ->
          if in_horizon ev then begin
            ignore (pop t);
            t.now <- ev.time;
            ev.action ();
            loop ()
          end
          else t.now <- (match until with Some h -> max t.now h | None -> t.now)
    end
  in
  loop ()

let advance t ~by = run ~until:(Int64.add t.now by) t
