(* Network/host adversary as a tamper hook.

   Models the §2.1 threat model's network-level attacker: it can drop,
   duplicate, corrupt, delay, reorder and replay traffic. It cannot read
   TLS plaintext — cryptographic protection is the L5 boundary's job and
   is tested by aiming this adversary at it. All randomness is drawn from
   an explicit RNG so attack runs replay deterministically. *)

open Cio_util

type profile = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;   (* probability of holding a frame back one slot *)
  replay : float;    (* probability of re-injecting a previously seen frame *)
  extra_delay_ns : int64;  (* delay added to reordered frames *)
}

let benign = { drop = 0.0; duplicate = 0.0; corrupt = 0.0; reorder = 0.0; replay = 0.0; extra_delay_ns = 0L }

let hostile =
  { drop = 0.02; duplicate = 0.02; corrupt = 0.02; reorder = 0.05; replay = 0.02; extra_delay_ns = 50_000L }

type stats = {
  mutable seen : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable reordered : int;
  mutable replayed : int;
}

type t = {
  profile : profile;
  rng : Rng.t;
  stats : stats;
  mutable held : bytes option;     (* frame being reordered *)
  mutable memory : bytes list;     (* replay source, newest first *)
  memory_limit : int;
}

let create ?(memory_limit = 32) ~rng profile =
  {
    profile;
    rng;
    stats = { seen = 0; dropped = 0; duplicated = 0; corrupted = 0; reordered = 0; replayed = 0 };
    held = None;
    memory = [];
    memory_limit;
  }

let stats t = t.stats

let remember t frame =
  t.memory <- frame :: (if List.length t.memory >= t.memory_limit then List.filteri (fun i _ -> i < t.memory_limit - 1) t.memory else t.memory)

let corrupt_frame t frame =
  let frame = Bytes.copy frame in
  if Bytes.length frame > 0 then begin
    let i = Rng.int t.rng (Bytes.length frame) in
    Bytes.set frame i (Char.chr (Char.code (Bytes.get frame i) lxor (1 lsl Rng.int t.rng 8)))
  end;
  frame

let hit t p = p > 0.0 && Rng.float t.rng < p

(* The tamper hook. Frames released from the reorder slot carry the
   profile's extra delay so they genuinely arrive after the frame that
   overtook them. *)
let tamper t : Link.tamper =
 fun frame ->
  t.stats.seen <- t.stats.seen + 1;
  remember t frame;
  let out = ref [] in
  let emit ?(delay = 0L) f = out := { Link.extra_delay_ns = delay; frame = f } :: !out in
  (* Release a previously held frame alongside this one, late. *)
  (match t.held with
  | Some held ->
      t.held <- None;
      emit ~delay:t.profile.extra_delay_ns held
  | None -> ());
  if hit t t.profile.drop then t.stats.dropped <- t.stats.dropped + 1
  else if hit t t.profile.reorder then begin
    t.stats.reordered <- t.stats.reordered + 1;
    t.held <- Some frame
  end
  else begin
    let f = if hit t t.profile.corrupt then begin
        t.stats.corrupted <- t.stats.corrupted + 1;
        corrupt_frame t frame
      end
      else frame
    in
    emit f;
    if hit t t.profile.duplicate then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      emit ~delay:1000L f
    end
  end;
  if hit t t.profile.replay then begin
    match t.memory with
    | [] -> ()
    | frames ->
        t.stats.replayed <- t.stats.replayed + 1;
        emit ~delay:2000L (Rng.pick t.rng (Array.of_list frames))
  end;
  List.rev !out

let install t link ~src = Link.set_tamper link ~src (Some (tamper t))
