(* Point-to-point duplex link with latency, serialization delay and FIFO
   queueing, plus optional in-transit tamper hooks (the adversary sits
   there) and transit taps (the observer sits there). *)

type endpoint = A | B

let peer = function A -> B | B -> A

let endpoint_name = function A -> "A" | B -> "B"

(* A tamper hook maps one in-flight frame to the frames actually delivered
   (empty = drop; several = duplication/injection), each with extra delay. *)
type delivery = { extra_delay_ns : int64; frame : bytes }

type tamper = bytes -> delivery list

type direction_state = {
  mutable busy_until : int64;  (* serialization FIFO *)
  mutable tamper : tamper option;
  mutable frames : int;
  mutable bytes : int;
}

type t = {
  engine : Engine.t;
  latency_ns : int64;
  gbps : float;
  mutable rx_a : (bytes -> unit) option;
  mutable rx_b : (bytes -> unit) option;
  a_to_b : direction_state;
  b_to_a : direction_state;
  mutable on_transit : (time:int64 -> src:endpoint -> bytes -> unit) option;
}

let direction t src = match src with A -> t.a_to_b | B -> t.b_to_a

let create ?(latency_ns = 10_000L) ?(gbps = 10.0) engine =
  let dir () = { busy_until = 0L; tamper = None; frames = 0; bytes = 0 } in
  {
    engine;
    latency_ns;
    gbps;
    rx_a = None;
    rx_b = None;
    a_to_b = dir ();
    b_to_a = dir ();
    on_transit = None;
  }

let attach t ep rx = match ep with A -> t.rx_a <- Some rx | B -> t.rx_b <- Some rx

let set_tamper t ~src tamper = (direction t src).tamper <- tamper
let set_transit_tap t tap = t.on_transit <- tap

let frames_sent t ~src = (direction t src).frames
let bytes_sent t ~src = (direction t src).bytes

let serialization_ns t nbytes =
  (* bytes * 8 bits / (gbps bits per ns) *)
  Int64.of_float (float_of_int (nbytes * 8) /. t.gbps)

let deliver t dst frame =
  let rx = match dst with A -> t.rx_a | B -> t.rx_b in
  match rx with
  | Some rx -> rx frame
  | None -> ()  (* unattached endpoint: frame lost on the floor *)

let send t ~src frame =
  let dir = direction t src in
  dir.frames <- dir.frames + 1;
  dir.bytes <- dir.bytes + Bytes.length frame;
  (match t.on_transit with
  | Some tap -> tap ~time:(Engine.now t.engine) ~src frame
  | None -> ());
  let now = Engine.now t.engine in
  let start = if dir.busy_until > now then dir.busy_until else now in
  let tx_done = Int64.add start (serialization_ns t (Bytes.length frame)) in
  dir.busy_until <- tx_done;
  let deliveries =
    match dir.tamper with
    | None -> [ { extra_delay_ns = 0L; frame } ]
    | Some f -> f frame
  in
  List.iter
    (fun d ->
      let arrival = Int64.add (Int64.add tx_done t.latency_ns) d.extra_delay_ns in
      Engine.schedule_at t.engine ~time:arrival (fun () -> deliver t (peer src) d.frame))
    deliveries
