(** Duplex link with latency, bandwidth (FIFO serialization) and optional
    tamper/tap hooks per direction. *)

type endpoint = A | B

val peer : endpoint -> endpoint
val endpoint_name : endpoint -> string

type delivery = { extra_delay_ns : int64; frame : bytes }

type tamper = bytes -> delivery list
(** Maps one in-flight frame to the frames actually delivered: [[]] drops,
    several entries duplicate or inject. *)

type t

val create : ?latency_ns:int64 -> ?gbps:float -> Engine.t -> t
val attach : t -> endpoint -> (bytes -> unit) -> unit

val set_tamper : t -> src:endpoint -> tamper option -> unit
(** Install/remove the adversary on the [src]→peer direction. *)

val set_transit_tap : t -> (time:int64 -> src:endpoint -> bytes -> unit) option -> unit
(** Metadata tap fired for every frame entering the link. *)

val frames_sent : t -> src:endpoint -> int
val bytes_sent : t -> src:endpoint -> int

val send : t -> src:endpoint -> bytes -> unit
(** Queue a frame; it arrives at the peer after serialization + latency
    (+ tampering). *)
