(** Multi-port learning switch for multi-party topologies: MAC learning,
    unknown/broadcast flooding, deterministic per-port delivery through
    the engine. *)

type t

val create : ?latency_ns:int64 -> ports:int -> Engine.t -> t
val port_count : t -> int

val attach : t -> port:int -> (bytes -> unit) -> unit
(** Set the egress callback for a port. *)

val ingress : t -> port:int -> bytes -> unit
(** Inject a frame arriving on [port]. *)

val learned_port : t -> mac:int -> int option
val frames_in : t -> port:int -> int
val frames_out : t -> port:int -> int
val flooded : t -> int

val endpoint : t -> port:int -> (bytes -> unit) * (unit -> bytes option)
(** (transmit, poll) pair bound to a port, ready to back a
    {!Cio_tcpip.Netif.t}. *)
