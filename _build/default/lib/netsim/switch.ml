(* Multi-port learning switch: connects several endpoints on the simulated
   network (e.g. one confidential unit serving several remote clients).

   Standard L2 semantics: learn the source MAC per ingress port, forward
   to the learned port for the destination MAC, flood unknown/broadcast
   destinations to every other port. Per-port egress delivery goes through
   the engine with the configured latency, keeping multi-party runs
   deterministic. *)

type port = {
  pid : int;
  mutable rx : (bytes -> unit) option;
  mutable frames_in : int;
  mutable frames_out : int;
}

type t = {
  engine : Engine.t;
  latency_ns : int64;
  ports : port array;
  mac_table : (int, int) Hashtbl.t;  (* mac -> port id *)
  mutable flooded : int;
}

let create ?(latency_ns = 10_000L) ~ports engine =
  if ports < 2 then invalid_arg "Switch.create: need at least two ports";
  {
    engine;
    latency_ns;
    ports = Array.init ports (fun pid -> { pid; rx = None; frames_in = 0; frames_out = 0 });
    mac_table = Hashtbl.create 16;
    flooded = 0;
  }

let port_count t = Array.length t.ports

let attach t ~port rx =
  if port < 0 || port >= Array.length t.ports then invalid_arg "Switch.attach: bad port";
  t.ports.(port).rx <- Some rx

let frames_in t ~port = t.ports.(port).frames_in
let frames_out t ~port = t.ports.(port).frames_out
let flooded t = t.flooded

let learned_port t ~mac = Hashtbl.find_opt t.mac_table mac

(* Destination/source MACs straight from the frame header; a frame too
   short to carry them is dropped silently (as a cut-through switch
   would). *)
let dst_mac frame =
  let o i = Char.code (Bytes.get frame i) in
  ((o 0 lsl 40) lor (o 1 lsl 32) lor (o 2 lsl 24) lor (o 3 lsl 16) lor (o 4 lsl 8) lor o 5 : int)

let src_mac frame =
  let o i = Char.code (Bytes.get frame (6 + i)) in
  (o 0 lsl 40) lor (o 1 lsl 32) lor (o 2 lsl 24) lor (o 3 lsl 16) lor (o 4 lsl 8) lor o 5

let deliver t pid frame =
  let p = t.ports.(pid) in
  match p.rx with
  | None -> ()
  | Some rx ->
      p.frames_out <- p.frames_out + 1;
      Engine.schedule t.engine ~after:t.latency_ns (fun () -> rx frame)

let broadcast_mac = 0xFFFFFFFFFFFF

let ingress t ~port frame =
  if port < 0 || port >= Array.length t.ports then invalid_arg "Switch.ingress: bad port";
  if Bytes.length frame >= 12 then begin
    let p = t.ports.(port) in
    p.frames_in <- p.frames_in + 1;
    Hashtbl.replace t.mac_table (src_mac frame) port;
    let dst = dst_mac frame in
    match (dst = broadcast_mac, Hashtbl.find_opt t.mac_table dst) with
    | false, Some out when out <> port -> deliver t out frame
    | false, Some _ -> ()  (* destination on the ingress port: filter *)
    | true, _ | false, None ->
        t.flooded <- t.flooded + 1;
        Array.iter (fun q -> if q.pid <> port then deliver t q.pid frame) t.ports
  end

(* A netif-shaped endpoint bound to one switch port: transmit goes into
   the switch; received frames queue for polling. *)
let endpoint t ~port =
  let inbox = Queue.create () in
  attach t ~port (fun frame -> Queue.add frame inbox);
  let transmit frame = ingress t ~port frame in
  let poll () = if Queue.is_empty inbox then None else Some (Queue.take inbox) in
  (transmit, poll)
