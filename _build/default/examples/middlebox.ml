(* Confidential middlebox (ShieldBox/LightBox-class workload): a packet
   inspection function running inside the TEE, fed raw L2 messages
   through the safe ring. Demonstrates the paper's middlebox use case on
   the cionet interface: line-rate-style processing, zero trust in the
   host, and confinement of a hostile burst injected mid-stream.

     dune exec examples/middlebox.exe
*)

open Cio_cionet
open Cio_util

(* The network function: flow accounting + naive signature match. *)
type verdict = Pass | Flag

let inspect payload =
  let s = Bytes.to_string payload in
  let suspicious = [ "exploit"; "\x90\x90\x90\x90"; "/etc/passwd" ] in
  let hit needle =
    let n = String.length s and c = String.length needle in
    let rec go i = i + c <= n && (String.equal (String.sub s i c) needle || go (i + 1)) in
    c > 0 && go 0
  in
  if List.exists hit suspicious then Flag else Pass

let () =
  let cfg = { Config.default with Config.ring_slots = 64 } in
  let driver = Driver.create ~name:"middlebox" cfg in
  let forwarded = ref 0 in
  let host = Host_model.create ~driver ~transmit:(fun _ -> incr forwarded) in
  let rng = Rng.create 99L in

  let passed = ref 0 and flagged = ref 0 and bytes = ref 0 in
  let process payload =
    bytes := !bytes + Bytes.length payload;
    match inspect payload with
    | Pass ->
        incr passed;
        (* Forward out the TX ring (the egress port). *)
        ignore (Driver.transmit driver payload)
    | Flag -> incr flagged
  in

  (* Traffic: 2000 frames, 1% carrying a "signature". *)
  let total_frames = 2000 in
  Fmt.pr "middlebox: inspecting %d frames through the safe ring...@." total_frames;
  for i = 1 to total_frames do
    let payload =
      if i mod 100 = 0 then Bytes.of_string "GET /etc/passwd HTTP/1.1"
      else Rng.bytes rng (64 + Rng.int rng 1200)
    in
    Host_model.deliver_rx host payload;
    Host_model.poll host;
    let rec drain () =
      match Driver.poll driver with
      | Some p ->
          process p;
          drain ()
      | None -> ()
    in
    drain ();
    Host_model.poll host  (* let the host consume the egress ring *)
  done;

  Fmt.pr "passed: %d  flagged: %d  forwarded by host: %d  bytes inspected: %d@." !passed !flagged
    !forwarded !bytes;
  let m = Driver.guest_meter driver in
  Fmt.pr "TEE cost: %d cycles total, %.1f cycles/byte (%a)@." (Cost.total m)
    (float_of_int (Cost.total m) /. float_of_int !bytes)
    Cost.pp_meter m;

  (* A hostile burst mid-stream: the middlebox must neither crash nor
     misclassify — hostile slots are confined and dataflow continues. *)
  Fmt.pr "@.injecting hostile host behaviour (lying lengths, garbage states)...@.";
  Host_model.inject host (Host_model.Lie_len 1_000_000);
  Host_model.inject host (Host_model.Garbage_state 0xBAD);
  Host_model.inject host (Host_model.Bad_index 424242);
  for _ = 1 to 50 do
    Host_model.deliver_rx host (Bytes.of_string "post-attack traffic");
    Host_model.poll host;
    let rec drain () =
      match Driver.poll driver with
      | Some p ->
          process p;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  let c = Ring.counters (Driver.rx_ring driver) in
  Fmt.pr "confined: lengths clamped %d, indices masked %d, states skipped %d@."
    c.Ring.len_clamped c.Ring.index_masked c.Ring.state_skipped;
  Fmt.pr "middlebox still running; %d frames passed in total.@." !passed
