(* Live migration by hot swap (§3.2 / E12): a confidential unit streams
   echoes while its device is ripped out and replaced mid-session. The
   zero-negotiation interface has no state to transfer; the old shared
   region is revoked wholesale; TCP absorbs the cable pull. A wire trace
   around the swap shows the host's view.

     dune exec examples/migration_demo.exe
*)

open Cio_core
open Cio_frame
open Cio_netsim
open Cio_util

let () =
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:8_000L ~gbps:10.0 engine in
  let rng = Rng.create 1207L in
  let now () = Engine.now engine in
  let ip_tee = Option.get (Addr.ipv4_of_string "10.0.0.1") in
  let ip_peer = Option.get (Addr.ipv4_of_string "10.0.0.2") in
  let mac_tee = Addr.mac_of_octets 2 0 0 0 0 1 in
  let mac_peer = Addr.mac_of_octets 2 0 0 0 0 2 in
  let psk = Bytes.of_string "migration-demo-psk-32-bytes-long" in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer ~neighbors:[ (ip_tee, mac_tee) ]
      ~psk ~psk_id:"mig" ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:443;
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"migratable" ~ip:ip_tee ~neighbors:[ (ip_peer, mac_peer) ]
      ~psk ~psk_id:"mig" ~rng:(Rng.split rng) ~now ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);

  (* Wire trace: armed around the swap. *)
  let tracing = ref false in
  Link.set_transit_tap link
    (Some
       (fun ~time ~src frame ->
         if !tracing then
           Fmt.pr "    %8Ld ns %s  %s@." time
             (match src with Link.A -> "tee->net" | Link.B -> "net->tee")
             (Pretty.frame_summary frame)));

  let ch = Dual.connect unit_ ~dst:ip_peer ~dst_port:443 in
  let pump () =
    Dual.poll unit_;
    Cio_cionet.Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:5_000L
  in
  let rec until pred n = pred () || (n > 0 && (pump (); until pred (n - 1))) in
  if not (until (fun () -> Channel.is_established ch) 5000) then failwith "no handshake";
  Fmt.pr "session established; streaming echoes...@.";

  let echoes = ref 0 and sent = ref 0 and swapped = ref false in
  let target = 24 in
  let finished =
    until
      (fun () ->
        (if !sent < target && !sent - !echoes < 2 then
           match Channel.send ch (Bytes.of_string (Printf.sprintf "echo-%02d" !sent)) with
           | Ok () -> incr sent
           | Error _ -> ());
        (match Channel.recv ch with Some _ -> incr echoes | None -> ());
        if !echoes = 12 && not !swapped then begin
          swapped := true;
          Fmt.pr "@.>>> hot swap at echo 12: revoking the old device wholesale <<<@.";
          tracing := true;
          Cio_cionet.Driver.hot_swap (Dual.driver unit_);
          Cio_cionet.Host_model.reattach host ~driver:(Dual.driver unit_);
          Fmt.pr "    device generation: %d; old region unmapped from the host@."
            (Cio_cionet.Driver.generation (Dual.driver unit_))
        end;
        if !echoes = 14 && !tracing then begin
          tracing := false;
          Fmt.pr "    (trace off)@.@."
        end;
        !echoes >= target)
      400_000
  in
  Fmt.pr "completed %d/%d echoes across the swap; session error: %s@." !echoes target
    (match Channel.error ch with
    | None -> "none"
    | Some e -> Cio_tls.Session.error_to_string e);
  Fmt.pr "nothing was negotiated or transferred: no feature bits, no ring state,@.";
  Fmt.pr "no sequence numbers — the §3.2 zero-negotiation principle is what makes@.";
  Fmt.pr "migration this boring. (finished=%b)@." finished
