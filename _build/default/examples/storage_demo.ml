(* Storage walk-through (§3.3): the dual boundary generalised to disks.
   A confidential database file is stored twice — once through a
   plain (lift-and-shift) file layer that trusts the block boundary, once
   through the sealed layer — and the host then attacks the disk.

     dune exec examples/storage_demo.exe
*)

open Cio_storage
open Cio_util

let database = Bytes.of_string (String.concat "\n" (List.init 50 (fun i ->
    Printf.sprintf "row %02d | account %06d | balance %d.%02d" i (1000 + i) (i * 997) (i mod 100))))

let () =
  Fmt.pr "== plain file layer (trusts the block boundary) ==@.";
  let dev, disk = Blockdev.create ~name:"plain-disk" ~blocks:64 () in
  let fs = File.create ~dev ~mode:File.Plain in
  (match File.write_file fs ~name:"ledger.db" database with
  | Ok () -> Fmt.pr "wrote ledger.db (%d bytes)@." (Bytes.length database)
  | Error e -> failwith (File.error_to_string e));
  Blockdev.disk_inject disk Blockdev.Corrupt_block;
  (match File.read_file fs ~name:"ledger.db" with
  | Ok got when Bytes.equal got database -> Fmt.pr "read back intact (host was honest)@."
  | Ok _ -> Fmt.pr "read back ACCEPTED but WRONG — silent corruption of the ledger!@."
  | Error e -> Fmt.pr "error: %s@." (File.error_to_string e));

  Fmt.pr "@.== sealed file layer (cryptographic high boundary) ==@.";
  let dev2, disk2 = Blockdev.create ~name:"sealed-disk" ~blocks:64 () in
  let key = Bytes.of_string "fs-sealing-key-from-attestation!" in
  let fs2 = File.create ~dev:dev2 ~mode:(File.Sealed key) in
  (match File.write_file fs2 ~name:"ledger.db" database with
  | Ok () -> Fmt.pr "wrote ledger.db sealed (per-block AEAD, lba+version bound)@."
  | Error e -> failwith (File.error_to_string e));
  (match File.read_file fs2 ~name:"ledger.db" with
  | Ok got when Bytes.equal got database -> Fmt.pr "honest read: intact@."
  | _ -> Fmt.pr "unexpected failure on honest read@.");
  Blockdev.disk_inject disk2 Blockdev.Corrupt_block;
  (match File.read_file fs2 ~name:"ledger.db" with
  | Error (File.Integrity msg) -> Fmt.pr "corrupt block  -> fail-closed: %s@." msg
  | Ok _ -> Fmt.pr "corrupt block  -> MISSED@."
  | Error e -> Fmt.pr "corrupt block  -> %s@." (File.error_to_string e));
  Blockdev.disk_inject disk2 Blockdev.Wrong_lba;
  (match File.read_file fs2 ~name:"ledger.db" with
  | Error (File.Integrity msg) -> Fmt.pr "remapped block -> fail-closed: %s@." msg
  | Ok _ -> Fmt.pr "remapped block -> MISSED@."
  | Error e -> Fmt.pr "remapped block -> %s@." (File.error_to_string e));

  let m = File.meter fs2 in
  Fmt.pr "@.sealed-path cost: %d cycles (%a)@." (Cost.total m) Cost.pp_meter m;
  Fmt.pr "the hostile disk can at worst deny service — never alter the ledger.@."
