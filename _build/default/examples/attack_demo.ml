(* Attack demo: the §2.5 interface-attack classes aimed at all four
   interface designs, with a narrated walk-through of one exploit.

     dune exec examples/attack_demo.exe
*)

open Cio_attack
open Cio_virtio
open Cio_mem

let () =
  Fmt.pr "== Walk-through: the used.len lie against the legacy driver ==@.@.";
  let transport = Transport.create ~name:"demo" () in
  let device =
    Device.create ~rx:(Transport.rx transport) ~tx:(Transport.tx transport) ~transmit:ignore
  in
  let driver = Driver_unhardened.create transport in
  (* A previous tenant's flow left residue in the adjacent RX buffer. *)
  let secret = "SSN=078-05-1120; card=4556-7375-8689-9855" in
  Region.guest_write (Transport.region transport)
    ~off:(Transport.rx_buf_offset transport 1)
    (Bytes.of_string secret);
  Fmt.pr "1. adjacent buffer holds another flow's residue: %S@." secret;
  Fmt.pr "2. host delivers a 5-byte frame but reports used.len = 3000@.";
  Device.inject device (Device.Lie_used_len 3000);
  Device.deliver_rx device (Bytes.of_string "hello");
  Device.poll device;
  (match Driver_unhardened.poll driver with
  | Some frame ->
      let s = Bytes.to_string frame in
      Fmt.pr "3. unhardened driver hands the stack %d bytes@." (Bytes.length frame);
      let leaked =
        let n = String.length s and c = String.length secret in
        let rec go i = i + c <= n && (String.equal (String.sub s i c) secret || go (i + 1)) in
        go 0
      in
      Fmt.pr "4. the secret %s@."
        (if leaked then "IS IN THE DELIVERED FRAME — information leak" else "did not leak")
  | None -> Fmt.pr "no frame delivered@.");
  Fmt.pr "@.The same lie against the safe interface is clamped to the slot capacity@.";
  Fmt.pr "by construction, and against the dual boundary the mangled record simply@.";
  Fmt.pr "fails authentication. The full matrix:@.@.";

  (* The full E4 matrix. *)
  Fmt.pr "%-20s" "scenario";
  List.iter (fun t -> Fmt.pr " %-18s" (Attack.target_name t)) Attack.all_targets;
  Fmt.pr "@.";
  List.iter
    (fun (s, row) ->
      Fmt.pr "%-20s" s.Attack.sname;
      List.iter (fun (_, o) -> Fmt.pr " %-18s" (Attack.outcome_name o)) row;
      Fmt.pr "@.")
    (Attack.matrix ());
  Fmt.pr "@.";
  List.iter
    (fun (s, _) -> Fmt.pr "%-20s %s@." s.Attack.sname s.Attack.description)
    (Attack.matrix ());

  Fmt.pr "@.== Ternary trust model: what a fully compromised I/O stack can do ==@.";
  let sc = Attack.run_stack_compromise () in
  Fmt.pr "read application memory directly : %s (%s)@."
    (Attack.outcome_name sc.Attack.direct_read)
    (Attack.outcome_detail sc.Attack.direct_read);
  Fmt.pr "forge application data in the stream: %s (%s)@."
    (Attack.outcome_name sc.Attack.forged_stream)
    (Attack.outcome_detail sc.Attack.forged_stream);
  Fmt.pr "=> compromising the stack buys observability only; reaching application@.";
  Fmt.pr "   data requires a second, independent break (multi-stage attack).@."
