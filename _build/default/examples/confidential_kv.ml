(* Confidential key-value store: the lift-and-shift workload the paper's
   introduction motivates. The store runs inside a dual-boundary
   confidential unit and *listens*; a plain remote client connects over
   the simulated network and issues PUT/GET/DEL commands. Keys and values
   never leave the TEE unsealed, and everything the untrusted host
   handles is ciphertext in safe-ring slots.

     dune exec examples/confidential_kv.exe
*)

open Cio_core
open Cio_frame
open Cio_netsim
open Cio_util

(* Wire protocol: one request per L5 message.
     PUT <key> <value> | GET <key> | DEL <key>
   Replies: OK | VALUE <value> | MISSING *)
let handle_request table line =
  match String.split_on_char ' ' line with
  | [ "GET"; key ] -> (
      match Hashtbl.find_opt table key with
      | Some v -> "VALUE " ^ v
      | None -> "MISSING")
  | "PUT" :: key :: rest when rest <> [] ->
      Hashtbl.replace table key (String.concat " " rest);
      "OK"
  | [ "DEL"; key ] ->
      if Hashtbl.mem table key then begin
        Hashtbl.remove table key;
        "OK"
      end
      else "MISSING"
  | _ -> "ERR bad request"

let () =
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:15_000L ~gbps:10.0 engine in
  let rng = Rng.create 4242L in
  let now () = Engine.now engine in
  let ip_tee = Option.get (Addr.ipv4_of_string "10.0.0.1") in
  let ip_client = Option.get (Addr.ipv4_of_string "10.0.0.2") in
  let mac_tee = Addr.mac_of_octets 2 0 0 0 0 1 in
  let mac_client = Addr.mac_of_octets 2 0 0 0 0 2 in
  let psk = Bytes.of_string "kv-attestation-provisioned-key-1" in

  (* The confidential KV server. *)
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"kv-tee" ~ip:ip_tee ~neighbors:[ (ip_client, mac_client) ]
      ~psk ~psk_id:"kv" ~rng:(Rng.split rng) ~now ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  let listener = Dual.listen unit_ ~port:6379 in
  let table : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let server_channels = ref [] in

  (* The tenant's client, elsewhere on the network. *)
  let client_peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_client ~mac:mac_client
      ~neighbors:[ (ip_tee, mac_tee) ] ~psk ~psk_id:"kv" ~rng:(Rng.split rng) ~now ()
  in
  let client = Peer.connect client_peer ~dst:ip_tee ~dst_port:6379 in

  let pump () =
    Dual.poll unit_;
    (match Dual.accept listener with
    | Some ch -> server_channels := ch :: !server_channels
    | None -> ());
    (* Serve requests on every accepted channel. *)
    List.iter
      (fun ch ->
        let rec serve () =
          match Channel.recv ch with
          | Some req ->
              let reply = handle_request table (Bytes.to_string req) in
              ignore (Channel.send ch (Bytes.of_string reply));
              serve ()
          | None -> ()
        in
        serve ())
      !server_channels;
    Cio_cionet.Host_model.poll host;
    Peer.poll client_peer;
    Engine.advance engine ~by:2_000L
  in
  let rec wait_for pred n =
    pred () || (n > 0 && (pump (); wait_for pred (n - 1)))
  in
  if not (wait_for (fun () -> Channel.is_established client) 5_000) then begin
    prerr_endline "client failed to connect";
    exit 1
  end;
  Fmt.pr "client connected to the confidential KV store.@.";

  let request line =
    (match Channel.send client (Bytes.of_string line) with
    | Ok () -> ()
    | Error e -> failwith (Cio_tls.Session.error_to_string e));
    let reply = ref None in
    ignore
      (wait_for
         (fun () ->
           (match Channel.recv client with Some r -> reply := Some r | None -> ());
           !reply <> None)
         5_000);
    match !reply with
    | Some r ->
        let s = Bytes.to_string r in
        Fmt.pr "  %-28s -> %s@." line s;
        s
    | None -> failwith ("no reply to: " ^ line)
  in
  ignore (request "PUT user:1 alice");
  ignore (request "PUT user:2 bob");
  ignore (request "GET user:1");
  ignore (request "GET user:3");
  ignore (request "PUT user:1 alice-updated");
  ignore (request "GET user:1");
  ignore (request "DEL user:2");
  ignore (request "GET user:2");

  Fmt.pr "@.store now holds %d keys; the host handled %d+%d frames of ciphertext@."
    (Hashtbl.length table)
    (Link.frames_sent link ~src:Link.A)
    (Link.frames_sent link ~src:Link.B);
  Fmt.pr "TEE datapath cost: %d cycles across %d compartment handoffs.@."
    (Cost.total (Dual.meter unit_))
    (Dual.crossings unit_)
