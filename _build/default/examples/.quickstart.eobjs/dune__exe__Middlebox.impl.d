examples/middlebox.ml: Bytes Cio_cionet Cio_util Config Cost Driver Fmt Host_model List Ring Rng String
