examples/confidential_kv.mli:
