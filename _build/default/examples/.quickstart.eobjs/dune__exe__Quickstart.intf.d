examples/quickstart.mli:
