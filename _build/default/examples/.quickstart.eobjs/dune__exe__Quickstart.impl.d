examples/quickstart.ml: Addr Bytes Channel Cio_cionet Cio_core Cio_frame Cio_netsim Cio_tls Cio_util Cost Dual Engine Fmt Link Option Peer Rng
