examples/migration_demo.ml: Addr Bytes Channel Cio_cionet Cio_core Cio_frame Cio_netsim Cio_tls Cio_util Dual Engine Fmt Link Option Peer Pretty Printf Rng
