examples/storage_demo.ml: Blockdev Bytes Cio_storage Cio_util Cost File Fmt List Printf String
