examples/middlebox.mli:
