examples/storage_demo.mli:
