examples/confidential_kv.ml: Addr Bytes Channel Cio_cionet Cio_core Cio_frame Cio_netsim Cio_tls Cio_util Cost Dual Engine Fmt Hashtbl Link List Option Peer Rng String
