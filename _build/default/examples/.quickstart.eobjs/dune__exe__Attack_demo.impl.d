examples/attack_demo.ml: Attack Bytes Cio_attack Cio_mem Cio_virtio Device Driver_unhardened Fmt List Region String Transport
