(* §3.4 / E10: SPDM attestation, IDE link, and the compromised-device
   caveat. *)

open Cio_util
open Cio_dda

let rng () = Rng.create 31L

let test_honest_device_attests () =
  match Dda.establish ~rng:(rng ()) () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Dda.error_to_string e)

let test_counterfeit_fails_attestation () =
  match Dda.establish ~counterfeit:true ~rng:(rng ()) () with
  | Error (Dda.Attestation_failed Spdm.Bad_signature) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Dda.error_to_string e)
  | Ok _ -> Alcotest.fail "counterfeit must fail attestation"

let test_unknown_measurement_fails () =
  let root_key = Bytes.of_string "vendor-root-endorsement-key-32b." in
  let device =
    Spdm.make_device ~root_key ~device_id:"nic0"
      ~measurement:(Cio_crypto.Sha256.digest_string "rogue-firmware")
  in
  match
    Spdm.attest ~root_key
      ~reference_measurements:[ Cio_crypto.Sha256.digest_string "golden" ]
      ~rng:(rng ()) device
  with
  | Error Spdm.Unknown_measurement -> ()
  | _ -> Alcotest.fail "unknown measurement must fail"

let test_transfer_roundtrip () =
  match Dda.establish ~rng:(rng ()) () with
  | Error e -> Alcotest.fail (Dda.error_to_string e)
  | Ok t -> (
      match Dda.transfer t (Bytes.of_string "dma-payload") with
      | Ok data -> Helpers.check_bytes "echoed" (Bytes.of_string "dma-payload") data
      | Error e -> Alcotest.fail (Dda.error_to_string e))

let test_host_tamper_detected () =
  match Dda.establish ~rng:(rng ()) () with
  | Error e -> Alcotest.fail (Dda.error_to_string e)
  | Ok t -> (
      match Dda.transfer_with_host_tamper t (Bytes.of_string "payload") with
      | Error Dda.Link_tampered -> ()
      | _ -> Alcotest.fail "IDE must reject host-in-the-middle")

let test_compromised_device_defeats_dda () =
  (* The paper's caveat: attestation proves identity, not honesty. *)
  match Dda.establish ~behavior:Dda.Compromised ~rng:(rng ()) () with
  | Error e -> Alcotest.fail (Dda.error_to_string e)
  | Ok t -> (
      match Dda.transfer t (Bytes.of_string "trusting-you") with
      | Ok data ->
          Alcotest.(check bool) "corrupted data accepted as genuine" false
            (Bytes.equal data (Bytes.of_string "trusting-you"))
      | Error _ -> Alcotest.fail "the compromise is silent by design")

let test_dda_datapath_cheap () =
  (* IDE crypto is hardware: the TEE pays only DMA movement, far less
     than a software AEAD pass over the same bytes. *)
  match Dda.establish ~rng:(rng ()) () with
  | Error e -> Alcotest.fail (Dda.error_to_string e)
  | Ok t ->
      let payload = Bytes.make 4096 'd' in
      ignore (Dda.transfer t payload);
      let dda_cycles = Cost.total (Dda.meter t) in
      let sw_crypto = Cost.aead_cost Cost.default 4096 in
      Alcotest.(check bool) "guest-side DDA cost < one software AEAD pass" true
        (Cost.cycles_of (Dda.meter t) Cost.Dma > 0 && dda_cycles < 4 * sw_crypto)

let test_ide_sequence_advances_only_on_success () =
  let key = Bytes.make 32 'I' in
  let a = Ide.create ~key () and b = Ide.create ~key () in
  let tlp1 = Ide.seal_tlp a (Bytes.of_string "one") in
  let bad = Bytes.copy tlp1 in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "tampered rejected" true (Ide.open_tlp b bad = None);
  (* The honest TLP still opens: the window did not slip. *)
  match Ide.open_tlp b tlp1 with
  | Some p -> Helpers.check_bytes "original opens" (Bytes.of_string "one") p
  | None -> Alcotest.fail "sequence must not advance on failure"

let test_ide_replay_rejected () =
  let key = Bytes.make 32 'I' in
  let a = Ide.create ~key () and b = Ide.create ~key () in
  let tlp = Ide.seal_tlp a (Bytes.of_string "once") in
  ignore (Ide.open_tlp b tlp);
  Alcotest.(check bool) "replay rejected" true (Ide.open_tlp b tlp = None)

let suite =
  [
    Alcotest.test_case "spdm: honest device attests" `Quick test_honest_device_attests;
    Alcotest.test_case "spdm: counterfeit fails" `Quick test_counterfeit_fails_attestation;
    Alcotest.test_case "spdm: unknown measurement fails" `Quick test_unknown_measurement_fails;
    Alcotest.test_case "dda: transfer roundtrip" `Quick test_transfer_roundtrip;
    Alcotest.test_case "dda: host tamper detected" `Quick test_host_tamper_detected;
    Alcotest.test_case "dda: compromised device wins (E10)" `Quick test_compromised_device_defeats_dda;
    Alcotest.test_case "dda: datapath cheap (E10)" `Quick test_dda_datapath_cheap;
    Alcotest.test_case "ide: sequence discipline" `Quick test_ide_sequence_advances_only_on_success;
    Alcotest.test_case "ide: replay rejected" `Quick test_ide_replay_rejected;
  ]
