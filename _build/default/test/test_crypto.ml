(* Crypto tests: published RFC/FIPS vectors plus properties. *)

open Cio_util
open Cio_crypto

let hex = Helpers.hex

(* --- SHA-256 (FIPS 180-4 / RFC 6234 vectors) -------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, want) -> Alcotest.(check string) msg want (Sha256.hex_digest_string msg))
    sha_vectors

let test_sha256_million_a () =
  (* RFC 6234 test 3: one million 'a's, exercised through the streaming
     interface in uneven chunks. *)
  let t = Sha256.init () in
  let chunk = Bytes.make 997 'a' in
  let remaining = ref 1_000_000 in
  while !remaining > 0 do
    let n = min 997 !remaining in
    Sha256.feed t chunk ~pos:0 ~len:n;
    remaining := !remaining - n
  done;
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Hex.of_bytes (Sha256.finish t))

let test_sha256_streaming_equals_oneshot () =
  let msg = "the quick brown fox jumps over the lazy dog, repeatedly and at length" in
  let t = Sha256.init () in
  String.iter (fun c -> Sha256.feed_string t (String.make 1 c)) msg;
  Alcotest.(check string) "streaming == one-shot"
    (Hex.of_bytes (Sha256.digest_string msg))
    (Hex.of_bytes (Sha256.finish t))

(* --- HMAC-SHA256 (RFC 4231) ------------------------------------------ *)

let test_hmac_rfc4231_case1 () =
  let key = hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let tag = Hmac.digest_bytes ~key (Bytes.of_string "Hi There") in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" (Hex.of_bytes tag)

let test_hmac_rfc4231_case2 () =
  let tag = Hmac.digest_string ~key:"Jefe" "what do ya want for nothing?" in
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" (Hex.of_bytes tag)

let test_hmac_rfc4231_long_key () =
  (* Case 6: 131-byte key, forcing the key-hash path. *)
  let key = Bytes.make 131 '\xaa' in
  let tag =
    Hmac.digest_bytes ~key (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First")
  in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" (Hex.of_bytes tag)

(* --- HKDF (RFC 5869) --------------------------------------------------- *)

let test_hkdf_rfc5869_case1 () =
  let ikm = hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let salt = hex "000102030405060708090a0b0c" in
  let info = hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hkdf.extract ~salt ~ikm () in
  Alcotest.(check string) "prk"
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" (Hex.of_bytes prk);
  let okm = Hkdf.expand ~prk ~info ~len:42 in
  Alcotest.(check string) "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Hex.of_bytes okm)

let test_hkdf_rfc5869_case3_no_salt () =
  let ikm = hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let okm = Hkdf.derive ~ikm ~info:Bytes.empty ~len:42 () in
  Alcotest.(check string) "okm without salt"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (Hex.of_bytes okm)

let test_hkdf_expand_limit () =
  let prk = Bytes.make 32 'k' in
  Alcotest.check_raises "over limit" (Invalid_argument "Hkdf.expand: invalid length") (fun () ->
      ignore (Hkdf.expand ~prk ~info:Bytes.empty ~len:(255 * 32 + 1)))

let test_hkdf_expand_label_distinct () =
  let prk = Bytes.make 32 'k' in
  let a = Hkdf.expand_label ~prk ~label:"one" ~context:Bytes.empty ~len:32 in
  let b = Hkdf.expand_label ~prk ~label:"two" ~context:Bytes.empty ~len:32 in
  Alcotest.(check bool) "labels separate domains" false (Bytes.equal a b)

(* --- ChaCha20 (RFC 8439 §2.3.2 / §2.4.2) ----------------------------- *)

let test_chacha20_block_vector () =
  let key = hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex "000000090000004a00000000" in
  let block = Chacha20.block ~key ~nonce ~counter:1l in
  Alcotest.(check string) "first 16 bytes" "10f1e7e4d13b5915500fdd1fa32071c4"
    (Hex.of_bytes (Bytes.sub block 0 16))

let sunscreen =
  "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."

let test_chacha20_encrypt_vector () =
  let key = hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex "000000000000004a00000000" in
  let ct = Chacha20.encrypt ~counter:1l ~key ~nonce (Bytes.of_string sunscreen) in
  Alcotest.(check string) "ciphertext head" "6e2e359a2568f98041ba0728dd0d6981"
    (Hex.of_bytes (Bytes.sub ct 0 16));
  Alcotest.(check int) "ciphertext length" 114 (Bytes.length ct);
  (* Decrypting with the same parameters must restore the plaintext. *)
  Helpers.check_bytes "decrypts back" (Bytes.of_string sunscreen)
    (Chacha20.decrypt ~counter:1l ~key ~nonce ct)

let test_chacha20_involution () =
  let key = Bytes.make 32 'K' and nonce = Bytes.make 12 'N' in
  let pt = Bytes.of_string "round trip data of odd length.." in
  let back = Chacha20.decrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce pt) in
  Helpers.check_bytes "involution" pt back

let test_chacha20_key_validation () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes") (fun () ->
      ignore (Chacha20.encrypt ~key:(Bytes.make 16 'k') ~nonce:(Bytes.make 12 'n') Bytes.empty))

(* --- Poly1305 (RFC 8439 §2.5.2) -------------------------------------- *)

let test_poly1305_vector () =
  let key = hex "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  let tag = Poly1305.mac ~key (Bytes.of_string "Cryptographic Forum Research Group") in
  Alcotest.(check string) "tag" "a8061dc1305136c6c22b8baf0c0127a9" (Hex.of_bytes tag)

let test_poly1305_streaming () =
  let key = hex "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  let t = Poly1305.init ~key in
  Poly1305.feed_bytes t (Bytes.of_string "Cryptographic Forum ");
  Poly1305.feed_bytes t (Bytes.of_string "Research Group");
  Alcotest.(check string) "streaming tag" "a8061dc1305136c6c22b8baf0c0127a9"
    (Hex.of_bytes (Poly1305.finish t))

(* --- AEAD (RFC 8439 §2.8.2) ------------------------------------------ *)

let aead_key = hex "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
let aead_nonce = hex "070000004041424344454647"
let aead_aad = hex "50515253c0c1c2c3c4c5c6c7"

let test_aead_vector () =
  let ct, tag = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad (Bytes.of_string sunscreen) in
  Alcotest.(check string) "tag" "1ae10b594f09e26a7e902ecbd0600691" (Hex.of_bytes tag);
  Alcotest.(check string) "ct head" "d31a8d34648e60db7b86afbc53ef7ec2"
    (Hex.of_bytes (Bytes.sub ct 0 16))

let test_aead_roundtrip () =
  let pt = Bytes.of_string "attack at dawn" in
  let ct, tag = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad pt in
  match Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad ~tag ct with
  | Some back -> Helpers.check_bytes "roundtrip" pt back
  | None -> Alcotest.fail "decrypt failed"

let test_aead_rejects_tampered_ciphertext () =
  let ct, tag = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad (Bytes.of_string "data") in
  Bytes.set ct 0 (Char.chr (Char.code (Bytes.get ct 0) lxor 1));
  Alcotest.(check bool) "rejected" true
    (Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad ~tag ct = None)

let test_aead_rejects_tampered_aad () =
  let ct, tag = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad (Bytes.of_string "data") in
  let bad_aad = Bytes.copy aead_aad in
  Bytes.set bad_aad 0 'X';
  Alcotest.(check bool) "rejected" true
    (Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:bad_aad ~tag ct = None)

let test_aead_rejects_wrong_nonce () =
  let ct, tag = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad (Bytes.of_string "data") in
  let other = Bytes.copy aead_nonce in
  Bytes.set other 0 '\xFF';
  Alcotest.(check bool) "rejected" true
    (Aead.decrypt ~key:aead_key ~nonce:other ~aad:aead_aad ~tag ct = None)

let test_aead_seal_open () =
  let pt = Bytes.of_string "sealed message" in
  let sealed = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:Bytes.empty pt in
  Alcotest.(check int) "sealed length" (Bytes.length pt + Aead.tag_len) (Bytes.length sealed);
  match Aead.open_ ~key:aead_key ~nonce:aead_nonce ~aad:Bytes.empty sealed with
  | Some back -> Helpers.check_bytes "open" pt back
  | None -> Alcotest.fail "open failed"

let test_aead_open_too_short () =
  Alcotest.(check bool) "short input rejected" true
    (Aead.open_ ~key:aead_key ~nonce:aead_nonce ~aad:Bytes.empty (Bytes.make 8 'x') = None)

let test_ct_equal () =
  Alcotest.(check bool) "equal" true (Ct.equal (Bytes.of_string "same") (Bytes.of_string "same"));
  Alcotest.(check bool) "different" false (Ct.equal (Bytes.of_string "same") (Bytes.of_string "sam_"));
  Alcotest.(check bool) "length mismatch" false (Ct.equal (Bytes.of_string "a") (Bytes.of_string "ab"))

let bytes_gen = QCheck.Gen.(map Bytes.of_string (string_size (int_range 0 300)))
let bytes_arb = QCheck.make ~print:(fun b -> Hex.of_bytes b) bytes_gen

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"AEAD decrypt . encrypt = id" ~count:200 bytes_arb (fun pt ->
      let ct, tag = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad pt in
      match Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad ~tag ct with
      | Some back -> Bytes.equal back pt
      | None -> false)

let prop_aead_tamper_detected =
  QCheck.Test.make ~name:"AEAD rejects any single-bit flip" ~count:200
    QCheck.(pair bytes_arb small_nat)
    (fun (pt, pos) ->
      QCheck.assume (Bytes.length pt > 0);
      let sealed = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:Bytes.empty pt in
      let i = pos mod Bytes.length sealed in
      Bytes.set sealed i (Char.chr (Char.code (Bytes.get sealed i) lxor 0x10));
      Aead.open_ ~key:aead_key ~nonce:aead_nonce ~aad:Bytes.empty sealed = None)

let prop_sha256_streaming_chunking_invariant =
  QCheck.Test.make ~name:"sha256 independent of chunk boundaries" ~count:100
    QCheck.(pair bytes_arb (int_range 1 64))
    (fun (msg, chunk) ->
      let t = Sha256.init () in
      let n = Bytes.length msg in
      let rec feed off =
        if off < n then begin
          let len = min chunk (n - off) in
          Sha256.feed t msg ~pos:off ~len;
          feed (off + len)
        end
      in
      feed 0;
      Bytes.equal (Sha256.finish t) (Sha256.digest_bytes msg))

let prop_hmac_key_sensitivity =
  QCheck.Test.make ~name:"hmac differs under different keys" ~count:100 bytes_arb (fun msg ->
      let a = Hmac.digest_bytes ~key:(Bytes.of_string "key-one") msg in
      let b = Hmac.digest_bytes ~key:(Bytes.of_string "key-two") msg in
      not (Bytes.equal a b))

let suite =
  [
    Alcotest.test_case "sha256: FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256: million a (streamed)" `Slow test_sha256_million_a;
    Alcotest.test_case "sha256: streaming equals one-shot" `Quick test_sha256_streaming_equals_oneshot;
    Alcotest.test_case "hmac: RFC 4231 case 1" `Quick test_hmac_rfc4231_case1;
    Alcotest.test_case "hmac: RFC 4231 case 2" `Quick test_hmac_rfc4231_case2;
    Alcotest.test_case "hmac: RFC 4231 long key" `Quick test_hmac_rfc4231_long_key;
    Alcotest.test_case "hkdf: RFC 5869 case 1" `Quick test_hkdf_rfc5869_case1;
    Alcotest.test_case "hkdf: RFC 5869 case 3 (no salt)" `Quick test_hkdf_rfc5869_case3_no_salt;
    Alcotest.test_case "hkdf: expand length limit" `Quick test_hkdf_expand_limit;
    Alcotest.test_case "hkdf: label domain separation" `Quick test_hkdf_expand_label_distinct;
    Alcotest.test_case "chacha20: block vector" `Quick test_chacha20_block_vector;
    Alcotest.test_case "chacha20: encryption vector" `Quick test_chacha20_encrypt_vector;
    Alcotest.test_case "chacha20: involution" `Quick test_chacha20_involution;
    Alcotest.test_case "chacha20: key validation" `Quick test_chacha20_key_validation;
    Alcotest.test_case "poly1305: RFC vector" `Quick test_poly1305_vector;
    Alcotest.test_case "poly1305: streaming" `Quick test_poly1305_streaming;
    Alcotest.test_case "aead: RFC 8439 vector" `Quick test_aead_vector;
    Alcotest.test_case "aead: roundtrip" `Quick test_aead_roundtrip;
    Alcotest.test_case "aead: tampered ciphertext" `Quick test_aead_rejects_tampered_ciphertext;
    Alcotest.test_case "aead: tampered aad" `Quick test_aead_rejects_tampered_aad;
    Alcotest.test_case "aead: wrong nonce" `Quick test_aead_rejects_wrong_nonce;
    Alcotest.test_case "aead: seal/open" `Quick test_aead_seal_open;
    Alcotest.test_case "aead: short input" `Quick test_aead_open_too_short;
    Alcotest.test_case "ct: comparison" `Quick test_ct_equal;
    Helpers.qtest prop_aead_roundtrip;
    Helpers.qtest prop_aead_tamper_detected;
    Helpers.qtest prop_sha256_streaming_chunking_invariant;
    Helpers.qtest prop_hmac_key_sensitivity;
  ]
