(* Virtio baseline tests: wire-level ring layout, benign datapaths for
   both drivers, and the per-attack behavioural contrasts that E4
   aggregates. *)

open Cio_mem
open Cio_virtio

let contains haystack needle =
  let n = String.length haystack and c = String.length needle in
  let rec go i = i + c <= n && (String.equal (String.sub haystack i c) needle || go (i + 1)) in
  c = 0 || go 0

let make_pair ?(hardened = false) () =
  let transport = Transport.create ~name:"test-virtio" () in
  let sent = ref [] in
  let device =
    Device.create ~rx:(Transport.rx transport) ~tx:(Transport.tx transport)
      ~transmit:(fun f -> sent := f :: !sent)
  in
  (transport, device, sent, hardened)

let test_vring_layout_bit_accurate () =
  let region = Region.create ~name:"vr" 8192 in
  let v = Vring.create ~region ~base:0 ~size:4 in
  Vring.write_desc v Region.Guest 2 { Vring.addr = 0x1000; len = 256; flags = 3; next = 1 };
  (* Descriptor 2 starts at byte 32: addr u64 LE, len u32, flags u16, next u16. *)
  Alcotest.(check int64) "addr" 0x1000L (Region.read_u64 region Region.Guest ~off:32);
  Alcotest.(check int) "len" 256 (Region.read_u32 region Region.Guest ~off:40);
  Alcotest.(check int) "flags" 3 (Region.read_u16 region Region.Guest ~off:44);
  Alcotest.(check int) "next" 1 (Region.read_u16 region Region.Guest ~off:46)

let test_vring_avail_used_idx () =
  let region = Region.create ~name:"vr" 8192 in
  let v = Vring.create ~region ~base:0 ~size:8 in
  Vring.set_avail_idx v Region.Guest 5;
  Alcotest.(check int) "avail idx cross-actor" 5 (Vring.avail_idx v Region.Host);
  Vring.set_used_entry v Region.Host 3 ~id:6 ~len:99;
  let id, len = Vring.used_entry v Region.Guest 3 in
  Alcotest.(check int) "used id" 6 id;
  Alcotest.(check int) "used len" 99 len

let test_vring_ring_positions_wrap () =
  let region = Region.create ~name:"vr" 8192 in
  let v = Vring.create ~region ~base:0 ~size:4 in
  Vring.set_avail_entry v Region.Guest 6 42 (* position 6 wraps to slot 2 *);
  Alcotest.(check int) "wrapped position" 42 (Vring.avail_entry v Region.Host 2)

let test_vring_geometry_validated () =
  let region = Region.create ~name:"vr" 8192 in
  Alcotest.check_raises "non-pow2" (Invalid_argument "Vring.create: size must be a power of two")
    (fun () -> ignore (Vring.create ~region ~base:0 ~size:5))

let test_unhardened_tx_rx () =
  let _, device, sent, _ = make_pair () in
  let transport, device2, sent2, _ = make_pair () in
  ignore device;
  ignore sent;
  let drv = Driver_unhardened.create transport in
  Alcotest.(check bool) "tx accepted" true (Driver_unhardened.transmit drv (Bytes.of_string "out"));
  Device.poll device2;
  Alcotest.(check int) "forwarded" 1 (List.length !sent2);
  Helpers.check_bytes "frame content" (Bytes.of_string "out") (List.hd !sent2);
  Device.deliver_rx device2 (Bytes.of_string "inbound");
  Device.poll device2;
  match Driver_unhardened.poll drv with
  | Some f -> Helpers.check_bytes "rx" (Bytes.of_string "inbound") f
  | None -> Alcotest.fail "no rx frame"

let test_hardened_tx_rx () =
  let transport, device, sent, _ = make_pair ~hardened:true () in
  let drv = Driver_hardened.create transport in
  Alcotest.(check bool) "tx accepted" true (Driver_hardened.transmit drv (Bytes.of_string "out"));
  Device.poll device;
  Alcotest.(check int) "forwarded" 1 (List.length !sent);
  Device.deliver_rx device (Bytes.of_string "inbound");
  Device.poll device;
  match Driver_hardened.poll drv with
  | Some f -> Helpers.check_bytes "rx" (Bytes.of_string "inbound") f
  | None -> Alcotest.fail "no rx frame"

let test_many_frames_both_directions () =
  let transport, device, sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  for i = 1 to 40 do
    Alcotest.(check bool) "tx" true
      (Driver_hardened.transmit drv (Bytes.of_string (Printf.sprintf "frame-%03d" i)));
    Device.poll device;
    ignore (Driver_hardened.poll drv)
  done;
  Alcotest.(check int) "all forwarded in order" 40 (List.length !sent);
  Helpers.check_bytes "last frame" (Bytes.of_string "frame-040") (List.hd !sent);
  for i = 1 to 100 do
    Device.deliver_rx device (Bytes.of_string (Printf.sprintf "in-%03d" i))
  done;
  let received = ref 0 in
  for _ = 1 to 30 do
    Device.poll device;
    let rec drain () =
      match Driver_hardened.poll drv with
      | Some _ ->
          incr received;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  Alcotest.(check int) "all delivered despite ring wrap" 100 !received

let test_tx_ring_full_refuses () =
  let transport, _device, _sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  (* Fill all TX slots without letting the device drain. *)
  let accepted = ref 0 in
  for _ = 1 to 100 do
    if Driver_hardened.transmit drv (Bytes.make 64 'x') then incr accepted
  done;
  Alcotest.(check int) "bounded by queue size" (Transport.queue_size transport) !accepted

let test_device_respects_protection () =
  (* A guest descriptor pointing at a revoked page must fault the device,
     not crash it. *)
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_unhardened.create transport in
  ignore (Driver_unhardened.transmit drv (Bytes.of_string "frame"));
  Region.unshare_range (Transport.region transport)
    ~off:(Transport.tx_buf_offset transport 0)
    ~len:64;
  Device.poll device;
  Alcotest.(check int) "device recorded guest fault" 1 (Device.stats device).Device.guest_faults

(* --- attack-level behaviour (unit versions of the E4 rows) ---------- *)

let test_lie_len_leaks_on_unhardened () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_unhardened.create transport in
  (* Plant a secret in the neighbouring RX buffer. *)
  Region.guest_write (Transport.region transport)
    ~off:(Transport.rx_buf_offset transport 1)
    (Bytes.of_string "TOPSECRET");
  Device.inject device (Device.Lie_used_len 4000);
  Device.deliver_rx device (Bytes.of_string "x");
  Device.poll device;
  match Driver_unhardened.poll drv with
  | Some frame ->
      Alcotest.(check int) "over-read size" 4000 (Bytes.length frame);
      Alcotest.(check bool) "neighbour leaked" true (contains (Bytes.to_string frame) "TOPSECRET")
  | None -> Alcotest.fail "no frame"

let test_lie_len_clamped_on_hardened () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  Device.inject device (Device.Lie_used_len 4000);
  Device.deliver_rx device (Bytes.of_string "x");
  Device.poll device;
  (match Driver_hardened.poll drv with
  | Some frame ->
      Alcotest.(check bool) "clamped to posted size" true
        (Bytes.length frame <= Transport.buf_size transport)
  | None -> Alcotest.fail "no frame");
  Alcotest.(check int) "clamp recorded" 1 (Driver_hardened.rejects drv).Driver_hardened.len_clamped

let test_race_overflows_unhardened () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_unhardened.create transport in
  Device.inject device (Device.Race_used_len 5000);
  Device.deliver_rx device (Bytes.of_string "x");
  Device.poll device;
  match Driver_unhardened.poll drv with
  | exception Invalid_argument _ -> ()  (* the double fetch overflowed *)
  | Some _ | None -> Alcotest.fail "double fetch must corrupt the unhardened driver"

let test_race_harmless_on_hardened () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  Device.inject device (Device.Race_used_len 5000);
  Device.deliver_rx device (Bytes.of_string "x");
  Device.poll device;
  match Driver_hardened.poll drv with
  | Some frame -> Helpers.check_bytes "single fetch wins" (Bytes.of_string "x") frame
  | None -> Alcotest.fail "frame lost"

let test_bogus_id_rejected_on_hardened () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  Device.inject device (Device.Bogus_used_id 5000);
  Device.deliver_rx device (Bytes.of_string "x");
  Device.poll device;
  ignore (Driver_hardened.poll drv);
  Alcotest.(check int) "bad id rejected" 1 (Driver_hardened.rejects drv).Driver_hardened.bad_id

let test_replay_rejected_on_hardened_before_repost () =
  (* A replay of a completion for a slot that is *not* outstanding is a
     temporal violation the shadow state catches. *)
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  ignore (Driver_hardened.transmit drv (Bytes.of_string "tx"));
  Device.inject device Device.Replay_completion;
  Device.poll device (* completes TX slot 0, then replays it *);
  ignore (Driver_hardened.poll drv);
  Alcotest.(check int) "stale completion rejected" 1
    (Driver_hardened.rejects drv).Driver_hardened.not_outstanding

let test_chain_loop_livelocks_unhardened () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_unhardened.create transport in
  Device.inject device Device.Desc_chain_loop;
  Device.deliver_rx device (Bytes.of_string "x");
  Device.poll device;
  match Driver_unhardened.poll drv with
  | exception Driver_unhardened.Unbounded_work _ -> ()
  | Some _ | None -> Alcotest.fail "loop must trip the fuse"

let test_double_fetch_hazard_analysis () =
  (* Use the region's double-fetch transaction analysis as a static-
     analyser stand-in: the unhardened RX path fetches overlapping shared
     words twice per completion (a hazard); the hardened path is
     single-fetch by construction. *)
  let run_reap hardened =
    let transport, device, _sent, _ = make_pair () in
    let region = Transport.region transport in
    if hardened then begin
      let drv = Driver_hardened.create transport in
      Device.deliver_rx device (Bytes.of_string "probe");
      Device.poll device;
      Region.begin_txn region;
      ignore (Driver_hardened.poll drv);
      Region.end_txn region
    end
    else begin
      let drv = Driver_unhardened.create transport in
      Device.deliver_rx device (Bytes.of_string "probe");
      Device.poll device;
      Region.begin_txn region;
      ignore (Driver_unhardened.poll drv);
      Region.end_txn region
    end
  in
  Alcotest.(check bool) "unhardened has double-fetch hazards" true (run_reap false <> []);
  Alcotest.(check (list (of_pp (fun _ _ -> ())))) "hardened has none" [] (run_reap true)

let test_kicks_and_irqs_counted () =
  let transport, device, _sent, _ = make_pair () in
  let drv = Driver_hardened.create transport in
  let k0 = Driver_hardened.kicks drv in
  ignore (Driver_hardened.transmit drv (Bytes.of_string "x"));
  Alcotest.(check int) "kick per tx" (k0 + 1) (Driver_hardened.kicks drv);
  Device.poll device;
  ignore (Driver_hardened.poll drv);
  Alcotest.(check bool) "irq on completion" (Driver_hardened.irqs drv > 0) true

let suite =
  [
    Alcotest.test_case "vring: bit-accurate layout" `Quick test_vring_layout_bit_accurate;
    Alcotest.test_case "vring: avail/used cross-actor" `Quick test_vring_avail_used_idx;
    Alcotest.test_case "vring: ring positions wrap" `Quick test_vring_ring_positions_wrap;
    Alcotest.test_case "vring: geometry validated" `Quick test_vring_geometry_validated;
    Alcotest.test_case "unhardened: benign tx/rx" `Quick test_unhardened_tx_rx;
    Alcotest.test_case "hardened: benign tx/rx" `Quick test_hardened_tx_rx;
    Alcotest.test_case "drivers: sustained traffic, ring wrap" `Quick test_many_frames_both_directions;
    Alcotest.test_case "drivers: tx ring full" `Quick test_tx_ring_full_refuses;
    Alcotest.test_case "device: guest fault absorbed" `Quick test_device_respects_protection;
    Alcotest.test_case "attack: lie-len leaks (unhardened)" `Quick test_lie_len_leaks_on_unhardened;
    Alcotest.test_case "attack: lie-len clamped (hardened)" `Quick test_lie_len_clamped_on_hardened;
    Alcotest.test_case "attack: race overflows (unhardened)" `Quick test_race_overflows_unhardened;
    Alcotest.test_case "attack: race harmless (hardened)" `Quick test_race_harmless_on_hardened;
    Alcotest.test_case "attack: bogus id rejected (hardened)" `Quick test_bogus_id_rejected_on_hardened;
    Alcotest.test_case "attack: replay rejected (hardened)" `Quick
      test_replay_rejected_on_hardened_before_repost;
    Alcotest.test_case "attack: chain loop fuse (unhardened)" `Quick test_chain_loop_livelocks_unhardened;
    Alcotest.test_case "drivers: notifications counted" `Quick test_kicks_and_irqs_counted;
    Alcotest.test_case "double-fetch hazard analysis" `Quick test_double_fetch_hazard_analysis;
  ]
