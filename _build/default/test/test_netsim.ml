(* Discrete-event engine, link and adversary tests. *)

open Cio_netsim

let test_engine_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~time:30L (fun () -> log := 3 :: !log);
  Engine.schedule_at e ~time:10L (fun () -> log := 1 :: !log);
  Engine.schedule_at e ~time:20L (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" 30L (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at e ~time:7L (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties in scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_horizon () =
  let e = Engine.create () in
  let ran = ref [] in
  Engine.schedule_at e ~time:10L (fun () -> ran := 10 :: !ran);
  Engine.schedule_at e ~time:50L (fun () -> ran := 50 :: !ran);
  Engine.run ~until:20L e;
  Alcotest.(check (list int)) "only in-horizon events" [ 10 ] (List.rev !ran);
  Alcotest.(check int64) "clock at horizon" 20L (Engine.now e);
  Alcotest.(check int) "one still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "resumes" [ 10; 50 ] (List.rev !ran)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_at e ~time:5L (fun () ->
      incr hits;
      Engine.schedule e ~after:5L (fun () -> incr hits));
  Engine.run e;
  Alcotest.(check int) "chained events" 2 !hits;
  Alcotest.(check int64) "final time" 10L (Engine.now e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:10L ignore;
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at e ~time:5L ignore)

let test_engine_stop () =
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule_at e ~time:1L (fun () ->
      incr ran;
      Engine.stop e);
  Engine.schedule_at e ~time:2L (fun () -> incr ran);
  Engine.run e;
  Alcotest.(check int) "stopped after first" 1 !ran

let test_link_latency () =
  let e = Engine.create () in
  let link = Link.create ~latency_ns:1000L ~gbps:8.0 e in
  let arrival = ref (-1L) in
  Link.attach link Link.B (fun _ -> arrival := Engine.now e);
  Link.send link ~src:Link.A (Bytes.make 100 'x');
  Engine.run e;
  (* 100 B at 8 Gbit/s = 100 ns serialization + 1000 ns latency. *)
  Alcotest.(check int64) "arrival time" 1100L !arrival

let test_link_fifo_serialization () =
  let e = Engine.create () in
  let link = Link.create ~latency_ns:0L ~gbps:8.0 e in
  let arrivals = ref [] in
  Link.attach link Link.B (fun _ -> arrivals := Engine.now e :: !arrivals);
  Link.send link ~src:Link.A (Bytes.make 100 'x');
  Link.send link ~src:Link.A (Bytes.make 100 'y');
  Engine.run e;
  (* Second frame queues behind the first: 100 ns then 200 ns. *)
  Alcotest.(check (list int64)) "fifo" [ 100L; 200L ] (List.rev !arrivals)

let test_link_counters () =
  let e = Engine.create () in
  let link = Link.create e in
  Link.attach link Link.B ignore;
  Link.send link ~src:Link.A (Bytes.make 10 'x');
  Link.send link ~src:Link.A (Bytes.make 20 'x');
  Alcotest.(check int) "frames" 2 (Link.frames_sent link ~src:Link.A);
  Alcotest.(check int) "bytes" 30 (Link.bytes_sent link ~src:Link.A);
  Alcotest.(check int) "other direction untouched" 0 (Link.frames_sent link ~src:Link.B)

let test_link_tamper_drop () =
  let e = Engine.create () in
  let link = Link.create e in
  let got = ref 0 in
  Link.attach link Link.B (fun _ -> incr got);
  Link.set_tamper link ~src:Link.A (Some (fun _ -> []));
  Link.send link ~src:Link.A (Bytes.make 10 'x');
  Engine.run e;
  Alcotest.(check int) "dropped" 0 !got

let test_link_tamper_duplicate () =
  let e = Engine.create () in
  let link = Link.create e in
  let got = ref 0 in
  Link.attach link Link.B (fun _ -> incr got);
  Link.set_tamper link ~src:Link.A
    (Some (fun f -> [ { Link.extra_delay_ns = 0L; frame = f }; { Link.extra_delay_ns = 10L; frame = f } ]));
  Link.send link ~src:Link.A (Bytes.make 10 'x');
  Engine.run e;
  Alcotest.(check int) "duplicated" 2 !got

let test_link_transit_tap () =
  let e = Engine.create () in
  let link = Link.create e in
  Link.attach link Link.B ignore;
  let seen = ref [] in
  Link.set_transit_tap link (Some (fun ~time:_ ~src frame -> seen := (src, Bytes.length frame) :: !seen));
  Link.send link ~src:Link.A (Bytes.make 42 'x');
  Engine.run e;
  Alcotest.(check int) "tapped" 1 (List.length !seen);
  match !seen with
  | [ (Link.A, 42) ] -> ()
  | _ -> Alcotest.fail "wrong tap record"

let test_adversary_benign_passthrough () =
  let rng = Cio_util.Rng.create 1L in
  let adv = Adversary.create ~rng Adversary.benign in
  let tamper = Adversary.tamper adv in
  let out = tamper (Bytes.of_string "frame") in
  Alcotest.(check int) "passes one" 1 (List.length out);
  Alcotest.(check int) "seen" 1 (Adversary.stats adv).Adversary.seen

let test_adversary_deterministic () =
  let run seed =
    let rng = Cio_util.Rng.create seed in
    let adv = Adversary.create ~rng Adversary.hostile in
    let tamper = Adversary.tamper adv in
    for i = 0 to 199 do
      ignore (tamper (Bytes.make 50 (Char.chr (i land 0xFF))))
    done;
    let s = Adversary.stats adv in
    (s.Adversary.dropped, s.Adversary.duplicated, s.Adversary.corrupted, s.Adversary.reordered, s.Adversary.replayed)
  in
  Alcotest.(check bool) "same seed, same behaviour" true (run 5L = run 5L);
  Alcotest.(check bool) "different seed, different behaviour" true (run 5L <> run 6L)

let test_adversary_drop_rate () =
  let rng = Cio_util.Rng.create 2L in
  let adv = Adversary.create ~rng { Adversary.benign with Adversary.drop = 1.0 } in
  let tamper = Adversary.tamper adv in
  for _ = 1 to 50 do
    ignore (tamper (Bytes.make 10 'x'))
  done;
  Alcotest.(check int) "all dropped" 50 (Adversary.stats adv).Adversary.dropped

let test_adversary_reorder_holds_frame () =
  let rng = Cio_util.Rng.create 3L in
  let adv = Adversary.create ~rng { Adversary.benign with Adversary.reorder = 1.0 } in
  let tamper = Adversary.tamper adv in
  let first = tamper (Bytes.of_string "one") in
  Alcotest.(check int) "held back" 0 (List.length first);
  let second = tamper (Bytes.of_string "two") in
  (* The held frame is released alongside; "two" is held in its place. *)
  Alcotest.(check int) "released late" 1 (List.length second);
  Helpers.check_bytes "released frame is the held one" (Bytes.of_string "one")
    (List.hd second).Link.frame

let suite =
  [
    Alcotest.test_case "engine: time ordering" `Quick test_engine_time_ordering;
    Alcotest.test_case "engine: FIFO ties" `Quick test_engine_fifo_ties;
    Alcotest.test_case "engine: horizon and resume" `Quick test_engine_horizon;
    Alcotest.test_case "engine: nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine: rejects past" `Quick test_engine_rejects_past;
    Alcotest.test_case "engine: stop" `Quick test_engine_stop;
    Alcotest.test_case "link: latency + serialization" `Quick test_link_latency;
    Alcotest.test_case "link: FIFO under load" `Quick test_link_fifo_serialization;
    Alcotest.test_case "link: counters" `Quick test_link_counters;
    Alcotest.test_case "link: tamper drop" `Quick test_link_tamper_drop;
    Alcotest.test_case "link: tamper duplicate" `Quick test_link_tamper_duplicate;
    Alcotest.test_case "link: transit tap" `Quick test_link_transit_tap;
    Alcotest.test_case "adversary: benign passthrough" `Quick test_adversary_benign_passthrough;
    Alcotest.test_case "adversary: determinism" `Quick test_adversary_deterministic;
    Alcotest.test_case "adversary: drop rate" `Quick test_adversary_drop_rate;
    Alcotest.test_case "adversary: reorder semantics" `Quick test_adversary_reorder_holds_frame;
  ]
