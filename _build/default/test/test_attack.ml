(* E4 resilience-matrix expectations, pinned as a table of outcomes. *)

open Cio_attack

let outcome_t = Alcotest.testable (Fmt.of_to_string Attack.outcome_name) (fun a b ->
    Attack.outcome_name a = Attack.outcome_name b)

let run name target =
  match Attack.find_scenario name with
  | Some s -> Attack.run s target
  | None -> Alcotest.fail ("unknown scenario " ^ name)

let check_compromised name target =
  Alcotest.(check bool)
    (Printf.sprintf "%s vs %s compromises" name (Attack.target_name target))
    true
    (Attack.is_compromise (run name target))

let check_defended name target =
  let o = run name target in
  Alcotest.(check bool)
    (Printf.sprintf "%s vs %s defended (got %s: %s)" name (Attack.target_name target)
       (Attack.outcome_name o) (Attack.outcome_detail o))
    false (Attack.is_compromise o)

let test_unhardened_falls_to_everything () =
  List.iter
    (fun s -> check_compromised s.Attack.sname Attack.Virtio_unhardened)
    Attack.scenarios

let test_unhardened_specific_outcomes () =
  Alcotest.check outcome_t "lie-used-len leaks" (Attack.Leak "")
    (run "lie-used-len" Attack.Virtio_unhardened);
  Alcotest.check outcome_t "double fetch corrupts" (Attack.Corruption "")
    (run "double-fetch-race" Attack.Virtio_unhardened);
  Alcotest.check outcome_t "desc loop livelocks" (Attack.Livelock "")
    (run "desc-loop" Attack.Virtio_unhardened)

let test_hardened_stops_interface_attacks () =
  List.iter
    (fun name -> check_defended name Attack.Virtio_hardened)
    [ "lie-used-len"; "bogus-id"; "double-fetch-race"; "desc-loop"; "redirect-buffer";
      "used-idx-jump" ]

let test_hardened_cannot_stop_payload_attacks () =
  (* No L2 defense can authenticate payload bytes: this is the paper's
     argument for the mandatory L5 layer. *)
  check_compromised "replay-completion" Attack.Virtio_hardened;
  check_compromised "corrupt-payload" Attack.Virtio_hardened

let test_cionet_confines_by_construction () =
  List.iter
    (fun name -> check_defended name Attack.Cionet)
    [ "lie-used-len"; "bogus-id"; "double-fetch-race"; "desc-loop"; "redirect-buffer" ]

let test_dual_defends_everything () =
  List.iter (fun s -> check_defended s.Attack.sname Attack.Dual) Attack.scenarios

let test_dual_fails_closed_on_payload_attacks () =
  Alcotest.check outcome_t "replay fails closed" (Attack.Fail_closed "")
    (run "replay-completion" Attack.Dual);
  Alcotest.check outcome_t "corruption fails closed" (Attack.Fail_closed "")
    (run "corrupt-payload" Attack.Dual)

let test_matrix_shape () =
  let matrix = Attack.matrix () in
  Alcotest.(check int) "eight scenarios" 8 (List.length matrix);
  List.iter
    (fun (_, row) -> Alcotest.(check int) "four targets per row" 4 (List.length row))
    matrix;
  (* Aggregate: compromises strictly decrease from unhardened to dual. *)
  let count target =
    List.length
      (List.filter
         (fun (_, row) -> Attack.is_compromise (List.assoc target row))
         matrix)
  in
  let u = count Attack.Virtio_unhardened
  and h = count Attack.Virtio_hardened
  and c = count Attack.Cionet
  and d = count Attack.Dual in
  Alcotest.(check int) "unhardened: all compromise" 8 u;
  Alcotest.(check bool) "hardened < unhardened" true (h < u);
  Alcotest.(check bool) "cionet <= hardened" true (c <= h);
  Alcotest.(check int) "dual: none" 0 d

let test_stack_compromise_multi_stage () =
  let r = Attack.run_stack_compromise () in
  Alcotest.(check bool) "direct read denied" false (Attack.is_compromise r.Attack.direct_read);
  Alcotest.(check bool) "forged stream denied" false (Attack.is_compromise r.Attack.forged_stream);
  Alcotest.check outcome_t "compartment confines" (Attack.Confined "") r.Attack.direct_read;
  Alcotest.check outcome_t "record layer fails closed" (Attack.Fail_closed "") r.Attack.forged_stream

let test_canary_detector () =
  Alcotest.(check bool) "full canary found" true
    (Attack.contains_canary (Bytes.of_string ("prefix" ^ Attack.canary ^ "suffix")));
  Alcotest.(check bool) "partial window found" true
    (Attack.contains_canary (Bytes.of_string (String.sub Attack.canary 0 12)));
  Alcotest.(check bool) "clean data clean" false
    (Attack.contains_canary (Bytes.make 100 'x'))

let suite =
  [
    Alcotest.test_case "unhardened falls to all classes" `Quick test_unhardened_falls_to_everything;
    Alcotest.test_case "unhardened specific outcomes" `Quick test_unhardened_specific_outcomes;
    Alcotest.test_case "hardened stops interface attacks" `Quick test_hardened_stops_interface_attacks;
    Alcotest.test_case "hardened cannot stop payload attacks" `Quick
      test_hardened_cannot_stop_payload_attacks;
    Alcotest.test_case "cionet confines by construction" `Quick test_cionet_confines_by_construction;
    Alcotest.test_case "dual defends everything" `Quick test_dual_defends_everything;
    Alcotest.test_case "dual fails closed on payload attacks" `Quick
      test_dual_fails_closed_on_payload_attacks;
    Alcotest.test_case "matrix shape + monotonicity" `Quick test_matrix_shape;
    Alcotest.test_case "compromised stack: multi-stage required" `Quick
      test_stack_compromise_multi_stage;
    Alcotest.test_case "canary detector" `Quick test_canary_detector;
  ]
