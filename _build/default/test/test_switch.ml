(* Learning-switch tests plus a multi-client topology: one dual-boundary
   confidential unit serving three remote clients through the switch. *)

open Cio_netsim
open Cio_core
open Cio_util
open Cio_frame

let frame ~dst ~src payload =
  Cio_frame.Ethernet.build { Cio_frame.Ethernet.dst; src; ethertype = Cio_frame.Ethernet.Ipv4; payload }

let mac i = Addr.mac_of_octets 2 0 0 0 0 i

let test_flood_then_learn () =
  let engine = Engine.create () in
  let sw = Switch.create ~ports:3 engine in
  let got = Array.make 3 0 in
  for p = 0 to 2 do
    Switch.attach sw ~port:p (fun _ -> got.(p) <- got.(p) + 1)
  done;
  (* Unknown destination: flooded to the two other ports. *)
  Switch.ingress sw ~port:0 (frame ~dst:(mac 9) ~src:(mac 1) (Bytes.make 50 'x'));
  Engine.run engine;
  Alcotest.(check (list int)) "flooded" [ 0; 1; 1 ] (Array.to_list got);
  Alcotest.(check int) "flood counted" 1 (Switch.flooded sw);
  (* Port 1 replies: the switch has learned mac 1 on port 0. *)
  Switch.ingress sw ~port:1 (frame ~dst:(mac 1) ~src:(mac 9) (Bytes.make 50 'y'));
  Engine.run engine;
  Alcotest.(check (list int)) "unicast to learned port" [ 1; 1; 1 ] (Array.to_list got);
  Alcotest.(check (option int)) "mac 9 learned on port 1" (Some 1) (Switch.learned_port sw ~mac:(mac 9))

let test_broadcast () =
  let engine = Engine.create () in
  let sw = Switch.create ~ports:4 engine in
  let got = Array.make 4 0 in
  for p = 0 to 3 do
    Switch.attach sw ~port:p (fun _ -> got.(p) <- got.(p) + 1)
  done;
  Switch.ingress sw ~port:2 (frame ~dst:Addr.mac_broadcast ~src:(mac 2) (Bytes.make 30 'b'));
  Engine.run engine;
  Alcotest.(check (list int)) "all but ingress" [ 1; 1; 0; 1 ] (Array.to_list got)

let test_same_port_filtered () =
  let engine = Engine.create () in
  let sw = Switch.create ~ports:2 engine in
  let got = ref 0 in
  Switch.attach sw ~port:1 (fun _ -> incr got);
  (* Learn mac 5 on port 0, then send *to* mac 5 from port 0: filtered. *)
  Switch.ingress sw ~port:0 (frame ~dst:(mac 9) ~src:(mac 5) (Bytes.make 20 'x'));
  Engine.run engine;
  let before = !got in
  Switch.ingress sw ~port:0 (frame ~dst:(mac 5) ~src:(mac 6) (Bytes.make 20 'y'));
  Engine.run engine;
  Alcotest.(check int) "hairpin filtered" before !got

let test_short_frame_dropped () =
  let engine = Engine.create () in
  let sw = Switch.create ~ports:2 engine in
  let got = ref 0 in
  Switch.attach sw ~port:1 (fun _ -> incr got);
  Switch.ingress sw ~port:0 (Bytes.make 4 'x');
  Engine.run engine;
  Alcotest.(check int) "runt dropped" 0 !got

(* --- the multi-client topology ------------------------------------------ *)

let test_one_unit_three_clients () =
  let engine = Engine.create () in
  let sw = Switch.create ~latency_ns:5_000L ~ports:4 engine in
  let rng = Rng.create 314L in
  let now () = Engine.now engine in
  let psk = Bytes.of_string "switch-topology-psk-32-bytes-ok!" in
  let ip i = Addr.ipv4_of_octets 10 0 0 i in
  (* The confidential unit on port 0. *)
  let server_mac = mac 1 in
  let neighbors = List.map (fun i -> (ip i, mac i)) [ 2; 3; 4 ] in
  let unit_ =
    Dual.create ~mac:server_mac ~name:"sw-tee" ~ip:(ip 1) ~neighbors ~psk ~psk_id:"sw"
      ~rng:(Rng.split rng) ~now ()
  in
  let sw_tx, _ = Switch.endpoint sw ~port:0 in
  let host = Cio_cionet.Host_model.create ~driver:(Dual.driver unit_) ~transmit:sw_tx in
  Switch.attach sw ~port:0 (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  let listener = Dual.listen unit_ ~port:443 in
  let served = ref [] in
  (* Three clients on ports 1..3. *)
  let clients =
    List.map
      (fun i ->
        let transmit, poll = Switch.endpoint sw ~port:(i - 1) in
        let netif = { Cio_tcpip.Netif.mac = mac i; mtu = 1500; transmit; poll } in
        let peer =
          Peer.create_with_netif ~netif ~ip:(ip i) ~neighbors:[ (ip 1, server_mac) ] ~psk
            ~psk_id:"sw" ~rng:(Rng.split rng) ~now ()
        in
        (i, peer, Peer.connect peer ~dst:(ip 1) ~dst_port:443))
      [ 2; 3; 4 ]
  in
  let pump () =
    Dual.poll unit_;
    (match Dual.accept listener with Some ch -> served := ch :: !served | None -> ());
    (* Echo service on the unit's side. *)
    List.iter
      (fun ch ->
        let rec echo () =
          match Channel.recv ch with
          | Some m ->
              ignore (Channel.send ch m);
              echo ()
          | None -> ()
        in
        echo ())
      !served;
    Cio_cionet.Host_model.poll host;
    List.iter (fun (_, p, _) -> Peer.poll p) clients;
    Engine.advance engine ~by:2_000L
  in
  let rec until pred n = pred () || (n > 0 && (pump (); until pred (n - 1))) in
  Alcotest.(check bool) "all three clients established" true
    (until (fun () -> List.for_all (fun (_, _, ch) -> Channel.is_established ch) clients) 80_000);
  List.iter
    (fun (i, _, ch) ->
      match Channel.send ch (Bytes.of_string (Printf.sprintf "from-client-%d" i)) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Cio_tls.Session.error_to_string e))
    clients;
  Alcotest.(check bool) "all echoed back" true
    (until
       (fun () -> List.for_all (fun (_, _, ch) -> Channel.pending ch > 0) clients)
       80_000);
  List.iter
    (fun (i, _, ch) ->
      match Channel.recv ch with
      | Some m ->
          Helpers.check_bytes "echo demuxed to the right client"
            (Bytes.of_string (Printf.sprintf "from-client-%d" i))
            m
      | None -> Alcotest.fail "missing echo")
    clients;
  Alcotest.(check int) "unit served three channels" 3 (List.length !served);
  Alcotest.(check bool) "switch learned all macs" true
    (List.for_all (fun i -> Switch.learned_port sw ~mac:(mac i) <> None) [ 1; 2; 3; 4 ])

let suite =
  [
    Alcotest.test_case "flood then learn" `Quick test_flood_then_learn;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "hairpin filtered" `Quick test_same_port_filtered;
    Alcotest.test_case "runt frames dropped" `Quick test_short_frame_dropped;
    Alcotest.test_case "one unit, three clients" `Slow test_one_unit_three_clients;
  ]
