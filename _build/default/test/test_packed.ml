(* Packed virtqueue tests: layout semantics, wrap-counter discipline,
   benign datapaths across multiple laps, and the format-specific attack
   contrasts (E15 at unit level). *)

open Cio_virtio

let make ?(hardened = false) () =
  let tr = Packed.create_transport ~name:"test-packed" () in
  let sent = ref [] in
  let dev = Packed.create_device ~transport:tr ~transmit:(fun f -> sent := f :: !sent) in
  let drv = Packed.create_driver ~hardened tr in
  (tr, dev, drv, sent)

let test_flag_semantics () =
  (* VirtIO 1.1 §2.8.1: available iff AVAIL=wrap and USED!=wrap. *)
  let f_true = Packed.avail_flags ~wrap:true ~write:false in
  Alcotest.(check bool) "avail wrap=true" true (Packed.is_avail f_true ~wrap:true);
  Alcotest.(check bool) "not avail wrap=false" false (Packed.is_avail f_true ~wrap:false);
  let u_true = Packed.used_flags ~wrap:true in
  Alcotest.(check bool) "used wrap=true" true (Packed.is_used u_true ~wrap:true);
  Alcotest.(check bool) "used wrong lap" false (Packed.is_used u_true ~wrap:false);
  Alcotest.(check bool) "used is not avail" false (Packed.is_avail u_true ~wrap:true)

let test_element_roundtrip () =
  let region = Cio_mem.Region.create ~name:"pq" 4096 in
  let q = Packed.make_queue ~region ~base:0 ~size:8 in
  let e = { Packed.addr = 0x200; len = 512; id = 5; flags = Packed.flag_avail lor Packed.flag_write } in
  Packed.write_elem q Cio_mem.Region.Guest 3 e;
  let got = Packed.read_elem q Cio_mem.Region.Host 3 in
  Alcotest.(check int) "addr" e.Packed.addr got.Packed.addr;
  Alcotest.(check int) "len" e.Packed.len got.Packed.len;
  Alcotest.(check int) "id" e.Packed.id got.Packed.id;
  Alcotest.(check int) "flags" e.Packed.flags got.Packed.flags

let test_benign_tx_rx () =
  let _, dev, drv, sent = make () in
  Alcotest.(check bool) "tx" true (Packed.driver_transmit drv (Bytes.of_string "out"));
  Packed.device_poll dev;
  Alcotest.(check int) "forwarded" 1 (List.length !sent);
  Helpers.check_bytes "tx content" (Bytes.of_string "out") (List.hd !sent);
  Packed.device_deliver_rx dev (Bytes.of_string "in");
  Packed.device_poll dev;
  match Packed.driver_poll drv with
  | Some f -> Helpers.check_bytes "rx" (Bytes.of_string "in") f
  | None -> Alcotest.fail "no rx"

let test_multiple_wrap_laps () =
  (* 5x the ring depth in both directions: wrap counters must stay in
     sync on both sides, for both driver variants. *)
  List.iter
    (fun hardened ->
      let _, dev, drv, sent = make ~hardened () in
      for i = 1 to 320 do
        Alcotest.(check bool) "tx accepted" true
          (Packed.driver_transmit drv (Bytes.of_string (Printf.sprintf "t%04d" i)));
        Packed.device_poll dev;
        Packed.device_deliver_rx dev (Bytes.of_string (Printf.sprintf "r%04d" i));
        Packed.device_poll dev;
        match Packed.driver_poll drv with
        | Some f ->
            Helpers.check_bytes "in order across laps" (Bytes.of_string (Printf.sprintf "r%04d" i)) f
        | None -> Alcotest.fail "rx lost across wrap"
      done;
      Alcotest.(check int) "all forwarded" 320 (List.length !sent))
    [ false; true ]

let test_lie_len_overreads_unhardened () =
  let tr, dev, drv, _ = make () in
  Cio_mem.Region.guest_write (Packed.transport_region tr) ~off:(Packed.rx_buf_offset tr 1)
    (Bytes.of_string "NEIGHBOUR-SECRET");
  Packed.device_inject dev (Packed.P_lie_len 4000);
  Packed.device_deliver_rx dev (Bytes.of_string "x");
  Packed.device_poll dev;
  match Packed.driver_poll drv with
  | Some f ->
      Alcotest.(check int) "over-read" 4000 (Bytes.length f);
      let s = Bytes.to_string f in
      let contains needle =
        let n = String.length s and c = String.length needle in
        let rec go i = i + c <= n && (String.equal (String.sub s i c) needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "leaked neighbour bytes" true (contains "NEIGHBOUR-SECRET")
  | None -> Alcotest.fail "no frame"

let test_lie_len_clamped_hardened () =
  let tr, dev, drv, _ = make ~hardened:true () in
  Packed.device_inject dev (Packed.P_lie_len 4000);
  Packed.device_deliver_rx dev (Bytes.of_string "x");
  Packed.device_poll dev;
  (match Packed.driver_poll drv with
  | Some f ->
      Alcotest.(check bool) "clamped" true (Bytes.length f <= Packed.transport_buf_size tr)
  | None -> Alcotest.fail "no frame");
  let _, _, clamped = Packed.driver_rejects drv in
  Alcotest.(check int) "clamp counted" 1 clamped

let test_bogus_id_crashes_unhardened () =
  let _, dev, drv, _ = make () in
  Packed.device_inject dev (Packed.P_bogus_id 5000);
  Packed.device_deliver_rx dev (Bytes.of_string "x");
  Packed.device_poll dev;
  match Packed.driver_poll drv with
  | exception Cio_mem.Region.Fault _ -> ()
  | _ -> Alcotest.fail "wild id must fault the unhardened driver"

let test_bogus_id_rejected_hardened () =
  let _, dev, drv, _ = make ~hardened:true () in
  Packed.device_inject dev (Packed.P_bogus_id 5000);
  Packed.device_deliver_rx dev (Bytes.of_string "x");
  Packed.device_poll dev;
  ignore (Packed.driver_poll drv);
  let _, id_rej, _ = Packed.driver_rejects drv in
  Alcotest.(check int) "rejected" 1 id_rej

let test_premature_used_yields_stale_bytes () =
  (* Both variants accept the stale bytes at L2 — payload timing cannot be
     validated there; the dual design's L5 layer is what catches it. *)
  let _, dev, drv, _ = make () in
  Packed.device_inject dev Packed.P_premature_used;
  Packed.device_deliver_rx dev (Bytes.of_string "real-frame");
  Packed.device_poll dev;
  match Packed.driver_poll drv with
  | Some f -> Alcotest.(check bool) "stale, not the real frame" false
                (Bytes.equal f (Bytes.of_string "real-frame"))
  | None -> Alcotest.fail "no frame"

let test_wrap_replay_duplicates () =
  let _, dev, drv, _ = make () in
  Packed.device_inject dev Packed.P_wrap_replay;
  Packed.device_deliver_rx dev (Bytes.of_string "once");
  Packed.device_poll dev;
  let got = ref 0 in
  for _ = 1 to 4 do
    match Packed.driver_poll drv with Some _ -> incr got | None -> ()
  done;
  Alcotest.(check bool) "phantom completion delivered" true (!got >= 2)

let test_check_inventories_differ () =
  let unique l = List.filter snd l |> List.map fst in
  let p = unique Packed.hardened_check_inventory in
  let s = unique Packed.split_hardened_check_inventory in
  Alcotest.(check bool) "packed has unique checks" true (p <> []);
  Alcotest.(check bool) "split has unique checks" true (s <> []);
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " not shared") false (List.mem c s))
    p

let suite =
  [
    Alcotest.test_case "flag semantics" `Quick test_flag_semantics;
    Alcotest.test_case "element roundtrip" `Quick test_element_roundtrip;
    Alcotest.test_case "benign tx/rx" `Quick test_benign_tx_rx;
    Alcotest.test_case "five wrap laps, both variants" `Quick test_multiple_wrap_laps;
    Alcotest.test_case "attack: lie-len over-reads (unhardened)" `Quick
      test_lie_len_overreads_unhardened;
    Alcotest.test_case "attack: lie-len clamped (hardened)" `Quick test_lie_len_clamped_hardened;
    Alcotest.test_case "attack: bogus id crashes (unhardened)" `Quick test_bogus_id_crashes_unhardened;
    Alcotest.test_case "attack: bogus id rejected (hardened)" `Quick test_bogus_id_rejected_hardened;
    Alcotest.test_case "attack: premature used = stale bytes" `Quick
      test_premature_used_yields_stale_bytes;
    Alcotest.test_case "attack: wrap replay duplicates" `Quick test_wrap_replay_duplicates;
    Alcotest.test_case "check inventories differ by format" `Quick test_check_inventories_differ;
  ]
