(* L5 record-layer tests: handshake, data protection, and the attack
   guarantees the dual-boundary design leans on (replay, reorder, tamper,
   truncation, forgery, rekey). *)

open Cio_tls
module S = Session

let cat = Helpers.cat_bytes

let feed_ok who s bytes =
  let r = S.feed s bytes in
  (match r.S.err with
  | Some e -> Alcotest.fail (who ^ ": " ^ S.error_to_string e)
  | None -> ());
  r

let test_handshake_establishes () =
  let c, s = Helpers.tls_pair () in
  Alcotest.(check bool) "client" true (S.is_established c);
  Alcotest.(check bool) "server" true (S.is_established s);
  Alcotest.(check int) "generation 0" 0 (S.generation c)

let test_wrong_psk_fails () =
  let rng = Cio_util.Rng.create 1L in
  let c = S.create ~role:S.Client ~psk:(Bytes.make 32 'a') ~psk_id:"t" ~rng () in
  let s = S.create ~role:S.Server ~psk:(Bytes.make 32 'b') ~psk_id:"t" ~rng () in
  let f1 = match S.initiate c with Ok o -> cat o | Error _ -> Alcotest.fail "init" in
  let r1 = S.feed s f1 in
  (* The server answers (it cannot know yet), but the client must reject
     the server Finished, or vice versa. *)
  let r2 = S.feed c (cat r1.S.outputs) in
  Alcotest.(check bool) "someone detects the mismatch" true
    (r2.S.err <> None || r1.S.err <> None);
  Alcotest.(check bool) "never established" false (S.is_established c && S.is_established s)

let test_wrong_psk_id_fails () =
  let rng = Cio_util.Rng.create 1L in
  let psk = Bytes.make 32 'k' in
  let c = S.create ~role:S.Client ~psk ~psk_id:"tenant-A" ~rng () in
  let s = S.create ~role:S.Server ~psk ~psk_id:"tenant-B" ~rng () in
  let f1 = match S.initiate c with Ok o -> cat o | Error _ -> Alcotest.fail "init" in
  let r1 = S.feed s f1 in
  Alcotest.(check bool) "server rejects id" true (r1.S.err = Some S.Auth_failed)

let test_data_roundtrip () =
  let c, s = Helpers.tls_pair () in
  let msg = Bytes.of_string "confidential payload" in
  let wire = match S.send_data c msg with Ok w -> w | Error _ -> Alcotest.fail "send" in
  let r = feed_ok "server" s wire in
  Alcotest.(check int) "one message" 1 (List.length r.S.app_data);
  Helpers.check_bytes "content" msg (List.hd r.S.app_data)

let test_many_messages_in_order () =
  let c, s = Helpers.tls_pair () in
  let baseline = S.records_received s in
  for i = 1 to 50 do
    let msg = Bytes.of_string (Printf.sprintf "message-%03d" i) in
    let wire = match S.send_data c msg with Ok w -> w | Error _ -> Alcotest.fail "send" in
    let r = feed_ok "server" s wire in
    Helpers.check_bytes "in order" msg (List.hd r.S.app_data)
  done;
  Alcotest.(check int) "received count" 50 (S.records_received s - baseline)

let test_fragmented_delivery () =
  (* Records arriving byte-by-byte (TCP has no message boundaries). *)
  let c, s = Helpers.tls_pair () in
  let msg = Bytes.of_string "fragmented-record" in
  let wire = match S.send_data c msg with Ok w -> w | Error _ -> Alcotest.fail "send" in
  let collected = ref [] in
  Bytes.iter
    (fun ch ->
      let r = feed_ok "server" s (Bytes.make 1 ch) in
      collected := !collected @ r.S.app_data)
    wire;
  Alcotest.(check int) "one message" 1 (List.length !collected);
  Helpers.check_bytes "content" msg (List.hd !collected)

let test_coalesced_delivery () =
  (* Several records in one TCP chunk. *)
  let c, s = Helpers.tls_pair () in
  let wires =
    List.map
      (fun i ->
        match S.send_data c (Bytes.of_string (Printf.sprintf "m%d" i)) with
        | Ok w -> w
        | Error _ -> Alcotest.fail "send")
      [ 1; 2; 3 ]
  in
  let r = feed_ok "server" s (cat wires) in
  Alcotest.(check int) "three messages" 3 (List.length r.S.app_data)

let test_replay_fatal () =
  let c, s = Helpers.tls_pair () in
  let wire = match S.send_data c (Bytes.of_string "once") with Ok w -> w | Error _ -> Alcotest.fail "send" in
  ignore (feed_ok "server" s wire);
  let r = S.feed s wire in
  Alcotest.(check bool) "replay fatal" true (r.S.err = Some S.Auth_failed);
  (* Fail-closed: the session stays dead. *)
  let r2 = S.feed s (Bytes.of_string "anything") in
  Alcotest.(check bool) "poisoned" true (r2.S.err <> None)

let test_reorder_fatal () =
  let c, s = Helpers.tls_pair () in
  let w1 = match S.send_data c (Bytes.of_string "first") with Ok w -> w | Error _ -> assert false in
  let w2 = match S.send_data c (Bytes.of_string "second") with Ok w -> w | Error _ -> assert false in
  let r = S.feed s (cat [ w2; w1 ]) in
  Alcotest.(check bool) "reorder detected" true (r.S.err = Some S.Auth_failed)

let test_tamper_fatal () =
  let c, s = Helpers.tls_pair () in
  let wire = match S.send_data c (Bytes.of_string "integrity") with Ok w -> w | Error _ -> assert false in
  Bytes.set wire (Bytes.length wire - 1) '\x00';
  let r = S.feed s wire in
  Alcotest.(check bool) "tamper detected" true (r.S.err = Some S.Auth_failed)

let test_length_field_tamper_fatal () =
  let c, s = Helpers.tls_pair () in
  let wire = match S.send_data c (Bytes.of_string "len") with Ok w -> w | Error _ -> assert false in
  (* Grow the declared length: the header is AAD, so even a "plausible"
     length change breaks authentication (after the splitter waits for
     the extra bytes, which we supply as padding). *)
  Bytes.set_uint16_be wire 2 (Bytes.get_uint16_be wire 2 + 4);
  let r = S.feed s (Bytes.cat wire (Bytes.make 4 '\x00')) in
  Alcotest.(check bool) "length tamper detected" true (r.S.err <> None)

let test_truncation_then_garbage_fatal () =
  let c, s = Helpers.tls_pair () in
  let wire = match S.send_data c (Bytes.of_string "whole") with Ok w -> w | Error _ -> assert false in
  let half = Bytes.sub wire 0 (Bytes.length wire / 2) in
  let r = S.feed s half in
  Alcotest.(check bool) "truncation alone pends" true (r.S.err = None && r.S.app_data = []);
  (* The attacker substitutes different bytes for the rest. *)
  let r2 = S.feed s (Bytes.make (Bytes.length wire - Bytes.length half) '\xAB') in
  Alcotest.(check bool) "spliced tail detected" true (r2.S.err <> None)

let test_forged_record_fatal () =
  let _, s = Helpers.tls_pair () in
  let forged = Wire.encode { Wire.ctype = Wire.Data; body = Bytes.make 48 '\x42' } in
  let r = S.feed s forged in
  Alcotest.(check bool) "forgery detected" true (r.S.err = Some S.Auth_failed)

let test_unknown_content_type_fatal () =
  let _, s = Helpers.tls_pair () in
  let junk = Bytes.of_string "\x63\x00\x00\x04AAAA" in
  let r = S.feed s junk in
  (match r.S.err with
  | Some (S.Bad_format _) -> ()
  | _ -> Alcotest.fail "unknown content type must poison the splitter")

let test_oversized_record_fatal () =
  let _, s = Helpers.tls_pair () in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr (Wire.content_code Wire.Data));
  Bytes.set hdr 1 '\x00';
  Bytes.set_uint16_be hdr 2 0xFFFF;
  let r = S.feed s hdr in
  match r.S.err with
  | Some (S.Bad_format _) -> ()
  | _ -> Alcotest.fail "oversized declared length must be rejected"

let test_bidirectional_traffic () =
  let c, s = Helpers.tls_pair () in
  let w1 = match S.send_data c (Bytes.of_string "c->s") with Ok w -> w | Error _ -> assert false in
  let w2 = match S.send_data s (Bytes.of_string "s->c") with Ok w -> w | Error _ -> assert false in
  let r1 = feed_ok "server" s w1 and r2 = feed_ok "client" c w2 in
  Helpers.check_bytes "c->s" (Bytes.of_string "c->s") (List.hd r1.S.app_data);
  Helpers.check_bytes "s->c" (Bytes.of_string "s->c") (List.hd r2.S.app_data)

let test_rekey_and_forward_traffic () =
  let c, s = Helpers.tls_pair () in
  let rk = match S.initiate_rekey c with Ok w -> w | Error _ -> assert false in
  ignore (feed_ok "server" s rk);
  Alcotest.(check int) "client gen" 1 (S.generation c);
  Alcotest.(check int) "server gen" 1 (S.generation s);
  let wire = match S.send_data c (Bytes.of_string "post-rekey") with Ok w -> w | Error _ -> assert false in
  let r = feed_ok "server" s wire in
  Helpers.check_bytes "delivered" (Bytes.of_string "post-rekey") (List.hd r.S.app_data)

let test_old_keys_dead_after_rekey () =
  let c, s = Helpers.tls_pair () in
  let old_wire = match S.send_data c (Bytes.of_string "old-gen") with Ok w -> w | Error _ -> assert false in
  ignore (feed_ok "server" s old_wire);
  let rk = match S.initiate_rekey c with Ok w -> w | Error _ -> assert false in
  ignore (feed_ok "server" s rk);
  (* A captured old-generation record replayed now must fail. *)
  let r = S.feed s old_wire in
  Alcotest.(check bool) "cross-generation replay dead" true (r.S.err = Some S.Auth_failed)

let test_send_before_established () =
  let rng = Cio_util.Rng.create 1L in
  let c = S.create ~role:S.Client ~psk:(Bytes.make 32 'k') ~psk_id:"t" ~rng () in
  match S.send_data c (Bytes.of_string "early") with
  | Error (S.Bad_state _) -> ()
  | _ -> Alcotest.fail "must refuse before establishment"

let test_alert_kills_peer () =
  let c, s = Helpers.tls_pair () in
  let r = S.feed s (S.alert c) in
  Alcotest.(check bool) "peer alert fatal" true (r.S.err = Some S.Peer_alert)

let test_max_size_record () =
  let c, s = Helpers.tls_pair () in
  let big = Bytes.make 16384 'B' in
  let wire = match S.send_data c big with Ok w -> w | Error _ -> assert false in
  let r = feed_ok "server" s wire in
  Helpers.check_bytes "16K record" big (List.hd r.S.app_data)

let prop_any_bitflip_fatal =
  QCheck.Test.make ~name:"any record bit flip is fatal, never wrong data" ~count:150
    QCheck.(pair (string_of_size Gen.(int_range 1 200)) small_nat)
    (fun (payload, flip) ->
      let c, s = Helpers.tls_pair () in
      let msg = Bytes.of_string payload in
      match S.send_data c msg with
      | Error _ -> false
      | Ok wire ->
          let i = flip mod Bytes.length wire in
          Bytes.set wire i (Char.chr (Char.code (Bytes.get wire i) lxor 0x04));
          let r = S.feed s wire in
          (* Either detected (err) or — never — silently wrong data. *)
          (match r.S.app_data with
          | [] -> r.S.err <> None || true
          | [ m ] -> Bytes.equal m msg  (* flips in padding-free encoding can't happen, but guard *)
          | _ -> false))

let prop_roundtrip_any_payload =
  QCheck.Test.make ~name:"seal/feed roundtrip for arbitrary payloads" ~count:150
    QCheck.(string_of_size Gen.(int_range 0 2000))
    (fun payload ->
      let c, s = Helpers.tls_pair () in
      let msg = Bytes.of_string payload in
      match S.send_data c msg with
      | Error _ -> false
      | Ok wire ->
          let r = S.feed s wire in
          r.S.err = None && r.S.app_data = [ msg ])

let prop_splitter_never_crashes =
  (* Fuzz the record splitter with arbitrary chunked garbage: it must
     classify, never raise — the untrusted stack feeds it directly. *)
  QCheck.Test.make ~name:"record splitter survives arbitrary input" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 10) (string_of_size Gen.(int_range 0 200)))
    (fun chunks ->
      let sp = Wire.splitter () in
      List.for_all
        (fun chunk ->
          match Wire.feed sp (Bytes.of_string chunk) with
          | Wire.Records rs ->
              List.for_all (fun r -> Bytes.length r.Wire.body <= Wire.max_body) rs
          | Wire.Malformed _ -> true)
        chunks)

let prop_session_survives_garbage =
  QCheck.Test.make ~name:"session fed garbage dies cleanly, never delivers" ~count:200
    QCheck.(string_of_size Gen.(int_range 1 300))
    (fun garbage ->
      let _, s = Helpers.tls_pair () in
      let r = S.feed s (Bytes.of_string garbage) in
      (* Whatever the bytes were, they are not authentic records: nothing
         may surface as application data. *)
      r.S.app_data = [])

let suite =
  [
    Alcotest.test_case "handshake establishes" `Quick test_handshake_establishes;
    Alcotest.test_case "wrong psk fails" `Quick test_wrong_psk_fails;
    Alcotest.test_case "wrong psk id fails" `Quick test_wrong_psk_id_fails;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "50 in-order messages" `Quick test_many_messages_in_order;
    Alcotest.test_case "fragmented delivery" `Quick test_fragmented_delivery;
    Alcotest.test_case "coalesced delivery" `Quick test_coalesced_delivery;
    Alcotest.test_case "replay fatal + fail-closed" `Quick test_replay_fatal;
    Alcotest.test_case "reorder fatal" `Quick test_reorder_fatal;
    Alcotest.test_case "payload tamper fatal" `Quick test_tamper_fatal;
    Alcotest.test_case "length-field tamper fatal" `Quick test_length_field_tamper_fatal;
    Alcotest.test_case "truncation + splice fatal" `Quick test_truncation_then_garbage_fatal;
    Alcotest.test_case "forged record fatal" `Quick test_forged_record_fatal;
    Alcotest.test_case "unknown content type fatal" `Quick test_unknown_content_type_fatal;
    Alcotest.test_case "oversized record fatal" `Quick test_oversized_record_fatal;
    Alcotest.test_case "bidirectional traffic" `Quick test_bidirectional_traffic;
    Alcotest.test_case "rekey + forward traffic" `Quick test_rekey_and_forward_traffic;
    Alcotest.test_case "old generation dead after rekey" `Quick test_old_keys_dead_after_rekey;
    Alcotest.test_case "send before established" `Quick test_send_before_established;
    Alcotest.test_case "alert kills peer" `Quick test_alert_kills_peer;
    Alcotest.test_case "16K record" `Quick test_max_size_record;
    Helpers.qtest prop_any_bitflip_fatal;
    Helpers.qtest prop_roundtrip_any_payload;
    Helpers.qtest prop_splitter_never_crashes;
    Helpers.qtest prop_session_survives_garbage;
  ]
