(* End-to-end integration under a hostile network: the full dual-boundary
   unit talking to a peer across a link owned by the netsim adversary.
   The claims under test are the paper's bottom line:

   - liveness: TCP + the safe ring recover from drops, duplicates and
     reordering; the workload completes;
   - safety: the record layer never delivers wrong application data — a
     corrupted-but-checksum-valid stream either heals (TCP checksum) or
     kills the session, it never yields bad bytes. *)

open Cio_core
open Cio_netsim
open Cio_util

type world = {
  engine : Engine.t;
  link : Link.t;
  unit_ : Dual.t;
  host : Cio_cionet.Host_model.t;
  peer : Peer.t;
}

let psk = Bytes.of_string "integration-test-psk-32-bytes-!!"

let make_world ?(latency_ns = 5_000L) ~seed ~profile () =
  let engine = Engine.create () in
  let link = Link.create ~latency_ns ~gbps:10.0 engine in
  let rng = Rng.create seed in
  let now () = Engine.now engine in
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:Helpers.ip_b ~mac:Helpers.mac_b
      ~neighbors:[ (Helpers.ip_a, Helpers.mac_a) ] ~psk ~psk_id:"itest" ~rng:(Rng.split rng) ~now
      ()
  in
  Peer.serve_echo peer ~port:443;
  let unit_ =
    Dual.create ~mac:Helpers.mac_a ~name:"itest" ~ip:Helpers.ip_a
      ~neighbors:[ (Helpers.ip_b, Helpers.mac_b) ] ~psk ~psk_id:"itest" ~rng:(Rng.split rng) ~now
      ()
  in
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun f -> Link.send link ~src:Link.A f)
  in
  Link.attach link Link.A (fun f -> Cio_cionet.Host_model.deliver_rx host f);
  (* The adversary owns both directions of the link. *)
  (match profile with
  | None -> ()
  | Some p ->
      let adv_a = Adversary.create ~rng:(Rng.split rng) p in
      let adv_b = Adversary.create ~rng:(Rng.split rng) p in
      Adversary.install adv_a link ~src:Link.A;
      Adversary.install adv_b link ~src:Link.B);
  { engine; link; unit_; host; peer }

let pump w =
  Dual.poll w.unit_;
  Cio_cionet.Host_model.poll w.host;
  Peer.poll w.peer;
  Engine.advance w.engine ~by:2_000L

let run_until w pred max_steps =
  let rec go n =
    pred ()
    ||
    if n = 0 then false
    else begin
      pump w;
      go (n - 1)
    end
  in
  go max_steps

(* Echo [count] distinct messages and verify every reply byte-exactly. *)
let echo_workload w ~count ~max_steps =
  let ch = Dual.connect w.unit_ ~dst:Helpers.ip_b ~dst_port:443 in
  if not (run_until w (fun () -> Channel.is_established ch) max_steps) then `Handshake_stuck
  else begin
    let mismatches = ref 0 and echoes = ref 0 and sent = ref 0 in
    let expected = Queue.create () in
    let make_msg i = Bytes.of_string (Printf.sprintf "message-%04d-%s" i (String.make (i mod 200) 'x')) in
    let finished =
      run_until w
        (fun () ->
          (if Channel.is_established ch && !sent < count && !sent - !echoes < 4 then
             let msg = make_msg !sent in
             match Channel.send ch msg with
             | Ok () ->
                 Queue.add msg expected;
                 incr sent
             | Error _ -> ());
          (match Channel.recv ch with
          | Some reply ->
              incr echoes;
              let want = Queue.take expected in
              if not (Bytes.equal reply want) then incr mismatches
          | None -> ());
          !echoes >= count || Channel.error ch <> None)
        max_steps
    in
    if !mismatches > 0 then `Wrong_data
    else if Channel.error ch <> None then `Session_killed
    else if finished && !echoes >= count then `Completed
    else `Stuck
  end

let test_benign_network () =
  let w = make_world ~seed:100L ~profile:None () in
  Alcotest.(check string) "completes" "completed"
    (match echo_workload w ~count:40 ~max_steps:60_000 with
    | `Completed -> "completed"
    | `Wrong_data -> "WRONG DATA"
    | `Session_killed -> "killed"
    | `Handshake_stuck -> "handshake stuck"
    | `Stuck -> "stuck")

let hostile_tolerant p =
  (* Safety always; liveness expected for loss-only impairments. *)
  match p with
  | `Completed | `Session_killed -> true  (* corrupting adversaries may kill; never wrong data *)
  | `Wrong_data -> false
  | `Handshake_stuck | `Stuck -> false

let test_lossy_network_recovers () =
  let profile = { Adversary.benign with Adversary.drop = 0.05 } in
  let w = make_world ~seed:101L ~profile:(Some profile) () in
  (* Loss must not affect correctness OR completion: TCP retransmits. *)
  Alcotest.(check string) "completes despite 5% loss" "completed"
    (match echo_workload w ~count:25 ~max_steps:400_000 with
    | `Completed -> "completed"
    | `Wrong_data -> "WRONG DATA"
    | `Session_killed -> "killed"
    | `Handshake_stuck -> "handshake stuck"
    | `Stuck -> "stuck")

let test_duplicating_network () =
  let profile = { Adversary.benign with Adversary.duplicate = 0.15 } in
  let w = make_world ~seed:102L ~profile:(Some profile) () in
  Alcotest.(check string) "completes despite duplication" "completed"
    (match echo_workload w ~count:25 ~max_steps:400_000 with
    | `Completed -> "completed"
    | `Wrong_data -> "WRONG DATA"
    | e -> (match e with `Session_killed -> "killed" | _ -> "stuck"))

let test_reordering_network () =
  let profile = { Adversary.benign with Adversary.reorder = 0.15; extra_delay_ns = 30_000L } in
  let w = make_world ~seed:103L ~profile:(Some profile) () in
  Alcotest.(check string) "completes despite reordering" "completed"
    (match echo_workload w ~count:25 ~max_steps:400_000 with
    | `Completed -> "completed"
    | `Wrong_data -> "WRONG DATA"
    | e -> (match e with `Session_killed -> "killed" | _ -> "stuck"))

let test_corrupting_network_never_wrong_data () =
  (* Frame corruption: TCP checksums catch most, and anything that slips
     through any checksum dies at the record layer. The one unacceptable
     outcome is wrong application data. *)
  let profile = { Adversary.benign with Adversary.corrupt = 0.08 } in
  let w = make_world ~seed:104L ~profile:(Some profile) () in
  let outcome = echo_workload w ~count:25 ~max_steps:400_000 in
  Alcotest.(check bool) "no wrong data, no livelock" true (hostile_tolerant outcome)

let test_replaying_network_never_wrong_data () =
  let profile = { Adversary.benign with Adversary.replay = 0.10 } in
  let w = make_world ~seed:105L ~profile:(Some profile) () in
  let outcome = echo_workload w ~count:25 ~max_steps:400_000 in
  Alcotest.(check bool) "no wrong data" true (hostile_tolerant outcome)

let test_full_hostile_profile () =
  let w = make_world ~seed:106L ~profile:(Some Adversary.hostile) () in
  let outcome = echo_workload w ~count:15 ~max_steps:600_000 in
  Alcotest.(check bool) "full hostile profile: no wrong data" true (hostile_tolerant outcome)

let test_multiple_channels_one_unit () =
  (* Several concurrent L5 channels through a single confidential unit:
     the shared I/O compartment serves all of them under the same single
     crossing per quantum. *)
  let w = make_world ~seed:107L ~profile:None () in
  let chans = List.init 4 (fun _ -> Dual.connect w.unit_ ~dst:Helpers.ip_b ~dst_port:443) in
  Alcotest.(check bool) "all established" true
    (run_until w (fun () -> List.for_all Channel.is_established chans) 60_000);
  List.iteri
    (fun i ch ->
      match Channel.send ch (Bytes.of_string (Printf.sprintf "chan-%d" i)) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Cio_tls.Session.error_to_string e))
    chans;
  let all_echoed () =
    List.for_all (fun ch -> Channel.received_messages ch >= 1) chans
  in
  Alcotest.(check bool) "all echoed" true (run_until w all_echoed 60_000);
  List.iteri
    (fun i ch ->
      match Channel.recv ch with
      | Some m -> Helpers.check_bytes "demuxed correctly" (Bytes.of_string (Printf.sprintf "chan-%d" i)) m
      | None -> Alcotest.fail "missing echo")
    chans

let test_host_sees_only_ciphertext () =
  (* Record every frame at the link; after a session with a known secret
     payload, the secret must appear in none of them. *)
  let w = make_world ~seed:108L ~profile:None () in
  let captured = Buffer.create 4096 in
  Link.set_transit_tap w.link
    (Some (fun ~time:_ ~src:_ frame -> Buffer.add_bytes captured frame));
  let ch = Dual.connect w.unit_ ~dst:Helpers.ip_b ~dst_port:443 in
  Alcotest.(check bool) "established" true
    (run_until w (fun () -> Channel.is_established ch) 30_000);
  let secret = "TOP-SECRET-PAYLOAD-DO-NOT-LEAK" in
  ignore (Channel.send ch (Bytes.of_string secret));
  Alcotest.(check bool) "echoed" true
    (run_until w (fun () -> Channel.recv ch <> None) 30_000);
  let wire = Buffer.contents captured in
  let contains needle =
    let n = String.length wire and c = String.length needle in
    let rec go i = i + c <= n && (String.equal (String.sub wire i c) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "plaintext never on the wire" false (contains secret);
  Alcotest.(check bool) "wire was captured" true (String.length wire > 0)

let test_hot_swap_under_traffic () =
  (* E12 as a test: hot swap mid-session; the workload completes and no
     wrong data appears. *)
  let w = make_world ~seed:109L ~profile:None () in
  let ch = Dual.connect w.unit_ ~dst:Helpers.ip_b ~dst_port:443 in
  Alcotest.(check bool) "established" true
    (run_until w (fun () -> Channel.is_established ch) 30_000);
  let echoes = ref 0 and sent = ref 0 and swapped = ref false in
  let ok =
    run_until w
      (fun () ->
        (if !sent < 20 && !sent - !echoes < 2 then
           match Channel.send ch (Bytes.of_string (Printf.sprintf "m%d" !sent)) with
           | Ok () -> incr sent
           | Error _ -> ());
        (match Channel.recv ch with Some _ -> incr echoes | None -> ());
        if !echoes = 8 && not !swapped then begin
          swapped := true;
          Cio_cionet.Driver.hot_swap (Dual.driver w.unit_);
          Cio_cionet.Host_model.reattach w.host ~driver:(Dual.driver w.unit_)
        end;
        !echoes >= 20)
      300_000
  in
  Alcotest.(check bool) "completes across hot swap" true ok;
  Alcotest.(check (option string)) "no session error" None
    (Option.map Cio_tls.Session.error_to_string (Channel.error ch));
  Alcotest.(check int) "device migrated" 1 (Cio_cionet.Driver.generation (Dual.driver w.unit_))

let suite =
  [
    Alcotest.test_case "benign network" `Slow test_benign_network;
    Alcotest.test_case "5% loss: recovers" `Slow test_lossy_network_recovers;
    Alcotest.test_case "15% duplication: recovers" `Slow test_duplicating_network;
    Alcotest.test_case "15% reordering: recovers" `Slow test_reordering_network;
    Alcotest.test_case "8% corruption: never wrong data" `Slow test_corrupting_network_never_wrong_data;
    Alcotest.test_case "10% replay: never wrong data" `Slow test_replaying_network_never_wrong_data;
    Alcotest.test_case "full hostile profile" `Slow test_full_hostile_profile;
    Alcotest.test_case "four channels, one unit" `Slow test_multiple_channels_one_unit;
    Alcotest.test_case "host sees only ciphertext" `Slow test_host_sees_only_ciphertext;
    Alcotest.test_case "hot swap under traffic" `Slow test_hot_swap_under_traffic;
  ]
