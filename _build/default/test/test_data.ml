(* Figure 2-4 dataset invariants: the properties the paper's argument
   rests on must hold in the embedded data and survive the analysis
   pipeline. *)

open Cio_data

let test_cve_coverage () =
  Alcotest.(check int) "2002-2022" 21 (Cve_net.years_covered ());
  Alcotest.(check bool) "CVEs in every covered year" true
    (Cve_net.years_with_cves () = Cve_net.years_covered ())

let test_cve_never_converges () =
  (* The figure's point: two decades of hardening and the subsystem still
     produces remote CVEs; no downward trend to zero. *)
  Alcotest.(check bool) "non-negative trend" true (Cve_net.trend_slope () >= 0.0);
  let last_five =
    List.filter (fun y -> y.Cve_net.year >= 2018) Cve_net.series
    |> List.fold_left (fun acc y -> acc + y.Cve_net.count) 0
  in
  Alcotest.(check bool) "recent years still double digits" true (last_five / 5 >= 10)

let test_cve_peak () =
  let p = Cve_net.peak () in
  Alcotest.(check int) "peak year" 2017 p.Cve_net.year;
  Alcotest.(check bool) "mean below peak" true (Cve_net.mean_per_year () < float_of_int p.Cve_net.count)

let test_fig3_distribution () =
  (* NetVSC: "add checks" dominates at ~21%. *)
  Alcotest.(check string) "dominant" "add checks"
    (Hardening.category_name (Hardening.dominant_category Hardening.Netvsc));
  let pct = Hardening.percentage Hardening.Netvsc Hardening.Add_checks in
  Alcotest.(check bool) "~21%" true (pct > 19.0 && pct < 23.0);
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Hardening.distribution Hardening.Netvsc)
  in
  Alcotest.(check int) "distribution covers corpus" (Hardening.total Hardening.Netvsc) total

let test_fig4_distribution () =
  Alcotest.(check string) "dominant" "add checks"
    (Hardening.category_name (Hardening.dominant_category Hardening.Virtio));
  let pct = Hardening.percentage Hardening.Virtio Hardening.Add_checks in
  Alcotest.(check bool) "~35%" true (pct > 32.0 && pct < 38.0)

let test_fig4_amend_rate () =
  (* "over 40 commits, 12 either revert or amend previous hardening
     changes, some of them never to be re-applied" *)
  Alcotest.(check int) "12 amendments" 12 (Hardening.amend_count Hardening.Virtio);
  Alcotest.(check bool) "over 40 commits" true (Hardening.total Hardening.Virtio > 40);
  Alcotest.(check bool) "double-digit amend share" true (Hardening.amend_rate Hardening.Virtio >= 0.10);
  Alcotest.(check bool) "some never re-applied" true (Hardening.revert_count Hardening.Virtio > 0)

let test_amends_reference_earlier_commits () =
  List.iter
    (fun c ->
      match c.Hardening.category with
      | Hardening.Amend_previous ->
          Alcotest.(check bool) "amend has target" true (c.Hardening.amends <> None)
      | _ -> Alcotest.(check (option string)) "non-amend has none" None c.Hardening.amends)
    Hardening.corpus

let test_corpus_ids_unique () =
  let ids = List.map (fun c -> c.Hardening.id) Hardening.corpus in
  Alcotest.(check int) "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_subsystem_partition () =
  Alcotest.(check int) "netvsc + virtio = corpus"
    (List.length Hardening.corpus)
    (Hardening.total Hardening.Netvsc + Hardening.total Hardening.Virtio)

let suite =
  [
    Alcotest.test_case "fig2: coverage" `Quick test_cve_coverage;
    Alcotest.test_case "fig2: never converges" `Quick test_cve_never_converges;
    Alcotest.test_case "fig2: peak" `Quick test_cve_peak;
    Alcotest.test_case "fig3: netvsc distribution" `Quick test_fig3_distribution;
    Alcotest.test_case "fig4: virtio distribution" `Quick test_fig4_distribution;
    Alcotest.test_case "fig4: amend/revert rate" `Quick test_fig4_amend_rate;
    Alcotest.test_case "corpus: amend links" `Quick test_amends_reference_earlier_commits;
    Alcotest.test_case "corpus: unique ids" `Quick test_corpus_ids_unique;
    Alcotest.test_case "corpus: subsystem partition" `Quick test_subsystem_partition;
  ]
